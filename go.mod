module crossborder

go 1.24
