package crossborder

import (
	"crossborder/internal/experiments"
	"crossborder/internal/scenario"
)

// Options configures a reproduction run.
type Options struct {
	// Seed drives every random choice; the same seed reproduces the same
	// study byte for byte. Zero means seed 1.
	Seed int64
	// Scale multiplies all population sizes. 1.0 is the paper's scale
	// (350 users, 5,693 sites, ~7M third-party requests) and takes on
	// the order of a minute; 0.1 runs in a few seconds. Zero means 1.0.
	Scale float64
	// VisitsPerUser overrides the mean page visits per user (0 = the
	// paper's 219).
	VisitsPerUser int
}

// Study is a fully built reproduction: the synthetic world, the collected
// and classified dataset, the tracker inventory, the geolocation services,
// and one method per table/figure of the paper.
//
// A Study is safe for concurrent reads after NewStudy returns.
type Study struct {
	*experiments.Suite
}

// NewStudy builds the world and runs the browser-extension study. This is
// the expensive call; everything afterwards is aggregation.
func NewStudy(o Options) *Study {
	s := scenario.Build(scenario.Params{
		Seed:          o.Seed,
		Scale:         o.Scale,
		VisitsPerUser: o.VisitsPerUser,
	})
	return &Study{Suite: experiments.NewSuite(s)}
}

// Scenario exposes the underlying world for advanced use (the cmd tools
// and examples use it to reach the DNS substrate, inventory, and
// geolocation services directly).
func (st *Study) Scenario() *scenario.Scenario { return st.S }

// RenderTable9 returns the paper's related-work comparison (Table 9),
// which is transcription rather than experiment.
func RenderTable9() string { return experiments.RenderTable9() }

// RenderAll runs every experiment and returns the full set of rendered
// tables and figures in paper order.
func (st *Study) RenderAll() []string {
	st.Precompute() // the three geolocation joins run concurrently
	t8 := st.Table8()
	return []string{
		st.Table1().Render(),
		st.Table2().Render(),
		st.Fig2().Render(),
		st.Fig3().Render(),
		st.Fig4().Render(),
		st.Fig5().Render(),
		st.Table3().Render(),
		st.Table4().Render(),
		st.Fig6().Render(),
		st.Fig7().Render(),
		st.Fig8().Render(),
		st.Table5().Render(),
		st.Table6().Render(),
		st.Fig9().Render(),
		st.Fig10().Render(),
		st.Fig11().Render(),
		st.Table7().Render(),
		t8.Render(),
		st.Fig12(t8).Render(),
		experiments.RenderTable9(),
	}
}
