package crossborder

import (
	"context"

	"crossborder/internal/classify"
	"crossborder/internal/experiments"
	"crossborder/internal/scenario"
	"crossborder/internal/scenario/pack"
)

// Options configures a reproduction run. Most callers should use New
// with functional options instead of filling this struct directly; the
// struct remains exported for the deprecated NewStudy entry point.
type Options struct {
	// Seed drives every random choice; the same seed reproduces the same
	// study byte for byte. Zero means seed 1.
	Seed int64
	// Scale multiplies all population sizes. 1.0 is the paper's scale
	// (350 users, 5,693 sites, ~7M third-party requests) and takes on
	// the order of a minute; 0.1 runs in a few seconds. Zero means 1.0.
	Scale float64
	// VisitsPerUser overrides the mean page visits per user (0 = the
	// paper's 219).
	VisitsPerUser int
	// Workers sets the simulation worker-pool size (0 = GOMAXPROCS);
	// any value produces the same dataset byte for byte.
	Workers int
	// Progress, when non-nil, receives per-phase pipeline events.
	Progress func(PhaseEvent)
	// RowStore selects the dataset row storage backend (the zero value
	// is the in-memory columnar store; see DiskRowStore).
	RowStore RowStore
	// Compression overrides the row store's per-chunk codec (the zero
	// value compresses disk stores and keeps memory stores wide; see
	// WithCompression).
	Compression Compression
	// Pushdown overrides the experiments' projection scan path (the zero
	// value enables it exactly where the store serves encoded blocks; see
	// WithPushdown).
	Pushdown Pushdown
	// Pack names the scenario pack to apply ("" or "default" builds the
	// unmodified study; see WithPack and Packs).
	Pack string
}

// Experiment is one registered artifact of the paper's evaluation: id,
// title, paper section, dependencies, and the runner producing its
// Artifact. The registry holds all 19 measured artifacts plus the
// Table 9 transcription, in paper order.
type Experiment = experiments.Experiment

// Artifact is one computed table or figure: Render for the plain-text
// form, JSON and CSV for machine-readable encodings of the structured
// result, Value for the typed result itself.
type Artifact = experiments.Artifact

// Experiments returns the full experiment registry in paper order. It
// does not require a built Study — listing is free.
func Experiments() []Experiment { return experiments.All() }

// ExperimentIDs returns every registered experiment id in paper order.
func ExperimentIDs() []string { return experiments.IDs() }

// LookupExperiment finds a registered experiment by id,
// case-insensitively ("Fig7" and "fig7" both work).
func LookupExperiment(id string) (Experiment, bool) { return experiments.Get(id) }

// Study is a fully built reproduction: the synthetic world, the
// collected and classified dataset, the tracker inventory, the
// geolocation services, and the experiment registry over them. Through
// the embedded Suite it exposes both the typed per-experiment methods
// (Table1 ... Fig12) and the registry API (IDs, Get, Artifact, RunAll).
//
// A Study is safe for concurrent reads after New returns.
type Study struct {
	*experiments.Suite
}

// New builds the world and runs the browser-extension study as a staged
// pipeline: world/zones, simulation, classification, inventory,
// geolocation, sensitive identification. This is the expensive call;
// everything afterwards is aggregation.
//
// The context cancels the build between and inside phases — the
// simulation checks it before every page visit — returning ctx.Err()
// with all worker goroutines drained. WithProgress observes per-phase
// progress.
func New(ctx context.Context, opts ...Option) (*Study, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	params := scenario.Params{
		Seed:          o.Seed,
		Scale:         o.Scale,
		VisitsPerUser: o.VisitsPerUser,
		Workers:       o.Workers,
		Progress:      o.Progress,
	}
	if o.Pack != "" {
		var err error
		params, err = pack.Params(params, o.Pack)
		if err != nil {
			return nil, err
		}
	}
	compress := o.RowStore.disk // codec default: on for spill, off for memory
	switch o.Compression {
	case CompressionOn:
		compress = true
	case CompressionOff:
		compress = false
	}
	rs := o.RowStore
	switch {
	case rs.disk && compress:
		params.RowSink = func() (classify.RowSink, error) {
			return classify.NewSpillSink(rs.dir, rs.chunkRows)
		}
	case rs.disk:
		params.RowSink = func() (classify.RowSink, error) {
			return classify.NewSpillSinkUncompressed(rs.dir, rs.chunkRows)
		}
	case compress:
		params.RowSink = func() (classify.RowSink, error) {
			return classify.NewMemStoreCompressed(rs.chunkRows), nil
		}
	case rs.chunkRows > 0:
		params.RowSink = func() (classify.RowSink, error) {
			return classify.NewMemStoreChunked(rs.chunkRows), nil
		}
	}
	s, err := scenario.BuildContext(ctx, params)
	if err != nil {
		return nil, err
	}
	switch o.Pushdown {
	case PushdownOn:
		s.Dataset.Pushdown = classify.PushdownOn
	case PushdownOff:
		s.Dataset.Pushdown = classify.PushdownOff
	}
	su := experiments.NewSuite(s)
	// The same WithProgress callback that observed the build phases also
	// receives per-experiment progress from long registry runners (phase
	// "table8"), so `reproduce -progress` covers the whole run.
	su.Progress = o.Progress
	return &Study{Suite: su}, nil
}

// NewStudy builds the whole study eagerly without cancellation or
// progress.
//
// Deprecated: use New, which threads a context through the build
// pipeline and accepts functional options:
//
//	study, err := crossborder.New(ctx, crossborder.WithScale(0.1))
func NewStudy(o Options) *Study {
	st, err := New(context.Background(), func(dst *Options) { *dst = o })
	if err != nil {
		// Unreachable: the background context never cancels and
		// cancellation is the pipeline's only error source.
		panic("crossborder: " + err.Error())
	}
	return st
}

// Scenario exposes the underlying world for advanced use (the cmd tools
// and examples use it to reach the DNS substrate, inventory, and
// geolocation services directly).
func (st *Study) Scenario() *scenario.Scenario { return st.S }

// Close releases the dataset's row store. It matters for studies built
// with DiskRowStore — the spill file is freed — and is a no-op for the
// in-memory backend. The study must not be used afterwards.
func (st *Study) Close() error { return st.S.Dataset.Close() }

// RenderTable9 returns the paper's related-work comparison (Table 9),
// which is transcription rather than experiment.
func RenderTable9() string { return experiments.RenderTable9() }

// RenderAll runs every experiment through the registry and returns the
// rendered tables and figures in paper order.
func (st *Study) RenderAll() []string {
	out, err := st.RenderAllContext(context.Background())
	if err != nil {
		// Unreachable: the background context never cancels and the
		// registry runners only fail on cancellation.
		panic("crossborder: " + err.Error())
	}
	return out
}

// RenderAllContext is RenderAll with cancellation: it executes the
// registry's dependency graph (independent experiments in parallel) and
// renders the artifacts in paper order. For a fixed seed the output is
// byte-identical at any level of parallelism.
func (st *Study) RenderAllContext(ctx context.Context) ([]string, error) {
	arts, err := st.Suite.RunAll(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(arts))
	for i, a := range arts {
		out[i] = a.Render()
	}
	return out, nil
}
