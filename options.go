package crossborder

import (
	"crossborder/internal/scenario"
	"crossborder/internal/scenario/pack"
)

// PhaseEvent is one progress report from the build pipeline: the phase
// name, items done/total, and elapsed time in the phase. Delivered to
// the WithProgress callback; events within a phase are monotone in Done.
type PhaseEvent = scenario.PhaseEvent

// Phase names one stage of the build pipeline (world, simulate,
// classify, inventory, geolocate, sensitive).
type Phase = scenario.Phase

// The build pipeline's stages, in execution order.
const (
	PhaseWorld     = scenario.PhaseWorld
	PhaseSimulate  = scenario.PhaseSimulate
	PhaseClassify  = scenario.PhaseClassify
	PhaseInventory = scenario.PhaseInventory
	PhaseGeolocate = scenario.PhaseGeolocate
	PhaseSensitive = scenario.PhaseSensitive
)

// Phases returns the canonical phase order of the build pipeline.
func Phases() []Phase { return scenario.Phases() }

// Option configures New. The zero configuration reproduces the paper at
// full scale with seed 1.
type Option func(*Options)

// WithSeed sets the world seed; the same seed reproduces the same study
// byte for byte. Zero means seed 1.
func WithSeed(seed int64) Option {
	return func(o *Options) { o.Seed = seed }
}

// WithScale multiplies all population sizes. 1.0 is the paper's scale
// (350 users, 5,693 sites, ~7M third-party requests); 0.1 runs in a few
// seconds. Zero means 1.0.
func WithScale(scale float64) Option {
	return func(o *Options) { o.Scale = scale }
}

// WithVisitsPerUser overrides the mean page visits per user (0 = the
// paper's 219).
func WithVisitsPerUser(n int) Option {
	return func(o *Options) { o.VisitsPerUser = n }
}

// WithWorkers sets the simulation worker-pool size (0 = GOMAXPROCS).
// Any value produces the same dataset byte for byte; 1 forces the
// sequential baseline.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithProgress registers a per-phase progress callback. Events carry
// the phase name, items done/total, and elapsed time; within a phase
// Done is monotone non-decreasing. Delivery is serialized, so fn need
// not be goroutine-safe. Progress never changes the built world.
func WithProgress(fn func(PhaseEvent)) Option {
	return func(o *Options) { o.Progress = fn }
}

// Compression is the tri-state row-store codec selector; see
// WithCompression. The zero value (CompressionAuto) enables the codec
// exactly where it pays by default: on for disk-backed stores, off for
// the in-memory default.
type Compression int

const (
	// CompressionAuto compresses disk row stores and keeps memory row
	// stores wide (the default).
	CompressionAuto Compression = iota
	// CompressionOn forces the per-chunk codec for either backend; the
	// in-memory store keeps sealed chunks as compressed blocks.
	CompressionOn
	// CompressionOff forces the byte-transparent raw chunk layout.
	CompressionOff
)

// WithCompression forces the row store's per-chunk column codec on or
// off (the default is on for DiskRowStore, off for MemoryRowStore).
// The codec is lossless and invisible to every analysis: a compressed
// study renders byte-identically to an uncompressed one. On a disk
// store it cuts the spill file severalfold; on the in-memory store it
// trades a decode per chunk scan for keeping sealed chunks compressed,
// which is what long-running collectors want for cold epochs.
func WithCompression(on bool) Option {
	return func(o *Options) {
		if on {
			o.Compression = CompressionOn
		} else {
			o.Compression = CompressionOff
		}
	}
}

// Pushdown is the tri-state projection-scan selector; see WithPushdown.
// The zero value (PushdownAuto) enables decode-free query pushdown
// exactly where it pays by default: on for stores serving encoded
// column blocks (disk stores and the compressed memory store), off for
// the wide in-memory default.
type Pushdown int

const (
	// PushdownAuto runs projected scans over block-backed stores and
	// wide scans elsewhere (the default).
	PushdownAuto Pushdown = iota
	// PushdownOn forces the projection path for every store; wide
	// stores satisfy it by copying the requested columns.
	PushdownOn
	// PushdownOff forces the decode-to-rows scan everywhere — the
	// equivalence baseline.
	PushdownOff
)

// WithPushdown forces the experiments' projection scan path on or off
// (the default is on exactly for stores that serve encoded column
// blocks). Pushdown runs the hot kernels — the cross-border analysis,
// the Table 1/2 aggregations, the tracker-IP inventory scan, the live
// fixpoint rounds — directly on compressed chunks: zone maps skip
// chunks wholesale, RLE runs aggregate arithmetically, and dictionary
// columns fold per distinct value. It is invisible to every analysis:
// all artifacts render byte-identically with pushdown on or off.
func WithPushdown(on bool) Option {
	return func(o *Options) {
		if on {
			o.Pushdown = PushdownOn
		} else {
			o.Pushdown = PushdownOff
		}
	}
}

// RowStore selects the storage backend of the classified dataset's row
// store. The zero value is the in-memory columnar store. The backend
// never changes the study: the classification phase streams the same
// merged row sequence into whichever sink is configured, and every
// experiment reads through the same chunk-wise Store interface.
type RowStore struct {
	disk      bool
	dir       string
	chunkRows int
}

// MemoryRowStore keeps the dataset's columns in memory (the default).
func MemoryRowStore() RowStore { return RowStore{} }

// DiskRowStore spills the dataset's column chunks to a temporary file
// under dir ("" = the OS temp directory), keeping only the class column
// resident — the backend for Scale >> 1 studies that outgrow memory.
// Call Study.Close when done to release the spill file.
func DiskRowStore(dir string) RowStore { return RowStore{disk: true, dir: dir} }

// WithChunkRows overrides the store's rows-per-chunk (0 = the default;
// exposed mainly for tests exercising multi-chunk behaviour at small
// scales).
func (rs RowStore) WithChunkRows(n int) RowStore {
	rs.chunkRows = n
	return rs
}

// WithRowStore selects the dataset row storage backend.
func WithRowStore(rs RowStore) Option {
	return func(o *Options) { o.RowStore = rs }
}

// WithPack applies a named scenario pack: a registered set of
// deterministic world mutations (multi-region GSLB routing, filter-list
// evasion, population mixes) layered on the base study. "" or "default"
// builds the unmodified study byte for byte. New returns an error for
// unknown names; Packs lists the valid ones.
func WithPack(name string) Option {
	return func(o *Options) { o.Pack = name }
}

// PackInfo describes one registered scenario pack.
type PackInfo struct {
	Name        string
	Description string
}

// Packs lists the registered scenario packs, "default" first.
func Packs() []PackInfo {
	var out []PackInfo
	for _, p := range pack.All() {
		out = append(out, PackInfo{Name: p.Name, Description: p.Description})
	}
	return out
}
