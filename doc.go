// Package crossborder reproduces "Tracing Cross Border Web Tracking"
// (Iordanou, Smaragdakis, Poese, Laoutaris — IMC 2018): a measurement
// methodology that quantifies how many web tracking flows cross national
// and EU28/GDPR borders.
//
// The library rebuilds the paper's entire pipeline on a synthetic, fully
// deterministic substrate:
//
//   - a browser-extension study over a synthetic web with real RTB
//     cascades and cookie syncing (internal/browser, internal/webgraph,
//     internal/rtb);
//   - the multi-stage tracking-flow classifier: easylist/easyprivacy
//     filter matching plus referrer propagation and URL-keyword
//     heuristics (internal/blocklist, internal/classify);
//   - tracker IP inventory completion via passive DNS with per-binding
//     validity windows (internal/pdns, internal/trackerdb);
//   - three geolocation services — ground truth, commercial databases
//     with legal-entity HQ bias, and a RIPE IPmap-style active
//     geolocator (internal/geo);
//   - the border-crossing analysis itself (internal/core), the §5
//     localization what-ifs (internal/locality), the §6 sensitive-category
//     tracing (internal/sensitive), and the §7 ISP NetFlow scale-up
//     (internal/netflow).
//
// The simplest entry point is Study:
//
//	study := crossborder.NewStudy(crossborder.Options{Scale: 0.1})
//	fmt.Println(study.Fig7().Render()) // the MaxMind-vs-IPmap flip
//
// Every table and figure of the paper has a corresponding method; see
// EXPERIMENTS.md for the paper-vs-measured record and DESIGN.md for the
// system inventory.
package crossborder
