// Package crossborder reproduces "Tracing Cross Border Web Tracking"
// (Iordanou, Smaragdakis, Poese, Laoutaris — IMC 2018): a measurement
// methodology that quantifies how many web tracking flows cross national
// and EU28/GDPR borders.
//
// The library rebuilds the paper's entire pipeline on a synthetic, fully
// deterministic substrate:
//
//   - a browser-extension study over a synthetic web with real RTB
//     cascades and cookie syncing (internal/browser, internal/webgraph,
//     internal/rtb);
//   - the multi-stage tracking-flow classifier: easylist/easyprivacy
//     filter matching plus referrer propagation and URL-keyword
//     heuristics (internal/blocklist, internal/classify);
//   - tracker IP inventory completion via passive DNS with per-binding
//     validity windows (internal/pdns, internal/trackerdb);
//   - three geolocation services — ground truth, commercial databases
//     with legal-entity HQ bias, and a RIPE IPmap-style active
//     geolocator (internal/geo);
//   - the border-crossing analysis itself (internal/core), the §5
//     localization what-ifs (internal/locality), the §6 sensitive-category
//     tracing (internal/sensitive), and the §7 ISP NetFlow scale-up
//     (internal/netflow).
//
// # The staged pipeline
//
// New builds the study as a context-aware pipeline — world/zones,
// simulation, classification, inventory, geolocation, sensitive
// identification — with cancellation checkpoints inside every expensive
// phase and per-phase progress events:
//
//	study, err := crossborder.New(ctx,
//		crossborder.WithScale(0.1),
//		crossborder.WithProgress(func(ev crossborder.PhaseEvent) {
//			log.Printf("%s %d/%d", ev.Phase, ev.Done, ev.Total)
//		}))
//	if err != nil { ... } // ctx.Err() on cancellation, workers drained
//	fmt.Println(study.Fig7().Render()) // the MaxMind-vs-IPmap flip
//
// NewStudy remains as a deprecated, non-cancellable shim.
//
// # The experiment registry
//
// Every table and figure of the paper is a registered Experiment with a
// canonical id ("table1" ... "fig12"), paper section, dependencies, and
// a runner producing an Artifact (plain-text Render plus JSON and CSV
// encodings of the structured result). See EXPERIMENTS.md — generated
// from the registry — for the full index, and README.md for a
// quickstart. The registry executes as a dependency graph:
//
//	arts, err := study.RunAll(ctx)        // parallel, paper order
//	a, err := study.Artifact(ctx, "fig7") // one experiment, deps first
//
// Study.RenderAll renders the whole evaluation in paper order,
// byte-identical for a fixed seed at any level of parallelism.
//
// # Parallel simulation and determinism
//
// The simulation/classification pipeline is multicore without giving up
// bit-for-bit reproducibility, via three mechanisms:
//
//   - Per-user RNG streams. Every simulated user browses on a private
//     stream whose seed is derived from (study seed, user ID) by a
//     splitmix64-style hash (browser.UserSeed). A user's event sequence
//     therefore never depends on which worker ran them, when, or what
//     other users did — the property that makes fan-out safe.
//   - Sharded collection with a deterministic merge. Each worker drives
//     its own classify.Shard (private interner, publisher/country index,
//     classification caches, per-user row buffers); no locks on the
//     capture path. classify.ShardedCollector.Finalize then replays the
//     captures in global user order, re-interning strings and remapping
//     ids in encounter order, so the merged Dataset is byte-identical to
//     a sequential run at any worker count (WithWorkers).
//   - Read-only lookup substrates. dns.Server.Resolve after Freeze and
//     netsim.World lookups after Freeze perform no writes and are safe
//     for any number of concurrent readers (verified under -race).
//
// Downstream, core.Analyze shards its row scan over GOMAXPROCS workers
// and merges the per-shard flow maps (commutative counter addition), and
// the registry's RunAll computes independent experiments concurrently
// over the precomputed geolocation joins.
//
// # Row storage and compression
//
// The classified dataset lives column-wise in fixed-size chunks behind
// a pluggable store. WithRowStore selects the backend — the in-memory
// default, or DiskRowStore, which spills chunks to a temporary file
// and keeps only the one-byte class column resident. Sealed chunks run
// through a per-column codec (dictionary, run-length and delta
// encodings with canonical Huffman packing, plus an LZ4-style block
// pass) that cuts the spill file about 3.5x versus the raw layout;
// WithCompression overrides the default (on for disk, off in memory —
// turning it on in memory keeps sealed chunks compressed, which is
// what long-running collectors want). The codec is lossless and
// checksummed, so backend and compression choices never change a
// rendered artifact.
//
// # Scenario packs and sweeps
//
// The base world is one fixed scenario; scenario packs make it
// pluggable without sacrificing reproducibility. A pack (see
// internal/scenario/pack) installs deterministic mutation hooks at
// fixed points of the build — a world hook running between filter-list
// generation and the DNS/world freezes, and a per-user profile hook —
// drawing randomness only from a pack-private stream derived from
// (seed, pack name), so the shared build rng and the per-user browsing
// streams consume exactly the draws of an unmodified build.
// WithPack("default") is therefore byte-identical to no pack at all,
// while the shipped families deliberately bend one subsystem each:
// "routing" re-registers tracker zones as EU-biased multi-region
// deployments under weighted/latency/failover GSLB policies,
// "adversarial" adds filter-list-invisible cloaked and rotating
// hostnames to stress the classifier, and "population" mixes in
// mobile, VPN, and blocker-running users. Each pack declares
// post-study invariants (EU28 confinement rises, the stage-1 catch
// share drops, request volume drops) checked against the default
// build at the same seed. cmd/sweep runs seed × pack grids on a
// worker pool — deterministic at any concurrency — and renders
// cross-study comparison artifacts from a separate registry.
//
// # Live collection and the cluster tier
//
// The batch study has a streaming twin: cmd/collectd ingests
// sequence-numbered uploads into the same columnar engine epoch by
// epoch (internal/ingest), optionally durable via a write-ahead log
// and epoch checkpoints, and serves every registered artifact live.
// internal/cluster scales that horizontally — N collectd shards each
// own a consistent-hash partition of the users, announce themselves
// over a heartbeat/gossip membership layer, and cmd/mergerd merges
// the per-shard epoch snapshots (interner remap, cross-shard
// fixpoint re-closure, aggregate deltas) behind the same /v1/* query
// API. The invariant at every tier is byte parity: single collector,
// crash-recovered collector, and eight-shard merged cluster all
// render the exact bytes of the batch study over the same events.
//
// # Fault tolerance and chaos testing
//
// The serving tier is hardened for hostile conditions and proves it
// with deterministic fault injection (internal/chaos): every fault
// draw comes from a splitmix64 stream keyed by (seed, site), so a
// failing schedule replays exactly. chaos.Transport injects network
// faults — latency, resets, responses lost after the server applied
// them, truncated/corrupted bodies, 503 bursts — and chaos.FS tears
// the WAL/checkpoint write path with short writes, fsync failures,
// and failed renames. Against those faults, collectd bounds its
// in-flight uploads (429 + Retry-After on overload, 413 on oversize
// bodies, per-upload deadlines), clients back off honoring
// Retry-After and re-send idempotently, and mergerd trips a
// per-shard circuit breaker, serving the failed shard's cached
// export while /readyz, /v1/stats, and /metrics report the
// degradation. The chaos harness (internal/ingest/chaostest) runs
// the full cluster under all fault families at fixed seeds, heals,
// and asserts byte parity with the uninterrupted batch study.
package crossborder
