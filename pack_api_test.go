package crossborder_test

import (
	"context"
	"testing"

	"crossborder"
)

// TestDefaultPackRenderAllByteIdentical pins the pack subsystem's
// parity contract at the golden configuration: WithPack("default")
// renders every artifact byte-identically to a pack-less build.
func TestDefaultPackRenderAllByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two scale-0.05 builds are not -short material")
	}
	ctx := context.Background()
	bare, err := crossborder.New(ctx,
		crossborder.WithSeed(1),
		crossborder.WithScale(0.05),
		crossborder.WithVisitsPerUser(40))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := crossborder.New(ctx,
		crossborder.WithSeed(1),
		crossborder.WithScale(0.05),
		crossborder.WithVisitsPerUser(40),
		crossborder.WithPack("default"))
	if err != nil {
		t.Fatal(err)
	}
	want, got := bare.RenderAll(), packed.RenderAll()
	if len(got) != len(want) {
		t.Fatalf("default pack rendered %d artifacts, bare build %d", len(got), len(want))
	}
	ids := crossborder.ExperimentIDs()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("artifact %s differs under the default pack", ids[i])
		}
	}
}

// TestWithPackUnknownErrors: an unknown pack name fails fast with an
// error listing the valid names, before any build work.
func TestWithPackUnknownErrors(t *testing.T) {
	_, err := crossborder.New(context.Background(),
		crossborder.WithScale(0.02), crossborder.WithPack("nope"))
	if err == nil {
		t.Fatal("New(WithPack(nope)) succeeded, want error")
	}
}

// TestPacksListed: the pack listing leads with "default" and includes
// the three shipped families.
func TestPacksListed(t *testing.T) {
	packs := crossborder.Packs()
	if len(packs) < 4 || packs[0].Name != "default" {
		t.Fatalf("Packs() = %+v, want default first and >=4 entries", packs)
	}
	have := map[string]bool{}
	for _, p := range packs {
		have[p.Name] = true
		if p.Description == "" {
			t.Errorf("pack %s has no description", p.Name)
		}
	}
	for _, n := range []string{"routing", "adversarial", "population"} {
		if !have[n] {
			t.Errorf("pack %s not listed", n)
		}
	}
}
