package crossborder_test

import (
	"context"
	"testing"

	"crossborder"
	"crossborder/internal/classify"
)

// TestCompressedStoresMatchGolden is the codec's study-level contract:
// at the golden configuration (seed 1 / scale 0.05) the compressed
// in-memory store and the compressed spill store must render all 20
// experiment artifacts byte-identically to the uncompressed study —
// with query pushdown in every position of its tri-state (auto resolves
// to on for these stores, off forces the decode-to-rows baseline, and
// forcing it on over the wide golden store exercises the copy
// fallback) — and the spill file must be at least 3x smaller than the
// raw fixed-width column layout.
func TestCompressedStoresMatchGolden(t *testing.T) {
	build := func(opts ...crossborder.Option) *crossborder.Study {
		t.Helper()
		opts = append([]crossborder.Option{
			crossborder.WithSeed(1),
			crossborder.WithScale(0.05),
			crossborder.WithVisitsPerUser(40),
		}, opts...)
		st, err := crossborder.New(context.Background(), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	golden := build()
	want := golden.RenderAll()
	ids := crossborder.ExperimentIDs()

	for _, variant := range []struct {
		name string
		opts []crossborder.Option
	}{
		{"mem-compressed", []crossborder.Option{crossborder.WithCompression(true)}},
		{"spill-compressed", []crossborder.Option{crossborder.WithRowStore(crossborder.DiskRowStore(""))}},
		{"mem-compressed-no-pushdown", []crossborder.Option{
			crossborder.WithCompression(true), crossborder.WithPushdown(false)}},
		{"spill-compressed-no-pushdown", []crossborder.Option{
			crossborder.WithRowStore(crossborder.DiskRowStore("")), crossborder.WithPushdown(false)}},
		{"mem-wide-pushdown", []crossborder.Option{crossborder.WithPushdown(true)}},
	} {
		st := build(variant.opts...)
		got := st.RenderAll()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: artifact %s differs from the uncompressed golden rendering",
					variant.name, ids[i])
			}
		}
		if variant.name == "spill-compressed" {
			sp, ok := st.Scenario().Dataset.Store.(*classify.SpillStore)
			if !ok {
				t.Fatalf("disk study is backed by %T, want *classify.SpillStore", st.Scenario().Dataset.Store)
			}
			raw, size := sp.RawSize(), sp.Size()
			t.Logf("spill file: %d bytes for %d raw (%.2fx, %.2f B/row over %d rows)",
				size, raw, float64(raw)/float64(size), float64(size)/float64(sp.Len()), sp.Len())
			if size*3 > raw {
				t.Errorf("spill compression ratio %.2fx is below the 3x floor (%d of %d raw bytes)",
					float64(raw)/float64(size), size, raw)
			}
		}
		if err := st.Close(); err != nil {
			t.Errorf("%s: Close: %v", variant.name, err)
		}
	}
}

// TestCompressionOffForcesRawSpill pins the override direction the
// golden test does not cover: WithCompression(false) on a disk store
// keeps the byte-transparent layout (file size equals the raw
// reference) and still renders the same study.
func TestCompressionOffForcesRawSpill(t *testing.T) {
	st, err := crossborder.New(context.Background(),
		crossborder.WithSeed(2),
		crossborder.WithScale(0.02),
		crossborder.WithVisitsPerUser(8),
		crossborder.WithRowStore(crossborder.DiskRowStore("")),
		crossborder.WithCompression(false))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sp, ok := st.Scenario().Dataset.Store.(*classify.SpillStore)
	if !ok {
		t.Fatalf("disk study is backed by %T, want *classify.SpillStore", st.Scenario().Dataset.Store)
	}
	// The raw layout adds a few framing bytes per chunk but stays
	// within a fraction of a percent of the fixed-width reference.
	if sp.Size() < sp.RawSize() {
		t.Fatalf("uncompressed spill (%d bytes) is smaller than the raw reference (%d): codec ran despite the override",
			sp.Size(), sp.RawSize())
	}
}
