package core

import (
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// countryFilterDataset builds a compressed multi-chunk store whose
// Country column segregates by chunk (per-user capture blocks shorter
// than the chunk size), so zone maps genuinely exclude chunks for most
// country-equality predicates.
func countryFilterDataset(t *testing.T) (*classify.Dataset, geo.Service) {
	t.Helper()
	ds := &classify.Dataset{FQDNs: classify.NewInterner()}
	ds.Countries = []geodata.Country{"DE", "ES", "GR", "US"}
	id := ds.FQDNs.ID("t.example.com")
	sink := classify.NewMemStoreCompressed(256)
	const captureRows = 256 // one user per chunk: tight per-chunk country ranges
	for i := 0; i < 4096; i++ {
		user := i / captureRows
		r := classify.Row{FQDN: id, IP: netsim.IP(1 + i%16), Country: uint8(user % 4)}
		if i%3 != 0 {
			r.Class = classify.ClassABP
		}
		sink.Append(r)
	}
	st, err := sink.Seal()
	if err != nil {
		t.Fatal(err)
	}
	ds.Store = st
	locs := make(map[netsim.IP]geo.Location, 16)
	for i := 0; i < 16; i++ {
		loc := geo.Location{Country: "DE", Continent: geodata.EU28}
		if i%5 == 0 {
			loc = geo.Location{Country: "US", Continent: geodata.NorthAmerica}
		}
		locs[netsim.IP(1+i)] = loc
	}
	return ds, geo.Static{ServiceName: "test", Locations: locs}
}

// TestAnalyzeWhereCountryEquality pins the pruned projection path to
// the row path: for every country (including one the dataset never
// saw), the zone-map-pruned kernel must produce exactly the analysis
// the opaque row filter produces, under both pushdown modes.
func TestAnalyzeWhereCountryEquality(t *testing.T) {
	ds, svc := countryFilterDataset(t)
	for _, mode := range []classify.PushdownMode{classify.PushdownOn, classify.PushdownOff} {
		ds.Pushdown = mode
		for _, c := range []geodata.Country{"DE", "ES", "GR", "US", "FR"} {
			c := c
			got := AnalyzeWhere(ds, svc, CountryEquals(c))
			want := Analyze(ds, svc, func(r classify.Row) bool {
				return ds.Countries[r.Country] == c
			})
			if !got.Equal(want) {
				t.Errorf("mode=%v country=%s: pruned path disagrees with row path (got %d flows, want %d)",
					mode, c, got.Total(), want.Total())
			}
		}
	}
}

// TestAnalyzeWhereOpaqueRowPredicate: an opaque Row predicate (alone or
// combined with EqCountry) must behave exactly like Analyze's filter.
func TestAnalyzeWhereOpaqueRowPredicate(t *testing.T) {
	ds, svc := countryFilterDataset(t)
	ds.Pushdown = classify.PushdownOn
	evenIP := func(r classify.Row) bool { return r.IP%2 == 0 }
	got := AnalyzeWhere(ds, svc, Predicate{Row: evenIP})
	want := Analyze(ds, svc, evenIP)
	if !got.Equal(want) {
		t.Error("Row-only predicate disagrees with Analyze filter")
	}
	combined := AnalyzeWhere(ds, svc, Predicate{Row: evenIP, EqCountry: "ES"})
	wantBoth := Analyze(ds, svc, func(r classify.Row) bool {
		return ds.Countries[r.Country] == "ES" && evenIP(r)
	})
	if !combined.Equal(wantBoth) {
		t.Error("EqCountry+Row predicate disagrees with combined row filter")
	}
}

// TestAnalyzeWhereUnknownCountryEmpty: a country absent from the
// dataset's interned table returns the empty analysis without scanning.
func TestAnalyzeWhereUnknownCountryEmpty(t *testing.T) {
	ds, svc := countryFilterDataset(t)
	a := AnalyzeWhere(ds, svc, CountryEquals("JP"))
	if a.Total() != 0 || a.Unknown() != 0 {
		t.Errorf("unknown country: total=%d unknown=%d, want empty", a.Total(), a.Unknown())
	}
}
