package core

import (
	"math"
	"testing"

	"crossborder/internal/geodata"
)

func TestJurisdictionDefinitions(t *testing.T) {
	g := GDPR()
	if !g.Member("DE") || !g.Member("GB") || g.Member("CH") || g.Member("US") {
		t.Error("GDPR membership wrong")
	}
	e := EEAPlus()
	if !e.Member("CH") || !e.Member("DE") || e.Member("US") {
		t.Error("EEA+ membership wrong")
	}
	u := USA()
	if !u.Member("US") || u.Member("CA") {
		t.Error("USA membership wrong")
	}
	n := National("GR")
	if !n.Member("GR") || n.Member("CY") {
		t.Error("National membership wrong")
	}
	c := Continent(geodata.SouthAmerica)
	if !c.Member("BR") || c.Member("MX") {
		t.Error("Continent membership wrong")
	}
	if g.Name == "" || e.Name == "" || u.Name == "" || n.Name != "Greece" {
		t.Error("jurisdiction names missing")
	}
}

func TestJurisdictionConfinement(t *testing.T) {
	a := sample() // DE: 60 DE, 25 NL, 10 US, 5 CH; GR: 1 GR, 6 DE, 3 US
	pct, flows := a.JurisdictionConfinement(GDPR(), nil)
	if flows != 110 {
		t.Fatalf("flows = %d", flows)
	}
	if math.Abs(pct-100*92.0/110) > 1e-9 {
		t.Errorf("GDPR confinement = %f", pct)
	}
	// EEA+ adds the 5 CH flows.
	pct, _ = a.JurisdictionConfinement(EEAPlus(), nil)
	if math.Abs(pct-100*97.0/110) > 1e-9 {
		t.Errorf("EEA+ confinement = %f", pct)
	}
	// National view matches RegionConfinement's in-country share.
	pct, _ = a.JurisdictionConfinement(National("DE"), func(c geodata.Country) bool { return c == "DE" })
	if math.Abs(pct-60) > 1e-9 {
		t.Errorf("DE national = %f", pct)
	}
	// US scope.
	pct, _ = a.JurisdictionConfinement(USA(), nil)
	if math.Abs(pct-100*13.0/110) > 1e-9 {
		t.Errorf("USA share = %f", pct)
	}
	// Empty filter result.
	if pct, flows := a.JurisdictionConfinement(GDPR(), func(geodata.Country) bool { return false }); pct != 0 || flows != 0 {
		t.Error("empty selection must be zeros")
	}
}

func TestCrossBorderMatrix(t *testing.T) {
	a := sample()
	rows := a.CrossBorderMatrix(GDPR(), EU28Origin)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Country != "DE" || rows[0].Flows != 100 {
		t.Errorf("first row = %+v", rows[0])
	}
	// DE: 85/100 inside GDPR; GR: 7/10.
	if math.Abs(rows[0].InEU28-85) > 1e-9 {
		t.Errorf("DE inside = %f", rows[0].InEU28)
	}
	if math.Abs(rows[1].InEU28-70) > 1e-9 {
		t.Errorf("GR inside = %f", rows[1].InEU28)
	}
}

func TestJurisdictionConsistencyWithRegionConfinement(t *testing.T) {
	a := sample()
	_, inEU, _, _ := a.RegionConfinement(EU28Origin)
	pct, _ := a.JurisdictionConfinement(GDPR(), EU28Origin)
	if math.Abs(inEU-pct) > 1e-9 {
		t.Errorf("GDPR jurisdiction %f != RegionConfinement EU28 %f", pct, inEU)
	}
}
