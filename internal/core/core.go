// Package core implements the paper's primary contribution: quantifying
// how many tracking flows cross data-protection borders. It joins
// classified tracking flows with a geolocation service and aggregates
// origin→destination matrices at country and continent granularity,
// producing the confinement percentages and Sankey flows of §4 (Figs 6–8)
// and §7 (Table 8, Fig 12).
package core

import (
	"runtime"
	"sort"
	"sync"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// Flow is the origin/destination of one tracking flow at country
// granularity. It is a small comparable value type usable as a map key,
// following the gopacket Flow idiom.
type Flow struct {
	Src, Dst geodata.Country
}

// Reverse returns the flow with endpoints swapped.
func (f Flow) Reverse() Flow { return Flow{Src: f.Dst, Dst: f.Src} }

// FastHash returns a symmetric hash: f and f.Reverse() hash identically,
// so bidirectional traffic of one pair shards together.
func (f Flow) FastHash() uint64 {
	ha := hashString(string(f.Src))
	hb := hashString(string(f.Dst))
	return ha ^ hb // XOR is symmetric
}

func hashString(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// Finalize so short country codes still spread.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Analysis accumulates origin→destination tracking-flow counts. The zero
// value is not ready; use NewAnalysis. Add flows, then query. Not safe
// for concurrent mutation.
type Analysis struct {
	byFlow  map[Flow]int64
	total   int64
	unknown int64
}

// NewAnalysis returns an empty accumulator.
func NewAnalysis() *Analysis {
	return &Analysis{byFlow: make(map[Flow]int64)}
}

// Add records n flows from the user country src to the tracker country dst.
func (a *Analysis) Add(src, dst geodata.Country, n int64) {
	a.byFlow[Flow{src, dst}] += n
	a.total += n
}

// AddUnknown records flows whose destination could not be geolocated.
func (a *Analysis) AddUnknown(n int64) {
	a.unknown += n
	a.total += n
}

// Total returns the number of flows recorded (including unlocatable ones).
func (a *Analysis) Total() int64 { return a.total }

// Unknown returns the number of unlocatable flows.
func (a *Analysis) Unknown() int64 { return a.unknown }

// Merge folds another accumulator into a. Counter addition commutes, so
// merging per-shard analyses in any order yields the same totals as one
// sequential pass — which is what keeps the parallel Analyze
// deterministic. The same property makes per-epoch deltas exact: a full
// rescan equals the merge of the rescans of any partition of the rows,
// which is how the live collector keeps its flow maps current without
// re-reading settled epochs.
func (a *Analysis) Merge(b *Analysis) {
	for f, n := range b.byFlow {
		a.byFlow[f] += n
	}
	a.total += b.total
	a.unknown += b.unknown
}

// Clone returns an independent copy of the accumulator. The live
// collector publishes a clone with every epoch snapshot so queries read
// a frozen flow map while ingestion keeps merging deltas into the
// original.
func (a *Analysis) Clone() *Analysis {
	c := &Analysis{
		byFlow:  make(map[Flow]int64, len(a.byFlow)),
		total:   a.total,
		unknown: a.unknown,
	}
	for f, n := range a.byFlow {
		c.byFlow[f] = n
	}
	return c
}

// Equal reports whether two accumulators hold identical counts (zero
// entries excluded). It backs the property tests pinning incremental
// delta merging to the full rescan.
func (a *Analysis) Equal(b *Analysis) bool {
	if a.total != b.total || a.unknown != b.unknown {
		return false
	}
	count := func(m map[Flow]int64) int {
		n := 0
		for _, v := range m {
			if v != 0 {
				n++
			}
		}
		return n
	}
	if count(a.byFlow) != count(b.byFlow) {
		return false
	}
	for f, n := range a.byFlow {
		if n != 0 && b.byFlow[f] != n {
			return false
		}
	}
	return true
}

// analyzeRowsPerShard is the minimum row count that justifies a worker:
// below this, goroutine + merge overhead beats the scan.
const analyzeRowsPerShard = 1 << 16

// Analyze joins the classified dataset's tracking rows with a geolocation
// service. filter, when non-nil, selects which rows participate (e.g.
// only EU28 users, only sensitive sites).
//
// The scan is chunk-wise over the dataset's columnar store: workers take
// contiguous chunk ranges, each with a private decode buffer and a
// private Analysis, merged at the end. The service must be safe for
// concurrent Locate calls (all geo implementations are), and filter,
// like the service, may be invoked from multiple goroutines at once and
// must not mutate shared state. The result is identical to the
// sequential scan, for any worker count and either store backend.
func Analyze(ds *classify.Dataset, svc geo.Service, filter func(classify.Row) bool) *Analysis {
	return analyze(ds, svc, filter, -1)
}

// Predicate narrows Analyze to a subset of rows in a form the scan
// planner can understand. Row, when non-nil, is an opaque per-row
// filter — it forces the decode-to-rows path, exactly like Analyze's
// filter argument. EqCountry, when non-empty, declares the predicate to
// be "user country equals EqCountry": AnalyzeWhere then keeps the
// decode-free projection path, where chunk zone maps prune whole chunks
// whose country range excludes the value and the Country column's RLE
// runs skip non-matching spans without visiting a row. When both are
// set, Row further narrows the country-equal rows (row path).
type Predicate struct {
	Row       func(classify.Row) bool
	EqCountry geodata.Country
}

// CountryEquals is the Predicate selecting one origin country.
func CountryEquals(c geodata.Country) Predicate {
	return Predicate{EqCountry: c}
}

// AnalyzeWhere is Analyze with a typed predicate. A country-equality
// predicate runs on the projection kernel with zone-map chunk pruning;
// an opaque Row predicate is equivalent to Analyze(ds, svc, p.Row). The
// result is always identical to the row-path scan with the equivalent
// row filter.
func AnalyzeWhere(ds *classify.Dataset, svc geo.Service, p Predicate) *Analysis {
	if p.EqCountry == "" {
		return analyze(ds, svc, p.Row, -1)
	}
	eqID := -1
	for i, c := range ds.Countries {
		if c == p.EqCountry {
			eqID = i
			break
		}
	}
	if eqID < 0 {
		// The dataset never saw a user from that country.
		return NewAnalysis()
	}
	cid := uint8(eqID)
	filter := func(r classify.Row) bool { return r.Country == cid }
	if p.Row != nil {
		inner := p.Row
		combined := func(r classify.Row) bool { return r.Country == cid && inner(r) }
		return analyze(ds, svc, combined, -1)
	}
	return analyze(ds, svc, filter, eqID)
}

// analyze is the shared scan driver. eqID >= 0 declares filter to be
// the country-equality predicate on that Countries index, which keeps
// the projection kernel eligible (it enforces the equality itself);
// eqID < 0 treats a non-nil filter as opaque.
func analyze(ds *classify.Dataset, svc geo.Service, filter func(classify.Row) bool, eqID int) *Analysis {
	st := ds.Store
	if st == nil {
		return NewAnalysis()
	}
	chunks := st.NumChunks()
	workers := runtime.GOMAXPROCS(0)
	if max := 1 + st.Len()/analyzeRowsPerShard; workers > max {
		workers = max
	}
	if workers > chunks {
		workers = chunks
	}
	// The projection kernel serves the no-filter call and the declared
	// country-equality predicate; an opaque filter needs full rows, so
	// it keeps the decode-to-rows path.
	pushdown := (filter == nil || eqID >= 0) && ds.PushdownEnabled()
	if workers <= 1 {
		if pushdown {
			return analyzeChunksProj(ds, svc, eqID, 0, chunks)
		}
		return analyzeChunks(ds, svc, filter, 0, chunks)
	}
	parts := make([]*Analysis, workers)
	var wg sync.WaitGroup
	per := (chunks + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > chunks {
			hi = chunks
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			if pushdown {
				parts[w] = analyzeChunksProj(ds, svc, eqID, lo, hi)
			} else {
				parts[w] = analyzeChunks(ds, svc, filter, lo, hi)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	a := parts[0]
	for _, p := range parts[1:] {
		a.Merge(p)
	}
	return a
}

// analyzeChunks is the sequential columnar scan over chunks [lo, hi),
// reusing one decode buffer. The full Row materializes only for rows
// that pass the tracking test and face a filter.
func analyzeChunks(ds *classify.Dataset, svc geo.Service, filter func(classify.Row) bool, lo, hi int) *Analysis {
	a := NewAnalysis()
	buf := classify.GetChunk()
	defer classify.PutChunk(buf)
	for ci := lo; ci < hi; ci++ {
		c := classify.MustChunk(ds.Store, ci, buf)
		for i, cls := range c.Class {
			if !cls.IsTracking() {
				continue
			}
			if filter != nil && !filter(c.Row(i)) {
				continue
			}
			src := ds.Countries[c.Country[i]]
			loc, ok := svc.Locate(c.IP[i])
			if !ok {
				a.AddUnknown(1)
				continue
			}
			a.Add(src, loc.Country, 1)
		}
	}
	return a
}

// analyzeChunksProj is the decode-free projection kernel over chunks
// [lo, hi): it reads only the Country and IP columns in their encoded
// forms. Chunks with no tracking rows load nothing (the resident class
// column decides — the zone map's class bitmap can go stale after the
// semi-stage fixpoint). Country arrives as RLE runs, so the origin
// country resolves once per run rather than once per row; IP usually
// arrives as a dictionary, so Locate runs once per distinct address and
// per-run counts fold into one Add per (origin, destination) pair. The
// result is identical to analyzeChunks with a nil filter: counter
// addition commutes, so folding rows by run and by dictionary id
// changes the order of Adds but not any total.
//
// eqID >= 0 restricts the scan to rows whose Country column holds that
// id: the chunk's zone map (min/max over the immutable Country column,
// authoritative) drops whole chunks before any block fetch, and
// non-matching RLE runs skip without touching the IP column. The result
// is identical to analyzeChunks with the equivalent row filter.
func analyzeChunksProj(ds *classify.Dataset, svc geo.Service, eqID int, lo, hi int) *Analysis {
	a := NewAnalysis()
	pc := classify.GetProj()
	defer classify.PutProj(pc)
	cols := classify.Cols(classify.ColIP, classify.ColCountry)
	var (
		locs    []geodata.Country // memoized Locate result per dict id
		locSt   []uint8           // 0 unresolved, 1 located, 2 unknown
		cnt     []int64           // per-run count per dict id
		touched []uint32          // dict ids with cnt != 0 this run
	)
	for ci := lo; ci < hi; ci++ {
		classify.ProjChunkAt(ds.Store, ci, cols, pc)
		if eqID >= 0 {
			if z := pc.Zone; z != nil &&
				(uint64(eqID) < z.Min[classify.ColCountry] || uint64(eqID) > z.Max[classify.ColCountry]) {
				continue
			}
		}
		cls := pc.Class
		if !classify.AnyTracking(cls) {
			continue
		}
		runs := pc.Runs(classify.ColCountry)
		dict, idx, haveDict := pc.DictView(classify.ColIP)
		if haveDict {
			if cap(locs) < len(dict) {
				locs = make([]geodata.Country, len(dict))
				locSt = make([]uint8, len(dict))
				cnt = make([]int64, len(dict))
			}
			locs = locs[:len(dict)]
			locSt = locSt[:len(dict)]
			cnt = cnt[:len(dict)]
			for i := range locSt {
				locSt[i] = 0
			}
		}
		var ips []uint64
		if !haveDict {
			ips = pc.Wide(classify.ColIP)
		}
		row := 0
		for _, r := range runs {
			end := row + r.Len
			if eqID >= 0 && r.Value != uint64(eqID) {
				row = end
				continue
			}
			src := ds.Countries[r.Value]
			if haveDict {
				touched = touched[:0]
				for i := row; i < end; i++ {
					if !cls[i].IsTracking() {
						continue
					}
					k := idx[i]
					if cnt[k] == 0 {
						touched = append(touched, k)
					}
					cnt[k]++
				}
				for _, k := range touched {
					if locSt[k] == 0 {
						if loc, ok := svc.Locate(netsim.IP(dict[k])); ok {
							locs[k] = loc.Country
							locSt[k] = 1
						} else {
							locSt[k] = 2
						}
					}
					if locSt[k] == 1 {
						a.Add(src, locs[k], cnt[k])
					} else {
						a.AddUnknown(cnt[k])
					}
					cnt[k] = 0
				}
			} else {
				for i := row; i < end; i++ {
					if !cls[i].IsTracking() {
						continue
					}
					loc, ok := svc.Locate(netsim.IP(ips[i]))
					if !ok {
						a.AddUnknown(1)
						continue
					}
					a.Add(src, loc.Country, 1)
				}
			}
			row = end
		}
	}
	return a
}

// Edge is one aggregated origin→destination cell.
type Edge struct {
	From, To string
	Count    int64
	Percent  float64 // of the origin's total
}

// continentKey maps both European regions onto themselves but keeps the
// paper's distinction: EU28 and Rest of Europe are separate regions in
// every figure.
func continentName(c geodata.Country) string {
	return geodata.ContinentOf(c).String()
}

// ContinentEdges aggregates flows between regions (Fig 6). Percentages
// are per origin region; edges are ordered by origin then by descending
// count.
func (a *Analysis) ContinentEdges() []Edge {
	counts := make(map[[2]string]int64)
	origins := make(map[string]int64)
	for f, n := range a.byFlow {
		from, to := continentName(f.Src), continentName(f.Dst)
		counts[[2]string{from, to}] += n
		origins[from] += n
	}
	return edgesFrom(counts, origins)
}

// DestContinents returns the destination-region split for flows whose
// origin satisfies originFilter (Fig 7: EU28 users only).
func (a *Analysis) DestContinents(originFilter func(geodata.Country) bool) []Edge {
	counts := make(map[[2]string]int64)
	origins := make(map[string]int64)
	for f, n := range a.byFlow {
		if originFilter != nil && !originFilter(f.Src) {
			continue
		}
		to := continentName(f.Dst)
		counts[[2]string{"origin", to}] += n
		origins["origin"] += n
	}
	return edgesFrom(counts, origins)
}

// CountryEdges aggregates flows between countries (Fig 8), restricted to
// origins satisfying originFilter (nil = all).
func (a *Analysis) CountryEdges(originFilter func(geodata.Country) bool) []Edge {
	counts := make(map[[2]string]int64)
	origins := make(map[string]int64)
	for f, n := range a.byFlow {
		if originFilter != nil && !originFilter(f.Src) {
			continue
		}
		counts[[2]string{string(f.Src), string(f.Dst)}] += n
		origins[string(f.Src)] += n
	}
	return edgesFrom(counts, origins)
}

func edgesFrom(counts map[[2]string]int64, origins map[string]int64) []Edge {
	out := make([]Edge, 0, len(counts))
	for k, n := range counts {
		pct := 0.0
		if origins[k[0]] > 0 {
			pct = 100 * float64(n) / float64(origins[k[0]])
		}
		out = append(out, Edge{From: k[0], To: k[1], Count: n, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].To < out[j].To
	})
	return out
}

// Confinement summarizes locality for one origin country.
type Confinement struct {
	Country geodata.Country
	Flows   int64
	// InCountry is the share of flows terminating in the same country.
	InCountry float64
	// InEU28 is the share terminating inside EU28.
	InEU28 float64
	// InEurope is the share terminating in EU28 + Rest of Europe (the
	// paper's "continent" level for European users).
	InEurope float64
}

// ConfinementByCountry computes per-origin-country confinement, sorted by
// descending flow count.
func (a *Analysis) ConfinementByCountry() []Confinement {
	type acc struct {
		total, inCountry, inEU, inEurope int64
	}
	accs := make(map[geodata.Country]*acc)
	for f, n := range a.byFlow {
		x := accs[f.Src]
		if x == nil {
			x = &acc{}
			accs[f.Src] = x
		}
		x.total += n
		if f.Dst == f.Src {
			x.inCountry += n
		}
		dc := geodata.ContinentOf(f.Dst)
		if dc == geodata.EU28 {
			x.inEU += n
		}
		if dc == geodata.EU28 || dc == geodata.RestOfEurope {
			x.inEurope += n
		}
	}
	out := make([]Confinement, 0, len(accs))
	for c, x := range accs {
		out = append(out, Confinement{
			Country:   c,
			Flows:     x.total,
			InCountry: 100 * float64(x.inCountry) / float64(x.total),
			InEU28:    100 * float64(x.inEU) / float64(x.total),
			InEurope:  100 * float64(x.inEurope) / float64(x.total),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		return out[i].Country < out[j].Country
	})
	return out
}

// RegionConfinement reports aggregate locality for all flows whose origin
// satisfies filter: the share terminating in the origin country, inside
// EU28, and inside Europe.
func (a *Analysis) RegionConfinement(filter func(geodata.Country) bool) (inCountry, inEU28, inEurope float64, flows int64) {
	var total, inC, inEU, inEur int64
	for f, n := range a.byFlow {
		if filter != nil && !filter(f.Src) {
			continue
		}
		total += n
		if f.Dst == f.Src {
			inC += n
		}
		dc := geodata.ContinentOf(f.Dst)
		if dc == geodata.EU28 {
			inEU += n
		}
		if dc == geodata.EU28 || dc == geodata.RestOfEurope {
			inEur += n
		}
	}
	if total == 0 {
		return 0, 0, 0, 0
	}
	return 100 * float64(inC) / float64(total),
		100 * float64(inEU) / float64(total),
		100 * float64(inEur) / float64(total),
		total
}

// EU28Origin is the origin filter for the paper's headline analyses.
func EU28Origin(c geodata.Country) bool { return geodata.IsEU28(c) }

// TopDestinations returns the n busiest destination countries with their
// share of all flows (Fig 12's per-ISP views).
func (a *Analysis) TopDestinations(n int) []Edge {
	counts := make(map[string]int64)
	var total int64
	for f, cnt := range a.byFlow {
		counts[string(f.Dst)] += cnt
		total += cnt
	}
	out := make([]Edge, 0, len(counts))
	for dst, cnt := range counts {
		out = append(out, Edge{From: "all", To: dst, Count: cnt, Percent: 100 * float64(cnt) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].To < out[j].To
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
