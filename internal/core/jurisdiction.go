package core

import (
	"crossborder/internal/geodata"
)

// Jurisdiction is a set of countries under one data-protection regime.
// The paper's analysis is GDPR/EU28-centric, but its §9 future work calls
// for monitoring other regulations (US scope, COPPA); this type
// generalizes the confinement computation to any membership predicate.
type Jurisdiction struct {
	// Name labels reports.
	Name string
	// Member reports whether a country is inside the jurisdiction.
	Member func(geodata.Country) bool
}

// GDPR is the EU28 jurisdiction of the paper's headline analysis.
func GDPR() Jurisdiction {
	return Jurisdiction{Name: "GDPR (EU28)", Member: geodata.IsEU28}
}

// EEAPlus approximates the wider European Economic Area view some DPAs
// take: EU28 plus the EFTA-style neighbors in the dataset.
func EEAPlus() Jurisdiction {
	extra := map[geodata.Country]bool{"CH": true, "NO": true}
	return Jurisdiction{
		Name: "EEA+",
		Member: func(c geodata.Country) bool {
			return geodata.IsEU28(c) || extra[c]
		},
	}
}

// USA is the single-country jurisdiction for COPPA-style analyses.
func USA() Jurisdiction {
	return Jurisdiction{Name: "USA", Member: func(c geodata.Country) bool { return c == "US" }}
}

// National is the one-country jurisdiction used for the paper's national
// confinement numbers.
func National(c geodata.Country) Jurisdiction {
	return Jurisdiction{
		Name:   geodata.Name(c),
		Member: func(cc geodata.Country) bool { return cc == c },
	}
}

// Continent covers one of the world regions.
func Continent(region geodata.Continent) Jurisdiction {
	return Jurisdiction{
		Name: region.String(),
		Member: func(c geodata.Country) bool {
			return geodata.ContinentOf(c) == region
		},
	}
}

// JurisdictionConfinement returns the share of flows (with origin
// satisfying originFilter, nil = all) terminating inside the
// jurisdiction, along with the flow count considered.
func (a *Analysis) JurisdictionConfinement(j Jurisdiction, originFilter func(geodata.Country) bool) (pct float64, flows int64) {
	var inside, total int64
	for f, n := range a.byFlow {
		if originFilter != nil && !originFilter(f.Src) {
			continue
		}
		total += n
		if j.Member(f.Dst) {
			inside += n
		}
	}
	if total == 0 {
		return 0, 0
	}
	return 100 * float64(inside) / float64(total), total
}

// CrossBorderMatrix returns, for each origin country satisfying filter,
// the share of its flows that leave the jurisdiction — the per-regulator
// monitoring view the paper's §9 proposes to productize.
func (a *Analysis) CrossBorderMatrix(j Jurisdiction, filter func(geodata.Country) bool) []Confinement {
	type acc struct{ total, inside int64 }
	accs := make(map[geodata.Country]*acc)
	for f, n := range a.byFlow {
		if filter != nil && !filter(f.Src) {
			continue
		}
		x := accs[f.Src]
		if x == nil {
			x = &acc{}
			accs[f.Src] = x
		}
		x.total += n
		if j.Member(f.Dst) {
			x.inside += n
		}
	}
	out := make([]Confinement, 0, len(accs))
	for c, x := range accs {
		out = append(out, Confinement{
			Country: c,
			Flows:   x.total,
			// InEU28 is reused to carry the jurisdiction share here.
			InEU28: 100 * float64(x.inside) / float64(x.total),
		})
	}
	sortConfinements(out)
	return out
}

func sortConfinements(out []Confinement) {
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if a.Flows > b.Flows || (a.Flows == b.Flows && a.Country < b.Country) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
}
