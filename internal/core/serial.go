package core

import (
	"sort"

	"crossborder/internal/geodata"
)

// FlowCount is one origin→destination counter of an Analysis: the unit
// of (de)serialization the durable collector's checkpoints use to
// persist the incrementally merged flow maps.
type FlowCount struct {
	Src geodata.Country `json:"src"`
	Dst geodata.Country `json:"dst"`
	N   int64           `json:"n"`
}

// Flows exports the non-zero flow counters sorted by (Src, Dst) — a
// deterministic snapshot with RestoreAnalysis as its exact inverse:
// RestoreAnalysis(a.Flows(), a.Unknown()).Equal(a) always holds.
func (a *Analysis) Flows() []FlowCount {
	out := make([]FlowCount, 0, len(a.byFlow))
	for f, n := range a.byFlow {
		if n != 0 {
			out = append(out, FlowCount{Src: f.Src, Dst: f.Dst, N: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// RestoreAnalysis rebuilds an accumulator from a Flows() snapshot plus
// the unknown-destination count.
func RestoreAnalysis(flows []FlowCount, unknown int64) *Analysis {
	a := NewAnalysis()
	for _, f := range flows {
		a.Add(f.Src, f.Dst, f.N)
	}
	if unknown != 0 {
		a.AddUnknown(unknown)
	}
	return a
}
