package core

import (
	"math"
	"testing"
	"testing/quick"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

func TestFlowValueType(t *testing.T) {
	f := Flow{Src: "DE", Dst: "US"}
	if f.Reverse() != (Flow{Src: "US", Dst: "DE"}) {
		t.Error("Reverse broken")
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Error("FastHash must be symmetric")
	}
	// Usable as map key.
	m := map[Flow]int{f: 1}
	if m[Flow{Src: "DE", Dst: "US"}] != 1 {
		t.Error("map key equality broken")
	}
}

func TestFastHashSpreads(t *testing.T) {
	countries := geodata.AllCountries()
	seen := map[uint64]int{}
	for _, a := range countries {
		for _, b := range countries {
			seen[Flow{Src: a.Code, Dst: b.Code}.FastHash()&15]++
		}
	}
	n := len(countries) * len(countries)
	for shard, cnt := range seen {
		frac := float64(cnt) / float64(n)
		if frac > 0.25 {
			t.Errorf("shard %d holds %.0f%% of flows", shard, frac*100)
		}
	}
}

func TestFastHashSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		fl := Flow{Src: geodata.Country(a), Dst: geodata.Country(b)}
		return fl.FastHash() == fl.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// build a small analysis by hand:
//
//	DE users: 60 to DE, 25 to NL, 10 to US, 5 to CH
//	GR users: 1 to GR, 6 to DE, 3 to US
func sample() *Analysis {
	a := NewAnalysis()
	a.Add("DE", "DE", 60)
	a.Add("DE", "NL", 25)
	a.Add("DE", "US", 10)
	a.Add("DE", "CH", 5)
	a.Add("GR", "GR", 1)
	a.Add("GR", "DE", 6)
	a.Add("GR", "US", 3)
	return a
}

func TestRegionConfinement(t *testing.T) {
	a := sample()
	inC, inEU, inEur, flows := a.RegionConfinement(EU28Origin)
	if flows != 110 {
		t.Fatalf("flows = %d", flows)
	}
	// In-country: 60 (DE) + 1 (GR) = 61/110.
	if math.Abs(inC-100*61.0/110) > 1e-9 {
		t.Errorf("inCountry = %f", inC)
	}
	// In EU28: 60+25+1+6 = 92/110.
	if math.Abs(inEU-100*92.0/110) > 1e-9 {
		t.Errorf("inEU28 = %f", inEU)
	}
	// In Europe: +5 CH = 97/110.
	if math.Abs(inEur-100*97.0/110) > 1e-9 {
		t.Errorf("inEurope = %f", inEur)
	}
}

func TestRegionConfinementEmpty(t *testing.T) {
	a := NewAnalysis()
	inC, inEU, inEur, flows := a.RegionConfinement(nil)
	if inC != 0 || inEU != 0 || inEur != 0 || flows != 0 {
		t.Error("empty analysis must return zeros")
	}
}

func TestConfinementByCountry(t *testing.T) {
	a := sample()
	rows := a.ConfinementByCountry()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Country != "DE" || rows[0].Flows != 100 {
		t.Errorf("first row = %+v", rows[0])
	}
	if math.Abs(rows[0].InCountry-60) > 1e-9 {
		t.Errorf("DE InCountry = %f", rows[0].InCountry)
	}
	if rows[1].Country != "GR" || math.Abs(rows[1].InCountry-10) > 1e-9 {
		t.Errorf("GR row = %+v", rows[1])
	}
	// Germany (big infra) confines more than Greece — the paper's
	// correlation.
	if rows[0].InCountry <= rows[1].InCountry {
		t.Error("DE must confine more than GR")
	}
}

func TestContinentEdges(t *testing.T) {
	a := sample()
	edges := a.ContinentEdges()
	// Origins: EU 28 only (both DE and GR are EU28).
	var euToEU, euToNA, euToRest float64
	for _, e := range edges {
		if e.From != "EU 28" {
			t.Fatalf("unexpected origin %q", e.From)
		}
		switch e.To {
		case "EU 28":
			euToEU = e.Percent
		case "N. America":
			euToNA = e.Percent
		case "Rest of Europe":
			euToRest = e.Percent
		}
	}
	if math.Abs(euToEU-100*92.0/110) > 1e-9 {
		t.Errorf("EU->EU = %f", euToEU)
	}
	if math.Abs(euToNA-100*13.0/110) > 1e-9 {
		t.Errorf("EU->NA = %f", euToNA)
	}
	if math.Abs(euToRest-100*5.0/110) > 1e-9 {
		t.Errorf("EU->RoE = %f", euToRest)
	}
	// Percentages per origin must sum to 100.
	var sum float64
	for _, e := range edges {
		sum += e.Percent
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percent sum = %f", sum)
	}
}

func TestDestContinents(t *testing.T) {
	a := sample()
	edges := a.DestContinents(func(c geodata.Country) bool { return c == "GR" })
	if len(edges) != 2 {
		t.Fatalf("edges = %+v", edges)
	}
	// GR: 7 to EU28 (GR+DE), 3 to US.
	if edges[0].To != "EU 28" || math.Abs(edges[0].Percent-70) > 1e-9 {
		t.Errorf("first = %+v", edges[0])
	}
	if edges[1].To != "N. America" || math.Abs(edges[1].Percent-30) > 1e-9 {
		t.Errorf("second = %+v", edges[1])
	}
}

func TestCountryEdges(t *testing.T) {
	a := sample()
	edges := a.CountryEdges(EU28Origin)
	// Ordered by origin, then descending count.
	if edges[0].From != "DE" || edges[0].To != "DE" || edges[0].Count != 60 {
		t.Errorf("first = %+v", edges[0])
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].From == edges[i-1].From && edges[i].Count > edges[i-1].Count {
			t.Error("counts not descending within origin")
		}
	}
	only := a.CountryEdges(func(c geodata.Country) bool { return c == "DE" })
	for _, e := range only {
		if e.From != "DE" {
			t.Errorf("filter leaked origin %s", e.From)
		}
	}
}

func TestTopDestinations(t *testing.T) {
	a := sample()
	top := a.TopDestinations(2)
	if len(top) != 2 {
		t.Fatalf("top = %+v", top)
	}
	if top[0].To != "DE" || top[0].Count != 66 {
		t.Errorf("top dest = %+v", top[0])
	}
	var pctAll float64
	for _, e := range a.TopDestinations(0) {
		pctAll += e.Percent
	}
	if math.Abs(pctAll-100) > 1e-9 {
		t.Errorf("all destinations pct sum = %f", pctAll)
	}
}

func TestUnknownTracking(t *testing.T) {
	a := NewAnalysis()
	a.Add("DE", "DE", 5)
	a.AddUnknown(3)
	if a.Total() != 8 || a.Unknown() != 3 {
		t.Errorf("total=%d unknown=%d", a.Total(), a.Unknown())
	}
}

func TestAnalyzeJoinsGeolocation(t *testing.T) {
	// Dataset: two tracking rows to IP 1 (DE) and one clean row.
	ds := &classify.Dataset{FQDNs: classify.NewInterner()}
	ds.Countries = []geodata.Country{"GR"}
	id := ds.FQDNs.ID("t.example.com")
	ds.Store = classify.StoreOf(
		classify.Row{FQDN: id, IP: 1, Class: classify.ClassABP, Country: 0},
		classify.Row{FQDN: id, IP: 1, Class: classify.ClassSemiKeyword, Country: 0},
		classify.Row{FQDN: id, IP: 2, Class: classify.ClassClean, Country: 0},
		classify.Row{FQDN: id, IP: 9, Class: classify.ClassABP, Country: 0}, // unlocatable
	)
	svc := geo.Static{ServiceName: "s", Locations: map[netsim.IP]geo.Location{
		1: {Country: "DE", Continent: geodata.EU28},
	}}
	a := Analyze(ds, svc, nil)
	if a.Total() != 3 {
		t.Errorf("total = %d (clean row must be excluded)", a.Total())
	}
	if a.Unknown() != 1 {
		t.Errorf("unknown = %d", a.Unknown())
	}
	inC, inEU, _, flows := a.RegionConfinement(nil)
	if flows != 2 || inC != 0 || inEU != 100 {
		t.Errorf("confinement = %f %f flows=%d", inC, inEU, flows)
	}
	// Filter excludes everything.
	a2 := Analyze(ds, svc, func(classify.Row) bool { return false })
	if a2.Total() != 0 {
		t.Error("filter must exclude all rows")
	}
}

// analyzeBenchDataset synthesizes a multi-chunk columnar dataset with a
// realistic tracking share for the Analyze benchmark. Rows arrive in
// per-user capture blocks, as the merger appends them: a user's
// country is constant across their block, so the Country column is
// run-heavy — the shape every real merged dataset has.
func analyzeBenchDataset(rows int) (*classify.Dataset, geo.Service) {
	ds := &classify.Dataset{FQDNs: classify.NewInterner()}
	ds.Countries = []geodata.Country{"DE", "ES", "GR", "US"}
	id := ds.FQDNs.ID("t.example.com")
	st := classify.NewMemStore()
	const captureRows = 500 // one user's requests, appended contiguously
	for i := 0; i < rows; i++ {
		user := i / captureRows
		r := classify.Row{FQDN: id, IP: netsim.IP(1 + i%16), Country: uint8(user % 4)}
		if i%3 != 0 {
			r.Class = classify.ClassABP
		}
		st.Append(r)
	}
	ds.Store = st
	locs := make(map[netsim.IP]geo.Location, 16)
	for i := 0; i < 16; i++ {
		loc := geo.Location{Country: "DE", Continent: geodata.EU28}
		if i%5 == 0 {
			loc = geo.Location{Country: "US", Continent: geodata.NorthAmerica}
		}
		locs[netsim.IP(1+i)] = loc
	}
	return ds, geo.Static{ServiceName: "bench", Locations: locs}
}

// BenchmarkAnalyze measures the chunk-parallel columnar join of
// tracking rows with a geolocation service (the substrate under every
// §4–§6 experiment). The scan shards over column chunks; on a
// single-core runner it degenerates to the sequential path.
func BenchmarkAnalyze(b *testing.B) {
	ds, svc := analyzeBenchDataset(200_000)
	b.ResetTimer()
	var a *Analysis
	for i := 0; i < b.N; i++ {
		a = Analyze(ds, svc, nil)
	}
	b.ReportMetric(float64(a.Total()), "flows")
}

// analyzeBenchSpill is analyzeBenchDataset's disk-backed sibling: the
// same 200k-row shape streamed into a spill sink, so the benchmark
// exercises the real pread + decode path the pushdown targets.
func analyzeBenchSpill(b *testing.B, rows int, compress bool) (*classify.Dataset, geo.Service) {
	b.Helper()
	ds, svc := analyzeBenchDataset(rows)
	var sink classify.RowSink
	var err error
	if compress {
		sink, err = classify.NewSpillSink(b.TempDir(), 0)
	} else {
		sink, err = classify.NewSpillSinkUncompressed(b.TempDir(), 0)
	}
	if err != nil {
		b.Fatal(err)
	}
	mem := ds.Store
	buf := classify.GetChunk()
	defer classify.PutChunk(buf)
	for ci := 0; ci < mem.NumChunks(); ci++ {
		c := classify.MustChunk(mem, ci, buf)
		for i := 0; i < c.Len(); i++ {
			sink.Append(c.Row(i))
		}
	}
	st, err := sink.Seal()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	ds.Store = st
	return ds, svc
}

// BenchmarkPushdownAnalyze pins the decode-free join against its two
// baselines over the same compressed spill store: pushdown runs the
// projection kernel (zone/class pruning, per-run country resolution,
// per-distinct-IP geolocation), decode forces the decode-to-rows path
// on the same store, and raw is the decode path over the uncompressed
// spill file. The acceptance bar for this optimization is pushdown
// >= 2x decode and >= raw.
func BenchmarkPushdownAnalyze(b *testing.B) {
	const rows = 200_000
	run := func(b *testing.B, ds *classify.Dataset, svc geo.Service) {
		b.ResetTimer()
		var a *Analysis
		for i := 0; i < b.N; i++ {
			a = Analyze(ds, svc, nil)
		}
		b.ReportMetric(float64(a.Total()), "flows")
	}
	b.Run("pushdown", func(b *testing.B) {
		ds, svc := analyzeBenchSpill(b, rows, true)
		run(b, ds, svc)
	})
	b.Run("decode", func(b *testing.B) {
		ds, svc := analyzeBenchSpill(b, rows, true)
		ds.Pushdown = classify.PushdownOff
		run(b, ds, svc)
	})
	b.Run("raw", func(b *testing.B) {
		ds, svc := analyzeBenchSpill(b, rows, false)
		ds.Pushdown = classify.PushdownOff
		run(b, ds, svc)
	})
}
