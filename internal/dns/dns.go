// Package dns implements the authoritative DNS substrate for the tracking
// domains of the synthetic world. Every tracking FQDN is backed by a set of
// server IPs drawn from its organization's datacenter deployments, each
// with an activity window (IPs rotate over the measurement period, which is
// what gives passive-DNS records their first/last-seen semantics). A
// per-organization selection policy decides which IP a resolver hands to a
// user in a given country — this policy is exactly the knob the paper's §5
// "what-if DNS redirection" analysis turns.
package dns

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// Policy is an organization's server-selection strategy.
type Policy uint8

const (
	// PolicyNearest prefers a server in the user's country, then the
	// user's continent (closest by great-circle distance), then anywhere.
	// Mobile carriers' resolvers see this behaviour most cleanly (§7.3).
	PolicyNearest Policy = iota
	// PolicyContinent balances across the org's servers within the user's
	// continent without preferring the user's country, falling back to
	// anywhere. This models CDN-style load-balancing that is
	// continent-aware but not country-aware.
	PolicyContinent
	// PolicyHQ always serves from the org's home-country deployment:
	// the behaviour of small trackers with a single serving site.
	PolicyHQ
	// PolicyRandom picks uniformly among all the org's servers; models
	// third-party resolvers defeating geo-DNS (§7.3 broadband effect).
	PolicyRandom
	// PolicyWeighted draws among the active bindings proportionally to
	// ServerIP.Weight (zero counts as 1) — GSLB-style weighted
	// round-robin, the knob scenario packs turn to bias traffic toward
	// chosen regions without touching the deployment footprint.
	PolicyWeighted
	// PolicyLatency serves the binding with the lowest modeled RTT to
	// the user (great-circle distance through geodata.MinRTTms),
	// ignoring country and continent boundaries entirely. Ties resolve
	// to the lowest IP, so the answer is deterministic per (user
	// country, active set).
	PolicyLatency
	// PolicyFailover serves the highest-Weight active binding (ties to
	// the lowest IP): bindings form priority tiers and the answer falls
	// to the next tier only when every higher-priority binding is
	// outside its activity window — DNS-level primary/backup failover.
	PolicyFailover
)

func (p Policy) String() string {
	switch p {
	case PolicyNearest:
		return "nearest"
	case PolicyContinent:
		return "continent"
	case PolicyHQ:
		return "hq"
	case PolicyRandom:
		return "random"
	case PolicyWeighted:
		return "weighted"
	case PolicyLatency:
		return "latency"
	case PolicyFailover:
		return "failover"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// ServerIP is one address serving an FQDN, with ground-truth location and
// the window during which the (fqdn, ip) binding is active.
type ServerIP struct {
	IP      netsim.IP
	Country geodata.Country
	// Provider is the cloud hosting the address ("" for own facilities).
	Provider geodata.CloudProvider
	// Weight biases PolicyWeighted draws and orders PolicyFailover
	// priority tiers; zero means 1 under PolicyWeighted and lowest
	// priority under PolicyFailover. Other policies ignore it.
	Weight int
	// Active window of the binding.
	From, To time.Time
}

// ActiveAt reports whether the binding covers time t.
func (s ServerIP) ActiveAt(t time.Time) bool {
	return !t.Before(s.From) && !t.After(s.To)
}

// entry is the zone data for one FQDN.
type entry struct {
	org     string
	policy  Policy
	ttl     time.Duration
	servers []ServerIP
}

// Resolution is one logged DNS answer, consumed by the passive-DNS
// replication store.
type Resolution struct {
	FQDN string
	IP   netsim.IP
	At   time.Time
}

// Server is the authoritative resolver for the synthetic world.
// Register all zones during construction, then call Freeze; Resolve is
// afterwards safe for concurrent use as long as each goroutine passes its
// own *rand.Rand and the resolution log is nil or itself concurrency-safe
// (the parallel simulation pipeline runs with a nil log and feeds passive
// DNS directly from zone construction). Resolve never mutates server
// state, which is what makes the read path race-free; Register after
// Freeze panics so the invariant cannot be broken accidentally.
type Server struct {
	// mu guards zones during construction: the scenario's world build
	// registers planned zones from a worker pool. Distinct FQDNs
	// commute, so the final zone map is independent of registration
	// order. The read path never takes the lock — Freeze publishes the
	// map and Register panics afterwards.
	mu     sync.Mutex
	zones  map[string]*entry
	frozen bool
	// log receives every resolution when non-nil.
	log func(Resolution)
	// Spill is the probability that a PolicyNearest answer falls back to
	// a random same-continent server instead of the geographically
	// nearest one, modelling imperfect geo load balancing. Zero by
	// default. Set before serving queries.
	Spill float64
	// GeoMapping, when non-nil, reports whether the in-country geo-DNS
	// mapping for (fqdn, user country) is active at time t. Real geo-DNS
	// region mappings churn over months with capacity and cost; when the
	// mapping is inactive, a PolicyNearest zone serves the user from the
	// nearest *other* country even if it has local servers. nil means
	// always active.
	GeoMapping func(fqdn string, user geodata.Country, t time.Time) bool
}

// NewServer returns an empty authoritative server. logFn, when non-nil,
// receives every successful resolution (the pDNS feed).
func NewServer(logFn func(Resolution)) *Server {
	return &Server{zones: make(map[string]*entry), log: logFn}
}

// Freeze marks zone construction finished. Resolve is safe for
// concurrent readers afterwards; further Register calls panic. Freeze
// takes the construction lock, so it orders correctly against parallel
// registrations that are still completing.
func (s *Server) Freeze() {
	s.mu.Lock()
	s.frozen = true
	s.mu.Unlock()
}

// Register adds a zone for fqdn. Later registrations for the same FQDN
// replace earlier ones. Register panics after Freeze. Concurrent
// registrations of distinct FQDNs are safe and commute.
func (s *Server) Register(fqdn, org string, policy Policy, ttl time.Duration, servers []ServerIP) {
	if len(servers) == 0 {
		panic("dns: Register with no servers for " + fqdn)
	}
	cp := make([]ServerIP, len(servers))
	copy(cp, servers)
	sort.Slice(cp, func(i, j int) bool { return cp[i].IP < cp[j].IP })
	e := &entry{org: org, policy: policy, ttl: ttl, servers: cp}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		panic("dns: Register after Freeze")
	}
	s.zones[fqdn] = e
}

// Zones returns the registered FQDNs in sorted order.
func (s *Server) Zones() []string {
	out := make([]string, 0, len(s.zones))
	for f := range s.zones {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Servers returns all server bindings for an FQDN (active or not).
func (s *Server) Servers(fqdn string) []ServerIP {
	e, ok := s.zones[fqdn]
	if !ok {
		return nil
	}
	out := make([]ServerIP, len(e.servers))
	copy(out, e.servers)
	return out
}

// TTL returns the zone's record TTL, or zero if unknown.
func (s *Server) TTL(fqdn string) time.Duration {
	if e, ok := s.zones[fqdn]; ok {
		return e.ttl
	}
	return 0
}

// Policy returns the zone's selection policy.
func (s *Server) Policy(fqdn string) (Policy, bool) {
	e, ok := s.zones[fqdn]
	if !ok {
		return 0, false
	}
	return e.policy, true
}

// ErrNXDomain is returned for unregistered names.
var ErrNXDomain = errors.New("dns: NXDOMAIN")

// ErrNoActiveServer is returned when every binding is outside its window.
var ErrNoActiveServer = errors.New("dns: no active server for name")

// Resolve answers a query from a user in the given country at time t.
// It performs no writes to server state and is safe for concurrent use
// after Freeze (each goroutine with its own rng).
func (s *Server) Resolve(rng *rand.Rand, fqdn string, userCountry geodata.Country, t time.Time) (netsim.IP, error) {
	e, ok := s.zones[fqdn]
	if !ok {
		return 0, ErrNXDomain
	}
	// Filter into a stack buffer: the common case (every binding active)
	// must not allocate, since Resolve sits on the per-request hot path.
	var buf [32]ServerIP
	active := appendActive(buf[:0], e.servers, t)
	if len(active) == 0 {
		return 0, ErrNoActiveServer
	}
	policy := e.policy
	if policy == PolicyNearest && s.Spill > 0 && rng.Float64() < s.Spill {
		policy = PolicyContinent
	}
	localOK := true
	if policy == PolicyNearest && s.GeoMapping != nil {
		localOK = s.GeoMapping(fqdn, userCountry, t)
	}
	ip := pick(rng, policy, active, userCountry, localOK)
	if s.log != nil {
		s.log(Resolution{FQDN: fqdn, IP: ip, At: t})
	}
	return ip, nil
}

func appendActive(out, servers []ServerIP, t time.Time) []ServerIP {
	for _, sv := range servers {
		if sv.ActiveAt(t) {
			out = append(out, sv)
		}
	}
	return out
}

// pick applies the selection policy over the active bindings. localOK
// gates PolicyNearest's in-country preference (see Server.GeoMapping).
func pick(rng *rand.Rand, policy Policy, active []ServerIP, user geodata.Country, localOK bool) netsim.IP {
	switch policy {
	case PolicyRandom:
		return active[rng.Intn(len(active))].IP
	case PolicyWeighted:
		total := 0
		for i := range active {
			total += weightOf(&active[i])
		}
		x := rng.Intn(total)
		for i := range active {
			x -= weightOf(&active[i])
			if x < 0 {
				return active[i].IP
			}
		}
		panic("dns: weighted draw out of range")
	case PolicyLatency:
		best, bestRTT := 0, -1.0
		for i, sv := range active {
			d := geodata.DistanceKm(user, sv.Country)
			if d < 0 {
				d = 1e9
			}
			rtt := geodata.MinRTTms(d)
			if bestRTT < 0 || rtt < bestRTT {
				best, bestRTT = i, rtt
			}
		}
		return active[best].IP
	case PolicyFailover:
		best := 0
		for i := 1; i < len(active); i++ {
			if active[i].Weight > active[best].Weight {
				best = i
			}
		}
		return active[best].IP
	case PolicyHQ:
		// HQ policy still has only the org's deployments to choose from;
		// prefer the first (registration order puts HQ blocks first in
		// practice) — deterministically the lowest IP.
		return active[0].IP
	case PolicyContinent:
		cont := geodata.ContinentOf(user)
		// Count-then-select keeps the draw identical to collecting the
		// matches into a slice, without allocating one per query.
		n := 0
		for i := range active {
			if sameEurope(geodata.ContinentOf(active[i].Country), cont) {
				n++
			}
		}
		if n > 0 {
			return nthMatch(active, rng.Intn(n), func(sv *ServerIP) bool {
				return sameEurope(geodata.ContinentOf(sv.Country), cont)
			})
		}
		// No server on the user's continent: serve from the nearest
		// region (a South American user of a US/EU service lands in the
		// US, not on a random European PoP).
		return nearestServer(active, user)
	default: // PolicyNearest
		// 1. Same country, when the geo mapping for it is active.
		if localOK {
			n := 0
			for i := range active {
				if active[i].Country == user {
					n++
				}
			}
			if n > 0 {
				return nthMatch(active, rng.Intn(n), func(sv *ServerIP) bool {
					return sv.Country == user
				})
			}
		}
		// 2. Nearest within the user's continent (Europe is treated as
		// one continent: EU28 + Rest of Europe). With an inactive local
		// mapping, in-country servers are skipped: the geo-DNS routes
		// the user's region to a neighboring serving site.
		cont := geodata.ContinentOf(user)
		best, bestDist := -1, 0.0
		for i, sv := range active {
			if !localOK && sv.Country == user {
				continue
			}
			if !sameEurope(geodata.ContinentOf(sv.Country), cont) {
				continue
			}
			d := geodata.DistanceKm(user, sv.Country)
			if d < 0 {
				continue
			}
			if best == -1 || d < bestDist {
				best, bestDist = i, d
			}
		}
		if best >= 0 {
			return active[best].IP
		}
		// 3. Globally nearest.
		return nearestServer(active, user)
	}
}

// weightOf returns a binding's PolicyWeighted draw weight (zero = 1).
func weightOf(sv *ServerIP) int {
	if sv.Weight <= 0 {
		return 1
	}
	return sv.Weight
}

// nthMatch returns the IP of the n-th (0-based) server satisfying ok.
// The caller guarantees at least n+1 matches exist.
func nthMatch(active []ServerIP, n int, ok func(*ServerIP) bool) netsim.IP {
	for i := range active {
		if ok(&active[i]) {
			if n == 0 {
				return active[i].IP
			}
			n--
		}
	}
	panic("dns: nthMatch out of range")
}

// nearestServer returns the active server geographically closest to the
// user (deterministic: ties resolve to the lowest-IP server because the
// zone's servers are kept sorted).
func nearestServer(active []ServerIP, user geodata.Country) netsim.IP {
	best, bestDist := 0, -1.0
	for i, sv := range active {
		d := geodata.DistanceKm(user, sv.Country)
		if d < 0 {
			d = 1e9
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return active[best].IP
}

// sameEurope reports whether two regions count as the same continent for
// server selection; EU28 and Rest-of-Europe are both "Europe".
func sameEurope(a, b geodata.Continent) bool {
	if a == b {
		return true
	}
	isEU := func(c geodata.Continent) bool {
		return c == geodata.EU28 || c == geodata.RestOfEurope
	}
	return isEU(a) && isEU(b)
}
