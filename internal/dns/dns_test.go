package dns

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

var (
	t0   = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	tEnd = time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	mid  = time.Date(2017, 11, 1, 0, 0, 0, 0, time.UTC)
)

func sv(ip uint32, c geodata.Country) ServerIP {
	return ServerIP{IP: netsim.IP(ip), Country: c, From: t0, To: tEnd}
}

func newTestServer(logFn func(Resolution)) *Server {
	s := NewServer(logFn)
	s.Register("ads.example.com", "example", PolicyNearest, 300*time.Second, []ServerIP{
		sv(0x10000001, "US"),
		sv(0x10000002, "DE"),
		sv(0x10000003, "GB"),
	})
	s.Register("hq.example.com", "example", PolicyHQ, 7200*time.Second, []ServerIP{
		sv(0x10000010, "US"),
		sv(0x10000011, "DE"),
	})
	s.Register("rand.example.com", "example", PolicyRandom, 300*time.Second, []ServerIP{
		sv(0x10000021, "US"),
		sv(0x10000022, "DE"),
	})
	return s
}

func TestResolveNearestPrefersUserCountry(t *testing.T) {
	s := newTestServer(nil)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		ip, err := s.Resolve(rng, "ads.example.com", "DE", mid)
		if err != nil {
			t.Fatal(err)
		}
		if ip != 0x10000002 {
			t.Fatalf("DE user resolved to %s, want the DE server", ip)
		}
	}
}

func TestResolveNearestFallsBackToContinent(t *testing.T) {
	s := newTestServer(nil)
	rng := rand.New(rand.NewSource(2))
	// French user: no FR server; DE and GB are both Europe; nearest to
	// Paris is the GB (London) server... distance Paris-London ~340km vs
	// Paris-Frankfurt ~480km.
	ip, err := s.Resolve(rng, "ads.example.com", "FR", mid)
	if err != nil {
		t.Fatal(err)
	}
	if ip != 0x10000003 {
		t.Errorf("FR user resolved to %s, want GB server (nearest in Europe)", ip)
	}
	// Swiss (Rest of Europe) user must also stay in Europe: Zurich is
	// closer to Frankfurt than London.
	ip, err = s.Resolve(rng, "ads.example.com", "CH", mid)
	if err != nil {
		t.Fatal(err)
	}
	if ip != 0x10000002 {
		t.Errorf("CH user resolved to %s, want DE server", ip)
	}
}

func TestResolveNearestGlobalFallback(t *testing.T) {
	s := NewServer(nil)
	s.Register("us-only.example.com", "example", PolicyNearest, time.Minute, []ServerIP{
		sv(0x10000030, "US"),
	})
	rng := rand.New(rand.NewSource(3))
	ip, err := s.Resolve(rng, "us-only.example.com", "DE", mid)
	if err != nil || ip != 0x10000030 {
		t.Errorf("got %s, %v; want the only US server", ip, err)
	}
}

func TestResolveHQ(t *testing.T) {
	s := newTestServer(nil)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		ip, err := s.Resolve(rng, "hq.example.com", "DE", mid)
		if err != nil {
			t.Fatal(err)
		}
		if ip != 0x10000010 {
			t.Fatalf("HQ policy must deterministically serve the first binding, got %s", ip)
		}
	}
}

func TestResolveRandomSpreads(t *testing.T) {
	s := newTestServer(nil)
	rng := rand.New(rand.NewSource(5))
	seen := map[netsim.IP]int{}
	for i := 0; i < 200; i++ {
		ip, err := s.Resolve(rng, "rand.example.com", "DE", mid)
		if err != nil {
			t.Fatal(err)
		}
		seen[ip]++
	}
	if len(seen) != 2 {
		t.Fatalf("random policy hit %d servers, want 2", len(seen))
	}
	for ip, n := range seen {
		if n < 40 {
			t.Errorf("server %s only picked %d/200 times", ip, n)
		}
	}
}

func TestResolveContinentPolicy(t *testing.T) {
	s := NewServer(nil)
	s.Register("cont.example.com", "example", PolicyContinent, time.Minute, []ServerIP{
		sv(0x10000041, "US"),
		sv(0x10000042, "DE"),
		sv(0x10000043, "NL"),
	})
	rng := rand.New(rand.NewSource(6))
	seen := map[netsim.IP]int{}
	for i := 0; i < 300; i++ {
		ip, err := s.Resolve(rng, "cont.example.com", "ES", mid)
		if err != nil {
			t.Fatal(err)
		}
		seen[ip]++
	}
	if seen[0x10000041] != 0 {
		t.Error("continent policy leaked a European user to the US server")
	}
	if seen[0x10000042] == 0 || seen[0x10000043] == 0 {
		t.Error("continent policy must balance across both EU servers")
	}
}

func TestResolveErrors(t *testing.T) {
	s := newTestServer(nil)
	rng := rand.New(rand.NewSource(7))
	if _, err := s.Resolve(rng, "nope.example.com", "DE", mid); err != ErrNXDomain {
		t.Errorf("err = %v, want ErrNXDomain", err)
	}
	s.Register("expired.example.com", "example", PolicyNearest, time.Minute, []ServerIP{
		{IP: 1, Country: "US", From: t0, To: t0.Add(24 * time.Hour)},
	})
	if _, err := s.Resolve(rng, "expired.example.com", "DE", tEnd); err != ErrNoActiveServer {
		t.Errorf("err = %v, want ErrNoActiveServer", err)
	}
}

func TestActivityWindows(t *testing.T) {
	s := NewServer(nil)
	early := ServerIP{IP: 1, Country: "US", From: t0, To: t0.Add(30 * 24 * time.Hour)}
	late := ServerIP{IP: 2, Country: "US", From: t0.Add(31 * 24 * time.Hour), To: tEnd}
	s.Register("rot.example.com", "example", PolicyRandom, time.Minute, []ServerIP{early, late})
	rng := rand.New(rand.NewSource(8))
	ip, err := s.Resolve(rng, "rot.example.com", "DE", t0.Add(24*time.Hour))
	if err != nil || ip != 1 {
		t.Errorf("early window: got %v/%v want IP 1", ip, err)
	}
	ip, err = s.Resolve(rng, "rot.example.com", "DE", tEnd.Add(-24*time.Hour))
	if err != nil || ip != 2 {
		t.Errorf("late window: got %v/%v want IP 2", ip, err)
	}
}

func TestResolutionLog(t *testing.T) {
	var logged []Resolution
	s := newTestServer(func(r Resolution) { logged = append(logged, r) })
	rng := rand.New(rand.NewSource(9))
	if _, err := s.Resolve(rng, "ads.example.com", "DE", mid); err != nil {
		t.Fatal(err)
	}
	if len(logged) != 1 {
		t.Fatalf("logged %d resolutions, want 1", len(logged))
	}
	if logged[0].FQDN != "ads.example.com" || logged[0].IP != 0x10000002 || !logged[0].At.Equal(mid) {
		t.Errorf("log entry = %+v", logged[0])
	}
	// Failed lookups are not logged.
	s.Resolve(rng, "missing.example.com", "DE", mid)
	if len(logged) != 1 {
		t.Error("failed resolution must not be logged")
	}
}

func TestZonesAndAccessors(t *testing.T) {
	s := newTestServer(nil)
	z := s.Zones()
	if len(z) != 3 {
		t.Fatalf("zones = %v", z)
	}
	for i := 1; i < len(z); i++ {
		if z[i-1] >= z[i] {
			t.Error("zones not sorted")
		}
	}
	if got := s.TTL("ads.example.com"); got != 300*time.Second {
		t.Errorf("TTL = %v", got)
	}
	if got := s.TTL("hq.example.com"); got != 7200*time.Second {
		t.Errorf("facebook-style TTL = %v", got)
	}
	if s.TTL("missing") != 0 {
		t.Error("missing TTL must be 0")
	}
	if p, ok := s.Policy("rand.example.com"); !ok || p != PolicyRandom {
		t.Errorf("Policy = %v, %v", p, ok)
	}
	if _, ok := s.Policy("missing"); ok {
		t.Error("missing policy must report !ok")
	}
	servers := s.Servers("ads.example.com")
	if len(servers) != 3 {
		t.Fatalf("servers = %d", len(servers))
	}
	for i := 1; i < len(servers); i++ {
		if servers[i-1].IP >= servers[i].IP {
			t.Error("servers not sorted by IP")
		}
	}
	if s.Servers("missing") != nil {
		t.Error("missing servers must be nil")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewServer(nil)
	defer func() {
		if recover() == nil {
			t.Error("Register with no servers must panic")
		}
	}()
	s.Register("x.example.com", "x", PolicyNearest, time.Minute, nil)
}

func TestPolicyStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range []Policy{PolicyNearest, PolicyContinent, PolicyHQ, PolicyRandom} {
		s := p.String()
		if s == "" || seen[s] {
			t.Errorf("policy %d string %q", p, s)
		}
		seen[s] = true
	}
}

func TestRegisterAfterFreezePanics(t *testing.T) {
	srv := NewServer(nil)
	from := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 6, 0)
	servers := []ServerIP{{IP: 1, Country: "DE", From: from, To: to}}
	srv.Register("a.example", "org", PolicyNearest, time.Minute, servers)
	srv.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("Register after Freeze must panic")
		}
	}()
	srv.Register("b.example", "org", PolicyNearest, time.Minute, servers)
}

// TestResolveConcurrentReadOnly drives the frozen resolver from many
// goroutines, each with a private rng, and checks every goroutine gets
// exactly the answers a lone goroutine with the same rng seed gets. Run
// under -race this also proves the resolve path performs no writes.
func TestResolveConcurrentReadOnly(t *testing.T) {
	srv := NewServer(nil)
	srv.Spill = 0.1
	from := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	to := from.AddDate(0, 6, 0)
	countries := []geodata.Country{"DE", "US", "FR", "GB", "BR"}
	policies := []Policy{PolicyNearest, PolicyContinent, PolicyHQ, PolicyRandom}
	var zones []string
	for i := 0; i < 40; i++ {
		var servers []ServerIP
		for k := 0; k < 4; k++ {
			servers = append(servers, ServerIP{
				IP:      netsim.IP(0x10000000 + i*16 + k),
				Country: countries[(i+k)%len(countries)],
				From:    from, To: to,
			})
		}
		fqdn := fmt.Sprintf("z%02d.example", i)
		srv.Register(fqdn, "org", policies[i%len(policies)], time.Minute, servers)
		zones = append(zones, fqdn)
	}
	srv.Freeze()

	day := from.AddDate(0, 1, 0)
	resolveAll := func(seed int64) []netsim.IP {
		rng := rand.New(rand.NewSource(seed))
		out := make([]netsim.IP, 0, 4*len(zones))
		for round := 0; round < 4; round++ {
			for _, z := range zones {
				ip, err := srv.Resolve(rng, z, countries[round%len(countries)], day)
				if err != nil {
					t.Errorf("resolve %s: %v", z, err)
				}
				out = append(out, ip)
			}
		}
		return out
	}

	const goroutines = 8
	want := make([][]netsim.IP, goroutines)
	for gi := range want {
		want[gi] = resolveAll(int64(gi + 1))
	}
	got := make([][]netsim.IP, goroutines)
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			got[gi] = resolveAll(int64(gi + 1))
		}(gi)
	}
	wg.Wait()
	for gi := range want {
		for i := range want[gi] {
			if want[gi][i] != got[gi][i] {
				t.Fatalf("goroutine %d answer %d: %s sequentially vs %s concurrently",
					gi, i, want[gi][i], got[gi][i])
			}
		}
	}
}
