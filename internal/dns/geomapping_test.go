package dns

import (
	"math/rand"
	"testing"
	"time"

	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// spillServer builds a zone with DE + NL + US servers under PolicyNearest.
func spillServer() *Server {
	s := NewServer(nil)
	s.Register("t.example.com", "t", PolicyNearest, time.Minute, []ServerIP{
		sv(0x10000001, "DE"),
		sv(0x10000002, "NL"),
		sv(0x10000003, "US"),
	})
	return s
}

func TestSpillZeroIsDeterministicNearest(t *testing.T) {
	s := spillServer()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		ip, err := s.Resolve(rng, "t.example.com", "DE", mid)
		if err != nil || ip != 0x10000001 {
			t.Fatalf("no-spill resolution = %v, %v", ip, err)
		}
	}
}

func TestSpillDivertsSomeAnswers(t *testing.T) {
	s := spillServer()
	s.Spill = 0.3
	rng := rand.New(rand.NewSource(2))
	counts := map[netsim.IP]int{}
	for i := 0; i < 2000; i++ {
		ip, err := s.Resolve(rng, "t.example.com", "DE", mid)
		if err != nil {
			t.Fatal(err)
		}
		counts[ip]++
	}
	// Spilled answers use continent policy: DE or NL, never the US.
	if counts[0x10000003] != 0 {
		t.Error("spill leaked a European user to the US")
	}
	nl := counts[0x10000002]
	// ~30% spill, half of which lands on NL: ~15% of 2000 = ~300.
	if nl < 150 || nl > 500 {
		t.Errorf("NL spill answers = %d, want ~300", nl)
	}
}

func TestGeoMappingGateSkipsLocalServers(t *testing.T) {
	s := spillServer()
	s.GeoMapping = func(fqdn string, user geodata.Country, at time.Time) bool {
		return false // mapping always inactive
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		ip, err := s.Resolve(rng, "t.example.com", "DE", mid)
		if err != nil {
			t.Fatal(err)
		}
		if ip == 0x10000001 {
			t.Fatal("inactive mapping must never serve the in-country server")
		}
		if ip != 0x10000002 {
			t.Fatalf("expected nearest other-country server (NL), got %v", ip)
		}
	}
}

func TestGeoMappingActiveKeepsLocalPreference(t *testing.T) {
	s := spillServer()
	s.GeoMapping = func(fqdn string, user geodata.Country, at time.Time) bool {
		return true
	}
	rng := rand.New(rand.NewSource(4))
	ip, err := s.Resolve(rng, "t.example.com", "DE", mid)
	if err != nil || ip != 0x10000001 {
		t.Fatalf("active mapping resolution = %v, %v", ip, err)
	}
}

func TestGeoMappingReceivesQueryContext(t *testing.T) {
	s := spillServer()
	var gotFQDN string
	var gotCountry geodata.Country
	var gotTime time.Time
	s.GeoMapping = func(fqdn string, user geodata.Country, at time.Time) bool {
		gotFQDN, gotCountry, gotTime = fqdn, user, at
		return true
	}
	rng := rand.New(rand.NewSource(5))
	if _, err := s.Resolve(rng, "t.example.com", "FR", mid); err != nil {
		t.Fatal(err)
	}
	if gotFQDN != "t.example.com" || gotCountry != "FR" || !gotTime.Equal(mid) {
		t.Errorf("mapping saw (%q, %q, %v)", gotFQDN, gotCountry, gotTime)
	}
}

func TestGeoMappingOnlyGatesNearestPolicy(t *testing.T) {
	s := NewServer(nil)
	s.GeoMapping = func(string, geodata.Country, time.Time) bool { return false }
	s.Register("c.example.com", "c", PolicyContinent, time.Minute, []ServerIP{
		sv(0x10000011, "DE"),
	})
	rng := rand.New(rand.NewSource(6))
	// Continent policy ignores the gate: the DE server still serves DE.
	ip, err := s.Resolve(rng, "c.example.com", "DE", mid)
	if err != nil || ip != 0x10000011 {
		t.Fatalf("continent policy gated: %v, %v", ip, err)
	}
}

func TestGeoMappingEpochChurnObservation(t *testing.T) {
	// An epoch-hashed mapping exposes both the local and the remote
	// server across the study period — the mechanism behind the paper's
	// Table 5 redirection headroom.
	s := spillServer()
	s.GeoMapping = func(fqdn string, user geodata.Country, at time.Time) bool {
		return at.Before(mid) // active only in the first half
	}
	rng := rand.New(rand.NewSource(7))
	early, _ := s.Resolve(rng, "t.example.com", "DE", t0.Add(24*time.Hour))
	late, _ := s.Resolve(rng, "t.example.com", "DE", tEnd.Add(-24*time.Hour))
	if early != 0x10000001 {
		t.Errorf("first epoch should serve DE, got %v", early)
	}
	if late != 0x10000002 {
		t.Errorf("second epoch should divert to NL, got %v", late)
	}
}
