package dns

import (
	"math/rand"
	"testing"
	"time"

	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

func wsv(ip uint32, c geodata.Country, w int) ServerIP {
	s := sv(ip, c)
	s.Weight = w
	return s
}

func TestResolveWeightedFollowsWeights(t *testing.T) {
	s := NewServer(nil)
	s.Register("w.example.com", "example", PolicyWeighted, 300*time.Second, []ServerIP{
		wsv(0x20000001, "US", 1),
		wsv(0x20000002, "DE", 9),
	})
	rng := rand.New(rand.NewSource(7))
	hits := map[netsim.IP]int{}
	const n = 5000
	for i := 0; i < n; i++ {
		ip, err := s.Resolve(rng, "w.example.com", "FR", mid)
		if err != nil {
			t.Fatal(err)
		}
		hits[ip]++
	}
	de := float64(hits[0x20000002]) / n
	if de < 0.85 || de > 0.95 {
		t.Fatalf("DE share with 9:1 weights = %.3f, want ~0.9", de)
	}
	if hits[0x20000001] == 0 {
		t.Fatal("weight-1 server never drawn")
	}
}

func TestResolveWeightedZeroWeightCountsAsOne(t *testing.T) {
	s := NewServer(nil)
	s.Register("z.example.com", "example", PolicyWeighted, 300*time.Second, []ServerIP{
		wsv(0x20000011, "US", 0),
		wsv(0x20000012, "DE", 0),
	})
	rng := rand.New(rand.NewSource(8))
	hits := map[netsim.IP]int{}
	for i := 0; i < 2000; i++ {
		ip, err := s.Resolve(rng, "z.example.com", "ES", mid)
		if err != nil {
			t.Fatal(err)
		}
		hits[ip]++
	}
	if hits[0x20000011] < 800 || hits[0x20000012] < 800 {
		t.Fatalf("zero weights should draw uniformly, got %v", hits)
	}
}

func TestResolveLatencyPicksLowestRTT(t *testing.T) {
	s := NewServer(nil)
	s.Register("lat.example.com", "example", PolicyLatency, 300*time.Second, []ServerIP{
		sv(0x20000021, "US"),
		sv(0x20000022, "DE"),
		sv(0x20000023, "JP"),
	})
	rng := rand.New(rand.NewSource(9))
	// A Spanish user is closest to the German server; a Japanese user to
	// the Tokyo one — latency routing ignores continents, it just takes
	// the lowest modeled RTT, and repeats are deterministic.
	for i := 0; i < 10; i++ {
		ip, err := s.Resolve(rng, "lat.example.com", "ES", mid)
		if err != nil {
			t.Fatal(err)
		}
		if ip != 0x20000022 {
			t.Fatalf("ES user resolved to %s, want the DE server", ip)
		}
		ip, err = s.Resolve(rng, "lat.example.com", "TW", mid)
		if err != nil {
			t.Fatal(err)
		}
		if ip != 0x20000023 {
			t.Fatalf("TW user resolved to %s, want the JP server", ip)
		}
	}
}

func TestResolveFailoverPriorityTiers(t *testing.T) {
	s := NewServer(nil)
	// Primary (weight 10) active only in the first half of the study;
	// backup (weight 5) and last-resort (weight 0) cover the whole window.
	primary := wsv(0x20000031, "DE", 10)
	primary.To = mid
	s.Register("fo.example.com", "example", PolicyFailover, 300*time.Second, []ServerIP{
		primary,
		wsv(0x20000032, "GB", 5),
		wsv(0x20000033, "US", 0),
	})
	rng := rand.New(rand.NewSource(10))
	early := mid.Add(-24 * time.Hour)
	late := mid.Add(24 * time.Hour)
	if ip, _ := s.Resolve(rng, "fo.example.com", "FR", early); ip != 0x20000031 {
		t.Fatalf("before failover resolved to %s, want the DE primary", ip)
	}
	if ip, _ := s.Resolve(rng, "fo.example.com", "FR", late); ip != 0x20000032 {
		t.Fatalf("after primary window resolved to %s, want the GB backup", ip)
	}
}

func TestResolveFailoverTieBreaksToLowestIP(t *testing.T) {
	s := NewServer(nil)
	s.Register("tie.example.com", "example", PolicyFailover, 300*time.Second, []ServerIP{
		wsv(0x20000042, "GB", 5),
		wsv(0x20000041, "DE", 5),
	})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		ip, err := s.Resolve(rng, "tie.example.com", "FR", mid)
		if err != nil {
			t.Fatal(err)
		}
		if ip != 0x20000041 {
			t.Fatalf("equal-weight failover resolved to %s, want the lowest IP", ip)
		}
	}
}

func TestGSLBPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyWeighted: "weighted",
		PolicyLatency:  "latency",
		PolicyFailover: "failover",
	} {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", p, got, want)
		}
	}
}
