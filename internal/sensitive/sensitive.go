// Package sensitive implements the paper's §6 pipeline for tracing
// tracking flows on GDPR-sensitive data categories: an AdWords-style
// automated topic tagger (which mostly sees the innocuous masking
// categories sensitive sites hide behind), a multi-examiner manual
// inspection simulation with a two-agreement inclusion rule, and the flow
// analyses behind Figs 9–11.
package sensitive

import (
	"math/rand"
	"sort"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/webgraph"
)

// AdWordsTags simulates the automated tagging service: it returns the
// site's public interest categories. Sensitive sites are usually tagged
// only with their masking category (§6.1: a pregnancy site tags as
// "Health", a gambling site as "Games"), but occasionally the tagger
// surfaces the true category.
func AdWordsTags(rng *rand.Rand, p *webgraph.Publisher) []webgraph.Topic {
	tags := make([]webgraph.Topic, 0, len(p.Topics)+1)
	tags = append(tags, p.Topics...)
	if p.Sensitive != "" && rng.Float64() < 0.15 {
		tags = append(tags, p.Sensitive)
	}
	return tags
}

// AutoDetect returns the sensitive category found in a tag list, if any.
func AutoDetect(tags []webgraph.Topic) (webgraph.Topic, bool) {
	for _, t := range tags {
		if webgraph.IsSensitive(t) {
			return t, true
		}
	}
	return "", false
}

// ExaminerConfig tunes the simulated manual inspection.
type ExaminerConfig struct {
	// Examiners is the panel size (default 3; the paper used multiple
	// people with a >=2 agreement rule).
	Examiners int
	// Accuracy is the probability one examiner recognizes a sensitive
	// site's true category (default 0.9).
	Accuracy float64
	// FalsePositiveRate is the probability one examiner wrongly flags a
	// general site as sensitive (default 0.004).
	FalsePositiveRate float64
	// MinAgreement is the inclusion threshold (default 2).
	MinAgreement int
}

func (c ExaminerConfig) withDefaults() ExaminerConfig {
	if c.Examiners == 0 {
		c.Examiners = 3
	}
	if c.Accuracy == 0 {
		c.Accuracy = 0.9
	}
	if c.FalsePositiveRate == 0 {
		c.FalsePositiveRate = 0.004
	}
	if c.MinAgreement == 0 {
		c.MinAgreement = 2
	}
	return c
}

// examine returns one examiner's verdict for a site ("" = not sensitive).
func examine(rng *rand.Rand, p *webgraph.Publisher, cfg ExaminerConfig) webgraph.Topic {
	if p.Sensitive != "" {
		if rng.Float64() < cfg.Accuracy {
			return p.Sensitive
		}
		return ""
	}
	if rng.Float64() < cfg.FalsePositiveRate {
		cats := webgraph.SensitiveCategories()
		return cats[rng.Intn(len(cats))]
	}
	return ""
}

// Identification is the outcome of the §6.1 multi-stage filtering.
type Identification struct {
	// ByPublisher maps identified publishers to their agreed category.
	ByPublisher map[*webgraph.Publisher]webgraph.Topic
	// Inspected counts the domains examined.
	Inspected int
	// AutoDetected counts domains already caught by the automated tags.
	AutoDetected int
}

// Identified returns the number of identified sensitive domains.
func (id *Identification) Identified() int { return len(id.ByPublisher) }

// Identify runs the full §6.1 process over the graph's publishers: the
// automated AdWords pass first, then the examiner panel with the
// MinAgreement rule for everything the automation missed.
func Identify(rng *rand.Rand, g *webgraph.Graph, cfg ExaminerConfig) *Identification {
	cfg = cfg.withDefaults()
	id := &Identification{ByPublisher: make(map[*webgraph.Publisher]webgraph.Topic)}
	for _, p := range g.Publishers {
		id.Inspected++
		if cat, ok := AutoDetect(AdWordsTags(rng, p)); ok {
			id.ByPublisher[p] = cat
			id.AutoDetected++
			continue
		}
		votes := make(map[webgraph.Topic]int)
		for e := 0; e < cfg.Examiners; e++ {
			if v := examine(rng, p, cfg); v != "" {
				votes[v]++
			}
		}
		for cat, n := range votes {
			if n >= cfg.MinAgreement {
				id.ByPublisher[p] = cat
				break
			}
		}
	}
	return id
}

// CategoryShare is one bar of Fig 9.
type CategoryShare struct {
	Category webgraph.Topic
	Flows    int64
	Percent  float64 // of all sensitive tracking flows
}

// Report aggregates the sensitive tracking flows of a classified dataset.
type Report struct {
	// Shares lists per-category flow shares, descending (Fig 9).
	Shares []CategoryShare
	// SensitiveFlows is the total tracking flows on identified sites.
	SensitiveFlows int64
	// AllTrackingFlows is the denominator (Fig 9's 2.89%).
	AllTrackingFlows int64
}

// PctOfAll returns sensitive tracking flows as a share of all tracking
// flows.
func (r *Report) PctOfAll() float64 {
	if r.AllTrackingFlows == 0 {
		return 0
	}
	return 100 * float64(r.SensitiveFlows) / float64(r.AllTrackingFlows)
}

// BuildReport computes Fig 9 over the classified dataset.
func BuildReport(ds *classify.Dataset, id *Identification) *Report {
	rep := &Report{}
	counts := make(map[webgraph.Topic]int64)
	ds.Scan(func(_ int, c *classify.Chunk) {
		for i, cls := range c.Class {
			if !cls.IsTracking() {
				continue
			}
			rep.AllTrackingFlows++
			cat, ok := id.ByPublisher[ds.Publishers[c.Publisher[i]]]
			if !ok {
				continue
			}
			counts[cat]++
			rep.SensitiveFlows++
		}
	})
	for cat, n := range counts {
		pct := 0.0
		if rep.SensitiveFlows > 0 {
			pct = 100 * float64(n) / float64(rep.SensitiveFlows)
		}
		rep.Shares = append(rep.Shares, CategoryShare{Category: cat, Flows: n, Percent: pct})
	}
	sort.Slice(rep.Shares, func(i, j int) bool {
		if rep.Shares[i].Flows != rep.Shares[j].Flows {
			return rep.Shares[i].Flows > rep.Shares[j].Flows
		}
		return rep.Shares[i].Category < rep.Shares[j].Category
	})
	return rep
}

// DestEdge is one (category, destination region) cell of Fig 10.
type DestEdge struct {
	Category webgraph.Topic
	Region   string
	Flows    int64
	Percent  float64 // of the category's flows
}

// DestByCategory computes, for EU28 users, where each sensitive
// category's tracking flows terminate (Fig 10).
func DestByCategory(ds *classify.Dataset, id *Identification, svc geo.Service) []DestEdge {
	type key struct {
		cat    webgraph.Topic
		region string
	}
	counts := make(map[key]int64)
	totals := make(map[webgraph.Topic]int64)
	ds.Scan(func(_ int, c *classify.Chunk) {
		for i, cls := range c.Class {
			if !cls.IsTracking() || !geodata.IsEU28(ds.Countries[c.Country[i]]) {
				continue
			}
			cat, ok := id.ByPublisher[ds.Publishers[c.Publisher[i]]]
			if !ok {
				continue
			}
			loc, ok := svc.Locate(c.IP[i])
			if !ok {
				continue
			}
			counts[key{cat, loc.Continent.String()}]++
			totals[cat]++
		}
	})
	out := make([]DestEdge, 0, len(counts))
	for k, n := range counts {
		out = append(out, DestEdge{
			Category: k.cat,
			Region:   k.region,
			Flows:    n,
			Percent:  100 * float64(n) / float64(totals[k.cat]),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		if out[i].Flows != out[j].Flows {
			return out[i].Flows > out[j].Flows
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// CountryLeak is one bar pair of Fig 11: a country's sensitive tracking
// flows and how many left the country.
type CountryLeak struct {
	Country geodata.Country
	Total   int64
	Outside int64
}

// OutsidePct returns the share of sensitive flows leaving the country.
func (c CountryLeak) OutsidePct() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Outside) / float64(c.Total)
}

// CountryLeakage computes Fig 11 for EU28 user countries.
func CountryLeakage(ds *classify.Dataset, id *Identification, svc geo.Service) []CountryLeak {
	type acc struct{ total, outside int64 }
	accs := make(map[geodata.Country]*acc)
	ds.Scan(func(_ int, c *classify.Chunk) {
		for i, cls := range c.Class {
			if !cls.IsTracking() {
				continue
			}
			src := ds.Countries[c.Country[i]]
			if !geodata.IsEU28(src) {
				continue
			}
			if _, ok := id.ByPublisher[ds.Publishers[c.Publisher[i]]]; !ok {
				continue
			}
			loc, ok := svc.Locate(c.IP[i])
			if !ok {
				continue
			}
			x := accs[src]
			if x == nil {
				x = &acc{}
				accs[src] = x
			}
			x.total++
			if loc.Country != src {
				x.outside++
			}
		}
	})
	out := make([]CountryLeak, 0, len(accs))
	for c, x := range accs {
		out = append(out, CountryLeak{Country: c, Total: x.total, Outside: x.outside})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Country < out[j].Country
	})
	return out
}
