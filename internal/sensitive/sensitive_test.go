package sensitive

import (
	"math/rand"
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/webgraph"
)

func graph(t *testing.T, seed int64) *webgraph.Graph {
	t.Helper()
	return webgraph.Build(rand.New(rand.NewSource(seed)), webgraph.Config{}.Scale(0.2))
}

func TestAdWordsTagsMasking(t *testing.T) {
	g := graph(t, 1)
	rng := rand.New(rand.NewSource(2))
	var sens *webgraph.Publisher
	for _, p := range g.Publishers {
		if p.Sensitive != "" {
			sens = p
			break
		}
	}
	if sens == nil {
		t.Fatal("no sensitive publisher")
	}
	// Over many draws, the true category appears only a minority of the
	// time (the masking effect).
	hits := 0
	for i := 0; i < 400; i++ {
		if _, ok := AutoDetect(AdWordsTags(rng, sens)); ok {
			hits++
		}
	}
	if hits == 0 {
		t.Error("auto detection never fires; the automated stage must catch some")
	}
	if hits > 120 {
		t.Errorf("auto detection fired %d/400; masking must dominate", hits)
	}
}

func TestAutoDetect(t *testing.T) {
	if _, ok := AutoDetect([]webgraph.Topic{webgraph.TopicNews, webgraph.TopicGames}); ok {
		t.Error("general tags detected as sensitive")
	}
	if cat, ok := AutoDetect([]webgraph.Topic{webgraph.TopicNews, webgraph.SensHealth}); !ok || cat != webgraph.SensHealth {
		t.Error("sensitive tag missed")
	}
}

func TestIdentify(t *testing.T) {
	g := graph(t, 3)
	id := Identify(rand.New(rand.NewSource(4)), g, ExaminerConfig{})
	if id.Inspected != len(g.Publishers) {
		t.Errorf("inspected = %d", id.Inspected)
	}
	nSens := 0
	for _, p := range g.Publishers {
		if p.Sensitive != "" {
			nSens++
		}
	}
	found := id.Identified()
	// With 3 examiners at 0.9 accuracy and >=2 agreement, expected
	// detection is ~0.97 of truly sensitive sites plus a tiny FP tail.
	if found < int(0.85*float64(nSens)) {
		t.Errorf("identified %d of %d sensitive sites", found, nSens)
	}
	if found > nSens+int(0.02*float64(len(g.Publishers)))+2 {
		t.Errorf("identified %d, want close to true %d (FPs too high)", found, nSens)
	}
	// Identified categories are correct for true positives.
	wrong := 0
	for p, cat := range id.ByPublisher {
		if p.Sensitive != "" && p.Sensitive != cat {
			wrong++
		}
	}
	if wrong > found/50 {
		t.Errorf("%d mis-categorized sites", wrong)
	}
	if id.AutoDetected == 0 {
		t.Error("automated stage found nothing")
	}
	if id.AutoDetected > found/2 {
		t.Errorf("automated stage found %d of %d; manual inspection must dominate", id.AutoDetected, found)
	}
}

func TestExaminerAgreementRule(t *testing.T) {
	g := graph(t, 5)
	// With MinAgreement > Examiners nothing the automation missed can be
	// identified.
	id := Identify(rand.New(rand.NewSource(6)), g, ExaminerConfig{Examiners: 2, MinAgreement: 3})
	if id.Identified() != id.AutoDetected {
		t.Errorf("identified %d > auto %d despite impossible agreement", id.Identified(), id.AutoDetected)
	}
}

// buildDS builds a tiny classified dataset over the graph's publishers:
// every publisher gets `per` tracking rows from a DE user to IP 1 (US).
func buildDS(g *webgraph.Graph, per int) *classify.Dataset {
	st := classify.NewMemStore()
	ds := &classify.Dataset{FQDNs: classify.NewInterner(), Store: st}
	ds.Countries = []geodata.Country{"DE"}
	id := ds.FQDNs.ID("t.x.com")
	for pi, p := range g.Publishers {
		ds.Publishers = append(ds.Publishers, p)
		for i := 0; i < per; i++ {
			ip := netsim.IP(1)
			if i%2 == 0 {
				ip = 2 // alternate destination: DE
			}
			st.Append(classify.Row{
				FQDN: id, IP: ip, Country: 0, Publisher: int32(pi),
				Class: classify.ClassABP,
			})
		}
	}
	return ds
}

var testSvc = geo.Static{ServiceName: "s", Locations: map[netsim.IP]geo.Location{
	1: {Country: "US", Continent: geodata.NorthAmerica},
	2: {Country: "DE", Continent: geodata.EU28},
}}

func TestBuildReport(t *testing.T) {
	g := graph(t, 7)
	id := Identify(rand.New(rand.NewSource(8)), g, ExaminerConfig{})
	ds := buildDS(g, 4)
	rep := BuildReport(ds, id)
	if rep.AllTrackingFlows != int64(4*len(g.Publishers)) {
		t.Errorf("all flows = %d", rep.AllTrackingFlows)
	}
	if rep.SensitiveFlows == 0 {
		t.Fatal("no sensitive flows")
	}
	var sum float64
	var prev int64 = 1 << 62
	for _, s := range rep.Shares {
		sum += s.Percent
		if s.Flows > prev {
			t.Error("shares not descending")
		}
		prev = s.Flows
		if !webgraph.IsSensitive(s.Category) {
			t.Errorf("non-sensitive category %s in report", s.Category)
		}
	}
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("share sum = %f", sum)
	}
	if rep.PctOfAll() <= 0 || rep.PctOfAll() > 100 {
		t.Errorf("PctOfAll = %f", rep.PctOfAll())
	}
}

func TestDestByCategory(t *testing.T) {
	g := graph(t, 9)
	id := Identify(rand.New(rand.NewSource(10)), g, ExaminerConfig{})
	ds := buildDS(g, 4)
	edges := DestByCategory(ds, id, testSvc)
	if len(edges) == 0 {
		t.Fatal("no edges")
	}
	perCat := map[webgraph.Topic]float64{}
	for _, e := range edges {
		perCat[e.Category] += e.Percent
		if e.Region != geodata.EU28.String() && e.Region != geodata.NorthAmerica.String() {
			t.Errorf("unexpected region %s", e.Region)
		}
	}
	for cat, sum := range perCat {
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("category %s percent sum = %f", cat, sum)
		}
	}
}

func TestCountryLeakage(t *testing.T) {
	g := graph(t, 11)
	id := Identify(rand.New(rand.NewSource(12)), g, ExaminerConfig{})
	ds := buildDS(g, 4)
	leaks := CountryLeakage(ds, id, testSvc)
	if len(leaks) != 1 || leaks[0].Country != "DE" {
		t.Fatalf("leaks = %+v", leaks)
	}
	l := leaks[0]
	if l.Outside >= l.Total {
		t.Errorf("outside %d >= total %d; half the rows terminate in DE", l.Outside, l.Total)
	}
	// Half the rows go to IP 1 (US): leakage ~50%.
	if pct := l.OutsidePct(); pct < 40 || pct > 60 {
		t.Errorf("OutsidePct = %f, want ~50", pct)
	}
}

func TestNonEUUsersExcludedFromGeo(t *testing.T) {
	g := graph(t, 13)
	id := Identify(rand.New(rand.NewSource(14)), g, ExaminerConfig{})
	ds := buildDS(g, 2)
	ds.Countries[0] = "US" // relabel the user population
	if edges := DestByCategory(ds, id, testSvc); len(edges) != 0 {
		t.Error("non-EU users must be excluded from Fig 10")
	}
	if leaks := CountryLeakage(ds, id, testSvc); len(leaks) != 0 {
		t.Error("non-EU users must be excluded from Fig 11")
	}
}
