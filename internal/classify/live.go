package classify

import (
	"sort"
	"time"

	"crossborder/internal/geodata"
	"crossborder/internal/webgraph"
)

// This file is the append-epoch side of the dataset engine: the pieces
// that let a long-running collector grow one Dataset across many merge
// rounds instead of building it in a single Finalize. Merger owns the
// id-assignment state (interner, country and publisher indexes) that
// the one-shot merge used to keep in locals, so replaying captures into
// it in the same order produces byte-for-byte the same Dataset. LiveSemi
// is the incremental form of the semi-stage fixpoint: it carries the LTF
// membership across epochs and, per epoch, classifies only the appended
// rows plus whatever older rows the new tracking FQDNs admit.

// Merger incrementally merges per-worker capture shards into one growing
// Dataset, re-interning strings and remapping publisher/country ids
// exactly as a sequential collector would have assigned them: per
// capture, visits first (publishers register on first visit), then rows
// in emit order. The batch Finalize path and the live ingestion
// collector share this code, which is what keeps a replayed upload
// stream byte-identical to the batch merge.
//
// Merger is single-writer: all Append calls must come from one goroutine
// at a time.
type Merger struct {
	ds         *Dataset
	sink       RowSink
	countryIdx map[geodata.Country]uint8
	pubIdx     map[*webgraph.Publisher]int32
}

// NewMerger returns a merger streaming rows into sink. internHint
// pre-sizes the dataset interner (0 is fine for incremental use). When
// the sink is also a Store (the in-memory columnar store), the dataset
// is readable at any time between appends; otherwise the caller seals
// the sink and assigns ds.Store itself.
func NewMerger(start time.Time, sink RowSink, internHint int) *Merger {
	m := &Merger{
		ds:         &Dataset{FQDNs: NewInternerSized(internHint), Start: start},
		sink:       sink,
		countryIdx: make(map[geodata.Country]uint8),
		pubIdx:     make(map[*webgraph.Publisher]int32),
	}
	if st, ok := sink.(Store); ok {
		m.ds.Store = st
	}
	return m
}

// Dataset returns the growing dataset. The pointer is stable across
// appends.
func (m *Merger) Dataset() *Dataset { return m.ds }

// AppendCapture replays capture idx of sh into the dataset: its visits
// register publishers in first-visit order, its rows re-intern through
// the dataset's interner and append to the sink.
func (m *Merger) AppendCapture(sh *Shard, idx int) {
	ds := m.ds
	cap := &sh.caps[idx]
	for _, pid := range cap.visits {
		p := sh.pubs[pid]
		if _, ok := m.pubIdx[p]; !ok {
			m.pubIdx[p] = int32(len(ds.Publishers))
			ds.Publishers = append(ds.Publishers, p)
		}
	}
	ds.Visits += len(cap.visits)
	for _, r := range cap.rows {
		r.FQDN = ds.FQDNs.ID(sh.interner.Str(r.FQDN))
		r.RefFQDN = ds.FQDNs.ID(sh.interner.Str(r.RefFQDN))
		// A row's publisher is normally registered by the page visit
		// above (always true for the batch pipeline). An uploaded stream
		// can legally carry requests whose visit was never uploaded;
		// register the publisher here so the row resolves to a real id
		// instead of silently aliasing publisher 0.
		p := sh.pubs[r.Publisher]
		pid, ok := m.pubIdx[p]
		if !ok {
			pid = int32(len(ds.Publishers))
			m.pubIdx[p] = pid
			ds.Publishers = append(ds.Publishers, p)
		}
		r.Publisher = pid
		cc := sh.countries[r.Country]
		cID, ok := m.countryIdx[cc]
		if !ok {
			cID = uint8(len(ds.Countries))
			m.countryIdx[cc] = cID
			ds.Countries = append(ds.Countries, cc)
		}
		r.Country = cID
		m.sink.Append(r)
	}
}

// Captures returns the number of user captures buffered in the shard.
func (sh *Shard) Captures() int { return len(sh.caps) }

// CaptureUser returns the user id of capture idx.
func (sh *Shard) CaptureUser(idx int) int32 { return sh.caps[idx].user }

// ResetCaptures drops the buffered captures so the shard can collect the
// next epoch, keeping the interner, the publisher/country indexes and
// the classification caches warm. Captures already appended through a
// Merger stay valid in the dataset; the shard-local ids they used remain
// stable because the interner and indexes are never reset.
func (sh *Shard) ResetCaptures() {
	sh.caps = sh.caps[:0]
	sh.cur = -1
}

// Clone returns a read-only copy of the interner sharing the interned
// strings: the strs prefix is immutable (ids are append-only), so the
// clone and the original can be used concurrently as long as only the
// original keeps interning. The live collector publishes a clone with
// every epoch snapshot.
func (in *Interner) Clone() *Interner {
	ids := make(map[string]uint32, len(in.ids))
	for s, id := range in.ids {
		ids[s] = id
	}
	return &Interner{ids: ids, strs: in.strs[:len(in.strs):len(in.strs)]}
}

// LiveSemi runs classification stages 2 and 3 incrementally over a
// growing dataset. Extend is called after each epoch's rows have been
// appended; it labels the new rows and propagates new tracking FQDNs
// back through the settled rows, carrying the LTF membership across
// calls so no epoch ever rescans from scratch needlessly.
//
// The final classification is set-identical to running the batch
// fixpoint once over the complete dataset: stage 1 is per-row, stage 3
// (keyword + arguments) converts unconditionally, and stage 2 is a
// monotone closure over referrer edges, so the least fixpoint does not
// depend on how the rows were split into epochs. The SemiReferrer /
// SemiKeyword label split can differ from the batch engine's
// order-sensitive first pass for rows that qualify under both rules;
// no aggregate distinguishes the two (both are IsSemi and IsTracking).
type LiveSemi struct {
	ds      *Dataset
	workers int
	pool    *workerPool
	bufs    []*Chunk     // per-worker decode buffers for the rounds
	pcs     []*ProjChunk // per-worker projection buffers (pushdown rounds)
	inLTF   []bool
	rows    int
	// cand holds the global indices of settled rows that could still
	// convert — clean, argument-carrying, with a referrer — in index
	// order. Rounds scan only this list (and drop entries as they
	// convert), so per-epoch fixpoint cost is proportional to the
	// convertible frontier, not to the whole store.
	cand []int
}

// NewLiveSemi returns an incremental fixpoint over ds (which may already
// hold rows; the first Extend covers everything). workers sizes the
// persistent propagation pool (minimum 1). Close releases the pool.
func NewLiveSemi(ds *Dataset, workers int) *LiveSemi {
	if workers < 1 {
		workers = 1
	}
	bufs := make([]*Chunk, workers)
	pcs := make([]*ProjChunk, workers)
	for i := range bufs {
		bufs[i] = &Chunk{}
		pcs[i] = &ProjChunk{}
	}
	return &LiveSemi{ds: ds, workers: workers, pool: newWorkerPool(workers), bufs: bufs, pcs: pcs}
}

// Close releases the worker pool. The LiveSemi must not be used
// afterwards.
func (ls *LiveSemi) Close() { ls.pool.Close() }

// Extend classifies the rows appended since the previous call and
// returns the global indices of previously-settled rows (index < the
// previous dataset length) that flipped from clean to tracking because
// a new epoch admitted their referrer FQDN. Rows inside the new epoch
// are not reported — the caller already knows their range and can scan
// their final classes directly.
func (ls *LiveSemi) Extend() (flipped []int) {
	st := ls.ds.Store
	if st == nil {
		return nil
	}
	prev := ls.rows
	total := st.Len()
	if total == prev {
		return nil
	}
	if n := ls.ds.FQDNs.Len(); n > len(ls.inLTF) {
		grown := make([]bool, n)
		copy(grown, ls.inLTF)
		ls.inLTF = grown
	}

	// Pass 1 over the new rows only: stage-1 seeds join the LTF, stage 3
	// (keyword + arguments) converts unconditionally, and the remaining
	// convertible rows — clean with arguments and a referrer — join the
	// candidate frontier the rounds below scan.
	buf := GetChunk()
	defer PutChunk(buf)
	chunkRows := st.ChunkRows()
	firstChunk := prev / chunkRows
	for ci := firstChunk; ci < st.NumChunks(); ci++ {
		c := MustChunk(st, ci, buf)
		base := ci * chunkRows
		lo := 0
		if base < prev {
			lo = prev - base
		}
		for i := lo; i < c.Len(); i++ {
			switch {
			case c.Class[i] == ClassABP:
				ls.inLTF[c.FQDN[i]] = true
			case c.Class[i] != ClassClean || c.Flags[i]&FlagHasArgs == 0:
				// Already converted, or never convertible.
			case c.Flags[i]&FlagKeyword != 0:
				c.Class[i] = ClassSemiKeyword
				ls.inLTF[c.FQDN[i]] = true
			case c.RefFQDN[i] != 0:
				ls.cand = append(ls.cand, base+i)
			}
		}
	}

	// Propagation rounds over the candidate frontier: label-uniform
	// referrer propagation against a per-round LTF snapshot, until a
	// round admits no new FQDN. Identical closure to the batch engine's
	// snapshot rounds (worker count cannot change the outcome because
	// each round reads a frozen inLTF); scanning only candidates keeps
	// each round O(frontier) instead of O(store), which is what bounds
	// epoch-commit latency on a long-lived collector. The candidate
	// list is ascending, so it partitions into per-chunk runs; workers
	// take whole runs round-robin and load each chunk once into a
	// persistent per-worker buffer — one decode per touched chunk per
	// round even when the live store keeps sealed chunks compressed
	// (for the wide store the load is still a pointer fetch).
	type roundOut struct {
		newLTF  []uint32
		flipped []int
	}
	type candRun struct{ chunk, lo, hi int }
	var runs []candRun
	// On block-backed stores the rounds use the projection path: only
	// the FQDN and RefFQDN columns leave the block (the resident class
	// column is mutated in place), so a round decodes 2 of 9 columns per
	// touched chunk. Wide stores keep the pointer-fetch chunk load.
	useProj := false
	if br, ok := st.(BlockReader); ok && br.HasEncodedBlocks() {
		useProj = ls.ds.PushdownEnabled()
	}
	projCols := Cols(ColFQDN, ColRefFQDN)
	for {
		runs = runs[:0]
		for lo := 0; lo < len(ls.cand); {
			ci := ls.cand[lo] / chunkRows
			hi := lo + 1
			for hi < len(ls.cand) && ls.cand[hi]/chunkRows == ci {
				hi++
			}
			runs = append(runs, candRun{chunk: ci, lo: lo, hi: hi})
			lo = hi
		}
		outs := make([]roundOut, ls.workers)
		ls.pool.run(func(w int) {
			out := &outs[w]
			for r := w; r < len(runs); r += ls.workers {
				run := runs[r]
				if useProj {
					pc := ProjChunkAt(st, run.chunk, projCols, ls.pcs[w])
					cls := pc.Class
					fq := pc.Wide(ColFQDN)
					rf := pc.Wide(ColRefFQDN)
					for k := run.lo; k < run.hi; k++ {
						g := ls.cand[k]
						i := g % chunkRows
						if ls.inLTF[uint32(rf[i])] {
							cls[i] = ClassSemiReferrer
							if f := uint32(fq[i]); !ls.inLTF[f] {
								out.newLTF = append(out.newLTF, f)
							}
							if g < prev {
								out.flipped = append(out.flipped, g)
							}
						}
					}
					continue
				}
				c := MustChunk(st, run.chunk, ls.bufs[w])
				for k := run.lo; k < run.hi; k++ {
					g := ls.cand[k]
					i := g % chunkRows
					if ls.inLTF[c.RefFQDN[i]] {
						c.Class[i] = ClassSemiReferrer
						if !ls.inLTF[c.FQDN[i]] {
							out.newLTF = append(out.newLTF, c.FQDN[i])
						}
						if g < prev {
							out.flipped = append(out.flipped, g)
						}
					}
				}
			}
		})
		changed := false
		for _, out := range outs {
			for _, f := range out.newLTF {
				if !ls.inLTF[f] {
					ls.inLTF[f] = true
					changed = true
				}
			}
			flipped = append(flipped, out.flipped...)
		}
		// Compact: drop the candidates that converted this round
		// (in-place, order-preserving).
		live := ls.cand[:0]
		for _, g := range ls.cand {
			if st.Classes(g / chunkRows)[g%chunkRows] == ClassClean {
				live = append(live, g)
			}
		}
		ls.cand = live
		if !changed {
			break
		}
	}
	ls.rows = total
	// Ascending order makes the report deterministic and lets the
	// caller walk flipped rows chunk by chunk with one decode buffer.
	sort.Ints(flipped)
	return flipped
}
