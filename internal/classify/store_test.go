package classify

import (
	"math/rand"
	"testing"

	"crossborder/internal/browser"
	"crossborder/internal/netsim"
)

// randomRows builds a synthetic capture with cascade structure: FQDN
// ids drawn from a small universe so referrer chains actually connect,
// a seeded share of ABP verdicts, and random args/keyword flags.
func randomRows(rng *rand.Rand, n, numFQDN int) []Row {
	rows := make([]Row, n)
	for i := range rows {
		r := Row{
			URLHash: rng.Uint64(),
			IP:      netsim.IP(rng.Uint32()),
			FQDN:    uint32(1 + rng.Intn(numFQDN-1)),
			User:    int32(rng.Intn(7)),
			Day:     uint16(rng.Intn(120)),
			Country: uint8(rng.Intn(4)),
		}
		if rng.Float64() < 0.7 {
			r.RefFQDN = uint32(1 + rng.Intn(numFQDN-1))
		}
		if rng.Float64() < 0.6 {
			r.Flags |= FlagHasArgs
		}
		if rng.Float64() < 0.25 {
			r.Flags |= FlagKeyword
		}
		if rng.Float64() < 0.08 {
			r.Class = ClassABP
		}
		rows[i] = r
	}
	return rows
}

// internerOfSize returns an interner with n synthetic hostnames.
func internerOfSize(n int) *Interner {
	in := NewInterner()
	for i := 1; i < n; i++ {
		in.ID(string(rune('a'+i%26)) + string(rune('0'+i%10)) + ".x")
	}
	return in
}

func TestMemStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := randomRows(rng, 1000, 50)
	st := NewMemStoreChunked(64) // force many chunks
	for _, r := range rows {
		st.Append(r)
	}
	if st.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(rows))
	}
	wantChunks := (len(rows) + 63) / 64
	if st.NumChunks() != wantChunks {
		t.Fatalf("NumChunks = %d, want %d", st.NumChunks(), wantChunks)
	}
	ds := &Dataset{Store: st}
	got := ds.Rows()
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d: %+v != %+v", i, got[i], rows[i])
		}
	}
}

func TestSpillStoreMatchesMemStore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randomRows(rng, 2000, 80)
	sink, err := NewSpillSink(t.TempDir(), 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sink.Append(r)
	}
	store, err := sink.Seal()
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Len() != len(rows) {
		t.Fatalf("Len = %d, want %d", store.Len(), len(rows))
	}
	ds := &Dataset{Store: store}
	got := ds.Rows()
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d: decoded %+v != appended %+v", i, got[i], rows[i])
		}
	}
	// The class column must be resident and shared: a write through one
	// loaded view is seen by the next load.
	cls := store.Classes(3)
	cls[5] = ClassSemiKeyword
	var buf Chunk
	if c := MustChunk(store, 3, &buf); c.Class[5] != ClassSemiKeyword {
		t.Fatal("class column write not visible through reloaded chunk")
	}
}

// TestShardedSemiStagesMatchSequential is the sharded fixpoint's
// contract: on randomized cascade structures and across worker counts,
// the sharded engine must label every row exactly as the sequential
// reference does — including the order-sensitive SemiReferrer-vs-
// SemiKeyword split of the first pass.
func TestShardedSemiStagesMatchSequential(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		numFQDN := 10 + rng.Intn(60)
		rows := randomRows(rng, 500+rng.Intn(3000), numFQDN)
		in := internerOfSize(numFQDN)

		ref := &Dataset{Store: StoreOf(rows...), FQDNs: in}
		runSemiStagesSequential(ref)
		want := ref.Rows()

		for _, workers := range []int{2, 3, 8} {
			st := NewMemStoreChunked(256)
			for _, r := range rows {
				st.Append(r)
			}
			ds := &Dataset{Store: st, FQDNs: in}
			runSemiStagesSharded(ds, workers)
			got := ds.Rows()
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d workers %d row %d: sharded %+v != sequential %+v",
						trial, workers, i, got[i], want[i])
				}
			}
		}
	}
}

// TestFinalizeIntoSpillMatchesMem runs the same simulated capture
// through both sinks: the sealed datasets must agree row for row, and
// the semi stages must behave identically over the spilled store.
func TestFinalizeIntoSpillMatchesMem(t *testing.T) {
	g, srv, el, ep := shardRig(t, 21)
	users := browser.MakeUsers([]browser.CountryCount{{Country: "DE", Users: 3}, {Country: "FR", Users: 2}})
	sim := browser.NewSimulator(g, srv, browser.Config{VisitsPerUser: 15})

	mk := func() *ShardedCollector {
		sc := NewShardedCollector(g, el, ep, start, 2)
		sim.RunWorkers(9, users, 2, func(w int) []browser.Sink {
			return []browser.Sink{sc.Shard(w)}
		})
		return sc
	}

	memDS := mk().Finalize(users)

	sink, err := NewSpillSink(t.TempDir(), 512)
	if err != nil {
		t.Fatal(err)
	}
	spillDS, err := mk().FinalizeInto(users, sink)
	if err != nil {
		t.Fatal(err)
	}
	defer spillDS.Close()

	datasetsEqual(t, memDS, spillDS)

	sm, ss := ComputeStats(memDS), ComputeStats(spillDS)
	if sm != ss {
		t.Fatalf("DatasetStats differ: %+v vs %+v", sm, ss)
	}
}
