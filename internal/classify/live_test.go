package classify

import (
	"math/rand"
	"testing"

	"crossborder/internal/browser"
)

// liveRigDataset builds a merged, stage-1-classified dataset (semi
// stages NOT run) the incremental tests can replay in arbitrary epoch
// splits.
func liveRigDataset(t *testing.T, seed int64) *Dataset {
	t.Helper()
	g, srv, el, ep := shardRig(t, seed)
	users := browser.MakeUsers([]browser.CountryCount{
		{Country: "DE", Users: 5}, {Country: "ES", Users: 4},
		{Country: "FR", Users: 3}, {Country: "BR", Users: 3},
	})
	sim := browser.NewSimulator(g, srv, browser.Config{VisitsPerUser: 25})
	sc := NewShardedCollector(g, el, ep, start, 1)
	sim.Run(seed, users, sc.Shard(0))
	order := make([]capRef, len(sc.Shard(0).caps))
	for i := range order {
		order[i] = capRef{sh: sc.Shard(0), idx: i}
	}
	ds, err := sc.mergeInto(order, NewMemStore(), false)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestLiveSemiMatchesBatchFixpoint: appending the rows in random epoch
// splits and extending the incremental fixpoint after each must yield
// the same classification as the one-shot batch fixpoint, at the level
// every aggregate reads: the tracking set and the ABP label (the
// SemiReferrer/SemiKeyword split of rows recovered by both heuristics
// may differ; it is observable nowhere). Old-row flips must be reported
// exactly: every settled row whose tracking bit changes, nothing else.
func TestLiveSemiMatchesBatchFixpoint(t *testing.T) {
	for _, seed := range []int64{3, 17, 92} {
		ref := liveRigDataset(t, seed)
		rows := ref.Rows() // pre-fixpoint snapshot of the merged rows
		runSemiStages(ref, 4)
		want := ref.Rows()

		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 3; trial++ {
			st := NewMemStoreChunked(96)
			// The incremental engine reads only ds.FQDNs.Len(); sharing
			// the reference interner (read-only here) keeps ids aligned.
			live := &Dataset{FQDNs: ref.FQDNs, Start: start, Store: st}
			ls := NewLiveSemi(live, 1+rng.Intn(4))

			off := 0
			var settledTracking []bool
			for off < len(rows) {
				n := 1 + rng.Intn(len(rows)/2+1)
				if off+n > len(rows) {
					n = len(rows) - off
				}
				for _, r := range rows[off : off+n] {
					st.Append(r)
				}
				prevSettled := off
				off += n
				flips := ls.Extend()
				// Reported flips must be exactly the settled rows whose
				// tracking bit changed this epoch.
				flipSet := make(map[int]bool, len(flips))
				for _, g := range flips {
					if g >= prevSettled {
						t.Fatalf("seed %d: flip %d inside the new epoch [%d, %d)", seed, g, prevSettled, off)
					}
					flipSet[g] = true
				}
				for i := 0; i < prevSettled; i++ {
					now := trackingAt(st, i)
					if now != settledTracking[i] && !flipSet[i] {
						t.Fatalf("seed %d: row %d flipped silently", seed, i)
					}
					if settledTracking[i] && flipSet[i] {
						t.Fatalf("seed %d: row %d reported as flip but was already tracking", seed, i)
					}
				}
				settledTracking = settledTracking[:0]
				for i := 0; i < off; i++ {
					settledTracking = append(settledTracking, trackingAt(st, i))
				}
			}
			ls.Close()

			// Final parity with the batch fixpoint.
			got := live.Rows()
			for i := range want {
				if got[i].Class.IsTracking() != want[i].Class.IsTracking() ||
					(got[i].Class == ClassABP) != (want[i].Class == ClassABP) {
					t.Fatalf("seed %d trial %d: row %d class %v, batch %v",
						seed, trial, i, got[i].Class, want[i].Class)
				}
			}
		}
	}
}

// trackingAt reads one row's tracking bit from the resident class
// column.
func trackingAt(st Store, global int) bool {
	return st.Classes(global/st.ChunkRows())[global%st.ChunkRows()].IsTracking()
}
