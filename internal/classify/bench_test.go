package classify

import (
	"runtime"
	"testing"

	"crossborder/internal/browser"
)

// benchCollector simulates the shared benchmark capture once: a
// sequential browse of 14 users over the scale-0.05 rig, ready to
// merge into any row sink (mergeInto never mutates the shard, so one
// collector serves several sinks).
func benchCollector(b *testing.B) (*ShardedCollector, []capRef) {
	b.Helper()
	g, srv, el, ep := shardRig(b, 31)
	users := browser.MakeUsers([]browser.CountryCount{
		{Country: "DE", Users: 6}, {Country: "ES", Users: 4}, {Country: "FR", Users: 4},
	})
	sim := browser.NewSimulator(g, srv, browser.Config{VisitsPerUser: 40})
	sc := NewShardedCollector(g, el, ep, start, 1)
	sim.Run(7, users, sc.Shard(0))
	order := make([]capRef, len(sc.Shard(0).caps))
	for i := range order {
		order[i] = capRef{sh: sc.Shard(0), idx: i}
	}
	return sc, order
}

// semiBenchDataset builds a merged dataset in post-stage-1 state (semi
// stages not yet run) plus a pristine copy of the class columns, so
// each benchmark iteration can rewind and re-run the fixpoint.
func semiBenchDataset(b *testing.B, chunkRows int) (*Dataset, [][]Class) {
	b.Helper()
	sc, order := benchCollector(b)
	ds, err := sc.mergeInto(order, NewMemStoreChunked(chunkRows), false)
	if err != nil {
		b.Fatal(err)
	}
	pristine := make([][]Class, ds.Store.NumChunks())
	for ci := range pristine {
		src := ds.Store.Classes(ci)
		pristine[ci] = append([]Class(nil), src...)
	}
	return ds, pristine
}

func rewindClasses(ds *Dataset, pristine [][]Class) {
	for ci, src := range pristine {
		copy(ds.Store.Classes(ci), src)
	}
}

// BenchmarkSemiStages measures the sharded semi-stage fixpoint at the
// worker count the pipeline would use (GOMAXPROCS), over a multi-chunk
// store. On a single-core runner this degenerates to the sequential
// engine; BenchmarkSemiStagesSequential pins that baseline explicitly
// so multicore runs can report the speedup.
func BenchmarkSemiStages(b *testing.B) {
	ds, pristine := semiBenchDataset(b, 2048)
	workers := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(ds.Len()), "rows")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewindClasses(ds, pristine)
		runSemiStages(ds, workers)
	}
}

// BenchmarkSemiStagesSequential is the one-worker reference engine over
// the same store.
func BenchmarkSemiStagesSequential(b *testing.B) {
	ds, pristine := semiBenchDataset(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewindClasses(ds, pristine)
		runSemiStages(ds, 1)
	}
}

// BenchmarkSpillScan measures a full-dataset Dataset.Scan over the
// spill store with the chunk codec on and off. Bytes/op is the raw
// fixed-width reference, so MB/s is comparable across the two; the
// size-ratio metric reports compressed/raw on disk. -benchmem pins the
// allocation flatness contract: the scan draws its decode buffer and
// codec scratch from the pools, so allocs/op stays a small constant
// regardless of chunk count.
func BenchmarkSpillScan(b *testing.B) {
	sc, order := benchCollector(b)
	for _, mode := range []struct {
		name string
		mk   func(dir string) (RowSink, error)
	}{
		{"compressed", func(dir string) (RowSink, error) { return NewSpillSink(dir, 4096) }},
		{"raw", func(dir string) (RowSink, error) { return NewSpillSinkUncompressed(dir, 4096) }},
	} {
		b.Run(mode.name, func(b *testing.B) {
			sink, err := mode.mk(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			ds, err := sc.mergeInto(order, sink, false)
			if err != nil {
				b.Fatal(err)
			}
			defer ds.Close()
			sp := ds.Store.(*SpillStore)
			b.SetBytes(sp.RawSize())
			b.ReportMetric(float64(sp.Size())/float64(sp.RawSize()), "size-ratio")
			b.ResetTimer()
			var blackhole uint64
			for i := 0; i < b.N; i++ {
				ds.Scan(func(_ int, c *Chunk) {
					for j := range c.URLHash {
						blackhole += c.URLHash[j] ^ uint64(c.IP[j]) ^ uint64(c.FQDN[j]) ^ uint64(c.Day[j])
					}
				})
			}
			_ = blackhole
		})
	}
}

// BenchmarkChunkCodec measures the codec itself — encode and decode of
// one full study-shaped chunk; bytes/op is the raw fixed-width size,
// so ns/op converts to raw-layout MB/s.
func BenchmarkChunkCodec(b *testing.B) {
	sc, order := benchCollector(b)
	ds, err := sc.mergeInto(order, NewMemStoreChunked(DefaultChunkRows), false)
	if err != nil {
		b.Fatal(err)
	}
	c := MustChunk(ds.Store, 0, nil)
	if c.Len() < DefaultChunkRows {
		b.Fatalf("bench capture has only %d rows; need a full chunk", c.Len())
	}
	rawBytes := int64(c.Len() * spillRowBytes)
	cc := GetCodec()
	defer PutCodec(cc)
	block := cc.EncodeBlock(c, true, nil)
	b.Run("encode", func(b *testing.B) {
		b.SetBytes(rawBytes)
		b.ReportMetric(float64(len(block))/float64(rawBytes), "size-ratio")
		var enc []byte
		for i := 0; i < b.N; i++ {
			enc = cc.EncodeBlock(c, true, enc[:0])
		}
	})
	b.Run("decode", func(b *testing.B) {
		b.SetBytes(rawBytes)
		buf := &Chunk{}
		for i := 0; i < b.N; i++ {
			if err := DecodeBlockInto(block, c.Len(), buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScanCols measures the projection scan over the compressed
// spill store. proj reads two of the nine columns in encoded form (the
// run/dict views of an Analyze-shaped kernel); wide is the same data
// through the decode-to-rows Scan for comparison; zonemap-skip prunes
// every chunk from its zone map alone, measuring the metadata-only
// floor of a selective query. Bytes/op is the raw fixed-width
// reference in all three, so MB/s is directly comparable.
func BenchmarkScanCols(b *testing.B) {
	sc, order := benchCollector(b)
	sink, err := NewSpillSink(b.TempDir(), 4096)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := sc.mergeInto(order, sink, false)
	if err != nil {
		b.Fatal(err)
	}
	defer ds.Close()
	sp := ds.Store.(*SpillStore)
	var blackhole uint64
	b.Run("proj", func(b *testing.B) {
		b.SetBytes(sp.RawSize())
		for i := 0; i < b.N; i++ {
			sp.ScanCols(Cols(ColIP, ColCountry), func(_ int, pc *ProjChunk) {
				for _, r := range pc.Runs(ColCountry) {
					blackhole += r.Value * uint64(r.Len)
				}
				if dict, idx, ok := pc.DictView(ColIP); ok {
					for _, v := range dict {
						blackhole += v
					}
					blackhole += uint64(idx[0])
				} else {
					for _, v := range pc.Wide(ColIP) {
						blackhole += v
					}
				}
			})
		}
	})
	b.Run("wide", func(b *testing.B) {
		b.SetBytes(sp.RawSize())
		for i := 0; i < b.N; i++ {
			ds.Scan(func(_ int, c *Chunk) {
				for j := range c.Country {
					blackhole += uint64(c.Country[j]) + uint64(c.IP[j])
				}
			})
		}
	})
	b.Run("zonemap-skip", func(b *testing.B) {
		// A Day predicate no row satisfies: every chunk's zone map
		// refutes it, so the scan touches metadata only.
		before := ReadScanStats()
		for i := 0; i < b.N; i++ {
			sp.ScanCols(Cols(ColDay), func(_ int, pc *ProjChunk) {
				if pc.Zone != nil && pc.Zone.Max[ColDay] < 1<<15 {
					return
				}
				for _, v := range pc.Wide(ColDay) {
					blackhole += v
				}
			})
		}
		after := ReadScanStats()
		scanned := after.ChunksScanned - before.ChunksScanned
		if scanned > 0 {
			b.ReportMetric(float64(after.ChunksSkipped-before.ChunksSkipped)/float64(scanned), "skip-rate")
		}
	})
	_ = blackhole
}
