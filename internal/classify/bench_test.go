package classify

import (
	"runtime"
	"testing"

	"crossborder/internal/browser"
)

// semiBenchDataset builds a merged dataset in post-stage-1 state (semi
// stages not yet run) plus a pristine copy of the class columns, so
// each benchmark iteration can rewind and re-run the fixpoint.
func semiBenchDataset(b *testing.B, chunkRows int) (*Dataset, [][]Class) {
	b.Helper()
	g, srv, el, ep := shardRig(b, 31)
	users := browser.MakeUsers([]browser.CountryCount{
		{Country: "DE", Users: 6}, {Country: "ES", Users: 4}, {Country: "FR", Users: 4},
	})
	sim := browser.NewSimulator(g, srv, browser.Config{VisitsPerUser: 40})
	sc := NewShardedCollector(g, el, ep, start, 1)
	sim.Run(7, users, sc.Shard(0))
	order := make([]capRef, len(sc.Shard(0).caps))
	for i := range order {
		order[i] = capRef{sh: sc.Shard(0), idx: i}
	}
	ds, err := sc.mergeInto(order, NewMemStoreChunked(chunkRows), false)
	if err != nil {
		b.Fatal(err)
	}
	pristine := make([][]Class, ds.Store.NumChunks())
	for ci := range pristine {
		src := ds.Store.Classes(ci)
		pristine[ci] = append([]Class(nil), src...)
	}
	return ds, pristine
}

func rewindClasses(ds *Dataset, pristine [][]Class) {
	for ci, src := range pristine {
		copy(ds.Store.Classes(ci), src)
	}
}

// BenchmarkSemiStages measures the sharded semi-stage fixpoint at the
// worker count the pipeline would use (GOMAXPROCS), over a multi-chunk
// store. On a single-core runner this degenerates to the sequential
// engine; BenchmarkSemiStagesSequential pins that baseline explicitly
// so multicore runs can report the speedup.
func BenchmarkSemiStages(b *testing.B) {
	ds, pristine := semiBenchDataset(b, 2048)
	workers := runtime.GOMAXPROCS(0)
	b.ReportMetric(float64(ds.Len()), "rows")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewindClasses(ds, pristine)
		runSemiStages(ds, workers)
	}
}

// BenchmarkSemiStagesSequential is the one-worker reference engine over
// the same store.
func BenchmarkSemiStagesSequential(b *testing.B) {
	ds, pristine := semiBenchDataset(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewindClasses(ds, pristine)
		runSemiStages(ds, 1)
	}
}
