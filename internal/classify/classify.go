// Package classify implements the paper's multi-stage tracking-flow
// classifier (§3.2). Stage 1 matches every third-party request against the
// easylist + easyprivacy filter lists, producing the initial list of
// tracking flows (LTF) and non-tracking flows (NTF). Stage 2 iteratively
// moves NTF requests to the LTF when their referrer is an already-detected
// tracking URL and the request URL carries arguments (the cookie-sync /
// RTB cascade signature). Stage 3 moves the remaining argument-carrying
// requests whose URL contains tracking vocabulary ("usermatch", "rtb",
// "cookiesync", ...). The combined stages roughly double detected tracking
// flows versus the lists alone (Table 2).
//
// The classifier doubles as the dataset builder: it consumes the browser
// capture stream and stores each request as a compact interned row, so the
// full 7.2M-request study fits comfortably in memory.
//
// Reads are columnar. Store serves full-width chunks for row-at-a-time
// scans, and ScanCols serves projected chunks for query pushdown: a
// kernel names the columns it needs and receives each one in the form
// the codec stored it — RLE runs, dictionary ids over a sorted
// dictionary, or decoded fixed-width values — plus a per-chunk zone map
// (min/max, class bitmap, distinct counts) computed at seal time and
// persisted in the block frame, so scans prune chunks before reading a
// byte of them. Dataset.Pushdown selects between the projected and
// decode-to-rows kernels (auto follows the store's block-serving
// capability); both produce byte-identical results.
package classify

import (
	"time"

	"crossborder/internal/blocklist"
	"crossborder/internal/browser"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/webgraph"
)

// Class is the final label of one request.
type Class uint8

const (
	// ClassClean is a non-tracking third-party request (NTF).
	ClassClean Class = iota
	// ClassABP was matched by the easylist/easyprivacy lists (stage 1).
	ClassABP
	// ClassSemiReferrer was recovered by referrer propagation (stage 2).
	ClassSemiReferrer
	// ClassSemiKeyword was recovered by the URL keyword + arguments
	// heuristic (stage 3).
	ClassSemiKeyword
)

func (c Class) String() string {
	switch c {
	case ClassClean:
		return "clean"
	case ClassABP:
		return "abp"
	case ClassSemiReferrer:
		return "semi-referrer"
	case ClassSemiKeyword:
		return "semi-keyword"
	default:
		return "unknown"
	}
}

// IsTracking reports whether the class marks the request as a tracking flow.
func (c Class) IsTracking() bool { return c != ClassClean }

// IsSemi reports whether the request was recovered by the semi-automatic
// stages rather than the lists.
func (c Class) IsSemi() bool {
	return c == ClassSemiReferrer || c == ClassSemiKeyword
}

// Keywords is the empirically built tracking vocabulary of stage 3 (§3.2
// names "usermatch", "rtb", "cookiesync" as examples).
var Keywords = []string{
	"usermatch", "cookiesync", "rtb", "adserv", "bid", "pixel",
	"collect", "sync", "track",
}

// Row is one captured request in compact interned form (~40 bytes).
type Row struct {
	URLHash   uint64
	IP        netsim.IP
	FQDN      uint32 // interner id
	RefFQDN   uint32 // interner id; 0 = first-party page context
	Publisher int32  // index into Dataset.Publishers
	User      int32
	Day       uint16 // days since dataset start
	Country   uint8  // index into Dataset.Countries
	Flags     uint8
	Class     Class
}

// Flag bits of Row.Flags.
const (
	FlagHasArgs uint8 = 1 << iota
	FlagHTTPS
	FlagKeyword  // URL contains stage-3 vocabulary
	FlagTruthing // ground truth: the serving service role is tracking
)

// HasArgs reports whether the request URL carried query arguments.
func (r Row) HasArgs() bool { return r.Flags&FlagHasArgs != 0 }

// HTTPS reports whether the request was encrypted.
func (r Row) HTTPS() bool { return r.Flags&FlagHTTPS != 0 }

// HasKeyword reports whether the URL contains tracking vocabulary.
func (r Row) HasKeyword() bool { return r.Flags&FlagKeyword != 0 }

// TruthTracking reports the generator-side ground truth for the request.
func (r Row) TruthTracking() bool { return r.Flags&FlagTruthing != 0 }

// Interner maps strings to dense uint32 ids. Id 0 is reserved for "".
//
// Concurrency contract: the Interner is single-writer. ID may be called
// from one goroutine at a time (the collector shards each own a private
// interner, and the Finalize merge re-interns from the single merging
// goroutine). Read-only access — Str, Len, Lookup — is safe from any
// number of goroutines once no writer is active, which is why the
// parallel analysis scans can resolve ids without locks.
type Interner struct {
	ids  map[string]uint32
	strs []string
}

// NewInterner returns an interner with "" pre-assigned id 0.
func NewInterner() *Interner {
	return NewInternerSized(0)
}

// NewInternerSized returns an interner pre-sized for about n strings,
// with "" pre-assigned id 0. The Finalize merge sizes the dataset
// interner from the shard interners' combined length, avoiding the
// rehash/regrow churn of growing a large map one insert at a time.
func NewInternerSized(n int) *Interner {
	if n < 1 {
		n = 1
	}
	in := &Interner{ids: make(map[string]uint32, n), strs: make([]string, 1, n)}
	in.ids[""] = 0
	return in
}

// ID returns (assigning if needed) the id for s.
func (in *Interner) ID(s string) uint32 {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := uint32(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Lookup returns the id for s without assigning.
func (in *Interner) Lookup(s string) (uint32, bool) {
	id, ok := in.ids[s]
	return id, ok
}

// Str returns the string for an id.
func (in *Interner) Str(id uint32) string {
	if int(id) >= len(in.strs) {
		return ""
	}
	return in.strs[id]
}

// Len returns the number of interned strings including "".
func (in *Interner) Len() int { return len(in.strs) }

// PushdownMode selects whether the experiment kernels run on the
// projection scan path (decode-free pushdown over encoded chunks) or
// the decode-to-rows path. The artifacts are byte-identical either
// way; the flag exists so regressions bisect with one switch.
type PushdownMode uint8

const (
	// PushdownAuto (the zero value) enables pushdown exactly when the
	// store holds encoded blocks — where projected decodes touch fewer
	// bytes than a full-width decode. Wide in-memory stores keep the
	// plain scan, which reads resident columns in place.
	PushdownAuto PushdownMode = iota
	// PushdownOn forces the projection kernels on every store.
	PushdownOn
	// PushdownOff forces the decode-to-rows kernels.
	PushdownOff
)

// Dataset is the collected, classified request log. Rows live in a
// columnar Store (in-memory by default, spill-to-disk for Scale >> 1
// runs); consumers scan it chunk-wise via Scan/EachRow or directly
// through Store for parallel scans.
type Dataset struct {
	// Store holds the rows column-wise in fixed-size chunks.
	Store Store
	// Pushdown selects the scan path of the experiment kernels.
	Pushdown PushdownMode
	// FQDNs interns every third-party hostname (and referrer hostnames).
	FQDNs *Interner
	// Countries indexes Row.Country.
	Countries []geodata.Country
	// Publishers indexes Row.Publisher.
	Publishers []*webgraph.Publisher
	// Visits counts first-party requests (page loads).
	Visits int
	// Start anchors Row.Day.
	Start time.Time
}

// Len returns the number of rows.
func (d *Dataset) Len() int {
	if d.Store == nil {
		return 0
	}
	return d.Store.Len()
}

// Scan walks the store chunk by chunk in row order, drawing one decode
// buffer from the shared pool and reusing it across chunks, so scans
// over compressed or spilled stores add no per-chunk allocations. base
// is the global index of the chunk's first row. A store read or decode
// failure panics (see MustChunk): the aggregate paths scan stores this
// process wrote, so losing one mid-scan is unrecoverable.
func (d *Dataset) Scan(fn func(base int, c *Chunk)) {
	if d.Store == nil {
		return
	}
	buf := GetChunk()
	defer PutChunk(buf)
	base := 0
	for i := 0; i < d.Store.NumChunks(); i++ {
		c := MustChunk(d.Store, i, buf)
		fn(base, c)
		base += c.Len()
	}
}

// ScanCols walks the store through the projection path (see
// Store.ScanCols), regardless of the Pushdown mode — the mode gates
// which path kernels choose, not what the API can do.
func (d *Dataset) ScanCols(cols ColSet, fn func(base int, pc *ProjChunk)) {
	if d.Store == nil {
		return
	}
	d.Store.ScanCols(cols, fn)
}

// PushdownEnabled resolves the dataset's Pushdown mode against its
// store and records the decision in the process-wide scan counters.
// Kernels call it once per scan to pick a path.
func (d *Dataset) PushdownEnabled() bool {
	on := d.pushdownResolved()
	CountPushdownScan(on)
	return on
}

// pushdownResolved is PushdownEnabled without the counter side effect.
func (d *Dataset) pushdownResolved() bool {
	switch d.Pushdown {
	case PushdownOn:
		return true
	case PushdownOff:
		return false
	}
	if d.Store == nil {
		return false
	}
	br, ok := d.Store.(BlockReader)
	return ok && br.HasEncodedBlocks()
}

// EachRow calls fn for every row in order, gathering each back into
// array-of-structs form. i is the global row index. Chunk-wise scans
// over the columns are cheaper when only a few columns matter.
func (d *Dataset) EachRow(fn func(i int, r Row)) {
	d.Scan(func(base int, c *Chunk) {
		for i := 0; i < c.Len(); i++ {
			fn(base+i, c.Row(i))
		}
	})
}

// Rows materializes every row as one array-of-structs slice. Intended
// for tests and small tools: on a spilled Scale >> 1 dataset this undoes
// the columnar layout's memory bound.
func (d *Dataset) Rows() []Row {
	out := make([]Row, 0, d.Len())
	d.EachRow(func(_ int, r Row) { out = append(out, r) })
	return out
}

// Close releases the row store (the spill file, for disk-backed runs).
// The dataset must not be scanned afterwards.
func (d *Dataset) Close() error {
	if d.Store == nil {
		return nil
	}
	return d.Store.Close()
}

// Country returns the user country of a row.
func (d *Dataset) Country(r Row) geodata.Country { return d.Countries[r.Country] }

// FQDN returns the contacted hostname of a row.
func (d *Dataset) FQDN(r Row) string { return d.FQDNs.Str(r.FQDN) }

// Publisher returns the first-party publisher of a row.
func (d *Dataset) Publisher(r Row) *webgraph.Publisher { return d.Publishers[r.Publisher] }

// Time reconstructs the (day-granular) timestamp of a row.
func (d *Dataset) Time(r Row) time.Time { return d.Start.AddDate(0, 0, int(r.Day)) }

// Collector is a browser.Sink that builds the Dataset and runs stage 1
// (filter-list matching) online as requests arrive. It is the sequential
// convenience wrapper around a one-shard ShardedCollector; parallel
// pipelines use ShardedCollector directly.
type Collector struct {
	sc *ShardedCollector
	sh *Shard
}

// NewCollector returns a collector classifying against the two lists.
func NewCollector(graph *webgraph.Graph, easylist, easyprivacy *blocklist.List, start time.Time) *Collector {
	sc := NewShardedCollector(graph, easylist, easyprivacy, start, 1)
	return &Collector{sc: sc, sh: sc.Shard(0)}
}

// OnVisit implements browser.Sink.
func (c *Collector) OnVisit(u *browser.User, p *webgraph.Publisher, at time.Time) {
	c.sh.OnVisit(u, p, at)
}

// OnRequest implements browser.Sink: stage-1 classification + row storage.
func (c *Collector) OnRequest(ev browser.Event) { c.sh.OnRequest(ev) }

// containsKeyword scans a URL for the stage-3 vocabulary in one pass,
// case-insensitively, without allocating.
func containsKeyword(url string) bool {
	return keywordAC.matchParts(url)
}

// FNV-1a constants; fnvAdd folds one string fragment into a running hash
// so URL hashing needs no concatenated "https://"+fqdn+path string.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvAdd(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// Finalize runs stages 2 and 3 over the collected rows and returns the
// dataset. The collector must not be used afterwards. Users are merged in
// the order this collector first saw them, which for a sequential
// simulation is exactly the browsing order.
func (c *Collector) Finalize() *Dataset {
	order := make([]capRef, len(c.sh.caps))
	for i := range c.sh.caps {
		order[i] = capRef{sh: c.sh, idx: i}
	}
	ds, err := c.sc.mergeInto(order, NewMemStore(), true)
	if err != nil {
		// Unreachable: the in-memory sink cannot fail.
		panic("classify: " + err.Error())
	}
	return ds
}
