package classify

import "sync"

// workerPool is a persistent pool of n goroutines executing barrier-style
// passes: run(fn) hands fn exactly one index in [0, n) per worker slot
// and returns when all n invocations have finished. The semi-stage
// fixpoint makes a dozen or more passes over the chunks (seed, relax
// rounds, mark, propagation rounds); reusing one pool across them avoids
// re-spawning n goroutines per pass, which at small scales was a visible
// slice of the fixpoint's cost (ROADMAP open item). The live ingestion
// collector keeps one pool alive across epochs for the same reason.
type workerPool struct {
	n    int
	work chan poolTask
}

type poolTask struct {
	fn  func(w int)
	w   int
	wg  *sync.WaitGroup
}

// newWorkerPool starts n pool goroutines. Close must be called to release
// them.
func newWorkerPool(n int) *workerPool {
	if n < 1 {
		n = 1
	}
	p := &workerPool{n: n, work: make(chan poolTask)}
	for i := 0; i < n; i++ {
		go func() {
			for t := range p.work {
				t.fn(t.w)
				t.wg.Done()
			}
		}()
	}
	return p
}

// run executes fn(0..n-1) across the pool and returns when every
// invocation is done. Which goroutine runs which index is unspecified;
// every index runs exactly once per call.
func (p *workerPool) run(fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(p.n)
	for w := 0; w < p.n; w++ {
		p.work <- poolTask{fn: fn, w: w, wg: &wg}
	}
	wg.Wait()
}

// Close releases the pool goroutines. The pool must not be used
// afterwards.
func (p *workerPool) Close() { close(p.work) }
