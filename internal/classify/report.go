package classify

import (
	"sort"

	"crossborder/internal/webgraph"
)

// MethodStats summarizes one classification method's catch (a row of
// Table 2): distinct FQDNs, distinct eTLD+1s, unique request URLs, and
// total requests.
type MethodStats struct {
	FQDNs          int
	TLDs           int
	UniqueRequests int64
	TotalRequests  int64
}

// Table2 reproduces the paper's Table 2: the AdBlockPlus-list catch, the
// semi-automatic catch, and their union.
type Table2 struct {
	ABP   MethodStats
	Semi  MethodStats
	Total MethodStats
}

// ComputeTable2 aggregates the classified dataset.
func ComputeTable2(ds *Dataset) Table2 {
	type agg struct {
		fqdns map[uint32]struct{}
		tlds  map[string]struct{}
		urls  map[uint64]struct{}
		total int64
	}
	newAgg := func() *agg {
		return &agg{
			fqdns: make(map[uint32]struct{}),
			tlds:  make(map[string]struct{}),
			urls:  make(map[uint64]struct{}),
		}
	}
	abp, semi, tot := newAgg(), newAgg(), newAgg()
	add := func(a *agg, fqdn uint32, urlHash uint64, tld string) {
		a.fqdns[fqdn] = struct{}{}
		a.tlds[tld] = struct{}{}
		a.urls[urlHash] = struct{}{}
		a.total++
	}
	// tldOf caches the per-FQDN eTLD+1 so both scan paths do one suffix
	// parse per hostname, not per row.
	tldOf := make(map[uint32]string)
	tld := func(f uint32) string {
		t, ok := tldOf[f]
		if !ok {
			t = webgraph.ETLDPlusOne(ds.FQDNs.Str(f))
			tldOf[f] = t
		}
		return t
	}
	addRow := func(cls Class, fqdn uint32, urlHash uint64) {
		t := tld(fqdn)
		add(tot, fqdn, urlHash, t)
		if cls == ClassABP {
			add(abp, fqdn, urlHash, t)
		} else {
			add(semi, fqdn, urlHash, t)
		}
	}
	if ds.PushdownEnabled() {
		// Only URLHash and FQDN leave the block; chunks with no tracking
		// rows load nothing at all.
		ds.ScanCols(Cols(ColURLHash, ColFQDN), func(_ int, pc *ProjChunk) {
			cls := pc.Class
			if !AnyTracking(cls) {
				return
			}
			urls := pc.Wide(ColURLHash)
			fqdns := pc.Wide(ColFQDN)
			for i, c := range cls {
				if !c.IsTracking() {
					continue
				}
				addRow(c, uint32(fqdns[i]), urls[i])
			}
		})
	} else {
		ds.Scan(func(_ int, c *Chunk) {
			for i, cls := range c.Class {
				if !cls.IsTracking() {
					continue
				}
				addRow(cls, c.FQDN[i], c.URLHash[i])
			}
		})
	}
	toStats := func(a *agg) MethodStats {
		return MethodStats{
			FQDNs:          len(a.fqdns),
			TLDs:           len(a.tlds),
			UniqueRequests: int64(len(a.urls)),
			TotalRequests:  a.total,
		}
	}
	return Table2{ABP: toStats(abp), Semi: toStats(semi), Total: toStats(tot)}
}

// SiteCounts is the per-website request tally behind Fig 2.
type SiteCounts struct {
	Domain   string
	Clean    int64
	Tracking int64
}

// All returns the total third-party requests of the site.
func (s SiteCounts) All() int64 { return s.Clean + s.Tracking }

// PerSiteCounts aggregates requests per first-party website.
func PerSiteCounts(ds *Dataset) []SiteCounts {
	clean := make([]int64, len(ds.Publishers))
	tracking := make([]int64, len(ds.Publishers))
	if ds.PushdownEnabled() {
		// Rows land in publisher order, so the Publisher column is run
		// heavy: tally tracking rows per run and derive the clean count
		// arithmetically from the run length.
		ds.ScanCols(Cols(ColPublisher), func(_ int, pc *ProjChunk) {
			cls := pc.Class
			row := 0
			for _, r := range pc.Runs(ColPublisher) {
				end := row + r.Len
				var t int64
				for i := row; i < end; i++ {
					if cls[i].IsTracking() {
						t++
					}
				}
				tracking[r.Value] += t
				clean[r.Value] += int64(r.Len) - t
				row = end
			}
		})
	} else {
		ds.Scan(func(_ int, c *Chunk) {
			for i, cls := range c.Class {
				if cls.IsTracking() {
					tracking[c.Publisher[i]]++
				} else {
					clean[c.Publisher[i]]++
				}
			}
		})
	}
	out := make([]SiteCounts, 0, len(ds.Publishers))
	for i, p := range ds.Publishers {
		if clean[i]+tracking[i] == 0 {
			continue
		}
		out = append(out, SiteCounts{Domain: p.Domain, Clean: clean[i], Tracking: tracking[i]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// TLDSplit is one bar of Fig 3: a tracking eTLD+1 with its request counts
// split by detection method.
type TLDSplit struct {
	TLD  string
	ABP  int64
	Semi int64
}

// Total returns the combined request count.
func (t TLDSplit) Total() int64 { return t.ABP + t.Semi }

// TopTrackingTLDs returns the n busiest tracking eTLD+1s with their
// ABP-vs-semi split (Fig 3). Ties break lexicographically.
func TopTrackingTLDs(ds *Dataset, n int) []TLDSplit {
	abp := make(map[string]int64)
	semi := make(map[string]int64)
	// tldOf caches the per-FQDN eTLD+1 so the scan does one suffix parse
	// per hostname, not per row.
	tldOf := make(map[uint32]string)
	addRow := func(cls Class, fqdn uint32) {
		tld, ok := tldOf[fqdn]
		if !ok {
			tld = webgraph.ETLDPlusOne(ds.FQDNs.Str(fqdn))
			tldOf[fqdn] = tld
		}
		if cls == ClassABP {
			abp[tld]++
		} else {
			semi[tld]++
		}
	}
	if ds.PushdownEnabled() {
		ds.ScanCols(Cols(ColFQDN), func(_ int, pc *ProjChunk) {
			cls := pc.Class
			if !AnyTracking(cls) {
				return
			}
			fqdns := pc.Wide(ColFQDN)
			for i, c := range cls {
				if c.IsTracking() {
					addRow(c, uint32(fqdns[i]))
				}
			}
		})
	} else {
		ds.Scan(func(_ int, c *Chunk) {
			for i, cls := range c.Class {
				if cls.IsTracking() {
					addRow(cls, c.FQDN[i])
				}
			}
		})
	}
	seen := make(map[string]struct{}, len(abp)+len(semi))
	var out []TLDSplit
	for tld := range abp {
		seen[tld] = struct{}{}
	}
	for tld := range semi {
		seen[tld] = struct{}{}
	}
	for tld := range seen {
		out = append(out, TLDSplit{TLD: tld, ABP: abp[tld], Semi: semi[tld]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total() != out[j].Total() {
			return out[i].Total() > out[j].Total()
		}
		return out[i].TLD < out[j].TLD
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Accuracy scores the classifier against the generator's ground truth.
type Accuracy struct {
	TruePositives  int64
	FalsePositives int64
	TrueNegatives  int64
	FalseNegatives int64
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (a Accuracy) Precision() float64 {
	if a.TruePositives+a.FalsePositives == 0 {
		return 0
	}
	return float64(a.TruePositives) / float64(a.TruePositives+a.FalsePositives)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (a Accuracy) Recall() float64 {
	if a.TruePositives+a.FalseNegatives == 0 {
		return 0
	}
	return float64(a.TruePositives) / float64(a.TruePositives+a.FalseNegatives)
}

// Score compares the final classification with ground truth.
func Score(ds *Dataset) Accuracy {
	var a Accuracy
	score := func(cls Class, flags uint8) {
		truth := flags&FlagTruthing != 0
		switch {
		case cls.IsTracking() && truth:
			a.TruePositives++
		case cls.IsTracking() && !truth:
			a.FalsePositives++
		case !cls.IsTracking() && truth:
			a.FalseNegatives++
		default:
			a.TrueNegatives++
		}
	}
	if ds.PushdownEnabled() {
		ds.ScanCols(Cols(ColFlags), func(_ int, pc *ProjChunk) {
			flags := pc.Wide(ColFlags)
			for i, cls := range pc.Class {
				score(cls, uint8(flags[i]))
			}
		})
	} else {
		ds.Scan(func(_ int, c *Chunk) {
			for i, cls := range c.Class {
				score(cls, c.Flags[i])
			}
		})
	}
	return a
}

// DatasetStats reproduces Table 1's dataset summary.
type DatasetStats struct {
	Users            int
	FirstPartySites  int
	FirstPartyVisits int
	ThirdPartyFQDNs  int
	ThirdPartyReqs   int64
}

// ComputeStats summarizes the dataset.
func ComputeStats(ds *Dataset) DatasetStats {
	users := make(map[int32]struct{})
	fqdns := make(map[uint32]struct{})
	if ds.PushdownEnabled() {
		// Distinct counting never needs row order: a chunk's dictionary IS
		// its distinct value set, and an RLE column collapses to one set
		// insert per run. Either way the per-row loop disappears.
		distinct := func(pc *ProjChunk, c ColID, f func(uint64)) {
			if dict, _, ok := pc.DictView(c); ok {
				for _, v := range dict {
					f(v)
				}
				return
			}
			for _, r := range pc.Runs(c) {
				f(r.Value)
			}
		}
		ds.ScanCols(Cols(ColUser, ColFQDN), func(_ int, pc *ProjChunk) {
			distinct(pc, ColUser, func(v uint64) { users[int32(v)] = struct{}{} })
			distinct(pc, ColFQDN, func(v uint64) { fqdns[uint32(v)] = struct{}{} })
		})
	} else {
		ds.Scan(func(_ int, c *Chunk) {
			for i := range c.User {
				users[c.User[i]] = struct{}{}
				fqdns[c.FQDN[i]] = struct{}{}
			}
		})
	}
	return DatasetStats{
		Users:            len(users),
		FirstPartySites:  len(ds.Publishers),
		FirstPartyVisits: ds.Visits,
		ThirdPartyFQDNs:  len(fqdns),
		ThirdPartyReqs:   int64(ds.Len()),
	}
}
