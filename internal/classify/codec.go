package classify

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"slices"
	"sort"
	"sync"

	"crossborder/internal/netsim"
)

// This file implements the per-chunk column codec behind the
// compressed spill store and the compressed-resident MemStore mode.
// One encoded block holds the nine spilled columns of one chunk
// (Class stays resident — the semi-stage fixpoint mutates it after
// sealing), each column independently encoded with whichever scheme
// is smallest for its actual contents:
//
//   - raw        fixed-width little-endian (the PR 3 layout)
//   - rle        (run length, value) pairs — the Publisher/User/Day/
//                Country columns are long runs because the merge emits
//                rows in user then visit order
//   - delta      zigzag deltas, uvarint-coded — monotone id columns
//   - dict       sorted distinct values (delta-uvarint) + bit-packed
//                indices — the interned-id and IP columns have a few
//                hundred distinct values per 16Ki-row chunk
//   - dict+huff  same dictionary with canonical-Huffman-coded indices
//                — the id distributions are Zipf-skewed, so entropy
//                coding beats fixed-width packing
//
// and any scheme's payload may additionally be wrapped in the LZ4-style
// block compressor from lz4.go when that shrinks it further (templated
// RTB cascades repeat multi-byte patterns that per-value schemes miss).
//
// Block frame (what SpillSink writes per chunk and the compressed
// MemStore keeps resident):
//
//	[4B crc32c over the rest] [1B format flags] [uvarint row count]
//	9 × ( [1B tag] [uvarint payload length] [payload] )
//	optional sections (format flag 0x01):
//	N × ( [1B section tag] [uvarint payload length] [payload] )
//
// Sections are version-tolerant: a reader skips section tags it does
// not know (tag 0 is reserved invalid, so trailing garbage cannot
// masquerade as a section), so frames can grow new metadata without
// breaking old readers, and flags==0 blocks from before sections
// existed decode exactly as they always did. The only section today is the zone map
// (per-column min/max + distinct count + seal-time class bitmap) the
// projection scan path uses to skip chunks without decoding them.
//
// The decoder is hardened: the checksum is verified first, every
// declared length is validated against caps derived from the
// caller-supplied row count before any allocation, dictionary indices
// are range-checked, and Huffman code-length tables must form an
// exactly complete code. Forged input errors out; it cannot panic or
// over-allocate (FuzzDecodeChunk).

// Column encoding schemes (low 7 bits of the column tag).
const (
	colRaw      = 0
	colRLE      = 1
	colDelta    = 2
	colDict     = 3
	colDictHuff = 4

	// colLZ4 marks the payload as LZ4-wrapped: [uvarint inner length]
	// [lz4 stream], with the inner stream encoded per the scheme bits.
	colLZ4 = 0x80
)

// numSchemes is the number of base column encoding schemes
// (colRaw..colDictHuff), the index space of EncBreakdown.
const numSchemes = 5

// Format-flag bits of the frame's fifth byte.
const (
	// frameHasSections marks that tagged sections follow the nine
	// columns. Readers skip sections whose tag they do not know.
	frameHasSections = 0x01
)

// Section tags.
const (
	secZoneMap = 1
)

// numCols is the number of spilled columns; colWidths their natural
// byte widths, in encode order (URLHash, IP, FQDN, RefFQDN, Publisher,
// User, Day, Country, Flags).
const numCols = 9

var colWidths = [numCols]int{8, 4, 4, 4, 4, 4, 2, 1, 1}

// maxFuzzRows caps the declared row count when the caller does not
// know it (DecodeBlock with wantRows < 0, i.e. the fuzzer); stores
// always pass their exact per-chunk row count.
const maxFuzzRows = 1 << 16

// Huffman limits: alphabets larger than huffMaxAlphabet fall back to
// bit-packing (the code-length table would cost more than it saves),
// and code lengths are capped so the decoder's accumulator math stays
// trivially safe.
const (
	huffMaxAlphabet = 1 << 14
	huffMaxLen      = 27
	huffTableBits   = 11
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var errCorrupt = errors.New("classify: corrupt chunk block")

// ZoneMap is the per-chunk pruning metadata computed while a chunk is
// encoded and persisted as a frame section: per-column min/max and
// distinct count, plus the bitmap of Class values present at seal time.
// Min/max over the immutable spilled columns are always authoritative;
// ClassBits is only a seal-time observation — the semi-stage fixpoint
// mutates the resident class column after sealing (Clean rows can
// become Semi*), so skip decisions about classes must consult the
// resident Store.Classes slice, not this bitmap.
type ZoneMap struct {
	Min      [numCols]uint64
	Max      [numCols]uint64
	Distinct [numCols]uint32 // 0 = not computed (raw/uncompressed encode)
	ClassBits uint8
}

// appendZoneSection emits the zone map as a tagged frame section.
func appendZoneSection(dst []byte, zm *ZoneMap) []byte {
	dst = append(dst, secZoneMap)
	// Payload staged separately so the section length prefix is exact.
	var pay [16 + numCols*(10+10+5)]byte
	p := pay[:0]
	for col := 0; col < numCols; col++ {
		p = binary.AppendUvarint(p, zm.Min[col])
		p = binary.AppendUvarint(p, zm.Max[col]-zm.Min[col])
		p = binary.AppendUvarint(p, uint64(zm.Distinct[col]))
	}
	p = append(p, zm.ClassBits)
	dst = binary.AppendUvarint(dst, uint64(len(p)))
	return append(dst, p...)
}

// parseZoneSection decodes a zone-map section payload. Malformed
// payloads (truncated streams, max < min overflow, out-of-width values)
// return an error so a forged section cannot plant a zone map that
// would prune live chunks.
func parseZoneSection(payload []byte, rows int, zm *ZoneMap) error {
	for col := 0; col < numCols; col++ {
		var maxVal uint64 = 1<<(8*uint(colWidths[col])) - 1
		if colWidths[col] == 8 {
			maxVal = ^uint64(0)
		}
		mn, k := binary.Uvarint(payload)
		if k <= 0 {
			return fmt.Errorf("%w: truncated zone map", errCorrupt)
		}
		payload = payload[k:]
		span, k := binary.Uvarint(payload)
		if k <= 0 {
			return fmt.Errorf("%w: truncated zone map", errCorrupt)
		}
		payload = payload[k:]
		mx := mn + span
		if mx < mn || mn > maxVal || mx > maxVal {
			return fmt.Errorf("%w: zone range overflows column %d", errCorrupt, col)
		}
		d64, k := binary.Uvarint(payload)
		if k <= 0 || d64 > uint64(rows) {
			return fmt.Errorf("%w: bad zone distinct count", errCorrupt)
		}
		payload = payload[k:]
		zm.Min[col], zm.Max[col], zm.Distinct[col] = mn, mx, uint32(d64)
	}
	if len(payload) != 1 {
		return fmt.Errorf("%w: bad zone-map payload size", errCorrupt)
	}
	zm.ClassBits = payload[0]
	return nil
}

// BlockZoneMap extracts the zone-map section from a framed block
// without decoding any column payload: it verifies the checksum, walks
// the nine column headers, and parses the section if present. It
// returns nil for legacy flags==0 blocks (checkpoints written before
// zone maps existed) and an error only for corrupt frames.
func BlockZoneMap(block []byte) (*ZoneMap, error) {
	_, _, _, zm, _, err := inspectBlock(block)
	return zm, err
}

// inspectBlock walks a framed block's headers without decoding column
// payloads, returning the row count, per-column tags and framed sizes
// (tag byte + length prefix + payload), the parsed zone map (nil if the
// frame has none), and the byte size of the zone-map section.
func inspectBlock(block []byte) (rows int, tags [numCols]byte, sizes [numCols]int, zm *ZoneMap, zoneBytes int, err error) {
	if len(block) < 6 {
		return 0, tags, sizes, nil, 0, fmt.Errorf("%w: %d-byte block", errCorrupt, len(block))
	}
	if got, want := crc32.Checksum(block[4:], castagnoli), binary.LittleEndian.Uint32(block); got != want {
		return 0, tags, sizes, nil, 0, fmt.Errorf("%w: checksum mismatch (%08x != %08x)", errCorrupt, got, want)
	}
	flags := block[4]
	if flags&^byte(frameHasSections) != 0 {
		return 0, tags, sizes, nil, 0, fmt.Errorf("%w: unknown format flags 0x%02x", errCorrupt, flags)
	}
	rest := block[5:]
	rows64, k := binary.Uvarint(rest)
	if k <= 0 || rows64 > maxFuzzRows {
		return 0, tags, sizes, nil, 0, fmt.Errorf("%w: bad row count", errCorrupt)
	}
	rest = rest[k:]
	rows = int(rows64)
	for col := 0; col < numCols; col++ {
		if len(rest) < 1 {
			return 0, tags, sizes, nil, 0, fmt.Errorf("%w: truncated at column %d", errCorrupt, col)
		}
		tags[col] = rest[0]
		plen64, k := binary.Uvarint(rest[1:])
		if k <= 0 || plen64 > uint64(len(rest)-1-k) {
			return 0, tags, sizes, nil, 0, fmt.Errorf("%w: bad payload length for column %d", errCorrupt, col)
		}
		sizes[col] = 1 + k + int(plen64)
		rest = rest[sizes[col]:]
	}
	if flags&frameHasSections == 0 {
		if len(rest) != 0 {
			return 0, tags, sizes, nil, 0, fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(rest))
		}
		return rows, tags, sizes, nil, 0, nil
	}
	for len(rest) > 0 {
		tag := rest[0]
		if tag == 0 {
			return 0, tags, sizes, nil, 0, fmt.Errorf("%w: reserved section tag", errCorrupt)
		}
		plen64, k := binary.Uvarint(rest[1:])
		if k <= 0 || plen64 > uint64(len(rest)-1-k) {
			return 0, tags, sizes, nil, 0, fmt.Errorf("%w: bad section length", errCorrupt)
		}
		payload := rest[1+k : 1+k+int(plen64)]
		rest = rest[1+k+int(plen64):]
		if tag != secZoneMap {
			continue // unknown section: skip (forward compatibility)
		}
		z := new(ZoneMap)
		if err := parseZoneSection(payload, rows, z); err != nil {
			return 0, tags, sizes, nil, 0, err
		}
		zm, zoneBytes = z, 1+k+int(plen64)
	}
	return rows, tags, sizes, zm, zoneBytes, nil
}

// ChunkCodec holds the reusable scratch of the chunk codec: staging
// buffers, dictionary and Huffman tables, and the LZ4 hash chain. It
// is not safe for concurrent use; each worker borrows one (they are
// sync.Pool-backed via GetCodec/PutCodec, and a Chunk decode buffer
// lazily attaches one so per-worker scan loops reuse a single codec
// across all their chunk loads).
type ChunkCodec struct {
	vals   []uint64 // staged column values
	dict   []uint64 // sorted distinct values
	idx    []uint32 // per-row dictionary indices
	freq   []uint32 // per-dictionary-index frequencies
	lens   []uint8  // Huffman code length per symbol
	codes  []uint32 // Huffman code per symbol
	winner []byte   // winning candidate payload staging
	cand   []byte   // candidate payload staging
	rawCol []byte   // raw column bytes (LZ4 input)
	lz     []byte   // LZ4 output staging
	inner  []byte   // LZ4-unwrapped payload (decode)
	htab   []int32  // LZ4 hash heads
	chain  []int32  // LZ4 hash chains

	// Huffman build scratch.
	hOrd  []int32
	hPar  []int32
	hFreq []uint64

	// Canonical Huffman decode state.
	dTable  []uint32 // primary lookup: sym<<8 | len (len 0 = long code)
	dCount  [huffMaxLen + 1]uint32
	dFirst  [huffMaxLen + 1]uint32
	dOffset [huffMaxLen + 1]uint32
	dRank   []uint32 // symbols ordered by (length, symbol)

	// Statistics of the most recent EncodeBlock call: the zone map and
	// the winning tag + framed size per column plus the zone-map
	// section size. Stores fold them into their Footprint breakdown and
	// retain the zone map resident for the projection scan path.
	encZone      ZoneMap
	encTags      [numCols]byte
	encSizes     [numCols]int
	encZoneBytes int

	// noSections forces the legacy flags==0 frame without the zone-map
	// section; tests use it to prove old blocks still decode.
	noSections bool
}

// EncodedZone returns a copy of the zone map computed by the most
// recent EncodeBlock call.
func (cc *ChunkCodec) EncodedZone() ZoneMap { return cc.encZone }

// EncodedColStats returns the winning tag and framed byte size of each
// column plus the zone-map section size from the most recent
// EncodeBlock call.
func (cc *ChunkCodec) EncodedColStats() (tags [numCols]byte, sizes [numCols]int, zoneBytes int) {
	return cc.encTags, cc.encSizes, cc.encZoneBytes
}

var codecPool = sync.Pool{New: func() any { return new(ChunkCodec) }}

// GetCodec borrows a codec from the pool.
func GetCodec() *ChunkCodec { return codecPool.Get().(*ChunkCodec) }

// PutCodec returns a codec to the pool.
func PutCodec(cc *ChunkCodec) { codecPool.Put(cc) }

// codec returns the chunk buffer's attached codec, borrowing one on
// first use. Scan loops that reuse one Chunk buffer per worker thereby
// reuse one codec across every chunk they load.
func (c *Chunk) codec() *ChunkCodec {
	if c.cc == nil {
		c.cc = GetCodec()
	}
	return c.cc
}

// DecodeBlockInto decodes a framed codec block into buf through buf's
// attached codec scratch. It is the entry point for stores outside
// this package that hold codec blocks (the live collector's epoch
// snapshots share the compressed MemStore's sealed blocks).
func DecodeBlockInto(block []byte, rows int, buf *Chunk) error {
	return buf.codec().DecodeBlock(block, rows, buf)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func zigzag(d uint64) uint64 {
	return uint64(int64(d)<<1) ^ uint64(int64(d)>>63)
}

func unzigzag(z uint64) uint64 {
	return (z >> 1) ^ uint64(-int64(z&1))
}

// stage gathers column col of c into cc.vals.
func (cc *ChunkCodec) stage(c *Chunk, col int) {
	n := c.Len()
	if cap(cc.vals) < n {
		cc.vals = make([]uint64, n)
	}
	vals := cc.vals[:n]
	switch col {
	case 0:
		copy(vals, c.URLHash)
	case 1:
		for i, v := range c.IP {
			vals[i] = uint64(uint32(v))
		}
	case 2:
		for i, v := range c.FQDN {
			vals[i] = uint64(v)
		}
	case 3:
		for i, v := range c.RefFQDN {
			vals[i] = uint64(v)
		}
	case 4:
		for i, v := range c.Publisher {
			vals[i] = uint64(uint32(v))
		}
	case 5:
		for i, v := range c.User {
			vals[i] = uint64(uint32(v))
		}
	case 6:
		for i, v := range c.Day {
			vals[i] = uint64(v)
		}
	case 7:
		for i, v := range c.Country {
			vals[i] = uint64(v)
		}
	case 8:
		for i, v := range c.Flags {
			vals[i] = uint64(v)
		}
	}
	cc.vals = vals
}

// scatter writes decoded values back into column col of buf, whose
// columns reset already sized to n.
func scatter(buf *Chunk, col int, vals []uint64) {
	switch col {
	case 0:
		copy(buf.URLHash, vals)
	case 1:
		for i, v := range vals {
			buf.IP[i] = netsim.IP(uint32(v))
		}
	case 2:
		for i, v := range vals {
			buf.FQDN[i] = uint32(v)
		}
	case 3:
		for i, v := range vals {
			buf.RefFQDN[i] = uint32(v)
		}
	case 4:
		for i, v := range vals {
			buf.Publisher[i] = int32(uint32(v))
		}
	case 5:
		for i, v := range vals {
			buf.User[i] = int32(uint32(v))
		}
	case 6:
		for i, v := range vals {
			buf.Day[i] = uint16(v)
		}
	case 7:
		for i, v := range vals {
			buf.Country[i] = uint8(v)
		}
	case 8:
		for i, v := range vals {
			buf.Flags[i] = uint8(v)
		}
	}
}

// appendRawVals emits the staged values fixed-width little-endian.
func appendRawVals(dst []byte, vals []uint64, width int) []byte {
	switch width {
	case 8:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	case 4:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	case 2:
		for _, v := range vals {
			dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
		}
	default:
		for _, v := range vals {
			dst = append(dst, byte(v))
		}
	}
	return dst
}

// EncodeBlock appends the framed, encoded form of the chunk's nine
// spilled columns to dst and returns the extended slice. With compress
// false every column is stored raw (the byte-transparent layout, still
// framed and checksummed); with compress true each column gets the
// smallest applicable encoding.
func (cc *ChunkCodec) EncodeBlock(c *Chunk, compress bool, dst []byte) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	flags := byte(frameHasSections)
	if cc.noSections {
		flags = 0
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(c.Len()))
	cc.encZone = ZoneMap{}
	for col := 0; col < numCols; col++ {
		cc.stage(c, col)
		for i, v := range cc.vals {
			if i == 0 || v < cc.encZone.Min[col] {
				cc.encZone.Min[col] = v
			}
			if i == 0 || v > cc.encZone.Max[col] {
				cc.encZone.Max[col] = v
			}
		}
		before := len(dst)
		dst = cc.encodeColumn(dst, col, compress)
		cc.encTags[col] = dst[before]
		cc.encSizes[col] = len(dst) - before
	}
	for _, cl := range c.Class {
		cc.encZone.ClassBits |= 1 << cl
	}
	cc.encZoneBytes = 0
	if flags&frameHasSections != 0 {
		before := len(dst)
		dst = appendZoneSection(dst, &cc.encZone)
		cc.encZoneBytes = len(dst) - before
	}
	binary.LittleEndian.PutUint32(dst[start:], crc32.Checksum(dst[start+4:], castagnoli))
	return dst
}

// encodeColumn appends [tag][uvarint len][payload] for the staged
// column, choosing the smallest candidate encoding.
func (cc *ChunkCodec) encodeColumn(dst []byte, col int, compress bool) []byte {
	width := colWidths[col]
	vals := cc.vals
	n := len(vals)
	rawSize := n * width
	if !compress || n == 0 {
		dst = append(dst, colRaw)
		dst = binary.AppendUvarint(dst, uint64(rawSize))
		return appendRawVals(dst, vals, width)
	}

	// Candidate sizes, computed exactly without materializing.
	rleSize := 0
	for i := 0; i < n; {
		j := i + 1
		for j < n && vals[j] == vals[i] {
			j++
		}
		rleSize += uvarintLen(uint64(j-i)) + uvarintLen(vals[i])
		i = j
	}
	deltaSize := uvarintLen(zigzag(vals[0]))
	for i := 1; i < n; i++ {
		deltaSize += uvarintLen(zigzag(vals[i] - vals[i-1]))
	}

	// Dictionary: sorted distinct values, stored as uvarint deltas.
	cc.dict = append(cc.dict[:0], vals...)
	slices.Sort(cc.dict)
	d := 0
	for i, v := range cc.dict {
		if i == 0 || v != cc.dict[d-1] {
			cc.dict[d] = v
			d++
		}
	}
	cc.dict = cc.dict[:d]
	cc.encZone.Distinct[col] = uint32(d)
	dictSize := uvarintLen(uint64(d)) + uvarintLen(cc.dict[0])
	for i := 1; i < d; i++ {
		dictSize += uvarintLen(cc.dict[i] - cc.dict[i-1])
	}
	packBits := bitsFor(d)
	packSize := dictSize + (n*packBits+7)/8

	// Per-row indices and frequencies (needed by both dict schemes).
	if cap(cc.idx) < n {
		cc.idx = make([]uint32, n)
	}
	cc.idx = cc.idx[:n]
	if cap(cc.freq) < d {
		cc.freq = make([]uint32, d)
	}
	cc.freq = cc.freq[:d]
	for i := range cc.freq {
		cc.freq[i] = 0
	}
	for i, v := range vals {
		k, _ := slices.BinarySearch(cc.dict, v)
		cc.idx[i] = uint32(k)
		cc.freq[k]++
	}

	huffSize := -1
	if d >= 2 && d <= huffMaxAlphabet {
		cc.buildHuffLens()
		bits := 0
		for s, f := range cc.freq {
			bits += int(f) * int(cc.lens[s])
		}
		huffSize = dictSize + d + (bits+7)/8
	}

	// Pick the smallest scheme and materialize it.
	tag, best := byte(colRaw), rawSize
	if rleSize < best {
		tag, best = colRLE, rleSize
	}
	if deltaSize < best {
		tag, best = colDelta, deltaSize
	}
	if packSize < best {
		tag, best = colDict, packSize
	}
	if huffSize >= 0 && huffSize < best {
		tag, best = colDictHuff, huffSize
	}
	cc.winner = cc.winner[:0]
	switch tag {
	case colRaw:
		cc.winner = appendRawVals(cc.winner, vals, width)
	case colRLE:
		for i := 0; i < n; {
			j := i + 1
			for j < n && vals[j] == vals[i] {
				j++
			}
			cc.winner = binary.AppendUvarint(cc.winner, uint64(j-i))
			cc.winner = binary.AppendUvarint(cc.winner, vals[i])
			i = j
		}
	case colDelta:
		cc.winner = binary.AppendUvarint(cc.winner, zigzag(vals[0]))
		for i := 1; i < n; i++ {
			cc.winner = binary.AppendUvarint(cc.winner, zigzag(vals[i]-vals[i-1]))
		}
	case colDict:
		cc.winner = cc.appendDict(cc.winner)
		var acc uint64
		var nb uint
		for _, k := range cc.idx {
			acc |= uint64(k) << nb
			nb += uint(packBits)
			for nb >= 8 {
				cc.winner = append(cc.winner, byte(acc))
				acc >>= 8
				nb -= 8
			}
		}
		if nb > 0 {
			cc.winner = append(cc.winner, byte(acc))
		}
	case colDictHuff:
		cc.winner = cc.appendDict(cc.winner)
		cc.winner = append(cc.winner, cc.lens...)
		cc.buildCanonicalCodes()
		var acc uint64
		var nb uint
		for _, k := range cc.idx {
			l := uint(cc.lens[k])
			acc = acc<<l | uint64(cc.codes[k])
			nb += l
			for nb >= 8 {
				cc.winner = append(cc.winner, byte(acc>>(nb-8)))
				nb -= 8
			}
		}
		if nb > 0 {
			cc.winner = append(cc.winner, byte(acc<<(8-nb)))
		}
	}

	// LZ4 pass: try wrapping the winner, and independently the raw
	// bytes — a column whose dictionary barely beats raw (near-unique
	// hashes) can still hold byte-level repeats LZ4 finds. The raw
	// attempt is skipped once the per-value winner already compresses
	// below half of raw: LZ4's token stream cannot reach that density
	// on fixed-width input, so the pass would be pure encode cost.
	if cap(cc.htab) < lzHashLen {
		cc.htab = make([]int32, lzHashLen)
	}
	bestTag, bestPayload := tag, cc.winner
	if len(cc.chain) < len(cc.winner) {
		cc.chain = make([]int32, len(cc.winner)+rawSize)
	}
	cc.lz = binary.AppendUvarint(cc.lz[:0], uint64(len(cc.winner)))
	if lz := lzCompress(cc.winner, cc.lz, cc.htab, cc.chain); lz != nil && len(lz) < len(bestPayload) {
		cc.lz = lz
		bestTag, bestPayload = tag|colLZ4, lz
	}
	if tag != colRaw && 2*len(bestPayload) > rawSize {
		cc.rawCol = appendRawVals(cc.rawCol[:0], vals, width)
		if len(cc.chain) < rawSize {
			cc.chain = make([]int32, rawSize)
		}
		cc.cand = binary.AppendUvarint(cc.cand[:0], uint64(rawSize))
		if lz := lzCompress(cc.rawCol, cc.cand, cc.htab, cc.chain); lz != nil && len(lz) < len(bestPayload) {
			cc.cand = lz
			bestTag, bestPayload = colRaw|colLZ4, lz
		}
	}

	dst = append(dst, bestTag)
	dst = binary.AppendUvarint(dst, uint64(len(bestPayload)))
	return append(dst, bestPayload...)
}

// appendDict emits [uvarint ndict][sorted values as uvarint deltas].
func (cc *ChunkCodec) appendDict(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cc.dict)))
	dst = binary.AppendUvarint(dst, cc.dict[0])
	for i := 1; i < len(cc.dict); i++ {
		dst = binary.AppendUvarint(dst, cc.dict[i]-cc.dict[i-1])
	}
	return dst
}

// bitsFor returns the index width for an n-entry dictionary (0 for a
// constant column).
func bitsFor(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// DecodeBlock decodes a framed block into buf's nine wide columns
// (Class is left untouched; the store patches in its resident class
// slice). wantRows >= 0 requires the block to declare exactly that row
// count; wantRows < 0 accepts up to maxFuzzRows. All declared lengths
// are validated against row-count-derived caps before anything is
// allocated, so corrupt or forged blocks return an error instead of
// panicking or ballooning memory.
func (cc *ChunkCodec) DecodeBlock(block []byte, wantRows int, buf *Chunk) error {
	if len(block) < 6 {
		return fmt.Errorf("%w: %d-byte block", errCorrupt, len(block))
	}
	if got, want := crc32.Checksum(block[4:], castagnoli), binary.LittleEndian.Uint32(block); got != want {
		return fmt.Errorf("%w: checksum mismatch (%08x != %08x)", errCorrupt, got, want)
	}
	flags := block[4]
	if flags&^byte(frameHasSections) != 0 {
		return fmt.Errorf("%w: unknown format flags 0x%02x", errCorrupt, flags)
	}
	rest := block[5:]
	rows64, k := binary.Uvarint(rest)
	if k <= 0 {
		return fmt.Errorf("%w: bad row count", errCorrupt)
	}
	rest = rest[k:]
	n := int(rows64)
	if wantRows >= 0 {
		if n != wantRows {
			return fmt.Errorf("%w: block declares %d rows, store expects %d", errCorrupt, n, wantRows)
		}
	} else if rows64 > maxFuzzRows || n == 0 {
		return fmt.Errorf("%w: implausible row count %d", errCorrupt, rows64)
	}
	buf.reset(n)
	if cap(cc.vals) < n {
		cc.vals = make([]uint64, n)
	}
	cc.vals = cc.vals[:n]
	for col := 0; col < numCols; col++ {
		if len(rest) < 1 {
			return fmt.Errorf("%w: truncated at column %d", errCorrupt, col)
		}
		tag := rest[0]
		plen64, k := binary.Uvarint(rest[1:])
		if k <= 0 || plen64 > uint64(len(rest)-1-k) {
			return fmt.Errorf("%w: bad payload length for column %d", errCorrupt, col)
		}
		payload := rest[1+k : 1+k+int(plen64)]
		rest = rest[1+k+int(plen64):]
		if err := cc.decodeColumn(payload, tag, n, colWidths[col]); err != nil {
			return fmt.Errorf("column %d: %w", col, err)
		}
		scatter(buf, col, cc.vals)
	}
	if flags&frameHasSections != 0 {
		// Tagged sections follow; validate framing but skip the
		// contents (the wide decode needs none of them, and unknown
		// tags are forward compatibility by design). Tag 0 is reserved
		// invalid so trailing garbage cannot masquerade as a section.
		for len(rest) > 0 {
			if rest[0] == 0 {
				return fmt.Errorf("%w: reserved section tag", errCorrupt)
			}
			plen64, k := binary.Uvarint(rest[1:])
			if k <= 0 || plen64 > uint64(len(rest)-1-k) {
				return fmt.Errorf("%w: bad section length", errCorrupt)
			}
			rest = rest[1+k+int(plen64):]
		}
	}
	if len(rest) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", errCorrupt, len(rest))
	}
	return nil
}

// decodeColumn fills cc.vals[:n] from one column payload.
func (cc *ChunkCodec) decodeColumn(payload []byte, tag byte, n, width int) error {
	if tag&colLZ4 != 0 {
		innerLen, k := binary.Uvarint(payload)
		if k <= 0 || innerLen > uint64(n*width+64) {
			return fmt.Errorf("%w: bad lz4 inner length", errCorrupt)
		}
		if cap(cc.inner) < int(innerLen) {
			cc.inner = make([]byte, innerLen)
		}
		cc.inner = cc.inner[:innerLen]
		if err := lzDecompress(payload[k:], cc.inner); err != nil {
			return err
		}
		payload = cc.inner
		tag &^= colLZ4
	}
	var maxVal uint64 = 1<<(8*uint(width)) - 1
	if width == 8 {
		maxVal = ^uint64(0)
	}
	vals := cc.vals[:n]
	switch tag {
	case colRaw:
		if len(payload) != n*width {
			return fmt.Errorf("%w: raw column is %d bytes, want %d", errCorrupt, len(payload), n*width)
		}
		switch width {
		case 8:
			for i := range vals {
				vals[i] = binary.LittleEndian.Uint64(payload[i*8:])
			}
		case 4:
			for i := range vals {
				vals[i] = uint64(binary.LittleEndian.Uint32(payload[i*4:]))
			}
		case 2:
			for i := range vals {
				vals[i] = uint64(binary.LittleEndian.Uint16(payload[i*2:]))
			}
		default:
			for i := range vals {
				vals[i] = uint64(payload[i])
			}
		}
	case colRLE:
		i := 0
		for i < n {
			run, k := binary.Uvarint(payload)
			if k <= 0 || run == 0 || run > uint64(n-i) {
				return fmt.Errorf("%w: bad rle run", errCorrupt)
			}
			payload = payload[k:]
			v, k := binary.Uvarint(payload)
			if k <= 0 || v > maxVal {
				return fmt.Errorf("%w: bad rle value", errCorrupt)
			}
			payload = payload[k:]
			for j := 0; j < int(run); j++ {
				vals[i+j] = v
			}
			i += int(run)
		}
		if len(payload) != 0 {
			return fmt.Errorf("%w: trailing rle bytes", errCorrupt)
		}
	case colDelta:
		var prev uint64
		for i := range vals {
			z, k := binary.Uvarint(payload)
			if k <= 0 {
				return fmt.Errorf("%w: truncated delta stream", errCorrupt)
			}
			payload = payload[k:]
			prev += unzigzag(z)
			if prev > maxVal {
				return fmt.Errorf("%w: delta value overflows column width", errCorrupt)
			}
			vals[i] = prev
		}
		if len(payload) != 0 {
			return fmt.Errorf("%w: trailing delta bytes", errCorrupt)
		}
	case colDict, colDictHuff:
		var err error
		if payload, err = cc.readDict(payload, n, maxVal); err != nil {
			return err
		}
		d := len(cc.dict)
		if tag == colDict {
			bits := bitsFor(d)
			if need := (n*bits + 7) / 8; len(payload) != need {
				return fmt.Errorf("%w: packed indices are %d bytes, want %d", errCorrupt, len(payload), need)
			}
			var acc uint64
			var nb uint
			pi := 0
			mask := uint64(1)<<bits - 1
			for i := range vals {
				for nb < uint(bits) {
					acc |= uint64(payload[pi]) << nb
					pi++
					nb += 8
				}
				k := acc & mask
				acc >>= uint(bits)
				nb -= uint(bits)
				if k >= uint64(d) {
					return fmt.Errorf("%w: dictionary index out of range", errCorrupt)
				}
				vals[i] = cc.dict[k]
			}
		} else {
			if len(payload) < d {
				return fmt.Errorf("%w: truncated code lengths", errCorrupt)
			}
			if cap(cc.lens) < d {
				cc.lens = make([]uint8, d)
			}
			cc.lens = cc.lens[:d]
			copy(cc.lens, payload[:d])
			if err := cc.buildDecodeTables(); err != nil {
				return err
			}
			if err := cc.huffDecode(payload[d:], vals); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown column tag 0x%02x", errCorrupt, tag)
	}
	return nil
}

// readDict parses [uvarint ndict][delta-uvarint sorted values] into
// cc.dict, validating the count against the row count and every value
// against the column width before allocating.
func (cc *ChunkCodec) readDict(payload []byte, n int, maxVal uint64) ([]byte, error) {
	d64, k := binary.Uvarint(payload)
	if k <= 0 || d64 == 0 || d64 > uint64(n) || d64 > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: bad dictionary size", errCorrupt)
	}
	payload = payload[k:]
	d := int(d64)
	if cap(cc.dict) < d {
		cc.dict = make([]uint64, d)
	}
	cc.dict = cc.dict[:d]
	var prev uint64
	for i := 0; i < d; i++ {
		v, k := binary.Uvarint(payload)
		if k <= 0 {
			return nil, fmt.Errorf("%w: truncated dictionary", errCorrupt)
		}
		payload = payload[k:]
		if i > 0 {
			nv := prev + v
			if nv < prev {
				return nil, fmt.Errorf("%w: dictionary overflow", errCorrupt)
			}
			v = nv
		}
		if v > maxVal {
			return nil, fmt.Errorf("%w: dictionary value overflows column width", errCorrupt)
		}
		cc.dict[i] = v
		prev = v
	}
	return payload, nil
}

// buildHuffLens computes Huffman code lengths for cc.freq into
// cc.lens, capped at huffMaxLen, and returns the maximum length. The
// construction is deterministic: leaves sort by (frequency, symbol)
// and ties between the leaf and internal queues prefer the leaf.
func (cc *ChunkCodec) buildHuffLens() int {
	d := len(cc.freq)
	if cap(cc.lens) < d {
		cc.lens = make([]uint8, d)
	}
	cc.lens = cc.lens[:d]
	if cap(cc.hOrd) < d {
		cc.hOrd = make([]int32, d)
		cc.hPar = make([]int32, 2*d)
		cc.hFreq = make([]uint64, 2*d)
	}
	ord := cc.hOrd[:d]
	freqs := append([]uint32(nil), cc.freq...)
	for {
		for i := range ord {
			ord[i] = int32(i)
		}
		sort.Slice(ord, func(a, b int) bool {
			fa, fb := freqs[ord[a]], freqs[ord[b]]
			if fa != fb {
				return fa < fb
			}
			return ord[a] < ord[b]
		})
		nf := cc.hFreq[:2*d]
		par := cc.hPar[:2*d]
		for i, f := range freqs {
			nf[i] = uint64(f)
		}
		li, ni, produced := 0, d, d
		pick := func() int {
			if li < d && (ni >= produced || nf[ord[li]] <= nf[ni]) {
				li++
				return int(ord[li-1])
			}
			ni++
			return ni - 1
		}
		for produced < 2*d-1 {
			a, b := pick(), pick()
			nf[produced] = nf[a] + nf[b]
			par[a], par[b] = int32(produced), int32(produced)
			produced++
		}
		root := 2*d - 2
		depth := nf // reuse as depth storage
		depth[root] = 0
		maxLen := 0
		for node := root - 1; node >= 0; node-- {
			depth[node] = depth[par[node]] + 1
			if node < d {
				l := int(depth[node])
				cc.lens[node] = uint8(l)
				if l > maxLen {
					maxLen = l
				}
			}
		}
		if maxLen <= huffMaxLen {
			return maxLen
		}
		// Flatten the distribution and retry; converges in a few
		// rounds and only triggers on pathological skew.
		for i := range freqs {
			freqs[i] = freqs[i]/2 + 1
		}
	}
}

// buildCanonicalCodes assigns canonical codes from cc.lens into
// cc.codes (zlib convention: within a length, codes follow symbol
// order).
func (cc *ChunkCodec) buildCanonicalCodes() {
	d := len(cc.lens)
	if cap(cc.codes) < d {
		cc.codes = make([]uint32, d)
	}
	cc.codes = cc.codes[:d]
	var blCount [huffMaxLen + 1]uint32
	for _, l := range cc.lens {
		blCount[l]++
	}
	var nextCode [huffMaxLen + 1]uint32
	code := uint32(0)
	for bits := 1; bits <= huffMaxLen; bits++ {
		code = (code + blCount[bits-1]) << 1
		nextCode[bits] = code
	}
	for s, l := range cc.lens {
		if l > 0 {
			cc.codes[s] = nextCode[l]
			nextCode[l]++
		}
	}
}

// buildDecodeTables validates cc.lens as an exactly complete canonical
// code and builds the primary lookup table plus the per-length
// canonical arrays for long codes.
func (cc *ChunkCodec) buildDecodeTables() error {
	d := len(cc.lens)
	for i := range cc.dCount {
		cc.dCount[i] = 0
	}
	for _, l := range cc.lens {
		if l == 0 || l > huffMaxLen {
			return fmt.Errorf("%w: invalid code length %d", errCorrupt, l)
		}
		cc.dCount[l]++
	}
	// Kraft equality: the code must be exactly complete, or decode
	// would hit unreachable or ambiguous bit patterns.
	var kraft uint64
	for l := 1; l <= huffMaxLen; l++ {
		kraft += uint64(cc.dCount[l]) << (huffMaxLen - l)
	}
	if kraft != 1<<huffMaxLen {
		return fmt.Errorf("%w: incomplete huffman code", errCorrupt)
	}
	code := uint32(0)
	var rankBase uint32
	for l := 1; l <= huffMaxLen; l++ {
		code = (code + cc.dCount[l-1]) << 1
		cc.dFirst[l] = code
		cc.dOffset[l] = rankBase
		rankBase += cc.dCount[l]
	}
	if cap(cc.dRank) < d {
		cc.dRank = make([]uint32, d)
	}
	cc.dRank = cc.dRank[:d]
	var next [huffMaxLen + 1]uint32
	for l := 1; l <= huffMaxLen; l++ {
		next[l] = cc.dOffset[l]
	}
	for s, l := range cc.lens {
		cc.dRank[next[l]] = uint32(s)
		next[l]++
	}
	// Primary table for codes up to huffTableBits.
	if cc.dTable == nil {
		cc.dTable = make([]uint32, 1<<huffTableBits)
	}
	for i := range cc.dTable {
		cc.dTable[i] = 0
	}
	cc.buildCanonicalCodes()
	for s, l := range cc.lens {
		if int(l) > huffTableBits {
			continue
		}
		base := cc.codes[s] << (huffTableBits - uint(l))
		span := uint32(1) << (huffTableBits - uint(l))
		entry := uint32(s)<<8 | uint32(l)
		for j := uint32(0); j < span; j++ {
			cc.dTable[base+j] = entry
		}
	}
	return nil
}

// decodeColumnView decodes one column payload into v in its cheapest
// faithful form — the projection path's alternative to decodeColumn:
// RLE stays (value, run) pairs, dictionary schemes stay the sorted
// dictionary plus per-row index stream, raw and delta decode to wide
// values. Validation matches the wide decode; the outputs are backed
// by v's own arrays so several columns can be live at once.
func (cc *ChunkCodec) decodeColumnView(payload []byte, tag byte, n, width int, v *ColView) error {
	if tag&colLZ4 != 0 {
		innerLen, k := binary.Uvarint(payload)
		if k <= 0 || innerLen > uint64(n*width+64) {
			return fmt.Errorf("%w: bad lz4 inner length", errCorrupt)
		}
		if cap(cc.inner) < int(innerLen) {
			cc.inner = make([]byte, innerLen)
		}
		cc.inner = cc.inner[:innerLen]
		if err := lzDecompress(payload[k:], cc.inner); err != nil {
			return err
		}
		payload = cc.inner
		tag &^= colLZ4
	}
	var maxVal uint64 = 1<<(8*uint(width)) - 1
	if width == 8 {
		maxVal = ^uint64(0)
	}
	switch tag {
	case colRaw:
		if len(payload) != n*width {
			return fmt.Errorf("%w: raw column is %d bytes, want %d", errCorrupt, len(payload), n*width)
		}
		vals := v.wideBuf(n)
		switch width {
		case 8:
			for i := range vals {
				vals[i] = binary.LittleEndian.Uint64(payload[i*8:])
			}
		case 4:
			for i := range vals {
				vals[i] = uint64(binary.LittleEndian.Uint32(payload[i*4:]))
			}
		case 2:
			for i := range vals {
				vals[i] = uint64(binary.LittleEndian.Uint16(payload[i*2:]))
			}
		default:
			for i := range vals {
				vals[i] = uint64(payload[i])
			}
		}
		v.Form = ViewWide
	case colRLE:
		v.Runs = v.Runs[:0]
		i := 0
		for i < n {
			run, k := binary.Uvarint(payload)
			if k <= 0 || run == 0 || run > uint64(n-i) {
				return fmt.Errorf("%w: bad rle run", errCorrupt)
			}
			payload = payload[k:]
			val, k := binary.Uvarint(payload)
			if k <= 0 || val > maxVal {
				return fmt.Errorf("%w: bad rle value", errCorrupt)
			}
			payload = payload[k:]
			v.Runs = append(v.Runs, Run{Value: val, Len: int(run)})
			i += int(run)
		}
		if len(payload) != 0 {
			return fmt.Errorf("%w: trailing rle bytes", errCorrupt)
		}
		v.Form = ViewRuns
	case colDelta:
		vals := v.wideBuf(n)
		var prev uint64
		for i := range vals {
			z, k := binary.Uvarint(payload)
			if k <= 0 {
				return fmt.Errorf("%w: truncated delta stream", errCorrupt)
			}
			payload = payload[k:]
			prev += unzigzag(z)
			if prev > maxVal {
				return fmt.Errorf("%w: delta value overflows column width", errCorrupt)
			}
			vals[i] = prev
		}
		if len(payload) != 0 {
			return fmt.Errorf("%w: trailing delta bytes", errCorrupt)
		}
		v.Form = ViewWide
	case colDict, colDictHuff:
		var err error
		if payload, err = cc.readDict(payload, n, maxVal); err != nil {
			return err
		}
		d := len(cc.dict)
		if cap(v.Dict) < d {
			v.Dict = make([]uint64, d)
		}
		v.Dict = v.Dict[:d]
		copy(v.Dict, cc.dict)
		if cap(v.Idx) < n {
			v.Idx = make([]uint32, n)
		}
		v.Idx = v.Idx[:n]
		if tag == colDict {
			bits := bitsFor(d)
			if need := (n*bits + 7) / 8; len(payload) != need {
				return fmt.Errorf("%w: packed indices are %d bytes, want %d", errCorrupt, len(payload), need)
			}
			var acc uint64
			var nb uint
			pi := 0
			mask := uint64(1)<<bits - 1
			for i := range v.Idx {
				for nb < uint(bits) {
					acc |= uint64(payload[pi]) << nb
					pi++
					nb += 8
				}
				k := acc & mask
				acc >>= uint(bits)
				nb -= uint(bits)
				if k >= uint64(d) {
					return fmt.Errorf("%w: dictionary index out of range", errCorrupt)
				}
				v.Idx[i] = uint32(k)
			}
		} else {
			if len(payload) < d {
				return fmt.Errorf("%w: truncated code lengths", errCorrupt)
			}
			if cap(cc.lens) < d {
				cc.lens = make([]uint8, d)
			}
			cc.lens = cc.lens[:d]
			copy(cc.lens, payload[:d])
			if err := cc.buildDecodeTables(); err != nil {
				return err
			}
			if err := cc.huffDecodeIdx(payload[d:], v.Idx); err != nil {
				return err
			}
		}
		v.Form = ViewDict
	default:
		return fmt.Errorf("%w: unknown column tag 0x%02x", errCorrupt, tag)
	}
	return nil
}

// huffDecode decodes len(vals) symbols from the bitstream, mapping
// them through cc.dict.
func (cc *ChunkCodec) huffDecode(stream []byte, vals []uint64) error {
	d := uint32(len(cc.dict))
	totalBits := 8 * len(stream)
	var acc uint64
	var bits uint
	off, consumed := 0, 0
	for i := range vals {
		for bits <= 56 && off < len(stream) {
			acc |= uint64(stream[off]) << (56 - bits)
			off++
			bits += 8
		}
		e := cc.dTable[uint32(acc>>(64-huffTableBits))]
		l := uint(e & 0xff)
		var sym uint32
		if l != 0 {
			sym = e >> 8
		} else {
			// Long code: canonical per-length search.
			code := uint32(0)
			found := false
			for cl := 1; cl <= huffMaxLen; cl++ {
				code = code<<1 | uint32(acc>>(64-uint(cl))&1)
				if cnt := cc.dCount[cl]; cnt > 0 && code-cc.dFirst[cl] < cnt {
					sym = cc.dRank[cc.dOffset[cl]+code-cc.dFirst[cl]]
					l = uint(cl)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: invalid huffman code", errCorrupt)
			}
		}
		consumed += int(l)
		if consumed > totalBits {
			return fmt.Errorf("%w: truncated huffman stream", errCorrupt)
		}
		acc <<= l
		if l > bits {
			bits = 0
		} else {
			bits -= l
		}
		if sym >= d {
			return fmt.Errorf("%w: huffman symbol out of range", errCorrupt)
		}
		vals[i] = cc.dict[sym]
	}
	return nil
}

// huffDecodeIdx is huffDecode emitting raw symbol indices instead of
// dictionary values — the projection path keeps the index stream so
// predicates translate once per chunk into id sets.
func (cc *ChunkCodec) huffDecodeIdx(stream []byte, idx []uint32) error {
	d := uint32(len(cc.dict))
	totalBits := 8 * len(stream)
	var acc uint64
	var bits uint
	off, consumed := 0, 0
	for i := range idx {
		for bits <= 56 && off < len(stream) {
			acc |= uint64(stream[off]) << (56 - bits)
			off++
			bits += 8
		}
		e := cc.dTable[uint32(acc>>(64-huffTableBits))]
		l := uint(e & 0xff)
		var sym uint32
		if l != 0 {
			sym = e >> 8
		} else {
			code := uint32(0)
			found := false
			for cl := 1; cl <= huffMaxLen; cl++ {
				code = code<<1 | uint32(acc>>(64-uint(cl))&1)
				if cnt := cc.dCount[cl]; cnt > 0 && code-cc.dFirst[cl] < cnt {
					sym = cc.dRank[cc.dOffset[cl]+code-cc.dFirst[cl]]
					l = uint(cl)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: invalid huffman code", errCorrupt)
			}
		}
		consumed += int(l)
		if consumed > totalBits {
			return fmt.Errorf("%w: truncated huffman stream", errCorrupt)
		}
		acc <<= l
		if l > bits {
			bits = 0
		} else {
			bits -= l
		}
		if sym >= d {
			return fmt.Errorf("%w: huffman symbol out of range", errCorrupt)
		}
		idx[i] = sym
	}
	return nil
}
