package classify

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
)

// FuzzDecodeChunk hardens the chunk-block decoder: any byte string
// must either decode cleanly or return an error — never panic, and
// never allocate beyond what the validated row count justifies (forged
// lengths, dictionary sizes, Huffman tables and LZ4 streams are all
// checked before memory moves). Anything that decodes must survive a
// re-encode/re-decode round trip with identical columns.
//
// Run with: go test -fuzz FuzzDecodeChunk ./internal/classify/
func FuzzDecodeChunk(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	cc := GetCodec()
	mk := func(n int, compress bool) []byte {
		return cc.EncodeBlock(chunkOf(codecRows(rng, n)), compress, nil)
	}
	valid := mk(700, true)
	// The same chunk in the pre-section legacy frame (flags==0, no zone
	// map): old blocks must keep decoding, and the fuzzer should mutate
	// around both frame shapes.
	cc.noSections = true
	legacy := cc.EncodeBlock(chunkOf(codecRows(rng, 300)), true, nil)
	legacy = append([]byte(nil), legacy...)
	cc.noSections = false
	seeds := [][]byte{
		valid,
		mk(700, false),
		mk(1, true),
		mk(64, true),
		cc.EncodeBlock(chunkOf(make([]Row, 128)), true, nil), // all-constant columns
		legacy,
		{},
		valid[:5],
		valid[:len(valid)/2],
	}
	// Canonical corruptions: flipped payload byte (checksum), forged row
	// count and forged column length (declared-size guards), resealed so
	// validation proceeds past the checksum.
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x10
	seeds = append(seeds, flip)
	forged := append([]byte(nil), valid[:5]...)
	forged = binary.AppendUvarint(forged, 1<<40)
	forged = append(forged, valid[5:]...)
	binary.LittleEndian.PutUint32(forged, crc32.Checksum(forged[4:], castagnoli))
	seeds = append(seeds, forged)
	PutCodec(cc)
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		buf := &Chunk{}
		if err := DecodeBlockInto(data, -1, buf); err != nil {
			return
		}
		n := len(buf.URLHash)
		buf.Class = make([]Class, n)
		cc := GetCodec()
		defer PutCodec(cc)
		for _, compress := range []bool{true, false} {
			enc := cc.EncodeBlock(buf, compress, nil)
			re := &Chunk{}
			if err := DecodeBlockInto(enc, n, re); err != nil {
				t.Fatalf("re-decode of re-encoded chunk failed (compress=%v): %v", compress, err)
			}
			re.Class = make([]Class, n)
			for i := 0; i < n; i++ {
				a, b := buf.Row(i), re.Row(i)
				if a != b {
					t.Fatalf("round trip changed row %d (compress=%v): %+v vs %+v", i, compress, a, b)
				}
			}
		}
	})
}
