package classify

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"

	"crossborder/internal/netsim"
)

// spillRowBytes is the encoded size of the nine spilled columns of one
// row (the Class column stays resident: the semi-stage fixpoint mutates
// it after sealing, and at one byte per row it is cheap to keep).
const spillRowBytes = 8 + 4 + 4 + 4 + 4 + 4 + 2 + 1 + 1

// SpillSink streams rows into fixed-size column chunks and writes each
// full chunk to a temporary file as a tight little-endian column block,
// so Scale >> 1 datasets never hold more than one open chunk in memory
// on the write path. Seal returns the read-side SpillStore, which
// serves chunks with plain sequential pread calls — no mmap — and keeps
// only the class column resident.
type SpillSink struct {
	chunkRows int
	f         *os.File
	removed   bool // file already unlinked (unix: cleaned up on close)
	w         *bufio.Writer
	cur       *Chunk
	classes   [][]Class
	offsets   []int64
	lens      []int
	off       int64
	n         int
	err       error
}

// NewSpillSink creates a spill-to-disk sink backed by a temporary file
// in dir ("" = the OS temp directory). chunkRows <= 0 selects
// DefaultChunkRows. The caller owns the sealed store and must Close it
// to release the file.
func NewSpillSink(dir string, chunkRows int) (*SpillSink, error) {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	f, err := os.CreateTemp(dir, "crossborder-rows-*.col")
	if err != nil {
		return nil, fmt.Errorf("classify: create spill file: %w", err)
	}
	// Unlink eagerly where the OS allows it: the data stays reachable
	// through the open descriptor and the blocks are reclaimed even if
	// the process dies before Close. If the unlink fails (non-POSIX
	// semantics), Close removes the file by name instead.
	removed := os.Remove(f.Name()) == nil
	sk := &SpillSink{
		chunkRows: chunkRows,
		f:         f,
		removed:   removed,
		w:         bufio.NewWriterSize(f, 1<<20),
		cur:       &Chunk{},
	}
	sk.cur.grow(chunkRows)
	return sk, nil
}

// Append implements RowSink. I/O errors are sticky and reported by
// Seal.
func (sk *SpillSink) Append(r Row) {
	sk.cur.appendRow(r)
	sk.n++
	if sk.cur.Len() == sk.chunkRows {
		sk.flush()
	}
}

// flush encodes the open chunk to the file and retains its class
// column.
func (sk *SpillSink) flush() {
	n := sk.cur.Len()
	if n == 0 || sk.err != nil {
		return
	}
	buf := encodeChunk(sk.cur)
	if _, err := sk.w.Write(buf); err != nil && sk.err == nil {
		sk.err = fmt.Errorf("classify: write spill chunk: %w", err)
	}
	cls := make([]Class, n)
	copy(cls, sk.cur.Class)
	sk.classes = append(sk.classes, cls)
	sk.offsets = append(sk.offsets, sk.off)
	sk.lens = append(sk.lens, n)
	sk.off += int64(len(buf))
	sk.cur.reset(0)
	sk.cur.Class = sk.cur.Class[:0]
}

// Seal implements RowSink: it flushes the tail chunk and returns the
// readable store. The sink must not be used afterwards.
func (sk *SpillSink) Seal() (Store, error) {
	sk.flush()
	if sk.err == nil {
		if err := sk.w.Flush(); err != nil {
			sk.err = fmt.Errorf("classify: flush spill file: %w", err)
		}
	}
	if sk.err != nil {
		sk.f.Close()
		if !sk.removed {
			os.Remove(sk.f.Name())
		}
		return nil, sk.err
	}
	return &SpillStore{
		chunkRows: sk.chunkRows,
		f:         sk.f,
		removed:   sk.removed,
		classes:   sk.classes,
		offsets:   sk.offsets,
		lens:      sk.lens,
		n:         sk.n,
	}, nil
}

// SpillStore is the sealed read side of a SpillSink. Chunk reads are
// positioned (pread) and therefore safe from concurrent goroutines as
// long as each passes its own decode buffer; the class column is
// resident and shared across all loaded views.
type SpillStore struct {
	chunkRows int
	f         *os.File
	removed   bool
	classes   [][]Class
	offsets   []int64
	lens      []int
	n         int
}

// Len implements Store.
func (st *SpillStore) Len() int { return st.n }

// NumChunks implements Store.
func (st *SpillStore) NumChunks() int { return len(st.lens) }

// ChunkRows implements Store.
func (st *SpillStore) ChunkRows() int { return st.chunkRows }

// Classes implements Store.
func (st *SpillStore) Classes(i int) []Class { return st.classes[i] }

// Chunk implements Store: it preads chunk i into buf (allocating one
// when nil) and points the Class column at the resident slice. A
// decode error panics: the store wrote the file itself moments earlier,
// so a short or corrupt read means the environment lost the temp file
// under us and no caller can do better than fail loudly.
func (st *SpillStore) Chunk(i int, buf *Chunk) *Chunk {
	if buf == nil {
		buf = &Chunk{}
	}
	n := st.lens[i]
	if cap(buf.raw) < n*spillRowBytes {
		buf.raw = make([]byte, n*spillRowBytes)
	}
	raw := buf.raw[:n*spillRowBytes]
	if _, err := st.f.ReadAt(raw, st.offsets[i]); err != nil {
		panic(fmt.Sprintf("classify: read spill chunk %d: %v", i, err))
	}
	buf.reset(n)
	decodeChunk(raw, buf)
	buf.Class = st.classes[i]
	return buf
}

// Close implements Store: it closes and removes the spill file.
func (st *SpillStore) Close() error {
	name := st.f.Name()
	err := st.f.Close()
	if !st.removed {
		if rmErr := os.Remove(name); err == nil {
			err = rmErr
		}
	}
	return err
}

// encodeChunk serializes the nine spilled columns column-major in fixed
// little-endian widths.
func encodeChunk(c *Chunk) []byte {
	n := c.Len()
	buf := make([]byte, n*spillRowBytes)
	o := 0
	for _, v := range c.URLHash {
		binary.LittleEndian.PutUint64(buf[o:], v)
		o += 8
	}
	for _, v := range c.IP {
		binary.LittleEndian.PutUint32(buf[o:], uint32(v))
		o += 4
	}
	for _, v := range c.FQDN {
		binary.LittleEndian.PutUint32(buf[o:], v)
		o += 4
	}
	for _, v := range c.RefFQDN {
		binary.LittleEndian.PutUint32(buf[o:], v)
		o += 4
	}
	for _, v := range c.Publisher {
		binary.LittleEndian.PutUint32(buf[o:], uint32(v))
		o += 4
	}
	for _, v := range c.User {
		binary.LittleEndian.PutUint32(buf[o:], uint32(v))
		o += 4
	}
	for _, v := range c.Day {
		binary.LittleEndian.PutUint16(buf[o:], v)
		o += 2
	}
	o += copy(buf[o:], c.Country)
	copy(buf[o:], c.Flags)
	return buf
}

// decodeChunk is the inverse of encodeChunk; buf's columns are already
// sized to the row count by reset.
func decodeChunk(raw []byte, buf *Chunk) {
	n := len(buf.URLHash)
	o := 0
	for i := 0; i < n; i++ {
		buf.URLHash[i] = binary.LittleEndian.Uint64(raw[o:])
		o += 8
	}
	for i := 0; i < n; i++ {
		buf.IP[i] = netsim.IP(binary.LittleEndian.Uint32(raw[o:]))
		o += 4
	}
	for i := 0; i < n; i++ {
		buf.FQDN[i] = binary.LittleEndian.Uint32(raw[o:])
		o += 4
	}
	for i := 0; i < n; i++ {
		buf.RefFQDN[i] = binary.LittleEndian.Uint32(raw[o:])
		o += 4
	}
	for i := 0; i < n; i++ {
		buf.Publisher[i] = int32(binary.LittleEndian.Uint32(raw[o:]))
		o += 4
	}
	for i := 0; i < n; i++ {
		buf.User[i] = int32(binary.LittleEndian.Uint32(raw[o:]))
		o += 4
	}
	for i := 0; i < n; i++ {
		buf.Day[i] = binary.LittleEndian.Uint16(raw[o:])
		o += 2
	}
	o += copy(buf.Country, raw[o:o+n])
	copy(buf.Flags, raw[o:o+n])
}
