package classify

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// spillRowBytes is the fixed-width encoded size of the nine spilled
// columns of one row (the Class column stays resident: the semi-stage
// fixpoint mutates it after sealing, and at one byte per row it is
// cheap to keep). It is the raw-layout reference the codec's
// compression ratio is measured against.
const spillRowBytes = 8 + 4 + 4 + 4 + 4 + 4 + 2 + 1 + 1

// SpillSink streams rows into fixed-size column chunks and writes each
// full chunk to a temporary file as one framed codec block (checksum,
// declared sizes, per-column encodings — see codec.go), so Scale >> 1
// datasets never hold more than one open chunk in memory on the write
// path. Compression is on by default and cuts the spill file
// severalfold; NewSpillSinkUncompressed keeps the byte-transparent raw
// column layout inside the same frame. Seal returns the read-side
// SpillStore, which serves chunks with plain sequential pread calls —
// no mmap — and keeps only the class column resident.
type SpillSink struct {
	chunkRows int
	compress  bool
	f         *os.File
	removed   bool // file already unlinked (unix: cleaned up on close)
	w         *bufio.Writer
	cur       *Chunk
	enc       []byte
	classes   [][]Class
	zones     []*ZoneMap
	breakdown EncBreakdown
	offsets   []int64
	lens      []int
	dlens     []int
	off       int64
	n         int
	err       error
}

// NewSpillSink creates a compressing spill-to-disk sink backed by a
// temporary file in dir ("" = the OS temp directory). chunkRows <= 0
// selects DefaultChunkRows. The caller owns the sealed store and must
// Close it to release the file.
func NewSpillSink(dir string, chunkRows int) (*SpillSink, error) {
	return newSpillSink(dir, chunkRows, true)
}

// NewSpillSinkUncompressed is NewSpillSink with the per-chunk codec
// forced to the raw column layout — the benchmark and equivalence
// baseline.
func NewSpillSinkUncompressed(dir string, chunkRows int) (*SpillSink, error) {
	return newSpillSink(dir, chunkRows, false)
}

func newSpillSink(dir string, chunkRows int, compress bool) (*SpillSink, error) {
	if chunkRows <= 0 {
		chunkRows = DefaultChunkRows
	}
	f, err := os.CreateTemp(dir, "crossborder-rows-*.col")
	if err != nil {
		return nil, fmt.Errorf("classify: create spill file: %w", err)
	}
	// Unlink eagerly where the OS allows it: the data stays reachable
	// through the open descriptor and the blocks are reclaimed even if
	// the process dies before Close. If the unlink fails (non-POSIX
	// semantics), Close removes the file by name instead.
	removed := os.Remove(f.Name()) == nil
	sk := &SpillSink{
		chunkRows: chunkRows,
		compress:  compress,
		f:         f,
		removed:   removed,
		w:         bufio.NewWriterSize(f, 1<<20),
		cur:       &Chunk{},
	}
	sk.cur.grow(chunkRows)
	return sk, nil
}

// Append implements RowSink. I/O errors are sticky and reported by
// Seal.
func (sk *SpillSink) Append(r Row) {
	sk.cur.appendRow(r)
	sk.n++
	if sk.cur.Len() == sk.chunkRows {
		sk.flush()
	}
}

// flush encodes the open chunk to the file and retains its class
// column.
func (sk *SpillSink) flush() {
	n := sk.cur.Len()
	if n == 0 || sk.err != nil {
		return
	}
	cc := sk.cur.codec()
	sk.enc = cc.EncodeBlock(sk.cur, sk.compress, sk.enc[:0])
	zm := cc.EncodedZone()
	sk.zones = append(sk.zones, &zm)
	tags, sizes, zoneBytes := cc.EncodedColStats()
	sk.breakdown.addBlock(n, tags, sizes, zoneBytes)
	if _, err := sk.w.Write(sk.enc); err != nil && sk.err == nil {
		sk.err = fmt.Errorf("classify: write spill chunk: %w", err)
	}
	cls := make([]Class, n)
	copy(cls, sk.cur.Class)
	sk.classes = append(sk.classes, cls)
	sk.offsets = append(sk.offsets, sk.off)
	sk.lens = append(sk.lens, n)
	sk.dlens = append(sk.dlens, len(sk.enc))
	sk.off += int64(len(sk.enc))
	sk.cur.reset(0)
	sk.cur.Class = sk.cur.Class[:0]
}

// Seal implements RowSink: it flushes the tail chunk and returns the
// readable store. The sink must not be used afterwards.
func (sk *SpillSink) Seal() (Store, error) {
	sk.flush()
	if sk.err == nil {
		if err := sk.w.Flush(); err != nil {
			sk.err = fmt.Errorf("classify: flush spill file: %w", err)
		}
	}
	if sk.err != nil {
		sk.f.Close()
		if !sk.removed {
			os.Remove(sk.f.Name())
		}
		return nil, sk.err
	}
	return &SpillStore{
		chunkRows: sk.chunkRows,
		f:         sk.f,
		removed:   sk.removed,
		classes:   sk.classes,
		zones:     sk.zones,
		breakdown: sk.breakdown,
		offsets:   sk.offsets,
		lens:      sk.lens,
		dlens:     sk.dlens,
		n:         sk.n,
	}, nil
}

// SpillStore is the sealed read side of a SpillSink. Chunk reads are
// positioned (pread) and therefore safe from concurrent goroutines as
// long as each passes its own decode buffer; the class column is
// resident and shared across all loaded views.
type SpillStore struct {
	chunkRows int
	f         *os.File
	removed   bool
	classes   [][]Class
	zones     []*ZoneMap
	breakdown EncBreakdown
	offsets   []int64
	lens      []int
	dlens     []int
	n         int
}

// Len implements Store.
func (st *SpillStore) Len() int { return st.n }

// NumChunks implements Store.
func (st *SpillStore) NumChunks() int { return len(st.lens) }

// ChunkRows implements Store.
func (st *SpillStore) ChunkRows() int { return st.chunkRows }

// Classes implements Store.
func (st *SpillStore) Classes(i int) []Class { return st.classes[i] }

// Size returns the total bytes written to the spill file — the
// number the compression ratio is measured from.
func (st *SpillStore) Size() int64 {
	if len(st.offsets) == 0 {
		return 0
	}
	return st.offsets[len(st.offsets)-1] + int64(st.dlens[len(st.dlens)-1])
}

// RawSize returns the bytes the fixed-width raw column layout would
// occupy for the same rows: the reference for the compression ratio.
func (st *SpillStore) RawSize() int64 { return int64(st.n) * spillRowBytes }

// Chunk implements Store: it preads chunk i's framed block into buf's
// scratch (allocating a buffer when buf is nil), verifies and decodes
// it, and points the Class column at the resident slice. A short read,
// checksum mismatch or malformed block returns an error — truncation
// and corruption of the spill file must surface to the caller rather
// than crash the process or balloon memory.
func (st *SpillStore) Chunk(i int, buf *Chunk) (*Chunk, error) {
	if buf == nil {
		buf = &Chunk{}
	}
	need := st.dlens[i]
	if cap(buf.raw) < need {
		buf.raw = make([]byte, need)
	}
	raw := buf.raw[:need]
	if _, err := st.f.ReadAt(raw, st.offsets[i]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("spill file truncated")
		}
		return nil, fmt.Errorf("classify: read spill chunk %d: %w", i, err)
	}
	if err := buf.codec().DecodeBlock(raw, st.lens[i], buf); err != nil {
		return nil, fmt.Errorf("classify: decode spill chunk %d: %w", i, err)
	}
	buf.Class = st.classes[i]
	return buf, nil
}

// ScanCols implements Store.
func (st *SpillStore) ScanCols(cols ColSet, fn func(base int, pc *ProjChunk)) {
	ScanStoreCols(st, cols, fn)
}

// BlockBytes implements BlockReader: it preads chunk i's framed block
// into *scratch, growing it as needed. Concurrent calls are safe with
// distinct scratch buffers (positioned reads).
func (st *SpillStore) BlockBytes(i int, scratch *[]byte) ([]byte, error) {
	need := st.dlens[i]
	if cap(*scratch) < need {
		*scratch = make([]byte, need)
	}
	raw := (*scratch)[:need]
	if _, err := st.f.ReadAt(raw, st.offsets[i]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("spill file truncated")
		}
		return nil, fmt.Errorf("classify: read spill chunk %d: %w", i, err)
	}
	return raw, nil
}

// HasEncodedBlocks implements BlockReader. Even an uncompressed spill
// store benefits from the projection path: blocks are framed raw
// columns, so a projected read scatters only the requested columns.
func (st *SpillStore) HasEncodedBlocks() bool { return true }

// ZoneMap implements ZoneMapped.
func (st *SpillStore) ZoneMap(i int) *ZoneMap {
	if i < len(st.zones) {
		return st.zones[i]
	}
	return nil
}

// Footprint implements Store: spilled blocks count as compressed
// bytes, the resident class column as resident bytes.
func (st *SpillStore) Footprint() Footprint {
	return Footprint{
		Rows:            st.n,
		ResidentBytes:   int64(st.n), // one resident class byte per row
		CompressedBytes: st.Size(),
		SealedChunks:    len(st.lens),
		Breakdown:       st.breakdown,
	}
}

// Close implements Store: it closes and removes the spill file.
func (st *SpillStore) Close() error {
	name := st.f.Name()
	err := st.f.Close()
	if !st.removed {
		if rmErr := os.Remove(name); err == nil {
			err = rmErr
		}
	}
	return err
}
