package classify

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// This file implements the column-projection scan path: Store.ScanCols
// hands kernels a ProjChunk that exposes only the columns they ask
// for, in encoded form where that is profitable — RLE columns as
// (value, run) pairs that aggregate arithmetically, dictionary columns
// as the sorted dictionary plus the per-row id stream so predicates
// translate once per chunk into id sets, wide values only for raw and
// delta columns. Nothing is read or decoded until the first column
// access, so a kernel that inspects the zone map or the resident class
// column and declines the chunk skips the block fetch and every decode
// entirely.

// ColID names one of the nine spilled columns, in frame order.
type ColID uint8

const (
	ColURLHash ColID = iota
	ColIP
	ColFQDN
	ColRefFQDN
	ColPublisher
	ColUser
	ColDay
	ColCountry
	ColFlags
)

// ColSet is a bitmask of ColIDs — the projection a kernel declares to
// ScanCols. The set is a planning hint (stores may use it to prefetch);
// ProjChunk serves any column on demand regardless.
type ColSet uint16

// Cols builds a ColSet from column ids.
func Cols(ids ...ColID) ColSet {
	var s ColSet
	for _, id := range ids {
		s |= 1 << id
	}
	return s
}

// Has reports whether the set contains c.
func (s ColSet) Has(c ColID) bool { return s&(1<<c) != 0 }

// AllCols is the full-width projection.
const AllCols = ColSet(1<<numCols - 1)

// ViewForm says how a ColView holds its column.
type ViewForm uint8

const (
	// ViewWide holds plain per-row values in Vals.
	ViewWide ViewForm = iota
	// ViewRuns holds (value, run-length) pairs in Runs; runs cover the
	// chunk's rows in order.
	ViewRuns
	// ViewDict holds the sorted distinct values in Dict and the
	// per-row dictionary index in Idx.
	ViewDict
)

// Run is one RLE run: Len consecutive rows share Value.
type Run struct {
	Value uint64
	Len   int
}

// ColView is one decoded column of a ProjChunk in its cheapest
// faithful form. Exactly the fields implied by Form are valid. Views
// are valid until the ProjChunk moves to the next chunk.
type ColView struct {
	Form ViewForm
	Vals []uint64 // ViewWide (also the Wide() expansion scratch)
	Runs []Run    // ViewRuns (also the Runs() coalescing scratch)
	Dict []uint64 // ViewDict: sorted distinct values
	Idx  []uint32 // ViewDict: per-row index into Dict
}

// wideBuf sizes and returns the Vals backing for n rows.
func (v *ColView) wideBuf(n int) []uint64 {
	if cap(v.Vals) < n {
		v.Vals = make([]uint64, n)
	}
	v.Vals = v.Vals[:n]
	return v.Vals
}

// BlockReader is the optional Store interface behind the projection
// fast path: stores that keep chunks as framed codec blocks expose the
// raw block so ProjChunk can decode single columns out of it.
type BlockReader interface {
	// BlockBytes returns chunk i's framed codec block, reading into
	// *scratch (grown as needed) for disk-backed stores or returning
	// the resident block directly. A nil block with nil error means
	// chunk i is resident wide (e.g. the open tail chunk) and must be
	// loaded through Store.Chunk.
	BlockBytes(i int, scratch *[]byte) ([]byte, error)
	// HasEncodedBlocks reports whether the store holds encoded blocks
	// at all. PushdownAuto enables the projection kernels exactly when
	// this is true: on a fully wide store the projection path would
	// copy columns a plain Scan reads in place.
	HasEncodedBlocks() bool
}

// ZoneMapped is the optional Store interface for resident zone maps.
// A nil result for a chunk (open tail, block restored from a
// checkpoint written before zone maps existed) just disables pruning
// for that chunk.
type ZoneMapped interface {
	ZoneMap(i int) *ZoneMap
}

// Scan-path counters, exposed on the daemons' /metrics endpoints.
var (
	statChunksScanned atomic.Int64
	statChunksSkipped atomic.Int64
	statPushdownScans atomic.Int64
	statFallbackScans atomic.Int64
)

// ScanStats is a snapshot of the process-wide projection-scan counters.
type ScanStats struct {
	// ChunksScanned counts chunks offered to ScanCols kernels;
	// ChunksSkipped counts the subset the kernel declined without
	// loading a single column (zone-map or class-bitmap pruning).
	ChunksScanned int64
	ChunksSkipped int64
	// PushdownScans and FallbackScans count kernel invocations that
	// ran the projection path vs the decode-to-rows path.
	PushdownScans int64
	FallbackScans int64
}

// ReadScanStats returns the current counter values.
func ReadScanStats() ScanStats {
	return ScanStats{
		ChunksScanned: statChunksScanned.Load(),
		ChunksSkipped: statChunksSkipped.Load(),
		PushdownScans: statPushdownScans.Load(),
		FallbackScans: statFallbackScans.Load(),
	}
}

// CountPushdownScan records one kernel dispatch decision in the
// process-wide counters.
func CountPushdownScan(pushdown bool) {
	if pushdown {
		statPushdownScans.Add(1)
	} else {
		statFallbackScans.Add(1)
	}
}

// ProjChunk is one chunk as seen by the projection scan path. Zone
// (nil when the chunk has no zone map) and the resident Class column
// are available immediately; spilled columns load lazily on first
// access, so a kernel that returns without touching any column costs
// one class-slice lookup and nothing else. Load failures panic with
// MustChunk's rationale: the scan pipelines read stores this process
// wrote moments earlier.
type ProjChunk struct {
	Zone  *ZoneMap
	Class []Class

	st      Store
	br      BlockReader
	ci      int
	rows    int
	want    ColSet
	loaded  ColSet // columns with a materialized view
	widened ColSet // columns with a materialized Wide() expansion
	fetched bool
	block   []byte // non-nil: framed block; nil after fetch: wide chunk
	tags    [numCols]byte
	pays    [numCols][]byte
	views   [numCols]ColView
	zoneBuf ZoneMap
	wide    *Chunk // wide fallback (resident or decoded full-width)
	buf     *Chunk
	scratch []byte
	cc      *ChunkCodec
}

var projPool = sync.Pool{New: func() any { return new(ProjChunk) }}

// GetProj borrows a reusable projection scratch from the pool.
func GetProj() *ProjChunk { return projPool.Get().(*ProjChunk) }

// PutProj returns a projection scratch to the pool, dropping every
// store reference so pooled buffers never pin class columns or blocks.
func PutProj(pc *ProjChunk) {
	pc.Class = nil
	pc.Zone = nil
	pc.st, pc.br = nil, nil
	pc.block = nil
	pc.wide = nil
	for i := range pc.pays {
		pc.pays[i] = nil
	}
	projPool.Put(pc)
}

// ProjChunkAt binds pc to chunk i of st for the given projection,
// mirroring MustChunk for parallel workers that stripe chunk ranges
// themselves. Nothing is read until the first column access.
func ProjChunkAt(st Store, i int, cols ColSet, pc *ProjChunk) *ProjChunk {
	br, _ := st.(BlockReader)
	zs, _ := st.(ZoneMapped)
	pc.begin(st, br, zs, i, cols)
	return pc
}

func (pc *ProjChunk) begin(st Store, br BlockReader, zs ZoneMapped, ci int, want ColSet) {
	pc.st, pc.br, pc.ci, pc.want = st, br, ci, want
	pc.Class = st.Classes(ci)
	pc.rows = len(pc.Class)
	pc.Zone = nil
	if zs != nil {
		pc.Zone = zs.ZoneMap(ci)
	}
	pc.loaded, pc.widened = 0, 0
	pc.fetched = false
	pc.block = nil
	pc.wide = nil
}

// Len returns the chunk's row count.
func (pc *ProjChunk) Len() int { return pc.rows }

// Loaded reports whether any column has been materialized — the
// chunk-skip accounting test.
func (pc *ProjChunk) Loaded() bool { return pc.fetched }

func (pc *ProjChunk) codec() *ChunkCodec {
	if pc.cc == nil {
		pc.cc = GetCodec()
	}
	return pc.cc
}

// fetch pulls the chunk's backing: the framed block for block-backed
// stores (parsing the frame headers and, if none is resident, the
// zone-map section), or the wide chunk for everything else.
func (pc *ProjChunk) fetch() {
	pc.fetched = true
	if pc.br != nil {
		block, err := pc.br.BlockBytes(pc.ci, &pc.scratch)
		if err != nil {
			panic(fmt.Sprintf("classify: read block %d: %v", pc.ci, err))
		}
		if block != nil {
			if err := pc.loadFrame(block); err != nil {
				panic(fmt.Sprintf("classify: project chunk %d: %v", pc.ci, err))
			}
			pc.block = block
			return
		}
	}
	if pc.buf == nil {
		pc.buf = &Chunk{}
	}
	pc.wide = MustChunk(pc.st, pc.ci, pc.buf)
}

// loadFrame validates the block frame exactly as DecodeBlock does and
// records each column's tag and payload location; payloads themselves
// stay encoded until a column is asked for.
func (pc *ProjChunk) loadFrame(block []byte) error {
	if len(block) < 6 {
		return fmt.Errorf("%w: %d-byte block", errCorrupt, len(block))
	}
	if got, want := crc32.Checksum(block[4:], castagnoli), binary.LittleEndian.Uint32(block); got != want {
		return fmt.Errorf("%w: checksum mismatch (%08x != %08x)", errCorrupt, got, want)
	}
	flags := block[4]
	if flags&^byte(frameHasSections) != 0 {
		return fmt.Errorf("%w: unknown format flags 0x%02x", errCorrupt, flags)
	}
	rest := block[5:]
	rows64, k := binary.Uvarint(rest)
	if k <= 0 {
		return fmt.Errorf("%w: bad row count", errCorrupt)
	}
	rest = rest[k:]
	if int(rows64) != pc.rows {
		return fmt.Errorf("%w: block declares %d rows, store expects %d", errCorrupt, rows64, pc.rows)
	}
	for col := 0; col < numCols; col++ {
		if len(rest) < 1 {
			return fmt.Errorf("%w: truncated at column %d", errCorrupt, col)
		}
		pc.tags[col] = rest[0]
		plen64, k := binary.Uvarint(rest[1:])
		if k <= 0 || plen64 > uint64(len(rest)-1-k) {
			return fmt.Errorf("%w: bad payload length for column %d", errCorrupt, col)
		}
		pc.pays[col] = rest[1+k : 1+k+int(plen64)]
		rest = rest[1+k+int(plen64):]
	}
	if flags&frameHasSections != 0 {
		for len(rest) > 0 {
			tag := rest[0]
			if tag == 0 {
				return fmt.Errorf("%w: reserved section tag", errCorrupt)
			}
			plen64, k := binary.Uvarint(rest[1:])
			if k <= 0 || plen64 > uint64(len(rest)-1-k) {
				return fmt.Errorf("%w: bad section length", errCorrupt)
			}
			payload := rest[1+k : 1+k+int(plen64)]
			rest = rest[1+k+int(plen64):]
			if tag == secZoneMap && pc.Zone == nil {
				if err := parseZoneSection(payload, pc.rows, &pc.zoneBuf); err != nil {
					return err
				}
				pc.Zone = &pc.zoneBuf
			}
		}
	}
	return nil
}

// Col returns column c's view, materializing it on first access: a
// single-column decode out of the framed block, or a copy out of the
// wide chunk on stores without encoded blocks.
func (pc *ProjChunk) Col(c ColID) *ColView {
	v := &pc.views[c]
	if pc.loaded.Has(c) {
		return v
	}
	if !pc.fetched {
		pc.fetch()
	}
	if pc.block != nil {
		if err := pc.codec().decodeColumnView(pc.pays[c], pc.tags[c], pc.rows, colWidths[c], v); err != nil {
			panic(fmt.Sprintf("classify: decode chunk %d column %d: %v", pc.ci, c, err))
		}
	} else {
		pc.viewFromWide(c, v)
	}
	pc.loaded |= 1 << c
	return v
}

// viewFromWide fills v from the resident wide chunk, copying into v's
// own scratch (never aliasing resident store memory: the view scratch
// is written to by later decodes of the pooled ProjChunk).
func (pc *ProjChunk) viewFromWide(c ColID, v *ColView) {
	w := pc.wide
	vals := v.wideBuf(w.Len())
	switch c {
	case ColURLHash:
		copy(vals, w.URLHash)
	case ColIP:
		for i, x := range w.IP {
			vals[i] = uint64(uint32(x))
		}
	case ColFQDN:
		for i, x := range w.FQDN {
			vals[i] = uint64(x)
		}
	case ColRefFQDN:
		for i, x := range w.RefFQDN {
			vals[i] = uint64(x)
		}
	case ColPublisher:
		for i, x := range w.Publisher {
			vals[i] = uint64(uint32(x))
		}
	case ColUser:
		for i, x := range w.User {
			vals[i] = uint64(uint32(x))
		}
	case ColDay:
		for i, x := range w.Day {
			vals[i] = uint64(x)
		}
	case ColCountry:
		for i, x := range w.Country {
			vals[i] = uint64(x)
		}
	case ColFlags:
		for i, x := range w.Flags {
			vals[i] = uint64(x)
		}
	}
	v.Form = ViewWide
	pc.widened |= 1 << c
}

// Wide returns column c as plain per-row values, expanding runs or
// dictionary ids into the view's scratch when the encoded form is not
// already wide — the late-materialization escape hatch.
func (pc *ProjChunk) Wide(c ColID) []uint64 {
	v := pc.Col(c)
	if v.Form == ViewWide || pc.widened.Has(c) {
		return v.Vals
	}
	vals := v.wideBuf(pc.rows)
	switch v.Form {
	case ViewRuns:
		i := 0
		for _, r := range v.Runs {
			for j := 0; j < r.Len; j++ {
				vals[i+j] = r.Value
			}
			i += r.Len
		}
	case ViewDict:
		for i, k := range v.Idx {
			vals[i] = v.Dict[k]
		}
	}
	pc.widened |= 1 << c
	return vals
}

// Runs returns column c as maximal (value, run) pairs, coalescing from
// the wide form when the column was not RLE-encoded. Aggregations over
// run-heavy columns (Country, User, Publisher, Day) iterate runs and
// multiply instead of visiting rows.
func (pc *ProjChunk) Runs(c ColID) []Run {
	v := pc.Col(c)
	if v.Form == ViewRuns {
		return v.Runs
	}
	vals := pc.Wide(c)
	v.Runs = v.Runs[:0]
	for i := 0; i < len(vals); {
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		v.Runs = append(v.Runs, Run{Value: vals[i], Len: j - i})
		i = j
	}
	return v.Runs
}

// DictView returns column c's dictionary and per-row id stream when the
// column is dictionary-encoded, so predicates evaluate once per
// distinct value instead of once per row. ok is false otherwise.
func (pc *ProjChunk) DictView(c ColID) (dict []uint64, idx []uint32, ok bool) {
	v := pc.Col(c)
	if v.Form != ViewDict {
		return nil, nil, false
	}
	return v.Dict, v.Idx, true
}

// AnyTracking reports whether any class in cls marks a tracking flow,
// with early exit. It is the authoritative chunk-skip test for
// tracking-only kernels: the zone map's seal-time ClassBits can go
// stale because the semi-stage fixpoint reclassifies resident classes
// after sealing, but this scan always reads current truth.
func AnyTracking(cls []Class) bool {
	for _, c := range cls {
		if c.IsTracking() {
			return true
		}
	}
	return false
}

// ScanStoreCols drives fn over every chunk of st through one pooled
// ProjChunk — the shared body of every Store.ScanCols implementation
// (exported so stores outside this package reuse it).
func ScanStoreCols(st Store, cols ColSet, fn func(base int, pc *ProjChunk)) {
	br, _ := st.(BlockReader)
	zs, _ := st.(ZoneMapped)
	pc := GetProj()
	defer PutProj(pc)
	base := 0
	for i := 0; i < st.NumChunks(); i++ {
		pc.begin(st, br, zs, i, cols)
		fn(base, pc)
		statChunksScanned.Add(1)
		if !pc.fetched {
			statChunksSkipped.Add(1)
		}
		base += pc.rows
	}
}
