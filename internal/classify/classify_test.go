package classify

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"crossborder/internal/blocklist"
	"crossborder/internal/browser"
	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/webgraph"
)

var start = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)

// rig builds graph + dns + lists + collector and runs a small simulation.
func rig(t *testing.T, seed int64, users []browser.CountryCount, visits int) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := webgraph.Build(rng, webgraph.Config{}.Scale(0.05))

	srv := dns.NewServer(nil)
	end := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	countries := []geodata.Country{"US", "DE", "NL", "GB", "IE", "FR"}
	ip := uint32(0x20000000)
	for _, s := range g.Services {
		for _, f := range s.FQDNs {
			srv.Register(f, s.Org, dns.PolicyNearest, 300*time.Second, []dns.ServerIP{
				{IP: netsim.IP(ip), Country: countries[int(ip)%len(countries)], From: start, To: end},
			})
			ip++
		}
	}

	elText, epText := blocklist.Generate(rng, g, blocklist.Coverage{})
	el, errs := blocklist.Parse("easylist", elText)
	if len(errs) != 0 {
		t.Fatalf("easylist: %v", errs)
	}
	ep, errs := blocklist.Parse("easyprivacy", epText)
	if len(errs) != 0 {
		t.Fatalf("easyprivacy: %v", errs)
	}

	col := NewCollector(g, el, ep, start)
	sim := browser.NewSimulator(g, srv, browser.Config{VisitsPerUser: visits})
	sim.Run(seed, browser.MakeUsers(users), col)
	return col.Finalize()
}

func TestClassStrings(t *testing.T) {
	for _, c := range []Class{ClassClean, ClassABP, ClassSemiReferrer, ClassSemiKeyword} {
		if c.String() == "" || c.String() == "unknown" {
			t.Errorf("class %d has bad string", c)
		}
	}
	if ClassClean.IsTracking() {
		t.Error("clean must not be tracking")
	}
	if !ClassABP.IsTracking() || !ClassSemiReferrer.IsTracking() || !ClassSemiKeyword.IsTracking() {
		t.Error("tracking classes mis-labelled")
	}
	if ClassABP.IsSemi() || !ClassSemiReferrer.IsSemi() || !ClassSemiKeyword.IsSemi() {
		t.Error("IsSemi mis-labelled")
	}
}

func TestInterner(t *testing.T) {
	in := NewInterner()
	if got := in.ID(""); got != 0 {
		t.Errorf("empty string id = %d, want 0", got)
	}
	a := in.ID("a.com")
	if in.ID("a.com") != a {
		t.Error("re-interning must return same id")
	}
	b := in.ID("b.com")
	if a == b {
		t.Error("distinct strings share an id")
	}
	if in.Str(a) != "a.com" || in.Str(b) != "b.com" {
		t.Error("Str round trip failed")
	}
	if in.Str(9999) != "" {
		t.Error("out of range Str must return empty")
	}
	if _, ok := in.Lookup("missing"); ok {
		t.Error("Lookup missing must be !ok")
	}
	if in.Len() != 3 {
		t.Errorf("Len = %d", in.Len())
	}
}

func TestContainsKeyword(t *testing.T) {
	positives := []string{
		"https://x.com/usermatch?uid=1",
		"https://x.com/RTB/auction?a=1",
		"https://x.com/cookiesync?p=2",
		"https://track.x.com/a",
	}
	for _, u := range positives {
		if !containsKeyword(u) {
			t.Errorf("containsKeyword(%q) = false", u)
		}
	}
	if containsKeyword("https://static.cdn001.com/lib/main.js") {
		t.Error("clean URL flagged")
	}
}

func TestStageProgression(t *testing.T) {
	ds := rig(t, 1, []browser.CountryCount{{Country: "DE", Users: 4}, {Country: "ES", Users: 3}}, 40)
	var abp, semiRef, semiKw, clean int64
	for _, r := range ds.Rows() {
		switch r.Class {
		case ClassABP:
			abp++
		case ClassSemiReferrer:
			semiRef++
		case ClassSemiKeyword:
			semiKw++
		default:
			clean++
		}
	}
	if abp == 0 {
		t.Error("stage 1 caught nothing")
	}
	if semiRef == 0 {
		t.Error("stage 2 (referrer propagation) caught nothing")
	}
	if semiKw == 0 {
		t.Error("stage 3 (keyword heuristic) caught nothing")
	}
	if clean == 0 {
		t.Error("no clean flows at all")
	}
	total := abp + semiRef + semiKw
	// Table 2 shape: the semi stages add substantially to the list catch
	// (paper: +80% over ABP alone). Accept a broad band.
	ratio := float64(semiRef+semiKw) / float64(abp)
	if ratio < 0.25 || ratio > 2.5 {
		t.Errorf("semi/abp ratio = %.2f (abp=%d semi=%d), want the paper's roughly-doubling shape", ratio, abp, semiRef+semiKw)
	}
	_ = total
}

func TestClassifierAccuracy(t *testing.T) {
	ds := rig(t, 2, []browser.CountryCount{{Country: "DE", Users: 5}}, 40)
	acc := Score(ds)
	if p := acc.Precision(); p < 0.97 {
		t.Errorf("precision = %.4f, want near 1 (heuristics should not mark clean CDN traffic)", p)
	}
	if r := acc.Recall(); r < 0.80 {
		t.Errorf("recall = %.4f, want high (stages should recover most cascade flows)", r)
	}
}

func TestComputeTable2Consistency(t *testing.T) {
	ds := rig(t, 3, []browser.CountryCount{{Country: "DE", Users: 4}}, 30)
	t2 := ComputeTable2(ds)
	if t2.ABP.TotalRequests+t2.Semi.TotalRequests != t2.Total.TotalRequests {
		t.Errorf("ABP %d + Semi %d != Total %d",
			t2.ABP.TotalRequests, t2.Semi.TotalRequests, t2.Total.TotalRequests)
	}
	if t2.Total.FQDNs > t2.ABP.FQDNs+t2.Semi.FQDNs {
		t.Error("total FQDNs exceeds sum of parts")
	}
	if t2.Total.UniqueRequests > t2.Total.TotalRequests {
		t.Error("unique exceeds total")
	}
	if t2.ABP.TLDs == 0 || t2.Semi.TLDs == 0 {
		t.Error("empty TLD catch")
	}
}

func TestPerSiteCounts(t *testing.T) {
	ds := rig(t, 4, []browser.CountryCount{{Country: "DE", Users: 3}}, 30)
	sites := PerSiteCounts(ds)
	if len(sites) == 0 {
		t.Fatal("no sites")
	}
	var totAll int64
	trackingDominates := 0
	for _, s := range sites {
		if s.All() != s.Clean+s.Tracking {
			t.Fatal("All() inconsistent")
		}
		totAll += s.All()
		if s.Tracking > s.Clean {
			trackingDominates++
		}
	}
	if totAll != int64(ds.Len()) {
		t.Errorf("site counts sum %d != rows %d", totAll, ds.Len())
	}
	// Fig 2 takeaway: on most sites tracking flows outnumber clean ones.
	if float64(trackingDominates)/float64(len(sites)) < 0.5 {
		t.Errorf("tracking dominates on only %d/%d sites", trackingDominates, len(sites))
	}
}

func TestTopTrackingTLDs(t *testing.T) {
	ds := rig(t, 5, []browser.CountryCount{{Country: "DE", Users: 4}}, 30)
	top := TopTrackingTLDs(ds, 20)
	if len(top) == 0 {
		t.Fatal("no tracking TLDs")
	}
	if len(top) > 20 {
		t.Errorf("len = %d > 20", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Total() > top[i-1].Total() {
			t.Error("not sorted by total descending")
		}
	}
	// The majors should rank near the top.
	foundMajor := false
	for _, s := range top[:min(5, len(top))] {
		if s.TLD == "googlesyndication.com" || s.TLD == "doubleclick.net" ||
			s.TLD == "google-analytics.com" || s.TLD == "facebook.net" ||
			s.TLD == "facebook.com" || s.TLD == "amazon-adsystem.com" || s.TLD == "google.com" {
			foundMajor = true
		}
	}
	if !foundMajor {
		t.Errorf("no major tracker in top 5: %+v", top[:min(5, len(top))])
	}
}

func TestComputeStats(t *testing.T) {
	users := []browser.CountryCount{{Country: "DE", Users: 3}, {Country: "FR", Users: 2}}
	ds := rig(t, 6, users, 25)
	st := ComputeStats(ds)
	if st.Users != 5 {
		t.Errorf("users = %d, want 5", st.Users)
	}
	if st.FirstPartyVisits != ds.Visits {
		t.Error("visits mismatch")
	}
	if st.FirstPartySites == 0 || st.FirstPartySites > st.FirstPartyVisits {
		t.Errorf("sites = %d vs visits %d", st.FirstPartySites, st.FirstPartyVisits)
	}
	if st.ThirdPartyReqs != int64(ds.Len()) {
		t.Error("request count mismatch")
	}
	if st.ThirdPartyFQDNs == 0 {
		t.Error("no third-party FQDNs")
	}
}

func TestRowAccessors(t *testing.T) {
	ds := rig(t, 7, []browser.CountryCount{{Country: "GR", Users: 2}}, 10)
	rows := ds.Rows()
	for _, r := range rows[:min(100, len(rows))] {
		if ds.Country(r) != "GR" {
			t.Fatalf("country = %s", ds.Country(r))
		}
		if ds.FQDN(r) == "" {
			t.Fatal("empty FQDN")
		}
		if ds.Publisher(r) == nil {
			t.Fatal("nil publisher")
		}
		tm := ds.Time(r)
		if tm.Before(start) || tm.After(start.AddDate(0, 0, 200)) {
			t.Fatalf("time %v out of range", tm)
		}
	}
}

func TestGroundTruthFlag(t *testing.T) {
	ds := rig(t, 8, []browser.CountryCount{{Country: "DE", Users: 2}}, 15)
	anyTrue, anyFalse := false, false
	for _, r := range ds.Rows() {
		if r.TruthTracking() {
			anyTrue = true
		} else {
			anyFalse = true
		}
	}
	if !anyTrue || !anyFalse {
		t.Error("ground truth flag must vary across rows")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// shardRig rebuilds the rig substrate so the sharded-vs-sequential test
// can run the same simulation through both collector shapes.
func shardRig(t testing.TB, seed int64) (*webgraph.Graph, *dns.Server, *blocklist.List, *blocklist.List) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := webgraph.Build(rng, webgraph.Config{}.Scale(0.05))
	srv := dns.NewServer(nil)
	end := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	countries := []geodata.Country{"US", "DE", "NL", "GB", "IE", "FR"}
	ip := uint32(0x20000000)
	for _, s := range g.Services {
		for _, f := range s.FQDNs {
			srv.Register(f, s.Org, dns.PolicyNearest, 300*time.Second, []dns.ServerIP{
				{IP: netsim.IP(ip), Country: countries[int(ip)%len(countries)], From: start, To: end},
			})
			ip++
		}
	}
	elText, epText := blocklist.Generate(rng, g, blocklist.Coverage{})
	el, _ := blocklist.Parse("easylist", elText)
	ep, _ := blocklist.Parse("easyprivacy", epText)
	return g, srv, el, ep
}

func datasetsEqual(t *testing.T, a, b *Dataset) {
	t.Helper()
	ar, br := a.Rows(), b.Rows()
	if len(ar) != len(br) {
		t.Fatalf("row counts differ: %d vs %d", len(ar), len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, ar[i], br[i])
		}
	}
	if a.FQDNs.Len() != b.FQDNs.Len() {
		t.Fatalf("interner sizes differ: %d vs %d", a.FQDNs.Len(), b.FQDNs.Len())
	}
	for id := 0; id < a.FQDNs.Len(); id++ {
		if a.FQDNs.Str(uint32(id)) != b.FQDNs.Str(uint32(id)) {
			t.Fatalf("interner id %d: %q vs %q", id, a.FQDNs.Str(uint32(id)), b.FQDNs.Str(uint32(id)))
		}
	}
	if len(a.Countries) != len(b.Countries) {
		t.Fatalf("country tables differ in size")
	}
	for i := range a.Countries {
		if a.Countries[i] != b.Countries[i] {
			t.Fatalf("country id %d: %s vs %s", i, a.Countries[i], b.Countries[i])
		}
	}
	if len(a.Publishers) != len(b.Publishers) {
		t.Fatalf("publisher tables differ in size")
	}
	for i := range a.Publishers {
		if a.Publishers[i] != b.Publishers[i] {
			t.Fatalf("publisher id %d differs", i)
		}
	}
	if a.Visits != b.Visits {
		t.Fatalf("visits differ: %d vs %d", a.Visits, b.Visits)
	}
}

// TestShardedMergeMatchesSequential is the shard/merge contract at the
// classify level: a parallel capture merged in user order must be
// byte-identical to the one-goroutine capture.
func TestShardedMergeMatchesSequential(t *testing.T) {
	g, srv, el, ep := shardRig(t, 11)
	users := browser.MakeUsers([]browser.CountryCount{{Country: "DE", Users: 4}, {Country: "ES", Users: 3}})
	sim := browser.NewSimulator(g, srv, browser.Config{VisitsPerUser: 20})

	seq := NewCollector(g, el, ep, start)
	sim.Run(5, users, seq)
	seqDS := seq.Finalize()

	const workers = 3
	sc := NewShardedCollector(g, el, ep, start, workers)
	sim.RunWorkers(5, users, workers, func(w int) []browser.Sink {
		return []browser.Sink{sc.Shard(w)}
	})
	parDS := sc.Finalize(users)

	datasetsEqual(t, seqDS, parDS)
}

// TestKeywordMatcherMatchesNaive cross-checks the Aho-Corasick scan
// against the original ToLower+Contains loop on adversarial and random
// inputs.
func TestKeywordMatcherMatchesNaive(t *testing.T) {
	naive := func(url string) bool {
		l := strings.ToLower(url)
		for _, k := range Keywords {
			if strings.Contains(l, k) {
				return true
			}
		}
		return false
	}
	fixed := []string{
		"", "https://x.com/", "https://sync.dmp01.com/cookiesync?uid=1",
		"https://x.com/usermatc", "https://x.com/usermatchX", "USERMATCH",
		"https://x.com/sy", "SyNc", "rtb", "r-t-b", "xxrtbxx",
		"https://x.com/cookiesyn c", "trac", "track", "/co/llect",
		"https://x.com/adser/v", "pixel", "pi xel", "bi", "obid",
	}
	for _, u := range fixed {
		if got, want := containsKeyword(u), naive(u); got != want {
			t.Errorf("containsKeyword(%q) = %v, naive = %v", u, got, want)
		}
	}
	rng := rand.New(rand.NewSource(42))
	alphabet := "abcdefgHIJ/?.=&:%-_xyzSYNCrtbi"
	for i := 0; i < 5000; i++ {
		n := rng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		u := string(b)
		if got, want := containsKeyword(u), naive(u); got != want {
			t.Fatalf("containsKeyword(%q) = %v, naive = %v", u, got, want)
		}
	}
	// Fragment-wise scanning must equal whole-string scanning.
	if keywordAC.matchParts("https://", "sync.x.com", "/a") != containsKeyword("https://sync.x.com/a") {
		t.Error("fragment scan diverges from whole-URL scan")
	}
}
