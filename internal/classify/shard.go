package classify

import (
	"strings"
	"time"

	"crossborder/internal/blocklist"
	"crossborder/internal/browser"
	"crossborder/internal/geodata"
	"crossborder/internal/webgraph"
)

// ShardedCollector builds the classified Dataset from a parallel browser
// simulation. Each worker drives its own Shard (a browser.Sink with a
// private interner, publisher/country index, classification caches and
// per-user row buffers), so the capture path is lock-free; Finalize then
// merges the shards deterministically.
//
// The shard/merge contract: every user's full event stream lands in
// exactly one shard (browser.Simulator.RunWorkers guarantees this), and
// the merge walks users in a caller-chosen global order, re-interning
// strings and remapping publisher/country ids in encounter order. Because
// per-user row order is fixed by the user's private RNG stream and the
// merge order is fixed by the caller, the merged Dataset is byte-for-byte
// identical no matter how many shards collected it or which shard
// captured which user.
type ShardedCollector struct {
	graph       *webgraph.Graph
	easylist    *blocklist.List
	easyprivacy *blocklist.List
	start       time.Time
	// memoOK gates the per-(FQDN, path, page-domain) verdict cache: it is
	// only sound when both lists' outcomes cannot depend on the query
	// string (true for the generated easylist/easyprivacy).
	memoOK bool
	shards []*Shard
}

// NewShardedCollector returns a collector with one shard per worker.
func NewShardedCollector(graph *webgraph.Graph, easylist, easyprivacy *blocklist.List, start time.Time, workers int) *ShardedCollector {
	if workers < 1 {
		workers = 1
	}
	c := &ShardedCollector{
		graph:       graph,
		easylist:    easylist,
		easyprivacy: easyprivacy,
		start:       start,
		memoOK:      easylist.Memoizable() && easyprivacy.Memoizable(),
	}
	c.shards = make([]*Shard, workers)
	for w := range c.shards {
		c.shards[w] = &Shard{
			c:          c,
			interner:   NewInterner(),
			countryIdx: make(map[geodata.Country]uint8),
			pubIdx:     make(map[*webgraph.Publisher]int32),
			cur:        -1,
			meta:       make(map[string]fqdnMeta),
			verdict:    make(map[verdictKey]bool),
		}
	}
	return c
}

// Workers returns the number of shards.
func (c *ShardedCollector) Workers() int { return len(c.shards) }

// Shard returns worker w's sink. Each shard must be driven from a single
// goroutine; distinct shards may run concurrently.
func (c *ShardedCollector) Shard(w int) *Shard { return c.shards[w] }

// fqdnMeta caches the per-FQDN work of the request path: the shard-local
// interner id and the generator-side ground truth.
type fqdnMeta struct {
	id    uint32
	truth bool
}

// verdictKey addresses one memoized filter-list verdict. path excludes
// the query string; see blocklist.List.Memoizable for why that is sound.
type verdictKey struct {
	fqdn, path, page string
}

// userCapture is one user's complete capture inside a shard: the
// publishers visited (shard-local ids, in visit order) and the emitted
// rows (shard-local interner/publisher/country ids, in emit order).
type userCapture struct {
	user   int32
	visits []int32
	rows   []Row
}

// Shard is the per-worker capture sink.
type Shard struct {
	c          *ShardedCollector
	interner   *Interner
	countryIdx map[geodata.Country]uint8
	countries  []geodata.Country
	pubIdx     map[*webgraph.Publisher]int32
	pubs       []*webgraph.Publisher
	caps       []userCapture
	cur        int // index into caps of the user currently streaming
	meta       map[string]fqdnMeta
	verdict    map[verdictKey]bool
}

// capture returns the open capture for user id, starting one if the
// stream moved to a new user.
func (sh *Shard) capture(id int32) *userCapture {
	if sh.cur < 0 || sh.caps[sh.cur].user != id {
		sh.caps = append(sh.caps, userCapture{user: id})
		sh.cur = len(sh.caps) - 1
	}
	return &sh.caps[sh.cur]
}

// OnVisit implements browser.Sink.
func (sh *Shard) OnVisit(u *browser.User, p *webgraph.Publisher, at time.Time) {
	cap := sh.capture(int32(u.ID))
	pid, ok := sh.pubIdx[p]
	if !ok {
		pid = int32(len(sh.pubs))
		sh.pubIdx[p] = pid
		sh.pubs = append(sh.pubs, p)
	}
	cap.visits = append(cap.visits, pid)
}

// OnRequest implements browser.Sink: stage-1 classification + row
// storage, all against shard-local state.
func (sh *Shard) OnRequest(ev browser.Event) {
	cap := sh.capture(int32(ev.User.ID))
	m := sh.fqdnMetaFor(ev.Call.FQDN)
	// A request normally follows its page's OnVisit in the same shard,
	// so the publisher is already registered. The live ingestion path
	// can resume a user's stream mid-visit in a different shard after an
	// epoch cut; register the publisher shard-locally then (without a
	// visit) so the row still references it — the merge resolves it to
	// the global id the original visit registered.
	pid, ok := sh.pubIdx[ev.Publisher]
	if !ok {
		pid = int32(len(sh.pubs))
		sh.pubIdx[ev.Publisher] = pid
		sh.pubs = append(sh.pubs, ev.Publisher)
	}
	row := Row{
		URLHash:   fnvAdd(fnvAdd(fnvAdd(fnvOffset, "https://"), ev.Call.FQDN), ev.Call.Path),
		IP:        ev.IP,
		FQDN:      m.id,
		RefFQDN:   sh.interner.ID(ev.Call.RefFQDN),
		Publisher: pid,
		User:      int32(ev.User.ID),
		Day:       uint16(ev.At.Sub(sh.c.start) / (24 * time.Hour)),
	}
	cID, ok := sh.countryIdx[ev.User.Country]
	if !ok {
		cID = uint8(len(sh.countries))
		sh.countryIdx[ev.User.Country] = cID
		sh.countries = append(sh.countries, ev.User.Country)
	}
	row.Country = cID

	if ev.Call.HasArgs {
		row.Flags |= FlagHasArgs
	}
	if ev.HTTPS {
		row.Flags |= FlagHTTPS
	}
	// Single-pass multi-pattern scan over the URL fragments; no lowered
	// copy, no concatenation. Non-letter boundaries make fragment-wise
	// scanning identical to scanning the full URL.
	if keywordAC.matchParts(ev.Call.FQDN, ev.Call.Path) {
		row.Flags |= FlagKeyword
	}
	if m.truth {
		row.Flags |= FlagTruthing
	}
	if sh.stage1(ev.Call.FQDN, ev.Call.Path, ev.Publisher.Domain) {
		row.Class = ClassABP
	} else {
		row.Class = ClassClean
	}
	cap.rows = append(cap.rows, row)
}

// fqdnMetaFor memoizes the interner id and ground-truth role of an FQDN,
// collapsing two map lookups (interner + service registry) into one on
// the hot path.
func (sh *Shard) fqdnMetaFor(fqdn string) fqdnMeta {
	if m, ok := sh.meta[fqdn]; ok {
		return m
	}
	m := fqdnMeta{id: sh.interner.ID(fqdn)}
	if svc, ok := sh.c.graph.ServiceByFQDN(fqdn); ok && svc.Role.IsTracking() {
		m.truth = true
	}
	sh.meta[fqdn] = m
	return m
}

// stage1 returns the filter-list verdict, memoized per (FQDN,
// path-sans-query, page domain) when the lists allow it.
func (sh *Shard) stage1(fqdn, path, page string) bool {
	if !sh.c.memoOK {
		return sh.c.matchLists(fqdn, path, page)
	}
	pk := path
	if i := strings.IndexByte(pk, '?'); i >= 0 {
		pk = pk[:i]
	}
	k := verdictKey{fqdn: fqdn, path: pk, page: page}
	v, ok := sh.verdict[k]
	if !ok {
		v = sh.c.matchLists(fqdn, path, page)
		sh.verdict[k] = v
	}
	return v
}

// matchLists runs the real (uncached) stage-1 match. The URL string is
// materialized only here, i.e. only on verdict-cache misses.
func (c *ShardedCollector) matchLists(fqdn, path, page string) bool {
	q := blocklist.Request{URL: "https://" + fqdn + path, PageDomain: page}
	return c.easylist.Match(q) || c.easyprivacy.Match(q)
}

// capRef addresses one user's capture inside one shard.
type capRef struct {
	sh  *Shard
	idx int
}

// Finalize merges all shards in the order of users into the default
// in-memory columnar store, runs classification stages 2 and 3 over the
// merged rows, and returns the dataset. The collector must not be used
// afterwards. Users that never browsed are skipped.
func (c *ShardedCollector) Finalize(users []*browser.User) *Dataset {
	ds, err := c.FinalizeInto(users, NewMemStore())
	if err != nil {
		// Unreachable: the in-memory sink cannot fail.
		panic("classify: " + err.Error())
	}
	return ds
}

// FinalizeInto is Finalize with a caller-chosen row sink (e.g. a
// spill-to-disk store for Scale >> 1 runs). The merged stream entering
// the sink is identical for every sink choice; only the storage layout
// differs.
func (c *ShardedCollector) FinalizeInto(users []*browser.User, sink RowSink) (*Dataset, error) {
	// A user normally has exactly one capture; if a caller interleaved a
	// user's stream (which capture() tolerates by reopening them), all
	// their captures merge, in shard then arrival order.
	byUser := make(map[int32][]capRef)
	for _, sh := range c.shards {
		for i := range sh.caps {
			u := sh.caps[i].user
			byUser[u] = append(byUser[u], capRef{sh: sh, idx: i})
		}
	}
	var order []capRef
	for _, u := range users {
		order = append(order, byUser[int32(u.ID)]...)
	}
	return c.mergeInto(order, sink, true)
}

// mergeInto replays the captures in the given order into the sink,
// re-interning strings and remapping publisher/country ids exactly as a
// sequential collector would have assigned them: per user, visits first
// (publishers register on first visit), then rows in emit order.
// runSemi gates stages 2 and 3 (benchmarks disable them to measure the
// fixpoint in isolation).
func (c *ShardedCollector) mergeInto(order []capRef, sink RowSink, runSemi bool) (*Dataset, error) {
	// Pre-size the merged interner from the shard interners: their
	// combined length bounds the distinct strings the merge can see, so
	// the map never rehashes mid-merge. (Shards sharing hostnames make
	// this an overestimate; the slack is transient.)
	internHint := 0
	for _, sh := range c.shards {
		internHint += sh.interner.Len()
	}
	m := NewMerger(c.start, sink, internHint)
	for _, cr := range order {
		m.AppendCapture(cr.sh, cr.idx)
	}
	store, err := sink.Seal()
	if err != nil {
		return nil, err
	}
	ds := m.Dataset()
	ds.Store = store
	if runSemi {
		runSemiStages(ds, len(c.shards))
	}
	return ds, nil
}
