package classify

import "math"

// This file implements classification stages 2 and 3 (§3.2) over the
// columnar store: referrer propagation and the keyword heuristic,
// iterated to a fixpoint. Two interchangeable engines exist:
//
//   - the sequential reference, a direct port of the original
//     row-slice loop, and
//   - a sharded engine that partitions the column chunks over a worker
//     pool and replays the sequential semantics exactly.
//
// The sharded engine must be byte-identical to the reference. The only
// order-sensitive part of the sequential algorithm is the first stage-2
// pass: while scanning rows in order, a conversion immediately adds the
// row's FQDN to the tracking set, so a later row in the same pass can
// convert off it — and a keyword row that converts here escapes stage 3
// and gets the SemiReferrer label instead of SemiKeyword. Everything
// after that pass is label-uniform and reaches the same closure under
// any evaluation order. The sharded engine therefore emulates the first
// pass with activation indices: act[F] is the smallest global row index
// whose conversion admits FQDN F (-1 for FQDNs the filter lists already
// caught), computed by a Bellman-Ford-style relaxation whose min-merge
// is commutative, hence worker-count invariant. A row converts in the
// first pass iff act[ref] < its own index — exactly the sequential
// "was the referrer tracking when the scan reached me" test.
// TestShardedSemiStagesMatchSequential pins the equivalence.

// runSemiStages performs referrer propagation (stage 2) and the keyword
// heuristic (stage 3), iterating the pair to a fixpoint: a keyword-caught
// cascade head admits the requests it referred on the next round.
// workers > 1 selects the sharded engine; any value produces the same
// classification byte for byte.
func runSemiStages(ds *Dataset, workers int) {
	if ds.Store == nil || ds.Store.Len() == 0 {
		return
	}
	if workers > ds.Store.NumChunks() {
		workers = ds.Store.NumChunks()
	}
	if workers <= 1 {
		runSemiStagesSequential(ds)
		return
	}
	runSemiStagesSharded(ds, workers)
}

// runSemiStagesSequential is the reference engine: one goroutine, rows
// in order, conversions visible within the pass.
func runSemiStagesSequential(ds *Dataset) {
	st := ds.Store
	// LTF membership at FQDN granularity: an FQDN is "in the LTF" once
	// any request to it is classified as tracking. (The paper keys on
	// URLs; FQDN granularity is the conservative compaction.)
	inLTF := make([]bool, ds.FQDNs.Len())
	buf := GetChunk()
	defer PutChunk(buf)
	for ci := 0; ci < st.NumChunks(); ci++ {
		c := MustChunk(st, ci, buf)
		for i, cls := range c.Class {
			if cls == ClassABP {
				inLTF[c.FQDN[i]] = true
			}
		}
	}

	for {
		changed := false

		// Stage 2: a request with arguments whose referrer FQDN is
		// already tracking becomes tracking.
		for ci := 0; ci < st.NumChunks(); ci++ {
			c := MustChunk(st, ci, buf)
			for i := range c.Class {
				if c.Class[i] != ClassClean || c.Flags[i]&FlagHasArgs == 0 || c.RefFQDN[i] == 0 {
					continue
				}
				if inLTF[c.RefFQDN[i]] {
					c.Class[i] = ClassSemiReferrer
					if !inLTF[c.FQDN[i]] {
						inLTF[c.FQDN[i]] = true
						changed = true
					}
				}
			}
		}

		// Stage 3: keyword + arguments heuristic for the remainder.
		for ci := 0; ci < st.NumChunks(); ci++ {
			c := MustChunk(st, ci, buf)
			for i := range c.Class {
				if c.Class[i] == ClassClean && c.Flags[i]&FlagHasArgs != 0 && c.Flags[i]&FlagKeyword != 0 {
					c.Class[i] = ClassSemiKeyword
					if !inLTF[c.FQDN[i]] {
						inLTF[c.FQDN[i]] = true
						changed = true
					}
				}
			}
		}

		if !changed {
			break
		}
	}
}

// semiShard runs one worker's side of the sharded engine: chunks are
// striped over workers (worker w owns chunks w, w+workers, ...), each
// worker reusing one decode buffer across all its passes.
type semiShard struct {
	st    Store
	w, n  int
	buf   Chunk
	bases []int // global first-row index per chunk
	// scratch for the relaxation and LTF rounds.
	propose map[uint32]int64
	newLTF  []uint32
}

// eachChunk invokes fn for every chunk this worker owns.
func (sh *semiShard) eachChunk(fn func(base int, c *Chunk)) {
	for ci := sh.w; ci < sh.st.NumChunks(); ci += sh.n {
		fn(sh.bases[ci], MustChunk(sh.st, ci, &sh.buf))
	}
}

const semiNever = int64(math.MaxInt64)

// runSemiStagesSharded is the parallel engine; see the file comment for
// the equivalence argument.
func runSemiStagesSharded(ds *Dataset, workers int) {
	st := ds.Store
	numF := ds.FQDNs.Len()

	bases := make([]int, st.NumChunks())
	base := 0
	for ci := range bases {
		bases[ci] = base
		n := st.ChunkRows()
		if rem := st.Len() - base; n > rem {
			n = rem
		}
		base += n
	}

	shards := make([]*semiShard, workers)
	for w := range shards {
		shards[w] = &semiShard{st: st, w: w, n: workers, bases: bases}
	}
	// One persistent pool serves every pass of the fixpoint (seed scan,
	// relaxation rounds, mark pass, propagation rounds) instead of
	// spawning fresh goroutines per pass.
	pool := newWorkerPool(workers)
	defer pool.Close()
	parallel := func(fn func(sh *semiShard)) {
		pool.run(func(w int) { fn(shards[w]) })
	}

	// Seed: act[F] = -1 for FQDNs with any stage-1 (ABP) row.
	act := make([]int64, numF)
	for i := range act {
		act[i] = semiNever
	}
	seeds := make([][]bool, workers)
	parallel(func(sh *semiShard) {
		seen := make([]bool, numF)
		sh.eachChunk(func(_ int, c *Chunk) {
			for i, cls := range c.Class {
				if cls == ClassABP {
					seen[c.FQDN[i]] = true
				}
			}
		})
		seeds[sh.w] = seen
	})
	for _, seen := range seeds {
		for f, ok := range seen {
			if ok {
				act[f] = -1
			}
		}
	}

	// First stage-2 pass, emulated: relax activation indices to the
	// least fixpoint. Workers read the act snapshot and propose
	// per-worker minima; the single-threaded min-merge between rounds
	// keeps the result independent of worker count and scheduling.
	for {
		parallel(func(sh *semiShard) {
			if sh.propose == nil {
				sh.propose = make(map[uint32]int64)
			}
			sh.eachChunk(func(cbase int, c *Chunk) {
				for i := range c.Class {
					if c.Class[i] != ClassClean || c.Flags[i]&FlagHasArgs == 0 || c.RefFQDN[i] == 0 {
						continue
					}
					j := int64(cbase + i)
					if act[c.RefFQDN[i]] >= j {
						continue
					}
					f := c.FQDN[i]
					if j >= act[f] {
						continue
					}
					if cur, ok := sh.propose[f]; !ok || j < cur {
						sh.propose[f] = j
					}
				}
			})
		})
		changed := false
		for _, sh := range shards {
			for f, j := range sh.propose {
				if j < act[f] {
					act[f] = j
					changed = true
				}
				delete(sh.propose, f)
			}
		}
		if !changed {
			break
		}
	}

	// Mark the first-pass conversions, then the first stage-3 pass: all
	// remaining clean keyword+args rows convert unconditionally, so
	// stage 3 never fires again after this.
	inLTF := make([]bool, numF)
	for f, a := range act {
		if a != semiNever {
			inLTF[f] = true
		}
	}
	kwSets := make([][]uint32, workers)
	parallel(func(sh *semiShard) {
		sh.eachChunk(func(cbase int, c *Chunk) {
			for i := range c.Class {
				if c.Class[i] != ClassClean || c.Flags[i]&FlagHasArgs == 0 {
					continue
				}
				if c.RefFQDN[i] != 0 && act[c.RefFQDN[i]] < int64(cbase+i) {
					c.Class[i] = ClassSemiReferrer
					continue
				}
				if c.Flags[i]&FlagKeyword != 0 {
					c.Class[i] = ClassSemiKeyword
					sh.newLTF = append(sh.newLTF, c.FQDN[i])
				}
			}
		})
		kwSets[sh.w] = sh.newLTF
		sh.newLTF = nil
	})
	for _, set := range kwSets {
		for _, f := range set {
			inLTF[f] = true
		}
	}

	// Remaining rounds: label-uniform referrer propagation against an
	// LTF snapshot per round, until a round admits no new FQDN.
	for {
		sets := make([][]uint32, workers)
		parallel(func(sh *semiShard) {
			sh.eachChunk(func(_ int, c *Chunk) {
				for i := range c.Class {
					if c.Class[i] != ClassClean || c.Flags[i]&FlagHasArgs == 0 || c.RefFQDN[i] == 0 {
						continue
					}
					if inLTF[c.RefFQDN[i]] {
						c.Class[i] = ClassSemiReferrer
						if !inLTF[c.FQDN[i]] {
							sh.newLTF = append(sh.newLTF, c.FQDN[i])
						}
					}
				}
			})
			sets[sh.w] = sh.newLTF
			sh.newLTF = nil
		})
		changed := false
		for _, set := range sets {
			for _, f := range set {
				if !inLTF[f] {
					inLTF[f] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
}
