package classify

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"crossborder/internal/netsim"
)

// chunkOf scatters rows into a standalone chunk (Class included).
func chunkOf(rows []Row) *Chunk {
	c := &Chunk{}
	c.grow(len(rows))
	for _, r := range rows {
		c.appendRow(r)
	}
	return c
}

// chunksEqual compares the nine wide columns (Class is store-owned and
// excluded: DecodeBlock leaves it untouched).
func chunksEqual(t *testing.T, got, want *Chunk, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		g, w := got.Row(i), want.Row(i)
		g.Class, w.Class = 0, 0
		if g != w {
			t.Fatalf("row %d: decoded %+v != encoded %+v", i, g, w)
		}
	}
}

// codecRows generates adversarially shaped columns: blocks of constant,
// monotone, low-cardinality and fully random stretches, so every
// encoding scheme gets exercised and compared against every other.
func codecRows(rng *rand.Rand, n int) []Row {
	rows := make([]Row, n)
	mode := 0
	for i := range rows {
		if i%97 == 0 {
			mode = rng.Intn(4)
		}
		switch mode {
		case 0: // constant-ish runs
			rows[i] = Row{User: 7, Day: 3, Country: 2, FQDN: 5, Publisher: 1}
		case 1: // monotone
			rows[i] = Row{URLHash: uint64(i) * 3, User: int32(i), Day: uint16(i % 300), FQDN: uint32(i % 11)}
		case 2: // low cardinality
			rows[i] = Row{
				URLHash: uint64(rng.Intn(7)), IP: netsim.IP(rng.Intn(5)),
				FQDN: uint32(rng.Intn(9)), RefFQDN: uint32(rng.Intn(3)),
				Flags: uint8(rng.Intn(4)),
			}
		default: // random
			rows[i] = Row{
				URLHash: rng.Uint64(), IP: netsim.IP(rng.Uint32()),
				FQDN: rng.Uint32(), RefFQDN: rng.Uint32(),
				Publisher: int32(rng.Uint32() >> 1), User: int32(rng.Uint32() >> 1),
				Day: uint16(rng.Uint32()), Country: uint8(rng.Uint32()), Flags: uint8(rng.Uint32()),
			}
		}
	}
	return rows
}

func TestCodecBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(3000)
		rows := codecRows(rng, n)
		c := chunkOf(rows)
		for _, compress := range []bool{true, false} {
			cc := GetCodec()
			block := cc.EncodeBlock(c, compress, nil)
			PutCodec(cc)
			buf := &Chunk{}
			if err := DecodeBlockInto(block, n, buf); err != nil {
				t.Fatalf("trial %d compress=%v: decode: %v", trial, compress, err)
			}
			buf.Class = make([]Class, n)
			chunksEqual(t, buf, c, n)
		}
	}
}

func TestCodecCompressesGoldenShapedChunks(t *testing.T) {
	// A chunk shaped like the study's merge output (user-ordered visit
	// runs, low-cardinality ids, Zipf-ish hosts) must compress well
	// below half its raw size; the study-level ratio gate lives in the
	// root package's compression test.
	rng := rand.New(rand.NewSource(3))
	rows := make([]Row, 8192)
	for i := range rows {
		visit := i / 30
		rows[i] = Row{
			URLHash:   uint64(rng.Intn(4000)),
			IP:        netsim.IP(zipfInt(rng, 500)),
			FQDN:      uint32(1 + zipfInt(rng, 300)),
			RefFQDN:   uint32(zipfInt(rng, 100)),
			Publisher: int32(visit % 80),
			User:      int32(visit / 200),
			Day:       uint16(visit % 120),
			Country:   uint8(visit / 500),
			Flags:     uint8(rng.Intn(12)),
		}
	}
	c := chunkOf(rows)
	cc := GetCodec()
	defer PutCodec(cc)
	block := cc.EncodeBlock(c, true, nil)
	raw := len(rows) * spillRowBytes
	if len(block)*2 > raw {
		t.Fatalf("compressed block is %d bytes for %d raw (%.2fx); expected well over 2x",
			len(block), raw, float64(raw)/float64(len(block)))
	}
	buf := &Chunk{}
	if err := DecodeBlockInto(block, len(rows), buf); err != nil {
		t.Fatal(err)
	}
	buf.Class = make([]Class, len(rows))
	chunksEqual(t, buf, c, len(rows))
}

func zipfInt(rng *rand.Rand, n int) int {
	v := int(rng.ExpFloat64() * float64(n) / 6)
	if v >= n {
		v = n - 1
	}
	return v
}

func TestMemStoreCompressedMatchesWide(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := randomRows(rng, 3000, 60)
	wide := NewMemStoreChunked(256)
	comp := NewMemStoreCompressed(256)
	for _, r := range rows {
		wide.Append(r)
		comp.Append(r)
	}
	if comp.Len() != wide.Len() || comp.NumChunks() != wide.NumChunks() {
		t.Fatalf("shape mismatch: compressed %d rows/%d chunks, wide %d/%d",
			comp.Len(), comp.NumChunks(), wide.Len(), wide.NumChunks())
	}
	if !comp.Compressed() || comp.SealedBlocks() == 0 {
		t.Fatal("compressed store did not seal any blocks")
	}
	a := (&Dataset{Store: wide}).Rows()
	b := (&Dataset{Store: comp}).Rows()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d: wide %+v != compressed %+v", i, a[i], b[i])
		}
	}
	// The class column must stay resident and shared in compressed
	// mode: a write through Classes is visible through a decoded view.
	comp.Classes(2)[9] = ClassSemiKeyword
	var buf Chunk
	if c := MustChunk(comp, 2, &buf); c.Class[9] != ClassSemiKeyword {
		t.Fatal("class write not visible through decoded compressed chunk")
	}
}

func TestSemiStagesOverCompressedStore(t *testing.T) {
	// The fixpoint mutates Class through decoded chunk views; the
	// labels must match the wide store's run exactly.
	rng := rand.New(rand.NewSource(5))
	numFQDN := 40
	rows := randomRows(rng, 2500, numFQDN)
	in := internerOfSize(numFQDN)

	ref := &Dataset{Store: StoreOf(rows...), FQDNs: in}
	runSemiStagesSequential(ref)
	want := ref.Rows()

	for _, workers := range []int{1, 4} {
		st := NewMemStoreCompressed(512)
		for _, r := range rows {
			st.Append(r)
		}
		ds := &Dataset{Store: st, FQDNs: in}
		runSemiStages(ds, workers)
		got := ds.Rows()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers %d row %d: compressed %+v != wide %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// corruptSpill builds a small compressed spill store and returns it
// with its first block's framing for corruption tests.
func corruptSpillStore(t *testing.T) *SpillStore {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	rows := randomRows(rng, 1000, 50)
	sink, err := NewSpillSink(t.TempDir(), 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		sink.Append(r)
	}
	st, err := sink.Seal()
	if err != nil {
		t.Fatal(err)
	}
	sp := st.(*SpillStore)
	t.Cleanup(func() { sp.Close() })
	return sp
}

func TestSpillChunkErrorsOnTruncation(t *testing.T) {
	sp := corruptSpillStore(t)
	if err := sp.f.Truncate(sp.offsets[len(sp.offsets)-1] + 3); err != nil {
		t.Fatal(err)
	}
	last := sp.NumChunks() - 1
	if _, err := sp.Chunk(last, nil); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("Chunk on truncated file = %v, want truncation error", err)
	}
}

func TestSpillChunkErrorsOnBadChecksum(t *testing.T) {
	sp := corruptSpillStore(t)
	// Flip one payload byte mid-block; the frame checksum must catch it.
	if _, err := sp.f.WriteAt([]byte{0xA5}, sp.offsets[1]+int64(sp.dlens[1])/2); err != nil {
		t.Fatal(err)
	}
	_, err := sp.Chunk(1, nil)
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Chunk on corrupted block = %v, want checksum error", err)
	}
}

func TestSpillChunkErrorsOnForgedSizes(t *testing.T) {
	sp := corruptSpillStore(t)
	// Rewrite block 0 in place with a forged declaration, recomputing
	// the checksum so validation proceeds past it: an over-large row
	// count (and the over-large payload lengths it implies) must be
	// rejected before any allocation happens.
	raw := make([]byte, sp.dlens[0])
	if _, err := sp.f.ReadAt(raw, sp.offsets[0]); err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), raw[:5]...)
	forged = binary.AppendUvarint(forged, 1<<50) // declared rows
	forged = append(forged, raw[5:]...)
	forged = forged[:len(raw)] // keep the on-disk block length
	binary.LittleEndian.PutUint32(forged, crc32.Checksum(forged[4:], castagnoli))
	if _, err := sp.f.WriteAt(forged, sp.offsets[0]); err != nil {
		t.Fatal(err)
	}
	_, err := sp.Chunk(0, nil)
	if err == nil || !strings.Contains(err.Error(), "rows") {
		t.Fatalf("Chunk with forged row count = %v, want declared-size error", err)
	}
}

func TestDecodeBlockRejectsForgedInput(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := randomRows(rng, 600, 30)
	c := chunkOf(rows)
	cc := GetCodec()
	defer PutCodec(cc)
	block := cc.EncodeBlock(c, true, nil)

	reseal := func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b, crc32.Checksum(b[4:], castagnoli))
		return b
	}
	cases := map[string][]byte{
		"empty":          {},
		"short":          block[:5],
		"truncated":      reseal(append([]byte(nil), block[:len(block)/2]...)),
		"flipped byte":   func() []byte { b := append([]byte(nil), block...); b[len(b)/2] ^= 0x40; return b }(),
		"bad flags":      reseal(func() []byte { b := append([]byte(nil), block...); b[4] = 9; return b }()),
		"trailing bytes": reseal(append(append([]byte(nil), block...), 0, 1, 2)),
	}
	for name, b := range cases {
		buf := &Chunk{}
		if err := DecodeBlockInto(b, 600, buf); err == nil {
			t.Errorf("%s: decode succeeded on forged input", name)
		}
	}
	// Row-count mismatch against the store's expectation.
	buf := &Chunk{}
	if err := DecodeBlockInto(block, 601, buf); err == nil {
		t.Error("decode accepted a block with the wrong row count")
	}
}

func TestLZ4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	htab := make([]int32, lzHashLen)
	inputs := [][]byte{
		bytes.Repeat([]byte("abcd"), 1000),
		bytes.Repeat([]byte("long templated cascade pattern / "), 64),
		make([]byte, 4096), // zeros
	}
	mixed := make([]byte, 8192)
	for i := range mixed {
		if i%512 < 200 {
			mixed[i] = byte(rng.Intn(256)) // incompressible stretch
		} else {
			mixed[i] = byte(i % 7)
		}
	}
	inputs = append(inputs, mixed)
	for i, src := range inputs {
		chain := make([]int32, len(src))
		enc := lzCompress(src, nil, htab, chain)
		if enc == nil {
			t.Fatalf("input %d: compressible data reported incompressible", i)
		}
		if len(enc) >= len(src) {
			t.Fatalf("input %d: no compression (%d >= %d)", i, len(enc), len(src))
		}
		out := make([]byte, len(src))
		if err := lzDecompress(enc, out); err != nil {
			t.Fatalf("input %d: decompress: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("input %d: round trip mismatch", i)
		}
		// Truncations and size lies must error, not panic.
		for cut := 1; cut < len(enc); cut += 7 {
			if err := lzDecompress(enc[:cut], out); err == nil && cut < len(enc) {
				t.Fatalf("input %d: truncation at %d decoded cleanly to full size", i, cut)
			}
		}
		if err := lzDecompress(enc, make([]byte, len(src)+1)); err == nil {
			t.Fatalf("input %d: oversized declared output accepted", i)
		}
	}
	// Random noise must be reported incompressible, and random "streams"
	// must never panic the decoder.
	noise := make([]byte, 4096)
	rng.Read(noise)
	if enc := lzCompress(noise, nil, htab, make([]int32, len(noise))); enc != nil {
		t.Log("noise compressed (harmless, just unexpected)")
	}
	out := make([]byte, 512)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		lzDecompress(b, out[:rng.Intn(len(out))])
	}
}
