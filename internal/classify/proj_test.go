package classify

import (
	"math/rand"
	"testing"
)

// projVariants builds the four store backends over the same rows: the
// wide and compressed in-memory stores, and the raw and compressed
// spill stores.
func projVariants(t *testing.T, rows []Row, chunkRows int) map[string]Store {
	t.Helper()
	out := make(map[string]Store)
	for name, mk := range map[string]func() (RowSink, error){
		"mem/wide":       func() (RowSink, error) { return NewMemStoreChunked(chunkRows), nil },
		"mem/compressed": func() (RowSink, error) { return NewMemStoreCompressed(chunkRows), nil },
		"spill/raw":      func() (RowSink, error) { return NewSpillSinkUncompressed(t.TempDir(), chunkRows) },
		"spill/compressed": func() (RowSink, error) {
			return NewSpillSink(t.TempDir(), chunkRows)
		},
	} {
		sink, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			sink.Append(r)
		}
		st, err := sink.Seal()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		out[name] = st
	}
	return out
}

// colVal reads column col of row i from a wide chunk with the same
// unsigned widening the projection views use.
func colVal(c *Chunk, col ColID, i int) uint64 {
	switch col {
	case ColURLHash:
		return c.URLHash[i]
	case ColIP:
		return uint64(uint32(c.IP[i]))
	case ColFQDN:
		return uint64(c.FQDN[i])
	case ColRefFQDN:
		return uint64(c.RefFQDN[i])
	case ColPublisher:
		return uint64(uint32(c.Publisher[i]))
	case ColUser:
		return uint64(uint32(c.User[i]))
	case ColDay:
		return uint64(c.Day[i])
	case ColCountry:
		return uint64(c.Country[i])
	case ColFlags:
		return uint64(c.Flags[i])
	}
	panic("bad col")
}

// TestScanColsMatchesScan is the pushdown equivalence property: for
// every one of the 512 column subsets, over every store backend,
// ScanCols must deliver exactly the values the full-width Scan
// delivers — through Wide, and consistently through the encoded Runs
// and DictView forms.
func TestScanColsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := codecRows(rng, 2000) // adversarial shapes: every scheme appears
	const chunkRows = 512
	for name, st := range projVariants(t, rows, chunkRows) {
		// Full-width reference, chunk by chunk.
		var ref []*Chunk
		for ci := 0; ci < st.NumChunks(); ci++ {
			ref = append(ref, MustChunk(st, ci, nil))
		}
		for cols := ColSet(0); cols <= AllCols; cols++ {
			base := 0
			chunkIdx := 0
			st.ScanCols(cols, func(gotBase int, pc *ProjChunk) {
				if gotBase != base {
					t.Fatalf("%s cols=%09b: base %d, want %d", name, cols, gotBase, base)
				}
				w := ref[chunkIdx]
				if pc.Len() != w.Len() {
					t.Fatalf("%s cols=%09b chunk %d: %d rows, want %d", name, cols, chunkIdx, pc.Len(), w.Len())
				}
				for i, cls := range pc.Class {
					if cls != w.Class[i] {
						t.Fatalf("%s cols=%09b chunk %d row %d: class %v, want %v", name, cols, chunkIdx, i, cls, w.Class[i])
					}
				}
				for col := ColID(0); col < numCols; col++ {
					if !cols.Has(col) {
						continue
					}
					vals := pc.Wide(col)
					for i := range vals {
						if want := colVal(w, col, i); vals[i] != want {
							t.Fatalf("%s cols=%09b chunk %d col %d row %d: %d, want %d",
								name, cols, chunkIdx, col, i, vals[i], want)
						}
					}
				}
				base += pc.Len()
				chunkIdx++
			})
			if chunkIdx != st.NumChunks() {
				t.Fatalf("%s cols=%09b: scanned %d chunks, want %d", name, cols, chunkIdx, st.NumChunks())
			}
		}
		// Encoded-form consistency on the full projection: runs expand to
		// the wide values, dictionaries index to them.
		ci := 0
		st.ScanCols(AllCols, func(_ int, pc *ProjChunk) {
			w := ref[ci]
			for col := ColID(0); col < numCols; col++ {
				row := 0
				for _, r := range pc.Runs(col) {
					if r.Len <= 0 {
						t.Fatalf("%s chunk %d col %d: non-positive run", name, ci, col)
					}
					for k := 0; k < r.Len; k++ {
						if want := colVal(w, col, row+k); r.Value != want {
							t.Fatalf("%s chunk %d col %d row %d: run value %d, want %d", name, ci, col, row+k, r.Value, want)
						}
					}
					row += r.Len
				}
				if row != w.Len() {
					t.Fatalf("%s chunk %d col %d: runs cover %d rows, want %d", name, ci, col, row, w.Len())
				}
				if dict, idx, ok := pc.DictView(col); ok {
					for k := 1; k < len(dict); k++ {
						if dict[k-1] >= dict[k] {
							t.Fatalf("%s chunk %d col %d: dictionary not strictly sorted", name, ci, col)
						}
					}
					for i := range idx {
						if want := colVal(w, col, i); dict[idx[i]] != want {
							t.Fatalf("%s chunk %d col %d row %d: dict value %d, want %d", name, ci, col, i, dict[idx[i]], want)
						}
					}
				}
			}
			ci++
		})
	}
}

// TestZoneMapsBoundColumns checks the seal-time zone maps: every sealed
// chunk of a block-backed store carries min/max that actually bound the
// column values, and distinct counts that never undercount.
func TestZoneMapsBoundColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := codecRows(rng, 2000)
	const chunkRows = 512
	for name, st := range projVariants(t, rows, chunkRows) {
		zs, ok := st.(ZoneMapped)
		if !ok {
			t.Fatalf("%s: store does not expose zone maps", name)
		}
		br := st.(BlockReader)
		var scratch []byte
		for ci := 0; ci < st.NumChunks(); ci++ {
			zm := zs.ZoneMap(ci)
			block, err := br.BlockBytes(ci, &scratch)
			if err != nil {
				t.Fatal(err)
			}
			if block == nil {
				if zm != nil {
					t.Fatalf("%s chunk %d: zone map on a wide resident chunk", name, ci)
				}
				continue
			}
			if zm == nil {
				t.Fatalf("%s chunk %d: sealed block without a zone map", name, ci)
			}
			w := MustChunk(st, ci, nil)
			for col := ColID(0); col < numCols; col++ {
				distinct := make(map[uint64]struct{})
				for i := 0; i < w.Len(); i++ {
					v := colVal(w, col, i)
					distinct[v] = struct{}{}
					if v < zm.Min[col] || v > zm.Max[col] {
						t.Fatalf("%s chunk %d col %d: value %d outside zone [%d, %d]",
							name, ci, col, v, zm.Min[col], zm.Max[col])
					}
				}
				if d := zm.Distinct[col]; d != 0 && int(d) < len(distinct) {
					t.Fatalf("%s chunk %d col %d: zone distinct %d < actual %d", name, ci, col, d, len(distinct))
				}
			}
			// The persisted section must round-trip to the same zone map.
			persisted, err := BlockZoneMap(block)
			if err != nil {
				t.Fatal(err)
			}
			if persisted == nil {
				t.Fatalf("%s chunk %d: block frame carries no zone-map section", name, ci)
			}
			if *persisted != *zm {
				t.Fatalf("%s chunk %d: persisted zone map %+v != resident %+v", name, ci, *persisted, *zm)
			}
		}
	}
}

// TestScanColsSkipAccounting checks the chunk-skip contract: a kernel
// that returns without loading any column counts the chunk as skipped,
// and a store-wide skip never loads a block.
func TestScanColsSkipAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := randomRows(rng, 1500, 40)
	st, err := func() (Store, error) {
		sink, err := NewSpillSink(t.TempDir(), 256)
		if err != nil {
			return nil, err
		}
		for _, r := range rows {
			sink.Append(r)
		}
		return sink.Seal()
	}()
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	before := ReadScanStats()
	loaded := 0
	st.ScanCols(Cols(ColIP), func(_ int, pc *ProjChunk) {
		if !AnyTracking(pc.Class) {
			return // prune: no column touched
		}
		_ = pc.Wide(ColIP)
		loaded++
	})
	after := ReadScanStats()
	scanned := after.ChunksScanned - before.ChunksScanned
	skipped := after.ChunksSkipped - before.ChunksSkipped
	if scanned != int64(st.NumChunks()) {
		t.Fatalf("scanned %d chunks, want %d", scanned, st.NumChunks())
	}
	if skipped != scanned-int64(loaded) {
		t.Fatalf("skipped %d, want %d (scanned %d, loaded %d)", skipped, scanned-int64(loaded), scanned, loaded)
	}
}

// TestLegacyBlocksDecode pins backward compatibility: blocks framed
// before sections existed (flags==0, no zone map) still decode, still
// restore into a compressed store, and still serve projected scans —
// just without pruning.
func TestLegacyBlocksDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := codecRows(rng, 256)
	c := chunkOf(rows)
	cc := GetCodec()
	cc.noSections = true
	legacy := append([]byte(nil), cc.EncodeBlock(c, true, nil)...)
	cc.noSections = false
	PutCodec(cc)

	if legacy[4] != 0 {
		t.Fatalf("legacy frame flags = %#x, want 0", legacy[4])
	}
	zm, err := BlockZoneMap(legacy)
	if err != nil {
		t.Fatalf("BlockZoneMap on legacy frame: %v", err)
	}
	if zm != nil {
		t.Fatal("legacy frame reports a zone map")
	}
	wide := &Chunk{}
	if err := DecodeBlockInto(legacy, len(rows), wide); err != nil {
		t.Fatalf("legacy frame decode: %v", err)
	}
	wide.Class = make([]Class, len(rows))
	chunksEqual(t, wide, c, len(rows))

	// A checkpoint of legacy blocks restores and scans projected.
	st := NewMemStoreCompressed(256)
	if err := st.RestoreChunk(legacy, c.Class); err != nil {
		t.Fatal(err)
	}
	if st.ZoneMap(0) != nil {
		t.Fatal("restored legacy chunk grew a zone map")
	}
	st.ScanCols(Cols(ColIP), func(_ int, pc *ProjChunk) {
		if pc.Zone != nil {
			t.Fatal("projected scan reports a zone map on a legacy chunk")
		}
		ips := pc.Wide(ColIP)
		for i := range ips {
			if want := uint64(uint32(c.IP[i])); ips[i] != want {
				t.Fatalf("row %d: IP %d, want %d", i, ips[i], want)
			}
		}
	})
}

// TestPushdownModeResolution pins the tri-state: Auto follows the
// store's block-serving capability, On and Off override it.
func TestPushdownModeResolution(t *testing.T) {
	rows := randomRows(rand.New(rand.NewSource(3)), 100, 10)
	wide := NewMemStoreChunked(64)
	comp := NewMemStoreCompressed(64)
	for _, r := range rows {
		wide.Append(r)
		comp.Append(r)
	}
	cases := []struct {
		name string
		st   Store
		mode PushdownMode
		want bool
	}{
		{"auto/wide", wide, PushdownAuto, false},
		{"auto/compressed", comp, PushdownAuto, true},
		{"on/wide", wide, PushdownOn, true},
		{"off/compressed", comp, PushdownOff, false},
	}
	for _, tc := range cases {
		ds := &Dataset{Store: tc.st, Pushdown: tc.mode}
		if got := ds.PushdownEnabled(); got != tc.want {
			t.Errorf("%s: PushdownEnabled() = %v, want %v", tc.name, got, tc.want)
		}
	}
}
