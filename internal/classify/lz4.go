package classify

import (
	"encoding/binary"
	"errors"
)

// This file implements the codec's generic byte-stream stage: an
// LZ4-style block compressor in pure Go. The format is the classic
// token stream — [token: 4-bit literal length | 4-bit match length]
// [length extensions] [literals] [2-byte little-endian offset] [match
// length extensions] — with a 4-byte minimum match and offsets up to
// 64 KiB. The encoder finds matches with a hash-chain over 4-byte
// prefixes; the decoder is hardened for adversarial input: every
// length and offset is validated against the declared output size
// before any byte moves, so forged streams error out instead of
// panicking or over-allocating (the output buffer is sized by the
// caller from a validated cap, never from the stream itself).

const (
	lzMinMatch   = 4     // shortest encodable match
	lzMaxOffset  = 65535 // 2-byte offsets
	lzLastBytes  = 5     // final bytes are always literals
	lzMatchLimit = 12    // no match may start this close to the end
	lzHashBits   = 14
	lzHashLen    = 1 << lzHashBits
	lzChainDepth = 12 // candidate positions examined per match attempt
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

// appendLzLen emits the length-extension bytes for a run whose first 15
// went into the token nibble: rem = run - 15, as 255-terminated bytes.
// A negative rem (run < 15, fully in the nibble) emits nothing.
func appendLzLen(dst []byte, rem int) []byte {
	for ; rem >= 0; rem -= 255 {
		if rem >= 255 {
			dst = append(dst, 255)
		} else {
			dst = append(dst, byte(rem))
		}
	}
	return dst
}

// lzCompress appends the compressed form of src to dst and returns the
// extended slice, or nil when src is incompressible (the stream would
// not be smaller than src). htab and chain are caller scratch: htab
// needs lzHashLen entries, chain len(src).
func lzCompress(src []byte, dst []byte, htab, chain []int32) []byte {
	if len(src) < lzMatchLimit+lzMinMatch {
		return nil
	}
	limit := len(dst) + len(src) - 1 // emit at most len(src)-1 bytes
	for i := range htab[:lzHashLen] {
		htab[i] = -1
	}
	chain = chain[:len(src)]

	mfLimit := len(src) - lzMatchLimit
	matchEnd := len(src) - lzLastBytes
	s, anchor := 0, 0
	for s < mfLimit {
		v := binary.LittleEndian.Uint32(src[s:])
		h := lzHash(v)
		bestLen, bestPos := 0, -1
		cand := htab[h]
		for depth := 0; cand >= 0 && depth < lzChainDepth; depth++ {
			if s-int(cand) > lzMaxOffset {
				break
			}
			if binary.LittleEndian.Uint32(src[cand:]) == v {
				l := lzMinMatch
				for s+l < matchEnd && src[int(cand)+l] == src[s+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestPos = l, int(cand)
				}
			}
			cand = chain[cand]
		}
		chain[s] = htab[h]
		htab[h] = int32(s)
		if bestLen < lzMinMatch {
			s++
			continue
		}

		// Emit literals [anchor,s) then the match.
		litLen := s - anchor
		ml := bestLen - lzMinMatch
		token := byte(0)
		if litLen >= 15 {
			token = 15 << 4
		} else {
			token = byte(litLen) << 4
		}
		if ml >= 15 {
			token |= 15
		} else {
			token |= byte(ml)
		}
		dst = append(dst, token)
		dst = appendLzLen(dst, litLen-15)
		dst = append(dst, src[anchor:s]...)
		off := s - bestPos
		dst = append(dst, byte(off), byte(off>>8))
		dst = appendLzLen(dst, ml-15)
		if len(dst) >= limit {
			return nil
		}

		// Index the interior of the match (every other position) so
		// later repeats of its content remain findable — the extra
		// inserts buy ratio for the templated cascade patterns at half
		// the insertion cost of full indexing.
		for p := s + 2; p < s+bestLen && p < mfLimit; p += 2 {
			hp := lzHash(binary.LittleEndian.Uint32(src[p:]))
			chain[p] = htab[hp]
			htab[hp] = int32(p)
		}
		s += bestLen
		anchor = s
	}

	// Tail literals.
	litLen := len(src) - anchor
	token := byte(0)
	if litLen >= 15 {
		token = 15 << 4
	} else {
		token = byte(litLen) << 4
	}
	dst = append(dst, token)
	dst = appendLzLen(dst, litLen-15)
	dst = append(dst, src[anchor:]...)
	if len(dst) >= limit {
		return nil
	}
	return dst
}

var (
	errLZCorrupt = errors.New("classify: corrupt lz4 block")
)

// lzDecompress decompresses src into dst, which the caller has sized
// (len(dst) = the declared, already-validated output size). Every
// read and write is bounds-checked against the declared size; any
// mismatch — truncated input, forged lengths, offsets beyond the
// produced output, trailing garbage — returns an error.
func lzDecompress(src []byte, dst []byte) error {
	si, di := 0, 0
	for {
		if si >= len(src) {
			return errLZCorrupt
		}
		token := src[si]
		si++

		litLen := int(token >> 4)
		if litLen == 15 {
			for {
				if si >= len(src) {
					return errLZCorrupt
				}
				b := src[si]
				si++
				litLen += int(b)
				if litLen > len(dst)-di {
					return errLZCorrupt
				}
				if b != 255 {
					break
				}
			}
		}
		if litLen > len(src)-si || litLen > len(dst)-di {
			return errLZCorrupt
		}
		copy(dst[di:di+litLen], src[si:si+litLen])
		si += litLen
		di += litLen

		if si == len(src) {
			// Stream may end after a literal run — but only exactly at
			// the declared output size.
			if di != len(dst) {
				return errLZCorrupt
			}
			return nil
		}

		if len(src)-si < 2 {
			return errLZCorrupt
		}
		off := int(binary.LittleEndian.Uint16(src[si:]))
		si += 2
		if off == 0 || off > di {
			return errLZCorrupt
		}
		matchLen := int(token&15) + lzMinMatch
		if token&15 == 15 {
			for {
				if si >= len(src) {
					return errLZCorrupt
				}
				b := src[si]
				si++
				matchLen += int(b)
				if matchLen > len(dst)-di {
					return errLZCorrupt
				}
				if b != 255 {
					break
				}
			}
		}
		if matchLen > len(dst)-di {
			return errLZCorrupt
		}
		if off >= matchLen {
			copy(dst[di:di+matchLen], dst[di-off:])
		} else {
			// Overlapping match: byte-wise forward copy replicates the
			// period, which is the format's intent.
			for k := 0; k < matchLen; k++ {
				dst[di+k] = dst[di-off+k]
			}
		}
		di += matchLen
	}
}
