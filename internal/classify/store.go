package classify

import (
	"fmt"
	"sync"

	"crossborder/internal/netsim"
)

// DefaultChunkRows is the row capacity of one columnar chunk. At ~33
// bytes of column data per row a chunk is ~half a megabyte: large
// enough that per-chunk overhead (one disk read, one decode, one
// goroutine hand-off) vanishes against the scan, small enough that a
// spilled dataset needs only a few chunks resident at a time.
const DefaultChunkRows = 1 << 14

// RowWidthBytes is the wide (struct-of-arrays) column width of one row:
// 8 (URLHash) + 4 (IP) + 4 (FQDN) + 4 (RefFQDN) + 4 (Publisher) +
// 4 (User) + 2 (Day) + 1 (Country) + 1 (Flags) + 1 (Class). Footprint
// accounting uses it as the raw-equivalent size of a row, the yardstick
// compressed blocks are measured against.
const RowWidthBytes = 33

// Chunk is one fixed-capacity columnar (struct-of-arrays) block of
// rows. All column slices share the same length. The Class column is
// special: it always aliases the store's resident class storage, so
// writes to it through any loaded Chunk are writes to the store (the
// semi-stage fixpoint relies on this to reclassify rows without
// rewriting spilled chunks).
type Chunk struct {
	URLHash   []uint64
	IP        []netsim.IP
	FQDN      []uint32
	RefFQDN   []uint32
	Publisher []int32
	User      []int32
	Day       []uint16
	Country   []uint8
	Flags     []uint8
	Class     []Class

	// raw is the spill store's block-read scratch, reused across loads
	// into this buffer so a chunk-wise scan reads the whole file with a
	// handful of persistent allocations.
	raw []byte
	// cc is the lazily attached codec scratch; a buffer reused across
	// chunk loads reuses one codec's dictionaries and tables.
	cc *ChunkCodec
}

// Len returns the number of rows in the chunk.
func (c *Chunk) Len() int { return len(c.Class) }

// Row gathers row i of the chunk back into array-of-structs form.
func (c *Chunk) Row(i int) Row {
	return Row{
		URLHash:   c.URLHash[i],
		IP:        c.IP[i],
		FQDN:      c.FQDN[i],
		RefFQDN:   c.RefFQDN[i],
		Publisher: c.Publisher[i],
		User:      c.User[i],
		Day:       c.Day[i],
		Country:   c.Country[i],
		Flags:     c.Flags[i],
		Class:     c.Class[i],
	}
}

// appendRow scatters one row into the chunk's columns.
func (c *Chunk) appendRow(r Row) {
	c.URLHash = append(c.URLHash, r.URLHash)
	c.IP = append(c.IP, r.IP)
	c.FQDN = append(c.FQDN, r.FQDN)
	c.RefFQDN = append(c.RefFQDN, r.RefFQDN)
	c.Publisher = append(c.Publisher, r.Publisher)
	c.User = append(c.User, r.User)
	c.Day = append(c.Day, r.Day)
	c.Country = append(c.Country, r.Country)
	c.Flags = append(c.Flags, r.Flags)
	c.Class = append(c.Class, r.Class)
}

// grow preallocates every column to capacity n.
func (c *Chunk) grow(n int) {
	c.URLHash = make([]uint64, 0, n)
	c.IP = make([]netsim.IP, 0, n)
	c.FQDN = make([]uint32, 0, n)
	c.RefFQDN = make([]uint32, 0, n)
	c.Publisher = make([]int32, 0, n)
	c.User = make([]int32, 0, n)
	c.Day = make([]uint16, 0, n)
	c.Country = make([]uint8, 0, n)
	c.Flags = make([]uint8, 0, n)
	c.Class = make([]Class, 0, n)
}

// reset truncates every column to length n (capacity preserved),
// leaving the Class alias to be set by the loader.
func (c *Chunk) reset(n int) {
	if cap(c.URLHash) < n {
		c.URLHash = make([]uint64, n)
		c.IP = make([]netsim.IP, n)
		c.FQDN = make([]uint32, n)
		c.RefFQDN = make([]uint32, n)
		c.Publisher = make([]int32, n)
		c.User = make([]int32, n)
		c.Day = make([]uint16, n)
		c.Country = make([]uint8, n)
		c.Flags = make([]uint8, n)
		return
	}
	c.URLHash = c.URLHash[:n]
	c.IP = c.IP[:n]
	c.FQDN = c.FQDN[:n]
	c.RefFQDN = c.RefFQDN[:n]
	c.Publisher = c.Publisher[:n]
	c.User = c.User[:n]
	c.Day = c.Day[:n]
	c.Country = c.Country[:n]
	c.Flags = c.Flags[:n]
}

// chunkPool recycles decode buffers across scans so chunk-wise readers
// of compressed or spilled stores stay allocation-flat: Dataset.Scan,
// EachRow, core.Analyze workers and the fixpoint shards all draw their
// scratch from here.
var chunkPool = sync.Pool{New: func() any { return new(Chunk) }}

// GetChunk borrows a reusable chunk decode buffer from the pool.
func GetChunk() *Chunk { return chunkPool.Get().(*Chunk) }

// PutChunk returns a decode buffer to the pool. The Class alias is
// dropped so pooled buffers never pin a store's resident class column.
func PutChunk(c *Chunk) {
	c.Class = nil
	chunkPool.Put(c)
}

// Store is the read side of a sealed row store: a sequence of columnar
// chunks. Implementations must support concurrent Chunk calls with
// distinct bufs (the parallel scans in core.Analyze and the sharded
// semi-stage fixpoint rely on this). The Class column returned by both
// Chunk and Classes is resident and shared: a write through one view is
// seen by every other.
type Store interface {
	// Len returns the total number of rows.
	Len() int
	// NumChunks returns the number of chunks. Every chunk except the
	// last holds exactly ChunkRows rows.
	NumChunks() int
	// ChunkRows returns the fixed per-chunk row capacity.
	ChunkRows() int
	// Chunk returns chunk i. buf, when non-nil, may be reused as the
	// decode target; stores holding resident chunks ignore it and
	// return the resident chunk directly. The returned chunk is valid
	// until buf is reused. Decode and read failures (a lost spill
	// file, a corrupt block) are reported as errors, never panics.
	Chunk(i int, buf *Chunk) (*Chunk, error)
	// Classes returns the resident, mutable class column of chunk i
	// without loading the spilled columns.
	Classes(i int) []Class
	// ScanCols walks the store chunk by chunk through the projection
	// path: fn receives a ProjChunk whose zone map and resident class
	// column are available immediately and whose spilled columns load
	// lazily, in encoded form where profitable. cols declares the
	// projection the kernel intends to touch.
	ScanCols(cols ColSet, fn func(base int, pc *ProjChunk))
	// Footprint reports the store's memory and encoding accounting.
	Footprint() Footprint
	// Close releases any resources backing the store (spill files).
	// The store must not be used afterwards.
	Close() error
}

// MustChunk loads chunk i or panics. The scan pipelines use it: they
// only read stores this process wrote moments earlier, so a decode
// failure means the environment lost the backing data under us and no
// caller can do better than fail loudly. Paths that face untrusted or
// long-lived storage call Store.Chunk directly and handle the error.
func MustChunk(st Store, i int, buf *Chunk) *Chunk {
	c, err := st.Chunk(i, buf)
	if err != nil {
		panic(fmt.Sprintf("classify: load chunk %d: %v", i, err))
	}
	return c
}

// RowSink is the write side: the collector merge streams rows into a
// sink, then seals it into the Store the Dataset keeps. Append must be
// called from a single goroutine; implementations report deferred I/O
// errors at Seal.
type RowSink interface {
	Append(Row)
	Seal() (Store, error)
}

// MemStore is the default in-memory columnar store. It implements both
// RowSink and Store: Append is usable before Seal, reads any time, so
// tests can build datasets incrementally.
//
// In compressed-resident mode (NewMemStoreCompressed) every chunk that
// fills is immediately encoded through the chunk codec and kept only
// as a compressed block plus its resident class column; the open tail
// chunk stays wide. Reads decode into the caller's buffer. Sealed
// blocks are immutable, which is what lets the live collector's epoch
// snapshots share them by reference instead of copying column slices.
type MemStore struct {
	chunkRows int
	compress  bool
	n         int

	// Wide mode: all chunks resident.
	chunks []*Chunk

	// Compressed mode: sealed blocks + resident classes, plus the open
	// tail chunk (nil until the first append after a seal). zones holds
	// each sealed block's zone map resident (nil entries for blocks
	// restored from checkpoints that predate zone maps); breakdown
	// accumulates the per-scheme encoding census.
	blocks    [][]byte
	classes   [][]Class
	zones     []*ZoneMap
	breakdown EncBreakdown
	open      *Chunk
}

// NewMemStore returns an empty in-memory columnar store with the
// default chunk size.
func NewMemStore() *MemStore { return &MemStore{chunkRows: DefaultChunkRows} }

// NewMemStoreChunked returns an empty in-memory store with a custom
// chunk size (tests use small chunks to exercise multi-chunk paths).
func NewMemStoreChunked(chunkRows int) *MemStore {
	if chunkRows < 1 {
		chunkRows = DefaultChunkRows
	}
	return &MemStore{chunkRows: chunkRows}
}

// NewMemStoreCompressed returns an empty in-memory store in
// compressed-resident mode: full chunks are kept as codec blocks (the
// class column stays wide and mutable), cutting resident memory
// severalfold at the cost of a decode per chunk read. chunkRows <= 0
// selects DefaultChunkRows.
func NewMemStoreCompressed(chunkRows int) *MemStore {
	if chunkRows < 1 {
		chunkRows = DefaultChunkRows
	}
	return &MemStore{chunkRows: chunkRows, compress: true}
}

// StoreOf builds an in-memory store holding the given rows.
func StoreOf(rows ...Row) *MemStore {
	st := NewMemStore()
	for _, r := range rows {
		st.Append(r)
	}
	return st
}

// Compressed reports whether the store runs in compressed-resident
// mode.
func (st *MemStore) Compressed() bool { return st.compress }

// Append implements RowSink.
func (st *MemStore) Append(r Row) {
	if st.compress {
		if st.open == nil {
			st.open = &Chunk{}
			st.open.grow(st.chunkRows)
		}
		st.open.appendRow(r)
		st.n++
		if st.open.Len() == st.chunkRows {
			st.sealOpen()
		}
		return
	}
	if len(st.chunks) == 0 || st.chunks[len(st.chunks)-1].Len() == st.chunkRows {
		c := &Chunk{}
		c.grow(st.chunkRows)
		st.chunks = append(st.chunks, c)
	}
	st.chunks[len(st.chunks)-1].appendRow(r)
	st.n++
}

// sealOpen encodes the full open chunk into a compressed block,
// retains its class column, and drops the wide columns. The open
// chunk buffer is not reused: epoch snapshots may still hold capped
// views of it, so a fresh buffer is allocated for the next chunk and
// the sealed one is left to the GC once unreferenced.
func (st *MemStore) sealOpen() {
	cc := GetCodec()
	st.blocks = append(st.blocks, cc.EncodeBlock(st.open, true, nil))
	zm := cc.EncodedZone()
	st.zones = append(st.zones, &zm)
	tags, sizes, zoneBytes := cc.EncodedColStats()
	st.breakdown.addBlock(st.open.Len(), tags, sizes, zoneBytes)
	PutCodec(cc)
	st.classes = append(st.classes, st.open.Class)
	st.open = nil
}

// Seal implements RowSink. A MemStore is its own sealed Store.
func (st *MemStore) Seal() (Store, error) { return st, nil }

// Len implements Store.
func (st *MemStore) Len() int { return st.n }

// NumChunks implements Store.
func (st *MemStore) NumChunks() int {
	if st.compress {
		n := len(st.blocks)
		if st.open != nil && st.open.Len() > 0 {
			n++
		}
		return n
	}
	return len(st.chunks)
}

// ChunkRows implements Store.
func (st *MemStore) ChunkRows() int { return st.chunkRows }

// SealedBlocks returns the number of compressed sealed chunks (0 in
// wide mode). The epoch snapshot builder shares those blocks by
// reference.
func (st *MemStore) SealedBlocks() int { return len(st.blocks) }

// Block returns sealed compressed block i. The returned slice is
// immutable; callers may retain it indefinitely.
func (st *MemStore) Block(i int) []byte { return st.blocks[i] }

// Chunk implements Store. Wide chunks are returned resident (buf
// ignored); compressed sealed chunks decode into buf, allocating one
// when nil.
func (st *MemStore) Chunk(i int, buf *Chunk) (*Chunk, error) {
	if !st.compress {
		return st.chunks[i], nil
	}
	if i >= len(st.blocks) {
		return st.open, nil
	}
	if buf == nil {
		buf = &Chunk{}
	}
	if err := buf.codec().DecodeBlock(st.blocks[i], len(st.classes[i]), buf); err != nil {
		return nil, fmt.Errorf("classify: decode resident block %d: %w", i, err)
	}
	buf.Class = st.classes[i]
	return buf, nil
}

// Classes implements Store.
func (st *MemStore) Classes(i int) []Class {
	if st.compress {
		if i < len(st.classes) {
			return st.classes[i]
		}
		return st.open.Class
	}
	return st.chunks[i].Class
}

// Close implements Store; in-memory stores hold no external resources.
func (st *MemStore) Close() error { return nil }

// ScanCols implements Store.
func (st *MemStore) ScanCols(cols ColSet, fn func(base int, pc *ProjChunk)) {
	ScanStoreCols(st, cols, fn)
}

// BlockBytes implements BlockReader: sealed compressed blocks are
// returned resident (scratch unused); wide chunks and the open tail
// report nil so the projection path loads them through Chunk.
func (st *MemStore) BlockBytes(i int, _ *[]byte) ([]byte, error) {
	if st.compress && i < len(st.blocks) {
		return st.blocks[i], nil
	}
	return nil, nil
}

// HasEncodedBlocks implements BlockReader. A wide MemStore reports
// false: its chunks are resident full-width, so the projection path
// would only add copies on top of what Scan reads in place.
func (st *MemStore) HasEncodedBlocks() bool { return st.compress }

// ZoneMap implements ZoneMapped. Wide stores and the open tail chunk
// have none; blocks restored from pre-zone-map checkpoints may yield
// nil entries.
func (st *MemStore) ZoneMap(i int) *ZoneMap {
	if i < len(st.zones) {
		return st.zones[i]
	}
	return nil
}

// Footprint is the memory accounting of a store: how many bytes of row
// data are resident wide, how many live as compressed codec blocks, and
// how many chunks are sealed. RawEquivalentBytes (Rows*RowWidthBytes)
// is what the same rows would occupy fully wide — the compression
// yardstick.
type Footprint struct {
	Rows            int
	ResidentBytes   int64 // wide columns (including resident class columns)
	CompressedBytes int64 // sealed codec blocks
	SealedChunks    int
	// Breakdown is the per-scheme encoding census of the sealed
	// blocks (zero-valued for wide stores).
	Breakdown EncBreakdown
}

// EncBreakdown is the per-scheme encoding census of a store's sealed
// blocks: the column-rows (rows × columns) each scheme covers, the
// framed bytes it produced, the column-rows that additionally went
// through the LZ4 wrapper, and the bytes spent on zone-map sections.
type EncBreakdown struct {
	SchemeRows   [numSchemes]int64
	SchemeBytes  [numSchemes]int64
	LZ4Rows      int64
	ZoneMapBytes int64
}

// SchemeName returns the display name of encoding scheme index s
// (the EncBreakdown array index space).
func SchemeName(s int) string {
	switch s {
	case colRaw:
		return "raw"
	case colRLE:
		return "rle"
	case colDelta:
		return "delta"
	case colDict:
		return "dict"
	case colDictHuff:
		return "dictHuff"
	default:
		return "unknown"
	}
}

// addBlock folds one encoded block's column stats into the census.
func (b *EncBreakdown) addBlock(rows int, tags [numCols]byte, sizes [numCols]int, zoneBytes int) {
	for col, tag := range tags {
		base := int(tag &^ colLZ4)
		if base >= numSchemes {
			continue
		}
		b.SchemeRows[base] += int64(rows)
		b.SchemeBytes[base] += int64(sizes[col])
		if tag&colLZ4 != 0 {
			b.LZ4Rows += int64(rows)
		}
	}
	b.ZoneMapBytes += int64(zoneBytes)
}

// add merges another census into b (snapshot aggregation).
func (b *EncBreakdown) add(o EncBreakdown) {
	for i := 0; i < numSchemes; i++ {
		b.SchemeRows[i] += o.SchemeRows[i]
		b.SchemeBytes[i] += o.SchemeBytes[i]
	}
	b.LZ4Rows += o.LZ4Rows
	b.ZoneMapBytes += o.ZoneMapBytes
}

// RawEquivalentBytes returns the fully-wide size of the stored rows.
func (f Footprint) RawEquivalentBytes() int64 { return int64(f.Rows) * RowWidthBytes }

// Footprint reports the store's current memory accounting. In wide mode
// everything is resident; in compressed-resident mode sealed chunks
// count their block bytes plus the one-byte-per-row class column that
// stays wide and mutable, and the open tail chunk counts fully wide.
func (st *MemStore) Footprint() Footprint {
	fp := Footprint{Rows: st.n, SealedChunks: len(st.blocks), Breakdown: st.breakdown}
	if !st.compress {
		for _, c := range st.chunks {
			fp.ResidentBytes += int64(c.Len()) * RowWidthBytes
		}
		return fp
	}
	for i, b := range st.blocks {
		fp.CompressedBytes += int64(len(b))
		fp.ResidentBytes += int64(len(st.classes[i])) // resident class column
	}
	if st.open != nil {
		fp.ResidentBytes += int64(st.open.Len()) * RowWidthBytes
	}
	return fp
}
