package classify

import (
	"fmt"

	"crossborder/internal/geodata"
	"crossborder/internal/webgraph"
)

// This file is the checkpoint-restore side of the dataset engine: the
// pieces a durable collector (internal/ingest) uses to rebuild a live
// dataset from a checkpoint — interner snapshot in, sealed chunk
// blocks in, merge/fixpoint state in — such that subsequent appends
// and fixpoint rounds behave byte-for-byte as if the process had never
// restarted.

// Strings returns the interned strings in id order as an immutable
// prefix share (ids are append-only, so the prefix never mutates).
// Checkpoints persist this; NewInternerFromStrings inverts it.
func (in *Interner) Strings() []string { return in.strs[:len(in.strs):len(in.strs)] }

// NewInternerFromStrings rebuilds an interner from a Strings()
// snapshot: strs[i] gets id i, so every persisted row's FQDN ids
// resolve to the same strings they named when checkpointed.
func NewInternerFromStrings(strs []string) (*Interner, error) {
	if len(strs) == 0 || strs[0] != "" {
		return nil, fmt.Errorf("classify: interner snapshot must start with the empty string (id 0)")
	}
	in := &Interner{ids: make(map[string]uint32, len(strs)), strs: make([]string, 0, len(strs))}
	for i, s := range strs {
		if _, dup := in.ids[s]; dup {
			return nil, fmt.Errorf("classify: interner snapshot repeats %q", s)
		}
		in.ids[s] = uint32(i)
		in.strs = append(in.strs, s)
	}
	return in, nil
}

// RestoreChunk appends one checkpointed chunk — a framed codec block
// plus its class column — to the store. Chunks must arrive in order on
// a store that has seen no Append, and only the final restored chunk
// may be partial (every checkpoint satisfies both by construction).
// The store keeps full chunks in its native representation (block
// reference in compressed mode, decoded wide columns otherwise); a
// partial final chunk is decoded into the open/appendable tail either
// way, with full chunkRows capacity so later appends never reallocate
// column arrays out from under epoch snapshots.
func (st *MemStore) RestoreChunk(block []byte, classes []Class) error {
	rows := len(classes)
	if rows == 0 || rows > st.chunkRows {
		return fmt.Errorf("classify: restore chunk of %d rows into a %d-row store", rows, st.chunkRows)
	}
	if st.n%st.chunkRows != 0 {
		return fmt.Errorf("classify: restore after a partial chunk (%d rows so far)", st.n)
	}
	cls := make([]Class, rows, st.chunkRows)
	copy(cls, classes)
	if st.compress && rows == st.chunkRows {
		st.blocks = append(st.blocks, append([]byte(nil), block...))
		st.classes = append(st.classes, cls)
		// Re-derive the sealed-chunk metadata from the block itself.
		// Checkpoints written before zone maps existed yield a nil
		// zone (pruning disabled for that chunk, reads unaffected);
		// the validity of the frame is checked on first read as before.
		if brows, tags, sizes, zm, zoneBytes, err := inspectBlock(block); err == nil && brows == rows {
			st.zones = append(st.zones, zm)
			st.breakdown.addBlock(rows, tags, sizes, zoneBytes)
		} else {
			st.zones = append(st.zones, nil)
		}
		st.n += rows
		return nil
	}
	c := &Chunk{}
	c.grow(st.chunkRows)
	cc := GetCodec()
	defer PutCodec(cc)
	if err := cc.DecodeBlock(block, rows, c); err != nil {
		return fmt.Errorf("classify: restore chunk %d: %w", st.n/st.chunkRows, err)
	}
	c.Class = cls
	if st.compress {
		st.open = c
	} else {
		st.chunks = append(st.chunks, c)
	}
	st.n += rows
	return nil
}

// EncodeChunk renders chunk i of any store as a framed codec block
// (always through the compressing encoder), the checkpoint
// representation of a chunk. Stores already holding the chunk as a
// sealed block return that block by reference instead of re-encoding.
func EncodeChunk(st Store, i int) ([]byte, error) {
	if ms, ok := st.(*MemStore); ok && ms.compress && i < len(ms.blocks) {
		return ms.blocks[i], nil
	}
	buf := GetChunk()
	defer PutChunk(buf)
	c, err := st.Chunk(i, buf)
	if err != nil {
		return nil, err
	}
	cc := GetCodec()
	defer PutCodec(cc)
	return cc.EncodeBlock(c, true, nil), nil
}

// NewMergerOver resumes a merger over a restored dataset: the country
// and publisher id assignments replay from the dataset's own tables,
// so the next appended row receives exactly the id it would have
// received had the original merger never stopped.
func NewMergerOver(ds *Dataset, sink RowSink) *Merger {
	m := &Merger{
		ds:         ds,
		sink:       sink,
		countryIdx: make(map[geodata.Country]uint8, len(ds.Countries)),
		pubIdx:     make(map[*webgraph.Publisher]int32, len(ds.Publishers)),
	}
	for i, cc := range ds.Countries {
		m.countryIdx[cc] = uint8(i)
	}
	for i, p := range ds.Publishers {
		m.pubIdx[p] = int32(i)
	}
	return m
}

// Frontier exports the carried fixpoint state for checkpointing: the
// FQDN ids currently in the LTF (ascending) and the candidate rows
// still eligible to convert (ascending, as maintained). Settled row
// count is the dataset length the last Extend observed; the caller
// persists that alongside.
func (ls *LiveSemi) Frontier() (ltf []uint32, cand []int) {
	for id, in := range ls.inLTF {
		if in {
			ltf = append(ltf, uint32(id))
		}
	}
	return ltf, append([]int(nil), ls.cand...)
}

// SettledRows returns the dataset length as of the last Extend.
func (ls *LiveSemi) SettledRows() int { return ls.rows }

// Restore seeds a fresh LiveSemi with a checkpointed frontier, making
// its next Extend behave exactly as the original's would have: rows
// rows are considered settled, ltf names the LTF membership, cand the
// still-convertible settled rows.
func (ls *LiveSemi) Restore(rows int, ltf []uint32, cand []int) error {
	n := ls.ds.FQDNs.Len()
	ls.inLTF = make([]bool, n)
	for _, id := range ltf {
		if int(id) >= n {
			return fmt.Errorf("classify: LTF id %d outside the %d-entry interner", id, n)
		}
		ls.inLTF[id] = true
	}
	if st := ls.ds.Store; st != nil && rows > st.Len() {
		return fmt.Errorf("classify: frontier claims %d settled rows, store has %d", rows, st.Len())
	}
	for _, g := range cand {
		if g < 0 || g >= rows {
			return fmt.Errorf("classify: candidate row %d outside the %d settled rows", g, rows)
		}
	}
	ls.rows = rows
	ls.cand = append(ls.cand[:0], cand...)
	return nil
}
