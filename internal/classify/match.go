package classify

// acMatcher is a dense Aho-Corasick automaton over the lowercase ASCII
// letter alphabet, built once over Keywords. It replaces the stage-3
// strings.ToLower + strings.Contains loop with a single pass over the URL
// bytes: no lowered copy is allocated and every keyword is checked
// simultaneously. Non-letter bytes reset the automaton to the root, which
// is exact for keyword vocabularies made of letters only.
type acMatcher struct {
	// next[state][letter] is the goto function with failure transitions
	// pre-resolved into it.
	next [][26]int32
	// out[state] reports whether any keyword ends at (a suffix of) state.
	out []bool
}

// keywordAC is built at init over the package vocabulary. Mutating
// Keywords after init does not re-train the matcher.
var keywordAC = buildAC(Keywords)

// buildAC constructs the automaton. Patterns must be non-empty, lowercase
// ASCII letters; buildAC panics otherwise, since the vocabulary is a
// compile-time constant of this package.
func buildAC(patterns []string) *acMatcher {
	m := &acMatcher{next: make([][26]int32, 1), out: make([]bool, 1)}
	// Phase 1: trie.
	for _, p := range patterns {
		if p == "" {
			panic("classify: empty keyword")
		}
		state := int32(0)
		for i := 0; i < len(p); i++ {
			c := p[i]
			if c < 'a' || c > 'z' {
				panic("classify: keyword " + p + " is not lowercase letters")
			}
			nxt := m.next[state][c-'a']
			if nxt == 0 {
				nxt = int32(len(m.next))
				m.next = append(m.next, [26]int32{})
				m.out = append(m.out, false)
				m.next[state][c-'a'] = nxt
			}
			state = nxt
		}
		m.out[state] = true
	}
	// Phase 2: BFS failure links, folded directly into next and out.
	fail := make([]int32, len(m.next))
	queue := make([]int32, 0, len(m.next))
	for c := 0; c < 26; c++ {
		if s := m.next[0][c]; s != 0 {
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		if m.out[fail[s]] {
			m.out[s] = true
		}
		for c := 0; c < 26; c++ {
			t := m.next[s][c]
			if t != 0 {
				fail[t] = m.next[fail[s]][c]
				queue = append(queue, t)
			} else {
				m.next[s][c] = m.next[fail[s]][c]
			}
		}
	}
	return m
}

// scan feeds one string fragment through the automaton from state,
// returning the new state and whether a keyword completed. Uppercase
// ASCII is folded on the fly; any non-letter byte resets to the root.
func (m *acMatcher) scan(state int32, s string) (int32, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c < 'a' || c > 'z' {
			state = 0
			continue
		}
		state = m.next[state][c-'a']
		if m.out[state] {
			return state, true
		}
	}
	return state, false
}

// matchParts reports whether the concatenation of the fragments contains
// a keyword. Carrying the automaton state across fragment boundaries
// makes this exactly equivalent to scanning the concatenated string,
// without building it.
func (m *acMatcher) matchParts(parts ...string) bool {
	state := int32(0)
	for _, p := range parts {
		var hit bool
		if state, hit = m.scan(state, p); hit {
			return true
		}
	}
	return false
}
