package trackerdb

import (
	"testing"
	"time"

	"crossborder/internal/classify"
	"crossborder/internal/netsim"
	"crossborder/internal/pdns"
)

var (
	t0  = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	t1  = time.Date(2017, 10, 1, 0, 0, 0, 0, time.UTC)
	t2  = time.Date(2018, 1, 10, 0, 0, 0, 0, time.UTC)
	out = time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)
)

// makeDS builds a hand-rolled classified dataset:
//
//	tracker-a.ads.com  -> IP 101 (5 tracking requests)
//	sync.dmp.com       -> IP 102 (3 tracking requests)
//	clean.cdn.com      -> IP 201 (2 clean requests)
func makeDS() *classify.Dataset {
	st := classify.NewMemStore()
	ds := &classify.Dataset{FQDNs: classify.NewInterner(), Start: t0, Store: st}
	ds.Countries = append(ds.Countries, "DE")
	addRow := func(fqdn string, ip netsim.IP, class classify.Class, n int) {
		id := ds.FQDNs.ID(fqdn)
		for i := 0; i < n; i++ {
			st.Append(classify.Row{
				FQDN: id, IP: ip, Class: class, Country: 0,
			})
		}
	}
	addRow("tracker-a.ads.com", 101, classify.ClassABP, 5)
	addRow("sync.dmp.com", 102, classify.ClassSemiReferrer, 3)
	addRow("clean.cdn.com", 201, classify.ClassClean, 2)
	return ds
}

func makePDNS() *pdns.DB {
	db := pdns.NewDB()
	// Observed bindings.
	db.ObserveWindow("tracker-a.ads.com", 101, t0, t2)
	db.ObserveWindow("sync.dmp.com", 102, t0, t1)
	// Extra IP for tracker-a the users never saw.
	db.ObserveWindow("tracker-a.ads.com", 103, t1, t2)
	// Shared infrastructure: IP 150 serves many tracking domains.
	for _, f := range []string{
		"sync.dmp.com", "tracker-a.ads.com",
	} {
		db.ObserveWindow(f, 150, t0, t2)
	}
	// Clean domain records must not be pulled in.
	db.ObserveWindow("clean.cdn.com", 201, t0, t2)
	return db
}

func compile(t *testing.T) *Inventory {
	t.Helper()
	return Compile(makeDS(), makePDNS())
}

func TestObservedAndExtraIPs(t *testing.T) {
	inv := compile(t)
	// 101, 102 observed; 103, 150 pDNS-only; 201 excluded (clean).
	if inv.NumIPs() != 4 {
		t.Fatalf("NumIPs = %d, want 4 (IPs: %v)", inv.NumIPs(), inv.IPs())
	}
	if inv.NumObserved() != 2 {
		t.Errorf("NumObserved = %d, want 2", inv.NumObserved())
	}
	if inv.NumExtra() != 2 {
		t.Errorf("NumExtra = %d, want 2", inv.NumExtra())
	}
	if info, ok := inv.Info(101); !ok || !info.Observed || info.Requests != 5 {
		t.Errorf("Info(101) = %+v ok=%v", info, ok)
	}
	if info, ok := inv.Info(103); !ok || info.Observed || info.Requests != 0 {
		t.Errorf("Info(103) = %+v ok=%v", info, ok)
	}
	if _, ok := inv.Info(201); ok {
		t.Error("clean-domain IP must not be in inventory")
	}
}

func TestTrackingFQDNs(t *testing.T) {
	inv := compile(t)
	if !inv.IsTrackingFQDN("tracker-a.ads.com") || !inv.IsTrackingFQDN("sync.dmp.com") {
		t.Error("tracking FQDNs missing")
	}
	if inv.IsTrackingFQDN("clean.cdn.com") {
		t.Error("clean FQDN flagged as tracking")
	}
	if inv.NumTrackingFQDNs() != 2 {
		t.Errorf("NumTrackingFQDNs = %d", inv.NumTrackingFQDNs())
	}
}

func TestWindows(t *testing.T) {
	inv := compile(t)
	w, ok := inv.WindowOf("sync.dmp.com", 102)
	if !ok {
		t.Fatal("window missing")
	}
	if !w.From.Equal(t0) || !w.To.Equal(t1) {
		t.Errorf("window = %+v", w)
	}
	if !w.Covers(t0) || !w.Covers(t1) {
		t.Error("window must cover endpoints")
	}
	if w.Covers(t2) {
		t.Error("window must not cover later time")
	}
	if _, ok := inv.WindowOf("nope", 1); ok {
		t.Error("missing window reported ok")
	}
}

func TestIsTrackingIP(t *testing.T) {
	inv := compile(t)
	// Zero time: membership only.
	if !inv.IsTrackingIP(101, time.Time{}) {
		t.Error("101 must be a tracker IP")
	}
	if inv.IsTrackingIP(201, time.Time{}) {
		t.Error("201 must not be a tracker IP")
	}
	if inv.IsTrackingIP(999, time.Time{}) {
		t.Error("unknown IP must not match")
	}
	// Window-aware: 102's binding expires at t1.
	if !inv.IsTrackingIP(102, t1) {
		t.Error("102 must be valid at t1")
	}
	if inv.IsTrackingIP(102, out) {
		t.Error("102 must be invalid after its window")
	}
	// 103 only active from t1.
	if inv.IsTrackingIP(103, t0) {
		t.Error("103 must be invalid before its window")
	}
	if !inv.IsTrackingIP(103, t2) {
		t.Error("103 must be valid at t2")
	}
}

func TestSharingStats(t *testing.T) {
	inv := compile(t)
	s := inv.Sharing()
	if s.TotalIPs != 4 {
		t.Fatalf("TotalIPs = %d", s.TotalIPs)
	}
	if s.TotalRequests != 8 {
		t.Errorf("TotalRequests = %d", s.TotalRequests)
	}
	// IP 150 serves ads.com and dmp.com -> 2 TLDs; the rest serve 1.
	if s.IPsByTLDCount[2] != 1 {
		t.Errorf("IPsByTLDCount = %v", s.IPsByTLDCount)
	}
	if s.IPsByTLDCount[1] != 3 {
		t.Errorf("IPsByTLDCount[1] = %d", s.IPsByTLDCount[1])
	}
	// All 8 observed requests hit dedicated IPs.
	if got := s.SingleTLDRequestShare(); got != 1.0 {
		t.Errorf("SingleTLDRequestShare = %f", got)
	}
	if got := s.MultiDomainIPShare(); got != 0.25 {
		t.Errorf("MultiDomainIPShare = %f", got)
	}
}

func TestSharedIPs(t *testing.T) {
	inv := compile(t)
	shared := inv.SharedIPs(2)
	if len(shared) != 1 || shared[0].IP != 150 {
		t.Fatalf("SharedIPs(2) = %+v", shared)
	}
	if len(shared[0].TLDs) != 2 {
		t.Errorf("TLDs = %v", shared[0].TLDs)
	}
	if shared[0].Dedicated() {
		t.Error("shared IP reported dedicated")
	}
	if got := inv.SharedIPs(10); len(got) != 0 {
		t.Errorf("SharedIPs(10) = %v", got)
	}
}

func TestIPsSorted(t *testing.T) {
	inv := compile(t)
	ips := inv.IPs()
	for i := 1; i < len(ips); i++ {
		if ips[i-1] >= ips[i] {
			t.Fatal("IPs not sorted")
		}
	}
}

func TestInfoIsCopy(t *testing.T) {
	inv := compile(t)
	a, _ := inv.Info(150)
	if len(a.TLDs) > 0 {
		a.TLDs[0] = "mutated"
	}
	b, _ := inv.Info(150)
	if len(b.TLDs) > 0 && b.TLDs[0] == "mutated" {
		// Note: Info copies the struct but shares slices; mutating the
		// returned slices is not supported. Document by asserting the
		// struct itself is a copy.
		t.Log("slices are shared; struct copied")
	}
	a.Requests = 999
	c, _ := inv.Info(150)
	if c.Requests == 999 {
		t.Error("Info must return a copy of the struct")
	}
}
