// Package trackerdb compiles the tracker IP inventory of §3.3: the IPs
// observed serving tracking flows in the user dataset, augmented with the
// additional addresses passive DNS reveals for the same tracking domains,
// each carrying its (domain, IP) validity window. It also performs the
// IP-sharing analysis (how many registrable domains one IP serves) that
// confirms most tracking IPs are dedicated — and surfaces the small
// population of ad-exchange / cookie-sync IPs serving ten or more domains
// (Figs 4 and 5).
package trackerdb

import (
	"sort"
	"time"

	"crossborder/internal/classify"
	"crossborder/internal/netsim"
	"crossborder/internal/pdns"
	"crossborder/internal/webgraph"
)

// IPInfo aggregates what the inventory knows about one tracker IP.
type IPInfo struct {
	IP netsim.IP
	// Requests is the number of tracking requests the user dataset saw
	// this IP serve (0 for pDNS-only addresses).
	Requests int64
	// Observed marks IPs seen directly in the user dataset; the rest
	// were recovered from passive DNS (the paper's +2.78%).
	Observed bool
	// TLDs is the sorted set of registrable domains the IP serves.
	TLDs []string
	// FQDNs is the sorted set of hostnames the IP serves.
	FQDNs []string
}

// Dedicated reports whether the IP serves a single registrable domain
// (§3.3: ~85% of requests are served by such dedicated IPs).
func (i IPInfo) Dedicated() bool { return len(i.TLDs) == 1 }

// Window is a (FQDN, IP) activity window from passive DNS.
type Window struct {
	From, To time.Time
}

// Covers reports whether t falls inside the window.
func (w Window) Covers(t time.Time) bool {
	return !t.Before(w.From) && !t.After(w.To)
}

// Inventory is the compiled tracker IP database.
type Inventory struct {
	// ips maps every known tracker IP to its aggregate info.
	ips map[netsim.IP]*IPInfo
	// windows maps (fqdn, ip) to the pDNS validity window.
	windows map[windowKey]Window
	// trackingFQDNs is the set of hostnames classified as tracking.
	trackingFQDNs map[string]struct{}
}

type windowKey struct {
	fqdn string
	ip   netsim.IP
}

// Compile builds the inventory from the classified dataset and the
// passive DNS database.
func Compile(ds *classify.Dataset, db *pdns.DB) *Inventory {
	inv := &Inventory{
		ips:           make(map[netsim.IP]*IPInfo),
		windows:       make(map[windowKey]Window),
		trackingFQDNs: make(map[string]struct{}),
	}

	// Pass 1: tracking FQDNs and directly observed IPs with request
	// counts — a chunk-wise columnar scan needing only the class, FQDN
	// and IP columns.
	observe := func(ip netsim.IP, n int64) {
		info := inv.ips[ip]
		if info == nil {
			info = &IPInfo{IP: ip}
			inv.ips[ip] = info
		}
		info.Requests += n
		info.Observed = true
	}
	if ds.PushdownEnabled() {
		// Projection kernel: only FQDN and IP leave the block, chunks
		// with no tracking rows load nothing, and when both columns are
		// dictionary coded the row loop touches small per-dict-id
		// scratch — one interned-string lookup per distinct hostname and
		// one map operation per distinct IP, instead of one per row.
		var fseen []bool
		var icnt []int64
		ds.ScanCols(classify.Cols(classify.ColFQDN, classify.ColIP), func(_ int, pc *classify.ProjChunk) {
			cls := pc.Class
			if !classify.AnyTracking(cls) {
				return
			}
			fdict, fidx, fok := pc.DictView(classify.ColFQDN)
			idict, iidx, iok := pc.DictView(classify.ColIP)
			if fok && iok {
				if cap(fseen) < len(fdict) {
					fseen = make([]bool, len(fdict))
				}
				fseen = fseen[:len(fdict)]
				for i := range fseen {
					fseen[i] = false
				}
				if cap(icnt) < len(idict) {
					icnt = make([]int64, len(idict))
				}
				icnt = icnt[:len(idict)]
				for i := range icnt {
					icnt[i] = 0
				}
				for i, c := range cls {
					if !c.IsTracking() {
						continue
					}
					fseen[fidx[i]] = true
					icnt[iidx[i]]++
				}
				for k, seen := range fseen {
					if seen {
						inv.trackingFQDNs[ds.FQDNs.Str(uint32(fdict[k]))] = struct{}{}
					}
				}
				for k, n := range icnt {
					if n != 0 {
						observe(netsim.IP(idict[k]), n)
					}
				}
				return
			}
			fqdns := pc.Wide(classify.ColFQDN)
			ips := pc.Wide(classify.ColIP)
			for i, c := range cls {
				if !c.IsTracking() {
					continue
				}
				inv.trackingFQDNs[ds.FQDNs.Str(uint32(fqdns[i]))] = struct{}{}
				observe(netsim.IP(ips[i]), 1)
			}
		})
	} else {
		ds.Scan(func(_ int, c *classify.Chunk) {
			for i, cls := range c.Class {
				if !cls.IsTracking() {
					continue
				}
				inv.trackingFQDNs[ds.FQDNs.Str(c.FQDN[i])] = struct{}{}
				observe(c.IP[i], 1)
			}
		})
	}

	// Pass 2: passive DNS completion. Every forward record of a tracking
	// FQDN contributes its IP (possibly new) and its validity window.
	fqdnSets := make(map[netsim.IP]map[string]struct{})
	for fqdn := range inv.trackingFQDNs {
		for _, rec := range db.Forward(fqdn) {
			info := inv.ips[rec.IP]
			if info == nil {
				info = &IPInfo{IP: rec.IP}
				inv.ips[rec.IP] = info
			}
			k := windowKey{fqdn, rec.IP}
			if w, ok := inv.windows[k]; ok {
				if rec.FirstSeen.Before(w.From) {
					w.From = rec.FirstSeen
				}
				if rec.LastSeen.After(w.To) {
					w.To = rec.LastSeen
				}
				inv.windows[k] = w
			} else {
				inv.windows[k] = Window{From: rec.FirstSeen, To: rec.LastSeen}
			}
			set := fqdnSets[rec.IP]
			if set == nil {
				set = make(map[string]struct{})
				fqdnSets[rec.IP] = set
			}
			set[fqdn] = struct{}{}
		}
	}

	// Pass 3: reverse completion — other tracking domains an IP serves
	// (the shared cookie-sync infrastructure shows up here), then
	// finalize the sorted TLD/FQDN sets.
	for ip, info := range inv.ips {
		set := fqdnSets[ip]
		if set == nil {
			set = make(map[string]struct{})
			fqdnSets[ip] = set
		}
		for _, rec := range db.Reverse(ip) {
			if _, isTracking := inv.trackingFQDNs[rec.FQDN]; isTracking {
				set[rec.FQDN] = struct{}{}
			}
		}
		tlds := make(map[string]struct{})
		for f := range set {
			info.FQDNs = append(info.FQDNs, f)
			tlds[webgraph.ETLDPlusOne(f)] = struct{}{}
		}
		for tld := range tlds {
			info.TLDs = append(info.TLDs, tld)
		}
		sort.Strings(info.FQDNs)
		sort.Strings(info.TLDs)
	}
	return inv
}

// NumIPs returns the total number of known tracker IPs.
func (inv *Inventory) NumIPs() int { return len(inv.ips) }

// NumObserved returns the count of IPs seen directly in the user dataset.
func (inv *Inventory) NumObserved() int {
	n := 0
	for _, info := range inv.ips {
		if info.Observed {
			n++
		}
	}
	return n
}

// NumExtra returns the count of pDNS-only IPs (the paper's 806 ≈ +2.78%).
func (inv *Inventory) NumExtra() int { return inv.NumIPs() - inv.NumObserved() }

// Info returns the aggregate info for an IP.
func (inv *Inventory) Info(ip netsim.IP) (IPInfo, bool) {
	info, ok := inv.ips[ip]
	if !ok {
		return IPInfo{}, false
	}
	return *info, true
}

// IPs returns all tracker IPs in ascending order.
func (inv *Inventory) IPs() []netsim.IP {
	out := make([]netsim.IP, 0, len(inv.ips))
	for ip := range inv.ips {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsTrackingFQDN reports whether the hostname was classified as tracking.
func (inv *Inventory) IsTrackingFQDN(fqdn string) bool {
	_, ok := inv.trackingFQDNs[fqdn]
	return ok
}

// NumTrackingFQDNs returns the number of tracking hostnames.
func (inv *Inventory) NumTrackingFQDNs() int { return len(inv.trackingFQDNs) }

// IsTrackingIP reports whether ip belongs to the inventory, and — when a
// non-zero time is given — whether any of its (fqdn, ip) windows covers t.
// This is the predicate the NetFlow scanner uses (§7.2): flows are matched
// against the tracker IP list for the period the binding is valid.
func (inv *Inventory) IsTrackingIP(ip netsim.IP, t time.Time) bool {
	info, ok := inv.ips[ip]
	if !ok {
		return false
	}
	if t.IsZero() {
		return true
	}
	for _, fqdn := range info.FQDNs {
		if w, ok := inv.windows[windowKey{fqdn, ip}]; ok && w.Covers(t) {
			return true
		}
	}
	// Observed IPs without pDNS windows count as valid for the whole
	// study period.
	return len(info.FQDNs) == 0 && info.Observed
}

// WindowOf returns the validity window for a (fqdn, ip) pair.
func (inv *Inventory) WindowOf(fqdn string, ip netsim.IP) (Window, bool) {
	w, ok := inv.windows[windowKey{fqdn, ip}]
	return w, ok
}

// SharingStats is the Fig 4 aggregate: the distribution of registrable
// domains per IP, by IP count and by request volume.
type SharingStats struct {
	// IPsByTLDCount[k] = number of IPs serving exactly k TLDs.
	IPsByTLDCount map[int]int
	// RequestsByTLDCount[k] = tracking requests served by such IPs.
	RequestsByTLDCount map[int]int64
	TotalIPs           int
	TotalRequests      int64
}

// SingleTLDRequestShare returns the fraction of requests served by
// dedicated (single-TLD) IPs — the paper reports ~85%.
func (s SharingStats) SingleTLDRequestShare() float64 {
	if s.TotalRequests == 0 {
		return 0
	}
	return float64(s.RequestsByTLDCount[1]) / float64(s.TotalRequests)
}

// MultiDomainIPShare returns the fraction of IPs serving more than one
// TLD — the paper reports <2%.
func (s SharingStats) MultiDomainIPShare() float64 {
	if s.TotalIPs == 0 {
		return 0
	}
	multi := 0
	for k, n := range s.IPsByTLDCount {
		if k > 1 {
			multi += n
		}
	}
	return float64(multi) / float64(s.TotalIPs)
}

// Sharing computes the Fig 4 distribution.
func (inv *Inventory) Sharing() SharingStats {
	s := SharingStats{
		IPsByTLDCount:      make(map[int]int),
		RequestsByTLDCount: make(map[int]int64),
	}
	for _, info := range inv.ips {
		k := len(info.TLDs)
		if k == 0 {
			k = 1 // observed-only IP: the one domain it was seen serving
		}
		s.IPsByTLDCount[k]++
		s.RequestsByTLDCount[k] += info.Requests
		s.TotalIPs++
		s.TotalRequests += info.Requests
	}
	return s
}

// SharedIPs returns IPs serving at least minDomains registrable domains,
// sorted by descending domain count (Fig 5's population; paper: 114 IPs
// at the >=10 threshold).
func (inv *Inventory) SharedIPs(minDomains int) []IPInfo {
	var out []IPInfo
	for _, info := range inv.ips {
		if len(info.TLDs) >= minDomains {
			out = append(out, *info)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].TLDs) != len(out[j].TLDs) {
			return len(out[i].TLDs) > len(out[j].TLDs)
		}
		return out[i].IP < out[j].IP
	})
	return out
}
