package pdns

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"crossborder/internal/netsim"
)

var base = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)

func TestObserveAndForward(t *testing.T) {
	db := NewDB()
	db.Observe("a.example.com", 2, base)
	db.Observe("a.example.com", 1, base.Add(time.Hour))
	rs := db.Forward("a.example.com")
	if len(rs) != 2 {
		t.Fatalf("forward records = %d", len(rs))
	}
	if rs[0].IP != 1 || rs[1].IP != 2 {
		t.Errorf("records not sorted by IP: %+v", rs)
	}
	if db.Forward("missing") == nil {
		// empty slice is fine, nil is fine; just must not panic
		_ = rs
	}
}

func TestWindowWidening(t *testing.T) {
	db := NewDB()
	mid := base.Add(30 * 24 * time.Hour)
	late := base.Add(60 * 24 * time.Hour)
	db.Observe("a.example.com", 1, mid)
	db.Observe("a.example.com", 1, base)
	db.Observe("a.example.com", 1, late)
	from, to, ok := db.Window("a.example.com", 1)
	if !ok {
		t.Fatal("window missing")
	}
	if !from.Equal(base) || !to.Equal(late) {
		t.Errorf("window = [%v, %v]", from, to)
	}
	rs := db.Forward("a.example.com")
	if rs[0].Count != 3 {
		t.Errorf("count = %d, want 3", rs[0].Count)
	}
	if _, _, ok := db.Window("a.example.com", 9); ok {
		t.Error("missing pair must report !ok")
	}
}

func TestReverse(t *testing.T) {
	db := NewDB()
	db.Observe("b.example.com", 7, base)
	db.Observe("a.example.com", 7, base)
	db.Observe("c.example.com", 8, base)
	rs := db.Reverse(7)
	if len(rs) != 2 {
		t.Fatalf("reverse records = %d", len(rs))
	}
	if rs[0].FQDN != "a.example.com" || rs[1].FQDN != "b.example.com" {
		t.Errorf("not sorted by name: %+v", rs)
	}
}

func TestObserveWindow(t *testing.T) {
	db := NewDB()
	db.ObserveWindow("a.example.com", 1, base, base.Add(24*time.Hour))
	from, to, ok := db.Window("a.example.com", 1)
	if !ok || !from.Equal(base) || !to.Equal(base.Add(24*time.Hour)) {
		t.Errorf("window = [%v, %v] ok=%v", from, to, ok)
	}
}

func TestRecordActiveAtOverlaps(t *testing.T) {
	r := Record{FirstSeen: base, LastSeen: base.Add(48 * time.Hour)}
	if !r.ActiveAt(base) || !r.ActiveAt(base.Add(time.Hour)) || !r.ActiveAt(base.Add(48*time.Hour)) {
		t.Error("ActiveAt inside window failed")
	}
	if r.ActiveAt(base.Add(-time.Second)) || r.ActiveAt(base.Add(49*time.Hour)) {
		t.Error("ActiveAt outside window succeeded")
	}
	if !r.Overlaps(base.Add(-time.Hour), base.Add(time.Hour)) {
		t.Error("Overlaps intersecting window failed")
	}
	if r.Overlaps(base.Add(-2*time.Hour), base.Add(-time.Hour)) {
		t.Error("Overlaps disjoint window succeeded")
	}
}

func TestEnumerations(t *testing.T) {
	db := NewDB()
	db.Observe("b.x.com", 2, base)
	db.Observe("a.x.com", 1, base)
	names := db.Names()
	if len(names) != 2 || names[0] != "a.x.com" {
		t.Errorf("Names = %v", names)
	}
	ips := db.IPs()
	if len(ips) != 2 || ips[0] != 1 {
		t.Errorf("IPs = %v", ips)
	}
	if db.NumRecords() != 2 {
		t.Errorf("NumRecords = %d", db.NumRecords())
	}
}

func TestConcurrentObserve(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Observe(fmt.Sprintf("d%d.example.com", i%20), netsim.IP(i%10), base.Add(time.Duration(i)*time.Minute))
			}
		}(w)
	}
	wg.Wait()
	if db.NumRecords() == 0 {
		t.Fatal("no records after concurrent load")
	}
	// 20 names x at most 10 IPs each, but i%20 and i%10 correlate: the
	// exact pair count is 20 (i mod 20 determines i mod 10).
	if db.NumRecords() != 20 {
		t.Errorf("NumRecords = %d, want 20", db.NumRecords())
	}
}

func TestWindowInvariant(t *testing.T) {
	// Property: after any observation sequence, FirstSeen <= LastSeen and
	// the window covers every observed instant.
	f := func(offsets []int16) bool {
		db := NewDB()
		var min, max time.Time
		for i, off := range offsets {
			at := base.Add(time.Duration(off) * time.Minute)
			db.Observe("p.example.com", 1, at)
			if i == 0 || at.Before(min) {
				min = at
			}
			if i == 0 || at.After(max) {
				max = at
			}
		}
		if len(offsets) == 0 {
			return db.NumRecords() == 0
		}
		from, to, ok := db.Window("p.example.com", 1)
		return ok && from.Equal(min) && to.Equal(max) && !from.After(to)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
