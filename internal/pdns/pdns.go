// Package pdns implements a passive DNS replication database in the style
// of Robtex/Weimer: it ingests observed (name, address, time) resolutions
// and answers forward queries (which IPs served a name, and when) and
// reverse queries (which names an IP served, and when). The paper (§3.3)
// uses such a database to complete the tracker IP inventory beyond what
// the extension users' own resolutions revealed, and to bound the activity
// window of every (domain, IP) pair.
package pdns

import (
	"sort"
	"sync"
	"time"

	"crossborder/internal/netsim"
)

// Record is one (name, IP) association with its observed activity window.
type Record struct {
	FQDN      string
	IP        netsim.IP
	FirstSeen time.Time
	LastSeen  time.Time
	// Count is the number of observations merged into this record.
	Count int64
}

// ActiveAt reports whether the record's window covers t.
func (r Record) ActiveAt(t time.Time) bool {
	return !t.Before(r.FirstSeen) && !t.After(r.LastSeen)
}

// Overlaps reports whether the record's window intersects [from, to].
func (r Record) Overlaps(from, to time.Time) bool {
	return !r.LastSeen.Before(from) && !r.FirstSeen.After(to)
}

type pairKey struct {
	fqdn string
	ip   netsim.IP
}

// DB is the passive DNS store. It is safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	pairs   map[pairKey]*Record
	forward map[string][]*Record    // fqdn -> records
	reverse map[netsim.IP][]*Record // ip -> records
}

// NewDB returns an empty passive DNS database.
func NewDB() *DB {
	return &DB{
		pairs:   make(map[pairKey]*Record),
		forward: make(map[string][]*Record),
		reverse: make(map[netsim.IP][]*Record),
	}
}

// Observe ingests one resolution. Repeated observations of the same
// (name, IP) pair widen the record's activity window.
func (db *DB) Observe(fqdn string, ip netsim.IP, at time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	k := pairKey{fqdn, ip}
	if r, ok := db.pairs[k]; ok {
		if at.Before(r.FirstSeen) {
			r.FirstSeen = at
		}
		if at.After(r.LastSeen) {
			r.LastSeen = at
		}
		r.Count++
		return
	}
	r := &Record{FQDN: fqdn, IP: ip, FirstSeen: at, LastSeen: at, Count: 1}
	db.pairs[k] = r
	db.forward[fqdn] = append(db.forward[fqdn], r)
	db.reverse[ip] = append(db.reverse[ip], r)
}

// ObserveWindow ingests a record whose activity window is known outright
// (e.g. a bulk import from a replication feed).
func (db *DB) ObserveWindow(fqdn string, ip netsim.IP, from, to time.Time) {
	db.Observe(fqdn, ip, from)
	db.Observe(fqdn, ip, to)
}

// Forward returns the records for a name, sorted by IP. The records are
// copies; mutating them does not affect the store.
func (db *DB) Forward(fqdn string) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rs := db.forward[fqdn]
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = *r
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// Reverse returns the records for an IP, sorted by name.
func (db *DB) Reverse(ip netsim.IP) []Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rs := db.reverse[ip]
	out := make([]Record, len(rs))
	for i, r := range rs {
		out[i] = *r
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FQDN < out[j].FQDN })
	return out
}

// Names returns every FQDN with at least one record, sorted.
func (db *DB) Names() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.forward))
	for f := range db.forward {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// IPs returns every IP with at least one record, sorted.
func (db *DB) IPs() []netsim.IP {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]netsim.IP, 0, len(db.reverse))
	for ip := range db.reverse {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumRecords returns the number of distinct (name, IP) pairs.
func (db *DB) NumRecords() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.pairs)
}

// Window returns the activity window for a (name, IP) pair.
func (db *DB) Window(fqdn string, ip netsim.IP) (from, to time.Time, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.pairs[pairKey{fqdn, ip}]
	if !ok {
		return time.Time{}, time.Time{}, false
	}
	return r.FirstSeen, r.LastSeen, true
}
