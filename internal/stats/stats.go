// Package stats provides the small statistical toolkit the experiments
// need: empirical CDFs, histograms, weighted share tables, majority voting,
// and Pearson correlation. All functions are deterministic and allocate
// only what they return.
package stats

import (
	"encoding/json"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is empty; Add samples then query. CDF is not safe for
// concurrent mutation.
type CDF struct {
	samples []float64
	sorted  bool
}

// NewCDF returns a CDF primed with the given samples.
func NewCDF(samples ...float64) *CDF {
	c := &CDF{}
	c.Add(samples...)
	return c
}

// Add appends samples.
func (c *CDF) Add(samples ...float64) {
	c.samples = append(c.samples, samples...)
	c.sorted = false
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= x), or 0 for an empty CDF.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	// Index of first sample > x.
	i := sort.SearchFloat64s(c.samples, x)
	// SearchFloat64s returns first index with samples[i] >= x; advance over
	// equal values so the CDF is right-continuous (P(X <= x) inclusive).
	for i < len(c.samples) && c.samples[i] == x {
		i++
	}
	return float64(i) / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method. Returns NaN for an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	c.ensureSorted()
	if q == 0 {
		return c.samples[0]
	}
	rank := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(c.samples) {
		rank = len(c.samples) - 1
	}
	return c.samples[rank]
}

// Median is Quantile(0.5).
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Mean returns the arithmetic mean, or NaN when empty.
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, s := range c.samples {
		sum += s
	}
	return sum / float64(len(c.samples))
}

// Points returns up to n (x, P(X<=x)) pairs evenly spaced by rank, suitable
// for plotting. It always includes the minimum and maximum samples.
func (c *CDF) Points(n int) []Point {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.ensureSorted()
	if n == 1 {
		return []Point{{c.samples[len(c.samples)-1], 1}}
	}
	out := make([]Point, 0, n)
	total := float64(len(c.samples))
	for i := 0; i < n; i++ {
		rank := i * (len(c.samples) - 1) / (n - 1)
		out = append(out, Point{c.samples[rank], float64(rank+1) / total})
	}
	return out
}

// Point is one (x, y) pair of a plotted series.
type Point struct{ X, Y float64 }

// MarshalJSON encodes the CDF as its summary statistics plus up to 40
// rank-spaced (x, y) points, so empirical distributions survive the
// structured artifact encoders despite the unexported sample storage.
func (c *CDF) MarshalJSON() ([]byte, error) {
	out := struct {
		Count  int     `json:"count"`
		Mean   float64 `json:"mean"`
		Median float64 `json:"median"`
		P90    float64 `json:"p90"`
		Max    float64 `json:"max"`
		Points []Point `json:"points,omitempty"`
	}{Count: c.Len()}
	if c.Len() > 0 {
		out.Mean = c.Mean()
		out.Median = c.Median()
		out.P90 = c.Quantile(0.9)
		out.Max = c.Quantile(1)
		out.Points = c.Points(40)
	}
	return json.Marshal(out)
}

// Histogram counts occurrences of integer-valued observations.
type Histogram struct {
	counts map[int]int64
	total  int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int64)}
}

// Observe adds weight w at bin v.
func (h *Histogram) Observe(v int, w int64) {
	h.counts[v] += w
	h.total += w
}

// Count returns the weight at bin v.
func (h *Histogram) Count(v int) int64 { return h.counts[v] }

// Total returns the sum of all weights.
func (h *Histogram) Total() int64 { return h.total }

// Bins returns the sorted list of non-empty bins.
func (h *Histogram) Bins() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// ShareAtMost returns the fraction of total weight in bins <= v.
// Returns 0 when the histogram is empty.
func (h *Histogram) ShareAtMost(v int) float64 {
	if h.total == 0 {
		return 0
	}
	var sum int64
	for bin, c := range h.counts {
		if bin <= v {
			sum += c
		}
	}
	return float64(sum) / float64(h.total)
}

// Share is one labelled percentage row of a share table.
type Share struct {
	Label   string
	Count   int64
	Percent float64
}

// Shares converts labelled counts into percentage rows sorted by
// descending count (ties broken by label for determinism).
func Shares(counts map[string]int64) []Share {
	var total int64
	for _, c := range counts {
		total += c
	}
	out := make([]Share, 0, len(counts))
	for label, c := range counts {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(c) / float64(total)
		}
		out = append(out, Share{Label: label, Count: c, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// MajorityVote returns the most frequent label and its vote share.
// Ties are broken lexicographically so the result is deterministic.
// Returns ("", 0) for no votes.
func MajorityVote(votes []string) (winner string, share float64) {
	if len(votes) == 0 {
		return "", 0
	}
	counts := make(map[string]int, len(votes))
	for _, v := range votes {
		counts[v]++
	}
	best, bestN := "", -1
	for label, n := range counts {
		if n > bestN || (n == bestN && label < best) {
			best, bestN = label, n
		}
	}
	return best, float64(bestN) / float64(len(votes))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, or NaN if the lengths differ, are < 2, or either variance is 0.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return math.NaN()
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// Percent returns 100*part/total, or 0 when total is 0.
func Percent(part, total int64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}
