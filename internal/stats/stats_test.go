package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF(1, 2, 3, 4)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %f, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %f, want 0", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %f, want 1", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %f, want 1", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile must be NaN")
	}
	if !math.IsNaN(c.Mean()) {
		t.Error("empty CDF mean must be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF points must be nil")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF(10, 20, 30, 40, 50)
	if got := c.Median(); got != 30 {
		t.Errorf("Median = %f, want 30", got)
	}
	if got := c.Quantile(0); got != 10 {
		t.Errorf("Quantile(0) = %f, want 10", got)
	}
	if got := c.Quantile(1); got != 50 {
		t.Errorf("Quantile(1) = %f, want 50", got)
	}
	if !math.IsNaN(c.Quantile(1.5)) {
		t.Error("out-of-range quantile must be NaN")
	}
}

func TestCDFMean(t *testing.T) {
	c := NewCDF(2, 4, 6)
	if got := c.Mean(); got != 4 {
		t.Errorf("Mean = %f, want 4", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d", len(pts))
	}
	if pts[0].X != 1 || pts[len(pts)-1].X != 10 {
		t.Errorf("points must span min..max, got %v", pts)
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point y = %f, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Errorf("points not monotone: %v", pts)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = rng.NormFloat64() * 100
	}
	c := NewCDF(samples...)
	f := func(a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileInverseProperty(t *testing.T) {
	// For any q in (0,1], At(Quantile(q)) >= q.
	rng := rand.New(rand.NewSource(11))
	samples := make([]float64, 300)
	for i := range samples {
		samples[i] = rng.Float64() * 1000
	}
	c := NewCDF(samples...)
	f := func(raw float64) bool {
		q := math.Mod(math.Abs(raw), 1)
		if q == 0 {
			q = 0.5
		}
		x := c.Quantile(q)
		return c.At(x) >= q-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	h.Observe(1, 85)
	h.Observe(2, 10)
	h.Observe(12, 5)
	if h.Total() != 100 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Count(1) != 85 {
		t.Errorf("Count(1) = %d", h.Count(1))
	}
	if got := h.ShareAtMost(1); got != 0.85 {
		t.Errorf("ShareAtMost(1) = %f", got)
	}
	if got := h.ShareAtMost(100); got != 1 {
		t.Errorf("ShareAtMost(100) = %f", got)
	}
	bins := h.Bins()
	if !sort.IntsAreSorted(bins) || len(bins) != 3 {
		t.Errorf("Bins = %v", bins)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.ShareAtMost(5) != 0 {
		t.Error("empty histogram share must be 0")
	}
	if len(h.Bins()) != 0 {
		t.Error("empty histogram must have no bins")
	}
}

func TestShares(t *testing.T) {
	s := Shares(map[string]int64{"a": 10, "b": 30, "c": 60})
	if len(s) != 3 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0].Label != "c" || s[0].Percent != 60 {
		t.Errorf("first share = %+v", s[0])
	}
	if s[2].Label != "a" || s[2].Percent != 10 {
		t.Errorf("last share = %+v", s[2])
	}
}

func TestSharesDeterministicTies(t *testing.T) {
	for i := 0; i < 10; i++ {
		s := Shares(map[string]int64{"x": 5, "y": 5, "z": 5})
		if s[0].Label != "x" || s[1].Label != "y" || s[2].Label != "z" {
			t.Fatalf("tie order not deterministic: %+v", s)
		}
	}
}

func TestSharesEmpty(t *testing.T) {
	if s := Shares(nil); len(s) != 0 {
		t.Errorf("Shares(nil) = %v", s)
	}
	s := Shares(map[string]int64{"only": 0})
	if s[0].Percent != 0 {
		t.Errorf("zero-total share pct = %f", s[0].Percent)
	}
}

func TestMajorityVote(t *testing.T) {
	w, share := MajorityVote([]string{"DE", "DE", "NL", "DE", "FR"})
	if w != "DE" {
		t.Errorf("winner = %s", w)
	}
	if share != 0.6 {
		t.Errorf("share = %f", share)
	}
	if w, s := MajorityVote(nil); w != "" || s != 0 {
		t.Errorf("empty vote = (%q, %f)", w, s)
	}
	// Deterministic tie-break.
	if w, _ := MajorityVote([]string{"b", "a"}); w != "a" {
		t.Errorf("tie winner = %s, want a", w)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, yPos); math.Abs(r-1) > 1e-9 {
		t.Errorf("perfect positive r = %f", r)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, yNeg); math.Abs(r+1) > 1e-9 {
		t.Errorf("perfect negative r = %f", r)
	}
	if r := Pearson(x, []float64{1, 2}); !math.IsNaN(r) {
		t.Error("length mismatch must be NaN")
	}
	if r := Pearson(x, []float64{3, 3, 3, 3, 3}); !math.IsNaN(r) {
		t.Error("zero variance must be NaN")
	}
}

func TestPearsonBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		p := Pearson(x, y)
		if math.IsNaN(p) {
			return true // zero variance possible, allowed
		}
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 4) != 25 {
		t.Error("Percent(1,4) != 25")
	}
	if Percent(5, 0) != 0 {
		t.Error("Percent(_,0) != 0")
	}
}
