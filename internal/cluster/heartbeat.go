package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Heartbeater is the shard-side announcement loop: every Interval it
// POSTs a wire heartbeat — node name, advertised address, epoch
// high-water mark — to every registry target. collectd runs one when
// started with -registry; tests drive Beat directly.
type Heartbeater struct {
	// Node and Addr identify the shard (see Heartbeat).
	Node string
	Addr string
	// Targets are registry base URLs (e.g. the mergerd address).
	Targets []string
	// Interval is the heartbeat cadence (0 = 1s).
	Interval time.Duration
	// Source reports the shard's committed epoch and rows at send time.
	Source func() (epoch, rows int)
	// HTTP overrides the transport (nil = a client with a short
	// timeout, so a hung registry never wedges the loop).
	HTTP *http.Client

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

func (h *Heartbeater) client() *http.Client {
	if h.HTTP != nil {
		return h.HTTP
	}
	return &http.Client{Timeout: 2 * time.Second}
}

// Beat sends one heartbeat to every target, returning the first error
// (all targets are still attempted — registries fail independently).
func (h *Heartbeater) Beat() error {
	var epoch, rows int
	if h.Source != nil {
		epoch, rows = h.Source()
	}
	body := EncodeHeartbeat(Heartbeat{
		Node: h.Node, Addr: h.Addr,
		Epoch: uint64(epoch), Rows: uint64(rows),
	})
	var firstErr error
	for _, t := range h.Targets {
		resp, err := h.client().Post(t+"/cluster/v1/heartbeat", ContentTypeHeartbeat, bytes.NewReader(body))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && firstErr == nil {
			firstErr = fmt.Errorf("cluster: heartbeat to %s: %s", t, resp.Status)
		}
	}
	return firstErr
}

// Start launches the loop. Stop ends it.
func (h *Heartbeater) Start() {
	h.once.Do(func() {
		h.stop = make(chan struct{})
		h.done = make(chan struct{})
		interval := h.Interval
		if interval <= 0 {
			interval = time.Second
		}
		go func() {
			defer close(h.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			h.Beat() // announce immediately; errors are retried next tick
			for {
				select {
				case <-h.stop:
					return
				case <-t.C:
					h.Beat()
				}
			}
		}()
	})
}

// Stop ends the loop and waits for it to exit. Safe to call without
// Start (no-op) and more than once.
func (h *Heartbeater) Stop() {
	if h.stop == nil {
		return
	}
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

// FetchMembers pulls a registry's membership view over HTTP (the wire
// form, so the hardened decoder validates it).
func FetchMembers(httpc *http.Client, registryBase string) ([]MemberRecord, error) {
	if httpc == nil {
		httpc = &http.Client{Timeout: 2 * time.Second}
	}
	resp, err := httpc.Get(registryBase + "/cluster/v1/members?format=wire")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: members from %s: %s", registryBase, resp.Status)
	}
	return DecodeMembers(raw)
}
