package cluster

import (
	"testing"
)

// FuzzDecodeHeartbeat hardens the heartbeat frame decoder: any byte
// string must either decode cleanly or return an error — never panic,
// never over-allocate (string caps are checked before allocation).
// Anything that decodes must survive a canonical re-encode/re-decode
// round trip.
//
// Run with: go test -fuzz FuzzDecodeHeartbeat ./internal/cluster/
func FuzzDecodeHeartbeat(f *testing.F) {
	seeds := [][]byte{
		EncodeHeartbeat(Heartbeat{Node: "c1", Addr: "http://10.0.0.7:8477", Epoch: 12, Rows: 1 << 30}),
		EncodeHeartbeat(Heartbeat{Node: "n"}),
		[]byte("XHB1"),
		[]byte("XHB1\x00\x00\x00\x00"),
		{},
	}
	if full := EncodeHeartbeat(Heartbeat{Node: "c1", Addr: "http://a:1", Epoch: 3, Rows: 4}); len(full) > 10 {
		seeds = append(seeds, full[:len(full)/2]) // truncation
		mut := append([]byte{}, full...)
		mut[9] ^= 0xFF // corrupt the body under the checksum
		seeds = append(seeds, mut)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hb, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		hb2, err := DecodeHeartbeat(EncodeHeartbeat(hb))
		if err != nil {
			t.Fatalf("re-decode of re-encoded heartbeat failed: %v", err)
		}
		if hb != hb2 {
			t.Fatalf("round trip changed the heartbeat: %+v vs %+v", hb, hb2)
		}
	})
}

// FuzzDecodeMembers is the same contract for the gossip membership
// frame, whose count and per-member guards must hold under arbitrary
// input before any allocation happens.
//
// Run with: go test -fuzz FuzzDecodeMembers ./internal/cluster/
func FuzzDecodeMembers(f *testing.F) {
	view := []MemberRecord{
		{Node: "c1", Addr: "http://a:1", State: StateAlive, Epoch: 3, Rows: 10, LastSeenMs: 1700000000000},
		{Node: "c2", State: StateSuspect, LastSeenMs: 5},
		{Node: "c3", Addr: "http://b:2", State: StateDead},
	}
	seeds := [][]byte{
		EncodeMembers(view),
		EncodeMembers(nil),
		[]byte("XMB1"),
		{},
		// Forged count: header claims 2^50 members in an empty body.
		frame(memMagic, []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x04}),
	}
	if full := EncodeMembers(view); len(full) > 12 {
		seeds = append(seeds, full[:len(full)-3])
		mut := append([]byte{}, full...)
		mut[11] ^= 0xFF
		seeds = append(seeds, mut)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeMembers(data)
		if err != nil {
			return
		}
		recs2, err := DecodeMembers(EncodeMembers(recs))
		if err != nil {
			t.Fatalf("re-decode of re-encoded view failed: %v", err)
		}
		if len(recs) != len(recs2) {
			t.Fatalf("round trip changed the count: %d vs %d", len(recs), len(recs2))
		}
		for i := range recs {
			if recs[i] != recs2[i] {
				t.Fatalf("round trip changed member %d: %+v vs %+v", i, recs[i], recs2[i])
			}
		}
	})
}
