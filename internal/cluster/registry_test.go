package cluster

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestRegistry() (*Registry, *fakeClock) {
	clk := &fakeClock{t: time.UnixMilli(1_700_000_000_000)}
	r := NewRegistry(3*time.Second, 10*time.Second)
	r.SetClock(clk.now)
	return r, clk
}

func TestRegistryLivenessStates(t *testing.T) {
	r, clk := newTestRegistry()
	r.Observe(Heartbeat{Node: "c1", Addr: "http://a:1", Epoch: 4, Rows: 100})

	m, ok := r.Lookup("c1")
	if !ok || m.State != StateAlive || m.Addr != "http://a:1" || m.Epoch != 4 || m.Rows != 100 {
		t.Fatalf("fresh heartbeat: %+v ok=%v", m, ok)
	}
	clk.advance(5 * time.Second)
	if m, _ = r.Lookup("c1"); m.State != StateSuspect {
		t.Fatalf("after 5s: state %v, want suspect", m.State)
	}
	clk.advance(6 * time.Second)
	if m, _ = r.Lookup("c1"); m.State != StateDead {
		t.Fatalf("after 11s: state %v, want dead", m.State)
	}
	// A returning shard is alive again, possibly at a new address.
	r.Observe(Heartbeat{Node: "c1", Addr: "http://b:2", Epoch: 9, Rows: 120})
	if m, _ = r.Lookup("c1"); m.State != StateAlive || m.Addr != "http://b:2" || m.Epoch != 9 {
		t.Fatalf("after return: %+v", m)
	}
	// Ignored inputs.
	r.Observe(Heartbeat{Node: ""})
	if got := len(r.Members()); got != 1 {
		t.Fatalf("empty-node heartbeat created a member: %d members", got)
	}
}

// TestRegistryGossipConverges: merging views in any order converges
// every registry to the freshest sighting per node.
func TestRegistryGossipConverges(t *testing.T) {
	a, clkA := newTestRegistry()
	b, clkB := newTestRegistry()
	clkB.t = clkA.t

	a.Observe(Heartbeat{Node: "c1", Addr: "http://a:1", Epoch: 1})
	clkB.advance(time.Second)
	b.Observe(Heartbeat{Node: "c1", Addr: "http://a:2", Epoch: 2}) // fresher
	b.Observe(Heartbeat{Node: "c2", Addr: "http://b:1", Epoch: 7})

	// Exchange both ways, twice (idempotence).
	for i := 0; i < 2; i++ {
		a.Merge(b.Records())
		b.Merge(a.Records())
	}
	am, bm := a.Members(), b.Members()
	if len(am) != 2 || len(bm) != 2 {
		t.Fatalf("views did not converge: a=%d b=%d members", len(am), len(bm))
	}
	for i := range am {
		if am[i].Node != bm[i].Node || am[i].Addr != bm[i].Addr || am[i].Epoch != bm[i].Epoch ||
			!am[i].LastSeen.Equal(bm[i].LastSeen) {
			t.Fatalf("views differ at %d: %+v vs %+v", i, am[i], bm[i])
		}
	}
	if am[0].Addr != "http://a:2" || am[0].Epoch != 2 {
		t.Fatalf("fresher sighting lost: %+v", am[0])
	}
	// A stale view merged later must not regress the entry.
	stale := []MemberRecord{{Node: "c1", Addr: "http://old:9", Epoch: 0, LastSeenMs: 1}}
	a.Merge(stale)
	if m, _ := a.Lookup("c1"); m.Addr != "http://a:2" || m.Epoch != 2 {
		t.Fatalf("stale merge regressed the entry: %+v", m)
	}
}

func TestRegistryHTTPRoundTrip(t *testing.T) {
	r, _ := newTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	hb := &Heartbeater{Node: "c1", Addr: "http://shard:8477", Targets: []string{srv.URL},
		Source: func() (int, int) { return 3, 42 }}
	if err := hb.Beat(); err != nil {
		t.Fatal(err)
	}
	recs, err := FetchMembers(nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Node != "c1" || recs[0].Addr != "http://shard:8477" ||
		recs[0].Epoch != 3 || recs[0].Rows != 42 {
		t.Fatalf("members after heartbeat: %+v", recs)
	}

	// Gossip round trip: POST our view, receive theirs.
	other, _ := newTestRegistry()
	other.Observe(Heartbeat{Node: "c2", Addr: "http://other:1"})
	resp, err := srv.Client().Post(srv.URL+"/cluster/v1/gossip", ContentTypeMembers,
		bytes.NewReader(EncodeMembers(other.Records())))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("gossip: %s", resp.Status)
	}
	if got := len(r.Members()); got != 2 {
		t.Fatalf("gossiped member not merged: %d members", got)
	}

	// Bad frames bounce with 400, not a panic or a poisoned table.
	resp, err = srv.Client().Post(srv.URL+"/cluster/v1/heartbeat", ContentTypeHeartbeat,
		bytes.NewReader([]byte("XHB1garbage")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("garbage heartbeat: %s, want 400", resp.Status)
	}
}

func TestHeartbeaterLoop(t *testing.T) {
	r, _ := newTestRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	hb := &Heartbeater{Node: "c1", Addr: "http://shard:1", Targets: []string{srv.URL},
		Interval: 10 * time.Millisecond}
	hb.Start()
	defer hb.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := r.Lookup("c1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("heartbeat loop never announced the shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	hb.Stop() // idempotent
}
