package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

// Fanin is the merge tier: it polls every known shard's /v1/snapshot
// export, caches the last good export per shard, and whenever any
// shard's epoch advances, merges the cached exports into one global
// copy-on-write Snapshot (ingest.MergeExports) published behind an
// atomic pointer — exactly the shape the collector uses for its own
// epoch snapshots, so an ingest.QueryServer over Snapshot() serves the
// full /v1/* query API from the merged view without ever blocking a
// pull or a merge.
//
// Failure model: a shard that stops answering keeps contributing its
// last pulled export — the merged view is the freshest consistent
// union available, never a partial one that silently dropped a
// partition. A per-shard circuit breaker (BreakerFails,
// BreakerCooldown) stops hammering a shard that keeps failing and
// probes it after a cooldown; Health and Degraded report which shards
// are being served from stale cached data, without ever flipping the
// tier un-Ready. Readiness (Ready) holds off until every expected shard
// has contributed at least once, so a cluster warming up reports "not
// ready: waiting for shard X" instead of serving artifacts over a
// subset of users.
type Fanin struct {
	// World is the shared synthetic world; exports built for a
	// different seed/scale are refused by the merge.
	World *scenario.Scenario
	// Registry resolves shard names to addresses and liveness.
	Registry *Registry
	// Shards are the expected shard names (the ring topology). Empty
	// means "merge whoever has reported" — readiness then needs just
	// one export.
	Shards []string
	// HTTP overrides the pull transport (nil = 10s timeout client;
	// snapshot bodies are large).
	HTTP *http.Client
	// Workers bounds the merge fixpoint parallelism (0 = GOMAXPROCS).
	Workers int
	// Interval is the poll cadence of the Start loop (0 = 2s).
	Interval time.Duration
	// BreakerFails is how many consecutive pull failures open a shard's
	// circuit (0 = 3). While open, the shard is not pulled — its cached
	// export keeps contributing to the merged view (degraded serving) —
	// until BreakerCooldown (0 = 10s) elapses and a half-open probe
	// tests recovery.
	BreakerFails    int
	BreakerCooldown time.Duration
	// StaleAfter is how long without a successful pull before a shard's
	// cached contribution counts as stale in Health/Degraded (0 = 30s).
	StaleAfter time.Duration
	// Clock overrides time.Now for the breaker and staleness clocks
	// (nil = time.Now). Tests inject a fake to step through cooldowns.
	Clock func() time.Time

	mu       sync.Mutex
	cache    map[string]*shardCache
	merged   map[string]int // shard -> epoch folded into the published snapshot
	pullErr  map[string]error
	breakers map[string]*breaker

	snap atomic.Pointer[ingest.Snapshot]
	// remerges counts published snapshots (each is one full re-merge of
	// the cached shard exports).
	remerges atomic.Uint64
	// bTrips / bProbes count circuit-open transitions and half-open
	// probes across all shards.
	bTrips  atomic.Uint64
	bProbes atomic.Uint64

	once sync.Once
	stop chan struct{}
	done chan struct{}
}

// shardCache is the last successfully pulled export of one shard.
type shardCache struct {
	epoch  int
	etag   string
	export *ingest.ShardExport
}

func (f *Fanin) client() *http.Client {
	if f.HTTP != nil {
		return f.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Snapshot returns the latest merged view (nil before the first merge).
// Safe for concurrent use; pair it with ingest.NewQueryServer.
func (f *Fanin) Snapshot() *ingest.Snapshot { return f.snap.Load() }

// Ready reports nil once a merged snapshot covering every expected
// shard is published, and otherwise the reason the view is incomplete.
func (f *Fanin) Ready() error {
	if f.snap.Load() == nil {
		return fmt.Errorf("cluster: no merged snapshot published yet")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var missing []string
	for _, s := range f.Shards {
		if _, ok := f.merged[s]; !ok {
			missing = append(missing, s)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("cluster: waiting for shard(s) %s", strings.Join(missing, ", "))
	}
	return nil
}

// pull fetches one shard's export if its epoch advanced, updating the
// cache. A 304 (If-None-Match hit) or a pull error leaves the cached
// export in place.
func (f *Fanin) pull(node, addr string) error {
	f.mu.Lock()
	var etag string
	if c := f.cache[node]; c != nil {
		etag = c.etag
	}
	f.mu.Unlock()

	req, err := http.NewRequest(http.MethodGet, addr+"/v1/snapshot", nil)
	if err != nil {
		return err
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := f.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: snapshot from %s: %s", node, resp.Status)
	}
	ex, err := ingest.DecodeShardExport(raw)
	if err != nil {
		return fmt.Errorf("cluster: shard %s: %w", node, err)
	}
	f.mu.Lock()
	f.cache[node] = &shardCache{epoch: ex.Epoch(), etag: resp.Header.Get("ETag"), export: ex}
	f.mu.Unlock()
	return nil
}

// RefreshOnce runs one poll + merge round: pull every registry member
// whose heartbeat is not dead, and re-merge when any cached epoch is
// ahead of the published view. It returns whether a new snapshot was
// published, and the first pull error (pull errors do not abort the
// round — the remaining shards still refresh; a merge error does).
func (f *Fanin) RefreshOnce() (published bool, err error) {
	f.mu.Lock()
	if f.cache == nil {
		f.cache = make(map[string]*shardCache)
		f.pullErr = make(map[string]error)
	}
	f.mu.Unlock()

	var firstErr error
	for _, m := range f.Registry.Members() {
		if m.Addr == "" {
			continue
		}
		if m.State == StateDead {
			// Serve its last export; re-pull resumes when it returns.
			continue
		}
		if !f.admitPull(m.Node) {
			// Circuit open: skip the pull, keep serving the cached
			// export. The breaker re-admits a probe after its cooldown.
			continue
		}
		err := f.pull(m.Node, m.Addr)
		f.recordPull(m.Node, err)
		f.mu.Lock()
		f.pullErr[m.Node] = err
		f.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Merge when any cached shard is ahead of the published view.
	f.mu.Lock()
	nodes := make([]string, 0, len(f.cache))
	dirty := len(f.cache) != len(f.merged)
	for n, c := range f.cache {
		nodes = append(nodes, n)
		if f.merged[n] != c.epoch {
			dirty = true
		}
	}
	if !dirty || len(nodes) == 0 {
		f.mu.Unlock()
		return false, firstErr
	}
	// Fixed merge order (shard name) keeps the merged dataset
	// reproducible byte for byte; the served artifacts are
	// order-invariant regardless.
	sort.Strings(nodes)
	exports := make([]*ingest.ShardExport, len(nodes))
	epochs := make(map[string]int, len(nodes))
	for i, n := range nodes {
		exports[i] = f.cache[n].export
		epochs[n] = f.cache[n].epoch
	}
	f.mu.Unlock()

	snap, err := ingest.MergeExports(f.World, exports, f.Workers)
	if err != nil {
		return false, err
	}
	f.snap.Store(snap)
	f.remerges.Add(1)
	f.mu.Lock()
	f.merged = epochs
	f.mu.Unlock()
	return true, firstErr
}

// Remerges returns how many merged snapshots have been published.
func (f *Fanin) Remerges() uint64 { return f.remerges.Load() }

// Start launches the poll loop. Stop ends it.
func (f *Fanin) Start() {
	f.once.Do(func() {
		f.stop = make(chan struct{})
		f.done = make(chan struct{})
		interval := f.Interval
		if interval <= 0 {
			interval = 2 * time.Second
		}
		go func() {
			defer close(f.done)
			t := time.NewTicker(interval)
			defer t.Stop()
			f.RefreshOnce()
			for {
				select {
				case <-f.stop:
					return
				case <-t.C:
					f.RefreshOnce()
				}
			}
		}()
	})
}

// Stop ends the poll loop and waits for it to exit. Safe without Start
// and more than once.
func (f *Fanin) Stop() {
	if f.stop == nil {
		return
	}
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
}
