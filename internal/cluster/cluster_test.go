package cluster

import (
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

// The shared cluster test rig: one small world and its captured upload
// stream (same params as the ingest package's rig).
var (
	crigOnce  sync.Once
	crigWorld *scenario.Scenario
	crigEvs   map[int32][]ingest.Event
)

func crig(t *testing.T) (*scenario.Scenario, map[int32][]ingest.Event) {
	t.Helper()
	crigOnce.Do(func() {
		crigWorld = scenario.BuildWorld(scenario.Params{Seed: 11, Scale: 0.02, VisitsPerUser: 8})
		crigEvs = ingest.RecordSimulation(crigWorld, 8, 3)
	})
	return crigWorld, crigEvs
}

// shard is one in-process collector + its HTTP server.
type shard struct {
	node string
	c    *ingest.Collector
	srv  *httptest.Server
}

func newShard(t *testing.T, world *scenario.Scenario, node string, cfg ingest.Config) *shard {
	t.Helper()
	c := ingest.NewCollector(world, cfg)
	if cfg.DataDir != "" {
		if _, err := c.Recover(); err != nil {
			t.Fatalf("shard %s: recover: %v", node, err)
		}
	}
	return &shard{node: node, c: c, srv: httptest.NewServer(ingest.NewServer(c))}
}

func (s *shard) close() {
	s.srv.Close()
	s.c.Close()
}

// singleReference ingests the union of all events into one collector
// and returns its snapshot — the view a cluster must reproduce.
func singleReference(t *testing.T, world *scenario.Scenario, evs map[int32][]ingest.Event) *ingest.Snapshot {
	t.Helper()
	c := ingest.NewCollector(world, ingest.Config{EpochEvents: 1 << 20, Workers: 2})
	defer c.Close()
	users := make([]int32, 0, len(evs))
	for uid := range evs {
		users = append(users, uid)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	for _, uid := range users {
		if _, err := c.Ingest(ingest.Batch{User: uid, Seq: 0, Events: evs[uid]}); err != nil {
			t.Fatal(err)
		}
	}
	return c.Flush()
}

// assertMergedEqualsReference compares a merged cluster snapshot to the
// single-collector view at the level every artifact reads.
func assertMergedEqualsReference(t *testing.T, merged, ref *ingest.Snapshot) {
	t.Helper()
	if merged.Rows() != ref.Rows() {
		t.Errorf("merged %d rows, single collector %d", merged.Rows(), ref.Rows())
	}
	if merged.Stats() != ref.Stats() {
		t.Errorf("merged stats %+v, single collector %+v", merged.Stats(), ref.Stats())
	}
	if !merged.TruthAnalysis().Equal(ref.TruthAnalysis()) ||
		!merged.IPMapAnalysis().Equal(ref.IPMapAnalysis()) ||
		!merged.MaxMindAnalysis().Equal(ref.MaxMindAnalysis()) {
		t.Error("merged flow maps differ from the single-collector flow maps")
	}
}

// TestFaninMergesAndCaches drives the merge tier end to end over HTTP:
// heartbeats register the shards, RefreshOnce pulls and merges their
// exports, unchanged shards answer 304 off the epoch ETag (no re-merge),
// and a dead shard keeps contributing its last export so the cluster
// keeps serving the full user population.
func TestFaninMergesAndCaches(t *testing.T) {
	world, evs := crig(t)
	ring, err := NewRing([]string{"c1", "c2"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	reg, clk := newTestRegistry()
	shards := map[string]*shard{
		"c1": newShard(t, world, "c1", ingest.Config{EpochEvents: 251, Workers: 2, ChunkRows: 64}),
		"c2": newShard(t, world, "c2", ingest.Config{EpochEvents: 1 << 20, Workers: 1, Compress: true}),
	}
	defer shards["c1"].close()
	defer shards["c2"].close()

	// Partition and ingest directly; hold back some of c1's users for
	// the epoch-advance round.
	parts := ring.Partition(sortedUsers(evs))
	if len(parts["c1"]) == 0 || len(parts["c2"]) == 0 {
		t.Fatalf("degenerate partition: %d/%d users", len(parts["c1"]), len(parts["c2"]))
	}
	held := parts["c1"][len(parts["c1"])/2:]
	feed(t, shards["c1"].c, evs, parts["c1"][:len(parts["c1"])/2])
	feed(t, shards["c2"].c, evs, parts["c2"])
	shards["c1"].c.Flush()
	shards["c2"].c.Flush()

	for n, s := range shards {
		reg.Observe(Heartbeat{Node: n, Addr: s.srv.URL, Epoch: uint64(s.c.Snapshot().Epoch())})
	}

	fanin := &Fanin{World: world, Registry: reg, Shards: []string{"c1", "c2"}, Workers: 2}
	if err := fanin.Ready(); err == nil {
		t.Fatal("fan-in reported ready before any merge")
	}
	published, err := fanin.RefreshOnce()
	if err != nil || !published {
		t.Fatalf("first refresh: published=%v err=%v", published, err)
	}
	if err := fanin.Ready(); err != nil {
		t.Fatalf("fan-in not ready after merging both shards: %v", err)
	}
	snap1 := fanin.Snapshot()
	if snap1.Rows() == 0 {
		t.Fatal("merged snapshot is empty")
	}

	// No epoch advanced: the round is all 304s and publishes nothing.
	if published, err = fanin.RefreshOnce(); err != nil || published {
		t.Fatalf("idle refresh re-published: published=%v err=%v", published, err)
	}
	if fanin.Snapshot() != snap1 {
		t.Fatal("idle refresh replaced the snapshot")
	}

	// c1 advances an epoch: the next round re-merges.
	feed(t, shards["c1"].c, evs, held)
	shards["c1"].c.Flush()
	reg.Observe(Heartbeat{Node: "c1", Addr: shards["c1"].srv.URL})
	if published, err = fanin.RefreshOnce(); err != nil || !published {
		t.Fatalf("refresh after epoch advance: published=%v err=%v", published, err)
	}
	grown := fanin.Snapshot()
	if grown.Rows() <= snap1.Rows() {
		t.Fatalf("merged rows did not grow: %d -> %d", snap1.Rows(), grown.Rows())
	}

	// Kill c2: its last export keeps the merged view whole, and the
	// query tier keeps serving.
	shards["c2"].srv.Close()
	clk.advance(time.Minute)
	if m, _ := reg.Lookup("c2"); m.State != StateDead {
		t.Fatalf("c2 state %v after a silent minute, want dead", m.State)
	}
	if _, err = fanin.RefreshOnce(); err != nil {
		t.Fatalf("refresh with a dead shard errored: %v", err)
	}
	if fanin.Snapshot().Rows() != grown.Rows() || fanin.Ready() != nil {
		t.Error("dead shard dropped rows from the merged view")
	}

	// The full cluster view equals one collector over the union.
	assertMergedEqualsReference(t, fanin.Snapshot(), singleReference(t, world, evs))
}

func sortedUsers(evs map[int32][]ingest.Event) []int32 {
	users := make([]int32, 0, len(evs))
	for uid := range evs {
		users = append(users, uid)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	return users
}

// feed ingests the listed users' full streams directly (no HTTP).
func feed(t *testing.T, c *ingest.Collector, evs map[int32][]ingest.Event, users []int32) {
	t.Helper()
	for _, uid := range users {
		if _, err := c.Ingest(ingest.Batch{User: uid, Seq: 0, Events: evs[uid]}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterClientFailoverExactlyOnce is the dead-shard scenario: a
// durable shard is killed mid-replay and restarted at a NEW address;
// the ring-aware client rides through — its in-flight upload fails, it
// re-resolves the shard's address from the registry, and continues the
// user's stream where it left off. Retransmitted batches dedup against
// the recovered sequence floors (exactly-once per user), and the final
// merged cluster view equals an uninterrupted single collector over
// the union of events.
func TestClusterClientFailoverExactlyOnce(t *testing.T) {
	world, evs := crig(t)
	nodes := []string{"c1", "c2", "c3"}
	ring, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}

	reg, clk := newTestRegistry()
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()

	dir := t.TempDir()
	mk := func(node string) *shard {
		cfg := ingest.Config{EpochEvents: 251, Workers: 2, ChunkRows: 64}
		if node == "c2" {
			// The victim journals every accepted batch synchronously, so
			// kill -9 loses nothing.
			cfg.DataDir, cfg.WALSync = dir, "always"
		}
		return newShard(t, world, node, cfg)
	}
	shards := map[string]*shard{}
	addrs := map[string]string{}
	for _, n := range nodes {
		shards[n] = mk(n)
		addrs[n] = shards[n].srv.URL
		reg.Observe(Heartbeat{Node: n, Addr: shards[n].srv.URL})
	}
	defer func() {
		for _, s := range shards {
			s.close()
		}
	}()

	cl, err := NewClient(ring, addrs)
	if err != nil {
		t.Fatal(err)
	}
	cl.Registries = []string{regSrv.URL}
	cl.Retry = &ingest.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	cl.RetargetDelay = time.Millisecond

	users := sortedUsers(evs)
	parts := ring.Partition(users)
	victimUsers := parts["c2"]
	if len(victimUsers) < 2 {
		t.Fatalf("victim shard owns %d users; rig too small for the scenario", len(victimUsers))
	}

	// Phase 1: upload the first half of every user's stream.
	const batchSize = 97
	upload := func(uid int32, from, to int) {
		t.Helper()
		stream := evs[uid]
		if to > len(stream) {
			to = len(stream)
		}
		for off := from; off < to; off += batchSize {
			hi := off + batchSize
			if hi > to {
				hi = to
			}
			if _, err := cl.Upload(ingest.Batch{User: uid, Seq: uint64(off), Events: stream[off:hi]}); err != nil {
				t.Fatalf("user %d seq %d: %v", uid, off, err)
			}
		}
	}
	for _, uid := range users {
		upload(uid, 0, len(evs[uid])/2)
	}

	// Kill the victim mid-replay: the process dies (server gone,
	// collector closed), the registry ages it to dead.
	shards["c2"].close()
	clk.advance(time.Minute)
	if m, _ := reg.Lookup("c2"); m.State != StateDead {
		t.Fatalf("victim state %v, want dead", m.State)
	}

	// Restart at a NEW address on the same data dir; recovery replays
	// the journal, then the shard heartbeats its new home.
	shards["c2"] = mk("c2")
	if shards["c2"].srv.URL == addrs["c2"] {
		t.Fatalf("restarted shard reused address %s; the test needs a move", addrs["c2"])
	}
	reg.Observe(Heartbeat{Node: "c2", Addr: shards["c2"].srv.URL})

	// A retransmit of an already-journaled batch must dedup against the
	// recovered floors — the lost-response case, exactly-once.
	ruid := victimUsers[0]
	half := len(evs[ruid]) / 2
	firstLen := batchSize
	if firstLen > half {
		firstLen = half
	}
	res, err := cl.Upload(ingest.Batch{User: ruid, Seq: 0, Events: evs[ruid][:firstLen]})
	if err != nil {
		t.Fatalf("retransmit after restart: %v", err)
	}
	if res.Accepted != 0 || res.Duplicate != firstLen {
		t.Fatalf("retransmit applied twice: accepted %d, duplicate %d (want 0/%d)", res.Accepted, res.Duplicate, firstLen)
	}

	// Phase 2: finish every stream. The victim's users flow to the new
	// address via registry retargeting (the stale cached address fails
	// first).
	for _, uid := range users {
		upload(uid, len(evs[uid])/2, len(evs[uid]))
	}
	if cl.Addr("c2") != shards["c2"].srv.URL {
		t.Errorf("client did not retarget: still %s", cl.Addr("c2"))
	}
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Merge the cluster and compare against an uninterrupted run.
	var exports []*ingest.ShardExport
	for _, n := range nodes {
		data, _, err := shards[n].c.EncodeSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ingest.DecodeShardExport(data)
		if err != nil {
			t.Fatal(err)
		}
		exports = append(exports, ex)
	}
	merged, err := ingest.MergeExports(world, exports, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertMergedEqualsReference(t, merged, singleReference(t, world, evs))
}
