package cluster

import (
	"fmt"
	"net/http"

	"crossborder/internal/classify"
)

// MetricsHandler returns the merge tier's Prometheus-style plain-text
// metrics surface (same exposition format as the collector's /metrics):
// registry membership by liveness state, cumulative liveness
// transitions, fan-in re-merge count, and the process-wide projection
// scan counters (chunks pruned by zone map, pushdown vs fallback
// scans). fanin may be nil when the caller runs a registry without a
// merge tier.
func MetricsHandler(reg *Registry, fanin *Fanin) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		counter := func(name, help string, v int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			fmt.Fprintf(w, "%s %d\n", name, v)
		}
		gauge := func(name, help string, v float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			fmt.Fprintf(w, "%s %g\n", name, v)
		}
		var alive, suspect, dead int
		for _, m := range reg.Members() {
			switch m.State {
			case StateAlive:
				alive++
			case StateSuspect:
				suspect++
			case StateDead:
				dead++
			}
		}
		gauge("mergerd_members_alive", "Registry members with on-schedule heartbeats.", float64(alive))
		gauge("mergerd_members_suspect", "Registry members with an overdue heartbeat.", float64(suspect))
		gauge("mergerd_members_dead", "Registry members past the dead window.", float64(dead))
		toAlive, toSuspect, toDead := reg.Transitions()
		counter("mergerd_member_transitions_alive_total", "Members observed recovering to alive.", int64(toAlive))
		counter("mergerd_member_transitions_suspect_total", "Members observed turning suspect.", int64(toSuspect))
		counter("mergerd_member_transitions_dead_total", "Members observed turning dead.", int64(toDead))
		if fanin != nil {
			counter("mergerd_remerges_total", "Merged snapshots published by the fan-in tier.", int64(fanin.Remerges()))
			ready := 0.0
			if fanin.Ready() == nil {
				ready = 1
			}
			gauge("mergerd_ready", "1 once the merged view covers every expected shard.", ready)
			counter("mergerd_breaker_trips_total", "Shard circuits opened after consecutive pull failures.", int64(fanin.BreakerTrips()))
			counter("mergerd_breaker_probes_total", "Half-open probes admitted to test shard recovery.", int64(fanin.BreakerProbes()))
			var open, stale int
			for _, h := range fanin.Health() {
				if h.Breaker != "closed" {
					open++
				}
				if h.Stale {
					stale++
				}
			}
			gauge("mergerd_breaker_open", "Shards whose circuit is currently open or probing.", float64(open))
			gauge("mergerd_stale_shards", "Shards served from a cached export past the staleness window.", float64(stale))
		}
		ss := classify.ReadScanStats()
		counter("mergerd_scan_chunks_total", "Chunks offered to projection scan kernels.", ss.ChunksScanned)
		counter("mergerd_scan_chunks_skipped_total", "Chunks pruned without loading a column (zone map / class bitmap).", ss.ChunksSkipped)
		counter("mergerd_pushdown_scans_total", "Experiment scans served by the projection path.", ss.PushdownScans)
		counter("mergerd_fallback_scans_total", "Experiment scans served by the decode-to-rows path.", ss.FallbackScans)
	})
}
