package cluster

import (
	"strings"
	"testing"
)

func TestHeartbeatWireRoundTrip(t *testing.T) {
	in := Heartbeat{Node: "c3", Addr: "http://10.0.0.7:8477", Epoch: 1 << 40, Rows: 987654321}
	out, err := DecodeHeartbeat(EncodeHeartbeat(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestMembersWireRoundTrip(t *testing.T) {
	in := []MemberRecord{
		{Node: "c1", Addr: "http://a:1", State: StateAlive, Epoch: 3, Rows: 10, LastSeenMs: 1700000000000},
		{Node: "c2", State: StateDead, LastSeenMs: 5},
	}
	out, err := DecodeMembers(EncodeMembers(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d != %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("member %d: %+v != %+v", i, out[i], in[i])
		}
	}
	if out, err := DecodeMembers(EncodeMembers(nil)); err != nil || len(out) != 0 {
		t.Fatalf("empty view round trip: %v, %d records", err, len(out))
	}
}

// TestWireRejects drives the decoders through every hardening branch.
func TestWireRejects(t *testing.T) {
	good := EncodeHeartbeat(Heartbeat{Node: "c1", Addr: "http://a:1", Epoch: 1, Rows: 2})
	cases := map[string][]byte{
		"empty":        nil,
		"short":        good[:6],
		"bad magic":    append([]byte("XXXX"), good[4:]...),
		"bad checksum": append(append([]byte{}, good[:8]...), append([]byte{0xFF}, good[9:]...)...),
		"truncated":    append([]byte{}, EncodeHeartbeat(Heartbeat{Node: "c1"})[:9]...),
	}
	for name, data := range cases {
		if _, err := DecodeHeartbeat(data); err == nil {
			t.Errorf("heartbeat decoder accepted %s", name)
		}
		if _, err := DecodeMembers(data); err == nil {
			t.Errorf("members decoder accepted %s", name)
		}
	}
	// Empty node names are refused on both formats.
	if _, err := DecodeHeartbeat(EncodeHeartbeat(Heartbeat{Addr: "http://a:1"})); err == nil {
		t.Error("heartbeat with empty node accepted")
	}
	if _, err := DecodeMembers(EncodeMembers([]MemberRecord{{Addr: "x"}})); err == nil {
		t.Error("member with empty node accepted")
	}
	// Oversized strings are refused before allocation.
	if _, err := DecodeHeartbeat(EncodeHeartbeat(Heartbeat{Node: strings.Repeat("n", maxWireString + 1)})); err == nil {
		t.Error("oversized node name accepted")
	}
	// Invalid state byte.
	if _, err := DecodeMembers(EncodeMembers([]MemberRecord{{Node: "c1", State: State(9)}})); err == nil {
		t.Error("invalid state accepted")
	}
	// Trailing bytes are refused even under a valid checksum.
	if _, err := DecodeHeartbeat(frame(hbMagic, append(append([]byte{}, good[8:]...), 0))); err == nil {
		t.Error("trailing bytes accepted")
	}
}
