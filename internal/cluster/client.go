package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"crossborder/internal/ingest"
)

// Client is the ring-aware upload client: every batch goes to the ring
// owner of its user, so each collector sees a disjoint partition of the
// user population and per-user sequencing stays exactly-once no matter
// how many uploaders run.
//
// Ownership is by stable node NAME; the name resolves to an address
// through a membership view. When a shard stops answering (its
// per-request retry budget exhausts), the client retargets: it
// re-resolves the owner's address from the registries and tries again —
// a restarted collector may come back elsewhere, but the user never
// rehashes to a different shard (that would fork its sequence floor and
// double-apply its events). With no registries the retarget rounds
// simply retry the configured address, riding out a restart in place.
type Client struct {
	// HTTP, Binary, Retry configure the underlying per-shard
	// ingest.Client (see those fields there).
	HTTP   *http.Client
	Binary bool
	Retry  *ingest.RetryPolicy
	// Registries are base URLs whose /cluster/v1/members view resolves
	// node names to addresses during retargeting (typically the mergerd
	// address; any heartbeat sink works).
	Registries []string
	// RetargetAttempts bounds address re-resolution rounds after a
	// shard's retry budget exhausts (0 = 4).
	RetargetAttempts int
	// RetargetDelay is the pause before each re-resolution round
	// (0 = 250ms) — long enough for a restarted shard to heartbeat.
	RetargetDelay time.Duration

	ring *Ring

	mu    sync.Mutex
	addrs map[string]string // node name -> base URL
}

// NewClient builds a client over a ring and the initial node -> base
// URL map. Every ring node needs an address (uploads for its users have
// nowhere else to go).
func NewClient(ring *Ring, addrs map[string]string) (*Client, error) {
	m := make(map[string]string, len(addrs))
	for _, n := range ring.Nodes() {
		a, ok := addrs[n]
		if !ok || a == "" {
			return nil, fmt.Errorf("cluster: no address for ring node %q", n)
		}
		m[n] = a
	}
	return &Client{ring: ring, addrs: m}, nil
}

// Ring returns the client's hash ring.
func (c *Client) Ring() *Ring { return c.ring }

// Owner returns the node name owning a user's uploads.
func (c *Client) Owner(user int32) string { return c.ring.Owner(user) }

// Addr returns the current resolved address of a node.
func (c *Client) Addr(node string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.addrs[node]
}

// shard builds the per-request ingest client for a node at its current
// address.
func (c *Client) shard(node string) *ingest.Client {
	return &ingest.Client{Base: c.Addr(node), HTTP: c.HTTP, Binary: c.Binary, Retry: c.Retry}
}

// retarget re-resolves one node's address from the registries, keeping
// the freshest record that carries an address. Returns true if any
// registry knew the node.
func (c *Client) retarget(node string) bool {
	var (
		best     MemberRecord
		found    bool
	)
	for _, reg := range c.Registries {
		recs, err := FetchMembers(c.HTTP, reg)
		if err != nil {
			continue
		}
		for _, rec := range recs {
			if rec.Node == node && rec.Addr != "" && (!found || rec.LastSeenMs > best.LastSeenMs) {
				best, found = rec, true
			}
		}
	}
	if found {
		c.mu.Lock()
		c.addrs[node] = best.Addr
		c.mu.Unlock()
	}
	return found
}

// withShard runs fn against a node's collector, retargeting between
// rounds when it fails: round 0 uses the current address, each later
// round waits RetargetDelay, re-resolves, and retries.
func (c *Client) withShard(node string, fn func(cl *ingest.Client) error) error {
	attempts := c.RetargetAttempts
	if attempts <= 0 {
		attempts = 4
	}
	delay := c.RetargetDelay
	if delay <= 0 {
		delay = 250 * time.Millisecond
	}
	var lastErr error
	for round := 0; round <= attempts; round++ {
		if round > 0 {
			time.Sleep(delay)
			c.retarget(node)
		}
		if err := fn(c.shard(node)); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("cluster: shard %s unreachable after %d retarget rounds: %w", node, attempts, lastErr)
}

// Upload routes one batch to its user's owner, retargeting on failure.
// Retransmits after a lost response are deduplicated server-side, so
// the events apply exactly once even across a shard restart.
func (c *Client) Upload(b ingest.Batch) (ingest.UploadResult, error) {
	var res ingest.UploadResult
	err := c.withShard(c.ring.Owner(b.User), func(cl *ingest.Client) error {
		var err error
		res, err = cl.Upload(b)
		return err
	})
	return res, err
}

// FlushAll commits the pending epoch (and checkpoint, when durable) on
// every shard.
func (c *Client) FlushAll() error {
	for _, node := range c.ring.Nodes() {
		if err := c.withShard(node, func(cl *ingest.Client) error {
			_, _, err := cl.Flush()
			return err
		}); err != nil {
			return err
		}
	}
	return nil
}

// Replay uploads recorded per-user event streams across the cluster:
// users partition by ring owner, one uploader goroutine per shard
// drives its partition in ascending user id (each user's stream stays
// in order on one connection, which the sequence floors require). The
// final partial epoch is left pending on every shard; FlushAll commits
// them.
func (c *Client) Replay(events map[int32][]ingest.Event, batchSize int) (ingest.ReplayStats, error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	users := make([]int32, 0, len(events))
	for uid := range events {
		users = append(users, uid)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	parts := c.ring.Partition(users)

	stats := ingest.ReplayStats{Users: len(users)}
	start := time.Now()
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for node, uids := range parts {
		wg.Add(1)
		go func(node string, uids []int32) {
			defer wg.Done()
			events2, batches := 0, 0
			var err error
			for _, uid := range uids {
				evs := events[uid]
				for off := 0; off < len(evs); off += batchSize {
					hi := off + batchSize
					if hi > len(evs) {
						hi = len(evs)
					}
					if _, err = c.Upload(ingest.Batch{User: uid, Seq: uint64(off), Events: evs[off:hi]}); err != nil {
						err = fmt.Errorf("user %d seq %d: %w", uid, off, err)
						break
					}
					batches++
				}
				if err != nil {
					break
				}
				events2 += len(evs)
			}
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			stats.Events += events2
			stats.Batches += batches
			mu.Unlock()
		}(node, uids)
	}
	wg.Wait()
	stats.Duration = time.Since(start)
	return stats, firstErr
}
