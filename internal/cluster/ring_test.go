package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndOrderInvariant(t *testing.T) {
	a, err := NewRing([]string{"c1", "c2", "c3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"c3", "c1", "c2", "c2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < 10000; u++ {
		if a.Owner(u) != b.Owner(u) {
			t.Fatalf("user %d: owner %q vs %q under permuted construction", u, a.Owner(u), b.Owner(u))
		}
	}
}

func TestRingRejectsBadNodes(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
}

// TestRingStabilityUnderChurn is the property that makes per-user
// sequence floors survive topology changes: removing one shard only
// moves the users it owned, and adding one back only claims users, so
// no surviving shard's users ever rehash elsewhere.
func TestRingStabilityUnderChurn(t *testing.T) {
	nodes := []string{"c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8"}
	r8, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := r8.Remove("c5")
	if err != nil {
		t.Fatal(err)
	}
	back, err := r7.Add("c5")
	if err != nil {
		t.Fatal(err)
	}
	const users = 50000
	moved := 0
	for u := int32(0); u < users; u++ {
		before, after := r8.Owner(u), r7.Owner(u)
		if before != "c5" && after != before {
			t.Fatalf("user %d moved %s -> %s though neither is the removed shard", u, before, after)
		}
		if before == "c5" {
			moved++
		}
		if got := back.Owner(u); got != before {
			t.Fatalf("user %d: remove+add is not the identity (%s -> %s)", u, before, got)
		}
	}
	if moved == 0 {
		t.Fatal("removed shard owned no users; balance is broken")
	}
}

// TestRingBalance: with the default vnode factor, an 8-shard ring
// splits the user population within a reasonable factor of even.
func TestRingBalance(t *testing.T) {
	var nodes []string
	for i := 1; i <= 8; i++ {
		nodes = append(nodes, fmt.Sprintf("c%d", i))
	}
	r, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	const users = 100000
	counts := make(map[string]int)
	for u := int32(0); u < users; u++ {
		counts[r.Owner(u)]++
	}
	want := users / len(nodes)
	for n, got := range counts {
		if got < want/2 || got > want*2 {
			t.Errorf("shard %s owns %d of %d users (even share %d); ring is badly unbalanced", n, got, users, want)
		}
	}
	parts := r.Partition([]int32{5, 1, 9, 5})
	total := 0
	for n, uids := range parts {
		for _, u := range uids {
			if r.Owner(u) != n {
				t.Errorf("Partition put user %d under %s, Owner says %s", u, n, r.Owner(u))
			}
		}
		total += len(uids)
	}
	if total != 4 {
		t.Errorf("Partition dropped users: %d of 4", total)
	}
}
