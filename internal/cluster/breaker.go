package cluster

import (
	"sort"
	"time"
)

// Breaker defaults (see the corresponding Fanin fields).
const (
	defaultBreakerFails    = 3
	defaultBreakerCooldown = 10 * time.Second
	defaultStaleAfter      = 30 * time.Second
)

// breakerState is the classic three-state circuit: closed (pulling
// normally), open (shard written off for a cooldown; its cached export
// keeps serving), half-open (one probe in flight to test recovery).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one shard's circuit. Guarded by Fanin.mu.
type breaker struct {
	state    breakerState
	fails    int       // consecutive pull failures
	openedAt time.Time // when the circuit last opened
	lastOK   time.Time // last successful pull (200 or 304), or first-seen
}

func (f *Fanin) now() time.Time {
	if f.Clock != nil {
		return f.Clock()
	}
	return time.Now()
}

func (f *Fanin) failLimit() int {
	if f.BreakerFails > 0 {
		return f.BreakerFails
	}
	return defaultBreakerFails
}

func (f *Fanin) cooldown() time.Duration {
	if f.BreakerCooldown > 0 {
		return f.BreakerCooldown
	}
	return defaultBreakerCooldown
}

func (f *Fanin) staleLimit() time.Duration {
	if f.StaleAfter > 0 {
		return f.StaleAfter
	}
	return defaultStaleAfter
}

// breakerOf returns node's circuit, creating it closed. Callers hold
// f.mu. lastOK starts at now: age measures "time since last fresh
// data or first contact", never "since the epoch".
func (f *Fanin) breakerOf(node string) *breaker {
	if f.breakers == nil {
		f.breakers = make(map[string]*breaker)
	}
	b := f.breakers[node]
	if b == nil {
		b = &breaker{state: breakerClosed, lastOK: f.now()}
		f.breakers[node] = b
	}
	return b
}

// admitPull decides whether this round pulls node at all. An open
// circuit inside its cooldown answers no — the shard's cached export
// keeps serving and the shard is spared the hammering. Past the
// cooldown the circuit goes half-open and admits exactly this round's
// pull as the probe.
func (f *Fanin) admitPull(node string) bool {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakerOf(node)
	switch b.state {
	case breakerOpen:
		if now.Sub(b.openedAt) < f.cooldown() {
			return false
		}
		b.state = breakerHalfOpen
		f.bProbes.Add(1)
		return true
	default:
		return true
	}
}

// recordPull folds one pull outcome into node's circuit: success
// closes it and refreshes the staleness clock; failure counts toward
// the trip limit, and a failed half-open probe re-opens immediately.
func (f *Fanin) recordPull(node string, err error) {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	b := f.breakerOf(node)
	if err == nil {
		b.state = breakerClosed
		b.fails = 0
		b.lastOK = now
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || b.fails >= f.failLimit() {
		if b.state != breakerOpen {
			f.bTrips.Add(1)
		}
		b.state = breakerOpen
		b.openedAt = now
	}
}

// ShardHealth is one shard's entry in the fan-in health report: the
// breaker state, how long the merged view has been serving this
// shard's data without a fresh pull, and the last pull error.
type ShardHealth struct {
	Node    string `json:"node"`
	Breaker string `json:"breaker"`
	// Fails is the current consecutive-failure count.
	Fails int `json:"consecutive_failures,omitempty"`
	// Epoch is the cached export's epoch (what the merged view serves).
	Epoch int `json:"epoch"`
	// AgeSeconds is time since the last successful pull (or first
	// contact); Stale marks it past StaleAfter.
	AgeSeconds float64 `json:"age_seconds"`
	Stale      bool    `json:"stale,omitempty"`
	LastError  string  `json:"last_error,omitempty"`
}

// Health reports every known shard (expected, cached, or tracked),
// sorted by node name. Safe for concurrent use.
func (f *Fanin) Health() []ShardHealth {
	now := f.now()
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make(map[string]bool)
	for _, s := range f.Shards {
		names[s] = true
	}
	for n := range f.cache {
		names[n] = true
	}
	for n := range f.breakers {
		names[n] = true
	}
	out := make([]ShardHealth, 0, len(names))
	for n := range names {
		h := ShardHealth{Node: n, Breaker: breakerClosed.String()}
		if b := f.breakers[n]; b != nil {
			h.Breaker = b.state.String()
			h.Fails = b.fails
			age := now.Sub(b.lastOK)
			h.AgeSeconds = age.Seconds()
			h.Stale = age > f.staleLimit()
		}
		if c := f.cache[n]; c != nil {
			h.Epoch = c.epoch
		}
		if e := f.pullErr[n]; e != nil {
			h.LastError = e.Error()
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Degraded names the shards currently served from second-hand data: an
// open or probing circuit, or a cache past StaleAfter. Empty means
// every shard's contribution is fresh. A degraded fan-in stays Ready —
// serving the last good union beats serving nothing — but /readyz and
// /v1/stats surface the detail so operators see it.
func (f *Fanin) Degraded() []string {
	var out []string
	for _, h := range f.Health() {
		if h.Breaker != "closed" || h.Stale {
			out = append(out, h.Node)
		}
	}
	return out
}

// BreakerTrips returns how many times any shard's circuit opened.
func (f *Fanin) BreakerTrips() uint64 { return f.bTrips.Load() }

// BreakerProbes returns how many half-open probes were admitted.
func (f *Fanin) BreakerProbes() uint64 { return f.bProbes.Load() }
