package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Heartbeat and membership wire formats. Both frames open with a
// 4-byte magic and a CRC32C (Castagnoli) over the body, like every
// other frame in this repo (WAL records, checkpoints, chunk blocks);
// the decoders validate every declared length against hard caps before
// allocating, so arbitrary input fails fast instead of ballooning
// memory (FuzzDecodeHeartbeat / FuzzDecodeMembers).
//
//	heartbeat  = "XHB1" crc32c body
//	body       = str(node) str(addr) uvarint(epoch) uvarint(rows)
//	members    = "XMB1" crc32c uvarint(count) member*
//	member     = str(node) str(addr) byte(state)
//	             uvarint(epoch) uvarint(rows) uvarint(lastSeenUnixMs)
//	str        = uvarint(len) bytes
var (
	hbMagic  = [4]byte{'X', 'H', 'B', '1'}
	memMagic = [4]byte{'X', 'M', 'B', '1'}
)

// Wire caps: a node name or address is a hostname-sized string, a
// membership view is a cluster-sized list.
const (
	maxWireString = 256
	maxWireMember = 4096
)

var wireCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrBadFrame reports an undecodable heartbeat or membership frame.
var ErrBadFrame = errors.New("cluster: bad wire frame")

// Heartbeat is one shard's liveness announcement: who it is, where its
// HTTP API listens, and its epoch high-water mark, so registries (and
// through them, the fan-in tier) know both that the shard lives and
// how far its committed state has advanced.
type Heartbeat struct {
	// Node is the shard's stable name — its ring identity. It must not
	// change across restarts.
	Node string
	// Addr is the shard's advertised base URL (e.g. "http://10.0.0.7:8477").
	// A restarted collector may advertise a new address under the same
	// node name; clients re-resolve through the registry.
	Addr string
	// Epoch is the shard's committed epoch high-water mark.
	Epoch uint64
	// Rows is the shard's dataset row count at that epoch.
	Rows uint64
}

// EncodeHeartbeat renders hb in wire form.
func EncodeHeartbeat(hb Heartbeat) []byte {
	body := appendWireString(nil, hb.Node)
	body = appendWireString(body, hb.Addr)
	body = binary.AppendUvarint(body, hb.Epoch)
	body = binary.AppendUvarint(body, hb.Rows)
	return frame(hbMagic, body)
}

// DecodeHeartbeat parses a wire heartbeat, rejecting bad magic, a
// checksum mismatch, oversized strings, an empty node name, or
// trailing bytes.
func DecodeHeartbeat(data []byte) (Heartbeat, error) {
	body, err := unframe(hbMagic, data)
	if err != nil {
		return Heartbeat{}, err
	}
	var hb Heartbeat
	if hb.Node, body, err = wireString(body); err != nil {
		return Heartbeat{}, fmt.Errorf("%w: node: %v", ErrBadFrame, err)
	}
	if hb.Node == "" {
		return Heartbeat{}, fmt.Errorf("%w: empty node name", ErrBadFrame)
	}
	if hb.Addr, body, err = wireString(body); err != nil {
		return Heartbeat{}, fmt.Errorf("%w: addr: %v", ErrBadFrame, err)
	}
	if hb.Epoch, body, err = wireUvarint(body); err != nil {
		return Heartbeat{}, fmt.Errorf("%w: epoch: %v", ErrBadFrame, err)
	}
	if hb.Rows, body, err = wireUvarint(body); err != nil {
		return Heartbeat{}, fmt.Errorf("%w: rows: %v", ErrBadFrame, err)
	}
	if len(body) != 0 {
		return Heartbeat{}, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(body))
	}
	return hb, nil
}

// MemberRecord is one row of a wire membership view: a Member flattened
// for gossip exchange between registries.
type MemberRecord struct {
	Node       string
	Addr       string
	State      State
	Epoch      uint64
	Rows       uint64
	LastSeenMs uint64 // unix milliseconds of the last direct heartbeat
}

// EncodeMembers renders a membership view in wire form.
func EncodeMembers(recs []MemberRecord) []byte {
	body := binary.AppendUvarint(nil, uint64(len(recs)))
	for _, m := range recs {
		body = appendWireString(body, m.Node)
		body = appendWireString(body, m.Addr)
		body = append(body, byte(m.State))
		body = binary.AppendUvarint(body, m.Epoch)
		body = binary.AppendUvarint(body, m.Rows)
		body = binary.AppendUvarint(body, m.LastSeenMs)
	}
	return frame(memMagic, body)
}

// DecodeMembers parses a wire membership view with the same hardening
// as DecodeHeartbeat, plus a member-count cap and per-member state
// validation.
func DecodeMembers(data []byte) ([]MemberRecord, error) {
	body, err := unframe(memMagic, data)
	if err != nil {
		return nil, err
	}
	count, body, err := wireUvarint(body)
	if err != nil {
		return nil, fmt.Errorf("%w: count: %v", ErrBadFrame, err)
	}
	if count > maxWireMember {
		return nil, fmt.Errorf("%w: %d members exceeds the %d cap", ErrBadFrame, count, maxWireMember)
	}
	// Minimum 6 bytes per member (two empty strings, state, three
	// zero uvarints): reject counts the body cannot possibly hold
	// before allocating.
	if count*6 > uint64(len(body)) {
		return nil, fmt.Errorf("%w: %d members in %d bytes", ErrBadFrame, count, len(body))
	}
	recs := make([]MemberRecord, 0, count)
	for k := uint64(0); k < count; k++ {
		var m MemberRecord
		if m.Node, body, err = wireString(body); err != nil {
			return nil, fmt.Errorf("%w: member %d node: %v", ErrBadFrame, k, err)
		}
		if m.Node == "" {
			return nil, fmt.Errorf("%w: member %d has an empty node name", ErrBadFrame, k)
		}
		if m.Addr, body, err = wireString(body); err != nil {
			return nil, fmt.Errorf("%w: member %d addr: %v", ErrBadFrame, k, err)
		}
		if len(body) == 0 {
			return nil, fmt.Errorf("%w: member %d truncated", ErrBadFrame, k)
		}
		m.State = State(body[0])
		body = body[1:]
		if m.State > StateDead {
			return nil, fmt.Errorf("%w: member %d state 0x%02x", ErrBadFrame, k, byte(m.State))
		}
		if m.Epoch, body, err = wireUvarint(body); err != nil {
			return nil, fmt.Errorf("%w: member %d epoch: %v", ErrBadFrame, k, err)
		}
		if m.Rows, body, err = wireUvarint(body); err != nil {
			return nil, fmt.Errorf("%w: member %d rows: %v", ErrBadFrame, k, err)
		}
		if m.LastSeenMs, body, err = wireUvarint(body); err != nil {
			return nil, fmt.Errorf("%w: member %d last-seen: %v", ErrBadFrame, k, err)
		}
		recs = append(recs, m)
	}
	if len(body) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(body))
	}
	return recs, nil
}

func frame(magic [4]byte, body []byte) []byte {
	out := append([]byte(nil), magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, wireCastagnoli))
	return append(out, body...)
}

func unframe(magic [4]byte, data []byte) ([]byte, error) {
	if len(data) < 8 || string(data[:4]) != string(magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	sum := binary.LittleEndian.Uint32(data[4:8])
	body := data[8:]
	if crc32.Checksum(body, wireCastagnoli) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	return body, nil
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func wireString(b []byte) (string, []byte, error) {
	n, rest, err := wireUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > maxWireString {
		return "", nil, fmt.Errorf("string of %d bytes exceeds the %d cap", n, maxWireString)
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("string of %d bytes truncated at %d", n, len(rest))
	}
	return string(rest[:n]), rest[n:], nil
}

func wireUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errors.New("bad uvarint")
	}
	return v, b[n:], nil
}
