package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// State is a member's liveness as judged from its heartbeat recency.
type State uint8

const (
	// StateAlive: heartbeats arriving on schedule.
	StateAlive State = iota
	// StateSuspect: a heartbeat is overdue, but not by enough to write
	// the member off — clients still try it first, the fan-in tier
	// still pulls from it.
	StateSuspect
	// StateDead: no heartbeat for the dead window. Clients re-resolve,
	// the fan-in tier serves the member's last merged state until it
	// returns.
	StateDead
)

// String returns the lowercase state name.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// MarshalJSON renders the state as its name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON accepts a state name.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "alive":
		*s = StateAlive
	case "suspect":
		*s = StateSuspect
	case "dead":
		*s = StateDead
	default:
		return fmt.Errorf("cluster: unknown state %q", name)
	}
	return nil
}

// Member is one shard's registry entry.
type Member struct {
	Node     string    `json:"node"`
	Addr     string    `json:"addr"`
	State    State     `json:"state"`
	Epoch    int       `json:"epoch"`
	Rows     int       `json:"rows"`
	LastSeen time.Time `json:"last_seen"`
}

// Registry is the membership table: heartbeats (direct or gossiped)
// come in, liveness-annotated members come out. States derive from
// heartbeat recency at read time — alive within SuspectAfter, suspect
// within DeadAfter, dead beyond — so the registry needs no background
// reaper. Members are never removed: a dead shard that resumes
// heartbeating is alive again, and its entry meanwhile tells clients
// the last known address.
//
// Registries merge (gossip): Merge folds another registry's view in,
// keeping whichever sighting of each node is fresher, so any connected
// exchange graph converges every registry to the freshest view.
type Registry struct {
	// SuspectAfter and DeadAfter are the recency windows (defaults 3s
	// and 10s).
	suspectAfter time.Duration
	deadAfter    time.Duration
	now          func() time.Time

	mu      sync.Mutex
	members map[string]*memberState
	// Liveness transition counters, diffed at read time (states are
	// derived, not stored, so a transition is observed the first time a
	// read sees the new state). Guarded by mu.
	transAlive, transSuspect, transDead uint64
}

type memberState struct {
	addr       string
	epoch      uint64
	rows       uint64
	lastSeen   time.Time
	lastState  State
	stateKnown bool
}

// NewRegistry returns an empty registry with the given liveness
// windows (<= 0 picks the defaults: suspect after 3s, dead after 10s).
func NewRegistry(suspectAfter, deadAfter time.Duration) *Registry {
	if suspectAfter <= 0 {
		suspectAfter = 3 * time.Second
	}
	if deadAfter <= suspectAfter {
		deadAfter = 10 * time.Second
		if deadAfter <= suspectAfter {
			deadAfter = suspectAfter * 3
		}
	}
	return &Registry{
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		now:          time.Now,
		members:      make(map[string]*memberState),
	}
}

// SetClock injects a clock for deterministic tests.
func (r *Registry) SetClock(now func() time.Time) { r.now = now }

// Observe records a direct heartbeat at the current time.
func (r *Registry) Observe(hb Heartbeat) {
	if hb.Node == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.members[hb.Node]
	if m == nil {
		m = &memberState{}
		r.members[hb.Node] = m
	}
	if hb.Addr != "" {
		m.addr = hb.Addr
	}
	m.epoch, m.rows = hb.Epoch, hb.Rows
	m.lastSeen = r.now()
}

// Merge folds a gossiped membership view in: per node, the fresher
// sighting (by last-seen time) wins. Merging is commutative and
// idempotent, so registries may exchange views in any order and
// converge.
func (r *Registry) Merge(recs []MemberRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, rec := range recs {
		if rec.Node == "" {
			continue
		}
		seen := time.UnixMilli(int64(rec.LastSeenMs))
		m := r.members[rec.Node]
		if m == nil {
			m = &memberState{}
			r.members[rec.Node] = m
		} else if !seen.After(m.lastSeen) {
			continue
		}
		if rec.Addr != "" {
			m.addr = rec.Addr
		}
		m.epoch, m.rows = rec.Epoch, rec.Rows
		m.lastSeen = seen
	}
}

func (r *Registry) stateOf(m *memberState, now time.Time) State {
	switch age := now.Sub(m.lastSeen); {
	case age < r.suspectAfter:
		return StateAlive
	case age < r.deadAfter:
		return StateSuspect
	default:
		return StateDead
	}
}

// Members returns the full view sorted by node name, states computed
// at call time.
func (r *Registry) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	out := make([]Member, 0, len(r.members))
	for node, m := range r.members {
		st := r.stateOf(m, now)
		if !m.stateKnown {
			m.stateKnown = true
			m.lastState = st
		} else if st != m.lastState {
			switch st {
			case StateAlive:
				r.transAlive++
			case StateSuspect:
				r.transSuspect++
			case StateDead:
				r.transDead++
			}
			m.lastState = st
		}
		out = append(out, Member{
			Node:     node,
			Addr:     m.addr,
			State:    st,
			Epoch:    int(m.epoch),
			Rows:     int(m.rows),
			LastSeen: m.lastSeen,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Transitions returns the cumulative liveness transition counts: how
// many times a member became alive (recovered), suspect, or dead since
// the registry started. Transitions are observed at read time — states
// derive from heartbeat recency, so a flap between two reads that lands
// back on the previous state is not counted.
func (r *Registry) Transitions() (toAlive, toSuspect, toDead uint64) {
	r.Members() // fold current states into the counters first
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.transAlive, r.transSuspect, r.transDead
}

// Lookup returns one member's entry.
func (r *Registry) Lookup(node string) (Member, bool) {
	for _, m := range r.Members() {
		if m.Node == node {
			return m, true
		}
	}
	return Member{}, false
}

// Records renders the view as wire records for gossip.
func (r *Registry) Records() []MemberRecord {
	members := r.Members()
	recs := make([]MemberRecord, len(members))
	for i, m := range members {
		recs[i] = MemberRecord{
			Node:       m.Node,
			Addr:       m.Addr,
			State:      m.State,
			Epoch:      uint64(m.Epoch),
			Rows:       uint64(m.Rows),
			LastSeenMs: uint64(m.LastSeen.UnixMilli()),
		}
	}
	return recs
}

// Content types of the cluster wire formats.
const (
	ContentTypeHeartbeat = "application/x-crossborder-heartbeat"
	ContentTypeMembers   = "application/x-crossborder-members"
)

// maxFrameBytes bounds one heartbeat/gossip request body.
const maxFrameBytes = 1 << 20

// Handler returns the registry's HTTP surface:
//
//	POST /cluster/v1/heartbeat  one wire heartbeat (XHB1)
//	POST /cluster/v1/gossip     a wire membership view (XMB1) to merge
//	GET  /cluster/v1/members    the view (JSON; ?format=wire for XMB1)
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/heartbeat", r.handleHeartbeat)
	mux.HandleFunc("POST /cluster/v1/gossip", r.handleGossip)
	mux.HandleFunc("GET /cluster/v1/members", r.handleMembers)
	return mux
}

func (r *Registry) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxFrameBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hb, err := DecodeHeartbeat(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Observe(hb)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"members":%d}`+"\n", len(r.Members()))
}

func (r *Registry) handleGossip(w http.ResponseWriter, req *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, req.Body, maxFrameBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	recs, err := DecodeMembers(raw)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	r.Merge(recs)
	// Answer with our own view: one round trip gossips both ways.
	w.Header().Set("Content-Type", ContentTypeMembers)
	w.Write(EncodeMembers(r.Records()))
}

func (r *Registry) handleMembers(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "wire" {
		w.Header().Set("Content-Type", ContentTypeMembers)
		w.Write(EncodeMembers(r.Records()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(r.Members())
}
