// Package cluster scales the live collection backend horizontally: N
// collectd instances each own a partition of the user population
// (consistent hashing on user id), announce themselves over a
// lightweight heartbeat/gossip membership layer, and a fan-in tier
// (cmd/mergerd) pulls per-shard epoch snapshots and serves the full
// /v1/* query API from the merged global view.
//
// The pieces compose but stand alone:
//
//   - Ring: a consistent-hash ring with replicated virtual nodes that
//     maps user ids to shard names, stable under membership churn.
//   - Registry: the membership table — heartbeats in, liveness states
//     (alive/suspect/dead) out, mergeable across registries (gossip).
//   - Heartbeater: the collector-side loop that POSTs heartbeats
//     carrying the shard's epoch high-water mark.
//   - Client: ring-aware upload routing with registry-driven retarget:
//     hash locally, send to the owner, and on a dead shard re-resolve
//     the owner's current address (a restarted collector may come back
//     elsewhere; the ring assignment itself never moves, which is what
//     keeps per-user sequence floors — and exactly-once — intact).
//   - Fanin: the merge tier — pull /v1/snapshot exports from every
//     shard, merge via ingest.MergeExports, publish one global
//     copy-on-write snapshot.
package cluster

import (
	"fmt"
	"sort"
)

// defaultVNodes is the virtual-node replication factor: enough points
// that an 8-node ring balances user ownership within a few percent.
const defaultVNodes = 64

// Ring is a consistent-hash ring over a fixed set of named shards.
// Each shard contributes vnodes points; a user id hashes to the first
// point clockwise. Assignments are stable: adding or removing one
// shard only moves the users that shard owned (or inherits), never
// shuffles ownership among the survivors — the property that lets a
// cluster grow without re-partitioning every collector's sequence
// state.
//
// A Ring is immutable after construction; derive changed topologies
// with Add/Remove.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, unique
	vnodes int
}

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// NewRing builds a ring over the given shard names. vnodes <= 0 picks
// the default replication factor. Duplicate names collapse; at least
// one node is required.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = defaultVNodes
	}
	uniq := make(map[string]struct{}, len(nodes))
	var names []string
	for _, n := range nodes {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if _, dup := uniq[n]; !dup {
			uniq[n] = struct{}{}
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sort.Strings(names)
	r := &Ring{nodes: names, vnodes: vnodes}
	for ni, name := range names {
		h := fnv64a(name)
		for v := 0; v < vnodes; v++ {
			// Each virtual point chains from the node-name hash through
			// a splitmix round, so points of one node scatter uniformly
			// instead of clustering.
			r.points = append(r.points, ringPoint{hash: splitmix64(h + uint64(v)), node: ni})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare) break by node order so the
		// ring is deterministic regardless of construction order.
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// Nodes returns the shard names, sorted. Callers must not mutate the
// slice.
func (r *Ring) Nodes() []string { return r.nodes }

// VNodes returns the virtual-node replication factor.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the shard that owns the given user id.
func (r *Ring) Owner(user int32) string {
	return r.nodes[r.ownerIndex(userHash(user))]
}

// ownerIndex finds the first ring point at or clockwise of h.
func (r *Ring) ownerIndex(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].node
}

// Partition groups user ids by owning shard (each bucket preserves the
// input order).
func (r *Ring) Partition(users []int32) map[string][]int32 {
	out := make(map[string][]int32, len(r.nodes))
	for _, u := range users {
		n := r.Owner(u)
		out[n] = append(out[n], u)
	}
	return out
}

// Add returns a new ring with one more shard.
func (r *Ring) Add(node string) (*Ring, error) {
	return NewRing(append(append([]string(nil), r.nodes...), node), r.vnodes)
}

// Remove returns a new ring without the named shard.
func (r *Ring) Remove(node string) (*Ring, error) {
	var names []string
	for _, n := range r.nodes {
		if n != node {
			names = append(names, n)
		}
	}
	return NewRing(names, r.vnodes)
}

// userHash spreads the dense low user-id range over the full 64-bit
// ring keyspace.
func userHash(user int32) uint64 { return splitmix64(uint64(uint32(user)) + 0x9e3779b97f4a7c15) }

// fnv64a is the FNV-1a hash of s.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// 64-bit mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
