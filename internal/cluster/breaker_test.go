package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"crossborder/internal/ingest"
)

// TestBreakerOpensCoolsAndProbes walks one shard's circuit through the
// full closed → open → half-open → open → closed cycle against a
// flappy /v1/snapshot endpoint, with a fake clock stepping the
// cooldowns, and asserts the open circuit actually stops traffic.
func TestBreakerOpensCoolsAndProbes(t *testing.T) {
	var hits, failing atomic.Int64
	failing.Store(1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() == 1 {
			http.Error(w, "shard down", http.StatusInternalServerError)
			return
		}
		// Never reached while failing: the breaker test flips to healthy
		// only after the circuit closes again — via a real export below.
		http.Error(w, "no export wired", http.StatusInternalServerError)
	}))
	defer srv.Close()

	reg, _ := newTestRegistry()
	reg.Observe(Heartbeat{Node: "c1", Addr: srv.URL})

	clk := &fakeClock{t: time.UnixMilli(1_700_000_000_000)}
	f := &Fanin{
		Registry:        reg,
		Shards:          []string{"c1"},
		BreakerFails:    2,
		BreakerCooldown: 10 * time.Second,
		StaleAfter:      5 * time.Second,
		Clock:           clk.now,
	}

	// Two failing rounds trip the circuit.
	f.RefreshOnce()
	if h := f.Health()[0]; h.Breaker != "closed" || h.Fails != 1 {
		t.Fatalf("after 1 failure: %+v", h)
	}
	f.RefreshOnce()
	if h := f.Health()[0]; h.Breaker != "open" {
		t.Fatalf("after 2 failures: %+v, want open", h)
	}
	if f.BreakerTrips() != 1 {
		t.Fatalf("trips = %d, want 1", f.BreakerTrips())
	}

	// Open within cooldown: no traffic reaches the shard.
	before := hits.Load()
	clk.advance(3 * time.Second)
	f.RefreshOnce()
	f.RefreshOnce()
	if hits.Load() != before {
		t.Fatalf("open circuit leaked %d pulls", hits.Load()-before)
	}

	// Past cooldown: exactly one probe; it fails, the circuit re-opens.
	clk.advance(8 * time.Second)
	f.RefreshOnce()
	if hits.Load() != before+1 {
		t.Fatalf("half-open admitted %d pulls, want 1 probe", hits.Load()-before)
	}
	if f.BreakerProbes() != 1 || f.BreakerTrips() != 2 {
		t.Fatalf("probes=%d trips=%d, want 1/2", f.BreakerProbes(), f.BreakerTrips())
	}
	if h := f.Health()[0]; h.Breaker != "open" {
		t.Fatalf("failed probe left breaker %q, want open", h.Breaker)
	}

	// Staleness: no successful pull since the start.
	if h := f.Health()[0]; !h.Stale || h.AgeSeconds < 10 {
		t.Fatalf("shard not reported stale after %gs silence", h.AgeSeconds)
	}
	if d := f.Degraded(); len(d) != 1 || d[0] != "c1" {
		t.Fatalf("Degraded() = %v, want [c1]", d)
	}
}

// TestFaninDegradedModeServing is the chaos drill at the fan-in tier:
// a shard dies mid-run, the merged view keeps serving its cached
// export while /readyz, /v1/stats, and /metrics all say "degraded";
// the shard comes back, the circuit closes, and the final merged view
// is in full parity with an uninterrupted single collector.
func TestFaninDegradedModeServing(t *testing.T) {
	world, evs := crig(t)
	ring, err := NewRing([]string{"c1", "c2"}, 0)
	if err != nil {
		t.Fatal(err)
	}

	reg, _ := newTestRegistry()
	shards := map[string]*shard{
		"c1": newShard(t, world, "c1", ingest.Config{EpochEvents: 1 << 20, Workers: 2}),
		"c2": newShard(t, world, "c2", ingest.Config{EpochEvents: 1 << 20, Workers: 2}),
	}
	defer shards["c1"].close()
	defer func() { shards["c2"].close() }()

	parts := ring.Partition(sortedUsers(evs))
	if len(parts["c1"]) == 0 || len(parts["c2"]) < 2 {
		t.Fatalf("degenerate partition: %d/%d users", len(parts["c1"]), len(parts["c2"]))
	}

	// Mid-run: c1 has everything, c2 only half its users so far.
	feed(t, shards["c1"].c, evs, parts["c1"])
	c2Done, c2Held := parts["c2"][:len(parts["c2"])/2], parts["c2"][len(parts["c2"])/2:]
	feed(t, shards["c2"].c, evs, c2Done)
	shards["c1"].c.Flush()
	shards["c2"].c.Flush()
	for n, s := range shards {
		reg.Observe(Heartbeat{Node: n, Addr: s.srv.URL})
	}

	clk := &fakeClock{t: time.UnixMilli(1_700_000_000_000)}
	fanin := &Fanin{
		World: world, Registry: reg, Shards: []string{"c1", "c2"}, Workers: 2,
		BreakerFails: 1, BreakerCooldown: 10 * time.Second, StaleAfter: 5 * time.Second,
		Clock: clk.now,
	}
	if _, err := fanin.RefreshOnce(); err != nil {
		t.Fatalf("first refresh: %v", err)
	}
	if err := fanin.Ready(); err != nil {
		t.Fatalf("not ready after both shards merged: %v", err)
	}
	rowsBefore := fanin.Snapshot().Rows()

	qs := ingest.NewQueryServer(fanin.Snapshot, fanin.Ready)
	qs.OnHealth(func() (any, bool) {
		h := fanin.Health()
		return h, len(fanin.Degraded()) > 0
	})
	querySrv := httptest.NewServer(qs)
	defer querySrv.Close()
	metricsSrv := httptest.NewServer(MetricsHandler(reg, fanin))
	defer metricsSrv.Close()

	readyz := func() (status string, body map[string]any) {
		t.Helper()
		resp, err := http.Get(querySrv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/readyz = %d; degraded serving must stay ready", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body["status"].(string), body
	}
	if st, _ := readyz(); st != "ready" {
		t.Fatalf("healthy cluster /readyz status %q", st)
	}

	// Kill c2's HTTP front door mid-run. Its heartbeats keep flowing
	// (the process is alive, its snapshot endpoint is not), so the
	// fan-in keeps trying — and the breaker opens on the first failure.
	shards["c2"].srv.Close()
	if _, err := fanin.RefreshOnce(); err == nil {
		t.Fatal("refresh against a dead endpoint reported no error")
	}
	clk.advance(6 * time.Second) // past StaleAfter, inside cooldown
	// Another round: c1's pull succeeds (fresh again), c2's open circuit
	// skips the pull, so only c2 ages past the staleness window.
	if _, err := fanin.RefreshOnce(); err != nil {
		t.Fatalf("refresh with open circuit: %v", err)
	}

	if fanin.Snapshot().Rows() != rowsBefore {
		t.Fatal("losing c2 changed the served view; cached export must keep serving")
	}
	if err := fanin.Ready(); err != nil {
		t.Fatalf("degraded fan-in went un-ready: %v", err)
	}
	if d := fanin.Degraded(); len(d) != 1 || d[0] != "c2" {
		t.Fatalf("Degraded() = %v, want [c2]", d)
	}
	st, body := readyz()
	if st != "degraded" {
		t.Fatalf("/readyz status %q with an open shard circuit, want degraded", st)
	}
	if _, ok := body["shards"]; !ok {
		t.Fatal("/readyz degraded response missing per-shard detail")
	}
	var stats ingest.StatsResponse
	resp, err := http.Get(querySrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shards == nil {
		t.Fatal("/v1/stats missing shards health block")
	}
	mresp, err := http.Get(metricsSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mraw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"mergerd_breaker_trips_total 1", "mergerd_breaker_open 1", "mergerd_stale_shards 1"} {
		if !strings.Contains(string(mraw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// c2 returns on a fresh listener over the same collector, catches up
	// on its held-back users, and heartbeats its new address.
	shards["c2"].srv = httptest.NewServer(ingest.NewServer(shards["c2"].c))
	feed(t, shards["c2"].c, evs, c2Held)
	shards["c2"].c.Flush()
	reg.Observe(Heartbeat{Node: "c2", Addr: shards["c2"].srv.URL})

	// Past the cooldown the probe is admitted, succeeds, and closes the
	// circuit; the next merge folds in the recovered shard's new epoch.
	clk.advance(10 * time.Second)
	if _, err := fanin.RefreshOnce(); err != nil {
		t.Fatalf("refresh after recovery: %v", err)
	}
	if f := fanin.BreakerProbes(); f == 0 {
		t.Fatal("recovery happened without a half-open probe")
	}
	if d := fanin.Degraded(); len(d) != 0 {
		t.Fatalf("Degraded() = %v after recovery, want none", d)
	}
	if st, _ := readyz(); st != "ready" {
		t.Fatalf("/readyz status %q after recovery", st)
	}
	assertMergedEqualsReference(t, fanin.Snapshot(), singleReference(t, world, evs))
}
