// Package locality implements the paper's §5 what-if analyses: how much
// more local could tracking flows be if tracking domains used (i) DNS
// redirection to alternative servers already observed for the same FQDN,
// (ii) DNS redirection pooled across the whole registrable domain (TLD
// level), (iii) PoP mirroring across the datacenters of the public clouds
// the tracker already uses, or (iv) migration to any PoP of the nine major
// clouds. The outputs are the confinement percentages of Tables 5 and 6.
package locality

import (
	"sort"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/webgraph"
)

// Scenario selects a what-if policy.
type Scenario uint8

const (
	// Default is the observed assignment: no redirection.
	Default Scenario = iota
	// RedirectFQDN allows redirecting each request to any alternative
	// server observed for the same FQDN.
	RedirectFQDN
	// RedirectTLD allows redirecting to any server observed for any FQDN
	// under the same registrable domain.
	RedirectTLD
	// PoPMirror allows serving from any datacenter country of the cloud
	// providers the owning organization already leases from.
	PoPMirror
	// RedirectTLDPlusPoP combines RedirectTLD and PoPMirror.
	RedirectTLDPlusPoP
	// CloudMigration allows serving from any PoP country of any of the
	// nine major cloud providers (the §5.2 extreme scenario).
	CloudMigration
)

func (s Scenario) String() string {
	switch s {
	case Default:
		return "Default"
	case RedirectFQDN:
		return "Redirections (FQDN)"
	case RedirectTLD:
		return "Redirections (TLD)"
	case PoPMirror:
		return "POP Mirroring (Cloud)"
	case RedirectTLDPlusPoP:
		return "Redirection (TLD) + POP Mirroring (Cloud)"
	case CloudMigration:
		return "Migration to Cloud"
	default:
		return "Scenario(?)"
	}
}

// OrgClouds reports which cloud providers host (part of) the organization
// that owns an FQDN. The scenario package wires this to the synthetic
// world; tests can stub it.
type OrgClouds func(fqdn string) []geodata.CloudProvider

// flowKey aggregates identical observations.
type flowKey struct {
	src  geodata.Country
	fqdn uint32
	dst  geodata.Country
}

// Engine evaluates what-if scenarios over the observed tracking flows of
// EU28 users (the population of Table 5).
type Engine struct {
	flows map[flowKey]int64
	total int64

	fqdns *classify.Interner
	// byFQDN / byTLD: the set of destination countries observed for a
	// hostname / registrable domain across the whole dataset.
	byFQDN map[uint32]map[geodata.Country]struct{}
	byTLD  map[string]map[geodata.Country]struct{}
	// tldOf caches the registrable domain per FQDN id.
	tldOf map[uint32]string

	orgClouds OrgClouds
	// allCloudCountries caches the union of the nine providers' PoPs.
	allCloudCountries map[geodata.Country]struct{}
}

// NewEngine builds the engine from the classified dataset: it geolocates
// every tracking flow of every EU28 user with svc (the paper uses RIPE
// IPmap here) and indexes the observed alternatives.
func NewEngine(ds *classify.Dataset, svc geo.Service, orgClouds OrgClouds) *Engine {
	e := &Engine{
		flows:             make(map[flowKey]int64),
		fqdns:             ds.FQDNs,
		byFQDN:            make(map[uint32]map[geodata.Country]struct{}),
		byTLD:             make(map[string]map[geodata.Country]struct{}),
		tldOf:             make(map[uint32]string),
		orgClouds:         orgClouds,
		allCloudCountries: make(map[geodata.Country]struct{}),
	}
	for _, p := range geodata.AllCloudProviders() {
		for _, c := range geodata.CloudPoPCountries(p) {
			e.allCloudCountries[c] = struct{}{}
		}
	}
	ds.Scan(func(_ int, c *classify.Chunk) {
		for i, cls := range c.Class {
			if !cls.IsTracking() {
				continue
			}
			src := ds.Countries[c.Country[i]]
			if !geodata.IsEU28(src) {
				continue
			}
			loc, ok := svc.Locate(c.IP[i])
			if !ok {
				continue
			}
			e.add(src, c.FQDN[i], loc.Country)
		}
	})
	return e
}

// add records one observed flow and indexes the destination as an
// available alternative for its FQDN and TLD.
func (e *Engine) add(src geodata.Country, fqdnID uint32, dst geodata.Country) {
	e.flows[flowKey{src, fqdnID, dst}]++
	e.total++

	set := e.byFQDN[fqdnID]
	if set == nil {
		set = make(map[geodata.Country]struct{})
		e.byFQDN[fqdnID] = set
	}
	set[dst] = struct{}{}

	tld, ok := e.tldOf[fqdnID]
	if !ok {
		tld = webgraph.ETLDPlusOne(e.fqdns.Str(fqdnID))
		e.tldOf[fqdnID] = tld
	}
	tset := e.byTLD[tld]
	if tset == nil {
		tset = make(map[geodata.Country]struct{})
		e.byTLD[tld] = tset
	}
	tset[dst] = struct{}{}
}

// TotalFlows returns the number of EU28 tracking flows under analysis
// (the paper's 1,824,873 in Table 5).
func (e *Engine) TotalFlows() int64 { return e.total }

// Result is one scenario's confinement outcome.
type Result struct {
	Scenario  Scenario
	InCountry float64 // % of flows confinable to the user's country
	InEurope  float64 // % confinable to Europe (the paper's "Cont.")
}

// Evaluate computes confinement under a scenario. A flow counts as
// in-country when some allowed destination is the user's country, and as
// in-Europe when some allowed destination is in EU28 or Rest of Europe
// (preferring country over continent, as a GDPR-friendly operator would).
func (e *Engine) Evaluate(s Scenario) Result {
	var inCountry, inEurope int64
	for k, n := range e.flows {
		country, europe := e.outcome(s, k)
		if country {
			inCountry += n
		}
		if europe {
			inEurope += n
		}
	}
	r := Result{Scenario: s}
	if e.total > 0 {
		r.InCountry = 100 * float64(inCountry) / float64(e.total)
		r.InEurope = 100 * float64(inEurope) / float64(e.total)
	}
	return r
}

func isEurope(c geodata.Country) bool {
	cc := geodata.ContinentOf(c)
	return cc == geodata.EU28 || cc == geodata.RestOfEurope
}

// outcome decides whether flow k can terminate in the user's country and
// whether it can terminate in Europe under scenario s.
func (e *Engine) outcome(s Scenario, k flowKey) (inCountry, inEurope bool) {
	// The observed destination always remains available.
	if k.dst == k.src {
		inCountry = true
	}
	if isEurope(k.dst) {
		inEurope = true
	}
	check := func(set map[geodata.Country]struct{}) {
		if _, ok := set[k.src]; ok {
			inCountry = true
			inEurope = true
			return
		}
		if !inEurope {
			for c := range set {
				if isEurope(c) {
					inEurope = true
					break
				}
			}
		}
	}
	switch s {
	case Default:
		// nothing more
	case RedirectFQDN:
		check(e.byFQDN[k.fqdn])
	case RedirectTLD:
		check(e.byTLD[e.tldOf[k.fqdn]])
	case PoPMirror:
		check(e.cloudSet(k.fqdn))
	case RedirectTLDPlusPoP:
		check(e.byTLD[e.tldOf[k.fqdn]])
		if !inCountry {
			check(e.cloudSet(k.fqdn))
		}
	case CloudMigration:
		check(e.allCloudCountries)
	}
	return inCountry, inEurope
}

// cloudSet returns the PoP countries available to the org owning fqdn via
// the clouds it already uses.
func (e *Engine) cloudSet(fqdnID uint32) map[geodata.Country]struct{} {
	if e.orgClouds == nil {
		return nil
	}
	providers := e.orgClouds(e.fqdns.Str(fqdnID))
	if len(providers) == 0 {
		return nil
	}
	set := make(map[geodata.Country]struct{})
	for _, p := range providers {
		for _, c := range geodata.CloudPoPCountries(p) {
			set[c] = struct{}{}
		}
	}
	return set
}

// Table5 evaluates the five scenarios of Table 5 in the paper's order.
func (e *Engine) Table5() []Result {
	return []Result{
		e.Evaluate(Default),
		e.Evaluate(RedirectFQDN),
		e.Evaluate(RedirectTLD),
		e.Evaluate(PoPMirror),
		e.Evaluate(RedirectTLDPlusPoP),
	}
}

// CountryImprovement is one row of Table 6: how much a scenario improves
// one country's confinement over the TLD-redirection baseline.
type CountryImprovement struct {
	Country  geodata.Country
	Requests int64
	// PoPOverTLD is the extra in-country percentage points PoP mirroring
	// adds on top of TLD redirection.
	PoPOverTLD float64
	// MigrationOverTLD is the extra in-country points full cloud
	// migration adds on top of TLD redirection.
	MigrationOverTLD float64
}

// Table6 computes per-country improvements for the given origin countries
// (the paper lists UK, Spain, Greece, Italy, Romania, Cyprus, Denmark).
func (e *Engine) Table6(countries []geodata.Country) []CountryImprovement {
	want := make(map[geodata.Country]bool, len(countries))
	for _, c := range countries {
		want[c] = true
	}
	type acc struct {
		total, tld, tldPoP, migr int64
	}
	accs := make(map[geodata.Country]*acc)
	for k, n := range e.flows {
		if !want[k.src] {
			continue
		}
		x := accs[k.src]
		if x == nil {
			x = &acc{}
			accs[k.src] = x
		}
		x.total += n
		if c, _ := e.outcome(RedirectTLD, k); c {
			x.tld += n
		}
		if c, _ := e.outcome(RedirectTLDPlusPoP, k); c {
			x.tldPoP += n
		}
		// Migration is evaluated on top of TLD redirection: either the
		// TLD alternatives or any cloud PoP in the country will do.
		cm, _ := e.outcome(CloudMigration, k)
		ct, _ := e.outcome(RedirectTLD, k)
		if cm || ct {
			x.migr += n
		}
	}
	out := make([]CountryImprovement, 0, len(accs))
	for c, x := range accs {
		if x.total == 0 {
			continue
		}
		pct := func(v int64) float64 { return 100 * float64(v) / float64(x.total) }
		out = append(out, CountryImprovement{
			Country:          c,
			Requests:         x.total,
			PoPOverTLD:       pct(x.tldPoP) - pct(x.tld),
			MigrationOverTLD: pct(x.migr) - pct(x.tld),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PoPOverTLD != out[j].PoPOverTLD {
			return out[i].PoPOverTLD > out[j].PoPOverTLD
		}
		return out[i].Country < out[j].Country
	})
	return out
}
