package locality

import (
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// buildDataset constructs a hand-rolled world:
//
//	ads.tracker.com  serves IPs 1 (US) and 2 (DE)
//	alt.tracker.com  serves IP 3 (ES)           (same TLD as ads.)
//	sync.lonely.com  serves IP 4 (US) only      (org uses AWS)
//	pix.nocloud.com  serves IP 5 (US) only      (no cloud)
//
// Users: ES and CY.
func buildEngine(t *testing.T) *Engine {
	t.Helper()
	st := classify.NewMemStore()
	ds := &classify.Dataset{FQDNs: classify.NewInterner(), Store: st}
	ds.Countries = []geodata.Country{"ES", "CY"}
	adsID := ds.FQDNs.ID("ads.tracker.com")
	altID := ds.FQDNs.ID("alt.tracker.com")
	lonelyID := ds.FQDNs.ID("sync.lonely.com")
	noID := ds.FQDNs.ID("pix.nocloud.com")

	addRows := func(fqdn uint32, ip netsim.IP, country uint8, n int) {
		for i := 0; i < n; i++ {
			st.Append(classify.Row{
				FQDN: fqdn, IP: ip, Country: country, Class: classify.ClassABP,
			})
		}
	}
	// ES user: 40 flows to ads->US, 10 to ads->DE, 10 to alt->ES,
	// 20 to lonely->US, 20 to nocloud->US.
	addRows(adsID, 1, 0, 40)
	addRows(adsID, 2, 0, 10)
	addRows(altID, 3, 0, 10)
	addRows(lonelyID, 4, 0, 20)
	addRows(noID, 5, 0, 20)
	// CY user: 10 flows to ads->US.
	addRows(adsID, 1, 1, 10)
	// A clean row and a non-EU row must be ignored.
	st.Append(classify.Row{FQDN: adsID, IP: 1, Country: 0, Class: classify.ClassClean})

	svc := geo.Static{ServiceName: "truth", Locations: map[netsim.IP]geo.Location{
		1: {Country: "US", Continent: geodata.NorthAmerica},
		2: {Country: "DE", Continent: geodata.EU28},
		3: {Country: "ES", Continent: geodata.EU28},
		4: {Country: "US", Continent: geodata.NorthAmerica},
		5: {Country: "US", Continent: geodata.NorthAmerica},
	}}
	clouds := func(fqdn string) []geodata.CloudProvider {
		if fqdn == "sync.lonely.com" {
			return []geodata.CloudProvider{geodata.AWS}
		}
		return nil
	}
	return NewEngine(ds, svc, clouds)
}

func TestTotalFlows(t *testing.T) {
	e := buildEngine(t)
	if e.TotalFlows() != 110 {
		t.Fatalf("TotalFlows = %d, want 110", e.TotalFlows())
	}
}

func TestDefaultScenario(t *testing.T) {
	e := buildEngine(t)
	r := e.Evaluate(Default)
	// In-country: only alt->ES (10/110).
	if r.InCountry < 9 || r.InCountry > 9.2 {
		t.Errorf("Default InCountry = %f, want ~9.09", r.InCountry)
	}
	// In Europe: ads->DE (10) + alt->ES (10) = 20/110.
	if r.InEurope < 18 || r.InEurope > 18.3 {
		t.Errorf("Default InEurope = %f, want ~18.18", r.InEurope)
	}
}

func TestRedirectFQDN(t *testing.T) {
	e := buildEngine(t)
	r := e.Evaluate(RedirectFQDN)
	// ads.tracker.com has a DE alternative: ES flows to ads (50) can be
	// in Europe but not in Spain; alt flows (10) stay in ES. CY flows
	// can reach DE (Europe) but not CY.
	if r.InCountry < 9 || r.InCountry > 9.2 {
		t.Errorf("FQDN InCountry = %f, want ~9.09 (no new in-country)", r.InCountry)
	}
	// Europe: ads (50 ES + 10 CY) + alt (10) = 70/110.
	if r.InEurope < 63 || r.InEurope > 64 {
		t.Errorf("FQDN InEurope = %f, want ~63.6", r.InEurope)
	}
}

func TestRedirectTLD(t *testing.T) {
	e := buildEngine(t)
	r := e.Evaluate(RedirectTLD)
	// TLD pool for tracker.com = {US, DE, ES}: the ES user's 50 ads
	// flows + 10 alt flows become in-country (60/110).
	if r.InCountry < 54 || r.InCountry > 55 {
		t.Errorf("TLD InCountry = %f, want ~54.5", r.InCountry)
	}
	// Progression must hold: TLD >= FQDN >= Default.
	d, f := e.Evaluate(Default), e.Evaluate(RedirectFQDN)
	if !(r.InCountry >= f.InCountry && f.InCountry >= d.InCountry) {
		t.Error("in-country progression violated")
	}
	if !(r.InEurope >= f.InEurope && f.InEurope >= d.InEurope) {
		t.Error("in-Europe progression violated")
	}
}

func TestPoPMirror(t *testing.T) {
	e := buildEngine(t)
	r := e.Evaluate(PoPMirror)
	// lonely.com uses AWS, which has an ES PoP... AWS PoPs: IE DE GB FR
	// SE — no ES. So the ES user's lonely flows reach Europe but not
	// Spain; nocloud flows stay in the US.
	d := e.Evaluate(Default)
	if r.InCountry != d.InCountry {
		t.Errorf("PoP InCountry = %f, want unchanged %f", r.InCountry, d.InCountry)
	}
	// Europe gains the 20 lonely flows: 40/110.
	if r.InEurope < 36 || r.InEurope > 37 {
		t.Errorf("PoP InEurope = %f, want ~36.4", r.InEurope)
	}
}

func TestCombinedScenario(t *testing.T) {
	e := buildEngine(t)
	tld := e.Evaluate(RedirectTLD)
	combo := e.Evaluate(RedirectTLDPlusPoP)
	if combo.InCountry < tld.InCountry || combo.InEurope < tld.InEurope {
		t.Error("combined scenario must dominate TLD alone")
	}
	pop := e.Evaluate(PoPMirror)
	if combo.InEurope < pop.InEurope {
		t.Error("combined scenario must dominate PoP alone")
	}
}

func TestCloudMigration(t *testing.T) {
	e := buildEngine(t)
	r := e.Evaluate(CloudMigration)
	// Spain has cloud PoPs (CloudFlare, Equinix): all 100 ES flows can
	// be confined. Cyprus has none: its 10 flows cannot.
	if r.InCountry < 90 || r.InCountry > 91 {
		t.Errorf("Migration InCountry = %f, want ~90.9", r.InCountry)
	}
	if r.InEurope < 99 {
		t.Errorf("Migration InEurope = %f, want ~100", r.InEurope)
	}
}

func TestTable5Order(t *testing.T) {
	e := buildEngine(t)
	rows := e.Table5()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []Scenario{Default, RedirectFQDN, RedirectTLD, PoPMirror, RedirectTLDPlusPoP}
	for i, r := range rows {
		if r.Scenario != want[i] {
			t.Errorf("row %d = %s", i, r.Scenario)
		}
	}
}

func TestTable6(t *testing.T) {
	e := buildEngine(t)
	rows := e.Table6([]geodata.Country{"ES", "CY"})
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	var es, cy CountryImprovement
	for _, r := range rows {
		switch r.Country {
		case "ES":
			es = r
		case "CY":
			cy = r
		}
	}
	if es.Requests != 100 || cy.Requests != 10 {
		t.Errorf("requests: ES=%d CY=%d", es.Requests, cy.Requests)
	}
	// Cyprus has no cloud PoP: zero improvement from either mechanism
	// (the paper's Table 6 Cyprus row).
	if cy.PoPOverTLD != 0 || cy.MigrationOverTLD != 0 {
		t.Errorf("Cyprus improvements = %+v, want 0", cy)
	}
	// Spain: TLD already confines ads+alt (60); migration adds lonely
	// and nocloud (40) => +40 points; PoP alone adds nothing in-country.
	if es.MigrationOverTLD < 39 || es.MigrationOverTLD > 41 {
		t.Errorf("ES MigrationOverTLD = %f, want ~40", es.MigrationOverTLD)
	}
	if es.PoPOverTLD != 0 {
		t.Errorf("ES PoPOverTLD = %f, want 0 (AWS has no ES PoP)", es.PoPOverTLD)
	}
}

func TestScenarioStrings(t *testing.T) {
	for _, s := range []Scenario{Default, RedirectFQDN, RedirectTLD, PoPMirror, RedirectTLDPlusPoP, CloudMigration} {
		if s.String() == "" || s.String() == "Scenario(?)" {
			t.Errorf("scenario %d has bad name", s)
		}
	}
}

func TestNonEUUsersExcluded(t *testing.T) {
	ds := &classify.Dataset{FQDNs: classify.NewInterner()}
	ds.Countries = []geodata.Country{"US"}
	id := ds.FQDNs.ID("t.x.com")
	ds.Store = classify.StoreOf(classify.Row{FQDN: id, IP: 1, Country: 0, Class: classify.ClassABP})
	svc := geo.Static{ServiceName: "s", Locations: map[netsim.IP]geo.Location{
		1: {Country: "US", Continent: geodata.NorthAmerica},
	}}
	e := NewEngine(ds, svc, nil)
	if e.TotalFlows() != 0 {
		t.Errorf("non-EU flows included: %d", e.TotalFlows())
	}
}
