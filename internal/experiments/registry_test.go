package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// paperOrder is the order the paper presents its artifacts in — the
// order the pre-registry RenderAll hard-coded.
var paperOrder = []string{
	"table1", "table2", "fig2", "fig3", "fig4", "fig5",
	"table3", "table4", "fig6", "fig7", "fig8",
	"table5", "table6", "fig9", "fig10", "fig11",
	"table7", "table8", "fig12", "table9",
}

// TestRegistryCompleteness asserts that every Suite table/figure method
// is registered exactly once (plus the Table 9 transcription, which has
// no Suite method) and that nothing else snuck into the registry.
func TestRegistryCompleteness(t *testing.T) {
	tf := regexp.MustCompile(`^(Table|Fig)\d+$`)
	want := map[string]bool{"table9": true}
	st := reflect.TypeOf(&Suite{})
	for i := 0; i < st.NumMethod(); i++ {
		name := st.Method(i).Name
		if tf.MatchString(name) {
			want[strings.ToLower(name)] = true
		}
	}
	counts := make(map[string]int)
	for _, id := range IDs() {
		counts[id]++
	}
	for id := range want {
		if counts[id] != 1 {
			t.Errorf("experiment %s registered %d times, want exactly 1", id, counts[id])
		}
	}
	for id := range counts {
		if !want[id] {
			t.Errorf("registered experiment %s has no Suite method", id)
		}
	}
}

// TestRegistryPaperOrder pins RunAll's output order to the paper order.
func TestRegistryPaperOrder(t *testing.T) {
	ids := IDs()
	if len(ids) != len(paperOrder) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(paperOrder))
	}
	for i, id := range ids {
		if id != paperOrder[i] {
			t.Errorf("IDs()[%d] = %s, want %s", i, id, paperOrder[i])
		}
	}
}

// TestRegistryMetadata requires every entry to carry the fields the
// -list output and EXPERIMENTS.md are generated from.
func TestRegistryMetadata(t *testing.T) {
	for _, e := range All() {
		if e.Title == "" || e.Section == "" || e.Desc == "" {
			t.Errorf("experiment %s missing metadata: title=%q section=%q desc=%q",
				e.ID, e.Title, e.Section, e.Desc)
		}
		if !strings.HasPrefix(e.Section, "§") {
			t.Errorf("experiment %s section %q is not a paper section", e.ID, e.Section)
		}
	}
}

// TestRegistryGetCaseInsensitive checks the lookup contract used by
// `reproduce -only`.
func TestRegistryGetCaseInsensitive(t *testing.T) {
	for _, name := range []string{"fig7", "Fig7", "FIG7", " fig7 "} {
		e, ok := Get(name)
		if !ok || e.ID != "fig7" {
			t.Errorf("Get(%q) = (%q, %v), want fig7", name, e.ID, ok)
		}
	}
	if _, ok := Get("fig13"); ok {
		t.Error("Get(fig13) must fail")
	}
}

// TestRegistryFig12SeesTable8 exercises the dependency graph: fig12
// must receive table8's artifact and agree with the directly computed
// composition.
func TestRegistryFig12SeesTable8(t *testing.T) {
	su := testSuite(t)
	ctx := context.Background()
	f12a, err := su.Artifact(ctx, "Fig12")
	if err != nil {
		t.Fatal(err)
	}
	t8a, err := su.Artifact(ctx, "table8")
	if err != nil {
		t.Fatal(err)
	}
	t8, ok := t8a.Value().(Table8Result)
	if !ok {
		t.Fatalf("table8 artifact carries %T", t8a.Value())
	}
	if want := su.Fig12(t8).Render(); f12a.Render() != want {
		t.Error("registry fig12 differs from direct Fig12(Table8()) composition")
	}
	f12, ok := f12a.Value().(Fig12Result)
	if !ok {
		t.Fatalf("fig12 artifact carries %T", f12a.Value())
	}
	apr := SnapshotDates()[1]
	for _, rep := range t8.Reports {
		if !rep.Date.Equal(apr) {
			continue
		}
		got := f12.PerISP[rep.ISP]
		if len(got) != len(rep.TopCountries) {
			t.Fatalf("fig12 %s has %d countries, table8 report has %d",
				rep.ISP, len(got), len(rep.TopCountries))
		}
		for i := range got {
			if got[i] != rep.TopCountries[i] {
				t.Errorf("fig12 %s[%d] = %+v, want table8's %+v",
					rep.ISP, i, got[i], rep.TopCountries[i])
			}
		}
	}
}

// TestArtifactCached asserts one computation per experiment per Suite.
func TestArtifactCached(t *testing.T) {
	su := testSuite(t)
	ctx := context.Background()
	a1, err := su.Artifact(ctx, "table1")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := su.Artifact(ctx, "TABLE1")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("second Artifact call must return the cached artifact")
	}
}

// TestArtifactEncodings checks the three encodings of one artifact.
func TestArtifactEncodings(t *testing.T) {
	su := testSuite(t)
	a, err := su.Artifact(context.Background(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	if want := su.Table1().Render(); a.Render() != want {
		t.Error("artifact render differs from the Suite method's render")
	}
	raw, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stats struct{ Users int }
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("artifact JSON does not parse: %v", err)
	}
	if decoded.Stats.Users == 0 {
		t.Error("artifact JSON lost the structured result")
	}
	csvOut, err := a.CSV()
	if err != nil {
		t.Fatal(err)
	}
	s := string(csvOut)
	if !strings.HasPrefix(s, "path,value\n") {
		t.Errorf("CSV missing header: %q", s[:min(len(s), 40)])
	}
	if !strings.Contains(s, "Stats.Users,") {
		t.Errorf("CSV missing flattened field: %q", s)
	}
}

// TestArtifactUnknownID requires the error to teach the valid ids.
func TestArtifactUnknownID(t *testing.T) {
	su := &Suite{} // never touched: lookup fails before any computation
	_, err := su.Artifact(context.Background(), "fig99")
	if err == nil {
		t.Fatal("unknown id must error")
	}
	if !strings.Contains(err.Error(), "table1") || !strings.Contains(err.Error(), "fig12") {
		t.Errorf("error must list valid ids, got: %v", err)
	}
}

// TestRunAllCancelled asserts a dead context aborts before any work.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	su := &Suite{} // RunAll must not reach the (nil) scenario
	if _, err := su.RunAll(ctx); err != context.Canceled {
		t.Fatalf("RunAll on cancelled ctx = %v, want context.Canceled", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
