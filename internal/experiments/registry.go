package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Experiment is one registered artifact of the paper's evaluation: a
// table or figure with a canonical id, the paper section it appears in,
// the experiments it depends on, and the Run hook producing its
// Artifact.
type Experiment struct {
	// ID is the canonical lower-case identifier, e.g. "fig7", "table8".
	ID string
	// Title is the artifact's caption.
	Title string
	// Section is the paper section the artifact belongs to, e.g. "§4.2".
	Section string
	// Desc is a one-line description (used for EXPERIMENTS.md and
	// `reproduce -list`).
	Desc string
	// Deps lists experiment ids whose artifacts must be computed first;
	// Run receives them keyed by id.
	Deps []string
	// Run computes the artifact. It may consult ctx for cancellation;
	// deps holds one Artifact per entry of Deps.
	Run func(ctx context.Context, su *Suite, deps map[string]Artifact) (Artifact, error)
}

// registry holds every experiment in paper order (the order RenderAll
// and RunAll emit artifacts in).
var (
	registry      []Experiment
	registryIndex = make(map[string]int)
)

// Register adds an experiment to the registry. Registration order is
// paper order. It panics on a duplicate or empty id, a missing Run
// hook, or a dependency that has not been registered yet (the paper
// order is also a valid topological order, so forward deps are bugs).
func Register(e Experiment) {
	id := strings.ToLower(strings.TrimSpace(e.ID))
	if id == "" {
		panic("experiments: Register with empty ID")
	}
	if e.Run == nil {
		panic("experiments: Register " + id + " with nil Run")
	}
	if _, dup := registryIndex[id]; dup {
		panic("experiments: duplicate experiment " + id)
	}
	for _, d := range e.Deps {
		if _, ok := registryIndex[strings.ToLower(d)]; !ok {
			panic("experiments: " + id + " depends on unregistered " + d)
		}
	}
	e.ID = id
	registryIndex[id] = len(registry)
	registry = append(registry, e)
}

// All returns the registered experiments in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns every registered experiment id in paper order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Get looks an experiment up by id, case-insensitively.
func Get(id string) (Experiment, bool) {
	i, ok := registryIndex[strings.ToLower(strings.TrimSpace(id))]
	if !ok {
		return Experiment{}, false
	}
	return registry[i], true
}

// IDs returns the registry's experiment ids in paper order.
func (su *Suite) IDs() []string { return IDs() }

// Get looks an experiment up by id, case-insensitively.
func (su *Suite) Get(id string) (Experiment, bool) { return Get(id) }

// artifactCell caches one experiment's computed Artifact per Suite.
type artifactCell struct {
	mu sync.Mutex
	a  Artifact
}

// cell returns (creating if needed) the cache cell for one experiment.
func (su *Suite) cell(id string) *artifactCell {
	su.cellsMu.Lock()
	defer su.cellsMu.Unlock()
	if su.cells == nil {
		su.cells = make(map[string]*artifactCell, len(registry))
	}
	c := su.cells[id]
	if c == nil {
		c = &artifactCell{}
		su.cells[id] = c
	}
	return c
}

// Artifact computes (or returns the cached) artifact of one experiment,
// computing its dependencies first. Safe for concurrent use; each
// experiment runs at most once per Suite. An unknown id returns an
// error naming the valid ids.
func (su *Suite) Artifact(ctx context.Context, id string) (Artifact, error) {
	exp, ok := Get(id)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (valid ids: %s)",
			id, strings.Join(IDs(), ", "))
	}
	c := su.cell(exp.ID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.a != nil {
		return c.a, nil
	}
	var deps map[string]Artifact
	if len(exp.Deps) > 0 {
		deps = make(map[string]Artifact, len(exp.Deps))
		for _, d := range exp.Deps {
			da, err := su.Artifact(ctx, d)
			if err != nil {
				return nil, err
			}
			deps[strings.ToLower(d)] = da
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, err := exp.Run(ctx, su, deps)
	if err != nil {
		return nil, err
	}
	c.a = a
	return a, nil
}

// RunAll executes the full dependency graph: every registered
// experiment, independent ones in parallel over the shared Precompute
// substrate (the three geolocation joins and their sync.Once guards),
// dependencies before dependents. The artifacts come back in paper
// order regardless of execution interleaving — every experiment is a
// deterministic function of the scenario, so the output is identical to
// a sequential run.
func (su *Suite) RunAll(ctx context.Context) ([]Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	su.Precompute()
	ids := IDs()
	out := make([]Artifact, len(ids))
	errs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			out[i], errs[i] = su.Artifact(ctx, id)
		}(i, id)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// reg registers a dependency-free experiment whose runner ignores the
// context (the underlying computation is not divisible).
func reg(id, title, section, desc string, run func(su *Suite) Artifact) {
	Register(Experiment{
		ID: id, Title: title, Section: section, Desc: desc,
		Run: func(_ context.Context, su *Suite, _ map[string]Artifact) (Artifact, error) {
			return run(su), nil
		},
	})
}

// The paper's nineteen measured artifacts plus the Table 9
// transcription, in paper order.
func init() {
	reg("table1", "The real users dataset statistics", "§3.1",
		"Dataset summary: users, first/third-party domains and requests collected by the extension.",
		func(su *Suite) Artifact { r := su.Table1(); return NewArtifact(r, r.Render) })
	reg("table2", "AdBlockPlus lists vs semi-automatic classification", "§3.2",
		"Filter-list vs semi-automatic tracking detection, plus classifier precision/recall against generator truth.",
		func(su *Suite) Artifact { r := su.Table2(); return NewArtifact(r, r.Render) })
	reg("fig2", "3rd-party requests per website (CDF)", "§3.2",
		"CDFs of clean / ad+tracking / all third-party requests per website.",
		func(su *Suite) Artifact { r := su.Fig2(); return NewArtifact(r, r.Render) })
	reg("fig3", "Top 20 TLDs of ad + tracking domains", "§3.2",
		"The top-20 tracking eTLD+1s with the ABP-vs-semi detection split.",
		func(su *Suite) Artifact { r := su.Fig3(); return NewArtifact(r, r.Render) })
	reg("fig4", "Domains served per tracking IP", "§3.3",
		"How many registrable domains each tracker IP serves, and the pDNS-only inventory share.",
		func(su *Suite) Artifact { r := su.Fig4(); return NewArtifact(r, r.Render) })
	reg("fig5", "IPs hosting 10+ ad+tracking domains", "§3.3",
		"The cookie-sync / ad-exchange IPs serving ten or more tracking domains, by country.",
		func(su *Suite) Artifact { r := su.Fig5(); return NewArtifact(r, r.Render) })
	reg("table3", "Pair-wise agreement across geolocation tools", "§3.4",
		"Country- and continent-level agreement between MaxMind, IP-API, and RIPE IPmap.",
		func(su *Suite) Artifact { r := su.Table3(); return NewArtifact(r, r.Render) })
	reg("table4", "MaxMind mis-geolocation of major ad+tracking orgs", "§3.4",
		"MaxMind's per-org error rates against ground truth for Google, Amazon, and Facebook IPs.",
		func(su *Suite) Artifact { r := su.Table4(); return NewArtifact(r, r.Render) })
	reg("fig6", "Ad + tracking flows between continents", "§4.1",
		"The continent-to-continent Sankey of all tracking flows under RIPE IPmap.",
		func(su *Suite) Artifact { r := su.Fig6(); return NewArtifact(r, r.Render) })
	reg("fig7", "EU28 destinations by geolocation service", "§4.2",
		"The headline flip: MaxMind vs RIPE IPmap destinations of EU28 users' tracking flows.",
		func(su *Suite) Artifact { r := su.Fig7(); return NewArtifact(r, r.Render) })
	reg("fig8", "Tracking flows from EU28 countries", "§4.3",
		"The EU28 country-to-country Sankey and per-country national confinement.",
		func(su *Suite) Artifact { r := su.Fig8(); return NewArtifact(r, r.Render) })
	reg("table5", "Localization improvements", "§5.1",
		"Confinement under the what-if localization ladder: DNS redirection, PoP mirroring, cloud migration.",
		func(su *Suite) Artifact { r := su.Table5(); return NewArtifact(r, r.Render) })
	reg("table6", "Improvements over TLD redirection", "§5.2",
		"Per-country gains of PoP mirroring and full cloud migration over TLD-level DNS redirection.",
		func(su *Suite) Artifact { r := su.Table6(); return NewArtifact(r, r.Render) })
	reg("fig9", "Sensitive-category share of tracking flows", "§6",
		"Tracking-flow share per sensitive category (health, sexual orientation, ...).",
		func(su *Suite) Artifact { r := su.Fig9(); return NewArtifact(r, r.Render) })
	reg("fig10", "Destination continents of sensitive flows", "§6",
		"Where EU28 users' sensitive-category tracking flows terminate.",
		func(su *Suite) Artifact { r := su.Fig10(); return NewArtifact(r, r.Render) })
	reg("fig11", "Sensitive flows leaving the user's country", "§6",
		"Per-country leakage of sensitive tracking flows outside the user's country.",
		func(su *Suite) Artifact { r := su.Fig11(); return NewArtifact(r, r.Render) })
	reg("table7", "Profile of the four European ISPs", "§7.1",
		"The demographics of the four ISPs whose NetFlow feeds the §7 scale-up.",
		func(su *Suite) Artifact { r := su.Table7(); return NewArtifact(r, r.Render) })
	Register(Experiment{
		ID:      "table8",
		Title:   "Sampled tracking flow statistics across EU ISPs",
		Section: "§7.2",
		Desc:    "Sixteen ISP-day NetFlow snapshots: sampled tracking flows and region confinement over time.",
		Run: func(ctx context.Context, su *Suite, _ map[string]Artifact) (Artifact, error) {
			// The heaviest runner in the registry: poll ctx between the
			// per-ISP-day syntheses so `-only table8` cancels promptly.
			r, err := su.Table8Context(ctx)
			if err != nil {
				return nil, err
			}
			return NewArtifact(r, r.Render), nil
		},
	})
	Register(Experiment{
		ID:      "fig12",
		Title:   "Top 5 destination countries per ISP",
		Section: "§7.2",
		Desc:    "The April 4 snapshot's top destination countries per ISP, extracted from Table 8.",
		Deps:    []string{"table8"},
		Run: func(_ context.Context, su *Suite, deps map[string]Artifact) (Artifact, error) {
			t8, ok := deps["table8"].Value().(Table8Result)
			if !ok {
				return nil, fmt.Errorf("experiments: fig12 dependency table8 carries %T, want Table8Result",
					deps["table8"].Value())
			}
			r := su.Fig12(t8)
			return NewArtifact(r, r.Render), nil
		},
	})
	reg("table9", "Related work comparison", "§8",
		"The paper's qualitative related-work table, transcribed (documentation, not simulation).",
		func(*Suite) Artifact { return NewArtifact(Table9(), RenderTable9) })
}
