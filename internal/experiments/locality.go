package experiments

import (
	"fmt"

	"crossborder/internal/geodata"
	"crossborder/internal/locality"
	"crossborder/internal/tablefmt"
)

// Table5Result reproduces Table 5: confinement under the localization
// what-if scenarios.
type Table5Result struct {
	Flows   int64
	Rows    []locality.Result
	Default locality.Result
}

// Row returns the result for one scenario.
func (r Table5Result) Row(s locality.Scenario) locality.Result {
	for _, row := range r.Rows {
		if row.Scenario == s {
			return row
		}
	}
	return locality.Result{}
}

// localityEngine builds the §5 engine (IPmap geolocation, like the paper).
func (su *Suite) localityEngine() *locality.Engine {
	return locality.NewEngine(su.S.Dataset, su.S.IPMap, su.S.OrgClouds)
}

// Table5 evaluates the five scenarios.
func (su *Suite) Table5() Table5Result {
	e := su.localityEngine()
	rows := e.Table5()
	return Table5Result{Flows: e.TotalFlows(), Rows: rows, Default: rows[0]}
}

// Render formats the table with improvement columns.
func (r Table5Result) Render() string {
	t := tablefmt.NewTable(
		fmt.Sprintf("Table 5: localization improvements (EU28 flows: %d)", r.Flows),
		"Scenario", "In Country %", "In Cont. %", "Impr. Country", "Impr. Cont.")
	for _, row := range r.Rows {
		t.AddRow(row.Scenario.String(), row.InCountry, row.InEurope,
			row.InCountry-r.Default.InCountry, row.InEurope-r.Default.InEurope)
	}
	return t.String()
}

// Table6Result reproduces Table 6: per-country improvements of PoP
// mirroring and full cloud migration over TLD redirection.
type Table6Result struct {
	Rows []locality.CountryImprovement
}

// table6Countries is the paper's selection.
var table6Countries = []geodata.Country{"GB", "ES", "GR", "IT", "RO", "CY", "DK"}

// Table6 evaluates the per-country what-ifs.
func (su *Suite) Table6() Table6Result {
	e := su.localityEngine()
	return Table6Result{Rows: e.Table6(table6Countries)}
}

// Row returns the improvement row for one country.
func (r Table6Result) Row(c geodata.Country) (locality.CountryImprovement, bool) {
	for _, row := range r.Rows {
		if row.Country == c {
			return row, true
		}
	}
	return locality.CountryImprovement{}, false
}

// Render formats the table.
func (r Table6Result) Render() string {
	t := tablefmt.NewTable(
		"Table 6: improvements over TLD redirection (EU28 countries)",
		"Country", "# Requests", "PoP Mirroring impr. %", "Cloud Migration impr. %")
	for _, row := range r.Rows {
		t.AddRow(geodata.Name(row.Country), row.Requests, row.PoPOverTLD, row.MigrationOverTLD)
	}
	return t.String()
}
