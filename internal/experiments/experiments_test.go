package experiments

import (
	"strings"
	"sync"
	"testing"

	"crossborder/internal/geodata"
	"crossborder/internal/locality"
	"crossborder/internal/scenario"
	"crossborder/internal/webgraph"
)

// The calibration suite runs at a moderate scale: big enough that the
// paper's shapes are stable, small enough for CI. Bands are intentionally
// generous — they catch calibration regressions, not noise.
var (
	suiteOnce sync.Once
	suiteVal  *Suite
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal = NewSuite(scenario.Build(scenario.Params{
			Seed: 1, Scale: 0.15, VisitsPerUser: 90,
		}))
	})
	return suiteVal
}

func TestTable1DatasetShape(t *testing.T) {
	r := testSuite(t).Table1()
	if r.Stats.Users == 0 || r.Stats.ThirdPartyReqs == 0 {
		t.Fatal("empty dataset")
	}
	// Third-party requests dominate first-party visits by ~2 orders of
	// magnitude (paper: 7.17M vs 76.5K).
	ratio := float64(r.Stats.ThirdPartyReqs) / float64(r.Stats.FirstPartyVisits)
	if ratio < 40 || ratio > 200 {
		t.Errorf("3rd-party/visit ratio = %.1f, want ~94", ratio)
	}
	if !strings.Contains(r.Render(), "Table 1") {
		t.Error("render missing title")
	}
}

func TestTable2SemiDoublesDetection(t *testing.T) {
	r := testSuite(t).Table2()
	// Paper: semi adds 1.96M over ABP's 2.45M (ratio 0.80).
	ratio := r.SemiToABPRatio()
	if ratio < 0.35 || ratio > 1.6 {
		t.Errorf("semi/ABP ratio = %.2f, want ~0.8 (Table 2)", ratio)
	}
	if r.Acc.Precision() < 0.97 {
		t.Errorf("precision = %.4f", r.Acc.Precision())
	}
	if r.Acc.Recall() < 0.80 {
		t.Errorf("recall = %.4f", r.Acc.Recall())
	}
	if r.T.ABP.UniqueRequests > r.T.ABP.TotalRequests {
		t.Error("unique > total")
	}
}

func TestFig2TrackingDominates(t *testing.T) {
	r := testSuite(t).Fig2()
	if r.TrackingDominatesShare < 0.5 {
		t.Errorf("tracking dominates on only %.0f%% of sites", 100*r.TrackingDominatesShare)
	}
	if r.All.Len() == 0 {
		t.Fatal("no sites")
	}
	// Mean all > mean tracking > mean clean at the aggregate level.
	if r.Tracking.Mean() <= r.Clean.Mean() {
		t.Errorf("tracking mean %.1f <= clean mean %.1f", r.Tracking.Mean(), r.Clean.Mean())
	}
	if !strings.Contains(r.Render(), "Fig 2") {
		t.Error("render missing title")
	}
}

func TestFig3MajorsOnTop(t *testing.T) {
	r := testSuite(t).Fig3()
	if len(r.Top) == 0 {
		t.Fatal("no TLDs")
	}
	majors := map[string]bool{
		"googlesyndication.com": true, "doubleclick.net": true,
		"google-analytics.com": true, "google.com": true,
		"facebook.com": true, "facebook.net": true, "amazon-adsystem.com": true,
	}
	foundMajor := false
	for _, s := range r.Top[:5] {
		if majors[s.TLD] {
			foundMajor = true
		}
	}
	if !foundMajor {
		t.Errorf("no major tracker in top 5: %v", r.Top[:5])
	}
	// Both detection methods contribute somewhere in the top 20.
	var abp, semi int64
	for _, s := range r.Top {
		abp += s.ABP
		semi += s.Semi
	}
	if abp == 0 || semi == 0 {
		t.Error("one detection method contributed nothing")
	}
}

func TestFig4DedicatedIPs(t *testing.T) {
	r := testSuite(t).Fig4()
	// Paper: ~85% of requests served by single-TLD IPs; <2% of IPs serve
	// more than one domain... our shared-infra attachment is a bit more
	// aggressive, so allow up to 12%.
	if s := r.Sharing.SingleTLDRequestShare(); s < 0.70 {
		t.Errorf("single-TLD request share = %.2f, want ~0.85", s)
	}
	if m := r.Sharing.MultiDomainIPShare(); m > 0.12 {
		t.Errorf("multi-domain IP share = %.3f, want small", m)
	}
	// pDNS completion adds a small extra population (paper: +2.78%).
	if r.ExtraIPs == 0 {
		t.Error("no pDNS-only IPs")
	}
	if pct := r.ExtraSharePct(); pct > 25 {
		t.Errorf("extra share = %.1f%%, want small", pct)
	}
}

func TestFig5SharedInfra(t *testing.T) {
	r := testSuite(t).Fig5()
	if len(r.SharedIPs) == 0 {
		t.Fatal("no >=10-domain IPs (paper: 114)")
	}
	// About half in the US + EU28 (paper's Fig 5); generous band.
	if r.USAndEUShare < 0.4 {
		t.Errorf("US+EU share = %.2f, want dominant", r.USAndEUShare)
	}
	for _, info := range r.SharedIPs {
		if len(info.TLDs) < 10 {
			t.Fatalf("shared IP %s has only %d TLDs", info.IP, len(info.TLDs))
		}
	}
}

func TestTable3AgreementPattern(t *testing.T) {
	r := testSuite(t).Table3()
	// The two commercial databases agree with each other...
	if r.IPAPIvMaxMind.Country < 88 {
		t.Errorf("ip-api/maxmind country agreement = %.1f%%, want ~96%%", r.IPAPIvMaxMind.Country)
	}
	// ...but both disagree with IPmap on a large share of IPs.
	if r.MaxMindvIPMap.Country > 72 {
		t.Errorf("maxmind/ipmap country agreement = %.1f%%, want ~53%%", r.MaxMindvIPMap.Country)
	}
	if r.IPAPIvIPMap.Country > 75 {
		t.Errorf("ip-api/ipmap country agreement = %.1f%%, want ~53%%", r.IPAPIvIPMap.Country)
	}
	// Continent agreement exceeds country agreement for the maxmind/ipmap
	// pair (Table 3: 53% vs 65%).
	if r.MaxMindvIPMap.Continent < r.MaxMindvIPMap.Country {
		t.Error("continent agreement below country agreement")
	}
}

func TestTable4MajorsMisgeolocated(t *testing.T) {
	r := testSuite(t).Table4()
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.IPs == 0 {
			t.Fatalf("%s has no IPs", row.Org)
		}
		// Paper: 45-59% wrong country for the majors.
		if p := row.WrongCountryPct(); p < 25 || p > 90 {
			t.Errorf("%s wrong-country = %.1f%%, want roughly half", row.Org, p)
		}
		if row.WrongContinentPct() > row.WrongCountryPct() {
			t.Errorf("%s wrong continent exceeds wrong country", row.Org)
		}
	}
}

func TestFig6ContinentFlows(t *testing.T) {
	r := testSuite(t).Fig6()
	// EU28 self-confinement high; South America leaks into North America.
	if c := r.Confinement[geodata.EU28]; c < 75 || c > 95 {
		t.Errorf("EU28 confinement = %.1f%%, want ~85%%", c)
	}
	if c := r.Confinement[geodata.SouthAmerica]; c > 20 {
		t.Errorf("S.America confinement = %.1f%%, want single digits", c)
	}
	// EU28 and North America host most tracking backends (paper: 51.65%
	// and 40.87%).
	euNA := r.DestShare[geodata.EU28] + r.DestShare[geodata.NorthAmerica]
	if euNA < 70 {
		t.Errorf("EU28+NA destination share = %.1f%%, want ~92%%", euNA)
	}
	// South America -> North America dominates.
	saToNA := 0.0
	for _, e := range r.Edges {
		if e.From == geodata.SouthAmerica.String() && e.To == geodata.NorthAmerica.String() {
			saToNA = e.Percent
		}
	}
	if saToNA < 60 {
		t.Errorf("SA->NA = %.1f%%, want ~90%%", saToNA)
	}
}

func TestFig7GeolocationFlip(t *testing.T) {
	r := testSuite(t).Fig7()
	// (b) IPmap: most EU28 flows stay in EU28 (paper 84.93%).
	if v := r.IPMapEU28(); v < 75 || v > 95 {
		t.Errorf("IPmap EU28 share = %.1f%%, want ~85%%", v)
	}
	if v := r.IPMapNA(); v < 4 || v > 20 {
		t.Errorf("IPmap NA share = %.1f%%, want ~10.75%%", v)
	}
	// (a) MaxMind flips the picture (paper: 33% EU, 66% NA).
	if r.MaxMindEU28() >= r.IPMapEU28()-20 {
		t.Errorf("MaxMind EU28 %.1f%% vs IPmap %.1f%%: flip missing",
			r.MaxMindEU28(), r.IPMapEU28())
	}
	if r.MaxMindNA() <= r.IPMapNA() {
		t.Error("MaxMind must inflate the North America share")
	}
}

func TestFig8NationalConfinement(t *testing.T) {
	r := testSuite(t).Fig8()
	get := func(c geodata.Country) float64 {
		v, ok := r.NationalConfinement(c)
		if !ok {
			t.Fatalf("no confinement for %s", c)
		}
		return v
	}
	gb, es, gr, cy := get("GB"), get("ES"), get("GR"), get("CY")
	// Paper: UK 58.4%, Spain 33.1%, Greece 6.77%, Cyprus 1.16%.
	if gb < 30 || gb > 75 {
		t.Errorf("UK confinement = %.1f%%, want ~58%%", gb)
	}
	if es < 18 || es > 50 {
		t.Errorf("Spain confinement = %.1f%%, want ~33%%", es)
	}
	if gr > 15 {
		t.Errorf("Greece confinement = %.1f%%, want single digits", gr)
	}
	if cy > 8 {
		t.Errorf("Cyprus confinement = %.1f%%, want ~1%%", cy)
	}
	// Ordering: large-infrastructure countries confine more.
	if !(gb > es && es > gr && gr >= cy) {
		t.Errorf("confinement ordering violated: GB=%.1f ES=%.1f GR=%.1f CY=%.1f", gb, es, gr, cy)
	}
}

func TestInfraDensityCorrelation(t *testing.T) {
	// §4.2/§5: confinement correlates with IT-infrastructure density.
	r := testSuite(t).Fig8()
	var x, y []float64
	for _, c := range r.Confinement {
		if c.Flows < 500 {
			continue
		}
		x = append(x, float64(geodata.InfraDensity(c.Country)))
		y = append(y, c.InCountry)
	}
	if len(x) < 5 {
		t.Skip("too few countries at this scale")
	}
	if corr := pearson(x, y); corr < 0.3 {
		t.Errorf("density/confinement correlation = %.2f, want positive", corr)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
		vx += (x[i] - mx) * (x[i] - mx)
		vy += (y[i] - my) * (y[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (sqrt(vx) * sqrt(vy))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = (x + v/x) / 2
	}
	return x
}

func TestTable5LocalizationLadder(t *testing.T) {
	r := testSuite(t).Table5()
	if r.Flows == 0 {
		t.Fatal("no flows")
	}
	d := r.Row(locality.Default)
	f := r.Row(locality.RedirectFQDN)
	tl := r.Row(locality.RedirectTLD)
	pop := r.Row(locality.PoPMirror)
	combo := r.Row(locality.RedirectTLDPlusPoP)

	// The paper's ladder: Default < FQDN < TLD at country level; PoP
	// mirroring helps the continent but barely the country; the combo
	// dominates everything.
	if !(d.InCountry < f.InCountry && f.InCountry < tl.InCountry) {
		t.Errorf("country ladder broken: %.1f %.1f %.1f", d.InCountry, f.InCountry, tl.InCountry)
	}
	if !(d.InEurope <= f.InEurope && f.InEurope <= tl.InEurope) {
		t.Errorf("continent ladder broken: %.1f %.1f %.1f", d.InEurope, f.InEurope, tl.InEurope)
	}
	if pop.InCountry-d.InCountry > tl.InCountry-d.InCountry {
		t.Error("PoP mirroring must improve country level less than TLD redirection")
	}
	if pop.InEurope < d.InEurope {
		t.Error("PoP mirroring must not hurt continent confinement")
	}
	if combo.InCountry < tl.InCountry || combo.InEurope < tl.InEurope {
		t.Error("combined scenario must dominate TLD redirection")
	}
	// TLD redirection gives a large national improvement (paper: +38.5).
	if tl.InCountry-d.InCountry < 15 {
		t.Errorf("TLD improvement = %.1f points, want large (~38)", tl.InCountry-d.InCountry)
	}
}

func TestTable6CloudMigration(t *testing.T) {
	r := testSuite(t).Table6()
	cy, ok := r.Row("CY")
	if !ok {
		t.Fatal("no Cyprus row")
	}
	// Cyprus has no cloud PoP: zero improvement (paper's Table 6).
	if cy.PoPOverTLD != 0 || cy.MigrationOverTLD != 0 {
		t.Errorf("Cyprus improvements = %+v, want 0", cy)
	}
	gr, ok := r.Row("GR")
	if !ok {
		t.Fatal("no Greece row")
	}
	// Greece gains hugely from migration (paper: +79.25) but almost
	// nothing from PoP mirroring (paper: +1.29).
	if gr.MigrationOverTLD < 40 {
		t.Errorf("Greece migration improvement = %.1f, want large", gr.MigrationOverTLD)
	}
	if gr.PoPOverTLD > 20 {
		t.Errorf("Greece PoP improvement = %.1f, want small", gr.PoPOverTLD)
	}
	// Migration dominates PoP mirroring everywhere.
	for _, row := range r.Rows {
		if row.MigrationOverTLD+1e-9 < row.PoPOverTLD {
			t.Errorf("%s: migration %.1f < PoP %.1f", row.Country, row.MigrationOverTLD, row.PoPOverTLD)
		}
	}
}

func TestFig9SensitiveShares(t *testing.T) {
	r := testSuite(t).Fig9()
	// Paper: 2.89% of tracking flows are sensitive.
	if p := r.Report.PctOfAll(); p < 1 || p > 7 {
		t.Errorf("sensitive share = %.2f%%, want ~2.9%%", p)
	}
	// Health dominates, gambling second (Fig 9).
	health := r.Share(webgraph.SensHealth)
	gambling := r.Share(webgraph.SensGambling)
	if health < gambling {
		t.Errorf("health %.1f%% < gambling %.1f%%", health, gambling)
	}
	if health < 20 || health > 55 {
		t.Errorf("health share = %.1f%%, want ~38%%", health)
	}
	if len(r.Report.Shares) < 10 {
		t.Errorf("only %d categories with flows, want ~12", len(r.Report.Shares))
	}
}

func TestFig10SensitiveConfinementMatchesGeneral(t *testing.T) {
	su := testSuite(t)
	r := su.Fig10()
	overall := r.OverallEU28Share()
	// The paper's key finding: sensitive flows are confined like general
	// traffic (~84.9% EU28).
	general := su.Fig7().IPMapEU28()
	diff := overall - general
	if diff < -12 || diff > 12 {
		t.Errorf("sensitive EU28 share %.1f%% vs general %.1f%%: should be similar", overall, general)
	}
}

func TestFig11SensitiveLeakage(t *testing.T) {
	r := testSuite(t).Fig11()
	if len(r.Leaks) == 0 {
		t.Fatal("no per-country leakage")
	}
	for _, l := range r.Leaks {
		if l.Outside > l.Total {
			t.Fatalf("%s outside > total", l.Country)
		}
	}
	// Small countries leak more than big ones when both are present.
	byC := map[geodata.Country]float64{}
	for _, l := range r.Leaks {
		if l.Total >= 50 {
			byC[l.Country] = l.OutsidePct()
		}
	}
	if de, okDE := byC["DE"]; okDE {
		if cy, okCY := byC["CY"]; okCY && cy < de {
			t.Errorf("Cyprus leakage %.1f%% < Germany %.1f%%", cy, de)
		}
	}
}

func TestTable7Profiles(t *testing.T) {
	r := testSuite(t).Table7()
	if len(r.ISPs) != 4 {
		t.Fatalf("ISPs = %d", len(r.ISPs))
	}
	if !strings.Contains(r.Render(), "DE-Broadband") {
		t.Error("render missing ISP")
	}
}

func TestTable8ISPConfinement(t *testing.T) {
	su := testSuite(t)
	r := su.Table8()
	if len(r.Reports) != 16 {
		t.Fatalf("reports = %d, want 4 ISPs x 4 dates", len(r.Reports))
	}
	for _, rep := range r.Reports {
		// Paper: EU28 confinement 75-93% across all ISP-days.
		if rep.EU28 < 65 || rep.EU28 > 97 {
			t.Errorf("%s %s EU28 = %.1f%%, want 75-93%%", rep.ISP, rep.Date.Format("01-02"), rep.EU28)
		}
		if rep.SampledFlows == 0 {
			t.Errorf("%s %s: no flows", rep.ISP, rep.Date.Format("01-02"))
		}
	}
	// Mobile operators confine more than broadband (§7.3).
	apr := SnapshotDates()[1]
	deB, _ := r.Report("DE-Broadband", apr)
	deM, _ := r.Report("DE-Mobile", apr)
	if deM.EU28 < deB.EU28-3 {
		t.Errorf("DE-Mobile EU28 %.1f%% much below DE-Broadband %.1f%%", deM.EU28, deB.EU28)
	}
	// Flow magnitudes: DE-Broadband carries the most (Table 8).
	if deB.SampledFlows < deM.SampledFlows {
		t.Error("DE-Broadband must carry more sampled flows than DE-Mobile")
	}
}

func TestFig12TopCountries(t *testing.T) {
	su := testSuite(t)
	r := su.Fig12(su.Table8())
	if len(r.PerISP) != 4 {
		t.Fatalf("ISPs = %d", len(r.PerISP))
	}
	// German ISPs confine most flows nationally; PL almost nothing
	// (Fig 12: DE 69%/67%, PL 0.25%).
	de := r.NationalShare("DE-Broadband", "DE")
	pl := r.NationalShare("PL", "PL")
	if de < 35 {
		t.Errorf("DE-Broadband national share = %.1f%%, want ~69%%", de)
	}
	if pl > 8 {
		t.Errorf("PL national share = %.1f%%, want ~0.25%%", pl)
	}
	if de <= pl {
		t.Error("German confinement must exceed Polish")
	}
	// Hungary's flows land in the CEE hub (Austria) more than at home.
	hu := r.NationalShare("HU", "HU")
	at := r.NationalShare("HU", "AT")
	if at <= hu {
		t.Errorf("HU ISP: Austria %.1f%% <= Hungary %.1f%%, want Vienna-dominant (Fig 12d)", at, hu)
	}
}

func TestTable9Transcription(t *testing.T) {
	rows := Table9()
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14 studies incl. this work", len(rows))
	}
	if rows[len(rows)-1].Study != "This work" {
		t.Error("last row must be this work")
	}
	if !strings.Contains(RenderTable9(), "RIPE IPmap") {
		t.Error("render missing IPmap cell")
	}
}
