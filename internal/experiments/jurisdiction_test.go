package experiments

import (
	"testing"

	"crossborder/internal/core"
	"crossborder/internal/geodata"
)

func TestJurisdictionViewsOverScenario(t *testing.T) {
	su := testSuite(t)
	a := su.IPMapAnalysis()

	gdpr, flows := a.JurisdictionConfinement(core.GDPR(), core.EU28Origin)
	if flows == 0 {
		t.Fatal("no EU28 flows")
	}
	eea, _ := a.JurisdictionConfinement(core.EEAPlus(), core.EU28Origin)
	usa, _ := a.JurisdictionConfinement(core.USA(), core.EU28Origin)

	// EEA+ is a superset of GDPR; USA absorbs roughly the NA leak.
	if eea < gdpr {
		t.Errorf("EEA+ %.1f%% < GDPR %.1f%%", eea, gdpr)
	}
	if usa > 100-gdpr {
		t.Errorf("USA share %.1f%% exceeds the non-GDPR remainder", usa)
	}
	if gdpr < 70 {
		t.Errorf("GDPR confinement = %.1f%%, want the headline level", gdpr)
	}

	// National view is consistent with the Fig 8 computation.
	deNat, _ := a.JurisdictionConfinement(core.National("DE"),
		func(c geodata.Country) bool { return c == "DE" })
	fig8 := su.Fig8()
	deFig8, ok := fig8.NationalConfinement("DE")
	if !ok {
		t.Fatal("no DE confinement")
	}
	if diff := deNat - deFig8; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("jurisdiction DE %.3f != Fig 8 DE %.3f", deNat, deFig8)
	}

	// The cross-border matrix covers every EU28 origin with flows.
	matrix := a.CrossBorderMatrix(core.GDPR(), core.EU28Origin)
	if len(matrix) < 10 {
		t.Errorf("matrix rows = %d, want most EU28 countries", len(matrix))
	}
	for _, row := range matrix {
		if !geodata.IsEU28(row.Country) {
			t.Errorf("non-EU origin %s in EU28-filtered matrix", row.Country)
		}
		if row.InEU28 < 0 || row.InEU28 > 100 {
			t.Errorf("%s inside-share out of range: %f", row.Country, row.InEU28)
		}
	}
}
