package experiments

import (
	"fmt"

	"crossborder/internal/classify"
	"crossborder/internal/stats"
	"crossborder/internal/tablefmt"
)

// Table1Result reproduces Table 1: the real-users dataset summary.
type Table1Result struct {
	Stats classify.DatasetStats
}

// Table1 computes the dataset statistics.
func (su *Suite) Table1() Table1Result {
	return Table1Result{Stats: classify.ComputeStats(su.S.Dataset)}
}

// Render formats the table.
func (r Table1Result) Render() string {
	t := tablefmt.NewTable("Table 1: The real users dataset statistics.",
		"# Users", "# 1st party Domains", "# 1st party Requests",
		"# 3rd party Domains", "# 3rd party Requests")
	t.AddRow(r.Stats.Users, r.Stats.FirstPartySites, r.Stats.FirstPartyVisits,
		r.Stats.ThirdPartyFQDNs, r.Stats.ThirdPartyReqs)
	return t.String()
}

// Table2Result reproduces Table 2: filter lists vs the semi-automatic
// classification.
type Table2Result struct {
	T classify.Table2
	// Acc scores the combined classifier against generator ground truth
	// (not in the paper — the synthetic world makes it measurable).
	Acc classify.Accuracy
}

// Table2 runs the classification aggregate.
func (su *Suite) Table2() Table2Result {
	return Table2Result{
		T:   classify.ComputeTable2(su.S.Dataset),
		Acc: classify.Score(su.S.Dataset),
	}
}

// SemiToABPRatio returns the semi-automatic catch relative to the lists'
// (the paper's headline: the methodology roughly doubles detection).
func (r Table2Result) SemiToABPRatio() float64 {
	if r.T.ABP.TotalRequests == 0 {
		return 0
	}
	return float64(r.T.Semi.TotalRequests) / float64(r.T.ABP.TotalRequests)
}

// Render formats the table.
func (r Table2Result) Render() string {
	t := tablefmt.NewTable(
		"Table 2: AdBlockPlus lists vs semi-automatic classification.",
		"Method", "# FQDN", "# TLD", "# Unique Requests", "# Total Requests")
	t.AddRow("AdBlockPlus Lists", r.T.ABP.FQDNs, r.T.ABP.TLDs, r.T.ABP.UniqueRequests, r.T.ABP.TotalRequests)
	t.AddRow("Semi-automatic", r.T.Semi.FQDNs, r.T.Semi.TLDs, r.T.Semi.UniqueRequests, r.T.Semi.TotalRequests)
	t.AddRow("Total", r.T.Total.FQDNs, r.T.Total.TLDs, r.T.Total.UniqueRequests, r.T.Total.TotalRequests)
	return t.String() + fmt.Sprintf(
		"semi/ABP request ratio: %.2f   classifier precision %.4f recall %.4f\n",
		r.SemiToABPRatio(), r.Acc.Precision(), r.Acc.Recall())
}

// Fig2Result reproduces Fig 2: the CDFs of third-party requests per
// website (clean only / ad+tracking only / all).
type Fig2Result struct {
	Clean, Tracking, All *stats.CDF
	// TrackingDominatesShare is the fraction of sites where tracking
	// flows outnumber clean ones (the figure's takeaway).
	TrackingDominatesShare float64
}

// Fig2 computes the per-site distributions.
func (su *Suite) Fig2() Fig2Result {
	sites := classify.PerSiteCounts(su.S.Dataset)
	r := Fig2Result{Clean: &stats.CDF{}, Tracking: &stats.CDF{}, All: &stats.CDF{}}
	dominates := 0
	for _, s := range sites {
		r.Clean.Add(float64(s.Clean))
		r.Tracking.Add(float64(s.Tracking))
		r.All.Add(float64(s.All()))
		if s.Tracking > s.Clean {
			dominates++
		}
	}
	if len(sites) > 0 {
		r.TrackingDominatesShare = float64(dominates) / float64(len(sites))
	}
	return r
}

// Render plots the three CDFs.
func (r Fig2Result) Render() string {
	out := "Fig 2: 3rd-party requests per website (CDF)\n"
	plot := func(name string, c *stats.CDF) string {
		pts := c.Points(40)
		conv := make([]struct{ X, Y float64 }, len(pts))
		for i, p := range pts {
			conv[i] = struct{ X, Y float64 }{p.X, p.Y}
		}
		return tablefmt.CDFPlot(name, conv, 50, 8)
	}
	out += plot("Clean only", r.Clean)
	out += plot("Ad + Tracking only", r.Tracking)
	out += plot("All 3rd party", r.All)
	out += fmt.Sprintf("tracking outnumbers clean on %.0f%% of websites\n",
		100*r.TrackingDominatesShare)
	return out
}

// Fig3Result reproduces Fig 3: the top-20 tracking eTLD+1s with the
// ABP-vs-semi detection split.
type Fig3Result struct {
	Top []classify.TLDSplit
}

// Fig3 computes the top-20 list.
func (su *Suite) Fig3() Fig3Result {
	return Fig3Result{Top: classify.TopTrackingTLDs(su.S.Dataset, 20)}
}

// Render draws the split bar chart.
func (r Fig3Result) Render() string {
	bars := make([]tablefmt.Bar, 0, len(r.Top))
	for _, s := range r.Top {
		bars = append(bars, tablefmt.Bar{
			Label: s.TLD,
			Value: float64(s.Total()),
			Note:  fmt.Sprintf("ABP=%d SEMI=%d", s.ABP, s.Semi),
		})
	}
	return tablefmt.BarChart("Fig 3: top 20 TLDs of ad + tracking domains", 40, bars)
}
