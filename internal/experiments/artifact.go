package experiments

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"sort"
	"strconv"
)

// Artifact is the common currency of the experiment registry: one
// rendered table or figure of the paper's evaluation, carrying the
// structured result it was computed from.
type Artifact interface {
	// Render returns the plain-text artifact, byte-identical to the
	// output of the corresponding Suite method's Render.
	Render() string
	// JSON marshals the structured result as indented JSON.
	JSON() ([]byte, error)
	// CSV flattens the structured result into machine-readable
	// "path,value" rows (one row per scalar leaf, object keys sorted,
	// array elements indexed).
	CSV() ([]byte, error)
	// Value exposes the underlying result value (e.g. a Table8Result)
	// for dependent experiments and typed callers.
	Value() any
}

// artifact is the registry's Artifact implementation: a structured
// result plus its renderer.
type artifact struct {
	value  any
	render func() string
}

// NewArtifact wraps a structured experiment result and its renderer
// into an Artifact. The pointer return keeps artifacts comparable by
// identity (the Suite cache hands out the same artifact every time).
func NewArtifact(value any, render func() string) Artifact {
	return &artifact{value: value, render: render}
}

func (a *artifact) Render() string { return a.render() }

func (a *artifact) Value() any { return a.value }

func (a *artifact) JSON() ([]byte, error) {
	return json.MarshalIndent(a.value, "", "  ")
}

func (a *artifact) CSV() ([]byte, error) {
	return flattenCSV(a.value)
}

// flattenCSV encodes any JSON-marshalable value as deterministic
// "path,value" CSV rows: objects contribute dot-joined key paths in
// sorted order, arrays contribute [i] indices, and every scalar leaf
// becomes one row.
func flattenCSV(v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var tree any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&tree); err != nil {
		return nil, err
	}
	rows := [][]string{{"path", "value"}}
	flattenNode("", tree, &rows)
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func flattenNode(path string, v any, rows *[][]string) {
	switch t := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child := k
			if path != "" {
				child = path + "." + k
			}
			flattenNode(child, t[k], rows)
		}
	case []any:
		for i, e := range t {
			flattenNode(path+"["+strconv.Itoa(i)+"]", e, rows)
		}
	case json.Number:
		*rows = append(*rows, []string{path, t.String()})
	case string:
		*rows = append(*rows, []string{path, t})
	case bool:
		*rows = append(*rows, []string{path, strconv.FormatBool(t)})
	case nil:
		*rows = append(*rows, []string{path, ""})
	}
}
