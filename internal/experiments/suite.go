// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has one entry point returning structured
// rows plus a Render method producing the plain-text artifact; the
// package's tests assert that the measured numbers stay inside bands
// around the paper's values, so a calibration regression in the scenario
// breaks `go test`.
package experiments

import (
	"sync"

	"crossborder/internal/core"
	"crossborder/internal/scenario"
)

// Suite caches the expensive joint analyses over one scenario, plus one
// computed Artifact per registered experiment (see registry.go).
type Suite struct {
	S *scenario.Scenario

	// Progress, when non-nil, receives PhaseEvent-style progress from
	// long experiment runners — currently Table 8's sixteen ISP-day
	// NetFlow syntheses, reported under the phase name "table8" with
	// Done counting finished ISP-days. Set it before running experiments;
	// delivery is serialized (one runner emits at a time) and progress
	// never changes any artifact.
	Progress func(scenario.PhaseEvent)

	once struct {
		truth, ipmap, maxmind sync.Once
	}
	truthA, ipmapA, maxmindA *core.Analysis

	cellsMu sync.Mutex
	cells   map[string]*artifactCell
}

// NewSuite wraps a built scenario.
func NewSuite(s *scenario.Scenario) *Suite {
	return &Suite{S: s}
}

// NewSuiteSeeded wraps a scenario with the three geolocation joins
// pre-filled from analyses computed elsewhere — the live collector's
// incrementally merged per-epoch deltas. The seeded analyses must equal
// what core.Analyze would return over s.Dataset (the delta-merge
// property test and the replay golden test pin this); a nil seed leaves
// that join lazy.
func NewSuiteSeeded(s *scenario.Scenario, truth, ipmap, maxmind *core.Analysis) *Suite {
	su := NewSuite(s)
	if truth != nil {
		su.truthA = truth
		su.once.truth.Do(func() {})
	}
	if ipmap != nil {
		su.ipmapA = ipmap
		su.once.ipmap.Do(func() {})
	}
	if maxmind != nil {
		su.maxmindA = maxmind
		su.once.maxmind.Do(func() {})
	}
	return su
}

// Precompute runs the three geolocation joins (truth, IPmap, MaxMind)
// concurrently instead of letting the first caller of each pay for it
// serially. Each join also shards its row scan internally (core.Analyze),
// so this saturates the machine once rather than three times in
// sequence. Safe to call multiple times and concurrently with the lazy
// accessors — the per-analysis sync.Once still guards each computation.
func (su *Suite) Precompute() {
	var wg sync.WaitGroup
	for _, f := range []func() *core.Analysis{
		su.TruthAnalysis, su.IPMapAnalysis, su.MaxMindAnalysis,
	} {
		wg.Add(1)
		go func(f func() *core.Analysis) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

// TruthAnalysis joins all tracking flows with ground-truth geolocation.
func (su *Suite) TruthAnalysis() *core.Analysis {
	su.once.truth.Do(func() {
		su.truthA = core.Analyze(su.S.Dataset, su.S.Truth, nil)
	})
	return su.truthA
}

// IPMapAnalysis joins all tracking flows with RIPE IPmap-style
// geolocation — the paper's headline configuration.
func (su *Suite) IPMapAnalysis() *core.Analysis {
	su.once.ipmap.Do(func() {
		su.ipmapA = core.Analyze(su.S.Dataset, su.S.IPMap, nil)
	})
	return su.ipmapA
}

// MaxMindAnalysis joins all tracking flows with the commercial database —
// the Fig 7(a) counterfactual.
func (su *Suite) MaxMindAnalysis() *core.Analysis {
	su.once.maxmind.Do(func() {
		su.maxmindA = core.Analyze(su.S.Dataset, su.S.MaxMind, nil)
	})
	return su.maxmindA
}
