package experiments

import (
	"context"
	"testing"

	"crossborder/internal/scenario"
)

// TestTable8Progress: the registry's heaviest runner reports its
// sixteen ISP-day syntheses through Suite.Progress — monotone, phase
// "table8", ending at Total — and progress never changes the artifact.
func TestTable8Progress(t *testing.T) {
	su := testSuite(t)
	var events []scenario.PhaseEvent
	su2 := NewSuite(su.S)
	su2.Progress = func(ev scenario.PhaseEvent) { events = append(events, ev) }

	withProg, err := su2.Table8Context(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 17 {
		t.Fatalf("got %d progress events, want 17 (0/16 .. 16/16)", len(events))
	}
	last := -1
	for i, ev := range events {
		if ev.Phase != "table8" {
			t.Fatalf("event %d phase = %q, want table8", i, ev.Phase)
		}
		if ev.Total != 16 {
			t.Fatalf("event %d total = %d, want 16", i, ev.Total)
		}
		if ev.Done <= last && i > 0 {
			t.Fatalf("event %d done = %d not monotone after %d", i, ev.Done, last)
		}
		last = ev.Done
	}
	if last != 16 {
		t.Fatalf("final done = %d, want 16", last)
	}

	// Progress must not perturb the result.
	plain := su.Table8()
	if len(plain.Reports) != len(withProg.Reports) {
		t.Fatal("progress changed the number of reports")
	}
	for i := range plain.Reports {
		if plain.Reports[i].EU28 != withProg.Reports[i].EU28 ||
			plain.Reports[i].SampledFlows != withProg.Reports[i].SampledFlows {
			t.Fatalf("report %d differs with progress enabled", i)
		}
	}
}

// TestNewSuiteSeeded: pre-seeded geolocation joins short-circuit the
// lazy Analyze and are returned verbatim.
func TestNewSuiteSeeded(t *testing.T) {
	su := testSuite(t)
	truth := su.TruthAnalysis()
	ipmap := su.IPMapAnalysis()
	maxmind := su.MaxMindAnalysis()

	seeded := NewSuiteSeeded(su.S, truth, ipmap, maxmind)
	if seeded.TruthAnalysis() != truth || seeded.IPMapAnalysis() != ipmap || seeded.MaxMindAnalysis() != maxmind {
		t.Fatal("seeded suite recomputed a pre-filled analysis")
	}

	// Partially seeded: the nil join computes lazily and matches.
	partial := NewSuiteSeeded(su.S, truth, nil, nil)
	if partial.TruthAnalysis() != truth {
		t.Fatal("partially seeded suite recomputed truth")
	}
	if !partial.IPMapAnalysis().Equal(ipmap) {
		t.Fatal("lazy ipmap join diverges")
	}
}
