package experiments

import (
	"fmt"

	"crossborder/internal/core"
	"crossborder/internal/geodata"
	"crossborder/internal/tablefmt"
)

// Fig6Result reproduces Fig 6: the continent-to-continent Sankey of all
// tracking flows under IPmap geolocation.
type Fig6Result struct {
	Edges []core.Edge
	// Confinement per origin region (the §4 prose: EU28 high, South
	// America leaking ~90% into North America).
	Confinement map[geodata.Continent]float64
	// DestShare is each region's share of all flow terminations (EU28
	// 51.65%, N. America 40.87% in the paper).
	DestShare map[geodata.Continent]float64
}

// Fig6 aggregates continent flows.
func (su *Suite) Fig6() Fig6Result {
	a := su.IPMapAnalysis()
	r := Fig6Result{
		Edges:       a.ContinentEdges(),
		Confinement: make(map[geodata.Continent]float64),
		DestShare:   make(map[geodata.Continent]float64),
	}
	var total int64
	destCount := make(map[string]int64)
	for _, e := range r.Edges {
		destCount[e.To] += e.Count
		total += e.Count
		if e.From == e.To {
			r.Confinement[continentByName(e.From)] = e.Percent
		}
	}
	for name, n := range destCount {
		r.DestShare[continentByName(name)] = 100 * float64(n) / float64(total)
	}
	return r
}

func continentByName(name string) geodata.Continent {
	for _, c := range geodata.AllContinents() {
		if c.String() == name {
			return c
		}
	}
	return geodata.ContinentUnknown
}

// Render draws the Sankey summary.
func (r Fig6Result) Render() string {
	edges := make([]tablefmt.FlowEdge, 0, len(r.Edges))
	for _, e := range r.Edges {
		edges = append(edges, tablefmt.FlowEdge{From: e.From, To: e.To, Percent: e.Percent, Count: e.Count})
	}
	out := tablefmt.Sankey("Fig 6: ad + tracking flows between continents (RIPE IPmap)", edges)
	out += fmt.Sprintf("destination shares: EU28 %.2f%%, N. America %.2f%%\n",
		r.DestShare[geodata.EU28], r.DestShare[geodata.NorthAmerica])
	return out
}

// Fig7Result reproduces Fig 7: EU28 users' destination continents under
// MaxMind (a) vs RIPE IPmap (b) — the flip.
type Fig7Result struct {
	MaxMind []core.Edge
	IPMap   []core.Edge
}

// share extracts a destination region's percentage from an edge list.
func share(edges []core.Edge, region string) float64 {
	for _, e := range edges {
		if e.To == region {
			return e.Percent
		}
	}
	return 0
}

// MaxMindEU28 returns EU28 users' flows MaxMind places inside EU28.
func (r Fig7Result) MaxMindEU28() float64 { return share(r.MaxMind, geodata.EU28.String()) }

// MaxMindNA returns the MaxMind North America share.
func (r Fig7Result) MaxMindNA() float64 { return share(r.MaxMind, geodata.NorthAmerica.String()) }

// IPMapEU28 returns EU28 users' flows IPmap places inside EU28.
func (r Fig7Result) IPMapEU28() float64 { return share(r.IPMap, geodata.EU28.String()) }

// IPMapNA returns the IPmap North America share.
func (r Fig7Result) IPMapNA() float64 { return share(r.IPMap, geodata.NorthAmerica.String()) }

// Fig7 computes both views.
func (su *Suite) Fig7() Fig7Result {
	return Fig7Result{
		MaxMind: su.MaxMindAnalysis().DestContinents(core.EU28Origin),
		IPMap:   su.IPMapAnalysis().DestContinents(core.EU28Origin),
	}
}

// Render shows the two pies side by side.
func (r Fig7Result) Render() string {
	out := "Fig 7: EU28 users' tracking-flow destinations by geolocation service\n"
	t := tablefmt.NewTable("", "Destination", "(a) MaxMind %", "(b) RIPE IPmap %")
	regions := map[string]bool{}
	for _, e := range r.MaxMind {
		regions[e.To] = true
	}
	for _, e := range r.IPMap {
		regions[e.To] = true
	}
	for _, c := range geodata.AllContinents() {
		name := c.String()
		if !regions[name] {
			continue
		}
		t.AddRow(name, share(r.MaxMind, name), share(r.IPMap, name))
	}
	return out + t.String()
}

// Fig8Result reproduces Fig 8: the EU28 country-to-country Sankey.
type Fig8Result struct {
	Edges       []core.Edge
	Confinement []core.Confinement
}

// Fig8 aggregates per-country flows of EU28 users under IPmap.
func (su *Suite) Fig8() Fig8Result {
	a := su.IPMapAnalysis()
	all := a.ConfinementByCountry()
	var eu []core.Confinement
	for _, c := range all {
		if geodata.IsEU28(c.Country) {
			eu = append(eu, c)
		}
	}
	return Fig8Result{
		Edges:       a.CountryEdges(core.EU28Origin),
		Confinement: eu,
	}
}

// NationalConfinement returns the in-country percentage for one origin.
func (r Fig8Result) NationalConfinement(c geodata.Country) (float64, bool) {
	for _, conf := range r.Confinement {
		if conf.Country == c {
			return conf.InCountry, true
		}
	}
	return 0, false
}

// Render draws the per-country Sankey and the confinement list.
func (r Fig8Result) Render() string {
	edges := make([]tablefmt.FlowEdge, 0, len(r.Edges))
	for _, e := range r.Edges {
		if e.Percent < 0.5 {
			continue // keep the artifact readable, like the figure
		}
		edges = append(edges, tablefmt.FlowEdge{
			From:    geodata.Name(geodata.Country(e.From)),
			To:      geodata.Name(geodata.Country(e.To)),
			Percent: e.Percent,
		})
	}
	out := tablefmt.Sankey("Fig 8: tracking flows from EU28 countries (RIPE IPmap)", edges)
	t := tablefmt.NewTable("National confinement", "Country", "In-country %", "Flows")
	for _, c := range r.Confinement {
		t.AddRow(geodata.Name(c.Country), c.InCountry, c.Flows)
	}
	return out + t.String()
}
