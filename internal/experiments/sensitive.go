package experiments

import (
	"fmt"

	"crossborder/internal/geodata"
	"crossborder/internal/sensitive"
	"crossborder/internal/tablefmt"
	"crossborder/internal/webgraph"
)

// Fig9Result reproduces Fig 9: tracking-flow share per sensitive category.
type Fig9Result struct {
	Report     *sensitive.Report
	Identified int
	Inspected  int
}

// Fig9 builds the sensitive-category report.
func (su *Suite) Fig9() Fig9Result {
	id := su.S.Identification
	return Fig9Result{
		Report:     sensitive.BuildReport(su.S.Dataset, id),
		Identified: id.Identified(),
		Inspected:  id.Inspected,
	}
}

// Share returns one category's percentage of sensitive flows.
func (r Fig9Result) Share(cat webgraph.Topic) float64 {
	for _, s := range r.Report.Shares {
		if s.Category == cat {
			return s.Percent
		}
	}
	return 0
}

// Render draws the category bars.
func (r Fig9Result) Render() string {
	bars := make([]tablefmt.Bar, 0, len(r.Report.Shares))
	for _, s := range r.Report.Shares {
		bars = append(bars, tablefmt.Bar{
			Label: string(s.Category), Value: s.Percent,
			Note: fmt.Sprintf("%d flows", s.Flows),
		})
	}
	out := tablefmt.BarChart("Fig 9: sensitive-category share of tracking flows", 40, bars)
	out += fmt.Sprintf("%d sensitive domains identified of %d inspected; "+
		"%d sensitive flows = %.2f%% of all tracking flows\n",
		r.Identified, r.Inspected, r.Report.SensitiveFlows, r.Report.PctOfAll())
	return out
}

// Fig10Result reproduces Fig 10: destination continents per sensitive
// category for EU28 users.
type Fig10Result struct {
	Edges []sensitive.DestEdge
}

// Fig10 traces sensitive flows geographically.
func (su *Suite) Fig10() Fig10Result {
	return Fig10Result{
		Edges: sensitive.DestByCategory(su.S.Dataset, su.S.Identification, su.S.IPMap),
	}
}

// EU28Share returns the EU28-terminating share for one category.
func (r Fig10Result) EU28Share(cat webgraph.Topic) float64 {
	for _, e := range r.Edges {
		if e.Category == cat && e.Region == geodata.EU28.String() {
			return e.Percent
		}
	}
	return 0
}

// OverallEU28Share returns the EU28 share across all sensitive flows.
func (r Fig10Result) OverallEU28Share() float64 {
	var eu, total int64
	for _, e := range r.Edges {
		total += e.Flows
		if e.Region == geodata.EU28.String() {
			eu += e.Flows
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(eu) / float64(total)
}

// Render draws the per-category destination breakdown.
func (r Fig10Result) Render() string {
	edges := make([]tablefmt.FlowEdge, 0, len(r.Edges))
	for _, e := range r.Edges {
		edges = append(edges, tablefmt.FlowEdge{
			From: string(e.Category), To: e.Region, Percent: e.Percent, Count: e.Flows,
		})
	}
	out := tablefmt.Sankey("Fig 10: destination continents of sensitive tracking flows (EU28 users)", edges)
	out += fmt.Sprintf("overall EU28 share of sensitive flows: %.1f%%\n", r.OverallEU28Share())
	return out
}

// Fig11Result reproduces Fig 11: per-country leakage of sensitive flows.
type Fig11Result struct {
	Leaks []sensitive.CountryLeak
}

// Fig11 computes per-country sensitive-flow leakage.
func (su *Suite) Fig11() Fig11Result {
	return Fig11Result{
		Leaks: sensitive.CountryLeakage(su.S.Dataset, su.S.Identification, su.S.IPMap),
	}
}

// Render draws the leakage bars.
func (r Fig11Result) Render() string {
	bars := make([]tablefmt.Bar, 0, len(r.Leaks))
	for _, l := range r.Leaks {
		bars = append(bars, tablefmt.Bar{
			Label: geodata.Name(l.Country),
			Value: l.OutsidePct(),
			Note:  fmt.Sprintf("outside=%d total=%d", l.Outside, l.Total),
		})
	}
	return tablefmt.BarChart("Fig 11: sensitive flows leaving the user's country (EU28)", 40, bars)
}
