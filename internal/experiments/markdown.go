package experiments

import (
	"fmt"
	"strings"
)

// MarkdownIndex renders the registry as the EXPERIMENTS.md document: one
// row per artifact with id, title, paper section, dependencies, and the
// one-line description. The repo's EXPERIMENTS.md is this function's
// output verbatim; a test asserts they stay in sync.
func MarkdownIndex() string {
	var b strings.Builder
	b.WriteString("# Experiments\n")
	b.WriteString("\n")
	b.WriteString("<!-- Generated from the experiment registry")
	b.WriteString(" (internal/experiments/registry.go); do not edit by hand.\n")
	b.WriteString("     Regenerate with: go test -run TestExperimentsMarkdownInSync . -update -->\n")
	b.WriteString("\n")
	b.WriteString("Every table and figure of \"Tracing Cross Border Web Tracking\"\n")
	b.WriteString("(IMC 2018) is a registered experiment. Each one renders as plain text\n")
	b.WriteString("(`Render`), marshals as JSON (`JSON`), and flattens to CSV (`CSV`);\n")
	b.WriteString("`cmd/reproduce -list` prints this same index, and\n")
	b.WriteString("`cmd/reproduce -only <id> [-json|-csv]` runs any subset by id.\n")
	b.WriteString("\n")
	b.WriteString("| ID | Title | Section | Depends on | Description |\n")
	b.WriteString("|----|-------|---------|------------|-------------|\n")
	for _, e := range registry {
		deps := "—"
		if len(e.Deps) > 0 {
			deps = strings.Join(e.Deps, ", ")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s | %s |\n",
			e.ID, e.Title, e.Section, deps, e.Desc)
	}
	b.WriteString("\n")
	b.WriteString("The registry executes as a dependency graph: `Suite.RunAll` computes\n")
	b.WriteString("independent experiments in parallel over the precomputed geolocation\n")
	b.WriteString("joins and runs dependencies (e.g. `table8` before `fig12`) first.\n")
	b.WriteString("Output order is always paper order, byte-identical for a fixed seed.\n")
	b.WriteString("\n")
	b.WriteString("## Cross-study comparisons\n")
	b.WriteString("\n")
	b.WriteString("Comparison experiments live in a separate registry: they consume a\n")
	b.WriteString("seed × scenario-pack sweep grid (`cmd/sweep`, `scenario.Sweep`)\n")
	b.WriteString("instead of a single study, and report per-pack deltas against the\n")
	b.WriteString("default build.\n")
	b.WriteString("\n")
	b.WriteString("| ID | Title | Description |\n")
	b.WriteString("|----|-------|-------------|\n")
	for _, c := range comparisons {
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", c.ID, c.Title, c.Desc)
	}
	return b.String()
}
