package experiments

import "crossborder/internal/tablefmt"

// Table9Row is one study of the paper's related-work comparison.
type Table9Row struct {
	Study          string
	Classification string
	RequestTypes   string
	Measurement    string
	Platform       string
	DataCollection string
	Geolocation    string
	HTTPS          string
}

// Table9 is the paper's qualitative related-work comparison, transcribed.
// It is documentation, not an experiment: no simulation regenerates it.
func Table9() []Table9Row {
	return []Table9Row{
		{"Razaghpanah'18 [52]", "ABP + custom corrections", "ads+tracking", "passive", "mobile", "real users", "MaxMind(-)", "yes"},
		{"Gervais'17 [36]", "ABP", "ads+tracking", "active", "desktop", "crawling", "legal entities", "yes"},
		{"Bangera'17 [29]", "ABP", "ads", "active", "desktop", "crawling", "-", "no"},
		{"Englehardt'16 [58]", "ABP + custom corrections", "ads+tracking", "active", "desktop", "crawling", "-", "yes"},
		{"Bashir'18 [30]", "ABP", "ads+tracking", "active", "desktop", "crawling", "-", "yes"},
		{"Leung'16 [42]", "ABP + custom corrections", "ads+tracking", "active", "mixed", "real users", "-", "yes"},
		{"Reuben'18 [53]", "custom list", "tracking", "active", "mobile", "app store", "legal entities", "yes"},
		{"Lerner'16 [41]", "cookies based", "tracking", "active", "desktop", "web archives", "-", "no"},
		{"Fruchter'15 [35]", "ABP", "tracking", "active", "desktop", "crawling", "MaxMind(-)", "no"},
		{"Walls'15 [61]", "text ads", "ads", "active", "desktop", "crawling", "-", "yes"},
		{"Balebako'12 [28]", "custom list", "ads", "active", "desktop", "control env.", "-", "no"},
		{"Vallina'12 [60]", "custom list", "ads", "passive", "mobile", "net traces", "-", "no"},
		{"Pujol'15 [51]", "ABP", "ads+tracking", "passive", "desktop", "net flows", "-", "yes"},
		{"This work", "ABP + custom corrections", "ads+tracking", "active+passive", "desktop", "real users + NetFlows", "RIPE IPmap(+)", "yes"},
	}
}

// RenderTable9 formats the comparison.
func RenderTable9() string {
	t := tablefmt.NewTable("Table 9: related work comparison (transcribed from the paper)",
		"Study", "Classification", "Requests", "Measurement", "Platform", "Collection", "Geolocation", "HTTPS")
	for _, r := range Table9() {
		t.AddRow(r.Study, r.Classification, r.RequestTypes, r.Measurement,
			r.Platform, r.DataCollection, r.Geolocation, r.HTTPS)
	}
	return t.String()
}
