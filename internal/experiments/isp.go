package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"crossborder/internal/core"
	"crossborder/internal/geodata"
	"crossborder/internal/netflow"
	"crossborder/internal/scenario"
	"crossborder/internal/tablefmt"
)

// Table7Result reproduces Table 7: the profiles of the four ISPs.
type Table7Result struct {
	ISPs []netflow.ISPProfile
}

// Table7 returns the ISP profiles.
func (su *Suite) Table7() Table7Result {
	return Table7Result{ISPs: netflow.DefaultISPs()}
}

// Render formats the profile table.
func (r Table7Result) Render() string {
	t := tablefmt.NewTable("Table 7: profile of the four European ISPs",
		"Name", "Country", "Demographics")
	for _, p := range r.ISPs {
		kind := "broadband households"
		if p.Mobile {
			kind = "mobile users"
		}
		t.AddRow(p.Name, geodata.Name(p.Country),
			fmt.Sprintf("%.0f+ million %s", p.SubscribersM, kind))
	}
	return t.String()
}

// SnapshotDates are the four measurement days of Table 8. (The paper's
// table header says Nov 8; its text says Nov 11 — we use the table.)
func SnapshotDates() []time.Time {
	return []time.Time{
		time.Date(2017, 11, 8, 12, 0, 0, 0, time.UTC),
		time.Date(2018, 4, 4, 12, 0, 0, 0, time.UTC),
		time.Date(2018, 5, 16, 12, 0, 0, 0, time.UTC),
		time.Date(2018, 6, 20, 12, 0, 0, 0, time.UTC),
	}
}

// ISPDayReport is one ISP-day cell block of Table 8.
type ISPDayReport struct {
	ISP          string
	Date         time.Time
	SampledFlows int64
	// Region shares in percent.
	EU28, NorthAmerica, RestEurope, Asia, RestWorld float64
	// TopCountries is the Fig 12 view: destination country shares.
	TopCountries []core.Edge
}

// Table8Result reproduces Table 8: sampled tracking flows and region
// confinement across ISPs and dates.
type Table8Result struct {
	Reports []ISPDayReport // ISP-major order, date-minor
}

// Report returns the cell block for one ISP and date.
func (r Table8Result) Report(isp string, date time.Time) (ISPDayReport, bool) {
	for _, rep := range r.Reports {
		if rep.ISP == isp && rep.Date.Equal(date) {
			return rep, true
		}
	}
	return ISPDayReport{}, false
}

// Table8 synthesizes all sixteen ISP-days and geolocates the destination
// counters with IPmap (the §7.2 methodology: match tracker IPs in
// NetFlow, then geolocate).
func (su *Suite) Table8() Table8Result {
	r, err := su.Table8Context(context.Background())
	if err != nil {
		// Unreachable: the background context never cancels and
		// cancellation is the only error source.
		panic("experiments: " + err.Error())
	}
	return r
}

// Table8Context is Table8 with cancellation and progress: the sixteen
// per-ISP-day NetFlow syntheses dominate the registry's wall-clock at
// full scale, so the loop polls ctx before each day and returns
// ctx.Err() promptly, and reports each finished ISP-day through
// Suite.Progress under the phase name "table8". This is what lets
// `reproduce -only table8` honour ctrl-C mid-run and `-progress` show
// the heaviest runner advancing.
func (su *Suite) Table8Context(ctx context.Context) (Table8Result, error) {
	synth := &netflow.Synthesizer{Resolver: su.S.DNS}
	fqdns := su.S.FQDNWeights()
	isps := netflow.DefaultISPs()
	total := len(isps) * len(SnapshotDates())
	started := time.Now()
	emit := func(done int) {
		if su.Progress != nil {
			su.Progress(scenario.PhaseEvent{
				Phase: "table8", Done: done, Total: total,
				Elapsed: time.Since(started),
			})
		}
	}
	emit(0)
	var out Table8Result
	for _, isp := range isps {
		for di, date := range SnapshotDates() {
			if err := ctx.Err(); err != nil {
				return Table8Result{}, err
			}
			rng := rand.New(rand.NewSource(su.S.Params.Seed*1000 + int64(di) + int64(len(out.Reports))))
			day := synth.Synthesize(rng, isp, date, fqdns)
			out.Reports = append(out.Reports, su.summarizeDay(isp, day))
			emit(len(out.Reports))
		}
	}
	return out, nil
}

// summarizeDay geolocates a day's per-IP counters into region shares.
func (su *Suite) summarizeDay(isp netflow.ISPProfile, day netflow.DaySynthesis) ISPDayReport {
	rep := ISPDayReport{ISP: isp.Name, Date: day.Date, SampledFlows: day.SampledFlows}
	a := core.NewAnalysis()
	for ip, n := range day.PerIP {
		// §7.2: flows count while the tracker-IP binding is valid.
		if !su.S.Inventory.IsTrackingIP(ip, day.Date) {
			continue
		}
		loc, ok := su.S.IPMap.Locate(ip)
		if !ok {
			a.AddUnknown(n)
			continue
		}
		a.Add(isp.Country, loc.Country, n)
	}
	var total int64
	regionCounts := map[geodata.Continent]int64{}
	for _, e := range a.DestContinents(nil) {
		regionCounts[continentByName(e.To)] += e.Count
		total += e.Count
	}
	pct := func(c geodata.Continent) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(regionCounts[c]) / float64(total)
	}
	rep.EU28 = pct(geodata.EU28)
	rep.NorthAmerica = pct(geodata.NorthAmerica)
	rep.RestEurope = pct(geodata.RestOfEurope)
	rep.Asia = pct(geodata.Asia)
	rep.RestWorld = 100 - rep.EU28 - rep.NorthAmerica - rep.RestEurope - rep.Asia
	if rep.RestWorld < 0 { // guard the float residue against -0.00
		rep.RestWorld = 0
	}
	rep.TopCountries = a.TopDestinations(5)
	return rep
}

// Render formats the full Table 8 matrix.
func (r Table8Result) Render() string {
	t := tablefmt.NewTable("Table 8: sampled tracking flow statistics across EU ISPs and over time",
		"ISP", "Date", "Sampled Flows (M)", "EU28 %", "N.America %", "Rest Europe %", "Asia %", "Rest World %")
	for _, rep := range r.Reports {
		t.AddRow(rep.ISP, rep.Date.Format("2006-01-02"),
			float64(rep.SampledFlows)/1e6,
			rep.EU28, rep.NorthAmerica, rep.RestEurope, rep.Asia, rep.RestWorld)
	}
	return t.String()
}

// Fig12Result reproduces Fig 12: top-5 destination countries per ISP on
// the April 4 snapshot.
type Fig12Result struct {
	PerISP map[string][]core.Edge
}

// Fig12 extracts the April 4 top-country views from Table 8's reports.
func (su *Suite) Fig12(t8 Table8Result) Fig12Result {
	apr := SnapshotDates()[1]
	r := Fig12Result{PerISP: make(map[string][]core.Edge)}
	for _, rep := range t8.Reports {
		if rep.Date.Equal(apr) {
			r.PerISP[rep.ISP] = rep.TopCountries
		}
	}
	return r
}

// NationalShare returns the share of the ISP's flows terminating in its
// own country (Fig 12: DE ~69%, PL ~0.25%, HU ~6.85%).
func (r Fig12Result) NationalShare(isp string, home geodata.Country) float64 {
	for _, e := range r.PerISP[isp] {
		if e.To == string(home) {
			return e.Percent
		}
	}
	return 0
}

// Render formats the per-ISP top-5 lists.
func (r Fig12Result) Render() string {
	out := "Fig 12: top 5 destination countries per ISP (April 4)\n"
	for _, isp := range []string{"DE-Broadband", "DE-Mobile", "PL", "HU"} {
		edges := r.PerISP[isp]
		out += isp + ":\n"
		for _, e := range edges {
			out += fmt.Sprintf("  %-16s %6.2f%%\n", geodata.Name(geodata.Country(e.To)), e.Percent)
		}
	}
	return out
}
