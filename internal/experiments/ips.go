package experiments

import (
	"fmt"

	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/tablefmt"
	"crossborder/internal/trackerdb"
)

// Fig4Result reproduces Fig 4: how many registrable domains each tracking
// IP serves, by IP count and by request volume.
type Fig4Result struct {
	Sharing trackerdb.SharingStats
	// Inventory sizing (§3.3 text: 28,939 observed IPs, +2.78% via pDNS).
	TotalIPs, ObservedIPs, ExtraIPs int
}

// ExtraSharePct returns the pDNS-only share of the inventory.
func (r Fig4Result) ExtraSharePct() float64 {
	if r.TotalIPs == 0 {
		return 0
	}
	return 100 * float64(r.ExtraIPs) / float64(r.TotalIPs)
}

// Fig4 computes the sharing distribution.
func (su *Suite) Fig4() Fig4Result {
	inv := su.S.Inventory
	return Fig4Result{
		Sharing:     inv.Sharing(),
		TotalIPs:    inv.NumIPs(),
		ObservedIPs: inv.NumObserved(),
		ExtraIPs:    inv.NumExtra(),
	}
}

// Render formats the distribution.
func (r Fig4Result) Render() string {
	t := tablefmt.NewTable("Fig 4: domains served per tracking IP",
		"# TLDs on IP", "# IPs", "# Requests")
	for _, k := range sortedBins(r.Sharing.IPsByTLDCount) {
		t.AddRow(k, r.Sharing.IPsByTLDCount[k], r.Sharing.RequestsByTLDCount[k])
	}
	return t.String() + fmt.Sprintf(
		"single-TLD IPs serve %.1f%% of requests; %.2f%% of IPs serve >1 domain\n"+
			"inventory: %d IPs (%d observed, %d pDNS-only = %.2f%%)\n",
		100*r.Sharing.SingleTLDRequestShare(), 100*r.Sharing.MultiDomainIPShare(),
		r.TotalIPs, r.ObservedIPs, r.ExtraIPs, r.ExtraSharePct())
}

func sortedBins(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Fig5Result reproduces Fig 5: the IPs hosting ten or more tracking
// domains (cookie-sync / ad-exchange infrastructure) by country.
type Fig5Result struct {
	SharedIPs []trackerdb.IPInfo
	ByCountry map[geodata.Country]int
	// USAndEUShare is the fraction located in the US or EU28 (the paper:
	// about half).
	USAndEUShare float64
}

// Fig5 geolocates the >=10-domain IPs with the IPmap service.
func (su *Suite) Fig5() Fig5Result {
	shared := su.S.Inventory.SharedIPs(10)
	r := Fig5Result{SharedIPs: shared, ByCountry: make(map[geodata.Country]int)}
	usEU := 0
	for _, info := range shared {
		loc, ok := su.S.IPMap.Locate(info.IP)
		if !ok {
			continue
		}
		r.ByCountry[loc.Country]++
		if loc.Country == "US" || geodata.IsEU28(loc.Country) {
			usEU++
		}
	}
	if len(shared) > 0 {
		r.USAndEUShare = float64(usEU) / float64(len(shared))
	}
	return r
}

// Render formats the population.
func (r Fig5Result) Render() string {
	t := tablefmt.NewTable(
		fmt.Sprintf("Fig 5: %d IPs host 10+ ad+tracking domains", len(r.SharedIPs)),
		"Country", "# IPs")
	for _, c := range sortedCountries(r.ByCountry) {
		t.AddRow(geodata.Name(c), r.ByCountry[c])
	}
	return t.String() + fmt.Sprintf("US + EU28 share: %.0f%%\n", 100*r.USAndEUShare)
}

func sortedCountries(m map[geodata.Country]int) []geodata.Country {
	out := make([]geodata.Country, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			if m[a] > m[b] || (m[a] == m[b] && a < b) {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}

// Table3Result reproduces Table 3: pairwise geolocation agreement.
type Table3Result struct {
	IPAPIvMaxMind geo.Agreement
	IPAPIvIPMap   geo.Agreement
	MaxMindvIPMap geo.Agreement
}

// Table3 compares the three services over the tracker inventory.
func (su *Suite) Table3() Table3Result {
	ips := su.S.Inventory.IPs()
	return Table3Result{
		IPAPIvMaxMind: geo.CompareServices(su.S.IPAPI, su.S.MaxMind, ips),
		IPAPIvIPMap:   geo.CompareServices(su.S.IPAPI, su.S.IPMap, ips),
		MaxMindvIPMap: geo.CompareServices(su.S.MaxMind, su.S.IPMap, ips),
	}
}

// Render formats the agreement matrix.
func (r Table3Result) Render() string {
	t := tablefmt.NewTable("Table 3: pair-wise agreement across geolocation tools",
		"Pair", "Country %", "Continent %")
	add := func(a geo.Agreement) {
		t.AddRow(a.A+" / "+a.B, a.Country, a.Continent)
	}
	add(r.IPAPIvMaxMind)
	add(r.IPAPIvIPMap)
	add(r.MaxMindvIPMap)
	return t.String()
}

// Table4Result reproduces Table 4: MaxMind's errors on the majors' IPs.
type Table4Result struct {
	Rows []geo.OrgErrorReport
}

// Table4 scores MaxMind against ground truth per major organization.
func (su *Suite) Table4() Table4Result {
	// Collect per-org IP sets and request weights from the inventory.
	orgIPs := map[string][]netsim.IP{}
	reqs := map[netsim.IP]int64{}
	for _, ip := range su.S.Inventory.IPs() {
		dep, ok := su.S.World.LocateIP(ip)
		if !ok {
			continue
		}
		switch dep.Org.Name {
		case "google", "amazon", "facebook":
			orgIPs[dep.Org.Name] = append(orgIPs[dep.Org.Name], ip)
			if info, ok := su.S.Inventory.Info(ip); ok {
				reqs[ip] = info.Requests
			}
		}
	}
	var rows []geo.OrgErrorReport
	for _, org := range []string{"google", "amazon", "facebook"} {
		rows = append(rows, geo.ScoreOrg(org, su.S.MaxMind, su.S.Truth, orgIPs[org], reqs))
	}
	return Table4Result{Rows: rows}
}

// Render formats the error table.
func (r Table4Result) Render() string {
	t := tablefmt.NewTable("Table 4: MaxMind mis-geolocation of major ad+tracking orgs",
		"Org", "# IPs", "Wrong Country %", "Wrong Cont. %",
		"# Requests", "Req Wrong Country %", "Req Wrong Cont. %")
	for _, row := range r.Rows {
		t.AddRow(row.Org+" Ads + Tracking", row.IPs,
			row.WrongCountryPct(), row.WrongContinentPct(),
			row.Requests, row.ReqWrongCountryPct(), row.ReqWrongContinentPct())
	}
	return t.String()
}
