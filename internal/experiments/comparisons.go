package experiments

import (
	"fmt"
	"sort"
	"strings"

	"crossborder/internal/scenario"
)

// Cross-study comparison experiments: artifacts computed over a seed ×
// pack sweep grid rather than a single study. They live in their own
// registry — the main registry is pinned to the paper's artifacts and
// its id set is part of the public contract — and are rendered by
// cmd/sweep after a scenario.Sweep run.

// SweepGrid is the comparison experiments' input: the results of one
// seed × pack sweep, in cell order.
type SweepGrid struct {
	Results []scenario.CellResult
}

// Packs returns the grid's pack labels in first-seen order ("default"
// always sorts first when present).
func (g *SweepGrid) Packs() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range g.Results {
		if !seen[r.Cell.Label] {
			seen[r.Cell.Label] = true
			out = append(out, r.Cell.Label)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i] == "default" && out[j] != "default"
	})
	return out
}

// Seeds returns the grid's seeds in first-seen order.
func (g *SweepGrid) Seeds() []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, r := range g.Results {
		if !seen[r.Cell.Seed] {
			seen[r.Cell.Seed] = true
			out = append(out, r.Cell.Seed)
		}
	}
	return out
}

// summaries returns the pack's summaries across seeds, in seed order.
func (g *SweepGrid) summaries(pack string) []scenario.Summary {
	var out []scenario.Summary
	for _, seed := range g.Seeds() {
		for _, r := range g.Results {
			if r.Cell.Label == pack && r.Cell.Seed == seed {
				out = append(out, r.Summary)
				break
			}
		}
	}
	return out
}

// Comparison is one registered cross-study artifact.
type Comparison struct {
	// ID is the canonical identifier, e.g. "cmp-table1".
	ID string
	// Title is the artifact's caption.
	Title string
	// Desc is the one-line description for the markdown index.
	Desc string
	// Run computes the artifact from a sweep grid.
	Run func(g *SweepGrid) Artifact
}

var (
	comparisons      []Comparison
	comparisonsIndex = make(map[string]int)
)

// RegisterComparison adds a comparison experiment; registration order
// is render order. Panics mirror Register's.
func RegisterComparison(c Comparison) {
	id := strings.ToLower(strings.TrimSpace(c.ID))
	if id == "" {
		panic("experiments: RegisterComparison with empty ID")
	}
	if c.Run == nil {
		panic("experiments: RegisterComparison " + id + " with nil Run")
	}
	if _, dup := comparisonsIndex[id]; dup {
		panic("experiments: duplicate comparison " + id)
	}
	c.ID = id
	comparisonsIndex[id] = len(comparisons)
	comparisons = append(comparisons, c)
}

// Comparisons returns the registered comparison experiments in order.
func Comparisons() []Comparison {
	out := make([]Comparison, len(comparisons))
	copy(out, comparisons)
	return out
}

// GetComparison looks a comparison up by id, case-insensitively.
func GetComparison(id string) (Comparison, bool) {
	i, ok := comparisonsIndex[strings.ToLower(strings.TrimSpace(id))]
	if !ok {
		return Comparison{}, false
	}
	return comparisons[i], true
}

// packRow is one pack's per-seed values plus the mean, used by every
// comparison table below.
type packRow struct {
	Pack   string    `json:"pack"`
	Values []float64 `json:"values"` // one per seed, seed order
	Mean   float64   `json:"mean"`
}

// CompareResult is one comparison metric across the grid.
type CompareResult struct {
	Metric string    `json:"metric"`
	Seeds  []int64   `json:"seeds"`
	Rows   []packRow `json:"rows"`
}

// CompareSet is a titled group of metrics, the value type every
// comparison artifact carries.
type CompareSet struct {
	Title   string          `json:"title"`
	Metrics []CompareResult `json:"metrics"`
}

// compare extracts one metric across the whole grid.
func compare(g *SweepGrid, metric string, f func(scenario.Summary) float64) CompareResult {
	out := CompareResult{Metric: metric, Seeds: g.Seeds()}
	for _, pack := range g.Packs() {
		row := packRow{Pack: pack}
		for _, s := range g.summaries(pack) {
			row.Values = append(row.Values, f(s))
		}
		for _, v := range row.Values {
			row.Mean += v
		}
		if len(row.Values) > 0 {
			row.Mean /= float64(len(row.Values))
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render formats the set as aligned plain-text tables, one per metric,
// with per-pack deltas against the first (default) row.
func (cs CompareSet) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", cs.Title)
	for _, m := range cs.Metrics {
		fmt.Fprintf(&b, "\n%s\n", m.Metric)
		fmt.Fprintf(&b, "  %-12s", "pack")
		for _, s := range m.Seeds {
			fmt.Fprintf(&b, " %12s", fmt.Sprintf("seed %d", s))
		}
		fmt.Fprintf(&b, " %12s %9s\n", "mean", "vs def")
		var base float64
		for i, r := range m.Rows {
			if i == 0 {
				base = r.Mean
			}
			fmt.Fprintf(&b, "  %-12s", r.Pack)
			for _, v := range r.Values {
				fmt.Fprintf(&b, " %12.3f", v)
			}
			delta := "—"
			if i > 0 {
				delta = fmt.Sprintf("%+.3f", r.Mean-base)
			}
			fmt.Fprintf(&b, " %12.3f %9s\n", r.Mean, delta)
		}
	}
	return b.String()
}

func regCompare(id, title, desc string, metrics func(g *SweepGrid) []CompareResult) {
	RegisterComparison(Comparison{
		ID: id, Title: title, Desc: desc,
		Run: func(g *SweepGrid) Artifact {
			cs := CompareSet{Title: title, Metrics: metrics(g)}
			return NewArtifact(cs, cs.Render)
		},
	})
}

func init() {
	regCompare("cmp-table1", "Table 1 deltas per pack",
		"Dataset-shape shifts across packs: users, third-party FQDNs, and request volume vs the default build.",
		func(g *SweepGrid) []CompareResult {
			return []CompareResult{
				compare(g, "users", func(s scenario.Summary) float64 { return float64(s.Stats.Users) }),
				compare(g, "third-party FQDNs", func(s scenario.Summary) float64 { return float64(s.Stats.ThirdPartyFQDNs) }),
				compare(g, "third-party requests", func(s scenario.Summary) float64 { return float64(s.Stats.ThirdPartyReqs) }),
			}
		})
	regCompare("cmp-table2", "Table 2 / classifier deltas per pack",
		"Catch composition and accuracy shifts: filter-list vs semi-automatic share, precision, recall.",
		func(g *SweepGrid) []CompareResult {
			return []CompareResult{
				compare(g, "filter-list catch share", func(s scenario.Summary) float64 {
					return float64(s.Table2.ABP.TotalRequests) / float64(s.Stats.ThirdPartyReqs)
				}),
				compare(g, "semi-automatic catch share", func(s scenario.Summary) float64 {
					return float64(s.Table2.Semi.TotalRequests) / float64(s.Stats.ThirdPartyReqs)
				}),
				compare(g, "precision", func(s scenario.Summary) float64 { return s.Accuracy.Precision() }),
				compare(g, "recall", func(s scenario.Summary) float64 { return s.Accuracy.Recall() }),
			}
		})
	regCompare("cmp-flows", "Tracking flow and confinement deltas per pack",
		"Truth-joined tracking flow counts and EU28 confinement (in-country / in-EU28 / in-Europe) vs the default build.",
		func(g *SweepGrid) []CompareResult {
			return []CompareResult{
				compare(g, "tracking flows", func(s scenario.Summary) float64 { return float64(s.Flows) }),
				compare(g, "EU28 in-country share", func(s scenario.Summary) float64 { return s.InCountry }),
				compare(g, "EU28 in-EU28 share", func(s scenario.Summary) float64 { return s.InEU28 }),
				compare(g, "EU28 in-Europe share", func(s scenario.Summary) float64 { return s.InEurope }),
			}
		})
	regCompare("cmp-inventory", "Tracker inventory deltas per pack",
		"Tracker database shifts: known IPs, directly observed IPs, and tracking hostnames per pack.",
		func(g *SweepGrid) []CompareResult {
			return []CompareResult{
				compare(g, "tracker IPs", func(s scenario.Summary) float64 { return float64(s.TrackerIPs) }),
				compare(g, "observed tracker IPs", func(s scenario.Summary) float64 { return float64(s.ObservedIPs) }),
				compare(g, "tracking FQDNs", func(s scenario.Summary) float64 { return float64(s.TrackingFQDNs) }),
			}
		})
}
