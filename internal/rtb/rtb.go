// Package rtb generates the request cascades that real-time-bidding ad
// delivery produces inside a rendered page (Fig 1 of the paper): the ad
// network call from the publisher context, the exchange's auction call,
// bid requests fanning out to DSPs, the winner's creative, cookie-sync
// redirect chains between the winner's DMP and other tracking platforms,
// and impression pixels. These chained, argument-carrying requests are
// exactly the traffic that static filter lists miss and the paper's
// semi-automatic classifier recovers (§3.2).
package rtb

import (
	"math"
	"math/rand"
	"strconv"

	"crossborder/internal/webgraph"
)

// Call is one third-party request produced while rendering a page. The
// browser simulator resolves the FQDN, records the serving IP and emits
// the final request log entry.
type Call struct {
	// Service answers the request.
	Service *webgraph.Service
	// FQDN is the specific hostname contacted (one of Service.FQDNs).
	FQDN string
	// Path is the URL path and query.
	Path string
	// HasArgs reports whether the URL carries query arguments, one of the
	// two signals of the paper's stage-3 heuristic.
	HasArgs bool
	// Keyword is the tracking-vocabulary keyword embedded in the URL
	// ("usermatch", "rtb", "cookiesync", ...), or "".
	Keyword string
	// RefFQDN is the hostname of the referring context; "" means the
	// first-party page itself.
	RefFQDN string
}

// URL renders the call as a full URL (https; §7.2 observes 83% of
// tracking traffic is already encrypted).
func (c Call) URL() string { return "https://" + c.FQDN + c.Path }

// Config tunes cascade sizes.
type Config struct {
	// MinBidders / MaxBidders bound the DSP fan-out per auction
	// (defaults 2 and 6).
	MinBidders, MaxBidders int
	// MinSyncs / MaxSyncs bound the cookie-sync chain length after a won
	// auction (defaults 1 and 5).
	MinSyncs, MaxSyncs int
}

func (c Config) withDefaults() Config {
	if c.MinBidders == 0 {
		c.MinBidders = 2
	}
	if c.MaxBidders == 0 {
		c.MaxBidders = 6
	}
	if c.MinSyncs == 0 {
		c.MinSyncs = 1
	}
	if c.MaxSyncs == 0 {
		c.MaxSyncs = 5
	}
	return c
}

// Auction runs one synthetic RTB auction for an ad slot filled by the
// given ad network and returns the cascade of third-party calls in
// causal order.
type Auction struct {
	cfg   Config
	graph *webgraph.Graph

	exchanges []*webgraph.Service
	dsps      []*webgraph.Service
	dmps      []*webgraph.Service

	// Market concentration: selection is Zipf-weighted by slice rank, so
	// the head services (the majors are registered first) carry a
	// realistic share of cascade traffic.
	xchgPick *zipfPicker
	dspPick  *zipfPicker
	dmpPick  *zipfPicker
}

// NewAuction prepares an auction generator over the graph's services.
func NewAuction(graph *webgraph.Graph, cfg Config) *Auction {
	a := &Auction{
		cfg:       cfg.withDefaults(),
		graph:     graph,
		exchanges: graph.ServicesByRole(webgraph.RoleExchange),
		dsps:      graph.ServicesByRole(webgraph.RoleDSP),
		dmps:      graph.ServicesByRole(webgraph.RoleDMP),
	}
	a.xchgPick = newZipfPicker(len(a.exchanges), 1.2)
	a.dspPick = newZipfPicker(len(a.dsps), 1.05)
	a.dmpPick = newZipfPicker(len(a.dmps), 1.0)
	return a
}

// zipfPicker samples index i with probability proportional to 1/(i+1)^s.
type zipfPicker struct {
	cum []float64
}

func newZipfPicker(n int, s float64) *zipfPicker {
	if n <= 0 {
		return &zipfPicker{}
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(rng *rand.Rand) int {
	if len(z.cum) == 0 {
		return 0
	}
	x := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// pickFQDN selects one of the service's hostnames, preferring auxiliary
// subdomains for sync/rtb endpoints when wantSub is non-empty.
func pickFQDN(rng *rand.Rand, s *webgraph.Service, wantSub string) string {
	if wantSub != "" {
		for _, f := range s.FQDNs {
			if len(f) > len(wantSub) && f[:len(wantSub)] == wantSub && f[len(wantSub)] == '.' {
				return f
			}
		}
	}
	return s.FQDNs[rng.Intn(len(s.FQDNs))]
}

// Run generates the cascade for one ad slot. adNet is the ad network
// embedded on the page; the returned calls are ordered by causality
// (each call's RefFQDN names an earlier call's FQDN or "" for the page).
func (a *Auction) Run(rng *rand.Rand, adNet *webgraph.Service) []Call {
	return a.RunAppend(rng, adNet, nil)
}

// RunAppend is Run appending into calls, letting hot loops reuse one
// buffer across auctions instead of allocating a slice per ad slot.
func (a *Auction) RunAppend(rng *rand.Rand, adNet *webgraph.Service, calls []Call) []Call {
	cfg := a.cfg

	// 1. The publisher-context ad call. Initiated by first-party-embedded
	// JavaScript, so its referrer is the page (§3.2 notes these populate
	// the referrer with the first-party URL).
	adFQDN := pickFQDN(rng, adNet, "ads")
	calls = append(calls, Call{
		Service: adNet,
		FQDN:    adFQDN,
		Path:    "/adserv/slot?sz=300x250&cb=" + strconv.Itoa(rng.Intn(20000)),
		HasArgs: true,
		Keyword: "adserv",
		RefFQDN: "",
	})

	if len(a.exchanges) == 0 {
		return calls
	}

	// 2. The exchange auction call.
	xchg := a.exchanges[a.xchgPick.pick(rng)]
	xFQDN := pickFQDN(rng, xchg, "rtb")
	calls = append(calls, Call{
		Service: xchg,
		FQDN:    xFQDN,
		Path:    "/rtb/auction?aid=" + strconv.FormatInt(rng.Int63n(200000), 10) + "&pub=" + strconv.Itoa(rng.Intn(6000)),
		HasArgs: true,
		Keyword: "rtb",
		RefFQDN: adFQDN,
	})

	// 3. Bid requests to DSPs.
	var winner *webgraph.Service
	if len(a.dsps) > 0 {
		n := cfg.MinBidders + rng.Intn(cfg.MaxBidders-cfg.MinBidders+1)
		for i := 0; i < n; i++ {
			dsp := a.dsps[a.dspPick.pick(rng)]
			f := pickFQDN(rng, dsp, "bid")
			calls = append(calls, Call{
				Service: dsp,
				FQDN:    f,
				Path:    "/bid?auction=" + strconv.FormatInt(rng.Int63n(200000), 10) + "&floor=" + strconv.Itoa(rng.Intn(500)),
				HasArgs: true,
				Keyword: "bid",
				RefFQDN: xFQDN,
			})
			if i == 0 || rng.Intn(i+1) == 0 {
				winner = dsp
			}
		}
	}

	// 4. Winner serves the creative.
	if winner != nil {
		wFQDN := pickFQDN(rng, winner, "ads")
		calls = append(calls, Call{
			Service: winner,
			FQDN:    wFQDN,
			Path:    "/creative?imp=" + strconv.FormatInt(rng.Int63n(300000), 10),
			HasArgs: true,
			Keyword: "",
			RefFQDN: xFQDN,
		})

		// 5. Cookie-sync chain: winner matches user IDs with DMPs and the
		// exchange. Each hop redirects to the next with sync arguments.
		if len(a.dmps) > 0 {
			n := cfg.MinSyncs + rng.Intn(cfg.MaxSyncs-cfg.MinSyncs+1)
			prev := wFQDN
			for i := 0; i < n; i++ {
				dmp := a.dmps[a.dmpPick.pick(rng)]
				f := pickFQDN(rng, dmp, "sync")
				kw := "cookiesync"
				if rng.Intn(2) == 0 {
					kw = "usermatch"
				}
				calls = append(calls, Call{
					Service: dmp,
					FQDN:    f,
					Path:    "/" + kw + "?uid=" + strconv.FormatInt(rng.Int63n(400000), 10) + "&partner=" + prev,
					HasArgs: true,
					Keyword: kw,
					RefFQDN: prev,
				})
				prev = f
			}
		}

		// 6. Impression pixel back to the winner.
		calls = append(calls, Call{
			Service: winner,
			FQDN:    pickFQDN(rng, winner, "pixel"),
			Path:    "/pixel?event=imp&ts=" + strconv.FormatInt(rng.Int63n(250000), 10),
			HasArgs: true,
			Keyword: "pixel",
			RefFQDN: wFQDN,
		})
	}

	return calls
}

// DirectTrackerCall produces the request an in-page analytics tag emits.
// Its referrer is the page, and its URL carries arguments; ABP-style lists
// usually cover these first-hop trackers.
func DirectTrackerCall(rng *rand.Rand, s *webgraph.Service) Call {
	return Call{
		Service: s,
		FQDN:    pickFQDN(rng, s, "track"),
		Path:    "/collect?tid=" + strconv.Itoa(rng.Intn(4000)) + "&ev=pageview&dl=" + strconv.FormatInt(rng.Int63n(100000), 10),
		HasArgs: true,
		Keyword: "track",
		RefFQDN: "",
	}
}

// WidgetCall produces a benign widget/CDN request: no tracking vocabulary
// and usually no query arguments.
func WidgetCall(rng *rand.Rand, s *webgraph.Service) Call {
	paths := []string{"/widget.js", "/embed.css", "/lib/main.js", "/fonts/a.woff2", "/player.js"}
	p := paths[rng.Intn(len(paths))]
	hasArgs := rng.Float64() < 0.15 // a few widgets version-pin with ?v=
	if hasArgs {
		p += "?v=" + strconv.Itoa(rng.Intn(100))
	}
	return Call{
		Service: s,
		FQDN:    s.FQDNs[rng.Intn(len(s.FQDNs))],
		Path:    p,
		HasArgs: hasArgs,
		RefFQDN: "",
	}
}
