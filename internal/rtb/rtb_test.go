package rtb

import (
	"math/rand"
	"strings"
	"testing"

	"crossborder/internal/webgraph"
)

func testGraph(t *testing.T) *webgraph.Graph {
	t.Helper()
	return webgraph.Build(rand.New(rand.NewSource(1)), webgraph.Config{}.Scale(0.05))
}

func TestAuctionCascadeShape(t *testing.T) {
	g := testGraph(t)
	a := NewAuction(g, Config{})
	rng := rand.New(rand.NewSource(2))
	adNet := g.ServicesByRole(webgraph.RoleAdNetwork)[0]

	calls := a.Run(rng, adNet)
	if len(calls) < 4 {
		t.Fatalf("cascade too short: %d calls", len(calls))
	}
	// First call is the ad network from the page context.
	if calls[0].Service != adNet || calls[0].RefFQDN != "" {
		t.Errorf("first call = %+v", calls[0])
	}
	if calls[0].Keyword != "adserv" || !calls[0].HasArgs {
		t.Errorf("ad call missing vocabulary: %+v", calls[0])
	}
	// Second call is an exchange referred by the ad call.
	if calls[1].Service.Role != webgraph.RoleExchange {
		t.Errorf("second call role = %s", calls[1].Service.Role)
	}
	if calls[1].RefFQDN != calls[0].FQDN {
		t.Errorf("exchange referrer = %q, want %q", calls[1].RefFQDN, calls[0].FQDN)
	}
	if calls[1].Keyword != "rtb" {
		t.Errorf("exchange keyword = %q", calls[1].Keyword)
	}
}

func TestCausalReferrerChain(t *testing.T) {
	g := testGraph(t)
	a := NewAuction(g, Config{})
	rng := rand.New(rand.NewSource(3))
	adNet := g.ServicesByRole(webgraph.RoleAdNetwork)[1]

	for iter := 0; iter < 50; iter++ {
		calls := a.Run(rng, adNet)
		seen := map[string]bool{"": true}
		for i, c := range calls {
			if !seen[c.RefFQDN] {
				t.Fatalf("call %d referrer %q not produced earlier in cascade", i, c.RefFQDN)
			}
			seen[c.FQDN] = true
		}
	}
}

func TestCookieSyncVocabulary(t *testing.T) {
	g := testGraph(t)
	a := NewAuction(g, Config{MinSyncs: 3, MaxSyncs: 5})
	rng := rand.New(rand.NewSource(4))
	adNet := g.ServicesByRole(webgraph.RoleAdNetwork)[0]

	kw := map[string]int{}
	for i := 0; i < 100; i++ {
		for _, c := range a.Run(rng, adNet) {
			if c.Keyword != "" {
				kw[c.Keyword]++
			}
		}
	}
	for _, want := range []string{"rtb", "cookiesync", "usermatch", "adserv", "bid", "pixel"} {
		if kw[want] == 0 {
			t.Errorf("keyword %q never produced; got %v", want, kw)
		}
	}
}

func TestAuctionCallsResolveToServiceFQDNs(t *testing.T) {
	g := testGraph(t)
	a := NewAuction(g, Config{})
	rng := rand.New(rand.NewSource(5))
	adNet := g.ServicesByRole(webgraph.RoleAdNetwork)[0]
	for i := 0; i < 20; i++ {
		for _, c := range a.Run(rng, adNet) {
			found := false
			for _, f := range c.Service.FQDNs {
				if f == c.FQDN {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("call FQDN %s not among service %s FQDNs", c.FQDN, c.Service.Org)
			}
			if !c.Service.Role.IsTracking() {
				t.Fatalf("auction produced non-tracking call to %s (%s)", c.FQDN, c.Service.Role)
			}
		}
	}
}

func TestURLRendering(t *testing.T) {
	c := Call{FQDN: "sync.dmp0001.com", Path: "/cookiesync?uid=1"}
	if got := c.URL(); got != "https://sync.dmp0001.com/cookiesync?uid=1" {
		t.Errorf("URL = %q", got)
	}
}

func TestDirectTrackerCall(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(6))
	s := g.ServicesByRole(webgraph.RoleAnalytics)[0]
	c := DirectTrackerCall(rng, s)
	if !c.HasArgs || c.RefFQDN != "" {
		t.Errorf("direct tracker call = %+v", c)
	}
	if !strings.Contains(c.Path, "collect") {
		t.Errorf("path = %q", c.Path)
	}
}

func TestWidgetCallIsClean(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(7))
	s := g.ServicesByRole(webgraph.RoleWidget)[0]
	argCount := 0
	for i := 0; i < 200; i++ {
		c := WidgetCall(rng, s)
		if c.Keyword != "" {
			t.Fatalf("widget call has tracking keyword %q", c.Keyword)
		}
		if c.HasArgs {
			argCount++
			if !strings.Contains(c.Path, "?") {
				t.Fatalf("HasArgs true but no query in %q", c.Path)
			}
		}
	}
	if argCount == 0 || argCount > 80 {
		t.Errorf("widget arg rate = %d/200, want a small minority", argCount)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MinBidders != 2 || cfg.MaxBidders != 6 || cfg.MinSyncs != 1 || cfg.MaxSyncs != 5 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	g := testGraph(t)
	adNet := g.ServicesByRole(webgraph.RoleAdNetwork)[0]
	run := func() []Call {
		return NewAuction(g, Config{}).Run(rand.New(rand.NewSource(99)), adNet)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("same seed, different cascade length")
	}
	for i := range a {
		if a[i].FQDN != b[i].FQDN || a[i].Path != b[i].Path {
			t.Fatalf("call %d differs", i)
		}
	}
}
