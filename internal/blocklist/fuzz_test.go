package blocklist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: filter lists come from the outside world; any
// line may be malformed. Parse must degrade to per-line errors, never
// panic, and the surviving rules must still match safely.
func TestParseNeverPanics(t *testing.T) {
	f := func(lines []string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		l, _ := Parse("fuzz", strings.Join(lines, "\n"))
		// Whatever survived parsing must be matchable without panics.
		l.Match(Request{URL: "https://example.com/x?y=1", PageDomain: "page.com"})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestMatchArbitraryURLs throws random URL-ish strings at a realistic
// rule set.
func TestMatchArbitraryURLs(t *testing.T) {
	l := mustParse(t, strings.Join([]string{
		"||tracker.com^$third-party",
		"/adserv/*",
		"|https://exact.test/pixel|",
		"@@||tracker.com/allow^",
		"||wide.org^$domain=a.com|~b.a.com",
	}, "\n"))
	rng := rand.New(rand.NewSource(7))
	alphabet := "abc.:/?&=%|^*$@-_~#"
	for i := 0; i < 5000; i++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", sb.String(), r)
				}
			}()
			l.Match(Request{URL: sb.String(), PageDomain: "page.com"})
		}()
	}
}

// TestRuleMatchSubsetProperty: a rule with a $third-party restriction
// matches a subset of what the unrestricted rule matches.
func TestRuleMatchSubsetProperty(t *testing.T) {
	wide := mustParse(t, "||sub.example.net^")
	narrow := mustParse(t, "||sub.example.net^$third-party")
	f := func(path uint16, thirdParty bool) bool {
		page := "sub.example.net"
		if thirdParty {
			page = "other.org"
		}
		q := Request{
			URL:        "https://sub.example.net/p" + string(rune('a'+path%26)),
			PageDomain: page,
		}
		if narrow.Match(q) && !wide.Match(q) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
