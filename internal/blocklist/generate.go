package blocklist

import (
	"math/rand"
	"strings"

	"crossborder/internal/webgraph"
)

// Coverage controls which fraction of each service tier the generated
// filter lists know about. Real easylist/easyprivacy have excellent
// coverage of first-hop ad networks and analytics but systematically miss
// the long tail of RTB cascade endpoints (DSPs, DMPs, regional exchanges)
// — the very gap the paper's semi-automatic classifier closes (§3.2,
// Table 2). Defaults reproduce that shape.
type Coverage struct {
	AdNetworks float64 // default 0.85
	Analytics  float64 // default 0.90
	Exchanges  float64 // default 0.55
	DSPs       float64 // default 0.35
	DMPs       float64 // default 0.25
}

func (c Coverage) withDefaults() Coverage {
	if c.AdNetworks == 0 {
		c.AdNetworks = 0.85
	}
	if c.Analytics == 0 {
		c.Analytics = 0.90
	}
	if c.Exchanges == 0 {
		c.Exchanges = 0.55
	}
	if c.DSPs == 0 {
		c.DSPs = 0.35
	}
	if c.DMPs == 0 {
		c.DMPs = 0.25
	}
	return c
}

// Generate builds synthetic easylist (ad rules) and easyprivacy (tracking
// rules) texts over the graph's services. rng decides which services fall
// inside the coverage fractions; the same seed yields the same lists.
func Generate(rng *rand.Rand, g *webgraph.Graph, cov Coverage) (easylist, easyprivacy string) {
	cov = cov.withDefaults()
	var el, ep strings.Builder
	el.WriteString("[Adblock Plus 2.0]\n! Title: synthetic easylist\n")
	ep.WriteString("[Adblock Plus 2.0]\n! Title: synthetic easyprivacy\n")

	// Track eTLD+1s already emitted so multi-service orgs (the majors)
	// get one rule per registrable domain.
	emitted := map[string]bool{}
	emit := func(b *strings.Builder, s *webgraph.Service) {
		for _, f := range s.FQDNs {
			d := webgraph.ETLDPlusOne(f)
			if emitted[d] {
				continue
			}
			emitted[d] = true
			b.WriteString("||" + d + "^$third-party\n")
		}
	}

	covered := func(p float64, major bool) bool {
		if major {
			return true // the majors are always listed
		}
		return rng.Float64() < p
	}

	for _, s := range g.Services {
		switch s.Role {
		case webgraph.RoleAdNetwork:
			if covered(cov.AdNetworks, s.Major) {
				emit(&el, s)
			}
		case webgraph.RoleExchange:
			if covered(cov.Exchanges, s.Major) {
				emit(&el, s)
			}
		case webgraph.RoleDSP:
			if covered(cov.DSPs, s.Major) {
				emit(&el, s)
			}
		case webgraph.RoleAnalytics:
			if covered(cov.Analytics, s.Major) {
				emit(&ep, s)
			}
		case webgraph.RoleDMP:
			if covered(cov.DMPs, s.Major) {
				emit(&ep, s)
			}
		}
	}

	// A couple of domain-scoped path rules for realism. Deliberately NOT
	// generic path patterns: list-wide /adserv/ or /collect? rules would
	// catch every cascade head and erase the coverage gap that makes the
	// paper's semi-automatic stage necessary.
	el.WriteString("||googlesyndication.com/adserv/^$third-party\n")
	ep.WriteString("||google-analytics.com/collect^$third-party\n")
	return el.String(), ep.String()
}
