package blocklist

import (
	"math/rand"
	"strings"
	"testing"

	"crossborder/internal/webgraph"
)

func mustParse(t *testing.T, text string) *List {
	t.Helper()
	l, errs := Parse("test", text)
	if len(errs) != 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return l
}

func req(url, page string) Request { return Request{URL: url, PageDomain: page} }

func TestDomainAnchor(t *testing.T) {
	l := mustParse(t, "||tracker.com^")
	if !l.Match(req("https://tracker.com/x", "site.com")) {
		t.Error("exact domain must match")
	}
	if !l.Match(req("https://sub.tracker.com/x", "site.com")) {
		t.Error("subdomain must match")
	}
	if l.Match(req("https://nottracker.com/x", "site.com")) {
		t.Error("suffix-overlap domain must not match")
	}
	if l.Match(req("https://tracker.com.evil.org/x", "site.com")) {
		t.Error("domain as prefix of other host must not match")
	}
}

func TestDomainAnchorWithPath(t *testing.T) {
	l := mustParse(t, "||ads.example.com/banner^")
	if !l.Match(req("https://ads.example.com/banner?x=1", "p.com")) {
		t.Error("path + separator(?) must match")
	}
	if !l.Match(req("https://ads.example.com/banner", "p.com")) {
		t.Error("^ at end of URL must match")
	}
	if l.Match(req("https://ads.example.com/bannerx", "p.com")) {
		t.Error("^ must not match an alphanumeric")
	}
}

func TestPlainSubstring(t *testing.T) {
	l := mustParse(t, "/adserv/")
	if !l.Match(req("https://x.com/adserv/slot?a=1", "p.com")) {
		t.Error("substring must match anywhere")
	}
	if l.Match(req("https://x.com/ads/slot", "p.com")) {
		t.Error("partial token must not match")
	}
}

func TestWildcard(t *testing.T) {
	l := mustParse(t, "/banner/*/ad^")
	if !l.Match(req("https://x.com/banner/123/ad?x", "p.com")) {
		t.Error("wildcard gap must match")
	}
	if l.Match(req("https://x.com/banner/ad", "p.com")) {
		// Pattern requires both /banner/ and /ad with content between;
		// "/banner/ad" has the second token overlapping the first.
		t.Log("edge: overlapping tokens rejected as expected")
	}
	if l.Match(req("https://x.com/ad/123/banner/", "p.com")) {
		t.Error("tokens out of order must not match")
	}
}

func TestStartEndAnchors(t *testing.T) {
	l := mustParse(t, "|https://exact.com/pixel|")
	if !l.Match(req("https://exact.com/pixel", "p.com")) {
		t.Error("exact URL must match")
	}
	if l.Match(req("https://exact.com/pixel?x=1", "p.com")) {
		t.Error("end anchor must reject longer URL")
	}
	if l.Match(req("http://pre.https://exact.com/pixel", "p.com")) {
		t.Error("start anchor must reject offset match")
	}
}

func TestThirdPartyOption(t *testing.T) {
	l := mustParse(t, "||tracker.com^$third-party")
	if !l.Match(req("https://tracker.com/x", "site.com")) {
		t.Error("third-party request must match")
	}
	if l.Match(req("https://tracker.com/x", "tracker.com")) {
		t.Error("first-party request must not match $third-party rule")
	}
	lf := mustParse(t, "||self.com^$~third-party")
	if !lf.Match(req("https://self.com/x", "self.com")) {
		t.Error("first-party must match ~third-party rule")
	}
	if lf.Match(req("https://self.com/x", "other.com")) {
		t.Error("third-party must not match ~third-party rule")
	}
}

func TestDomainOption(t *testing.T) {
	l := mustParse(t, "||w.com^$domain=news.com|~sports.news.com")
	if !l.Match(req("https://w.com/x", "news.com")) {
		t.Error("included domain must match")
	}
	if !l.Match(req("https://w.com/x", "blog.news.com")) {
		t.Error("subdomain of included domain must match")
	}
	if l.Match(req("https://w.com/x", "sports.news.com")) {
		t.Error("excluded domain must not match")
	}
	if l.Match(req("https://w.com/x", "other.com")) {
		t.Error("unrelated domain must not match when domain= present")
	}
}

func TestExceptionRules(t *testing.T) {
	l := mustParse(t, "||ads.com^\n@@||ads.com/allowed^")
	if !l.Match(req("https://ads.com/banner", "p.com")) {
		t.Error("non-excepted path must match")
	}
	if l.Match(req("https://ads.com/allowed/x", "p.com")) {
		t.Error("exception must override block")
	}
}

func TestCaseInsensitive(t *testing.T) {
	l := mustParse(t, "||Tracker.COM/PixEl^")
	if !l.Match(req("https://tracker.com/pixel?x", "p.com")) {
		t.Error("matching must be case-insensitive")
	}
}

func TestCommentsAndHeaders(t *testing.T) {
	l := mustParse(t, "[Adblock Plus 2.0]\n! comment\n||a.com^\n\nexample.com##.ad\n")
	if l.NumRules() != 1 {
		t.Errorf("rules = %d, want 1 (comments/cosmetic skipped)", l.NumRules())
	}
}

func TestParseErrors(t *testing.T) {
	l, errs := Parse("test", "||a.com^$bogus-option\n||^\n||ok.com^")
	if len(errs) != 2 {
		t.Fatalf("errs = %v", errs)
	}
	if l.NumRules() != 1 {
		t.Errorf("valid rules = %d", l.NumRules())
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), "blocklist:") {
			t.Errorf("error %v missing context", e)
		}
	}
}

func TestResourceTypeOptionsIgnored(t *testing.T) {
	l := mustParse(t, "||a.com^$script,third-party\n||b.com^$image")
	if l.NumRules() != 2 {
		t.Fatalf("rules = %d", l.NumRules())
	}
	if !l.Match(req("https://a.com/x.js", "p.com")) {
		t.Error("script option must be accepted and ignored")
	}
}

func TestMatchAny(t *testing.T) {
	el := mustParse(t, "||ads.com^")
	ep := mustParse(t, "||metrics.com^")
	el.Name, ep.Name = "easylist", "easyprivacy"
	if name, ok := MatchAny(req("https://metrics.com/x", "p.com"), el, ep); !ok || name != "easyprivacy" {
		t.Errorf("MatchAny = %q, %v", name, ok)
	}
	if _, ok := MatchAny(req("https://clean.com/x", "p.com"), el, ep); ok {
		t.Error("clean request matched")
	}
}

func TestGenerateLists(t *testing.T) {
	g := webgraph.Build(rand.New(rand.NewSource(1)), webgraph.Config{}.Scale(0.1))
	el, ep := Generate(rand.New(rand.NewSource(2)), g, Coverage{})
	elList, errs := Parse("easylist", el)
	if len(errs) != 0 {
		t.Fatalf("easylist parse errors: %v", errs)
	}
	epList, errs := Parse("easyprivacy", ep)
	if len(errs) != 0 {
		t.Fatalf("easyprivacy parse errors: %v", errs)
	}
	if elList.NumRules() < 10 || epList.NumRules() < 10 {
		t.Errorf("lists too small: %d / %d", elList.NumRules(), epList.NumRules())
	}
	// The majors are always covered.
	if !elList.Match(req("https://pagead2.googlesyndication.com/adserv/slot?sz=1", "site.com")) {
		t.Error("google ad serving must be in easylist")
	}
	if !epList.Match(req("https://www.google-analytics.com/collect?tid=1", "site.com")) {
		t.Error("google analytics must be in easyprivacy")
	}
}

func TestGenerateCoverageGap(t *testing.T) {
	// With default coverage, a substantial share of DMP domains must be
	// missed — that is the paper's Table 2 mechanism.
	g := webgraph.Build(rand.New(rand.NewSource(3)), webgraph.Config{}.Scale(0.2))
	el, ep := Generate(rand.New(rand.NewSource(4)), g, Coverage{})
	elList, _ := Parse("easylist", el)
	epList, _ := Parse("easyprivacy", ep)

	missed, total := 0, 0
	for _, s := range g.ServicesByRole(webgraph.RoleDMP) {
		total++
		q := req("https://"+s.FQDNs[0]+"/cookiesync?uid=1", "site.com")
		if _, ok := MatchAny(q, elList, epList); !ok {
			missed++
		}
	}
	if total == 0 {
		t.Fatal("no DMPs in graph")
	}
	frac := float64(missed) / float64(total)
	if frac < 0.4 || frac > 0.95 {
		t.Errorf("DMP miss rate = %.2f, want well above half", frac)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := webgraph.Build(rand.New(rand.NewSource(5)), webgraph.Config{}.Scale(0.05))
	el1, ep1 := Generate(rand.New(rand.NewSource(6)), g, Coverage{})
	el2, ep2 := Generate(rand.New(rand.NewSource(6)), g, Coverage{})
	if el1 != el2 || ep1 != ep2 {
		t.Error("same seed must generate identical lists")
	}
}

func TestMemoizable(t *testing.T) {
	parse := func(text string) *List {
		l, errs := Parse("t", text)
		if len(errs) != 0 {
			t.Fatalf("parse %q: %v", text, errs)
		}
		return l
	}
	memoizable := []string{
		"||tracker.com^$third-party",
		"||tracker.com/adserv/^$third-party",
		"||tracker.com/collect^",
		"@@||cdn.com^",
		"||tracker.com^$domain=a.com|~b.com",
	}
	for _, r := range memoizable {
		if !parse(r).Memoizable() {
			t.Errorf("rule %q should be memoizable", r)
		}
	}
	notMemoizable := []string{
		"/banner/ads/",                // generic: scans the whole URL
		"|https://tracker.com/x",      // start anchor
		"||tracker.com/a*track",       // wildcard tail can match the query
		"||tracker.com/collect?tid=^", // pattern reads the query
		"||tracker.com/pixel|",        // end anchor depends on the query
		"||tracker.com/^sync",         // ^ mid-token can bridge into query
	}
	for _, r := range notMemoizable {
		if parse(r).Memoizable() {
			t.Errorf("rule %q must not be memoizable", r)
		}
	}
	// The generated synthetic lists must stay on the fast path.
	g := webgraph.Build(rand.New(rand.NewSource(1)), webgraph.Config{}.Scale(0.05))
	elText, epText := Generate(rand.New(rand.NewSource(2)), g, Coverage{})
	el := parse(elText)
	ep := parse(epText)
	if !el.Memoizable() || !ep.Memoizable() {
		t.Error("generated easylist/easyprivacy must be memoizable")
	}
}
