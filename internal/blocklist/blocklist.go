// Package blocklist implements an AdBlockPlus-compatible filter list
// engine: parsing of the easylist/easyprivacy rule syntax the paper's
// classification stage 1 relies on (§3.2), and matching of request URLs
// against compiled rules. Supported syntax covers what those two lists
// actually use for network rules: ||domain anchors, |start anchors,
// plain substring patterns, the * wildcard, the ^ separator, @@
// exceptions, ! comments, and the $third-party / $domain= options.
package blocklist

import (
	"fmt"
	"strings"

	"crossborder/internal/webgraph"
)

// Rule is one compiled filter rule.
type Rule struct {
	// Raw is the original rule text.
	Raw string
	// Exception marks @@ allow rules.
	Exception bool
	// domainAnchor holds the hostname after || ("" if the rule is not
	// domain-anchored).
	domainAnchor string
	// startAnchor marks a leading | (exact URL start).
	startAnchor bool
	// endAnchor marks a trailing | (exact URL end).
	endAnchor bool
	// tokens is the pattern split on *; consecutive tokens must appear in
	// order. A token may end with ^ meaning a separator must follow.
	tokens []string
	// thirdParty restricts the rule to third-party requests when 1, to
	// first-party when -1; 0 means no restriction.
	thirdParty int8
	// includeDomains / excludeDomains implement $domain=a.com|~b.com.
	includeDomains []string
	excludeDomains []string
}

// ParseError reports an unparsable rule line.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("blocklist: line %d %q: %s", e.Line, e.Text, e.Msg)
}

// List is a compiled filter list.
type List struct {
	Name  string
	rules []Rule
	// domainIndex maps a ||-anchored hostname to rule indices, the fast
	// path covering the vast majority of easylist rules.
	domainIndex map[string][]int
	// generic holds indices of rules without a domain anchor.
	generic []int
}

// Parse compiles filter list text. Unparsable lines are skipped and
// reported in errs; the list is still usable (this matches how ad blockers
// treat unknown syntax).
func Parse(name, text string) (*List, []error) {
	l := &List{Name: name, domainIndex: make(map[string][]int)}
	var errs []error
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
			continue // comment / header
		}
		if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
			continue // element-hiding rules don't classify network requests
		}
		r, err := compileRule(line)
		if err != nil {
			errs = append(errs, &ParseError{Line: i + 1, Text: line, Msg: err.Error()})
			continue
		}
		idx := len(l.rules)
		l.rules = append(l.rules, r)
		if r.domainAnchor != "" {
			l.domainIndex[r.domainAnchor] = append(l.domainIndex[r.domainAnchor], idx)
		} else {
			l.generic = append(l.generic, idx)
		}
	}
	return l, errs
}

// NumRules returns the number of compiled rules.
func (l *List) NumRules() int { return len(l.rules) }

// Memoizable reports whether every rule's outcome is fully determined by
// the request hostname, the URL path up to (excluding) the query string,
// and the page domain. When true, callers may cache Match verdicts per
// (FQDN, path-sans-query, page-domain) — the classification fast path.
//
// The check is conservative: it requires each rule to be domain-anchored
// (generic substring and |-anchored rules scan the whole URL, query
// included), wildcard-free, not end-anchored, with no query characters in
// the pattern and ^ only in final position (a trailing ^ matches the char
// right after the path prefix, which is a separator — '?', '/' or URL end
// — regardless of the query string).
func (l *List) Memoizable() bool {
	for i := range l.rules {
		r := &l.rules[i]
		if r.domainAnchor == "" || r.endAnchor || len(r.tokens) > 1 {
			return false
		}
		if len(r.tokens) == 1 {
			tok := r.tokens[0]
			if strings.ContainsAny(tok, "?=&") {
				return false
			}
			if c := strings.IndexByte(tok, '^'); c >= 0 && c != len(tok)-1 {
				return false
			}
		}
	}
	return true
}

func compileRule(line string) (Rule, error) {
	r := Rule{Raw: line}
	if strings.HasPrefix(line, "@@") {
		r.Exception = true
		line = line[2:]
	}
	// Split off options.
	if i := strings.LastIndexByte(line, '$'); i >= 0 && !strings.Contains(line[i:], "/") {
		opts := strings.Split(line[i+1:], ",")
		line = line[:i]
		for _, o := range opts {
			switch {
			case o == "third-party":
				r.thirdParty = 1
			case o == "~third-party":
				r.thirdParty = -1
			case strings.HasPrefix(o, "domain="):
				for _, d := range strings.Split(o[len("domain="):], "|") {
					if strings.HasPrefix(d, "~") {
						r.excludeDomains = append(r.excludeDomains, strings.ToLower(d[1:]))
					} else if d != "" {
						r.includeDomains = append(r.includeDomains, strings.ToLower(d))
					}
				}
			case o == "script", o == "image", o == "xmlhttprequest", o == "subdocument",
				o == "popup", o == "object", o == "stylesheet", o == "websocket", o == "other":
				// Resource-type options are accepted and ignored: the
				// simulator does not distinguish resource types.
			default:
				return Rule{}, fmt.Errorf("unsupported option %q", o)
			}
		}
	}
	if line == "" {
		return Rule{}, fmt.Errorf("empty pattern")
	}
	if strings.HasPrefix(line, "||") {
		rest := line[2:]
		// Domain anchor runs until the first separator-ish char.
		end := strings.IndexAny(rest, "/^*?")
		if end == -1 {
			r.domainAnchor = strings.ToLower(rest)
			rest = ""
		} else {
			r.domainAnchor = strings.ToLower(rest[:end])
			rest = rest[end:]
		}
		if r.domainAnchor == "" {
			return Rule{}, fmt.Errorf("|| with empty domain")
		}
		line = rest
	} else if strings.HasPrefix(line, "|") {
		r.startAnchor = true
		line = line[1:]
	}
	if strings.HasSuffix(line, "|") {
		r.endAnchor = true
		line = line[:len(line)-1]
	}
	r.tokens = strings.Split(line, "*")
	return r, nil
}

// isSeparator implements ABP's ^ placeholder: any character that is not a
// letter, digit, or one of _ - . %, or the end of the URL.
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_', c == '-', c == '.', c == '%':
		return false
	}
	return true
}

// matchTokens checks that tokens appear in order in s starting at pos;
// anchored requires the first token at exactly pos.
func matchTokens(s string, pos int, tokens []string, anchored, endAnchor bool) bool {
	for ti, tok := range tokens {
		if tok == "" {
			anchored = false
			continue
		}
		idx := matchToken(s, pos, tok, anchored)
		if idx < 0 {
			return false
		}
		pos = idx
		anchored = false
		if endAnchor && ti == len(tokens)-1 {
			// Last literal must end at end of URL (a trailing ^ in the
			// token still allows the virtual end-separator).
			if pos != len(s) && !(strings.HasSuffix(tok, "^") && pos == len(s)) {
				return false
			}
		}
	}
	return true
}

// matchToken finds token tok (which may contain ^ separators) in s at or
// after pos, returning the index just past the match, or -1.
func matchToken(s string, pos int, tok string, anchored bool) int {
	for start := pos; start <= len(s); start++ {
		if anchored && start > pos {
			return -1
		}
		end, ok := matchHere(s, start, tok)
		if ok {
			return end
		}
	}
	return -1
}

func matchHere(s string, pos int, tok string) (int, bool) {
	i := pos
	for j := 0; j < len(tok); j++ {
		if tok[j] == '^' {
			if i == len(s) {
				// ^ may match the end of the URL; valid only if it is the
				// last char of the token.
				if j == len(tok)-1 {
					return i, true
				}
				return 0, false
			}
			if !isSeparator(s[i]) {
				return 0, false
			}
			i++
			continue
		}
		if i >= len(s) || lower(s[i]) != lower(tok[j]) {
			return 0, false
		}
		i++
	}
	return i, true
}

func lower(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

// Request carries the fields a network filter can see.
type Request struct {
	// URL is the full request URL.
	URL string
	// PageDomain is the registrable domain of the page initiating the
	// request (the first party).
	PageDomain string
}

// isThirdParty reports whether the request crosses registrable domains.
func (q Request) isThirdParty() bool {
	host := webgraph.Hostname(q.URL)
	return webgraph.ETLDPlusOne(host) != webgraph.ETLDPlusOne(q.PageDomain)
}

// ruleMatches applies one compiled rule.
func (l *List) ruleMatches(r *Rule, q Request, host string) bool {
	if r.thirdParty == 1 && !q.isThirdParty() {
		return false
	}
	if r.thirdParty == -1 && q.isThirdParty() {
		return false
	}
	if len(r.includeDomains) > 0 {
		ok := false
		page := strings.ToLower(q.PageDomain)
		for _, d := range r.includeDomains {
			if page == d || strings.HasSuffix(page, "."+d) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, d := range r.excludeDomains {
		page := strings.ToLower(q.PageDomain)
		if page == d || strings.HasSuffix(page, "."+d) {
			return false
		}
	}
	url := q.URL
	if r.domainAnchor != "" {
		if host != r.domainAnchor && !strings.HasSuffix(host, "."+r.domainAnchor) {
			return false
		}
		// Pattern continues from just after the hostname in the URL.
		hostIdx := strings.Index(strings.ToLower(url), host)
		if hostIdx < 0 {
			return false
		}
		rest := hostIdx + len(host)
		return matchTokens(url, rest, r.tokens, true, r.endAnchor)
	}
	if r.startAnchor {
		return matchTokens(url, 0, r.tokens, true, r.endAnchor)
	}
	return matchTokens(url, 0, r.tokens, false, r.endAnchor)
}

// Match reports whether the request is blocked by the list: some block
// rule matches and no exception rule does.
func (l *List) Match(q Request) bool {
	host := webgraph.Hostname(q.URL)
	matched := false

	tryRule := func(idx int) bool {
		r := &l.rules[idx]
		if l.ruleMatches(r, q, host) {
			if r.Exception {
				return true // exception wins immediately
			}
			matched = true
		}
		return false
	}

	// Domain-indexed rules for the host and its parent domains.
	h := host
	for {
		for _, idx := range l.domainIndex[h] {
			if tryRule(idx) {
				return false
			}
		}
		dot := strings.IndexByte(h, '.')
		if dot < 0 {
			break
		}
		h = h[dot+1:]
	}
	for _, idx := range l.generic {
		if tryRule(idx) {
			return false
		}
	}
	return matched
}

// MatchAny reports whether any of the lists matches the request, naming
// the first list that does.
func MatchAny(q Request, lists ...*List) (string, bool) {
	for _, l := range lists {
		if l.Match(q) {
			return l.Name, true
		}
	}
	return "", false
}
