// Package browser simulates the measurement study's user population: real
// users browsing the synthetic web with the measurement extension
// installed. Each page visit fully renders the publisher's embeds — direct
// tracker tags, RTB ad cascades with cookie syncing, widgets and CDN
// assets — resolves every contacted FQDN through the DNS substrate, and
// emits one Event per third-party request, exactly the tuple the paper's
// Chrome extension logged: (first-party domain, third-party URL, serving
// IP), §3.1.
package browser

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/rtb"
	"crossborder/internal/webgraph"
)

// User is one extension-running participant.
type User struct {
	ID      int
	Country geodata.Country
}

// Event is one captured third-party request.
type Event struct {
	User      *User
	Publisher *webgraph.Publisher
	// Call describes the request (FQDN, URL shape, referrer, keyword).
	Call rtb.Call
	// IP is the server that answered, as the extension reads it from the
	// response (§3.1: the browser API reports the final serving IP).
	IP netsim.IP
	// At is the request time.
	At time.Time
	// HTTPS mirrors §7.2's observation that ~83% of tracking traffic is
	// already encrypted.
	HTTPS bool
}

// Sink consumes the capture stream. OnVisit precedes the OnRequest calls
// of that visit. Each Sink instance is driven from exactly one goroutine:
// the parallel pipeline hands every worker its own Sink (a shard), and
// every user's full event stream lands in a single shard.
type Sink interface {
	OnVisit(u *User, p *webgraph.Publisher, at time.Time)
	OnRequest(ev Event)
}

// CountryCount declares part of the user population.
type CountryCount struct {
	Country geodata.Country
	Users   int
}

// DefaultPopulation reproduces the paper's 350-user geography: 183 users
// in EU28 countries, 86 in South America, 23 in the rest of Europe, 22 in
// Africa, 20 in Asia and 16 in North America (§4, Fig 6 and Fig 8).
func DefaultPopulation() []CountryCount {
	return []CountryCount{
		// EU28: 183 users, Spain the largest base (Fig 8).
		{"ES", 40}, {"GB", 25}, {"DE", 20}, {"FR", 15}, {"IT", 12},
		{"PL", 10}, {"GR", 10}, {"RO", 8}, {"HU", 8}, {"BG", 7},
		{"CY", 6}, {"DK", 6}, {"BE", 5}, {"CZ", 4}, {"PT", 3},
		{"SE", 2}, {"AT", 2},
		// South America: 86.
		{"BR", 40}, {"AR", 25}, {"CL", 11}, {"CO", 10},
		// Rest of Europe: 23.
		{"CH", 8}, {"RU", 8}, {"RS", 4}, {"TR", 3},
		// Africa: 22.
		{"ZA", 8}, {"TN", 6}, {"EG", 5}, {"NG", 3},
		// Asia: 20.
		{"IN", 6}, {"JP", 5}, {"MY", 4}, {"TH", 3}, {"TW", 2},
		// North America: 16.
		{"US", 10}, {"CA", 4}, {"MX", 2},
	}
}

// MakeUsers expands population declarations into user records.
func MakeUsers(pop []CountryCount) []*User {
	var users []*User
	id := 0
	for _, cc := range pop {
		for i := 0; i < cc.Users; i++ {
			users = append(users, &User{ID: id, Country: cc.Country})
			id++
		}
	}
	return users
}

// Profile adjusts one user's simulated behaviour; the zero value is
// the paper's baseline desktop user and changes nothing — not a single
// extra RNG draw — so populations that assign zero profiles simulate
// byte-identically to populations with no profiles at all.
type Profile struct {
	// ResolveCountry, when non-empty, is the country the DNS substrate
	// sees for this user's queries instead of their home country: a VPN
	// exit or a roaming SIM. Classification and the flow analysis keep
	// the true home country as the origin, so VPN users are exactly the
	// measurement the paper could not de-confound.
	ResolveCountry geodata.Country
	// VisitFactor scales the user's drawn visit count (0 means 1.0).
	// Mobile-heavy users browse fewer full page loads per study.
	VisitFactor float64
	// BlockShare is the probability that a direct tracker tag is never
	// fetched — a content-blocker install. Only first-party-context
	// tracker tags are suppressed; RTB cascades behind ad slots still
	// run (blockers kill the tag, not the auction the publisher runs
	// server-side).
	BlockShare float64
}

// Config tunes the browsing simulation.
type Config struct {
	// Start and End bound the measurement window (defaults: Sep 1 2017 to
	// Jan 15 2018, the paper's four and a half months).
	Start, End time.Time
	// VisitsPerUser is the mean number of page visits per user
	// (default 219, reproducing 76.5K first-party requests for 350 users).
	VisitsPerUser int
	// TrackerRepeats bounds how many requests one direct tracker tag
	// fires per visit (default 2..5).
	TrackerRepeatsMin, TrackerRepeatsMax int
	// CreativeAssets bounds the extra ad-asset fetches per won auction
	// (default 2..6).
	CreativeAssetsMin, CreativeAssetsMax int
	// WidgetAssets bounds asset fetches per widget embed (default 3..8).
	WidgetAssetsMin, WidgetAssetsMax int
	// CDNAssets bounds asset fetches per CDN embed (default 8..24).
	CDNAssetsMin, CDNAssetsMax int
	// HTTPSShare is the fraction of requests over TLS (default 0.83).
	HTTPSShare float64
	// ProfileFor, when non-nil, assigns each user a behaviour profile.
	// It must be a pure function of the user (scenario packs derive it
	// from a hash of the pack seed and user ID): it may be called from
	// any worker, any number of times, and must always return the same
	// profile for the same user. A nil hook — or one returning zero
	// profiles — leaves the simulation byte-identical to the baseline.
	ProfileFor func(u *User) Profile
	// RTB tunes the auction cascades.
	RTB rtb.Config
}

func (c Config) withDefaults() Config {
	if c.Start.IsZero() {
		c.Start = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	}
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.VisitsPerUser, 219)
	def(&c.TrackerRepeatsMin, 2)
	def(&c.TrackerRepeatsMax, 5)
	def(&c.CreativeAssetsMin, 2)
	def(&c.CreativeAssetsMax, 6)
	def(&c.WidgetAssetsMin, 3)
	def(&c.WidgetAssetsMax, 8)
	def(&c.CDNAssetsMin, 8)
	def(&c.CDNAssetsMax, 24)
	if c.HTTPSShare == 0 {
		c.HTTPSShare = 0.83
	}
	return c
}

// Simulator drives the population over the synthetic web.
type Simulator struct {
	cfg      Config
	graph    *webgraph.Graph
	resolver *dns.Server
	auction  *rtb.Auction
	pubPick  *weightedPicker
}

// NewSimulator wires a simulator. The resolver must have every tracking
// and widget FQDN registered.
func NewSimulator(graph *webgraph.Graph, resolver *dns.Server, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	return &Simulator{
		cfg:      cfg,
		graph:    graph,
		resolver: resolver,
		auction:  rtb.NewAuction(graph, cfg.RTB),
		pubPick:  newWeightedPicker(graph.Publishers),
	}
}

// UserSeed derives the seed of one user's private RNG stream from the
// study seed via a splitmix64-style finalizer. Every user browses on an
// independent stream, so the simulated event sequence of a user — and
// therefore the merged dataset — is invariant to worker count and
// scheduling order: stream splitting is what makes the parallel pipeline
// bit-for-bit reproducible.
func UserSeed(seed int64, userID int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(userID)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run simulates every user's browsing on one goroutine and streams events
// into the sinks. Each user browses on the private stream UserSeed(seed,
// ID), so Run produces, user for user, exactly the events RunWorkers
// produces at any worker count.
func (s *Simulator) Run(seed int64, users []*User, sinks ...Sink) {
	_ = s.RunContext(context.Background(), seed, users, nil, sinks...)
}

// RunContext is Run with cancellation and a completion hook: the context
// is checked before every page visit, and onUser (if non-nil) is invoked
// after each user finishes with the cumulative count of completed users.
// Returns ctx.Err() if cancelled, nil otherwise.
func (s *Simulator) RunContext(ctx context.Context, seed int64, users []*User, onUser func(done int), sinks ...Sink) error {
	sc := newScratch()
	for i, u := range users {
		if err := s.runUser(ctx, u, seed, sinks, sc); err != nil {
			return err
		}
		if onUser != nil {
			onUser(i + 1)
		}
	}
	return nil
}

// RunWorkers fans the population out over a pool of workers (0 or
// negative means runtime.GOMAXPROCS). sinksFor is called once per worker,
// from the caller's goroutine, and returns the sinks that worker drives;
// every user's full visit/request stream is delivered to exactly one
// worker's sinks. Per-user RNG streams make the union of all shards
// independent of worker count and of which worker picked up which user.
func (s *Simulator) RunWorkers(seed int64, users []*User, workers int, sinksFor func(worker int) []Sink) {
	_ = s.RunWorkersContext(context.Background(), seed, users, workers, sinksFor, nil)
}

// RunWorkersContext is RunWorkers with cancellation and progress. Every
// worker checks the context before each page visit and drains promptly on
// cancellation; RunWorkersContext returns only after all workers have
// exited, so no goroutine outlives the call. onUser (if non-nil) is
// invoked after each finished user with the cumulative completion count;
// it may be called concurrently from different workers and must be
// goroutine-safe. Returns ctx.Err() if cancelled, nil otherwise.
func (s *Simulator) RunWorkersContext(ctx context.Context, seed int64, users []*User, workers int, sinksFor func(worker int) []Sink, onUser func(done int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if sinksFor == nil {
		sinksFor = func(int) []Sink { return nil }
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(users) {
		workers = len(users)
	}
	if workers <= 1 {
		return s.RunContext(ctx, seed, users, onUser, sinksFor(0)...)
	}
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sinks := sinksFor(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(users) {
					return
				}
				if err := s.runUser(ctx, users[i], seed, sinks, sc); err != nil {
					return
				}
				if onUser != nil {
					onUser(int(done.Add(1)))
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// scratch is per-worker reusable state, so the per-visit hot path does
// not allocate a DNS cache map and an auction slice for every page.
type scratch struct {
	dnsCache map[string]netsim.IP
	calls    []rtb.Call
}

func newScratch() *scratch {
	return &scratch{dnsCache: make(map[string]netsim.IP, 64)}
}

// runUser replays one user's whole browsing study on their private
// stream. The context is checked before every visit so cancellation
// propagates mid-user; a partially captured user is fine because the
// whole dataset is discarded on error.
func (s *Simulator) runUser(ctx context.Context, u *User, seed int64, sinks []Sink, sc *scratch) error {
	rng := rand.New(rand.NewSource(UserSeed(seed, u.ID)))
	var prof Profile
	if s.cfg.ProfileFor != nil {
		prof = s.cfg.ProfileFor(u)
	}
	visits := s.visitCount(rng)
	if prof.VisitFactor > 0 {
		visits = int(float64(visits) * prof.VisitFactor)
		if visits < 1 {
			visits = 1
		}
	}
	for v := 0; v < visits; v++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.visit(rng, u, prof, sinks, sc)
	}
	return nil
}

// visitCount draws the number of visits for one user around the mean.
func (s *Simulator) visitCount(rng *rand.Rand) int {
	mean := float64(s.cfg.VisitsPerUser)
	n := int(mean/2 + rng.Float64()*mean)
	if n < 1 {
		n = 1
	}
	return n
}

// visit renders one page.
func (s *Simulator) visit(rng *rand.Rand, u *User, prof Profile, sinks []Sink, sc *scratch) {
	cfg := s.cfg
	p := s.pubPick.pick(rng)
	at := cfg.Start.Add(time.Duration(rng.Int63n(int64(cfg.End.Sub(cfg.Start)))))
	for _, sk := range sinks {
		sk.OnVisit(u, p, at)
	}

	// The resolver sees the VPN exit / roaming country when the profile
	// sets one; every captured Event still carries the true home user.
	resolveCountry := u.Country
	if prof.ResolveCountry != "" {
		resolveCountry = prof.ResolveCountry
	}

	// Per-visit DNS cache: repeated requests to one FQDN reuse the answer,
	// like a real browser inside one TTL.
	cache := sc.dnsCache
	clear(cache)
	emit := func(call rtb.Call) {
		ip, ok := cache[call.FQDN]
		if !ok {
			resolved, err := s.resolver.Resolve(rng, call.FQDN, resolveCountry, at)
			if err != nil {
				return // dead embed; the extension never sees a request
			}
			ip = resolved
			cache[call.FQDN] = ip
		}
		ev := Event{
			User:      u,
			Publisher: p,
			Call:      call,
			IP:        ip,
			At:        at,
			HTTPS:     rng.Float64() < cfg.HTTPSShare,
		}
		for _, sk := range sinks {
			sk.OnRequest(ev)
		}
	}

	between := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }

	// 1. Direct tracker tags (first-party context, referrer = page).
	// The BlockShare coin draws only for users with a blocker profile,
	// so baseline users consume exactly the baseline draw sequence.
	for _, svc := range p.DirectTrackers {
		if prof.BlockShare > 0 && rng.Float64() < prof.BlockShare {
			continue
		}
		for i, n := 0, between(cfg.TrackerRepeatsMin, cfg.TrackerRepeatsMax); i < n; i++ {
			emit(rtb.DirectTrackerCall(rng, svc))
		}
	}

	// 2. Ad slots: full RTB cascade plus creative asset fetches.
	for _, adNet := range p.AdSlots {
		calls := s.auction.RunAppend(rng, adNet, sc.calls[:0])
		sc.calls = calls[:0]
		for _, c := range calls {
			emit(c)
		}
		if len(calls) > 0 {
			last := calls[len(calls)-1]
			for i, n := 0, between(cfg.CreativeAssetsMin, cfg.CreativeAssetsMax); i < n; i++ {
				asset := rtb.Call{
					Service: last.Service,
					FQDN:    last.FQDN,
					Path:    assetPath(rng),
					HasArgs: false,
					RefFQDN: last.FQDN,
				}
				emit(asset)
			}
		}
	}

	// 3. Widgets and CDNs (clean traffic).
	for _, svc := range p.Widgets {
		for i, n := 0, between(cfg.WidgetAssetsMin, cfg.WidgetAssetsMax); i < n; i++ {
			emit(rtb.WidgetCall(rng, svc))
		}
	}
	for _, svc := range p.CDNs {
		for i, n := 0, between(cfg.CDNAssetsMin, cfg.CDNAssetsMax); i < n; i++ {
			emit(rtb.WidgetCall(rng, svc))
		}
	}
}

var assetPaths = []string{"/img/banner1.jpg", "/img/banner2.jpg", "/vid/preroll.mp4", "/fonts/ad.woff", "/js/render.js"}

func assetPath(rng *rand.Rand) string {
	return assetPaths[rng.Intn(len(assetPaths))]
}

// weightedPicker samples publishers proportionally to popularity weight.
type weightedPicker struct {
	pubs []*webgraph.Publisher
	cum  []float64
}

func newWeightedPicker(pubs []*webgraph.Publisher) *weightedPicker {
	w := &weightedPicker{pubs: pubs, cum: make([]float64, len(pubs))}
	var total float64
	for i, p := range pubs {
		total += p.Weight
		w.cum[i] = total
	}
	return w
}

func (w *weightedPicker) pick(rng *rand.Rand) *webgraph.Publisher {
	x := rng.Float64() * w.cum[len(w.cum)-1]
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return w.pubs[lo]
}
