package browser

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/webgraph"
)

// collector is a Sink that accumulates everything.
type collector struct {
	visits   int
	events   []Event
	pubSeen  map[string]bool
	fqdnSeen map[string]bool
}

func newCollector() *collector {
	return &collector{pubSeen: map[string]bool{}, fqdnSeen: map[string]bool{}}
}

func (c *collector) OnVisit(u *User, p *webgraph.Publisher, at time.Time) {
	c.visits++
	c.pubSeen[p.Domain] = true
}

func (c *collector) OnRequest(ev Event) {
	c.events = append(c.events, ev)
	c.fqdnSeen[ev.Call.FQDN] = true
}

// testRig builds a small graph and a DNS server covering all its FQDNs.
func testRig(t *testing.T, seed int64) (*webgraph.Graph, *dns.Server) {
	t.Helper()
	g := webgraph.Build(rand.New(rand.NewSource(seed)), webgraph.Config{}.Scale(0.04))
	srv := dns.NewServer(nil)
	start := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	countries := []geodata.Country{"US", "DE", "NL", "GB", "IE", "FR"}
	ipCounter := uint32(0x20000000)
	for i, f := range allFQDNs(g) {
		var servers []dns.ServerIP
		for k := 0; k < 2; k++ {
			servers = append(servers, dns.ServerIP{
				IP:      netsim.IP(ipCounter),
				Country: countries[(i+k)%len(countries)],
				From:    start, To: end,
			})
			ipCounter++
		}
		srv.Register(f, "org", dns.PolicyNearest, 300*time.Second, servers)
	}
	return g, srv
}

func allFQDNs(g *webgraph.Graph) []string {
	var out []string
	for _, s := range g.Services {
		out = append(out, s.FQDNs...)
	}
	return out
}

func TestDefaultPopulation(t *testing.T) {
	pop := DefaultPopulation()
	users := MakeUsers(pop)
	if len(users) != 350 {
		t.Fatalf("users = %d, want 350 (Table 1)", len(users))
	}
	byCont := map[geodata.Continent]int{}
	for _, u := range users {
		byCont[geodata.ContinentOf(u.Country)]++
	}
	if byCont[geodata.EU28] != 183 {
		t.Errorf("EU28 users = %d, want 183 (§4.1)", byCont[geodata.EU28])
	}
	if byCont[geodata.SouthAmerica] != 86 {
		t.Errorf("S.America users = %d, want 86", byCont[geodata.SouthAmerica])
	}
	if byCont[geodata.RestOfEurope] != 23 || byCont[geodata.Africa] != 22 ||
		byCont[geodata.Asia] != 20 || byCont[geodata.NorthAmerica] != 16 {
		t.Errorf("continent mix = %v", byCont)
	}
	// IDs are sequential and unique.
	for i, u := range users {
		if u.ID != i {
			t.Fatalf("user %d has ID %d", i, u.ID)
		}
	}
}

func TestSimulationProducesEvents(t *testing.T) {
	g, srv := testRig(t, 1)
	sim := NewSimulator(g, srv, Config{VisitsPerUser: 10})
	users := MakeUsers([]CountryCount{{"DE", 3}, {"ES", 2}})
	col := newCollector()
	sim.Run(2, users, col)

	if col.visits == 0 {
		t.Fatal("no visits")
	}
	if len(col.events) == 0 {
		t.Fatal("no events")
	}
	perVisit := float64(len(col.events)) / float64(col.visits)
	if perVisit < 20 || perVisit > 250 {
		t.Errorf("requests per visit = %.1f, want realistic page volume", perVisit)
	}
	// Every event has a resolved IP and a valid time window.
	start := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	for _, ev := range col.events {
		if ev.IP == 0 {
			t.Fatal("event without IP")
		}
		if ev.At.Before(start) || ev.At.After(end) {
			t.Fatalf("event time %v outside window", ev.At)
		}
		if ev.User == nil || ev.Publisher == nil {
			t.Fatal("event missing user/publisher")
		}
	}
}

func TestSimulationDeterministic(t *testing.T) {
	g, srv := testRig(t, 3)
	users := MakeUsers([]CountryCount{{"DE", 2}})
	run := func() []Event {
		sim := NewSimulator(g, srv, Config{VisitsPerUser: 5})
		col := newCollector()
		sim.Run(7, users, col)
		return col.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Call.FQDN != b[i].Call.FQDN || a[i].IP != b[i].IP {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestHTTPSShare(t *testing.T) {
	g, srv := testRig(t, 4)
	sim := NewSimulator(g, srv, Config{VisitsPerUser: 30})
	users := MakeUsers([]CountryCount{{"DE", 3}})
	col := newCollector()
	sim.Run(5, users, col)
	https := 0
	for _, ev := range col.events {
		if ev.HTTPS {
			https++
		}
	}
	share := float64(https) / float64(len(col.events))
	if share < 0.75 || share > 0.92 {
		t.Errorf("HTTPS share = %.3f, want ~0.83 (§7.2)", share)
	}
}

func TestTrafficMixTrackingDominates(t *testing.T) {
	// Fig 2: most third-party requests are ad/tracking related.
	g, srv := testRig(t, 6)
	sim := NewSimulator(g, srv, Config{VisitsPerUser: 40})
	users := MakeUsers([]CountryCount{{"DE", 5}})
	col := newCollector()
	sim.Run(8, users, col)
	tracking := 0
	for _, ev := range col.events {
		if ev.Call.Service.Role.IsTracking() {
			tracking++
		}
	}
	share := float64(tracking) / float64(len(col.events))
	if share < 0.45 || share > 0.80 {
		t.Errorf("tracking share = %.3f, want ~0.61 (4.4M/7.2M)", share)
	}
}

func TestPerVisitDNSCache(t *testing.T) {
	// Within one visit the same FQDN must resolve to one IP even under
	// PolicyRandom: the per-visit cache models browser DNS caching.
	g := webgraph.Build(rand.New(rand.NewSource(9)), webgraph.Config{}.Scale(0.04))
	srv := dns.NewServer(nil)
	start := time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	ip := uint32(0x30000000)
	for _, f := range allFQDNs(g) {
		srv.Register(f, "org", dns.PolicyRandom, time.Minute, []dns.ServerIP{
			{IP: netsim.IP(ip), Country: "US", From: start, To: end},
			{IP: netsim.IP(ip + 1), Country: "DE", From: start, To: end},
		})
		ip += 2
	}
	sim := NewSimulator(g, srv, Config{VisitsPerUser: 3})
	users := MakeUsers([]CountryCount{{"DE", 2}})

	type visitKey struct {
		visit int
		fqdn  string
	}
	seen := map[visitKey]netsim.IP{}
	visit := 0
	checker := &funcSink{
		onVisit: func(*User, *webgraph.Publisher, time.Time) { visit++ },
		onRequest: func(ev Event) {
			k := visitKey{visit, ev.Call.FQDN}
			if prev, ok := seen[k]; ok && prev != ev.IP {
				t.Fatalf("visit %d FQDN %s resolved to both %s and %s", visit, ev.Call.FQDN, prev, ev.IP)
			}
			seen[k] = ev.IP
		},
	}
	sim.Run(10, users, checker)
}

type funcSink struct {
	onVisit   func(*User, *webgraph.Publisher, time.Time)
	onRequest func(Event)
}

func (f *funcSink) OnVisit(u *User, p *webgraph.Publisher, at time.Time) { f.onVisit(u, p, at) }
func (f *funcSink) OnRequest(ev Event)                                   { f.onRequest(ev) }

// TestRunWorkersInvariance is the stream-splitting contract: the set of
// per-user event streams must be identical whatever the worker count,
// because every user browses on a private RNG stream derived from
// (seed, user ID).
func TestRunWorkersInvariance(t *testing.T) {
	g, srv := testRig(t, 13)
	users := MakeUsers([]CountryCount{{"DE", 4}, {"ES", 3}, {"BR", 2}})

	type evKey struct {
		fqdn  string
		ip    netsim.IP
		https bool
	}
	capture := func(workers int) map[int][]evKey {
		sim := NewSimulator(g, srv, Config{VisitsPerUser: 8})
		perUser := make(map[int][]evKey)
		var mu sync.Mutex
		sim.RunWorkers(21, users, workers, func(w int) []Sink {
			return []Sink{&funcSink{
				onVisit: func(*User, *webgraph.Publisher, time.Time) {},
				onRequest: func(ev Event) {
					k := evKey{ev.Call.FQDN, ev.IP, ev.HTTPS}
					mu.Lock()
					perUser[ev.User.ID] = append(perUser[ev.User.ID], k)
					mu.Unlock()
				},
			}}
		})
		return perUser
	}

	seq := capture(1)
	par := capture(3)
	if len(seq) != len(par) {
		t.Fatalf("user counts differ: %d vs %d", len(seq), len(par))
	}
	for id, evs := range seq {
		got := par[id]
		if len(got) != len(evs) {
			t.Fatalf("user %d: %d events sequential vs %d parallel", id, len(evs), len(got))
		}
		for i := range evs {
			if evs[i] != got[i] {
				t.Fatalf("user %d event %d differs: %+v vs %+v", id, i, evs[i], got[i])
			}
		}
	}
}

func TestUserSeedStreamsDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for id := 0; id < 10000; id++ {
		s := UserSeed(1, id)
		if prev, dup := seen[s]; dup {
			t.Fatalf("users %d and %d share stream seed %d", prev, id, s)
		}
		seen[s] = id
	}
	if UserSeed(1, 5) == UserSeed(2, 5) {
		t.Error("different study seeds must give a user different streams")
	}
}

func TestVisitCountScaling(t *testing.T) {
	g, srv := testRig(t, 11)
	sim := NewSimulator(g, srv, Config{VisitsPerUser: 100})
	users := MakeUsers([]CountryCount{{"DE", 20}})
	col := newCollector()
	sim.Run(12, users, col)
	mean := float64(col.visits) / float64(len(users))
	if mean < 60 || mean > 140 {
		t.Errorf("mean visits per user = %.1f, want ~100", mean)
	}
}
