package ingest

import (
	"fmt"
	"sync"

	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/experiments"
	"crossborder/internal/geodata"
	"crossborder/internal/scenario"
	"crossborder/internal/trackerdb"
)

// snapStore is the frozen read side of the live store at one epoch
// boundary. Wide chunks are per-chunk column views capped at the
// epoch's row count, sharing the live store's append-only columns;
// when the live store runs in compressed-resident mode, sealed chunks
// are instead shared as references to its immutable codec blocks and
// decode on read. Either way the mutable class column is replaced by
// frozen copies, and chunks untouched by an epoch reuse the previous
// snapshot's class slices (copy-on-write), so the per-epoch snapshot
// cost is proportional to what the epoch changed, not to the dataset
// size — and a compressed store's cold epochs stay compressed in every
// snapshot that references them.
type snapChunk struct {
	wide  classify.Chunk // resident view; used when block is nil
	block []byte         // compressed sealed block shared with the live store
	rows  int
}

type snapStore struct {
	chunks    []snapChunk
	classes   [][]classify.Class
	zones     []*classify.ZoneMap
	fp        classify.Footprint
	hasBlocks bool
	chunkRows int
	n         int
}

var _ classify.Store = (*snapStore)(nil)
var _ classify.BlockReader = (*snapStore)(nil)
var _ classify.ZoneMapped = (*snapStore)(nil)

func (st *snapStore) Len() int       { return st.n }
func (st *snapStore) NumChunks() int { return len(st.chunks) }
func (st *snapStore) ChunkRows() int { return st.chunkRows }

// Chunk returns the resident view for wide chunks (buf ignored, like
// the in-memory store) and decodes shared compressed blocks into buf,
// patching in the snapshot's frozen class column.
func (st *snapStore) Chunk(i int, buf *classify.Chunk) (*classify.Chunk, error) {
	sc := &st.chunks[i]
	if sc.block == nil {
		return &sc.wide, nil
	}
	if buf == nil {
		buf = &classify.Chunk{}
	}
	if err := classify.DecodeBlockInto(sc.block, sc.rows, buf); err != nil {
		return nil, fmt.Errorf("ingest: decode snapshot chunk %d: %w", i, err)
	}
	buf.Class = st.classes[i]
	return buf, nil
}

func (st *snapStore) Classes(i int) []classify.Class { return st.classes[i] }

// ScanCols implements classify.Store through the shared projection
// driver, so snapshot queries run the decode-free kernels over the
// very blocks the live store sealed.
func (st *snapStore) ScanCols(cols classify.ColSet, fn func(base int, pc *classify.ProjChunk)) {
	classify.ScanStoreCols(st, cols, fn)
}

// BlockBytes implements classify.BlockReader: sealed chunks share the
// live store's immutable blocks; wide epoch-tail chunks report nil.
func (st *snapStore) BlockBytes(i int, _ *[]byte) ([]byte, error) {
	return st.chunks[i].block, nil
}

// HasEncodedBlocks implements classify.BlockReader.
func (st *snapStore) HasEncodedBlocks() bool { return st.hasBlocks }

// ZoneMap implements classify.ZoneMapped.
func (st *snapStore) ZoneMap(i int) *classify.ZoneMap {
	if i < len(st.zones) {
		return st.zones[i]
	}
	return nil
}

// Footprint implements classify.Store (captured at snapshot build).
func (st *snapStore) Footprint() classify.Footprint { return st.fp }

// Close is a no-op: the snapshot borrows the live store's columns.
func (st *snapStore) Close() error { return nil }

// Snapshot is one immutable epoch boundary of the live dataset: the
// frozen row store, the interner/index tables as of the epoch, the
// incrementally maintained aggregates, and (lazily) a full experiments
// Suite over a scenario whose Dataset and Inventory are the snapshot's.
// Safe for concurrent use; the collector never mutates a published
// snapshot.
type Snapshot struct {
	epoch                 int
	ds                    *classify.Dataset
	stats                 classify.DatasetStats
	footprint             StoreFootprint
	history               []EpochStat
	truth, ipmap, maxmind *core.Analysis
	world                 *scenario.Scenario

	once  sync.Once
	suite *experiments.Suite
}

// StoreFootprint is the store-accounting block of /v1/stats: how much
// memory the row store occupies (resident wide columns vs compressed
// sealed blocks) against the raw-equivalent size of the same rows, plus
// the durability gauges — journal bytes not yet covered by a checkpoint
// and the size/outcome of the most recent checkpoint. Per-epoch row
// counts live in the epochs history alongside it. The WAL fields are
// zero on a snapshot from a memory-only collector or a merged fan-in
// view; the HTTP layer overlays them live for durable collectors.
type StoreFootprint struct {
	Rows                int    `json:"rows"`
	SealedChunks        int    `json:"sealed_chunks"`
	ResidentBytes       int64  `json:"resident_bytes"`
	CompressedBytes     int64  `json:"compressed_bytes"`
	RawEquivalentBytes  int64  `json:"raw_equivalent_bytes"`
	WALUncoveredBytes   int64  `json:"wal_uncovered_bytes"`
	LastCheckpointBytes int64  `json:"last_checkpoint_bytes"`
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
	// Per-column-encoding census of the sealed blocks: which schemes
	// cover how many column-rows and at what encoded cost, plus the
	// bytes spent on zone-map sections and the column-rows whose
	// payload additionally went through the LZ4 wrapper.
	PerScheme     []SchemeFootprint `json:"per_scheme,omitempty"`
	LZ4ColumnRows int64             `json:"lz4_column_rows,omitempty"`
	ZoneMapBytes  int64             `json:"zone_map_bytes,omitempty"`
}

// SchemeFootprint is one encoding scheme's share of the sealed blocks.
type SchemeFootprint struct {
	Scheme       string `json:"scheme"`
	ColumnRows   int64  `json:"column_rows"`
	EncodedBytes int64  `json:"encoded_bytes"`
}

// footprintOf converts the store's accounting to the /v1/stats block.
func footprintOf(st classify.Store) StoreFootprint {
	fp := st.Footprint()
	out := StoreFootprint{
		Rows:               fp.Rows,
		SealedChunks:       fp.SealedChunks,
		ResidentBytes:      fp.ResidentBytes,
		CompressedBytes:    fp.CompressedBytes,
		RawEquivalentBytes: fp.RawEquivalentBytes(),
		LZ4ColumnRows:      fp.Breakdown.LZ4Rows,
		ZoneMapBytes:       fp.Breakdown.ZoneMapBytes,
	}
	for s, rows := range fp.Breakdown.SchemeRows {
		if rows == 0 {
			continue
		}
		out.PerScheme = append(out.PerScheme, SchemeFootprint{
			Scheme:       classify.SchemeName(s),
			ColumnRows:   rows,
			EncodedBytes: fp.Breakdown.SchemeBytes[s],
		})
	}
	return out
}

// Footprint returns the live store's memory accounting as of this
// snapshot (the snapshot itself shares that storage by reference).
func (s *Snapshot) Footprint() StoreFootprint { return s.footprint }

// Epoch returns the epoch number (0 = nothing committed yet).
func (s *Snapshot) Epoch() int { return s.epoch }

// History returns the commit log up to this snapshot. The slice is an
// immutable prefix share; callers must not mutate it.
func (s *Snapshot) History() []EpochStat { return s.history }

// Rows returns the dataset row count at the epoch boundary.
func (s *Snapshot) Rows() int { return s.ds.Len() }

// Dataset returns the frozen dataset.
func (s *Snapshot) Dataset() *classify.Dataset { return s.ds }

// Stats returns the incrementally maintained Table 1 summary. It equals
// classify.ComputeStats over Dataset() (property-tested).
func (s *Snapshot) Stats() classify.DatasetStats { return s.stats }

// TruthAnalysis returns the incrementally merged ground-truth flow map.
func (s *Snapshot) TruthAnalysis() *core.Analysis { return s.truth }

// IPMapAnalysis returns the incrementally merged IPmap flow map (the
// paper's headline configuration).
func (s *Snapshot) IPMapAnalysis() *core.Analysis { return s.ipmap }

// MaxMindAnalysis returns the incrementally merged MaxMind flow map.
func (s *Snapshot) MaxMindAnalysis() *core.Analysis { return s.maxmind }

// Suite returns the experiments registry over this snapshot, built on
// first use: the tracker inventory compiles from the frozen dataset,
// and the three geolocation joins are seeded with the collector's
// incremental aggregates instead of rescanning. The suite caches each
// artifact, so repeated queries of one snapshot pay each experiment
// once.
func (s *Snapshot) Suite() *experiments.Suite {
	s.once.Do(func() {
		sc := *s.world
		sc.Dataset = s.ds
		sc.Inventory = trackerdb.Compile(s.ds, s.world.PDNS)
		s.suite = experiments.NewSuiteSeeded(&sc, s.truth, s.ipmap, s.maxmind)
	})
	return s.suite
}

// buildSnapshot freezes the live state into a Snapshot. Called with
// c.mu held (and once from NewCollector before the collector is
// shared). prev supplies class slices for chunks this epoch did not
// touch; chunks at or after prevRows/chunkRows (appended rows) and
// chunks listed in dirty (flipped rows) get fresh copies.
func (c *Collector) buildSnapshot(prev *Snapshot, prevRows int, dirty map[int]struct{}) *Snapshot {
	st := c.store
	live := c.merger.Dataset()
	numChunks := st.NumChunks()
	chunkRows := st.ChunkRows()
	firstDirty := prevRows / chunkRows

	var prevStore *snapStore
	if prev != nil {
		prevStore, _ = prev.ds.Store.(*snapStore)
	}
	sealed := 0
	if st.Compressed() {
		sealed = st.SealedBlocks()
	}
	chunks := make([]snapChunk, numChunks)
	classes := make([][]classify.Class, numChunks)
	zones := make([]*classify.ZoneMap, numChunks)
	for ci := 0; ci < numChunks; ci++ {
		changed := ci >= firstDirty
		if !changed && dirty != nil {
			_, changed = dirty[ci]
		}
		if !changed && prevStore != nil && ci < len(prevStore.classes) {
			classes[ci] = prevStore.classes[ci]
		} else {
			src := st.Classes(ci)
			cp := make([]classify.Class, len(src))
			copy(cp, src)
			classes[ci] = cp
		}
		if ci < sealed {
			// Sealed compressed chunk: share the immutable block (and
			// its zone map); the snapshot never pays wide-column memory
			// for it.
			chunks[ci] = snapChunk{block: st.Block(ci), rows: len(classes[ci])}
			zones[ci] = st.ZoneMap(ci)
			continue
		}
		// Wide chunk (every chunk of a wide store; the open tail of a
		// compressed one): the columns are append-only, so capped
		// slices shared with the live store stay frozen.
		lc := classify.MustChunk(st, ci, nil)
		rows := lc.Len()
		chunks[ci] = snapChunk{rows: rows, wide: classify.Chunk{
			URLHash:   lc.URLHash[:rows:rows],
			IP:        lc.IP[:rows:rows],
			FQDN:      lc.FQDN[:rows:rows],
			RefFQDN:   lc.RefFQDN[:rows:rows],
			Publisher: lc.Publisher[:rows:rows],
			User:      lc.User[:rows:rows],
			Day:       lc.Day[:rows:rows],
			Country:   lc.Country[:rows:rows],
			Flags:     lc.Flags[:rows:rows],
			Class:     classes[ci],
		}}
	}

	// The interner clone is cached: most steady-state epochs intern no
	// new FQDN (the vocabulary comes from the finite synthetic graph),
	// so the previous snapshot's clone is reusable whenever the length
	// is unchanged — the prefix of an interner is immutable.
	if c.internClone == nil || live.FQDNs.Len() != c.internCloneLen {
		c.internClone = live.FQDNs.Clone()
		c.internCloneLen = live.FQDNs.Len()
	}
	nPubs := len(live.Publishers)
	ds := &classify.Dataset{
		Store: &snapStore{
			chunks: chunks, classes: classes, zones: zones,
			fp: st.Footprint(), hasBlocks: sealed > 0,
			chunkRows: chunkRows, n: st.Len(),
		},
		FQDNs:      c.internClone,
		Countries:  append([]geodata.Country(nil), live.Countries...),
		Publishers: live.Publishers[:nPubs:nPubs],
		Visits:     live.Visits,
		Start:      live.Start,
	}
	return &Snapshot{
		epoch:     len(c.epochs),
		history:   c.epochs[:len(c.epochs):len(c.epochs)],
		ds:        ds,
		footprint: footprintOf(st),
		stats: classify.DatasetStats{
			Users:            len(c.userSet),
			FirstPartySites:  nPubs,
			FirstPartyVisits: live.Visits,
			ThirdPartyFQDNs:  len(c.fqdnSet),
			ThirdPartyReqs:   int64(st.Len()),
		},
		truth:   c.truthA.Clone(),
		ipmap:   c.ipmapA.Clone(),
		maxmind: c.maxmindA.Clone(),
		world:   c.world,
	}
}
