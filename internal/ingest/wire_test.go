package ingest

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleBatch() Batch {
	return Batch{
		User: 42,
		Seq:  1337,
		Events: []Event{
			{Kind: KindVisit, At: 1506816000, Publisher: "site1.com"},
			{
				Kind: KindRequest, At: 1506816001, Publisher: "site1.com",
				FQDN: "sync.dmp0001.com", Path: "/cookiesync?uid=5", RefFQDN: "x.adx.com",
				IP: 0x10203040, HTTPS: true, HasArgs: true,
			},
			{
				Kind: KindRequest, At: 1506816002, Publisher: "site1.com",
				FQDN: "static.cdn001.com", Path: "/lib/main.js",
			},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	want := sampleBatch()
	got, err := DecodeBinary(EncodeBinary(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
	// Empty batch round-trips too.
	empty := Batch{User: 7, Seq: 0}
	got, err = DecodeBinary(EncodeBinary(empty))
	if err != nil {
		t.Fatal(err)
	}
	if got.User != 7 || got.Seq != 0 || len(got.Events) != 0 {
		t.Fatalf("empty round trip: %+v", got)
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	want := sampleBatch()
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, want); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1+len(want.Events) {
		t.Fatalf("NDJSON has %d lines, want %d", n, 1+len(want.Events))
	}
	got, err := DecodeNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	valid := EncodeBinary(sampleBatch())
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE"),
		"magic only":    []byte("XBB1"),
		"truncated":     valid[:len(valid)-3],
		"trailing junk": append(append([]byte{}, valid...), 0xFF),
		// Header claims 1<<60 events with no bytes behind it.
		"forged count": append([]byte("XBB1"), 0x01, 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10),
	}
	for name, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}

func TestNDJSONDecodeRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"not json":     "hello\n",
		"missing tail": `{"user":1,"seq":0,"n":2}` + "\n" + `{"k":"v","at":1,"pub":"a.com"}` + "\n",
		"bad kind":     `{"user":1,"seq":0,"n":1}` + "\n" + `{"k":"x","at":1,"pub":"a.com"}` + "\n",
		"forged n":     `{"user":1,"seq":0,"n":99999999}` + "\n",
		"trailing data": `{"user":1,"seq":0,"n":1}` + "\n" +
			`{"k":"v","at":1,"pub":"a.com"}` + "\n" + `{"k":"v","at":2,"pub":"b.com"}` + "\n",
	}
	for name, data := range cases {
		if _, err := DecodeNDJSON(strings.NewReader(data)); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
}
