package ingest

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeBinary hardens the upload frame decoder: any byte string
// must either decode cleanly or return an error — never panic, and
// never allocate more than the input justifies (the event-count and
// length guards). Decoded batches must survive a re-encode/re-decode
// round trip, and valid encodings must decode to what was encoded.
//
// Run with: go test -fuzz FuzzDecodeBinary ./internal/ingest/
func FuzzDecodeBinary(f *testing.F) {
	// Seed corpus: valid batches of each shape plus canonical
	// truncations/corruptions, so coverage starts at the interesting
	// boundaries instead of random noise.
	seeds := [][]byte{
		EncodeBinary(sampleBatch()),
		EncodeBinary(Batch{User: 0, Seq: 0}),
		EncodeBinary(Batch{User: 1 << 30, Seq: 1 << 40, Events: []Event{
			{Kind: KindVisit, At: 0, Publisher: ""},
		}}),
		EncodeBinary(Batch{User: 3, Seq: 9, Events: []Event{
			{Kind: KindRequest, Publisher: "p.com", FQDN: "f.com", Path: "/", RefFQDN: ""},
		}}),
		[]byte("XBB1"),
		[]byte("XBB2\x00\x00\x00"),
		{},
		// Forged count: header says 2^52 events.
		append([]byte("XBB1"), 0x01, 0x00, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x10),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	if full := EncodeBinary(sampleBatch()); len(full) > 8 {
		f.Add(full[:len(full)/2]) // mid-frame truncation
		mut := append([]byte{}, full...)
		mut[6] ^= 0xFF // corrupt the header
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBinary(data)
		if err != nil {
			return
		}
		// Anything that decodes must re-encode canonically and decode
		// back to itself.
		enc := EncodeBinary(b)
		b2, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v", err)
		}
		if b.User != b2.User || b.Seq != b2.Seq || len(b.Events) != len(b2.Events) {
			t.Fatalf("round trip changed the batch: %+v vs %+v", b, b2)
		}
		if len(b.Events) > 0 && !reflect.DeepEqual(b.Events, b2.Events) {
			t.Fatal("round trip changed the events")
		}
		// The canonical encoding of what we decoded can differ from the
		// input only in uvarint padding; it must never be longer.
		if len(enc) > len(data) {
			t.Fatalf("canonical encoding (%d bytes) longer than accepted input (%d bytes)", len(enc), len(data))
		}
	})
}

// FuzzDecodeNDJSON gives the text decoder the same treatment.
func FuzzDecodeNDJSON(f *testing.F) {
	var buf bytes.Buffer
	EncodeNDJSON(&buf, sampleBatch())
	f.Add(buf.String())
	f.Add(`{"user":1,"seq":0,"n":1}` + "\n" + `{"k":"v","at":1,"pub":"a.com"}` + "\n")
	f.Add(`{"user":1,"seq":0,"n":9999999999}` + "\n")
	f.Add("")
	f.Add("{}")
	f.Fuzz(func(t *testing.T, data string) {
		b, err := DecodeNDJSON(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := EncodeNDJSON(&out, b); err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		b2, err := DecodeNDJSON(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if b.User != b2.User || b.Seq != b2.Seq || len(b.Events) != len(b2.Events) {
			t.Fatalf("round trip changed the batch")
		}
	})
}
