package ingest

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyRT injects the two transient failure shapes a retrying client
// must survive, on a deterministic schedule:
//   - "reset": the request never reaches the server (connection reset
//     on send) — nothing applied, the retry is the first delivery;
//   - "lost": the server processes the request but the response is
//     dropped (timeout) — the events ARE applied, and the retry must be
//     deduped by the sequence floors, not applied twice.
type flakyRT struct {
	next http.RoundTripper
	n    atomic.Int64

	resets atomic.Int64
	losses atomic.Int64
}

var errInjectedReset = errors.New("injected: connection reset by peer")
var errInjectedTimeout = errors.New("injected: timeout awaiting response headers")

func (f *flakyRT) RoundTrip(req *http.Request) (*http.Response, error) {
	k := f.n.Add(1)
	switch {
	case k%5 == 2:
		f.resets.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errInjectedReset
	case k%7 == 3:
		resp, err := f.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		f.losses.Add(1)
		return nil, errInjectedTimeout
	default:
		return f.next.RoundTrip(req)
	}
}

// TestClientRetryExactlyOnce: a full replay through a transport that
// keeps resetting connections and dropping responses ends with the
// collector holding each event exactly once — same rows, same stats as
// an unharassed run — with the lost-response re-sends visible only as
// duplicate counts.
func TestClientRetryExactlyOnce(t *testing.T) {
	world, evs, _ := rig(t)

	ref := NewCollector(world, Config{EpochEvents: 251, Workers: 2})
	defer ref.Close()
	want := ingestAll(t, ref, evs, 137)

	c := NewCollector(world, Config{EpochEvents: 251, Workers: 2})
	defer c.Close()
	ts := httptest.NewServer(NewServer(c))
	defer ts.Close()

	rt := &flakyRT{next: ts.Client().Transport}
	cl := &Client{
		Base:   ts.URL,
		HTTP:   &http.Client{Transport: rt},
		Binary: true,
		Retry:  &RetryPolicy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	stats, err := cl.Replay(evs, 137, 1)
	if err != nil {
		t.Fatalf("replay through flaky transport: %v", err)
	}
	if _, _, err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if rt.resets.Load() == 0 || rt.losses.Load() == 0 {
		t.Fatalf("injection did not exercise both failure shapes: resets=%d losses=%d",
			rt.resets.Load(), rt.losses.Load())
	}

	got := c.Snapshot()
	assertSameLive(t, got, want)
	// Exactly-once accounting: accepted events equal the stream total;
	// every lost-response re-send shows up as duplicates instead.
	if int(c.mEvents.Load()) != stats.Events {
		t.Fatalf("accepted %d events, stream has %d", c.mEvents.Load(), stats.Events)
	}
	if c.mDupEvents.Load() == 0 {
		t.Fatal("no duplicates recorded despite lost responses")
	}
}

// TestClientNoRetryFailsFast: without a policy the first injected fault
// surfaces immediately — retries are strictly opt-in.
func TestClientNoRetryFailsFast(t *testing.T) {
	world, evs, _ := rig(t)
	c := NewCollector(world, Config{EpochEvents: 1 << 20, Workers: 2})
	defer c.Close()
	ts := httptest.NewServer(NewServer(c))
	defer ts.Close()

	cl := &Client{
		Base:   ts.URL,
		HTTP:   &http.Client{Transport: &flakyRT{next: ts.Client().Transport}},
		Binary: true,
	}
	var failed bool
	for uid, stream := range evs {
		if _, err := cl.Upload(Batch{User: uid, Seq: 0, Events: stream[:1]}); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("no upload failed through the flaky transport without retries")
	}
}
