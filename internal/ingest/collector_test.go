package ingest

import (
	"errors"
	"sync"
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/scenario"
)

// The shared test rig: one world (no browsing study), the captured
// upload stream, and the batch-built reference scenario with identical
// params.
var (
	rigOnce  sync.Once
	rigWorld *scenario.Scenario
	rigEvs   map[int32][]Event
	rigBatch *scenario.Scenario
)

const (
	rigSeed   = 11
	rigScale  = 0.02
	rigVisits = 8
)

func rig(t *testing.T) (*scenario.Scenario, map[int32][]Event, *scenario.Scenario) {
	t.Helper()
	rigOnce.Do(func() {
		p := scenario.Params{Seed: rigSeed, Scale: rigScale, VisitsPerUser: rigVisits}
		rigWorld = scenario.BuildWorld(p)
		rigEvs = RecordSimulation(rigWorld, rigVisits, 3)
		rigBatch = scenario.Build(p)
	})
	return rigWorld, rigEvs, rigBatch
}

// ingestAll replays the recorded streams into c in user order with the
// given per-upload batch size, then flushes.
func ingestAll(t *testing.T, c *Collector, evs map[int32][]Event, batchSize int) *Snapshot {
	t.Helper()
	users := make([]int32, 0, len(evs))
	for uid := range evs {
		users = append(users, uid)
	}
	for i := range users {
		for j := i + 1; j < len(users); j++ {
			if users[j] < users[i] {
				users[i], users[j] = users[j], users[i]
			}
		}
	}
	for _, uid := range users {
		stream := evs[uid]
		for off := 0; off < len(stream); off += batchSize {
			hi := off + batchSize
			if hi > len(stream) {
				hi = len(stream)
			}
			if _, err := c.Ingest(Batch{User: uid, Seq: uint64(off), Events: stream[off:hi]}); err != nil {
				t.Fatalf("ingest user %d seq %d: %v", uid, off, err)
			}
		}
	}
	return c.Flush()
}

// TestReplayReconstructsBatchDataset: replaying the simulation's event
// stream through the collector — any epoch size, any worker count —
// reproduces the batch pipeline's dataset: identical rows, interner,
// publishers, countries and visits, and a classification identical at
// the level every aggregate reads (tracking set + ABP/semi split).
func TestReplayReconstructsBatchDataset(t *testing.T) {
	world, evs, batch := rig(t)
	want := batch.Dataset
	for _, cfg := range []Config{
		{EpochEvents: 251, Workers: 3, ChunkRows: 64},
		{EpochEvents: 1 << 20, Workers: 1},
		{EpochEvents: 251, Workers: 3, ChunkRows: 64, Compress: true},
	} {
		c := NewCollector(world, cfg)
		snap := ingestAll(t, c, evs, 137)
		got := snap.Dataset()

		if got.Len() != want.Len() {
			t.Fatalf("cfg %+v: rows = %d, want %d", cfg, got.Len(), want.Len())
		}
		if got.Visits != want.Visits {
			t.Errorf("cfg %+v: visits = %d, want %d", cfg, got.Visits, want.Visits)
		}
		if got.FQDNs.Len() != want.FQDNs.Len() {
			t.Fatalf("cfg %+v: interner len = %d, want %d", cfg, got.FQDNs.Len(), want.FQDNs.Len())
		}
		for id := 0; id < want.FQDNs.Len(); id++ {
			if got.FQDNs.Str(uint32(id)) != want.FQDNs.Str(uint32(id)) {
				t.Fatalf("cfg %+v: interner id %d = %q, want %q",
					cfg, id, got.FQDNs.Str(uint32(id)), want.FQDNs.Str(uint32(id)))
			}
		}
		if len(got.Publishers) != len(want.Publishers) {
			t.Fatalf("cfg %+v: publishers = %d, want %d", cfg, len(got.Publishers), len(want.Publishers))
		}
		// The worlds are separate (deterministic) graph builds, so
		// publisher identity is by domain, not pointer.
		for i := range want.Publishers {
			if got.Publishers[i].Domain != want.Publishers[i].Domain {
				t.Fatalf("cfg %+v: publisher %d = %q, want %q",
					cfg, i, got.Publishers[i].Domain, want.Publishers[i].Domain)
			}
		}
		wantRows := want.Rows()
		gotRows := got.Rows()
		for i := range wantRows {
			w, g := wantRows[i], gotRows[i]
			w2, g2 := w, g
			w2.Class, g2.Class = 0, 0
			if w2 != g2 {
				t.Fatalf("cfg %+v: row %d = %+v, want %+v", cfg, i, g, w)
			}
			if g.Class.IsTracking() != w.Class.IsTracking() ||
				(g.Class == classify.ClassABP) != (w.Class == classify.ClassABP) {
				t.Fatalf("cfg %+v: row %d class = %v, want %v (set-equivalent)", cfg, i, g.Class, w.Class)
			}
		}
		c.Close()
	}
}

// TestIncrementalAggregatesMatchRescan: the per-epoch delta merging
// must equal a full rescan of the snapshot dataset — DatasetStats via
// ComputeStats and all three flow maps via core.Analyze.
func TestIncrementalAggregatesMatchRescan(t *testing.T) {
	world, evs, _ := rig(t)
	for _, epoch := range []int{173, 997, 1 << 20} {
		// Compress on the middle epoch size: the delta paths must read
		// identically through decoded sealed blocks.
		c := NewCollector(world, Config{EpochEvents: epoch, Workers: 2, ChunkRows: 128, Compress: epoch == 997})
		snap := ingestAll(t, c, evs, 211)
		ds := snap.Dataset()

		if got, want := snap.Stats(), classify.ComputeStats(ds); got != want {
			t.Errorf("epoch %d: stats = %+v, want %+v", epoch, got, want)
		}
		if got, want := snap.TruthAnalysis(), core.Analyze(ds, world.Truth, nil); !got.Equal(want) {
			t.Errorf("epoch %d: truth analysis diverges from rescan", epoch)
		}
		if got, want := snap.IPMapAnalysis(), core.Analyze(ds, world.IPMap, nil); !got.Equal(want) {
			t.Errorf("epoch %d: ipmap analysis diverges from rescan", epoch)
		}
		if got, want := snap.MaxMindAnalysis(), core.Analyze(ds, world.MaxMind, nil); !got.Equal(want) {
			t.Errorf("epoch %d: maxmind analysis diverges from rescan", epoch)
		}
		c.Close()
	}
}

// TestSequenceDedup covers the at-least-once contract: retransmits are
// skipped, overlapping batches accept only the fresh suffix, and a gap
// is rejected without state change.
func TestSequenceDedup(t *testing.T) {
	world, evs, _ := rig(t)
	var uid int32 = -1
	for u, stream := range evs {
		if len(stream) >= 10 && (uid < 0 || u < uid) {
			uid = u
		}
	}
	if uid < 0 {
		t.Fatal("no user with enough events")
	}
	stream := evs[uid]
	c := NewCollector(world, Config{EpochEvents: 1 << 20, Workers: 2})
	defer c.Close()

	res, err := c.Ingest(Batch{User: uid, Seq: 0, Events: stream[:5]})
	if err != nil || res.Accepted != 5 || res.NextSeq != 5 {
		t.Fatalf("first upload: %+v, %v", res, err)
	}
	// Exact retransmit: all duplicate.
	res, err = c.Ingest(Batch{User: uid, Seq: 0, Events: stream[:5]})
	if err != nil || res.Accepted != 0 || res.Duplicate != 5 {
		t.Fatalf("retransmit: %+v, %v", res, err)
	}
	// Overlap: seq 3 with 5 events = 2 dup + 3 fresh.
	res, err = c.Ingest(Batch{User: uid, Seq: 3, Events: stream[3:8]})
	if err != nil || res.Accepted != 3 || res.Duplicate != 2 || res.NextSeq != 8 {
		t.Fatalf("overlap: %+v, %v", res, err)
	}
	// Gap: seq 9 when 8 expected.
	if _, err := c.Ingest(Batch{User: uid, Seq: 9, Events: stream[9:10]}); !errors.Is(err, ErrSequenceGap) {
		t.Fatalf("gap accepted: %v", err)
	}
	if got := c.PendingEvents(); got != 8 {
		t.Fatalf("pending = %d, want 8", got)
	}
	// Unknown user / publisher rejected before sequence advance.
	if _, err := c.Ingest(Batch{User: 1 << 20, Seq: 0, Events: stream[:1]}); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user accepted: %v", err)
	}
	bad := stream[0]
	bad.Publisher = "no-such-site.example"
	if _, err := c.Ingest(Batch{User: uid, Seq: 8, Events: []Event{bad}}); !errors.Is(err, ErrUnknownPublisher) {
		t.Fatalf("unknown publisher accepted: %v", err)
	}
}

// TestRequestsWithoutVisit: a legal upload stream may carry requests
// whose page visit was never uploaded (lost batch, client truncation).
// The rows must resolve to the real publisher — registered on first
// reference — never silently alias publisher id 0, and querying the
// snapshot must not panic on an empty publisher table.
func TestRequestsWithoutVisit(t *testing.T) {
	world, evs, _ := rig(t)
	var uid int32 = -1
	for u, stream := range evs {
		has := 0
		for _, ev := range stream {
			if ev.Kind == KindRequest {
				has++
			}
		}
		if has >= 3 && (uid < 0 || u < uid) {
			uid = u
		}
	}
	var reqs []Event
	for _, ev := range evs[uid] {
		if ev.Kind == KindRequest {
			reqs = append(reqs, ev)
		}
		if len(reqs) == 3 {
			break
		}
	}
	c := NewCollector(world, Config{EpochEvents: 1 << 20, Workers: 2})
	defer c.Close()
	if _, err := c.Ingest(Batch{User: uid, Seq: 0, Events: reqs}); err != nil {
		t.Fatal(err)
	}
	snap := c.Flush()
	ds := snap.Dataset()
	if ds.Len() != 3 {
		t.Fatalf("rows = %d, want 3", ds.Len())
	}
	if len(ds.Publishers) == 0 {
		t.Fatal("publishers empty: rows alias id 0")
	}
	ds.EachRow(func(i int, r classify.Row) {
		if got := ds.Publisher(r).Domain; got != reqs[i].Publisher {
			t.Fatalf("row %d publisher = %q, want %q", i, got, reqs[i].Publisher)
		}
	})
	if snap.Stats().FirstPartyVisits != 0 {
		t.Fatalf("visits = %d, want 0", snap.Stats().FirstPartyVisits)
	}
}

// TestSnapshotImmutableAcrossEpochs: a snapshot taken at epoch N keeps
// its classes and stats after later epochs mutate the live store.
func TestSnapshotImmutableAcrossEpochs(t *testing.T) {
	world, evs, _ := rig(t)
	c := NewCollector(world, Config{EpochEvents: 1 << 20, Workers: 2, ChunkRows: 64})
	defer c.Close()

	users := make([]int32, 0, len(evs))
	for uid := range evs {
		users = append(users, uid)
	}
	// First half of the users, then snapshot, then the rest.
	half := len(users) / 2
	for _, uid := range users[:half] {
		if _, err := c.Ingest(Batch{User: uid, Seq: 0, Events: evs[uid]}); err != nil {
			t.Fatal(err)
		}
	}
	snap1 := c.Flush()
	frozenStats := snap1.Stats()
	frozenClasses := make([]classify.Class, 0, snap1.Rows())
	snap1.Dataset().EachRow(func(_ int, r classify.Row) {
		frozenClasses = append(frozenClasses, r.Class)
	})

	for _, uid := range users[half:] {
		if _, err := c.Ingest(Batch{User: uid, Seq: 0, Events: evs[uid]}); err != nil {
			t.Fatal(err)
		}
	}
	snap2 := c.Flush()
	if snap2.Epoch() != snap1.Epoch()+1 {
		t.Fatalf("epochs = %d -> %d", snap1.Epoch(), snap2.Epoch())
	}
	if snap1.Stats() != frozenStats {
		t.Error("snapshot stats mutated by a later epoch")
	}
	i := 0
	snap1.Dataset().EachRow(func(_ int, r classify.Row) {
		if r.Class != frozenClasses[i] {
			t.Fatalf("row %d class changed under snapshot: %v -> %v", i, frozenClasses[i], r.Class)
		}
		i++
	})
	if snap1.Rows() >= snap2.Rows() {
		t.Fatalf("rows did not grow: %d -> %d", snap1.Rows(), snap2.Rows())
	}
}
