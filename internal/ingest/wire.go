// Package ingest implements the live collection backend of the
// reproduction: the crowdsourced measurement service the paper's
// browser extensions uploaded their request logs to (§3.1). A Collector
// accepts batched tracking-event uploads — NDJSON or a compact
// length-prefixed binary framing — deduplicates them with per-user
// sequence numbers (at-least-once upload semantics), streams them
// through the sharded classification pipeline into the columnar row
// store, and maintains the paper's aggregates incrementally per epoch.
// Queries run against immutable epoch snapshots, so serving never
// blocks ingestion. cmd/collectd wraps the package as an HTTP daemon;
// cmd/crawlsim -replay is the matching load generator.
package ingest

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Event kinds. A visit marks one first-party page load; a request is
// one captured third-party request, exactly the tuple the extension
// logged (first-party domain, third-party URL, serving IP).
const (
	KindVisit   = byte('v')
	KindRequest = byte('r')
)

// Event is one uploaded extension record. Request fields beyond At and
// Publisher are meaningful only when Kind == KindRequest.
type Event struct {
	Kind      byte   // KindVisit or KindRequest
	At        int64  // unix seconds
	Publisher string // first-party page domain
	FQDN      string // contacted third-party hostname
	Path      string // URL path (with query)
	RefFQDN   string // referrer hostname; "" = the first-party page
	IP        uint32 // serving IP as read from the response
	HTTPS     bool
	HasArgs   bool // URL carries query arguments
}

// Batch is one upload: a contiguous run of one user's events, starting
// at per-user sequence number Seq. Sequence numbers count every event
// the user ever emitted (visits and requests alike), so a client that
// re-sends a batch after a lost response is deduplicated exactly.
type Batch struct {
	User   int32
	Seq    uint64
	Events []Event
}

// MaxBatchEvents bounds a single upload. Both decoders enforce it
// before allocating, so a forged header cannot make the server reserve
// unbounded memory.
const MaxBatchEvents = 1 << 18

// errTooManyEvents is returned for batches beyond MaxBatchEvents.
var errTooManyEvents = fmt.Errorf("ingest: batch exceeds %d events", MaxBatchEvents)

// jsonHeader is the first NDJSON line of a batch.
type jsonHeader struct {
	User int32  `json:"user"`
	Seq  uint64 `json:"seq"`
	N    int    `json:"n"`
}

// jsonEvent is one NDJSON event line.
type jsonEvent struct {
	K     string `json:"k"`
	At    int64  `json:"at"`
	Pub   string `json:"pub"`
	FQDN  string `json:"fqdn,omitempty"`
	Path  string `json:"path,omitempty"`
	Ref   string `json:"ref,omitempty"`
	IP    uint32 `json:"ip,omitempty"`
	HTTPS bool   `json:"https,omitempty"`
	Args  bool   `json:"args,omitempty"`
}

// EncodeNDJSON writes the batch as newline-delimited JSON: one header
// object ({"user","seq","n"}) followed by n event objects.
func EncodeNDJSON(w io.Writer, b Batch) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonHeader{User: b.User, Seq: b.Seq, N: len(b.Events)}); err != nil {
		return err
	}
	for _, ev := range b.Events {
		je := jsonEvent{At: ev.At, Pub: ev.Publisher}
		switch ev.Kind {
		case KindVisit:
			je.K = "v"
		case KindRequest:
			je.K = "r"
			je.FQDN, je.Path, je.Ref = ev.FQDN, ev.Path, ev.RefFQDN
			je.IP, je.HTTPS, je.Args = ev.IP, ev.HTTPS, ev.HasArgs
		default:
			return fmt.Errorf("ingest: unknown event kind %q", ev.Kind)
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeNDJSON parses one NDJSON batch from r. Malformed input returns
// an error; the declared event count is validated against MaxBatchEvents
// before any allocation.
func DecodeNDJSON(r io.Reader) (Batch, error) {
	dec := json.NewDecoder(r)
	var h jsonHeader
	if err := dec.Decode(&h); err != nil {
		return Batch{}, fmt.Errorf("ingest: batch header: %w", err)
	}
	if h.N < 0 || h.N > MaxBatchEvents {
		return Batch{}, errTooManyEvents
	}
	// Pre-size from the declared count, but cap the speculative
	// allocation: unlike the binary decoder there is no byte count to
	// validate n against before reading the events, so a forged header
	// must not reserve megabytes the body never backs.
	hint := h.N
	if hint > 4096 {
		hint = 4096
	}
	b := Batch{User: h.User, Seq: h.Seq, Events: make([]Event, 0, hint)}
	for i := 0; i < h.N; i++ {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			if errors.Is(err, io.EOF) {
				return Batch{}, fmt.Errorf("ingest: batch truncated: %d of %d events", i, h.N)
			}
			return Batch{}, fmt.Errorf("ingest: event %d: %w", i, err)
		}
		ev := Event{At: je.At, Publisher: je.Pub}
		switch je.K {
		case "v":
			ev.Kind = KindVisit
		case "r":
			ev.Kind = KindRequest
			ev.FQDN, ev.Path, ev.RefFQDN = je.FQDN, je.Path, je.Ref
			ev.IP, ev.HTTPS, ev.HasArgs = je.IP, je.HTTPS, je.Args
		default:
			return Batch{}, fmt.Errorf("ingest: event %d: unknown kind %q", i, je.K)
		}
		b.Events = append(b.Events, ev)
	}
	// Mirror the binary decoder's strictness: data beyond the declared
	// count is a client bug (miscounted header, concatenated batches)
	// and silently dropping it would be unreported data loss.
	if dec.More() {
		return Batch{}, fmt.Errorf("ingest: trailing data after the %d declared events", h.N)
	}
	return b, nil
}
