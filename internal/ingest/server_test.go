package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) (*Collector, *httptest.Server) {
	t.Helper()
	world, _, _ := rig(t)
	c := NewCollector(world, cfg)
	srv := httptest.NewServer(NewServer(c))
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv
}

// TestServerEndpoints covers the HTTP surface end to end with both wire
// formats: upload, flush, stats, experiment query, health, metrics.
func TestServerEndpoints(t *testing.T) {
	_, evs, _ := rig(t)
	c, srv := newTestServer(t, Config{EpochEvents: 1 << 20, Workers: 2})

	for _, binary := range []bool{false, true} {
		cl := &Client{Base: srv.URL, Binary: binary}
		uid, stream := int32(-1), []Event(nil)
		for u, s := range evs {
			if uid < 0 || u < uid {
				uid, stream = u, s
			}
		}
		seq := c.nextSeqOf(uid)
		res, err := cl.Upload(Batch{User: uid, Seq: seq, Events: stream[seq : seq+5]})
		if err != nil {
			t.Fatalf("binary=%v upload: %v", binary, err)
		}
		if res.Accepted != 5 {
			t.Fatalf("binary=%v accepted = %d, want 5", binary, res.Accepted)
		}
	}

	// Sequence gap surfaces as 409.
	cl := &Client{Base: srv.URL}
	var uid int32 = -1
	for u := range evs {
		if uid < 0 || u < uid {
			uid = u
		}
	}
	if _, err := cl.Upload(Batch{User: uid, Seq: 10000, Events: evs[uid][:1]}); err == nil ||
		!strings.Contains(err.Error(), "409") {
		t.Fatalf("gap upload error = %v, want 409", err)
	}

	// Experiments before any epoch: 409.
	if _, _, err := cl.Artifact("table1"); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("experiment on epoch 0 = %v, want 409", err)
	}

	epoch, rows, err := cl.Flush()
	if err != nil || epoch != 1 || rows == 0 {
		t.Fatalf("flush: epoch=%d rows=%d err=%v", epoch, rows, err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Rows != rows || st.Stats.Users != 1 {
		t.Fatalf("stats = %+v", st)
	}

	text, gotEpoch, err := cl.Artifact("table1")
	if err != nil || gotEpoch != 1 || !strings.Contains(text, "Table 1") {
		t.Fatalf("artifact: epoch=%d err=%v text=%q", gotEpoch, err, text)
	}
	if _, _, err := cl.Artifact("nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown experiment = %v, want 404", err)
	}

	for _, path := range []string{"/healthz", "/metrics", "/v1/experiments"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", path, resp.Status)
		}
		switch path {
		case "/metrics":
			if !strings.Contains(string(body), "collectd_events_total") {
				t.Errorf("metrics missing counters: %s", body)
			}
		case "/healthz":
			if !strings.Contains(string(body), `"ok"`) {
				t.Errorf("healthz: %s", body)
			}
		case "/v1/experiments":
			var ids []string
			if json.Unmarshal(body, &ids) != nil || len(ids) != 20 {
				t.Errorf("experiment list: %s", body)
			}
		}
	}
}

// nextSeqOf reads a user's next expected sequence number (test helper).
func (c *Collector) nextSeqOf(uid int32) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nextSeq[uid]
}

// TestConcurrentUploadAndQuery is the live-serving consistency test: N
// uploaders stream distinct users' events (forcing many epoch commits)
// while M queriers hammer the stats and experiment endpoints. Every
// query must observe a consistent epoch snapshot — the reported row
// count must exactly match the committed row count of the epoch the
// response names, never a torn intermediate. Run under -race in CI.
func TestConcurrentUploadAndQuery(t *testing.T) {
	_, evs, _ := rig(t)
	c, srv := newTestServer(t, Config{EpochEvents: 400, Workers: 2, ChunkRows: 128})

	userIDs := make([]int32, 0, len(evs))
	for uid := range evs {
		userIDs = append(userIDs, uid)
	}

	const uploaders = 4
	const queriers = 3
	var wg sync.WaitGroup
	type obs struct {
		epoch int
		rows  int
	}
	observed := make(chan obs, 4096)
	done := make(chan struct{})

	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			cl := &Client{Base: srv.URL}
			for {
				select {
				case <-done:
					return
				default:
				}
				if q%2 == 0 {
					st, err := cl.Stats()
					if err != nil {
						t.Error(err)
						return
					}
					observed <- obs{st.Epoch, st.Rows}
				} else {
					resp, err := http.Get(srv.URL + "/v1/experiments/table1")
					if err != nil {
						t.Error(err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusConflict {
						continue // epoch 0: nothing committed yet
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("table1: %s", resp.Status)
						return
					}
					epoch, _ := strconv.Atoi(resp.Header.Get("X-Epoch"))
					rows, _ := strconv.Atoi(resp.Header.Get("X-Rows"))
					// The artifact itself must agree with the snapshot
					// header: Table 1's request count is the row count.
					if !strings.Contains(string(body), fmt.Sprintf("%d", rows)) {
						t.Errorf("table1 at epoch %d does not mention its own row count %d:\n%s", epoch, rows, body)
						return
					}
					observed <- obs{epoch, rows}
				}
			}
		}(q)
	}

	var upWG sync.WaitGroup
	for u := 0; u < uploaders; u++ {
		upWG.Add(1)
		go func(u int) {
			defer upWG.Done()
			cl := &Client{Base: srv.URL, Binary: u%2 == 0}
			for j := u; j < len(userIDs); j += uploaders {
				stream := evs[userIDs[j]]
				for off := 0; off < len(stream); off += 200 {
					hi := off + 200
					if hi > len(stream) {
						hi = len(stream)
					}
					if _, err := cl.Upload(Batch{User: userIDs[j], Seq: uint64(off), Events: stream[off:hi]}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(u)
	}
	upWG.Wait()
	(&Client{Base: srv.URL}).Flush()
	close(done)
	wg.Wait()
	close(observed)

	// Every observed (epoch, rows) pair must match the commit history.
	rowsAt := map[int]int{0: 0}
	for _, e := range c.Epochs() {
		rowsAt[e.Epoch] = e.Rows
	}
	n := 0
	for o := range observed {
		want, ok := rowsAt[o.epoch]
		if !ok {
			t.Fatalf("query saw unknown epoch %d", o.epoch)
		}
		if o.rows != want {
			t.Fatalf("query at epoch %d saw %d rows, committed history says %d", o.epoch, o.rows, want)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no queries observed")
	}
	if len(c.Epochs()) < 2 {
		t.Fatalf("test exercised only %d epochs; lower EpochEvents", len(c.Epochs()))
	}

	// After the dust settles the dataset equals the single-stream replay
	// (upload interleaving may only reorder users across epochs, which
	// changes ids but not counts: compare the stats).
	snap := c.Snapshot()
	total := 0
	for _, stream := range evs {
		for _, ev := range stream {
			if ev.Kind == KindRequest {
				total++
			}
		}
	}
	if int(snap.Stats().ThirdPartyReqs) != total {
		t.Fatalf("final rows = %d, want %d", snap.Stats().ThirdPartyReqs, total)
	}
}

// TestReadinessEndpoints: /healthz is pure liveness (200 always);
// /readyz splits out readiness — 503 with recovery progress before
// Recover, 200 once recovered, 503 "draining" after BeginDrain — and
// uploads mirror it with 503 + Retry-After.
func TestReadinessEndpoints(t *testing.T) {
	world, evs, _ := rig(t)
	cfg := Config{EpochEvents: 1 << 20, Workers: 2, DataDir: t.TempDir(), WALSync: "none"}
	c := NewCollector(world, cfg)
	srv := httptest.NewServer(NewServer(c))
	t.Cleanup(func() { srv.Close(); c.Close() })
	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body), resp.Header
	}

	// Pre-recovery: alive, not ready, uploads bounce retryably.
	if code, body, _ := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("healthz pre-recovery = %d %s", code, body)
	}
	code, body, hdr := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "recovering") ||
		!strings.Contains(body, "segments_total") || hdr.Get("Retry-After") == "" {
		t.Fatalf("readyz pre-recovery = %d %s (Retry-After %q)", code, body, hdr.Get("Retry-After"))
	}
	var uid int32
	for u := range evs {
		uid = u
		break
	}
	cl := &Client{Base: srv.URL, Binary: true}
	if _, err := cl.Upload(Batch{User: uid, Seq: 0, Events: evs[uid][:1]}); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("pre-recovery upload = %v, want 503", err)
	}

	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if code, body, _ := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz post-recovery = %d %s", code, body)
	}
	if !cl.Ready() {
		t.Fatal("client Ready() false on a recovered collector")
	}
	if _, err := cl.Upload(Batch{User: uid, Seq: 0, Events: evs[uid][:1]}); err != nil {
		t.Fatal(err)
	}

	c.BeginDrain()
	if code, body, _ := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("readyz draining = %d %s", code, body)
	}
	if code, _, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz draining = %d, want 200", code)
	}
	if _, err := cl.Upload(Batch{User: uid, Seq: 1, Events: evs[uid][1:2]}); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("draining upload = %v, want 503", err)
	}
}
