package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossborder/internal/ingest/wal"
	"crossborder/internal/scenario"
)

// batchList renders the recorded streams as the deterministic upload
// sequence ingestAll uses: users ascending, each stream in batchSize
// slices. Tests replay prefixes of it, "crash", and re-send the whole
// list (the at-least-once client contract — duplicates are deduped).
func batchList(evs map[int32][]Event, batchSize int) []Batch {
	users := make([]int32, 0, len(evs))
	for uid := range evs {
		users = append(users, uid)
	}
	for i := range users {
		for j := i + 1; j < len(users); j++ {
			if users[j] < users[i] {
				users[i], users[j] = users[j], users[i]
			}
		}
	}
	var out []Batch
	for _, uid := range users {
		stream := evs[uid]
		for off := 0; off < len(stream); off += batchSize {
			hi := off + batchSize
			if hi > len(stream) {
				hi = len(stream)
			}
			out = append(out, Batch{User: uid, Seq: uint64(off), Events: stream[off:hi]})
		}
	}
	return out
}

func sendAll(t *testing.T, c *Collector, batches []Batch) {
	t.Helper()
	for _, b := range batches {
		if _, err := c.Ingest(b); err != nil {
			t.Fatalf("ingest user %d seq %d: %v", b.User, b.Seq, err)
		}
	}
}

// assertSameLive asserts two live snapshots are equivalent in every
// field recovery must preserve: rows (including the exact Class byte —
// both sides run the same live fixpoint schedule), interner, tables,
// visits, stats, flow analyses, and epoch history modulo wall clock.
func assertSameLive(t *testing.T, got, want *Snapshot) {
	t.Helper()
	gd, wd := got.Dataset(), want.Dataset()
	if gd.Len() != wd.Len() {
		t.Fatalf("rows = %d, want %d", gd.Len(), wd.Len())
	}
	if gd.Visits != wd.Visits {
		t.Errorf("visits = %d, want %d", gd.Visits, wd.Visits)
	}
	if gd.FQDNs.Len() != wd.FQDNs.Len() {
		t.Fatalf("interner len = %d, want %d", gd.FQDNs.Len(), wd.FQDNs.Len())
	}
	for id := 0; id < wd.FQDNs.Len(); id++ {
		if gd.FQDNs.Str(uint32(id)) != wd.FQDNs.Str(uint32(id)) {
			t.Fatalf("interner id %d = %q, want %q", id, gd.FQDNs.Str(uint32(id)), wd.FQDNs.Str(uint32(id)))
		}
	}
	if len(gd.Publishers) != len(wd.Publishers) {
		t.Fatalf("publishers = %d, want %d", len(gd.Publishers), len(wd.Publishers))
	}
	for i := range wd.Publishers {
		if gd.Publishers[i].Domain != wd.Publishers[i].Domain {
			t.Fatalf("publisher %d = %q, want %q", i, gd.Publishers[i].Domain, wd.Publishers[i].Domain)
		}
	}
	gr, wr := gd.Rows(), wd.Rows()
	for i := range wr {
		if gr[i] != wr[i] {
			t.Fatalf("row %d = %+v, want %+v", i, gr[i], wr[i])
		}
	}
	if got.Stats() != want.Stats() {
		t.Errorf("stats = %+v, want %+v", got.Stats(), want.Stats())
	}
	if !got.TruthAnalysis().Equal(want.TruthAnalysis()) {
		t.Error("truth analysis diverges")
	}
	if !got.IPMapAnalysis().Equal(want.IPMapAnalysis()) {
		t.Error("ipmap analysis diverges")
	}
	if !got.MaxMindAnalysis().Equal(want.MaxMindAnalysis()) {
		t.Error("maxmind analysis diverges")
	}
	gh, wh := got.History(), want.History()
	if len(gh) != len(wh) {
		t.Fatalf("epoch history length = %d, want %d", len(gh), len(wh))
	}
	for i := range wh {
		gh[i].At, wh[i].At = 0, 0
		if gh[i] != wh[i] {
			t.Fatalf("epoch %d = %+v, want %+v", i, gh[i], wh[i])
		}
	}
}

func durableCfg(dir string, compress bool) Config {
	return Config{
		EpochEvents: 251, Workers: 3, ChunkRows: 64, Compress: compress,
		DataDir: dir, WALSync: "none",
	}
}

func recoverNew(t *testing.T, world *scenario.Scenario, cfg Config) (*Collector, RecoveryStats) {
	t.Helper()
	c := NewCollector(world, cfg)
	stats, err := c.Recover()
	if err != nil {
		c.Close()
		t.Fatalf("recover: %v", err)
	}
	t.Cleanup(c.Close)
	return c, stats
}

// TestDurableRecoveryRoundTrip: a collector that checkpoints mid-stream
// and then "crashes" (abandoned without flush, WAL tail pending)
// recovers — checkpoint load + WAL replay + client re-send — to a state
// identical to a memory-only collector that saw the whole stream
// uninterrupted. Compression changes the checkpointed store layout, so
// both modes are exercised.
func TestDurableRecoveryRoundTrip(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			memCfg := durableCfg("", compress)
			memCfg.DataDir = ""
			ref := NewCollector(world, memCfg)
			defer ref.Close()
			sendAll(t, ref, batches)
			want := ref.Flush()

			dir := t.TempDir()
			c1, _ := recoverNew(t, world, durableCfg(dir, compress))
			half := len(batches) / 2
			sendAll(t, c1, batches[:half])
			if _, err := c1.FlushCheckpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			// Past the checkpoint: these live only in the WAL tail.
			sendAll(t, c1, batches[half:half+half/2])
			// Crash: no flush, no checkpoint, no close.

			c2, stats := recoverNew(t, world, durableCfg(dir, compress))
			if stats.CheckpointEpoch == 0 {
				t.Fatal("recovery found no checkpoint")
			}
			if stats.Records == 0 {
				t.Fatal("recovery replayed no WAL records despite an uncheckpointed tail")
			}
			// The client's at-least-once contract: re-send everything,
			// dedup accepts only what the crash lost.
			sendAll(t, c2, batches)
			got := c2.Flush()
			assertSameLive(t, got, want)
		})
	}
}

// TestCheckpointCoversAllWAL: recovering right after a checkpoint — the
// WAL holds nothing newer (only the empty post-rotation segment) — is
// the "checkpoint newer than all WAL segments" edge: zero records
// replay and the state is complete.
func TestCheckpointCoversAllWAL(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	memCfg := durableCfg("", true)
	memCfg.DataDir = ""
	ref := NewCollector(world, memCfg)
	defer ref.Close()
	sendAll(t, ref, batches)
	want := ref.Flush()

	dir := t.TempDir()
	c1, _ := recoverNew(t, world, durableCfg(dir, true))
	sendAll(t, c1, batches)
	if _, err := c1.FlushCheckpoint(); err != nil {
		t.Fatal(err)
	}
	c2, stats := recoverNew(t, world, durableCfg(dir, true))
	if stats.Records != 0 {
		t.Fatalf("replayed %d records, want 0 (checkpoint covers the full WAL)", stats.Records)
	}
	assertSameLive(t, c2.Snapshot(), want)
}

// TestTornWALTailRecovered: bytes torn off the final WAL record by a
// crash are truncated on recovery; the lost events come back through
// the client re-send and the final state matches the uninterrupted run.
func TestTornWALTailRecovered(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	memCfg := durableCfg("", false)
	memCfg.DataDir = ""
	ref := NewCollector(world, memCfg)
	defer ref.Close()
	sendAll(t, ref, batches)
	want := ref.Flush()

	dir := t.TempDir()
	c1, _ := recoverNew(t, world, durableCfg(dir, false))
	sendAll(t, c1, batches)
	// Crash mid-write: tear bytes off the newest segment.
	segs, err := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments: %v", err)
	}
	last := segs[len(segs)-1]
	st, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, st.Size()-7); err != nil {
		t.Fatal(err)
	}

	c2, _ := recoverNew(t, world, durableCfg(dir, false))
	sendAll(t, c2, batches) // re-send restores the torn suffix
	assertSameLive(t, c2.Flush(), want)
}

// TestCorruptCheckpointRefused: a checkpoint whose body no longer
// matches its checksum must fail recovery loudly — its WAL prefix was
// garbage-collected, so no fallback can be complete.
func TestCorruptCheckpointRefused(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	dir := t.TempDir()
	c1, _ := recoverNew(t, world, durableCfg(dir, false))
	sendAll(t, c1, batches)
	if _, err := c1.FlushCheckpoint(); err != nil {
		t.Fatal(err)
	}
	cks, err := filepath.Glob(filepath.Join(dir, "checkpoint-*.ckpt"))
	if err != nil || len(cks) != 1 {
		t.Fatalf("checkpoints = %v (%v), want exactly one", cks, err)
	}
	data, err := os.ReadFile(cks[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(cks[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := NewCollector(world, durableCfg(dir, false))
	defer c2.Close()
	if _, err := c2.Recover(); !errors.Is(err, errCkptCorrupt) {
		t.Fatalf("recover = %v, want corrupt-checkpoint error", err)
	}
}

// TestDurableGates: a durable collector rejects uploads before Recover
// and after BeginDrain, Recover refuses to run twice, and a checkpoint
// written under one store layout refuses to load under another.
func TestDurableGates(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	dir := t.TempDir()

	c := NewCollector(world, durableCfg(dir, false))
	defer c.Close()
	if c.Ready() {
		t.Fatal("durable collector born ready")
	}
	if _, err := c.Ingest(batches[0]); !errors.Is(err, ErrNotReady) {
		t.Fatalf("pre-recovery ingest = %v, want ErrNotReady", err)
	}
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if !c.Ready() || !c.Durable() {
		t.Fatal("recovered collector not ready/durable")
	}
	if _, err := c.Recover(); err == nil {
		t.Fatal("second Recover succeeded")
	}
	sendAll(t, c, batches[:3])
	c.BeginDrain()
	if _, err := c.Ingest(batches[3]); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining ingest = %v, want ErrDraining", err)
	}
	if _, err := c.FlushCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Layout mismatch: same dir, compression flipped.
	bad := NewCollector(world, durableCfg(dir, true))
	defer bad.Close()
	if _, err := bad.Recover(); err == nil || !strings.Contains(err.Error(), "layout") {
		t.Fatalf("layout-mismatch recover = %v, want layout error", err)
	}
}

// TestWALSyncPolicies: the collector round-trips under every sync
// policy flag spelling, and an unknown policy is rejected up front.
func TestWALSyncPolicies(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	for _, pol := range []string{"always", "interval", "none"} {
		cfg := durableCfg(t.TempDir(), false)
		cfg.WALSync = pol
		c, _ := recoverNew(t, world, cfg)
		sendAll(t, c, batches[:4])
		if _, err := c.FlushCheckpoint(); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
	cfg := durableCfg(t.TempDir(), false)
	cfg.WALSync = "sometimes"
	c := NewCollector(world, cfg)
	defer c.Close()
	if _, err := c.Recover(); err == nil {
		t.Fatal("unknown sync policy accepted")
	}
	if _, err := wal.ParsePolicy("sometimes"); err == nil {
		t.Fatal("wal.ParsePolicy accepted garbage")
	}
}
