package ingest

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"crossborder/internal/browser"
	"crossborder/internal/chaos"
	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/ingest/wal"
	"crossborder/internal/netsim"
	"crossborder/internal/rtb"
	"crossborder/internal/scenario"
	"crossborder/internal/webgraph"
)

// Validation and sequencing errors. The HTTP layer maps ErrSequenceGap
// to 409 Conflict (the client must re-send the missing run first) and
// the rest to 400 Bad Request.
var (
	ErrUnknownUser      = errors.New("ingest: unknown user id")
	ErrUnknownPublisher = errors.New("ingest: unknown publisher domain")
	ErrBadEvent         = errors.New("ingest: malformed event")
	ErrSequenceGap      = errors.New("ingest: sequence gap")
	ErrClosed           = errors.New("ingest: collector closed")
)

// Config tunes a Collector.
type Config struct {
	// EpochEvents is the epoch commit threshold: once at least this many
	// accepted events are pending, the next upload commits them as one
	// epoch. 0 means 1<<15. Epoch size never changes the final dataset,
	// only the granularity of snapshots.
	EpochEvents int
	// Workers sizes the classification shard set and the fixpoint pool
	// (0 = GOMAXPROCS). Any value yields the same dataset.
	Workers int
	// ChunkRows overrides the live store's rows per chunk (0 = the
	// columnar default; tests use small values to exercise multi-chunk
	// snapshots).
	ChunkRows int
	// Compress keeps sealed chunks of the live store as compressed
	// codec blocks (classify.NewMemStoreCompressed): long-running
	// collectors stop paying full-width memory for cold epochs, and
	// epoch snapshots share the compressed blocks by reference. The
	// dataset and every served artifact are identical either way.
	Compress bool
	// DataDir makes the collector durable: accepted batches journal to
	// a write-ahead log and FlushCheckpoint writes epoch checkpoints
	// under this directory, so a crashed collector recovers its exact
	// state via Recover. Empty (the default) keeps the collector
	// memory-only. A durable collector is NOT ready at construction —
	// Recover must run first.
	DataDir string
	// WALSync picks the journal fsync policy: "always" syncs every
	// append (an acknowledged upload survives kill -9), "interval"
	// (default) syncs in the background every WALSyncInterval, "none"
	// leaves syncing to the OS. See wal.ParsePolicy.
	WALSync string
	// WALSyncInterval is the background sync cadence under
	// WALSync="interval" (0 = 100ms).
	WALSyncInterval time.Duration
	// WALSegmentBytes caps a journal segment before rotation
	// (0 = 64 MiB).
	WALSegmentBytes int64
	// CheckpointBytes, when > 0, cuts a checkpoint automatically once
	// the uncovered WAL (journaled record bytes not yet covered by a
	// checkpoint) exceeds this threshold — bounding recovery time under
	// sustained ingest instead of checkpointing only on flush and
	// shutdown. An auto-checkpoint failure never fails the triggering
	// upload; it is recorded and surfaced via /v1/stats.
	CheckpointBytes int64
	// FS overrides the filesystem under the WAL and checkpoint writer
	// (default chaos.OS, the real one). The chaos harness injects
	// short writes, fsync failures, and torn renames through it.
	FS chaos.FS
}

// fs returns the configured filesystem (the real one by default).
func (c Config) fs() chaos.FS {
	if c.FS != nil {
		return c.FS
	}
	return chaos.OS
}

func (c Config) withDefaults() Config {
	if c.EpochEvents <= 0 {
		c.EpochEvents = 1 << 15
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// EpochStat records one committed epoch.
type EpochStat struct {
	Epoch  int   `json:"epoch"`
	Rows   int   `json:"rows"`   // cumulative dataset rows after the epoch
	Events int   `json:"events"` // events committed in the epoch (visits + requests)
	Flips  int   `json:"flips"`  // settled rows reclassified by this epoch
	At     int64 `json:"at"`     // unix seconds of the commit
}

// Collector is the live ingestion service: it validates and
// deduplicates uploads, classifies them through per-worker shards,
// merges them into a growing columnar dataset on epoch boundaries,
// keeps the semi-stage fixpoint and the paper's aggregates current
// incrementally, and publishes an immutable Snapshot per epoch.
//
// Ingest and Flush serialize on an internal mutex; Snapshot is
// wait-free (an atomic pointer load), so queries never block ingestion
// and always observe a complete epoch.
type Collector struct {
	world *scenario.Scenario
	cfg   Config
	users map[int32]*browser.User
	pubs  map[string]*webgraph.Publisher

	mu      sync.Mutex
	nextSeq map[int32]uint64
	pending map[int32][]Event
	// pendingN mirrors the pending event count; it is only written under
	// mu but read atomically by the lock-free query path.
	pendingN atomic.Int64
	sc       *classify.ShardedCollector
	merger   *classify.Merger
	store    *classify.MemStore
	semi     *classify.LiveSemi
	userSet  map[int32]struct{}
	fqdnSet  map[uint32]struct{}
	truthA   *core.Analysis
	ipmapA   *core.Analysis
	maxmindA *core.Analysis
	epochs   []EpochStat
	closed   bool
	// internClone caches the last published interner clone; reused while
	// no new FQDN interns (see buildSnapshot).
	internClone    *classify.Interner
	internCloneLen int

	snap atomic.Pointer[Snapshot]

	// Durability state (nil / zero for a memory-only collector). walErr
	// poisons ingestion after a journal failure: the WAL tail may be
	// torn, so acknowledging further uploads would promise durability
	// the journal can no longer deliver.
	wal    *wal.WAL
	walErr error
	// walSinceCkpt counts journaled record bytes not yet covered by a
	// checkpoint (reset when one is written); Config.CheckpointBytes
	// triggers auto-checkpoints off it. lastCkptBytes and lastCkptErr
	// describe the most recent checkpoint attempt. All three are written
	// under mu but read atomically by the lock-free /v1/stats path.
	walSinceCkpt  atomic.Int64
	lastCkptBytes atomic.Int64
	lastCkptErr   atomic.Pointer[string]
	// ready gates uploads: memory-only collectors are born ready,
	// durable ones flip ready when Recover completes. draining gates
	// uploads during graceful shutdown. The rec* counters feed the
	// /readyz recovery-progress body without taking mu.
	ready        atomic.Bool
	draining     atomic.Bool
	recCkptEpoch atomic.Int64
	recSegTotal  atomic.Int64
	recSegDone   atomic.Int64
	recRecords   atomic.Int64

	started time.Time
	// metrics counters (atomic: the /metrics handler reads them without
	// the ingest lock).
	mBatches   atomic.Int64
	mEvents    atomic.Int64
	mDupEvents atomic.Int64
	mSeqGaps   atomic.Int64
	mRejected  atomic.Int64
}

// NewCollector wires a collector over a world built by
// scenario.BuildWorld with the same Seed/Scale the uploading clients
// simulate. The world is read-only to the collector; several collectors
// may share one.
func NewCollector(world *scenario.Scenario, cfg Config) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		world:    world,
		cfg:      cfg,
		users:    make(map[int32]*browser.User, len(world.Users)),
		pubs:     make(map[string]*webgraph.Publisher, len(world.Graph.Publishers)),
		nextSeq:  make(map[int32]uint64),
		pending:  make(map[int32][]Event),
		userSet:  make(map[int32]struct{}),
		fqdnSet:  make(map[uint32]struct{}),
		truthA:   core.NewAnalysis(),
		ipmapA:   core.NewAnalysis(),
		maxmindA: core.NewAnalysis(),
		started:  time.Now(),
	}
	for _, u := range world.Users {
		c.users[int32(u.ID)] = u
	}
	for _, p := range world.Graph.Publishers {
		c.pubs[p.Domain] = p
	}
	c.sc = classify.NewShardedCollector(world.Graph, world.EasyList, world.EasyPrivacy, world.Start, cfg.Workers)
	var sink *classify.MemStore
	if cfg.Compress {
		sink = classify.NewMemStoreCompressed(cfg.ChunkRows)
	} else if cfg.ChunkRows > 0 {
		sink = classify.NewMemStoreChunked(cfg.ChunkRows)
	} else {
		sink = classify.NewMemStore()
	}
	c.store = sink
	c.merger = classify.NewMerger(world.Start, sink, 0)
	c.semi = classify.NewLiveSemi(c.merger.Dataset(), cfg.Workers)
	c.snap.Store(c.buildSnapshot(nil, 0, nil))
	c.ready.Store(cfg.DataDir == "")
	return c
}

// World returns the collector's read-only world scenario.
func (c *Collector) World() *scenario.Scenario { return c.world }

// Close releases the fixpoint worker pool. Pending (uncommitted) events
// are dropped; call Flush first to keep them.
func (c *Collector) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		c.semi.Close()
		if c.wal != nil {
			c.wal.Close()
		}
	}
}

// UploadResult reports what one Ingest call did.
type UploadResult struct {
	// Accepted is the number of events newly accepted from the batch.
	Accepted int `json:"accepted"`
	// Duplicate is the number of already-seen events skipped (the
	// at-least-once retransmit case).
	Duplicate int `json:"duplicate"`
	// NextSeq is the user's next expected sequence number.
	NextSeq uint64 `json:"next_seq"`
	// Epoch and Rows describe the committed state after the call.
	Epoch int `json:"epoch"`
	Rows  int `json:"rows"`
}

// validate rejects a batch with an unknown user, an unknown publisher
// domain, or a malformed event, before any sequence state advances.
func (c *Collector) validate(b Batch) error {
	if _, ok := c.users[b.User]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownUser, b.User)
	}
	for i, ev := range b.Events {
		if ev.Kind != KindVisit && ev.Kind != KindRequest {
			return fmt.Errorf("%w: event %d has kind 0x%02x", ErrBadEvent, i, ev.Kind)
		}
		if _, ok := c.pubs[ev.Publisher]; !ok {
			return fmt.Errorf("%w: event %d: %q", ErrUnknownPublisher, i, ev.Publisher)
		}
		if ev.Kind == KindRequest && ev.FQDN == "" {
			return fmt.Errorf("%w: event %d has empty FQDN", ErrBadEvent, i)
		}
	}
	return nil
}

// Ingest accepts one upload batch. Re-sent events (sequence numbers the
// user already uploaded) are skipped, so clients may retransmit freely;
// a batch starting beyond the user's next sequence number returns
// ErrSequenceGap and changes nothing. Crossing the epoch threshold
// commits the pending events synchronously and publishes the snapshot
// before returning.
func (c *Collector) Ingest(b Batch) (UploadResult, error) {
	c.mBatches.Add(1)
	if err := c.validate(b); err != nil {
		c.mRejected.Add(1)
		return UploadResult{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.closed:
		return UploadResult{}, ErrClosed
	case !c.ready.Load():
		return UploadResult{}, ErrNotReady
	case c.draining.Load():
		return UploadResult{}, ErrDraining
	}
	return c.ingestLocked(b, true)
}

// ingestLocked is the sequencing core of Ingest, called with c.mu held.
// WAL recovery replays journaled batches through it with journal=false:
// same dedup, same epoch commits, no re-journaling.
func (c *Collector) ingestLocked(b Batch, journal bool) (UploadResult, error) {
	next := c.nextSeq[b.User]
	if b.Seq > next {
		c.mSeqGaps.Add(1)
		return UploadResult{}, fmt.Errorf("%w: user %d sent seq %d, expected %d",
			ErrSequenceGap, b.User, b.Seq, next)
	}
	res := UploadResult{NextSeq: next}
	end := b.Seq + uint64(len(b.Events))
	if end > next {
		skip := int(next - b.Seq)
		fresh := b.Events[skip:]
		if journal && c.wal != nil {
			// Journal the accepted suffix before any state changes: a
			// crash after the append replays it, a crash before never
			// acknowledged it. Only the fresh suffix is journaled, so
			// replay needs no dedup beyond the normal sequence floors.
			if c.walErr != nil {
				return UploadResult{}, c.walErr
			}
			rec := EncodeBinary(Batch{User: b.User, Seq: next, Events: fresh})
			if _, err := c.wal.Append(rec); err != nil {
				c.walErr = fmt.Errorf("%w: %v", ErrJournal, err)
				return UploadResult{}, c.walErr
			}
			c.walSinceCkpt.Add(int64(len(rec)))
		}
		c.pending[b.User] = append(c.pending[b.User], fresh...)
		c.pendingN.Add(int64(len(fresh)))
		c.nextSeq[b.User] = end
		res.Accepted = len(fresh)
		res.Duplicate = skip
		res.NextSeq = end
	} else {
		res.Duplicate = len(b.Events)
	}
	c.mEvents.Add(int64(res.Accepted))
	c.mDupEvents.Add(int64(res.Duplicate))
	if c.pendingN.Load() >= int64(c.cfg.EpochEvents) {
		c.commitEpoch()
	}
	// Checkpoint cadence by WAL bytes: once the uncovered journal
	// exceeds the threshold, commit whatever is pending and cut a
	// checkpoint inline. Gated on readiness so WAL replay (which also
	// flows through here) never checkpoints — and GCs segments — out
	// from under the recovery loop iterating them. A failed
	// auto-checkpoint must not fail the upload that happened to trip
	// the threshold: the journal already holds the accepted batch, so
	// durability is intact; the error is surfaced via /v1/stats and
	// retried at the next threshold crossing.
	if journal && c.wal != nil && c.walErr == nil && c.cfg.CheckpointBytes > 0 &&
		c.walSinceCkpt.Load() >= c.cfg.CheckpointBytes && c.ready.Load() {
		if c.pendingN.Load() > 0 {
			c.commitEpoch()
		}
		if err := c.checkpointLocked(); err != nil {
			msg := err.Error()
			c.lastCkptErr.Store(&msg)
		}
	}
	snap := c.snap.Load()
	res.Epoch, res.Rows = snap.Epoch(), snap.Rows()
	return res, nil
}

// Flush commits any pending events as an epoch regardless of the
// threshold and returns the published snapshot.
func (c *Collector) Flush() *Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingN.Load() > 0 && !c.closed {
		c.commitEpoch()
	}
	return c.snap.Load()
}

// Snapshot returns the latest published epoch snapshot. It never
// blocks: the pointer swaps atomically at epoch commit.
func (c *Collector) Snapshot() *Snapshot { return c.snap.Load() }

// Epochs returns the commit history (a copy).
func (c *Collector) Epochs() []EpochStat {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]EpochStat, len(c.epochs))
	copy(out, c.epochs)
	return out
}

// commitEpoch merges the pending events into the live dataset and
// publishes a new snapshot. Called with c.mu held.
//
// Determinism: the pending users are processed in ascending user id,
// each user's events in sequence order, and the per-shard classify
// results merge back in that same user order — so the dataset depends
// only on the event streams, never on upload interleaving inside the
// epoch or on Workers. A client that replays a batch simulation's
// events in stream order therefore reconstructs the batch dataset
// byte for byte (modulo the SemiReferrer/SemiKeyword label split; see
// classify.LiveSemi).
func (c *Collector) commitEpoch() {
	userIDs := make([]int32, 0, len(c.pending))
	for u := range c.pending {
		userIDs = append(userIDs, u)
	}
	sort.Slice(userIDs, func(i, j int) bool { return userIDs[i] < userIDs[j] })

	// Fan the users over the classification shards: worker w takes
	// users[w], users[w+W], ... Stage-1 classification, interning and
	// row building run in parallel with per-shard caches.
	w := c.cfg.Workers
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sh := c.sc.Shard(i)
			for j := i; j < len(userIDs); j += w {
				c.feedUser(sh, userIDs[j], c.pending[userIDs[j]])
			}
		}(i)
	}
	wg.Wait()

	// Merge in global user order: user j sits at capture j/W of shard
	// j%W because each shard saw its users in ascending order.
	prevRows := c.store.Len()
	for j := range userIDs {
		c.merger.AppendCapture(c.sc.Shard(j%w), j/w)
	}
	events := int(c.pendingN.Load())
	for u := range c.pending {
		delete(c.pending, u)
	}
	c.pendingN.Store(0)
	for i := 0; i < w; i++ {
		c.sc.Shard(i).ResetCaptures()
	}

	// Incremental classification stages 2+3, then the per-epoch
	// aggregate deltas: every row that became tracking this epoch —
	// appended or flipped — joins the three flow maps, and the new rows
	// extend the dataset-stats sets.
	flips := c.semi.Extend()
	ds := c.merger.Dataset()
	c.applyDeltas(prevRows, flips)

	c.epochs = append(c.epochs, EpochStat{
		Epoch:  len(c.epochs) + 1,
		Rows:   ds.Len(),
		Events: events,
		Flips:  len(flips),
		At:     time.Now().Unix(),
	})
	c.snap.Store(c.buildSnapshot(c.snap.Load(), prevRows, flips2chunks(flips, c.store.ChunkRows())))
}

// feedUser replays one user's accepted events into a classify shard,
// reconstructing the browser capture stream the extension observed.
func (c *Collector) feedUser(sh *classify.Shard, uid int32, events []Event) {
	u := c.users[uid]
	for _, ev := range events {
		pub := c.pubs[ev.Publisher]
		at := time.Unix(ev.At, 0).UTC()
		if ev.Kind == KindVisit {
			sh.OnVisit(u, pub, at)
			continue
		}
		sh.OnRequest(browser.Event{
			User:      u,
			Publisher: pub,
			Call: rtb.Call{
				FQDN:    ev.FQDN,
				Path:    ev.Path,
				HasArgs: ev.HasArgs,
				RefFQDN: ev.RefFQDN,
			},
			IP:    netsim.IP(ev.IP),
			At:    at,
			HTTPS: ev.HTTPS,
		})
	}
}

// applyDeltas folds the epoch into the running aggregates: the
// dataset-stats distinct sets over the appended rows, and one flow-map
// delta per geolocation service over exactly the rows that became
// tracking this epoch. Merging deltas is exact — counter addition
// commutes — so the running analyses always equal a full core.Analyze
// rescan of the live dataset (TestIncrementalAggregatesMatchRescan).
func (c *Collector) applyDeltas(prevRows int, flips []int) {
	ds := c.merger.Dataset()
	st := c.store
	chunkRows := st.ChunkRows()
	dTruth, dIPMap, dMaxMind := core.NewAnalysis(), core.NewAnalysis(), core.NewAnalysis()
	addRow := func(ch *classify.Chunk, i int) {
		src := ds.Countries[ch.Country[i]]
		ip := ch.IP[i]
		if loc, ok := c.world.Truth.Locate(ip); ok {
			dTruth.Add(src, loc.Country, 1)
		} else {
			dTruth.AddUnknown(1)
		}
		if loc, ok := c.world.IPMap.Locate(ip); ok {
			dIPMap.Add(src, loc.Country, 1)
		} else {
			dIPMap.AddUnknown(1)
		}
		if loc, ok := c.world.MaxMind.Locate(ip); ok {
			dMaxMind.Add(src, loc.Country, 1)
		} else {
			dMaxMind.AddUnknown(1)
		}
	}

	buf := classify.GetChunk()
	defer classify.PutChunk(buf)
	firstChunk := prevRows / chunkRows
	for ci := firstChunk; ci < st.NumChunks(); ci++ {
		ch := classify.MustChunk(st, ci, buf)
		base := ci * chunkRows
		lo := 0
		if base < prevRows {
			lo = prevRows - base
		}
		for i := lo; i < ch.Len(); i++ {
			c.userSet[ch.User[i]] = struct{}{}
			c.fqdnSet[ch.FQDN[i]] = struct{}{}
			if ch.Class[i].IsTracking() {
				addRow(ch, i)
			}
		}
	}
	// flips arrive sorted (LiveSemi.Extend), so the flipped rows group
	// into per-chunk runs and each touched chunk decodes once.
	for k := 0; k < len(flips); {
		ci := flips[k] / chunkRows
		ch := classify.MustChunk(st, ci, buf)
		for ; k < len(flips) && flips[k]/chunkRows == ci; k++ {
			addRow(ch, flips[k]%chunkRows)
		}
	}
	c.truthA.Merge(dTruth)
	c.ipmapA.Merge(dIPMap)
	c.maxmindA.Merge(dMaxMind)
}

// flips2chunks maps flipped global row indices to their chunk indices.
func flips2chunks(flips []int, chunkRows int) map[int]struct{} {
	if len(flips) == 0 {
		return nil
	}
	out := make(map[int]struct{})
	for _, g := range flips {
		out[g/chunkRows] = struct{}{}
	}
	return out
}
