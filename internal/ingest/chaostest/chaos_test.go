// Package chaostest is the cluster-level chaos harness: it runs a
// three-shard durable cluster and a fan-in merge tier fully in-process,
// under a deterministic seeded fault schedule that spans every
// injection seam at once — the upload link (latency, connection resets,
// responses lost after the server applied them, truncated and corrupted
// bodies, 503 bursts), the fan-in pull link (same faults against
// /v1/snapshot), and each shard's filesystem (short WAL writes, fsync
// failures, torn checkpoint renames). A supervisor per shard restarts
// its collector whenever a journal fault poisons it, the retrying
// clients ride through everything, and after the injector heals the
// harness asserts the merged cluster serves every experiment artifact
// byte-identical to the uninterrupted batch study. Two fixed chaos
// seeds run as subtests; each asserts every fault site actually fired,
// so the schedule can't silently rot into a no-op.
package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossborder"
	"crossborder/internal/chaos"
	"crossborder/internal/cluster"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

const (
	worldSeed   = 1
	worldScale  = 0.05
	worldVisits = 40
)

// chaosSeeds are the two fixed fault schedules CI runs. Changing a
// seed changes which requests and writes get faulted, never whether
// the cluster converges.
var chaosSeeds = []uint64{0xC0FFEE, 0x0DECAF}

// transport fault rates for the upload link and the fan-in pull link.
// High enough that every site fires hundreds of draws into a run (the
// harness asserts it), low enough that forward progress dominates.
var clientFaults = chaos.TransportFaults{
	Latency: 0.05, MaxLatency: 5 * time.Millisecond,
	Reset: 0.05, LostResponse: 0.05,
	Truncate: 0.05, Corrupt: 0.05,
	Err503: 0.02, BurstLen: 2,
}

// The fan-in link sees far fewer requests than the upload link (one
// poll per shard every 400ms), so its 503 rate is much higher to keep
// the site hot within a run's draw budget.
var faninFaults = chaos.TransportFaults{
	Latency: 0.05, MaxLatency: 5 * time.Millisecond,
	Reset: 0.06, LostResponse: 0.06,
	Truncate: 0.06, Corrupt: 0.06,
	Err503: 0.15, BurstLen: 2,
}

// fsFaults tears the write path of every shard. Short writes poison
// the WAL (the supervisor rebuilds and recovers); sync failures are
// absorbed by the interval policy's best-effort flusher; rename
// failures tear checkpoint publishes, which stay transient because the
// WAL still covers everything.
// (Rates are calibrated to the draw volume: Append draws ShortWrite
// twice per record, so even 0.004 poisons each shard several times per
// run, while RenameFail only sees the ~30 checkpoint publishes.)
var fsFaults = chaos.FSFaults{ShortWrite: 0.004, SyncFail: 0.05, RenameFail: 0.5}

// swapHandler lets the supervisor replace a shard's handler atomically
// while its httptest server (and address) stays up — the in-process
// analogue of restarting a daemon behind a stable listen address.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (s *swapHandler) set(h http.Handler) { s.h.Store(&h) }
func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*s.h.Load()).ServeHTTP(w, r)
}

var stub503 = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", "1")
	http.Error(w, "chaos: shard restarting", http.StatusServiceUnavailable)
})

// shardRig is one durable shard: collector on a faulted filesystem,
// HTTP server with a swappable handler, and the supervisor bookkeeping.
type shardRig struct {
	node string
	cfg  ingest.Config
	h    *swapHandler
	srv  *httptest.Server
	logf func(format string, args ...any)

	mu         sync.Mutex
	c          *ingest.Collector
	restarts   int
	recoveryMs []int64
}

func serverFor(c *ingest.Collector) http.Handler {
	return ingest.NewServer(c, ingest.WithLimits(ingest.Limits{
		MaxInFlight: 8, UploadTimeout: 10 * time.Second,
	}))
}

func newShardRig(t *testing.T, world *scenario.Scenario, node string, fs chaos.FS) *shardRig {
	t.Helper()
	s := &shardRig{
		node: node,
		logf: t.Logf,
		cfg: ingest.Config{
			EpochEvents: 1777, Workers: 2,
			DataDir: t.TempDir(), WALSync: "interval",
			WALSyncInterval: 20 * time.Millisecond,
			WALSegmentBytes: 256 << 10, // rotation under fire
			CheckpointBytes: 256 << 10, // frequent torn-rename draws
			FS:              fs,
		},
		h: &swapHandler{},
	}
	// Initial bring-up runs through the faulted filesystem too, so it
	// can fail (a torn fsync on the first segment create, say); retry
	// like the supervisor would restart a daemon that died on boot.
	var c *ingest.Collector
	for try := 1; ; try++ {
		c = ingest.NewCollector(world, s.cfg)
		if _, err := c.Recover(); err == nil {
			break
		} else if try >= 50 {
			t.Fatalf("shard %s: initial recover (attempt %d): %v", node, try, err)
		} else {
			s.logf("shard %s: initial recover attempt %d: %v", node, try, err)
			c.Close()
		}
	}
	s.c = c
	s.h.set(serverFor(c))
	s.srv = httptest.NewServer(s.h)
	t.Cleanup(func() {
		s.srv.Close()
		s.collector().Close()
	})
	return s
}

func (s *shardRig) collector() *ingest.Collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c
}

// supervise watches for a poisoned journal and restarts the shard:
// swap in a 503 stub (in-flight and new uploads bounce, clients
// retry), close the broken collector, rebuild + recover on the same
// data dir — through the same faulted filesystem — and swap the fresh
// server back in. Recovery itself can be faulted (a rotation fsync,
// say), so it retries until it lands.
func (s *shardRig) supervise(world *scenario.Scenario, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(10 * time.Millisecond):
		}
		c := s.collector()
		if c.JournalError() == nil {
			continue
		}
		s.logf("shard %s: journal poisoned: %v", s.node, c.JournalError())
		s.h.set(stub503)
		c.Close()
		start := time.Now()
		var fresh *ingest.Collector
		for try := 1; ; try++ {
			nc := ingest.NewCollector(world, s.cfg)
			if _, err := nc.Recover(); err == nil {
				fresh = nc
				break
			} else if try <= 3 || try%50 == 0 {
				s.logf("shard %s: recovery attempt %d: %v", s.node, try, err)
			}
			nc.Close()
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
		s.mu.Lock()
		s.c = fresh
		s.restarts++
		s.recoveryMs = append(s.recoveryMs, time.Since(start).Milliseconds())
		n := s.restarts
		s.mu.Unlock()
		s.h.set(serverFor(fresh))
		s.logf("shard %s: restart %d recovered in %v", s.node, n, time.Since(start).Round(time.Millisecond))
	}
}

// chaosReport is the CHAOS_report.json artifact CI uploads: per-site
// fault counts and per-shard recovery timings for each seeded run.
type chaosReport struct {
	WorldSeed   int64      `json:"world_seed"`
	WorldScale  float64    `json:"world_scale"`
	Runs        []chaosRun `json:"runs"`
	GeneratedBy string     `json:"generated_by"`
}

type chaosRun struct {
	ChaosSeed    uint64             `json:"chaos_seed"`
	Restarts     map[string]int     `json:"restarts"`
	RecoveryMs   map[string][]int64 `json:"recovery_ms"`
	UploadSecs   float64            `json:"upload_secs"`
	ConvergeSecs float64            `json:"converge_secs"`
	Sites        []chaos.SiteReport `json:"sites"`
}

func subset(evs map[int32][]ingest.Event, users []int32) map[int32][]ingest.Event {
	out := make(map[int32][]ingest.Event, len(users))
	for _, uid := range users {
		out[uid] = evs[uid]
	}
	return out
}

// TestChaosClusterGoldenParity is the chaos acceptance test: a
// three-shard cluster plus fan-in runs an entire replayed study under
// the seeded fault schedule, heals, and must serve all experiment
// artifacts byte-identical to the uninterrupted batch study — while
// every fault site is proven to have fired at least once.
func TestChaosClusterGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness is not short")
	}

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(worldSeed),
		crossborder.WithScale(worldScale),
		crossborder.WithVisitsPerUser(worldVisits))
	if err != nil {
		t.Fatal(err)
	}
	want := study.RenderAll()
	ids := crossborder.ExperimentIDs()

	world := scenario.BuildWorld(scenario.Params{Seed: worldSeed, Scale: worldScale, VisitsPerUser: worldVisits})
	events := ingest.RecordSimulation(world, worldVisits, 3)

	nodes := []string{"c0", "c1", "c2"}
	ring, err := cluster.NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := ring.Partition(sortedUsers(events))
	for _, n := range nodes {
		if len(parts[n]) == 0 {
			t.Fatalf("shard %s owns no users; scale the rig up", n)
		}
	}

	report := chaosReport{WorldSeed: worldSeed, WorldScale: worldScale, GeneratedBy: "internal/ingest/chaostest"}

	for _, chaosSeed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed-%#x", chaosSeed), func(t *testing.T) {
			inj := chaos.New(chaosSeed)
			clientRT := chaos.NewTransport(inj, "client", clientFaults, nil)
			faninRT := chaos.NewTransport(inj, "fanin", faninFaults, nil)

			shards := make(map[string]*shardRig, len(nodes))
			for _, n := range nodes {
				shards[n] = newShardRig(t, world, n, chaos.NewFaultFS(inj, n, fsFaults, nil))
			}

			// Record the run in the report even when an assertion below
			// fails — a diagnosable artifact beats an empty one.
			var uploadSecs, convergeSecs float64
			defer func() {
				run := chaosRun{
					ChaosSeed: chaosSeed, Restarts: map[string]int{}, RecoveryMs: map[string][]int64{},
					UploadSecs: uploadSecs, ConvergeSecs: convergeSecs, Sites: inj.Report(),
				}
				for _, s := range shards {
					s.mu.Lock()
					run.Restarts[s.node] = s.restarts
					run.RecoveryMs[s.node] = s.recoveryMs
					s.mu.Unlock()
				}
				report.Runs = append(report.Runs, run)
			}()

			stop := make(chan struct{})
			defer close(stop)
			for _, s := range shards {
				go s.supervise(world, stop)
			}

			reg := cluster.NewRegistry(3*time.Second, 10*time.Second)
			beat := func() {
				for _, s := range shards {
					reg.Observe(cluster.Heartbeat{Node: s.node, Addr: s.srv.URL})
				}
			}
			fanin := &cluster.Fanin{
				World: world, Registry: reg, Shards: nodes, Workers: 2,
				HTTP:         &http.Client{Transport: faninRT, Timeout: 10 * time.Second},
				BreakerFails: 3, BreakerCooldown: 100 * time.Millisecond,
				StaleAfter: time.Second,
			}
			// Poll the shards under fire the way mergerd's loop would; the
			// published view degrades and recovers as the breakers trip.
			pollStop := make(chan struct{})
			pollDone := make(chan struct{})
			go func() {
				defer close(pollDone)
				for {
					select {
					case <-pollStop:
						return
					case <-time.After(400 * time.Millisecond):
						beat()
						fanin.RefreshOnce()
					}
				}
			}()

			// Replay the full study through the faulted link, one uploader
			// per shard, with retry budgets sized to outlast restarts and
			// 503 bursts.
			newClient := func(s *shardRig) *ingest.Client {
				return &ingest.Client{
					Base: s.srv.URL, Binary: true,
					HTTP: &http.Client{Transport: clientRT, Timeout: 10 * time.Second},
					Retry: &ingest.RetryPolicy{
						MaxAttempts: 1000, BaseDelay: 2 * time.Millisecond, MaxDelay: 100 * time.Millisecond,
					},
				}
			}
			upStart := time.Now()
			var wg sync.WaitGroup
			upErr := make(chan error, len(nodes))
			for _, n := range nodes {
				wg.Add(1)
				go func(s *shardRig, users []int32) {
					defer wg.Done()
					if _, err := newClient(s).Replay(subset(events, users), 128, 1); err != nil {
						upErr <- fmt.Errorf("shard %s: %w", s.node, err)
					}
				}(shards[n], parts[n])
			}
			wg.Wait()
			close(upErr)
			for err := range upErr {
				t.Fatal(err)
			}
			uploadSecs = time.Since(upStart).Seconds()

			// Heal, then one clean re-replay per shard: in-process nothing
			// acknowledged can be lost, but the re-send proves it — every
			// record dedups or fills a hole, exactly the client contract.
			inj.Heal()
			for _, n := range nodes {
				if _, err := newClient(shards[n]).Replay(subset(events, parts[n]), 768, 1); err != nil {
					t.Fatalf("healing re-replay %s: %v", n, err)
				}
				if _, _, err := newClient(shards[n]).Flush(); err != nil {
					t.Fatalf("flush %s: %v", n, err)
				}
			}

			// Converge the fan-in on the final shard epochs.
			close(pollStop)
			<-pollDone
			convStart := time.Now()
			target := make(map[string]int, len(nodes))
			for _, n := range nodes {
				target[n] = shards[n].collector().Snapshot().Epoch()
			}
			deadline := time.Now().Add(60 * time.Second)
			for {
				beat()
				if _, err := fanin.RefreshOnce(); err != nil {
					t.Logf("converging refresh: %v", err)
				}
				ok := fanin.Ready() == nil
				for _, h := range fanin.Health() {
					if h.Epoch != target[h.Node] {
						ok = false
					}
				}
				if ok {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("fan-in never converged; health %+v target %v", fanin.Health(), target)
				}
				time.Sleep(10 * time.Millisecond)
			}
			convergeSecs = time.Since(convStart).Seconds()

			// The merged cluster view must serve every artifact
			// byte-identical to the uninterrupted batch study.
			qsrv := httptest.NewServer(ingest.NewQueryServer(fanin.Snapshot, fanin.Ready))
			defer qsrv.Close()
			qcl := &ingest.Client{Base: qsrv.URL}
			for i, id := range ids {
				text, _, err := qcl.Artifact(id)
				if err != nil {
					t.Fatalf("artifact %s: %v", id, err)
				}
				if text != want[i] {
					t.Errorf("artifact %s differs from the batch study", id)
				}
			}

			// The schedule must have exercised every seam: a site that
			// never fired is a dead injection point, not a passing test.
			sites := inj.Report()
			for _, sr := range sites {
				if sr.Fired == 0 {
					t.Errorf("fault site %s never fired (%d draws); raise its rate or the load", sr.Site, sr.Draws)
				}
			}
			totalRestarts := 0
			for _, s := range shards {
				s.mu.Lock()
				totalRestarts += s.restarts
				s.mu.Unlock()
			}
			t.Logf("seed %#x: %d shard restarts, upload %.1fs, converge %.2fs, %d fault sites live",
				chaosSeed, totalRestarts, uploadSecs, convergeSecs, len(sites))
		})
	}

	if path := os.Getenv("CHAOSTEST_REPORT"); path != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		t.Logf("chaos report written to %s", path)
	}
}

func sortedUsers(evs map[int32][]ingest.Event) []int32 {
	users := make([]int32, 0, len(evs))
	for uid := range evs {
		users = append(users, uid)
	}
	for i := 1; i < len(users); i++ {
		for j := i; j > 0 && users[j] < users[j-1]; j-- {
			users[j], users[j-1] = users[j-1], users[j]
		}
	}
	return users
}
