package ingest

import (
	"encoding/binary"
	"fmt"
)

// The compact binary framing: a fixed magic, the batch header as
// uvarints, then one length-prefixed frame per event. Strings are
// uvarint-length-prefixed UTF-8. The format exists because NDJSON costs
// ~3x the bytes and a JSON decode per event on the hot upload path.
//
//	"XBB1" | uvarint user | uvarint seq | uvarint count
//	count × ( uvarint frameLen | frame )
//	frame: kind(1) | uvarint at | str pub
//	       requests append: str fqdn | str path | str ref |
//	                        ip(4, big-endian) | flags(1)
//
// flags: bit0 = HTTPS, bit1 = HasArgs.
//
// The decoder is hardened against adversarial input (see FuzzDecodeBinary):
// every declared length is validated against the bytes actually present
// before any allocation, so malformed frames error out — they never
// panic and never over-allocate.

// binaryMagic introduces every binary batch.
var binaryMagic = [4]byte{'X', 'B', 'B', '1'}

const (
	flagHTTPS   = 1 << 0
	flagHasArgs = 1 << 1

	// minEventEncoded is the smallest possible encoded event: a visit
	// with empty publisher (frameLen=3: kind + at + publen).
	minEventEncoded = 4
)

// AppendBinary appends the batch's binary encoding to dst and returns
// the extended slice.
func AppendBinary(dst []byte, b Batch) []byte {
	dst = append(dst, binaryMagic[:]...)
	dst = binary.AppendUvarint(dst, uint64(uint32(b.User)))
	dst = binary.AppendUvarint(dst, b.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(b.Events)))
	var frame []byte
	for _, ev := range b.Events {
		frame = frame[:0]
		frame = append(frame, ev.Kind)
		frame = binary.AppendUvarint(frame, uint64(ev.At))
		frame = appendString(frame, ev.Publisher)
		if ev.Kind == KindRequest {
			frame = appendString(frame, ev.FQDN)
			frame = appendString(frame, ev.Path)
			frame = appendString(frame, ev.RefFQDN)
			frame = binary.BigEndian.AppendUint32(frame, ev.IP)
			var fl byte
			if ev.HTTPS {
				fl |= flagHTTPS
			}
			if ev.HasArgs {
				fl |= flagHasArgs
			}
			frame = append(frame, fl)
		}
		dst = binary.AppendUvarint(dst, uint64(len(frame)))
		dst = append(dst, frame...)
	}
	return dst
}

// EncodeBinary returns the batch's binary encoding.
func EncodeBinary(b Batch) []byte { return AppendBinary(nil, b) }

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binReader walks a byte slice with explicit bounds checking; every
// read fails cleanly at the end of input.
type binReader struct {
	buf []byte
	off int
}

func (r *binReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ingest: truncated or malformed uvarint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *binReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(r.buf)-r.off {
		return nil, fmt.Errorf("ingest: declared length %d exceeds %d remaining bytes", n, len(r.buf)-r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *binReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("ingest: truncated frame at offset %d", r.off)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *binReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// DecodeBinary parses one binary batch. Malformed input — bad magic,
// truncated frames, forged counts or lengths — returns an error; the
// decoder never panics, and it never allocates more than the input
// size justifies.
func DecodeBinary(data []byte) (Batch, error) {
	r := &binReader{buf: data}
	magic, err := r.bytes(len(binaryMagic))
	if err != nil || string(magic) != string(binaryMagic[:]) {
		return Batch{}, fmt.Errorf("ingest: bad batch magic")
	}
	user, err := r.uvarint()
	if err != nil {
		return Batch{}, err
	}
	if user > 1<<31-1 {
		return Batch{}, fmt.Errorf("ingest: user id %d out of range", user)
	}
	seq, err := r.uvarint()
	if err != nil {
		return Batch{}, err
	}
	count, err := r.uvarint()
	if err != nil {
		return Batch{}, err
	}
	if count > MaxBatchEvents {
		return Batch{}, errTooManyEvents
	}
	// A forged count cannot exceed what the remaining bytes could hold,
	// and the speculative pre-allocation is capped besides — a decoded
	// Event is ~20x larger than its minimal encoding, so count alone
	// must not size the slice.
	if remain := len(data) - r.off; count > uint64(remain/minEventEncoded)+1 {
		return Batch{}, fmt.Errorf("ingest: count %d impossible for %d remaining bytes", count, remain)
	}
	hint := count
	if hint > 4096 {
		hint = 4096
	}
	b := Batch{User: int32(uint32(user)), Seq: seq, Events: make([]Event, 0, hint)}
	for i := uint64(0); i < count; i++ {
		frameLen, err := r.uvarint()
		if err != nil {
			return Batch{}, err
		}
		frame, err := r.bytes(int(frameLen))
		if err != nil {
			return Batch{}, err
		}
		ev, err := decodeFrame(frame)
		if err != nil {
			return Batch{}, fmt.Errorf("ingest: event %d: %w", i, err)
		}
		b.Events = append(b.Events, ev)
	}
	if r.off != len(data) {
		return Batch{}, fmt.Errorf("ingest: %d trailing bytes after batch", len(data)-r.off)
	}
	return b, nil
}

// decodeFrame parses one event frame.
func decodeFrame(frame []byte) (Event, error) {
	r := &binReader{buf: frame}
	kind, err := r.byte()
	if err != nil {
		return Event{}, err
	}
	at, err := r.uvarint()
	if err != nil {
		return Event{}, err
	}
	pub, err := r.str()
	if err != nil {
		return Event{}, err
	}
	ev := Event{Kind: kind, At: int64(at), Publisher: pub}
	switch kind {
	case KindVisit:
	case KindRequest:
		if ev.FQDN, err = r.str(); err != nil {
			return Event{}, err
		}
		if ev.Path, err = r.str(); err != nil {
			return Event{}, err
		}
		if ev.RefFQDN, err = r.str(); err != nil {
			return Event{}, err
		}
		ipb, err := r.bytes(4)
		if err != nil {
			return Event{}, err
		}
		ev.IP = binary.BigEndian.Uint32(ipb)
		fl, err := r.byte()
		if err != nil {
			return Event{}, err
		}
		ev.HTTPS = fl&flagHTTPS != 0
		ev.HasArgs = fl&flagHasArgs != 0
	default:
		return Event{}, fmt.Errorf("unknown event kind 0x%02x", kind)
	}
	if r.off != len(frame) {
		return Event{}, fmt.Errorf("%d trailing bytes in frame", len(frame)-r.off)
	}
	return ev, nil
}
