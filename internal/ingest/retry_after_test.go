package ingest

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientHonorsRetryAfterFloor: a 503 carrying Retry-After raises
// the next backoff above the policy's own (tiny) jitter window, and
// MaxDelay still caps what the server can demand.
func TestClientHonorsRetryAfterFloor(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1") // 1s: far beyond MaxDelay
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"epoch": 1, "rows": 0})
	}))
	defer srv.Close()

	const maxDelay = 120 * time.Millisecond
	cl := &Client{
		Base: srv.URL,
		// BaseDelay 1ms: the jittered backoff alone sleeps ~1ms, so any
		// wait near maxDelay is the Retry-After floor at work.
		Retry: &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: maxDelay},
	}
	start := time.Now()
	if _, _, err := cl.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	elapsed := time.Since(start)
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if elapsed < maxDelay {
		t.Fatalf("retried after %v; Retry-After floor (capped at %v) ignored", elapsed, maxDelay)
	}
	if elapsed > 5*maxDelay {
		t.Fatalf("retried after %v; MaxDelay cap on the Retry-After floor ignored", elapsed)
	}
}

// TestClientRetries429: admission-control rejections are transient and
// must be retried like 5xx.
func TestClientRetries429(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"epoch": 1, "rows": 0})
	}))
	defer srv.Close()
	cl := &Client{Base: srv.URL, Retry: &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}}
	if _, _, err := cl.Flush(); err != nil {
		t.Fatalf("flush after 429: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
}

// TestClientRetriesMangledResponse: a 200 whose JSON body was truncated
// or corrupted in flight is retried, not surfaced as a decode error.
func TestClientRetriesMangledResponse(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Write([]byte(`{"epoch": 1, "ro`)) // truncated mid-body
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"epoch": 1, "rows": 7})
	}))
	defer srv.Close()
	cl := &Client{Base: srv.URL, Retry: &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond}}
	_, rows, err := cl.Flush()
	if err != nil {
		t.Fatalf("flush after mangled body: %v", err)
	}
	if rows != 7 || calls.Load() != 2 {
		t.Fatalf("rows=%d calls=%d, want the second attempt's answer", rows, calls.Load())
	}
}

// TestClientGivesUpOnPermanent4xx: 4xx other than 429 still fail fast
// under a retry policy.
func TestClientGivesUpOnPermanent4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer srv.Close()
	cl := &Client{Base: srv.URL, Retry: &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}}
	_, _, err := cl.Flush()
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("want immediate 400 failure, got %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls for a permanent 400, want 1", calls.Load())
	}
}
