package ingest

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"crossborder/internal/chaos"
	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/geodata"
	"crossborder/internal/ingest/wal"
)

// This file is the durability layer of the collector: the write-ahead
// journal of accepted batches, epoch checkpoints of the committed
// state, and crash recovery (load newest checkpoint, replay the WAL
// tail). The invariants:
//
//   - Every accepted batch is journaled before it mutates collector
//     state, so an acknowledged upload survives kill -9 (under
//     -wal-sync=always; weaker policies trade the sync for throughput
//     and rely on client retries for the unsynced tail).
//   - A checkpoint captures exactly the committed state (pending
//     events are committed first) plus the id of a freshly rotated WAL
//     segment; everything before that segment is covered by the
//     checkpoint and garbage-collected after the checkpoint is
//     durable. Checkpoints are written temp + rename, so a crash
//     mid-write leaves the previous checkpoint intact.
//   - Recovery replays every WAL segment still on disk through the
//     normal ingest path with journaling disabled. Replay is
//     idempotent because the checkpointed per-user sequence floors
//     make every already-covered record a duplicate, so recovery is
//     correct at every crash point — including crashes during
//     checkpoint GC and crashes during recovery itself.
//
// The golden property (TestCrashRecovery in internal/ingest/crashtest)
// is that a collector killed at any point and recovered serves
// artifacts byte-identical to one that never crashed.

// Durability errors. The HTTP layer maps ErrNotReady and ErrDraining
// to 503 with Retry-After, ErrJournal to 500.
var (
	// ErrNotReady: the collector is durable and Recover has not
	// completed; uploads must wait for readiness.
	ErrNotReady = errors.New("ingest: recovering, not ready for uploads")
	// ErrDraining: the collector is shutting down gracefully and no
	// longer accepts uploads.
	ErrDraining = errors.New("ingest: draining for shutdown")
	// ErrJournal: a WAL append failed. The collector fails stop — the
	// journal tail may be torn, so accepting further uploads could
	// acknowledge data a restart would refuse to replay.
	ErrJournal = errors.New("ingest: write-ahead journal failed")
)

// ckptMagic opens every checkpoint file, followed by a CRC32C
// (Castagnoli) over the body.
var ckptMagic = [5]byte{'X', 'C', 'K', 'P', '1'}

var ckptCastagnoli = crc32.MakeTable(crc32.Castagnoli)

const ckptPattern = "checkpoint-%08d.ckpt"

func ckptName(epoch int) string { return fmt.Sprintf(ckptPattern, epoch) }

// seqFloor persists one user's next expected sequence number.
type seqFloor struct {
	User int32  `json:"user"`
	Next uint64 `json:"next"`
}

// analysisState persists one incrementally merged flow map.
type analysisState struct {
	Flows   []core.FlowCount `json:"flows"`
	Unknown int64            `json:"unknown"`
}

// ckptMeta is the JSON head of a checkpoint: everything except the
// chunk blocks. Identity fields (seed/scale/layout) let recovery
// refuse a checkpoint written by a differently configured collector
// instead of silently diverging.
type ckptMeta struct {
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	StartUnix int64   `json:"start_unix"`
	ChunkRows int     `json:"chunk_rows"`
	Compress  bool    `json:"compress"`

	Rows      int         `json:"rows"`
	Visits    int         `json:"visits"`
	ChunkLens []int       `json:"chunk_lens"`
	Epochs    []EpochStat `json:"epochs"`

	Seqs       []seqFloor `json:"seqs"`
	Countries  []string   `json:"countries"`
	Publishers []string   `json:"publishers"`
	FQDNs      []string   `json:"fqdns"`

	LTF         []uint32 `json:"ltf"`
	Cand        []int    `json:"cand"`
	SettledRows int      `json:"settled_rows"`

	Users    []int32  `json:"users"`
	FQDNSeen []uint32 `json:"fqdn_seen"`

	Truth   analysisState `json:"truth"`
	IPMap   analysisState `json:"ipmap"`
	MaxMind analysisState `json:"maxmind"`

	// WALSeg is the first WAL segment NOT covered by this checkpoint:
	// the segment rotated in immediately before the checkpoint was
	// built. Segments below it are garbage once the checkpoint is
	// durable. Recovery replays every segment still present — replay
	// is idempotent — so WALSeg only drives GC, never correctness.
	WALSeg int `json:"wal_seg"`
}

// walDir returns the journal directory under the data dir.
func walDir(dataDir string) string { return filepath.Join(dataDir, "wal") }

// walOptions maps the collector config to WAL options.
func (c Config) walOptions() (wal.Options, error) {
	pol := wal.SyncInterval
	if c.WALSync != "" {
		var err error
		if pol, err = wal.ParsePolicy(c.WALSync); err != nil {
			return wal.Options{}, err
		}
	}
	return wal.Options{
		Policy:       pol,
		Interval:     c.WALSyncInterval,
		SegmentBytes: c.WALSegmentBytes,
		FS:           c.FS,
	}, nil
}

// JournalError returns the error that poisoned the journal, or nil
// while the collector is healthy. A poisoned collector fails every
// Ingest with ErrJournal until it is rebuilt and recovered; the chaos
// harness's supervisor polls this to know when to restart a shard.
func (c *Collector) JournalError() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.walErr
}

// Durable reports whether the collector journals and checkpoints
// (Config.DataDir was set and Recover opened the WAL).
func (c *Collector) Durable() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal != nil
}

// Ready reports whether the collector accepts uploads: memory-only
// collectors are born ready; durable ones become ready when Recover
// completes.
func (c *Collector) Ready() bool { return c.ready.Load() }

// BeginDrain stops upload acceptance for a graceful shutdown: every
// subsequent Ingest fails with ErrDraining (503 + Retry-After over
// HTTP) while queries keep serving. In-flight uploads finish normally;
// the caller then commits the final epoch with FlushCheckpoint.
func (c *Collector) BeginDrain() { c.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (c *Collector) Draining() bool { return c.draining.Load() }

// RecoveryProgress is the /readyz view of a recovery in flight:
// operators watch segments replayed converge on the total.
type RecoveryProgress struct {
	Ready            bool  `json:"ready"`
	CheckpointEpoch  int   `json:"checkpoint_epoch"`
	SegmentsTotal    int   `json:"segments_total"`
	SegmentsReplayed int   `json:"segments_replayed"`
	RecordsReplayed  int64 `json:"records_replayed"`
}

// Recovery returns the current recovery progress. Lock-free: the
// readiness endpoint polls it while Recover holds the ingest lock.
func (c *Collector) Recovery() RecoveryProgress {
	return RecoveryProgress{
		Ready:            c.ready.Load(),
		CheckpointEpoch:  int(c.recCkptEpoch.Load()),
		SegmentsTotal:    int(c.recSegTotal.Load()),
		SegmentsReplayed: int(c.recSegDone.Load()),
		RecordsReplayed:  c.recRecords.Load(),
	}
}

// RecoveryStats summarizes a completed Recover.
type RecoveryStats struct {
	CheckpointEpoch int           // 0 = started from an empty checkpoint
	Segments        int           // WAL segments replayed
	Records         int64         // WAL records replayed (including duplicates)
	Rows            int           // dataset rows after recovery
	Duration        time.Duration // wall time of the whole recovery
}

// Recover brings a durable collector to readiness: it loads the newest
// valid checkpoint under DataDir, opens the WAL (truncating a torn
// tail), replays every surviving record through the normal dedup path,
// and only then marks the collector ready. Memory-only collectors
// return immediately. Recover must be called exactly once, before any
// Ingest; the HTTP server may already be serving (uploads fail with
// ErrNotReady until recovery completes, /readyz reports progress).
func (c *Collector) Recover() (RecoveryStats, error) {
	start := time.Now()
	var stats RecoveryStats
	if c.cfg.DataDir == "" {
		return stats, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ready.Load() {
		return stats, errors.New("ingest: Recover called twice")
	}
	if err := c.cfg.fs().MkdirAll(c.cfg.DataDir, 0o755); err != nil {
		return stats, err
	}

	// The newest checkpoint must load. No falling back to an older one
	// or to WAL-only: writing a checkpoint garbage-collects the WAL
	// prefix it covers, so once any checkpoint exists, recovering
	// without the newest could silently drop that prefix. A crash never
	// tears a checkpoint (temp + rename), so an unreadable one means
	// disk corruption — fail loudly, like mid-WAL corruption.
	epochs, err := listCheckpoints(c.cfg.fs(), c.cfg.DataDir)
	if err != nil {
		return stats, err
	}
	if len(epochs) > 0 {
		name := ckptName(epochs[len(epochs)-1])
		meta, blocks, classes, err := readCheckpoint(c.cfg.fs(), filepath.Join(c.cfg.DataDir, name))
		if err != nil {
			return stats, fmt.Errorf("ingest: %s: %w", name, err)
		}
		if err := c.restoreCheckpoint(meta, blocks, classes); err != nil {
			return stats, fmt.Errorf("ingest: checkpoint %s: %w", name, err)
		}
		stats.CheckpointEpoch = len(meta.Epochs)
		c.recCkptEpoch.Store(int64(stats.CheckpointEpoch))
	}

	opts, err := c.cfg.walOptions()
	if err != nil {
		return stats, err
	}
	w, err := wal.Open(walDir(c.cfg.DataDir), opts)
	if err != nil {
		return stats, err
	}
	c.wal = w

	segs := w.Segments()
	c.recSegTotal.Store(int64(len(segs)))
	for _, id := range segs {
		err := w.ReplaySegment(id, func(_ int, payload []byte) error {
			b, err := DecodeBinary(payload)
			if err != nil {
				return fmt.Errorf("ingest: WAL record undecodable: %w", err)
			}
			if err := c.validate(b); err != nil {
				return fmt.Errorf("ingest: WAL replay: %w", err)
			}
			if _, err := c.ingestLocked(b, false); err != nil {
				return fmt.Errorf("ingest: WAL replay: %w", err)
			}
			// Surviving journal bytes are uncovered by the checkpoint;
			// they count toward the auto-checkpoint threshold so a
			// restart does not reset the cadence.
			c.walSinceCkpt.Add(int64(len(payload)))
			c.recRecords.Add(1)
			return nil
		})
		if err != nil {
			return stats, err
		}
		c.recSegDone.Add(1)
	}
	stats.Segments = len(segs)
	stats.Records = c.recRecords.Load()
	stats.Rows = c.store.Len()
	stats.Duration = time.Since(start)
	c.ready.Store(true)
	return stats, nil
}

// FlushCheckpoint commits any pending events as an epoch and, for a
// durable collector, writes a checkpoint and garbage-collects the
// covered WAL prefix and older checkpoints. It is the Flush of
// /v1/flush and graceful shutdown. The returned snapshot is the state
// the checkpoint captured.
func (c *Collector) FlushCheckpoint() (*Snapshot, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pendingN.Load() > 0 && !c.closed {
		c.commitEpoch()
	}
	if c.wal == nil || c.closed {
		return c.snap.Load(), nil
	}
	err := c.checkpointLocked()
	return c.snap.Load(), err
}

// checkpointLocked writes a checkpoint of the committed state. Called
// with c.mu held and pending empty.
func (c *Collector) checkpointLocked() error {
	if n := c.pendingN.Load(); n != 0 {
		return fmt.Errorf("ingest: checkpoint with %d uncommitted events", n)
	}
	// Rotate first: every journaled record is committed state, so the
	// fresh segment is the exact WAL suffix the checkpoint excludes.
	seg, err := c.wal.Rotate()
	if err != nil {
		return err
	}
	body, err := c.encodeCheckpoint(seg)
	if err != nil {
		return err
	}
	epoch := len(c.epochs)
	if err := writeFileAtomic(c.cfg.fs(), c.cfg.DataDir, ckptName(epoch), body); err != nil {
		return err
	}
	// The checkpoint is durable: reclaim everything it covers. GC
	// failures are non-fatal (stale files replay as duplicates or are
	// skipped as older checkpoints) but surface as errors so operators
	// notice a disk that stops honoring removes.
	epochs, err := listCheckpoints(c.cfg.fs(), c.cfg.DataDir)
	if err != nil {
		return err
	}
	for _, e := range epochs {
		if e != epoch {
			if err := c.cfg.fs().Remove(filepath.Join(c.cfg.DataDir, ckptName(e))); err != nil {
				return err
			}
		}
	}
	// The checkpoint now covers every journaled byte: reset the
	// auto-checkpoint accumulator and record the size for /v1/stats.
	c.walSinceCkpt.Store(0)
	c.lastCkptBytes.Store(int64(len(body)))
	c.lastCkptErr.Store(nil)
	return c.wal.RemoveBefore(seg)
}

// encodeCheckpoint serializes the committed state: meta JSON, then one
// framed codec block + raw class column per chunk.
func (c *Collector) encodeCheckpoint(walSeg int) ([]byte, error) {
	ds := c.merger.Dataset()
	st := c.store
	meta := ckptMeta{
		Seed:        c.world.Params.Seed,
		Scale:       c.world.Params.Scale,
		StartUnix:   c.world.Start.Unix(),
		ChunkRows:   st.ChunkRows(),
		Compress:    st.Compressed(),
		Rows:        st.Len(),
		Visits:      ds.Visits,
		Epochs:      c.epochs,
		SettledRows: c.semi.SettledRows(),
		WALSeg:      walSeg,
	}
	meta.LTF, meta.Cand = c.semi.Frontier()
	for u, next := range c.nextSeq {
		meta.Seqs = append(meta.Seqs, seqFloor{User: u, Next: next})
	}
	sort.Slice(meta.Seqs, func(i, j int) bool { return meta.Seqs[i].User < meta.Seqs[j].User })
	for _, cc := range ds.Countries {
		meta.Countries = append(meta.Countries, string(cc))
	}
	for _, p := range ds.Publishers {
		meta.Publishers = append(meta.Publishers, p.Domain)
	}
	meta.FQDNs = ds.FQDNs.Strings()
	for u := range c.userSet {
		meta.Users = append(meta.Users, u)
	}
	sort.Slice(meta.Users, func(i, j int) bool { return meta.Users[i] < meta.Users[j] })
	for f := range c.fqdnSet {
		meta.FQDNSeen = append(meta.FQDNSeen, f)
	}
	sort.Slice(meta.FQDNSeen, func(i, j int) bool { return meta.FQDNSeen[i] < meta.FQDNSeen[j] })
	meta.Truth = analysisState{Flows: c.truthA.Flows(), Unknown: c.truthA.Unknown()}
	meta.IPMap = analysisState{Flows: c.ipmapA.Flows(), Unknown: c.ipmapA.Unknown()}
	meta.MaxMind = analysisState{Flows: c.maxmindA.Flows(), Unknown: c.maxmindA.Unknown()}
	for ci := 0; ci < st.NumChunks(); ci++ {
		meta.ChunkLens = append(meta.ChunkLens, len(st.Classes(ci)))
	}

	head, err := json.Marshal(&meta)
	if err != nil {
		return nil, err
	}
	body := binary.AppendUvarint(nil, uint64(len(head)))
	body = append(body, head...)
	for ci := 0; ci < st.NumChunks(); ci++ {
		block, err := classify.EncodeChunk(st, ci)
		if err != nil {
			return nil, err
		}
		body = binary.AppendUvarint(body, uint64(len(block)))
		body = append(body, block...)
		for _, cls := range st.Classes(ci) {
			body = append(body, byte(cls))
		}
	}
	out := append([]byte(nil), ckptMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, ckptCastagnoli))
	return append(out, body...), nil
}

// errCkptCorrupt marks a checkpoint file recovery should skip in favor
// of an older one (vs. a hard error like an identity mismatch).
var errCkptCorrupt = errors.New("ingest: corrupt checkpoint")

// readCheckpoint parses and validates one checkpoint file.
func readCheckpoint(fs chaos.FS, path string) (*ckptMeta, [][]byte, [][]classify.Class, error) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	return decodeCheckpoint(data)
}

// decodeCheckpoint parses one XCKP1 payload (a checkpoint file or a
// /v1/snapshot export body).
func decodeCheckpoint(data []byte) (*ckptMeta, [][]byte, [][]classify.Class, error) {
	if len(data) < len(ckptMagic)+4 || string(data[:len(ckptMagic)]) != string(ckptMagic[:]) {
		return nil, nil, nil, fmt.Errorf("%w: bad header", errCkptCorrupt)
	}
	sum := binary.LittleEndian.Uint32(data[len(ckptMagic):])
	body := data[len(ckptMagic)+4:]
	if crc32.Checksum(body, ckptCastagnoli) != sum {
		return nil, nil, nil, fmt.Errorf("%w: checksum mismatch", errCkptCorrupt)
	}
	headLen, n := binary.Uvarint(body)
	if n <= 0 || headLen > uint64(len(body)-n) {
		return nil, nil, nil, fmt.Errorf("%w: bad meta length", errCkptCorrupt)
	}
	var meta ckptMeta
	if err := json.Unmarshal(body[n:n+int(headLen)], &meta); err != nil {
		return nil, nil, nil, fmt.Errorf("%w: meta: %v", errCkptCorrupt, err)
	}
	rest := body[n+int(headLen):]
	total := 0
	blocks := make([][]byte, 0, len(meta.ChunkLens))
	classes := make([][]classify.Class, 0, len(meta.ChunkLens))
	for ci, rows := range meta.ChunkLens {
		if rows <= 0 || rows > meta.ChunkRows {
			return nil, nil, nil, fmt.Errorf("%w: chunk %d declares %d rows", errCkptCorrupt, ci, rows)
		}
		blen, n := binary.Uvarint(rest)
		if n <= 0 || blen > uint64(len(rest)-n) {
			return nil, nil, nil, fmt.Errorf("%w: chunk %d block length", errCkptCorrupt, ci)
		}
		blocks = append(blocks, rest[n:n+int(blen)])
		rest = rest[n+int(blen):]
		if len(rest) < rows {
			return nil, nil, nil, fmt.Errorf("%w: chunk %d classes truncated", errCkptCorrupt, ci)
		}
		cls := make([]classify.Class, rows)
		for i := 0; i < rows; i++ {
			cls[i] = classify.Class(rest[i])
		}
		classes = append(classes, cls)
		rest = rest[rows:]
		total += rows
	}
	if len(rest) != 0 {
		return nil, nil, nil, fmt.Errorf("%w: %d trailing bytes", errCkptCorrupt, len(rest))
	}
	if total != meta.Rows {
		return nil, nil, nil, fmt.Errorf("%w: chunk lengths sum to %d, meta says %d rows", errCkptCorrupt, total, meta.Rows)
	}
	return &meta, blocks, classes, nil
}

// restoreCheckpoint rebuilds the collector's committed state from a
// parsed checkpoint. Called with c.mu held, on a freshly constructed
// collector (NewCollector state), before WAL replay.
func (c *Collector) restoreCheckpoint(meta *ckptMeta, blocks [][]byte, classes [][]classify.Class) error {
	if meta.Seed != c.world.Params.Seed || meta.Scale != c.world.Params.Scale {
		return fmt.Errorf("checkpoint is for seed %d scale %g, collector runs seed %d scale %g",
			meta.Seed, meta.Scale, c.world.Params.Seed, c.world.Params.Scale)
	}
	if meta.StartUnix != c.world.Start.Unix() {
		return fmt.Errorf("checkpoint start time %d does not match the world's %d", meta.StartUnix, c.world.Start.Unix())
	}
	if meta.ChunkRows != c.store.ChunkRows() || meta.Compress != c.store.Compressed() {
		return fmt.Errorf("checkpoint layout (chunkRows=%d compress=%v) does not match the configured store (chunkRows=%d compress=%v)",
			meta.ChunkRows, meta.Compress, c.store.ChunkRows(), c.store.Compressed())
	}

	var sink *classify.MemStore
	switch {
	case meta.Compress:
		sink = classify.NewMemStoreCompressed(meta.ChunkRows)
	default:
		sink = classify.NewMemStoreChunked(meta.ChunkRows)
	}
	for ci := range blocks {
		if err := sink.RestoreChunk(blocks[ci], classes[ci]); err != nil {
			return err
		}
	}

	in, err := classify.NewInternerFromStrings(meta.FQDNs)
	if err != nil {
		return err
	}
	countries := make([]geodata.Country, len(meta.Countries))
	for i, s := range meta.Countries {
		countries[i] = geodata.Country(s)
	}
	ds := &classify.Dataset{
		Store:     sink,
		FQDNs:     in,
		Countries: countries,
		Visits:    meta.Visits,
		Start:     c.world.Start,
	}
	for _, dom := range meta.Publishers {
		p, ok := c.pubs[dom]
		if !ok {
			return fmt.Errorf("checkpoint publisher %q unknown to the world", dom)
		}
		ds.Publishers = append(ds.Publishers, p)
	}

	c.store = sink
	c.merger = classify.NewMergerOver(ds, sink)
	c.semi.Close()
	c.semi = classify.NewLiveSemi(ds, c.cfg.Workers)
	if err := c.semi.Restore(meta.SettledRows, meta.LTF, meta.Cand); err != nil {
		return err
	}

	c.nextSeq = make(map[int32]uint64, len(meta.Seqs))
	for _, s := range meta.Seqs {
		c.nextSeq[s.User] = s.Next
	}
	c.userSet = make(map[int32]struct{}, len(meta.Users))
	for _, u := range meta.Users {
		c.userSet[u] = struct{}{}
	}
	c.fqdnSet = make(map[uint32]struct{}, len(meta.FQDNSeen))
	for _, f := range meta.FQDNSeen {
		c.fqdnSet[f] = struct{}{}
	}
	c.truthA = core.RestoreAnalysis(meta.Truth.Flows, meta.Truth.Unknown)
	c.ipmapA = core.RestoreAnalysis(meta.IPMap.Flows, meta.IPMap.Unknown)
	c.maxmindA = core.RestoreAnalysis(meta.MaxMind.Flows, meta.MaxMind.Unknown)
	c.epochs = append([]EpochStat(nil), meta.Epochs...)
	c.internClone, c.internCloneLen = nil, 0
	c.snap.Store(c.buildSnapshot(nil, 0, nil))
	return nil
}

// listCheckpoints returns the checkpoint epochs present in dir,
// ascending.
func listCheckpoints(fs chaos.FS, dir string) ([]int, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []int
	for _, e := range entries {
		var epoch int
		if _, err := fmt.Sscanf(e.Name(), ckptPattern, &epoch); err == nil && e.Name() == ckptName(epoch) {
			out = append(out, epoch)
		}
	}
	sort.Ints(out)
	return out, nil
}

// writeFileAtomic writes name under dir via temp + rename + dir sync,
// so the file either exists complete or not at all. A failure at any
// step (including the injected ones) leaves at most a stray .tmp file,
// which listCheckpoints ignores.
func writeFileAtomic(fs chaos.FS, dir, name string, data []byte) error {
	tmp, err := fs.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer fs.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}
