package ingest

import (
	"fmt"
	"runtime"

	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/geodata"
	"crossborder/internal/scenario"
	"crossborder/internal/webgraph"
)

// This file is the fan-in merge: MergeExports folds N per-shard
// /v1/snapshot exports into one global Snapshot that serves the full
// query API, byte-identical to what a single collector over the union
// of the shards' events would serve.
//
// Rows copy over with their ids remapped through global tables (the
// merged interner, country and publisher indexes), exactly as the
// epoch Merger remaps shard-local ids — so the merged dataset is a
// permutation of the single-collector dataset, and every artifact is
// invariant to row order, interner numbering, and table order (the
// same invariance the live replay's epoch-size freedom already
// exercises).
//
// Classification needs one correction: stages 2 and 3 are a fixpoint
// over FQDN-level tracking membership across ALL users, so a shard
// that owns only its partition under-classifies — a clean row whose
// referrer only tracks on another shard's rows converts globally but
// not shard-locally. The merge therefore demotes every semi label back
// to clean and re-runs the incremental fixpoint over the union. The
// closure is monotone (shard-LTF is a subset of global-LTF), so every
// shard-side conversion re-converts, plus exactly the cross-shard ones
// the shards could not see.
//
// Aggregates follow the same shape: the shard flow maps merge
// (counter addition commutes), then the rows that became tracking only
// under the global fixpoint contribute a delta — the identical
// recipe the collector's applyDeltas uses per epoch. The result equals
// a full core.Analyze rescan (TestMergeExportsMatchesRescan).

// MergeExports merges per-shard snapshot exports into one global
// Snapshot over the shared world. Exports must come from collectors
// built for the same seed/scale world, with pairwise-disjoint user
// sets (the ring partition guarantees this; overlap means misrouted
// uploads and is refused). The order of exports does not affect any
// served artifact; callers should still fix it (e.g. by shard name)
// so merged datasets are reproducible byte for byte.
func MergeExports(world *scenario.Scenario, exports []*ShardExport, workers int) (*Snapshot, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	pubByDomain := make(map[string]*webgraph.Publisher, len(world.Graph.Publishers))
	for _, p := range world.Graph.Publishers {
		pubByDomain[p.Domain] = p
	}

	totalRows, internHint := 0, 0
	for _, ex := range exports {
		totalRows += ex.meta.Rows
		if n := len(ex.meta.FQDNs); n > internHint {
			internHint = n
		}
	}
	st := classify.NewMemStore()
	ds := &classify.Dataset{
		Store: st,
		FQDNs: classify.NewInternerSized(internHint),
		Start: world.Start,
	}
	countryIdx := make(map[geodata.Country]uint8)
	pubIdx := make(map[string]int32)
	userSet := make(map[int32]struct{})
	fqdnSet := make(map[uint32]struct{})
	truth, ipmap, maxmind := core.NewAnalysis(), core.NewAnalysis(), core.NewAnalysis()
	wasTracking := make([]bool, 0, totalRows)
	epoch := 0

	buf := classify.GetChunk()
	defer classify.PutChunk(buf)
	for si, ex := range exports {
		m := ex.meta
		if m.Seed != world.Params.Seed || m.Scale != world.Params.Scale {
			return nil, fmt.Errorf("ingest: shard %d export is for seed %d scale %g, merger runs seed %d scale %g",
				si, m.Seed, m.Scale, world.Params.Seed, world.Params.Scale)
		}
		if m.StartUnix != world.Start.Unix() {
			return nil, fmt.Errorf("ingest: shard %d export start time %d does not match the world's %d",
				si, m.StartUnix, world.Start.Unix())
		}
		for _, u := range m.Users {
			if _, dup := userSet[u]; dup {
				return nil, fmt.Errorf("ingest: user %d appears on more than one shard (shard %d overlaps an earlier one)", u, si)
			}
		}

		// Shard-local id -> global id remap tables, assigned in
		// first-seen order like the epoch Merger's.
		fmap := make([]uint32, len(m.FQDNs))
		for i, s := range m.FQDNs {
			fmap[i] = ds.FQDNs.ID(s)
		}
		cmap := make([]uint8, len(m.Countries))
		for i, s := range m.Countries {
			cc := geodata.Country(s)
			id, ok := countryIdx[cc]
			if !ok {
				if len(ds.Countries) >= 256 {
					return nil, fmt.Errorf("ingest: merged country table exceeds 256 entries")
				}
				id = uint8(len(ds.Countries))
				countryIdx[cc] = id
				ds.Countries = append(ds.Countries, cc)
			}
			cmap[i] = id
		}
		pmap := make([]int32, len(m.Publishers))
		for i, dom := range m.Publishers {
			id, ok := pubIdx[dom]
			if !ok {
				p, known := pubByDomain[dom]
				if !known {
					return nil, fmt.Errorf("ingest: shard %d publisher %q unknown to the world", si, dom)
				}
				id = int32(len(ds.Publishers))
				pubIdx[dom] = id
				ds.Publishers = append(ds.Publishers, p)
			}
			pmap[i] = id
		}

		for ci := range ex.blocks {
			rows := len(ex.classes[ci])
			if err := classify.DecodeBlockInto(ex.blocks[ci], rows, buf); err != nil {
				return nil, fmt.Errorf("ingest: shard %d chunk %d: %w", si, ci, err)
			}
			buf.Class = ex.classes[ci]
			for i := 0; i < rows; i++ {
				r := buf.Row(i)
				if int(r.FQDN) >= len(fmap) || int(r.RefFQDN) >= len(fmap) ||
					int(r.Country) >= len(cmap) || int(r.Publisher) < 0 || int(r.Publisher) >= len(pmap) {
					return nil, fmt.Errorf("ingest: shard %d chunk %d row %d has out-of-table ids", si, ci, i)
				}
				r.FQDN, r.RefFQDN = fmap[r.FQDN], fmap[r.RefFQDN]
				r.Country, r.Publisher = cmap[r.Country], pmap[r.Publisher]
				wasTracking = append(wasTracking, r.Class.IsTracking())
				if r.Class.IsSemi() {
					// Demote: the shard's semi conversions re-derive below
					// under the global fixpoint (ABP labels are stage-1
					// per-row facts and stand).
					r.Class = classify.ClassClean
				}
				userSet[r.User] = struct{}{}
				fqdnSet[r.FQDN] = struct{}{}
				st.Append(r)
			}
		}
		ds.Visits += m.Visits
		truth.Merge(core.RestoreAnalysis(m.Truth.Flows, m.Truth.Unknown))
		ipmap.Merge(core.RestoreAnalysis(m.IPMap.Flows, m.IPMap.Unknown))
		maxmind.Merge(core.RestoreAnalysis(m.MaxMind.Flows, m.MaxMind.Unknown))
		epoch += len(m.Epochs)
	}

	// Global stage-2/3 fixpoint over the union. Every row is "new" to
	// this LiveSemi, so pass 1 re-seeds the LTF from the ABP rows,
	// re-converts the keyword rows, and the propagation rounds close
	// the referrer chains across shard boundaries.
	ls := classify.NewLiveSemi(ds, workers)
	ls.Extend()
	ls.Close()

	// Aggregate delta: rows tracking now but not at export time (the
	// cross-shard conversions) join the flow maps, exactly like the
	// collector's per-epoch applyDeltas. Demoted rows that re-converted
	// are already counted in the merged shard analyses.
	chunkRows := st.ChunkRows()
	for ci := 0; ci < st.NumChunks(); ci++ {
		ch := classify.MustChunk(st, ci, buf)
		base := ci * chunkRows
		for i := 0; i < ch.Len(); i++ {
			if !ch.Class[i].IsTracking() || wasTracking[base+i] {
				continue
			}
			src := ds.Countries[ch.Country[i]]
			ip := ch.IP[i]
			if loc, ok := world.Truth.Locate(ip); ok {
				truth.Add(src, loc.Country, 1)
			} else {
				truth.AddUnknown(1)
			}
			if loc, ok := world.IPMap.Locate(ip); ok {
				ipmap.Add(src, loc.Country, 1)
			} else {
				ipmap.AddUnknown(1)
			}
			if loc, ok := world.MaxMind.Locate(ip); ok {
				maxmind.Add(src, loc.Country, 1)
			} else {
				maxmind.AddUnknown(1)
			}
		}
	}

	return &Snapshot{
		epoch:     epoch,
		ds:        ds,
		footprint: footprintOf(st),
		stats: classify.DatasetStats{
			Users:            len(userSet),
			FirstPartySites:  len(ds.Publishers),
			FirstPartyVisits: ds.Visits,
			ThirdPartyFQDNs:  len(fqdnSet),
			ThirdPartyReqs:   int64(st.Len()),
		},
		truth:   truth,
		ipmap:   ipmap,
		maxmind: maxmind,
		world:   world,
	}, nil
}
