package ingest

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/experiments"
)

// Content types accepted by the upload endpoint.
const (
	ContentTypeNDJSON = "application/x-ndjson"
	ContentTypeBinary = "application/x-crossborder-batch"
)

// ContentTypeSnapshot is the /v1/snapshot body: an XCKP1 checkpoint
// payload (see EncodeSnapshot).
const ContentTypeSnapshot = "application/x-crossborder-checkpoint"

// maxUploadBytes bounds one upload request body (64 MiB comfortably
// holds a MaxBatchEvents binary batch).
const maxUploadBytes = 64 << 20

// ErrOverloaded is the admission-control rejection: the server already
// has Limits.MaxInFlight uploads in flight. 429 + Retry-After over
// HTTP; clients with a RetryPolicy back off and re-send.
var ErrOverloaded = errors.New("ingest: too many uploads in flight")

// Limits is the server's overload protection. The zero value keeps the
// open-door behavior: unlimited concurrency, the default body cap, no
// per-request deadline.
type Limits struct {
	// MaxInFlight bounds concurrently admitted uploads. Excess requests
	// are rejected immediately with 429 + Retry-After instead of piling
	// onto the ingest lock without bound (0 = unlimited).
	MaxInFlight int
	// MaxUploadBytes caps one upload request body (0 = 64 MiB).
	MaxUploadBytes int64
	// UploadTimeout bounds one upload's whole read-decode-apply-respond
	// window via per-request connection deadlines, so a client trickling
	// its body byte-by-byte cannot hold a handler forever (0 = none).
	UploadTimeout time.Duration
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLimits sets the server's overload protection.
func WithLimits(l Limits) ServerOption {
	return func(s *Server) { s.lim = l }
}

// StatsResponse is the /v1/stats payload: the incremental aggregates of
// the latest epoch snapshot.
type StatsResponse struct {
	Epoch   int                   `json:"epoch"`
	Rows    int                   `json:"rows"`
	Stats   statsBlock            `json:"dataset"`
	Store   StoreFootprint        `json:"store"`
	Flows   map[string]flowsBlock `json:"flows"` // per geolocation service
	Epochs  []EpochStat           `json:"epochs"`
	Pending int                   `json:"pending_events"`
	// Shards, on a cluster query tier with a health probe registered
	// (QueryServer.OnHealth), carries per-shard breaker and staleness
	// detail; absent on a single collector.
	Shards any `json:"shards,omitempty"`
}

type statsBlock struct {
	Users            int   `json:"users"`
	FirstPartySites  int   `json:"first_party_sites"`
	FirstPartyVisits int   `json:"first_party_visits"`
	ThirdPartyFQDNs  int   `json:"third_party_fqdns"`
	ThirdPartyReqs   int64 `json:"third_party_requests"`
}

type flowsBlock struct {
	Flows     int64   `json:"flows"`
	Unknown   int64   `json:"unknown"`
	EU28InC   float64 `json:"eu28_in_country_pct"`
	EU28InEU  float64 `json:"eu28_in_eu28_pct"`
	EU28InEur float64 `json:"eu28_in_europe_pct"`
}

// Server exposes a Collector over HTTP:
//
//	POST /v1/upload          one Batch (NDJSON or binary by Content-Type)
//	POST /v1/flush           force an epoch commit
//	GET  /v1/experiments     registry ids (JSON array)
//	GET  /v1/experiments/{id} artifact of the latest snapshot
//	                          (?format=text|json; X-Epoch names the epoch)
//	GET  /v1/stats           incremental aggregates of the latest snapshot
//	GET  /healthz            liveness (process is up; always 200)
//	GET  /readyz             readiness (200 once recovery completed and
//	                          not draining; 503 with progress otherwise)
//	GET  /metrics            Prometheus-style counters
//
// Every query endpoint reads one atomic snapshot, so responses are
// consistent epoch views even while uploads commit concurrently.
type Server struct {
	c   *Collector
	mux *http.ServeMux
	lim Limits
	// sem is the upload admission semaphore (nil = unlimited).
	sem chan struct{}
	// mOverload counts 429 admission rejections for /metrics.
	mOverload atomic.Int64
}

// NewServer wraps a collector.
func NewServer(c *Collector, opts ...ServerOption) *Server {
	s := &Server{c: c, mux: http.NewServeMux()}
	for _, o := range opts {
		o(s)
	}
	if s.lim.MaxInFlight > 0 {
		s.sem = make(chan struct{}, s.lim.MaxInFlight)
	}
	s.mux.HandleFunc("POST /v1/upload", s.handleUpload)
	s.mux.HandleFunc("POST /v1/flush", s.handleFlush)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.mOverload.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, ErrOverloaded)
			return
		}
	}
	if s.lim.UploadTimeout > 0 {
		// Per-request deadline on the connection itself: covers the slow
		// body read, not just the headers. Errors are ignored — test
		// recorders don't implement deadlines, real servers do.
		rc := http.NewResponseController(w)
		dl := time.Now().Add(s.lim.UploadTimeout)
		rc.SetReadDeadline(dl)
		rc.SetWriteDeadline(dl)
	}
	bodyCap := int64(maxUploadBytes)
	if s.lim.MaxUploadBytes > 0 {
		bodyCap = s.lim.MaxUploadBytes
	}
	body := http.MaxBytesReader(w, r.Body, bodyCap)
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	var (
		b   Batch
		err error
	)
	switch strings.TrimSpace(ct) {
	case ContentTypeBinary:
		var raw []byte
		if raw, err = io.ReadAll(body); err == nil {
			b, err = DecodeBinary(raw)
		}
	case ContentTypeNDJSON, "application/json", "":
		b, err = DecodeNDJSON(body)
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			fmt.Errorf("ingest: unsupported Content-Type %q", ct))
		return
	}
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.c.Ingest(b)
	switch {
	case errors.Is(err, ErrSequenceGap):
		writeError(w, http.StatusConflict, err)
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrDraining), errors.Is(err, ErrClosed):
		// Transient by design: clients with a retry policy (see
		// RetryPolicy) wait out recovery or find the replacement after
		// a drain. ErrClosed is transient too when a supervisor is
		// swapping in a recovered collector behind the same listener.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrJournal):
		writeError(w, http.StatusInternalServerError, err)
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	snap, err := s.c.FlushCheckpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":        snap.Epoch(),
		"rows":         snap.Rows(),
		"checkpointed": s.c.Durable(),
	})
}

// handleSnapshot serves the collector's committed state as one XCKP1
// payload for the fan-in tier. The ETag is the committed epoch, so a
// merger polling an idle shard pays one header round-trip, not a
// re-encode: If-None-Match against the current epoch answers 304 before
// any encoding happens.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.c.Ready() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, ErrNotReady)
		return
	}
	etagOf := func(epoch int) string { return fmt.Sprintf("\"epoch-%d\"", epoch) }
	if inm := r.Header.Get("If-None-Match"); inm != "" && inm == etagOf(s.c.Snapshot().Epoch()) {
		w.Header().Set("ETag", inm)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	data, epoch, err := s.c.EncodeSnapshot()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", ContentTypeSnapshot)
	w.Header().Set("ETag", etagOf(epoch))
	w.Header().Set("X-Epoch", strconv.Itoa(epoch))
	w.Write(data)
}

// serveExperimentList and serveExperiment are the snapshot-driven query
// handlers shared by the collector Server and the fan-in QueryServer.
func serveExperimentList(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, experiments.IDs())
}

func serveExperiment(w http.ResponseWriter, r *http.Request, snap *Snapshot) {
	id := r.PathValue("id")
	if _, ok := experiments.Get(id); !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("ingest: unknown experiment %q (see /v1/experiments)", id))
		return
	}
	if snap.Rows() == 0 {
		writeError(w, http.StatusConflict,
			errors.New("ingest: no epochs committed yet; upload events first"))
		return
	}
	a, err := snap.Suite().Artifact(r.Context(), id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("X-Epoch", strconv.Itoa(snap.Epoch()))
	w.Header().Set("X-Rows", strconv.Itoa(snap.Rows()))
	switch r.URL.Query().Get("format") {
	case "", "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, a.Render())
	case "json":
		raw, err := a.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(raw)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("ingest: unknown format %q (text or json)", r.URL.Query().Get("format")))
	}
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	serveExperimentList(w)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	serveExperiment(w, r, s.c.Snapshot())
}

func flowsOf(a *core.Analysis) flowsBlock {
	inC, inEU, inEur, _ := a.RegionConfinement(core.EU28Origin)
	return flowsBlock{
		Flows:     a.Total(),
		Unknown:   a.Unknown(),
		EU28InC:   inC,
		EU28InEU:  inEU,
		EU28InEur: inEur,
	}
}

// statsResponse assembles the /v1/stats payload for one snapshot. The
// store footprint rides on the snapshot (computed at epoch commit under
// the ingest lock); callers with live durability gauges overlay them.
func statsResponse(snap *Snapshot, pending int) StatsResponse {
	st := snap.Stats()
	return StatsResponse{
		Epoch: snap.Epoch(),
		Rows:  snap.Rows(),
		Stats: statsBlock{
			Users:            st.Users,
			FirstPartySites:  st.FirstPartySites,
			FirstPartyVisits: st.FirstPartyVisits,
			ThirdPartyFQDNs:  st.ThirdPartyFQDNs,
			ThirdPartyReqs:   st.ThirdPartyReqs,
		},
		Store: snap.Footprint(),
		Flows: map[string]flowsBlock{
			"truth":   flowsOf(snap.TruthAnalysis()),
			"ipmap":   flowsOf(snap.IPMapAnalysis()),
			"maxmind": flowsOf(snap.MaxMindAnalysis()),
		},
		Epochs:  snap.History(),
		Pending: pending,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// The history and footprint ride on the snapshot (immutable shares)
	// and every live gauge is atomic, so /v1/stats — like every query
	// endpoint — never waits behind an in-flight epoch commit.
	resp := statsResponse(s.c.Snapshot(), s.c.PendingEvents())
	resp.Store.WALUncoveredBytes = s.c.walSinceCkpt.Load()
	resp.Store.LastCheckpointBytes = s.c.lastCkptBytes.Load()
	if msg := s.c.lastCkptErr.Load(); msg != nil {
		resp.Store.LastCheckpointError = *msg
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It stays 200 through recovery and drain — orchestrators must not kill
// a pod for being busy replaying its WAL. Readiness lives at /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"uptime": time.Since(s.c.started).Round(time.Second).String(),
	})
}

// handleReadyz is readiness: 200 only when the collector accepts
// uploads. During recovery it returns 503 with replay progress
// (segments replayed / total) so operators can watch a restart
// converge; during a graceful drain it returns 503 "draining".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.c.Draining():
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
	case !s.c.Ready():
		p := s.c.Recovery()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "recovering",
			"recovery": p,
		})
	default:
		snap := s.c.Snapshot()
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ready",
			"epoch":  snap.Epoch(),
			"rows":   snap.Rows(),
		})
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.c.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		fmt.Fprintf(w, "%s %d\n", name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		fmt.Fprintf(w, "%s %g\n", name, v)
	}
	counter("collectd_batches_total", "Upload batches received (including rejected).", s.c.mBatches.Load())
	counter("collectd_events_total", "Events newly accepted.", s.c.mEvents.Load())
	counter("collectd_duplicate_events_total", "Events skipped as already-seen retransmits.", s.c.mDupEvents.Load())
	counter("collectd_sequence_gaps_total", "Batches rejected for a sequence gap.", s.c.mSeqGaps.Load())
	counter("collectd_rejected_batches_total", "Batches rejected by validation.", s.c.mRejected.Load())
	counter("collectd_overload_rejected_total", "Uploads rejected 429 by admission control.", s.mOverload.Load())
	gauge("collectd_inflight_uploads", "Uploads currently admitted.", float64(len(s.sem)))
	gauge("collectd_epoch", "Latest committed epoch.", float64(snap.Epoch()))
	gauge("collectd_rows", "Dataset rows at the latest epoch.", float64(snap.Rows()))
	gauge("collectd_users", "Distinct users observed in rows.", float64(snap.Stats().Users))
	gauge("collectd_uptime_seconds", "Seconds since the collector started.", time.Since(s.c.started).Seconds())
	ss := classify.ReadScanStats()
	counter("collectd_scan_chunks_total", "Chunks offered to projection scan kernels.", ss.ChunksScanned)
	counter("collectd_scan_chunks_skipped_total", "Chunks pruned without loading a column (zone map / class bitmap).", ss.ChunksSkipped)
	counter("collectd_pushdown_scans_total", "Experiment scans served by the projection path.", ss.PushdownScans)
	counter("collectd_fallback_scans_total", "Experiment scans served by the decode-to-rows path.", ss.FallbackScans)
}

// PendingEvents returns the number of accepted events awaiting the next
// epoch commit. Lock-free: the query path must not stall behind an
// in-flight epoch commit.
func (c *Collector) PendingEvents() int {
	return int(c.pendingN.Load())
}
