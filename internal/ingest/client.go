package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"crossborder/internal/browser"
	"crossborder/internal/scenario"
	"crossborder/internal/webgraph"
)

// Recorder is a browser.Sink that captures the simulation's event
// stream in upload wire form, per user and in emission order — the
// export side of the replay loop: what a Recorder captures, a Client
// can upload, and the collector rebuilds the batch dataset from it.
// Like every Sink, one Recorder is driven from a single goroutine; the
// parallel simulation gives each worker its own.
type Recorder struct {
	events map[int32][]Event
}

// NewRecorder returns an empty capture sink.
func NewRecorder() *Recorder { return &Recorder{events: make(map[int32][]Event)} }

// OnVisit implements browser.Sink.
func (r *Recorder) OnVisit(u *browser.User, p *webgraph.Publisher, at time.Time) {
	uid := int32(u.ID)
	r.events[uid] = append(r.events[uid], Event{
		Kind: KindVisit, At: at.Unix(), Publisher: p.Domain,
	})
}

// OnRequest implements browser.Sink.
func (r *Recorder) OnRequest(ev browser.Event) {
	uid := int32(ev.User.ID)
	r.events[uid] = append(r.events[uid], Event{
		Kind:      KindRequest,
		At:        ev.At.Unix(),
		Publisher: ev.Publisher.Domain,
		FQDN:      ev.Call.FQDN,
		Path:      ev.Call.Path,
		RefFQDN:   ev.Call.RefFQDN,
		IP:        uint32(ev.IP),
		HTTPS:     ev.HTTPS,
		HasArgs:   ev.Call.HasArgs,
	})
}

// Events returns the captured stream of one user.
func (r *Recorder) Events(user int32) []Event { return r.events[user] }

// RecordSimulation replays the world's browsing study — the same
// per-user RNG streams the batch pipeline simulates — and returns each
// user's upload event stream. The world comes from scenario.BuildWorld;
// visitsPerUser and workers mirror the batch Params (0 = defaults).
// Because users browse on private streams, the capture is identical at
// any worker count.
func RecordSimulation(world *scenario.Scenario, visitsPerUser, workers int) map[int32][]Event {
	visits := visitsPerUser
	if visits == 0 {
		visits = 219
	}
	sim := browser.NewSimulator(world.Graph, world.DNS, browser.Config{
		Start: world.Start, End: world.End, VisitsPerUser: visits,
		ProfileFor: world.ProfileFor(),
	})
	var recs []*Recorder
	sim.RunWorkers(world.Params.Seed, world.Users, workers, func(int) []browser.Sink {
		r := NewRecorder()
		recs = append(recs, r)
		return []browser.Sink{r}
	})
	merged := make(map[int32][]Event)
	for _, r := range recs {
		for uid, evs := range r.events {
			// Every user's full stream lands in exactly one worker's sink.
			merged[uid] = evs
		}
	}
	return merged
}

// RetryPolicy makes a Client ride out transient failures: transport
// errors (connection reset, refused, timeout), 5xx responses — notably
// the 503s a recovering or draining collector returns — 429 admission
// rejections, and 200s whose body was mangled in flight. Retries back
// off exponentially with full jitter; a Retry-After header on the
// failed response raises the next backoff's floor (capped by MaxDelay),
// so clients honor the server's own estimate of when to come back.
// Uploads are safe to retry blindly: the collector's sequence floors
// dedup re-sent events, so a request whose response was lost applies
// exactly once.
type RetryPolicy struct {
	// MaxAttempts is the total try budget, first attempt included
	// (0 = 5).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt k waits
	// up to BaseDelay<<k (0 = 50ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff (0 = 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// backoff returns the sleep before retry k (0-based): full jitter over
// an exponentially growing window.
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.BaseDelay << k
	if d <= 0 || d > p.MaxDelay {
		d = p.MaxDelay
	}
	return time.Duration(rand.Int64N(int64(d))) + 1
}

// Client uploads batches to a collectd instance and queries its API.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8477".
	Base string
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// Binary selects the compact binary framing instead of NDJSON.
	Binary bool
	// Retry, when non-nil, retries transient request failures (see
	// RetryPolicy). Nil = one attempt, fail fast.
	Retry *RetryPolicy
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// retryable reports whether a response status is worth another attempt:
// the server-side errors a restart, a drain, or admission-control
// backpressure heals. Other 4xx are permanent — the request itself is
// wrong (or, for 409, needs different data).
func retryable(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// retryAfter parses a Retry-After header as delay-seconds (the form
// this system's servers send). 0 means absent or unparseable.
func retryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do issues one request with the retry policy. The body is a byte
// slice, not a Reader, precisely so every attempt can re-send it from
// the start.
func (cl *Client) do(method, path, contentType string, body []byte, out any) error {
	policy := RetryPolicy{MaxAttempts: 1}
	if cl.Retry != nil {
		policy = cl.Retry.withDefaults()
	}
	var (
		lastErr error
		// floor is the server's Retry-After from the previous attempt:
		// the backoff sleeps at least that long (capped by MaxDelay — a
		// client never lets a server park it indefinitely).
		floor time.Duration
	)
	for attempt := 0; attempt < policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			d := policy.backoff(attempt - 1)
			if floor > policy.MaxDelay {
				floor = policy.MaxDelay
			}
			if d < floor {
				d = floor
			}
			time.Sleep(d)
		}
		floor = 0
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, cl.Base+path, rd)
		if err != nil {
			return err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := cl.http().Do(req)
		if err != nil {
			lastErr = err // transport failure: retryable
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("ingest: %s: %s: %s", path, resp.Status, bytes.TrimSpace(raw))
			if retryable(resp.StatusCode) {
				floor = retryAfter(resp.Header)
				continue
			}
			return lastErr
		}
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				// A 200 whose body does not parse is a mangled response
				// (truncated or corrupted in flight), not a server
				// verdict: retry it like a transport failure.
				lastErr = fmt.Errorf("ingest: %s: undecodable response: %w", path, err)
				continue
			}
			return nil
		}
		return nil
	}
	return fmt.Errorf("ingest: giving up after %d attempts: %w", policy.MaxAttempts, lastErr)
}

// Upload sends one batch and returns the server's accounting. With a
// retry policy set, a lost response re-sends the batch and the server's
// dedup reports it as duplicates — the events still apply exactly once.
func (cl *Client) Upload(b Batch) (UploadResult, error) {
	var (
		body []byte
		ct   string
	)
	if cl.Binary {
		ct = ContentTypeBinary
		body = EncodeBinary(b)
	} else {
		ct = ContentTypeNDJSON
		var buf bytes.Buffer
		if err := EncodeNDJSON(&buf, b); err != nil {
			return UploadResult{}, err
		}
		body = buf.Bytes()
	}
	var res UploadResult
	err := cl.do(http.MethodPost, "/v1/upload", ct, body, &res)
	return res, err
}

// Flush forces an epoch commit (and, on a durable collector, a
// checkpoint) and returns the committed epoch/rows.
func (cl *Client) Flush() (epoch, rows int, err error) {
	var out struct {
		Epoch int `json:"epoch"`
		Rows  int `json:"rows"`
	}
	err = cl.do(http.MethodPost, "/v1/flush", "", nil, &out)
	return out.Epoch, out.Rows, err
}

// Stats fetches /v1/stats.
func (cl *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := cl.do(http.MethodGet, "/v1/stats", "", nil, &out)
	return out, err
}

// Ready reports whether the server's /readyz says it accepts uploads.
func (cl *Client) Ready() bool {
	resp, err := cl.http().Get(cl.Base + "/readyz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Artifact fetches one experiment's rendered text from the latest
// snapshot, returning the text and the epoch it was computed at.
func (cl *Client) Artifact(id string) (text string, epoch int, err error) {
	resp, err := cl.http().Get(cl.Base + "/v1/experiments/" + id)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("ingest: experiment %s: %s: %s", id, resp.Status, bytes.TrimSpace(raw))
	}
	fmt.Sscanf(resp.Header.Get("X-Epoch"), "%d", &epoch)
	return string(raw), epoch, nil
}

// ReplayStats summarizes one Replay run.
type ReplayStats struct {
	Users    int
	Events   int
	Batches  int
	Duration time.Duration
}

// EventsPerSec returns the upload throughput.
func (rs ReplayStats) EventsPerSec() float64 {
	if rs.Duration <= 0 {
		return 0
	}
	return float64(rs.Events) / rs.Duration.Seconds()
}

// Replay uploads recorded per-user event streams in ascending user id,
// split into batches of batchSize events with per-user sequence
// numbers. uploaders > 1 distributes whole users over concurrent
// connections (each user's stream stays in order on one connection);
// with one uploader the server receives the exact global stream order,
// which is what makes a replayed dataset byte-identical to the batch
// study. The final partial epoch is left pending; call Flush to commit
// it.
func (cl *Client) Replay(events map[int32][]Event, batchSize, uploaders int) (ReplayStats, error) {
	if batchSize <= 0 {
		batchSize = 512
	}
	if uploaders <= 0 {
		uploaders = 1
	}
	userIDs := make([]int32, 0, len(events))
	for uid := range events {
		userIDs = append(userIDs, uid)
	}
	sort.Slice(userIDs, func(i, j int) bool { return userIDs[i] < userIDs[j] })

	stats := ReplayStats{Users: len(userIDs)}
	start := time.Now()
	uploadUser := func(uid int32) (int, int, error) {
		evs := events[uid]
		batches := 0
		for off := 0; off < len(evs); off += batchSize {
			hi := off + batchSize
			if hi > len(evs) {
				hi = len(evs)
			}
			if _, err := cl.Upload(Batch{User: uid, Seq: uint64(off), Events: evs[off:hi]}); err != nil {
				return 0, 0, fmt.Errorf("user %d seq %d: %w", uid, off, err)
			}
			batches++
		}
		return len(evs), batches, nil
	}

	if uploaders == 1 {
		for _, uid := range userIDs {
			n, b, err := uploadUser(uid)
			if err != nil {
				return stats, err
			}
			stats.Events += n
			stats.Batches += b
		}
		stats.Duration = time.Since(start)
		return stats, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	work := make(chan int32)
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for uid := range work {
				n, b, err := uploadUser(uid)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				stats.Events += n
				stats.Batches += b
				mu.Unlock()
			}
		}()
	}
	for _, uid := range userIDs {
		work <- uid
	}
	close(work)
	wg.Wait()
	stats.Duration = time.Since(start)
	return stats, firstErr
}
