package ingest

import (
	"errors"
	"path/filepath"
	"testing"

	"crossborder/internal/chaos"
)

// TestChaosTornCheckpointLeavesOldIntact: a checkpoint whose
// temp-then-rename publish is torn (injected rename failure) must
// report the error, leave the previous checkpoint as the newest valid
// one, and leave recovery fully correct — the WAL still covers
// everything the failed checkpoint would have. After healing, the next
// checkpoint succeeds and recovery matches the live state exactly.
func TestChaosTornCheckpointLeavesOldIntact(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	dir := t.TempDir()

	inj := chaos.New(0xBADD15C)
	cfg := durableCfg(dir, false)
	cfg.FS = chaos.NewFaultFS(inj, "ckpt", chaos.FSFaults{RenameFail: 1}, nil)

	c, _ := recoverNew(t, world, cfg)
	sendAll(t, c, batches[:len(batches)/2])
	if _, err := c.FlushCheckpoint(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("flush under torn rename = %v, want injected failure", err)
	}
	if ckpts, err := listCheckpoints(chaos.OS, dir); err != nil || len(ckpts) != 0 {
		t.Fatalf("torn publish left checkpoints %v (err %v); want none", ckpts, err)
	}

	// The failure is transient, not poisoning: ingest continues and a
	// healed flush publishes a complete checkpoint.
	sendAll(t, c, batches[len(batches)/2:])
	inj.Heal()
	if _, err := c.FlushCheckpoint(); err != nil {
		t.Fatalf("healed flush: %v", err)
	}
	ckpts, err := listCheckpoints(chaos.OS, dir)
	if err != nil || len(ckpts) != 1 {
		t.Fatalf("healed publish left checkpoints %v (err %v); want exactly one", ckpts, err)
	}
	if _, _, _, err := readCheckpoint(chaos.OS, filepath.Join(dir, ckptName(ckpts[0]))); err != nil {
		t.Fatalf("healed checkpoint unreadable: %v", err)
	}

	rec, _ := recoverNew(t, world, durableCfg(dir, false))
	assertSameLive(t, rec.Snapshot(), c.Snapshot())
}

// TestChaosShortCheckpointWriteIsTransient: tearing the checkpoint
// temp-file write mid-stream fails the flush but leaves only an
// ignorable .tmp stray; recovery replays the WAL and loses nothing.
func TestChaosShortCheckpointWriteIsTransient(t *testing.T) {
	world, evs, _ := rig(t)
	batches := batchList(evs, 137)
	dir := t.TempDir()

	// Build the journal with the real FS, then flip to an FS that tears
	// every write: the WAL is already laid down, so the only writes the
	// flush performs are the rotate header and the checkpoint body.
	c0, _ := recoverNew(t, world, durableCfg(dir, false))
	sendAll(t, c0, batches)
	want := c0.Snapshot()
	c0.Close()

	inj := chaos.New(7)
	cfg := durableCfg(dir, false)
	cfg.FS = chaos.NewFaultFS(inj, "ckpt", chaos.FSFaults{ShortWrite: 1}, nil)
	c, _ := recoverNew(t, world, cfg)
	if _, err := c.FlushCheckpoint(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("flush under short writes = %v, want injected failure", err)
	}
	if ckpts, _ := listCheckpoints(chaos.OS, dir); len(ckpts) != 0 {
		t.Fatalf("short write published checkpoints %v; want none", ckpts)
	}

	rec, _ := recoverNew(t, world, durableCfg(dir, false))
	assertSameLive(t, rec.Snapshot(), want)
}
