package wal

import (
	"errors"
	"fmt"
	"testing"

	"crossborder/internal/chaos"
)

// TestChaosShortWritesPoisonThenRecover drives appends through a
// FaultFS that tears writes at random (seeded) points. The contract
// under test is the WAL's whole crash story: a failed append poisons
// the log, a reopen truncates the torn record, the caller re-sends,
// and the final journal holds every acknowledged record exactly once,
// in order — nothing lost, nothing duplicated, no torn bytes surviving.
func TestChaosShortWritesPoisonThenRecover(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(0xC0FFEE)
	fs := chaos.NewFaultFS(inj, "wal", chaos.FSFaults{ShortWrite: 0.05}, nil)
	opts := Options{Policy: SyncNone, SegmentBytes: 1 << 12, FS: fs}

	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var acked []string
	reopens := 0
	for i := 0; i < 400; i++ {
		rec := fmt.Sprintf("record-%04d", i)
		for {
			if _, err := w.Append([]byte(rec)); err == nil {
				acked = append(acked, rec)
				break
			}
			// Poisoned: the torn tail must not be buried. Reopen (which
			// truncates it) and re-send, like the HTTP client would.
			w.Close()
			reopens++
			if w, err = Open(dir, opts); err != nil {
				t.Fatalf("reopen %d: %v", reopens, err)
			}
		}
	}
	if reopens == 0 {
		t.Fatal("no short write fired; the fault schedule is dead")
	}
	w.Close()

	final, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	defer final.Close()
	var got []string
	if err := final.Replay(func(_ int, p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, acked %d (after %d poison/reopen cycles)", len(got), len(acked), reopens)
	}
	for i := range acked {
		if got[i] != acked[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
		}
	}
	t.Logf("%d records acked through %d poison/reopen cycles", len(acked), reopens)
}

// TestChaosSyncFailureSurfacesWithoutPoisoning: an fsync failure is
// reported to the caller but does not poison the append path — the
// bytes are written, only their durability is in doubt, and the next
// sync may succeed.
func TestChaosSyncFailureSurfacesWithoutPoisoning(t *testing.T) {
	dir := t.TempDir()
	// Segment creation syncs too: lay down segment 0 with the real FS
	// so the fault window opens only once appends start.
	w0, err := Open(dir, Options{Policy: SyncNone})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w0.Close()
	inj := chaos.New(2)
	fs := chaos.NewFaultFS(inj, "wal", chaos.FSFaults{SyncFail: 1}, nil)
	w, err := Open(dir, Options{Policy: SyncNone, FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if _, err := w.Append([]byte("a")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Sync(); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("sync = %v, want injected failure", err)
	}
	if _, err := w.Append([]byte("b")); err != nil {
		t.Fatalf("append after sync failure: %v", err)
	}
	inj.Heal()
	if err := w.Sync(); err != nil {
		t.Fatalf("healed sync: %v", err)
	}
}

// TestChaosSyncAlwaysPoisonsOnFailedAppendSync: under SyncAlways the
// ack is the fsync, so an injected sync failure must fail and poison
// the append — acknowledging it would promise durability the journal
// didn't deliver.
func TestChaosSyncAlwaysPoisonsOnFailedAppendSync(t *testing.T) {
	dir := t.TempDir()
	w0, err := Open(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w0.Close()

	inj := chaos.New(2)
	fs := chaos.NewFaultFS(inj, "wal", chaos.FSFaults{SyncFail: 1}, nil)
	w, err := Open(dir, Options{Policy: SyncAlways, FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w.Close()
	if _, err := w.Append([]byte("x")); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("append = %v, want injected sync failure", err)
	}
	if _, err := w.Append([]byte("y")); err == nil {
		t.Fatal("append after poisoned sync succeeded")
	}
}
