// Package wal implements the collector's write-ahead journal: an
// append-only sequence of segment files holding framed, CRC32C-checked
// records. The collector journals every accepted upload batch before
// applying it, so a crash — up to and including kill -9 mid-write —
// loses at most the unacknowledged tail of the log, never an
// acknowledged batch (under SyncAlways) and never already-synced data
// (under any policy).
//
// Record framing mirrors the columnar chunk blocks (internal/classify
// codec): a leading CRC32C (Castagnoli) over the rest of the record,
// then a uvarint payload length, then the payload:
//
//	[4B crc32c over the rest] [uvarint len] [payload]
//
// Segments are numbered files "wal-%08d.seg" in one directory. A
// segment begins with a header naming its id, so a stray or renamed
// file cannot masquerade as another position in the log. Appends go to
// the highest segment and rotate to a fresh one past a size threshold;
// checkpointing rotates explicitly and garbage-collects the fully
// checkpointed prefix with RemoveBefore.
//
// Crash tolerance on Open follows the standard WAL contract: a
// truncated record at the end of the final segment — the torn write of
// the crash itself — is detected and truncated away; every other
// corruption (a checksum mismatch on a fully present record, garbage
// in the middle of a segment, a non-final segment that does not end
// cleanly) is reported as an error and refuses the log, because silent
// skipping would drop acknowledged data.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"crossborder/internal/chaos"
)

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: an acknowledged batch
	// survives kill -9 and power loss. The durable default.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.Interval):
	// a crash loses at most one interval of acknowledged batches, which
	// upload-side retries re-deliver (server dedup makes that safe).
	SyncInterval
	// SyncNone never fsyncs explicitly; the OS flushes on its own
	// schedule. Survives process crashes (the page cache persists) but
	// not power loss.
	SyncNone
)

// ParsePolicy maps the -wal-sync flag values to a policy.
func ParsePolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, interval or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options tunes a WAL.
type Options struct {
	// Policy is the fsync policy (default SyncAlways).
	Policy SyncPolicy
	// Interval is the SyncInterval flush period (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates to a new segment once the current one
	// exceeds this size (default 64 MiB).
	SegmentBytes int64
	// FS overrides the filesystem (default chaos.OS, the real one).
	// The chaos harness injects short writes, fsync failures, and torn
	// renames through it.
	FS chaos.FS
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = chaos.OS
	}
	return o
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segMagic opens every segment file, followed by a uvarint segment id.
var segMagic = [5]byte{'X', 'W', 'A', 'L', '1'}

// ErrCorrupt reports unrecoverable log damage: a record that is fully
// present but fails its checksum, or garbage not attributable to the
// torn tail of the final segment. The WAL refuses to open rather than
// silently skip acknowledged data.
var ErrCorrupt = errors.New("wal: corrupt journal")

const segPattern = "wal-%08d.seg"

func segName(id int) string { return fmt.Sprintf(segPattern, id) }

// WAL is an open journal. Append/Sync/Rotate/RemoveBefore serialize on
// an internal mutex; one process owns a WAL directory at a time.
type WAL struct {
	dir  string
	opts Options

	mu     sync.Mutex
	segs   []int // ascending segment ids present on disk
	f      chaos.File
	size   int64
	dirty  bool // bytes written since the last fsync
	broken bool // a failed append poisoned the tail; refuse further writes
	closed bool

	stop chan struct{}
	done chan struct{}
}

// Open opens (creating if needed) the journal in dir. Recovery of a
// torn tail happens here: the final segment is scanned and truncated
// after its last intact record. Any other damage returns ErrCorrupt.
// The caller replays records via Replay before appending new ones.
func Open(dir string, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	entries, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var id int
		if _, err := fmt.Sscanf(e.Name(), segPattern, &id); err == nil && e.Name() == segName(id) {
			segs = append(segs, id)
		}
	}
	sort.Ints(segs)
	for i := 1; i < len(segs); i++ {
		if segs[i] != segs[i-1]+1 {
			return nil, fmt.Errorf("%w: segment gap: %s missing", ErrCorrupt, segName(segs[i-1]+1))
		}
	}

	w := &WAL{dir: dir, opts: opts, segs: segs, stop: make(chan struct{}), done: make(chan struct{})}

	// Validate every segment: non-final segments must end cleanly;
	// the final segment may carry a torn tail, which is truncated.
	for i, id := range segs {
		final := i == len(segs)-1
		if err := w.validateSegment(id, final); err != nil {
			return nil, err
		}
	}

	if len(segs) == 0 {
		if err := w.createSegment(0); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := opts.FS.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0)
		if err != nil {
			return nil, err
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, err
		}
		w.f, w.size = f, size
	}

	if opts.Policy == SyncInterval {
		go w.flushLoop()
	} else {
		close(w.done)
	}
	return w, nil
}

// validateSegment scans one segment. For the final segment a torn tail
// is truncated in place; for any other segment it is corruption.
func (w *WAL) validateSegment(id int, final bool) error {
	path := filepath.Join(w.dir, segName(id))
	data, err := w.opts.FS.ReadFile(path)
	if err != nil {
		return err
	}
	good, err := scanSegment(data, id)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, segName(id), err)
	}
	if good == int64(len(data)) && len(data) > 0 {
		return nil
	}
	// Torn tail — or a zero-length final segment (crash between create
	// and header write), which needs its header rewritten below.
	if !final {
		return fmt.Errorf("%w: %s: torn record in non-final segment", ErrCorrupt, segName(id))
	}
	if good == 0 {
		// The header itself was torn: rewrite it so the segment is
		// append-ready. (scanSegment never returns 0 < good < header.)
		hdr := append([]byte(nil), segMagic[:]...)
		hdr = binary.AppendUvarint(hdr, uint64(id))
		if err := w.opts.FS.WriteFile(path, hdr, 0o644); err != nil {
			return err
		}
		return nil
	}
	return w.opts.FS.Truncate(path, good)
}

// scanSegment walks a segment's bytes. It returns the offset after the
// last intact record (the truncation point when the remainder is a
// torn tail) and a nil error, or an error when the damage is not a
// clean tail truncation: a fully present record failing its checksum,
// or a header naming the wrong segment.
func scanSegment(data []byte, wantID int) (good int64, err error) {
	if len(data) == 0 {
		return 0, nil // crash between segment create and header write
	}
	if len(data) < len(segMagic) {
		if isPrefix(data, segMagic[:]) {
			return 0, nil // torn header write
		}
		return 0, errors.New("bad segment header")
	}
	if string(data[:len(segMagic)]) != string(segMagic[:]) {
		return 0, errors.New("bad segment magic")
	}
	off := len(segMagic)
	id, n := binary.Uvarint(data[off:])
	if n <= 0 {
		if off+10 > len(data) {
			return 0, nil // torn header write
		}
		return 0, errors.New("bad segment id")
	}
	if int(id) != wantID {
		return 0, fmt.Errorf("segment header names id %d", id)
	}
	off += n

	pos := int64(off)
	for off < len(data) {
		rec := data[off:]
		if len(rec) < 4 {
			return pos, nil // torn: checksum itself incomplete
		}
		sum := binary.BigEndian.Uint32(rec)
		plen, n := binary.Uvarint(rec[4:])
		if n <= 0 {
			// A uvarint is unterminated only at end of input (torn);
			// 10 full continuation bytes mid-file are corruption.
			if len(rec[4:]) >= binary.MaxVarintLen64 {
				return 0, fmt.Errorf("unterminated record length at offset %d", off)
			}
			return pos, nil
		}
		body := rec[4:]
		if uint64(len(body)-n) < plen {
			return pos, nil // torn: declared payload extends past EOF
		}
		body = body[:n+int(plen)]
		if crc32.Checksum(body, castagnoli) != sum {
			return 0, fmt.Errorf("checksum mismatch on record at offset %d", off)
		}
		off += 4 + len(body)
		pos = int64(off)
	}
	return pos, nil
}

func isPrefix(data, of []byte) bool {
	if len(data) > len(of) {
		return false
	}
	return string(data) == string(of[:len(data)])
}

// createSegment starts segment id and makes it the append target. A
// failed create must not leave the half-written file behind: segment
// ids are allocated monotonically and the id is only registered on
// success, so a stray file at this id would become the final segment
// at the next open — burying the true append tail in a non-final
// segment, where a torn record is unrepairable corruption instead of
// a truncatable tail. (Found by the chaos harness: a torn
// checkpoint rotation followed by a torn append was unrecoverable.)
func (w *WAL) createSegment(id int) error {
	hdr := append([]byte(nil), segMagic[:]...)
	hdr = binary.AppendUvarint(hdr, uint64(id))
	path := filepath.Join(w.dir, segName(id))
	f, err := w.opts.FS.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrExist) {
		// A stray from a crashed create of this id (the crash skipped
		// the cleanup below). Never a live segment — those are
		// registered or strictly older — so clear it and retry.
		if rmErr := w.opts.FS.Remove(path); rmErr == nil {
			f, err = w.opts.FS.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
		}
	}
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		w.opts.FS.Remove(path)
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(err)
	}
	if err := w.opts.FS.SyncDir(w.dir); err != nil {
		return abort(err)
	}
	if w.f != nil {
		// Seal the previous segment: whatever the sync policy, a
		// rotated-away segment is fully durable before new appends.
		w.f.Sync()
		w.f.Close()
	}
	w.f, w.size, w.dirty = f, int64(len(hdr)), false
	w.segs = append(w.segs, id)
	return nil
}

// Append journals one record. It returns the id of the segment the
// record landed in. Under SyncAlways the record is on stable storage
// when Append returns. A failed append poisons the WAL (the tail may
// hold a torn record that later appends would bury as mid-file
// corruption); every subsequent Append fails until the log is
// reopened.
func (w *WAL) Append(payload []byte) (seg int, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: closed")
	}
	if w.broken {
		return 0, errors.New("wal: poisoned by an earlier failed append; reopen to recover")
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	var hdr [4 + binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[4:], uint64(len(payload)))
	crc := crc32.Checksum(hdr[4:4+n], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.BigEndian.PutUint32(hdr[:4], crc)

	if _, err := w.f.Write(hdr[:4+n]); err != nil {
		w.broken = true
		return 0, err
	}
	if _, err := w.f.Write(payload); err != nil {
		w.broken = true
		return 0, err
	}
	w.size += int64(4 + n + len(payload))
	w.dirty = true
	if w.opts.Policy == SyncAlways {
		if err := w.f.Sync(); err != nil {
			w.broken = true
			return 0, err
		}
		w.dirty = false
	}
	return w.segs[len(w.segs)-1], nil
}

// Sync forces buffered appends to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if w.f == nil || !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.dirty = false
	return nil
}

// Rotate seals the current segment and starts a fresh one, returning
// the new segment's id. Checkpoints rotate so the checkpoint can name
// "replay everything from segment N" and RemoveBefore(N) can reclaim
// the prefix.
func (w *WAL) Rotate() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.segs[len(w.segs)-1], nil
}

func (w *WAL) rotateLocked() error {
	if w.broken {
		return errors.New("wal: poisoned by an earlier failed append; reopen to recover")
	}
	return w.createSegment(w.segs[len(w.segs)-1] + 1)
}

// Segments returns the ids of the segments currently on disk,
// ascending.
func (w *WAL) Segments() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.segs...)
}

// Replay streams every record of every segment, oldest first, to fn.
// fn's seg argument names the segment the record came from. Replay is
// meant for the window between Open and the first Append (recovery);
// it reads the files directly.
func (w *WAL) Replay(fn func(seg int, payload []byte) error) error {
	for _, id := range w.Segments() {
		if err := w.ReplaySegment(id, fn); err != nil {
			return err
		}
	}
	return nil
}

// ReplaySegment streams one segment's records to fn.
func (w *WAL) ReplaySegment(id int, fn func(seg int, payload []byte) error) error {
	data, err := w.opts.FS.ReadFile(filepath.Join(w.dir, segName(id)))
	if err != nil {
		return err
	}
	good, err := scanSegment(data, id)
	if err != nil {
		return fmt.Errorf("%w: %s: %v", ErrCorrupt, segName(id), err)
	}
	data = data[:good]
	if len(data) == 0 {
		return nil
	}
	off := len(segMagic)
	_, n := binary.Uvarint(data[off:])
	off += n
	for off < len(data) {
		plen, n := binary.Uvarint(data[off+4:])
		start := off + 4 + n
		if err := fn(id, data[start:start+int(plen)]); err != nil {
			return err
		}
		off = start + int(plen)
	}
	return nil
}

// RemoveBefore deletes every segment with id < seg. The caller
// guarantees those records are covered by a durable checkpoint.
func (w *WAL) RemoveBefore(seg int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.segs[:0]
	for _, id := range w.segs {
		if id >= seg {
			kept = append(kept, id)
			continue
		}
		if err := w.opts.FS.Remove(filepath.Join(w.dir, segName(id))); err != nil {
			// Keep the list truthful: everything not removed stays.
			kept = append(kept, id)
			w.segs = kept
			return err
		}
	}
	w.segs = kept
	return w.opts.FS.SyncDir(w.dir)
}

// Close flushes and closes the journal.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.syncLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.f = nil
	}
	w.mu.Unlock()
	if w.opts.Policy == SyncInterval {
		close(w.stop)
		<-w.done
	}
	return err
}

// flushLoop is the SyncInterval background syncer.
func (w *WAL) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				w.syncLocked()
			}
			w.mu.Unlock()
		case <-w.stop:
			return
		}
	}
}
