package wal

import (
	"testing"
	"time"
)

// BenchmarkWALAppend measures the journal append path — frame, CRC32C,
// buffered write, rotation bookkeeping — per policy on a representative
// 4KiB record (a ~130-event binary batch). The "none" and "interval"
// variants are CPU-bound and pinned in BENCH_baseline.json; "always" is
// fsync-bound and reported for visibility only (its cost is the disk's,
// not the code's).
func BenchmarkWALAppend(b *testing.B) {
	rec := make([]byte, 4096)
	for i := range rec {
		rec[i] = byte(i * 31)
	}
	for _, bc := range []struct {
		name string
		opts Options
	}{
		{"none", Options{Policy: SyncNone}},
		{"interval", Options{Policy: SyncInterval, Interval: 100 * time.Millisecond}},
		{"always", Options{Policy: SyncAlways}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w, err := Open(b.TempDir(), bc.opts)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.SetBytes(int64(len(rec)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := w.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
