package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func collect(t *testing.T, w *WAL) [][]byte {
	t.Helper()
	var out [][]byte
	if err := w.Replay(func(_ int, p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func mustOpen(t *testing.T, dir string, opts Options) *WAL {
	t.Helper()
	w, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// TestRoundTrip: appended records come back verbatim, in order, across
// a close/reopen and across all sync policies.
func TestRoundTrip(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, dir, Options{Policy: p, Interval: 5 * time.Millisecond})
			var want [][]byte
			for i := 0; i < 50; i++ {
				rec := bytes.Repeat([]byte{byte(i)}, i*7%97+1)
				want = append(want, rec)
				if _, err := w.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2 := mustOpen(t, dir, Options{Policy: p})
			got := collect(t, w2)
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("record %d = %x, want %x", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRotationAndGC: appends rotate past the size threshold, Rotate
// cuts explicitly, and RemoveBefore reclaims exactly the prefix.
func TestRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Policy: SyncNone, SegmentBytes: 64})
	for i := 0; i < 20; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(w.Segments()); n < 3 {
		t.Fatalf("size rotation produced only %d segments", n)
	}
	cut, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("post-checkpoint")); err != nil {
		t.Fatal(err)
	}
	if err := w.RemoveBefore(cut); err != nil {
		t.Fatal(err)
	}
	segs := w.Segments()
	if segs[0] != cut {
		t.Fatalf("segments after GC start at %d, want %d", segs[0], cut)
	}
	recs := collect(t, w)
	if len(recs) != 1 || string(recs[0]) != "post-checkpoint" {
		t.Fatalf("post-GC replay = %q", recs)
	}
	// Reopen after GC: the contiguous suffix is a valid log.
	w.Close()
	w2 := mustOpen(t, dir, Options{})
	if recs := collect(t, w2); len(recs) != 1 {
		t.Fatalf("reopen after GC replayed %d records", len(recs))
	}
}

// TestTornTailTruncated: a record cut mid-payload by a crash is
// truncated on open and replay yields exactly the intact prefix.
// Every truncation point within the final record is exercised.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Policy: SyncNone})
	w.Append([]byte("alpha"))
	w.Append([]byte("beta"))
	w.Close()
	path := filepath.Join(dir, segName(0))
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// "beta" occupies the last 4 (crc) + 1 (len) + 4 (payload) bytes.
	for cut := 1; cut <= 8; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			dir2 := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir2, segName(0)), whole[:len(whole)-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			w2 := mustOpen(t, dir2, Options{})
			recs := collect(t, w2)
			if len(recs) != 1 || string(recs[0]) != "alpha" {
				t.Fatalf("cut %d: replay = %q, want [alpha]", cut, recs)
			}
			// The torn bytes are gone: appends after recovery extend a
			// clean tail.
			if _, err := w2.Append([]byte("gamma")); err != nil {
				t.Fatal(err)
			}
			w2.Close()
			w3 := mustOpen(t, dir2, Options{})
			if recs := collect(t, w3); len(recs) != 2 || string(recs[1]) != "gamma" {
				t.Fatalf("cut %d: post-recovery replay = %q", cut, recs)
			}
		})
	}
}

// TestZeroLengthSegment: a crash between segment creation and header
// write leaves an empty final segment; it must open cleanly and accept
// appends.
func TestZeroLengthSegment(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Policy: SyncNone})
	w.Append([]byte("one"))
	w.Rotate()
	w.Close()
	// Simulate the crash: empty the last segment.
	last := segName(1)
	if err := os.WriteFile(filepath.Join(dir, last), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := mustOpen(t, dir, Options{})
	if recs := collect(t, w2); len(recs) != 1 || string(recs[0]) != "one" {
		t.Fatalf("replay = %q", recs)
	}
	if _, err := w2.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	w3 := mustOpen(t, dir, Options{})
	if recs := collect(t, w3); len(recs) != 2 {
		t.Fatalf("after append to recovered empty segment: %q", recs)
	}
}

// TestMidFileCorruptionRefused: a checksum-corrupt record that is NOT
// the torn tail — valid data follows it, or it sits in a non-final
// segment — must refuse the log, not silently skip.
func TestMidFileCorruptionRefused(t *testing.T) {
	build := func(t *testing.T) (dir string, recOff int64) {
		dir = t.TempDir()
		w := mustOpen(t, dir, Options{Policy: SyncNone})
		w.Append([]byte("first-record"))
		st, err := os.Stat(filepath.Join(dir, segName(0)))
		if err != nil {
			t.Fatal(err)
		}
		recOff = st.Size() - 6 // inside "first-record"'s payload
		w.Append([]byte("second-record"))
		w.Close()
		return dir, recOff
	}

	flip := func(t *testing.T, path string, off int64) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("middle-of-final-segment", func(t *testing.T) {
		dir, off := build(t)
		flip(t, filepath.Join(dir, segName(0)), off)
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("non-final-segment", func(t *testing.T) {
		dir, off := build(t)
		// Add a later segment so segment 0 is non-final; corrupt even
		// its LAST record — tail tolerance applies only to the final
		// segment.
		w := mustOpen(t, dir, Options{Policy: SyncNone})
		w.Rotate()
		w.Append([]byte("later"))
		w.Close()
		data, _ := os.ReadFile(filepath.Join(dir, segName(0)))
		data[int64(len(data))-3] ^= 0xff
		os.WriteFile(filepath.Join(dir, segName(0)), data, 0o644)
		_ = off
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("truncated-non-final-segment", func(t *testing.T) {
		dir, _ := build(t)
		w := mustOpen(t, dir, Options{Policy: SyncNone})
		w.Rotate()
		w.Append([]byte("later"))
		w.Close()
		path := filepath.Join(dir, segName(0))
		st, _ := os.Stat(path)
		if err := os.Truncate(path, st.Size()-3); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("segment-gap", func(t *testing.T) {
		dir, _ := build(t)
		w := mustOpen(t, dir, Options{Policy: SyncNone})
		w.Rotate()
		w.Rotate()
		w.Close()
		if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("mislabeled-segment", func(t *testing.T) {
		dir, _ := build(t)
		// Rename segment 0 to segment 1: the header still says 0.
		if err := os.Rename(filepath.Join(dir, segName(0)), filepath.Join(dir, segName(1))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("open = %v, want ErrCorrupt", err)
		}
	})
}

// TestAppendFailurePoisons: after a failed append the WAL refuses
// further appends instead of burying a torn record mid-file.
func TestAppendFailurePoisons(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, Options{Policy: SyncNone})
	w.Append([]byte("ok"))
	// Force the failure by closing the file out from under the WAL.
	w.f.Close()
	if _, err := w.Append([]byte("fails")); err == nil {
		t.Fatal("append on closed file succeeded")
	}
	if _, err := w.Append([]byte("also-fails")); err == nil {
		t.Fatal("append after poison succeeded")
	}
}
