package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crossborder/internal/chaos"
)

// tearFS tears exactly one armed Write through files it opened: half
// the bytes land, then an error — a deterministic stand-in for the
// chaos injector's short-write fault, aimed at a specific call.
type tearFS struct {
	chaos.FS
	mu    sync.Mutex
	armed bool
}

func (f *tearFS) arm() {
	f.mu.Lock()
	f.armed = true
	f.mu.Unlock()
}

func (f *tearFS) OpenFile(name string, flag int, perm os.FileMode) (chaos.File, error) {
	file, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &tearFile{File: file, fs: f}, nil
}

type tearFile struct {
	chaos.File
	fs *tearFS
}

func (t *tearFile) Write(p []byte) (int, error) {
	t.fs.mu.Lock()
	fire := t.fs.armed && len(p) > 1
	if fire {
		t.fs.armed = false
	}
	t.fs.mu.Unlock()
	if fire {
		n, _ := t.File.Write(p[:len(p)/2])
		return n, errors.New("tearfs: torn write")
	}
	return t.File.Write(p)
}

// TestTornRotationDoesNotBuryTail is the regression test for the bug
// the chaos harness found: a torn segment-header write during Rotate
// used to leave the half-created file on disk. Every later rotation
// then hit O_EXCL on the stray while appends kept landing in the old
// segment — so after one more torn append, reopening repaired the
// stray as the final segment and reported the real tail as a torn
// record in a non-final segment: permanent ErrCorrupt. A failed create
// must leave no trace, appends must keep working, and a poisoned log
// must refuse Rotate like it refuses Append.
func TestTornRotationDoesNotBuryTail(t *testing.T) {
	dir := t.TempDir()
	fs := &tearFS{FS: chaos.OS}
	w := mustOpen(t, dir, Options{Policy: SyncNone, FS: fs})

	var acked [][]byte
	ack := func(i int) {
		t.Helper()
		rec := []byte(fmt.Sprintf("record-%03d", i))
		if _, err := w.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked = append(acked, rec)
	}
	for i := 0; i < 10; i++ {
		ack(i)
	}

	fs.arm()
	if _, err := w.Rotate(); err == nil {
		t.Fatal("rotate with a torn header write must fail")
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed rotation left %s behind (stat err %v)", segName(1), err)
	}
	if got := w.Segments(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("segments after failed rotation = %v, want [0]", got)
	}

	// The log is not poisoned by a failed rotation — the tear happened
	// in the discarded file, never in the live segment.
	for i := 10; i < 15; i++ {
		ack(i)
	}

	// Now tear an append for real: this poisons, and a poisoned log
	// must refuse to rotate (rotating would bury the torn tail in a
	// non-final segment).
	fs.arm()
	if _, err := w.Append([]byte("doomed")); err == nil {
		t.Fatal("torn append must fail")
	}
	if _, err := w.Rotate(); err == nil {
		t.Fatal("rotate on a poisoned log must fail")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen on the clean filesystem: the torn tail truncates away and
	// exactly the acknowledged records replay.
	w2 := mustOpen(t, dir, Options{Policy: SyncNone})
	got := collect(t, w2)
	if len(got) != len(acked) {
		t.Fatalf("replayed %d records, want %d", len(got), len(acked))
	}
	for i := range acked {
		if string(got[i]) != string(acked[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], acked[i])
		}
	}
}

// TestRotateClearsStraySegmentFile: a crash between creating the next
// segment file and registering it (or a pre-fix torn create) leaves a
// stray at the next id. Rotation must clear it and proceed rather than
// fail O_EXCL forever.
func TestRotateClearsStraySegmentFile(t *testing.T) {
	for _, stray := range []string{"XW", "not-a-segment-header"} {
		t.Run(fmt.Sprintf("stray-%q", stray), func(t *testing.T) {
			dir := t.TempDir()
			w := mustOpen(t, dir, Options{Policy: SyncNone})
			if _, err := w.Append([]byte("before")); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte(stray), 0o644); err != nil {
				t.Fatal(err)
			}
			seg, err := w.Rotate()
			if err != nil {
				t.Fatalf("rotate over stray: %v", err)
			}
			if seg != 1 {
				t.Fatalf("rotated to segment %d, want 1", seg)
			}
			if _, err := w.Append([]byte("after")); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2 := mustOpen(t, dir, Options{})
			got := collect(t, w2)
			if len(got) != 2 || string(got[0]) != "before" || string(got[1]) != "after" {
				t.Fatalf("replayed %q, want [before after]", got)
			}
		})
	}
}
