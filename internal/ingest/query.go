package ingest

import (
	"errors"
	"net/http"
	"time"
)

// ErrNoSnapshot is what a query tier reports before its first merged
// view is published (503 over HTTP).
var ErrNoSnapshot = errors.New("ingest: no snapshot published yet")

// QueryServer is the read-only query half of the /v1 API over any
// snapshot source. The collector's Server wires these same handlers to
// its live snapshot; the fan-in tier (mergerd) mounts a QueryServer
// over its merged snapshots, so clients query a cluster and a single
// collector through one identical API:
//
//	GET /v1/experiments       registry ids (JSON array)
//	GET /v1/experiments/{id}  artifact of the current snapshot
//	GET /v1/stats             aggregates + store footprint of the snapshot
//	GET /healthz              liveness (always 200)
//	GET /readyz               readiness (200 once a snapshot is published)
type QueryServer struct {
	snap    func() *Snapshot // nil result = nothing published yet
	ready   func() error     // nil func or nil result = ready
	health  func() (detail any, degraded bool)
	started time.Time
	mux     *http.ServeMux
}

// OnHealth registers a degradation probe, called per request. detail
// (e.g. a []cluster.ShardHealth) rides on /v1/stats as "shards" and on
// /readyz whenever degraded is true, where it flips the status string
// to "degraded" — still 200: a degraded view serves, it just says so.
// Set before the server starts handling requests.
func (q *QueryServer) OnHealth(f func() (detail any, degraded bool)) { q.health = f }

// NewQueryServer builds a query server over a snapshot source. snap is
// called per request and must be cheap and concurrency-safe (an atomic
// pointer load); ready, when non-nil, supplies the /readyz failure
// reason while the source is still assembling its first view.
func NewQueryServer(snap func() *Snapshot, ready func() error) *QueryServer {
	q := &QueryServer{snap: snap, ready: ready, started: time.Now(), mux: http.NewServeMux()}
	q.mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		serveExperimentList(w)
	})
	q.mux.HandleFunc("GET /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		snap, err := q.current()
		if err != nil {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		serveExperiment(w, r, snap)
	})
	q.mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		snap, err := q.current()
		if err != nil {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		resp := statsResponse(snap, 0)
		if q.health != nil {
			resp.Shards, _ = q.health()
		}
		writeJSON(w, http.StatusOK, resp)
	})
	q.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"uptime": time.Since(q.started).Round(time.Second).String(),
		})
	})
	q.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		snap, err := q.current()
		if err != nil {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "not ready", "error": err.Error()})
			return
		}
		resp := map[string]any{
			"status": "ready",
			"epoch":  snap.Epoch(),
			"rows":   snap.Rows(),
		}
		if q.health != nil {
			if detail, degraded := q.health(); degraded {
				resp["status"] = "degraded"
				resp["shards"] = detail
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return q
}

// current resolves the snapshot to serve, or the not-ready reason.
func (q *QueryServer) current() (*Snapshot, error) {
	if q.ready != nil {
		if err := q.ready(); err != nil {
			return nil, err
		}
	}
	snap := q.snap()
	if snap == nil {
		return nil, ErrNoSnapshot
	}
	return snap, nil
}

// ServeHTTP implements http.Handler.
func (q *QueryServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { q.mux.ServeHTTP(w, r) }
