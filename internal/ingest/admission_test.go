package ingest

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newLimitedServer(t *testing.T, lim Limits) (*Collector, *httptest.Server, map[int32][]Event) {
	t.Helper()
	world, evs, _ := rig(t)
	c := NewCollector(world, Config{EpochEvents: 1 << 20, Workers: 2})
	srv := httptest.NewServer(NewServer(c, WithLimits(lim)))
	t.Cleanup(func() {
		srv.Close()
		c.Close()
	})
	return c, srv, evs
}

func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return string(raw)
}

// TestUploadAdmissionRejectsOverload saturates a MaxInFlight=1 server
// with one upload whose body never finishes, then asserts a concurrent
// upload is turned away immediately with 429 + Retry-After — admission
// control sheds load instead of queueing it on the ingest lock.
func TestUploadAdmissionRejectsOverload(t *testing.T) {
	_, srv, evs := newLimitedServer(t, Limits{MaxInFlight: 1})

	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/upload", pr)
		req.Header.Set("Content-Type", ContentTypeNDJSON)
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	// Wait until the stalled upload holds the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(metricsBody(t, srv.URL), "collectd_inflight_uploads 1") {
		if time.Now().After(deadline) {
			t.Fatal("stalled upload never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(srv.URL+"/v1/upload", ContentTypeNDJSON, strings.NewReader(""))
	if err != nil {
		t.Fatalf("second upload: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated upload = %d %s, want 429", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After")
	}
	if !strings.Contains(string(raw), ErrOverloaded.Error()) {
		t.Fatalf("429 body %q does not name the overload", raw)
	}
	if !strings.Contains(metricsBody(t, srv.URL), "collectd_overload_rejected_total 1") {
		t.Fatal("overload rejection not counted in /metrics")
	}

	// Release the stalled upload: the slot frees and uploads flow again.
	var uid int32 = -1
	for u := range evs {
		if uid < 0 || u < uid {
			uid = u
		}
	}
	pw.CloseWithError(io.ErrClosedPipe)
	<-done
	cl := &Client{Base: srv.URL, Retry: &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}}
	if _, err := cl.Upload(Batch{User: uid, Seq: 0, Events: evs[uid][:3]}); err != nil {
		t.Fatalf("upload after release: %v", err)
	}
}

// TestUploadAdmissionUnderContention: a fleet of retrying uploaders all
// land their batches through a single admission slot — backpressure
// slows clients down, it never loses data.
func TestUploadAdmissionUnderContention(t *testing.T) {
	c, srv, evs := newLimitedServer(t, Limits{MaxInFlight: 1})

	uids := make([]int32, 0, len(evs))
	for uid := range evs {
		uids = append(uids, uid)
	}
	if len(uids) > 8 {
		uids = uids[:8]
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(uids))
	for _, uid := range uids {
		wg.Add(1)
		go func(uid int32) {
			defer wg.Done()
			cl := &Client{Base: srv.URL, Retry: &RetryPolicy{MaxAttempts: 100, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}}
			n := len(evs[uid])
			if n > 40 {
				n = 40
			}
			if _, err := cl.Upload(Batch{User: uid, Seq: 0, Events: evs[uid][:n]}); err != nil {
				errs <- err
			}
		}(uid)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("contended upload: %v", err)
	}
	for _, uid := range uids {
		want := len(evs[uid])
		if want > 40 {
			want = 40
		}
		if got := int(c.nextSeqOf(uid)); got != want {
			t.Fatalf("user %d landed %d events, want %d", uid, got, want)
		}
	}
}

// TestUploadBodyCap: a body over MaxUploadBytes is refused with 413,
// not read to completion.
func TestUploadBodyCap(t *testing.T) {
	_, srv, evs := newLimitedServer(t, Limits{MaxUploadBytes: 128})
	var uid int32 = -1
	for u := range evs {
		if uid < 0 || u < uid {
			uid = u
		}
	}
	// A real encoded batch whose event stream blows past the cap while
	// the header still fits — the overflow hits mid-decode.
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, Batch{User: uid, Seq: 0, Events: evs[uid][:50]}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if buf.Len() <= 128 {
		t.Fatalf("test batch only %d bytes; cannot exceed the cap", buf.Len())
	}
	resp, err := http.Post(srv.URL+"/v1/upload", ContentTypeNDJSON, &buf)
	if err != nil {
		t.Fatalf("oversized upload: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d, want 413", resp.StatusCode)
	}
}

// TestUploadDeadlineCutsSlowBody: with UploadTimeout set, a client
// trickling its body forever is cut off by the per-request connection
// deadline instead of holding an admission slot indefinitely.
func TestUploadDeadlineCutsSlowBody(t *testing.T) {
	_, srv, _ := newLimitedServer(t, Limits{MaxInFlight: 1, UploadTimeout: 150 * time.Millisecond})

	// Trickle whitespace forever: each read succeeds, so only the
	// absolute per-request deadline can end this upload. (The trickle
	// also keeps the client's body write loop unblocked so it notices
	// the server hanging up — a Read parked forever on an idle pipe
	// would deadlock the transport's error path.)
	pr, pw := io.Pipe()
	go func() {
		for {
			if _, err := pw.Write([]byte("\n")); err != nil {
				return // transport closed the body: request is over
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/upload", pr)
	req.Header.Set("Content-Type", ContentTypeNDJSON)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("never-ending body got a 200")
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow-body upload held the server %v; deadline did not fire", elapsed)
	}

	// The slot must be free again: a healthy upload goes straight through.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(metricsBody(t, srv.URL), "collectd_inflight_uploads 0") {
		if time.Now().After(deadline) {
			t.Fatal("admission slot never released after deadline cut")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
