package ingest

import (
	"fmt"

	"crossborder/internal/classify"
)

// This file is the shard-export side of the cluster fan-in: a
// collector renders its committed state as a /v1/snapshot payload in
// the checkpoint (XCKP1) wire format — the same encoder and hardened
// decoder the durability layer uses — and the merge tier
// (MergeExports) rebuilds a per-shard view from it. Reusing the
// checkpoint codec means the export carries everything a merger needs
// for free: chunk blocks + class columns, the interner and
// country/publisher tables, the incremental flow maps and dataset
// stats, the epoch history, and the seed/scale identity echo that lets
// the merger refuse a shard built for a different world.

// EncodeSnapshot serializes the collector's committed state as one
// XCKP1 payload (the /v1/snapshot response body). Pending
// (uncommitted) events are not included — they are not classified
// rows yet; the fan-in tier observes them after the shard's next epoch
// commit. The returned epoch identifies the encoded state for
// If-None-Match style caching.
func (c *Collector) EncodeSnapshot() (data []byte, epoch int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	data, err = c.encodeCheckpoint(0)
	return data, len(c.epochs), err
}

// ShardExport is one shard's decoded /v1/snapshot payload: the
// checkpoint meta plus the chunk blocks and class columns, exactly as
// a recovery would see them.
type ShardExport struct {
	meta    *ckptMeta
	blocks  [][]byte
	classes [][]classify.Class
}

// DecodeShardExport parses a /v1/snapshot payload through the
// checkpoint decoder (magic, checksum, and every declared length
// validated).
func DecodeShardExport(data []byte) (*ShardExport, error) {
	meta, blocks, classes, err := decodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("ingest: shard export: %w", err)
	}
	return &ShardExport{meta: meta, blocks: blocks, classes: classes}, nil
}

// Epoch returns the shard's committed epoch at export time.
func (e *ShardExport) Epoch() int { return len(e.meta.Epochs) }

// Rows returns the shard's dataset row count.
func (e *ShardExport) Rows() int { return e.meta.Rows }

// Visits returns the shard's first-party visit count.
func (e *ShardExport) Visits() int { return e.meta.Visits }

// Seed and Scale echo the world identity the shard was built for.
func (e *ShardExport) Seed() int64    { return e.meta.Seed }
func (e *ShardExport) Scale() float64 { return e.meta.Scale }

// History returns the shard's epoch commit log.
func (e *ShardExport) History() []EpochStat { return e.meta.Epochs }

// Users returns the shard's observed user ids (ascending). The slice
// is owned by the export; callers must not mutate it.
func (e *ShardExport) Users() []int32 { return e.meta.Users }
