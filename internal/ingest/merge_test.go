package ingest

import (
	"strings"
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/scenario"
)

// shardEvents splits the recorded streams into n disjoint per-shard
// maps (users assigned round-robin — any disjoint partition satisfies
// the merge contract; ring-based assignment is the cluster package's
// concern).
func shardEvents(evs map[int32][]Event, n int) []map[int32][]Event {
	parts := make([]map[int32][]Event, n)
	for i := range parts {
		parts[i] = make(map[int32][]Event)
	}
	for uid, stream := range evs {
		parts[int(uid)%n][uid] = stream
	}
	return parts
}

// exportShards ingests each partition into its own collector (varied
// configs: epoch sizes, chunk sizes, one compressed shard) and returns
// the decoded /v1/snapshot exports.
func exportShards(t *testing.T, world *scenario.Scenario, parts []map[int32][]Event) []*ShardExport {
	t.Helper()
	cfgs := []Config{
		{EpochEvents: 149, Workers: 2, ChunkRows: 64},
		{EpochEvents: 1 << 20, Workers: 1},
		{EpochEvents: 307, Workers: 3, ChunkRows: 128, Compress: true},
	}
	exports := make([]*ShardExport, len(parts))
	for i, part := range parts {
		c := NewCollector(world, cfgs[i%len(cfgs)])
		ingestAll(t, c, part, 197)
		data, epoch, err := c.EncodeSnapshot()
		if err != nil {
			t.Fatalf("shard %d: encode snapshot: %v", i, err)
		}
		if epoch != c.Snapshot().Epoch() {
			t.Fatalf("shard %d: export epoch %d, snapshot epoch %d", i, epoch, c.Snapshot().Epoch())
		}
		ex, err := DecodeShardExport(data)
		if err != nil {
			t.Fatalf("shard %d: decode export: %v", i, err)
		}
		if ex.Epoch() != epoch || ex.Rows() != c.Snapshot().Rows() {
			t.Fatalf("shard %d: export says epoch %d rows %d, collector epoch %d rows %d",
				i, ex.Epoch(), ex.Rows(), epoch, c.Snapshot().Rows())
		}
		c.Close()
		exports[i] = ex
	}
	return exports
}

// TestMergeExportsMatchesRescan is the fan-in merge contract: merging
// per-shard exports yields a snapshot whose dataset, stats, and flow
// maps equal a single collector over the union of the same events —
// and whose aggregates equal a full core.Analyze rescan of the merged
// dataset (the incremental delta path and the rescan agree).
func TestMergeExportsMatchesRescan(t *testing.T) {
	world, evs, _ := rig(t)

	parts := shardEvents(evs, 3)
	exports := exportShards(t, world, parts)
	merged, err := MergeExports(world, exports, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one collector over the union.
	single := NewCollector(world, Config{EpochEvents: 1 << 20, Workers: 2})
	defer single.Close()
	ref := ingestAll(t, single, evs, 197)

	if merged.Rows() != ref.Rows() {
		t.Fatalf("merged %d rows, single collector %d", merged.Rows(), ref.Rows())
	}
	if merged.Epoch() != exports[0].Epoch()+exports[1].Epoch()+exports[2].Epoch() {
		t.Errorf("merged epoch %d is not the sum of shard epochs", merged.Epoch())
	}
	if ms, rs := merged.Stats(), ref.Stats(); ms != rs {
		t.Errorf("merged stats %+v, single-collector stats %+v", ms, rs)
	}
	if st := classify.ComputeStats(merged.Dataset()); merged.Stats() != st {
		t.Errorf("merged stats %+v disagree with ComputeStats over the merged dataset %+v", merged.Stats(), st)
	}

	// The incremental aggregates equal a full rescan of the merged
	// dataset, and the single collector's view.
	ds := merged.Dataset()
	if got, want := merged.TruthAnalysis(), core.Analyze(ds, world.Truth, nil); !got.Equal(want) {
		t.Error("merged truth analysis differs from a full rescan")
	}
	if got, want := merged.IPMapAnalysis(), core.Analyze(ds, world.IPMap, nil); !got.Equal(want) {
		t.Error("merged ipmap analysis differs from a full rescan")
	}
	if got, want := merged.MaxMindAnalysis(), core.Analyze(ds, world.MaxMind, nil); !got.Equal(want) {
		t.Error("merged maxmind analysis differs from a full rescan")
	}
	if !merged.TruthAnalysis().Equal(ref.TruthAnalysis()) ||
		!merged.IPMapAnalysis().Equal(ref.IPMapAnalysis()) ||
		!merged.MaxMindAnalysis().Equal(ref.MaxMindAnalysis()) {
		t.Error("merged flow maps differ from the single-collector flow maps")
	}

	// Classification multisets agree row for row with the reference
	// (order may be a permutation across shards).
	count := func(s *Snapshot) map[classify.Class]int {
		m := make(map[classify.Class]int)
		s.Dataset().EachRow(func(_ int, r classify.Row) { m[r.Class]++ })
		return m
	}
	mc, rc := count(merged), count(ref)
	for cl, n := range rc {
		if mc[cl] != n {
			t.Errorf("class %v: merged %d rows, single collector %d", cl, mc[cl], n)
		}
	}
}

// TestMergeExportsRefusals: the merge rejects exports from another
// world and overlapping user partitions instead of silently producing
// a wrong global view.
func TestMergeExportsRefusals(t *testing.T) {
	world, evs, _ := rig(t)
	parts := shardEvents(evs, 2)
	exports := exportShards(t, world, parts[:2])

	// Same shard twice = overlapping users.
	if _, err := MergeExports(world, []*ShardExport{exports[0], exports[0]}, 1); err == nil ||
		!strings.Contains(err.Error(), "more than one shard") {
		t.Errorf("overlapping shards accepted (err=%v)", err)
	}
}

// TestMergeSingleExportIsIdentity: a one-shard "cluster" merges to the
// shard's own view.
func TestMergeSingleExportIsIdentity(t *testing.T) {
	world, evs, _ := rig(t)
	c := NewCollector(world, Config{EpochEvents: 331, Workers: 2, ChunkRows: 64})
	defer c.Close()
	snap := ingestAll(t, c, evs, 197)
	data, _, err := c.EncodeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := DecodeShardExport(data)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeExports(world, []*ShardExport{ex}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Rows() != snap.Rows() || merged.Stats() != snap.Stats() {
		t.Fatalf("identity merge changed the view: rows %d->%d stats %+v->%+v",
			snap.Rows(), merged.Rows(), snap.Stats(), merged.Stats())
	}
	if !merged.TruthAnalysis().Equal(snap.TruthAnalysis()) {
		t.Error("identity merge changed the truth flow map")
	}
}
