// Package crashtest is the fault-injection harness of the durable
// collector: it runs collectd as a real subprocess, SIGKILLs it at
// randomized points mid-upload, restarts it against the same data
// directory, and asserts the recovered artifacts are byte-identical to
// the batch crossborder.New study — the uninterrupted golden. A
// retrying client rides through every crash, so the harness also
// proves the end-to-end at-least-once contract: kill -9 at any point
// loses nothing that was acknowledged and duplicates nothing that
// wasn't.
package crashtest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"crossborder"
	"crossborder/internal/ingest"
	"crossborder/internal/scenario"
)

const (
	crashSeed   = 1
	crashScale  = 0.05
	crashVisits = 40
)

// daemon is one collectd subprocess bound to a data dir.
type daemon struct {
	cmd  *exec.Cmd
	addr string // host:port actually bound (parsed from stderr)
	errs bytes.Buffer
	mu   sync.Mutex
}

// startDaemon launches collectd. addr may be "127.0.0.1:0" for the
// first start; restarts pass the previously bound port so the client's
// base URL stays valid across crashes.
func startDaemon(t *testing.T, bin, dataDir, addr, walSync string) *daemon {
	t.Helper()
	d := &daemon{}
	d.cmd = exec.Command(bin,
		"-addr", addr,
		"-seed", strconv.Itoa(crashSeed),
		"-scale", fmt.Sprintf("%g", crashScale),
		"-epoch", "1777",
		"-data", dataDir,
		"-wal-sync", walSync,
		"-wal-segment", strconv.Itoa(256<<10), // small segments: rotation + GC exercised for real
	)
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start collectd: %v", err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.errs.WriteString(line + "\n")
			d.mu.Unlock()
			if a, ok := strings.CutPrefix(line, "collectd: serving on "); ok {
				if i := strings.IndexByte(a, ' '); i >= 0 {
					a = a[:i]
				}
				select {
				case addrCh <- a:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("collectd never announced its listen address:\n%s", d.log())
	}
	return d
}

func (d *daemon) log() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.errs.String()
}

// waitReady polls /readyz until the daemon accepts uploads and returns
// how long recovery took from the poll start.
func (d *daemon) waitReady(t *testing.T) time.Duration {
	t.Helper()
	start := time.Now()
	deadline := start.Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + d.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return time.Since(start)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("daemon never became ready:\n%s", d.log())
	return 0
}

// kill9 is the crash: SIGKILL, no warning, no cleanup.
func (d *daemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.cmd.Wait()
}

// stopGracefully sends SIGTERM and requires a clean exit: drained
// uploads, final checkpoint, exit code 0.
func (d *daemon) stopGracefully(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("collectd exited %v on SIGTERM, want 0:\n%s", err, d.log())
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("collectd did not exit within 30s of SIGTERM:\n%s", d.log())
	}
	if !strings.Contains(d.log(), "checkpointed epoch") {
		t.Fatalf("graceful shutdown wrote no checkpoint:\n%s", d.log())
	}
}

// crashReport is the recovery-time measurement artifact
// (CRASHTEST_REPORT names the output file; CI uploads it).
type crashReport struct {
	Seed        int64       `json:"world_seed"`
	Scale       float64     `json:"world_scale"`
	Runs        []runReport `json:"runs"`
	GeneratedBy string      `json:"generated_by"`
}

type runReport struct {
	Kind        string  `json:"kind"` // "uninterrupted" | "crash"
	HarnessSeed uint64  `json:"harness_seed,omitempty"`
	Kills       int     `json:"kills"`
	RecoveryMs  []int64 `json:"recovery_ms"`
	UploadSecs  float64 `json:"upload_secs"`
}

// TestCrashRecoveryGoldenParity is the durability acceptance test:
//
//  1. golden — the batch crossborder.New study at the same params;
//  2. an uninterrupted durable collectd run must serve artifacts
//     byte-identical to it (WAL + checkpoint in the loop, no faults);
//  3. N crash runs — collectd SIGKILLed at randomized points while a
//     retrying client uploads — must each recover to the same bytes.
//
// CRASHTEST_RUNS overrides the crash-run count (default 2; each run
// takes a few seconds). CRASHTEST_REPORT writes recovery timings JSON.
func TestCrashRecoveryGoldenParity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash harness is not short")
	}

	bin := filepath.Join(t.TempDir(), "collectd")
	build := exec.Command("go", "build", "-o", bin, "crossborder/cmd/collectd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building collectd: %v\n%s", err, out)
	}

	study, err := crossborder.New(context.Background(),
		crossborder.WithSeed(crashSeed),
		crossborder.WithScale(crashScale),
		crossborder.WithVisitsPerUser(crashVisits))
	if err != nil {
		t.Fatal(err)
	}
	want := study.RenderAll()
	ids := crossborder.ExperimentIDs()

	world := scenario.BuildWorld(scenario.Params{Seed: crashSeed, Scale: crashScale, VisitsPerUser: crashVisits})
	events := ingest.RecordSimulation(world, crashVisits, 3)

	crashRuns := 2
	if v := os.Getenv("CRASHTEST_RUNS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			crashRuns = n
		}
	}

	report := crashReport{Seed: crashSeed, Scale: crashScale, GeneratedBy: "internal/ingest/crashtest"}

	// checkArtifacts fetches every experiment and compares bytes.
	checkArtifacts := func(t *testing.T, cl *ingest.Client, label string) {
		t.Helper()
		for i, id := range ids {
			text, _, err := cl.Artifact(id)
			if err != nil {
				t.Fatalf("%s: artifact %s: %v", label, id, err)
			}
			if text != want[i] {
				t.Errorf("%s: artifact %s differs from the batch study", label, id)
			}
		}
	}

	// Run 0: uninterrupted durable run — the journaling and checkpoint
	// machinery itself must not perturb the dataset.
	t.Run("uninterrupted", func(t *testing.T) {
		dir := t.TempDir()
		d := startDaemon(t, bin, dir, "127.0.0.1:0", "interval")
		d.waitReady(t)
		cl := &ingest.Client{Base: "http://" + d.addr, Binary: true,
			Retry: &ingest.RetryPolicy{MaxAttempts: 10, BaseDelay: 5 * time.Millisecond}}
		up := time.Now()
		if _, err := cl.Replay(events, 768, 1); err != nil {
			t.Fatalf("replay: %v\n%s", err, d.log())
		}
		if _, _, err := cl.Flush(); err != nil {
			t.Fatal(err)
		}
		checkArtifacts(t, cl, "uninterrupted")
		report.Runs = append(report.Runs, runReport{Kind: "uninterrupted", UploadSecs: time.Since(up).Seconds()})

		// Graceful shutdown writes a final checkpoint; a restart must
		// come back ready with the same artifacts, replaying nothing of
		// consequence.
		d.stopGracefully(t)
		d2 := startDaemon(t, bin, dir, d.addr, "interval")
		rec := d2.waitReady(t)
		checkArtifacts(t, cl, "post-graceful-restart")
		report.Runs[len(report.Runs)-1].RecoveryMs = []int64{rec.Milliseconds()}
		d2.stopGracefully(t)
	})

	// Crash runs: kill -9 at randomized points while uploads stream.
	// wal-sync=always on the first run (every acknowledged batch is on
	// disk when the SIGKILL lands), interval on the rest (the torn tail
	// is healed by the client's re-sends).
	for run := 0; run < crashRuns; run++ {
		hseed := uint64(0x9E3779B97F4A7C15 * uint64(run+1))
		walSync := "interval"
		if run == 0 {
			walSync = "always"
		}
		t.Run(fmt.Sprintf("crash-run-%d-%s", run, walSync), func(t *testing.T) {
			rng := rand.New(rand.NewPCG(hseed, uint64(run)))
			dir := t.TempDir()
			d := startDaemon(t, bin, dir, "127.0.0.1:0", walSync)
			d.waitReady(t)
			cl := &ingest.Client{Base: "http://" + d.addr, Binary: true,
				// Generous budget: the client must outlast a kill plus a
				// restart plus recovery (seconds), retrying 503s and
				// connection errors the whole way.
				Retry: &ingest.RetryPolicy{MaxAttempts: 400, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}}

			rr := runReport{Kind: "crash", HarnessSeed: hseed, Kills: 2}
			upStart := time.Now()
			uploadDone := make(chan error, 1)
			go func() {
				_, err := cl.Replay(events, 768, 1)
				uploadDone <- err
			}()

			for kill := 0; kill < rr.Kills; kill++ {
				// Randomized crash point inside the upload window.
				delay := time.Duration(50+rng.IntN(400)) * time.Millisecond
				select {
				case err := <-uploadDone:
					// Uploads finished before the kill landed — the crash
					// then tests recovery of a fully uploaded state.
					if err != nil {
						t.Fatalf("replay: %v\n%s", err, d.log())
					}
					uploadDone = nil
				case <-time.After(delay):
				}
				d.kill9(t)
				d = startDaemon(t, bin, dir, d.addr, walSync)
				rec := d.waitReady(t)
				rr.RecoveryMs = append(rr.RecoveryMs, rec.Milliseconds())
				if uploadDone == nil {
					// Everything was uploaded pre-crash; the client is
					// gone, so re-send the stream ourselves — duplicates
					// dedup, losses (torn unsynced tail) heal.
					if _, err := cl.Replay(events, 768, 1); err != nil {
						t.Fatalf("post-crash re-replay: %v\n%s", err, d.log())
					}
				}
			}
			if uploadDone != nil {
				if err := <-uploadDone; err != nil {
					t.Fatalf("replay: %v\n%s", err, d.log())
				}
				// The in-flight client rode through the crashes, but a
				// batch acknowledged just before a kill -9 can die with
				// an unsynced WAL tail (wal-sync=interval): the client
				// saw OK, the disk never did. The at-least-once contract
				// covers exactly this — one final full re-send heals any
				// such hole and dedups everything else.
				if _, err := cl.Replay(events, 768, 1); err != nil {
					t.Fatalf("healing re-replay: %v\n%s", err, d.log())
				}
			}
			rr.UploadSecs = time.Since(upStart).Seconds()
			if _, _, err := cl.Flush(); err != nil {
				t.Fatal(err)
			}
			checkArtifacts(t, cl, "recovered")
			d.stopGracefully(t)
			report.Runs = append(report.Runs, rr)
		})
	}

	if path := os.Getenv("CRASHTEST_REPORT"); path != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", path, err)
		}
		t.Logf("recovery report written to %s", path)
	}
}
