package geodata

// CloudProvider identifies one of the nine major public cloud / hosting
// providers whose datacenter footprints the paper's §5.2 what-if analysis
// uses (Amazon AWS, Microsoft Azure, IBM Cloud, CloudFlare, Digital Ocean,
// Equinix, Oracle Cloud, Rackspace, Google Cloud).
type CloudProvider string

// The nine providers of §5.2.
const (
	AWS          CloudProvider = "AWS"
	Azure        CloudProvider = "Azure"
	IBMCloud     CloudProvider = "IBM Cloud"
	CloudFlare   CloudProvider = "CloudFlare"
	DigitalOcean CloudProvider = "Digital Ocean"
	Equinix      CloudProvider = "Equinix"
	OracleCloud  CloudProvider = "Oracle Cloud"
	Rackspace    CloudProvider = "Rackspace"
	GoogleCloud  CloudProvider = "Google Cloud"
)

// AllCloudProviders lists the nine providers in a stable order.
func AllCloudProviders() []CloudProvider {
	return []CloudProvider{
		AWS, Azure, IBMCloud, CloudFlare, DigitalOcean,
		Equinix, OracleCloud, Rackspace, GoogleCloud,
	}
}

// cloudPoPs records, per provider, the countries where the provider
// advertised an operational datacenter region or PoP circa 2018. The EU
// coverage is what drives Tables 5 and 6: the hyperscalers cluster in
// IE/NL/DE/FR/GB, CloudFlare and Equinix have the broadest EU footprints,
// and Cyprus hosts no PoP of any of the nine (hence its zero improvement
// in Table 6).
var cloudPoPs = map[CloudProvider][]Country{
	AWS: {
		"IE", "DE", "GB", "FR", "SE", // Europe
		"US", "CA", "BR", "JP", "SG", "IN", "KR", "AU", "CN",
	},
	Azure: {
		"IE", "NL", "GB", "FR", "DE", "AT",
		"US", "CA", "BR", "JP", "SG", "IN", "KR", "AU", "HK", "ZA",
	},
	IBMCloud: {
		"DE", "GB", "NL", "FR", "IT", "NO",
		"US", "CA", "BR", "MX", "JP", "SG", "IN", "KR", "AU", "HK",
	},
	CloudFlare: {
		// Anycast edge: very broad, including many smaller EU countries.
		"DE", "NL", "GB", "FR", "ES", "IT", "AT", "BE", "CZ", "DK",
		"FI", "GR", "HU", "PL", "PT", "RO", "SE", "IE", "BG", "HR",
		"EE", "LV", "LT", "LU", "SK", "SI",
		"CH", "NO", "RU", "RS", "UA", "TR",
		"US", "CA", "MX", "PA", "BR", "AR", "CL", "CO", "PE",
		"JP", "SG", "HK", "IN", "CN", "TW", "MY", "TH", "KR", "IL",
		"ZA", "EG", "KE", "NG", "AU", "NZ",
	},
	DigitalOcean: {
		"NL", "DE", "GB",
		"US", "CA", "SG", "IN",
	},
	Equinix: {
		"DE", "NL", "GB", "FR", "IT", "ES", "PL", "FI", "SE", "BG",
		"CH", "TR",
		"US", "CA", "BR", "CO", "MX",
		"JP", "SG", "HK", "CN", "AU",
	},
	OracleCloud: {
		"DE", "GB", "NL",
		"US", "CA", "BR", "JP", "SG", "IN", "KR", "AU",
	},
	Rackspace: {
		"GB", "DE",
		"US", "HK", "AU",
	},
	GoogleCloud: {
		"IE", "NL", "BE", "GB", "DE", "FI",
		"US", "CA", "BR", "CL", "JP", "SG", "IN", "TW", "HK", "AU",
	},
}

// CloudPoPCountries returns the countries where the provider operates a
// datacenter or PoP. Unknown provider yields nil. Entries that are not
// valid country codes in the master table are filtered out.
func CloudPoPCountries(p CloudProvider) []Country {
	var out []Country
	for _, c := range cloudPoPs[p] {
		if _, ok := byCode[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// CloudHasPoP reports whether provider p advertises a PoP in country c.
func CloudHasPoP(p CloudProvider, c Country) bool {
	for _, cc := range cloudPoPs[p] {
		if cc == c {
			return true
		}
	}
	return false
}

// AnyCloudPoP reports whether any of the nine providers has a PoP in c.
// Cyprus is the canonical false case (Table 6).
func AnyCloudPoP(c Country) bool {
	for _, p := range AllCloudProviders() {
		if CloudHasPoP(p, c) {
			return true
		}
	}
	return false
}

// CloudsWithPoPIn returns the subset of the nine providers present in c.
func CloudsWithPoPIn(c Country) []CloudProvider {
	var out []CloudProvider
	for _, p := range AllCloudProviders() {
		if CloudHasPoP(p, c) {
			out = append(out, p)
		}
	}
	return out
}
