package geodata

import "math"

// earthRadiusKm is the mean Earth radius used by the haversine formula.
const earthRadiusKm = 6371.0

// HaversineKm returns the great-circle distance in kilometres between two
// latitude/longitude pairs (degrees).
func HaversineKm(lat1, lon1, lat2, lon2 float64) float64 {
	const degToRad = math.Pi / 180
	phi1, phi2 := lat1*degToRad, lat2*degToRad
	dPhi := (lat2 - lat1) * degToRad
	dLambda := (lon2 - lon1) * degToRad

	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLambda/2)*math.Sin(dLambda/2)
	return 2 * earthRadiusKm * math.Atan2(math.Sqrt(a), math.Sqrt(1-a))
}

// DistanceKm returns the great-circle distance between two countries'
// reference cities, or -1 if either country is unknown.
func DistanceKm(a, b Country) float64 {
	ia, ok := byCode[a]
	if !ok {
		return -1
	}
	ib, ok := byCode[b]
	if !ok {
		return -1
	}
	return HaversineKm(ia.Lat, ia.Lon, ib.Lat, ib.Lon)
}

// MinRTTms returns the physically minimal round-trip time in milliseconds
// for a fibre path covering the given great-circle distance. Light in fibre
// travels at roughly 2/3 c ≈ 200 km/ms one way, and real paths are longer
// than great circles; the conventional rule of thumb used by geolocation
// constraint systems is distance/100 km per RTT millisecond.
func MinRTTms(distanceKm float64) float64 {
	if distanceKm <= 0 {
		return 0
	}
	return distanceKm / 100.0
}
