package geodata

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEU28Membership(t *testing.T) {
	eu := EU28Countries()
	if len(eu) != 28 {
		t.Fatalf("EU28 member count = %d, want 28 (2018 membership incl. GB)", len(eu))
	}
	for _, want := range []Country{"GB", "DE", "FR", "ES", "CY", "MT", "HR"} {
		if !IsEU28(want) {
			t.Errorf("IsEU28(%s) = false, want true", want)
		}
	}
	for _, not := range []Country{"CH", "NO", "RU", "US", "TR", "RS"} {
		if IsEU28(not) {
			t.Errorf("IsEU28(%s) = true, want false", not)
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	info, ok := Lookup("DE")
	if !ok {
		t.Fatal("Lookup(DE) not found")
	}
	if info.Name != "Germany" || info.Continent != EU28 {
		t.Errorf("Lookup(DE) = %+v", info)
	}
	if Name("DE") != "Germany" {
		t.Errorf("Name(DE) = %q", Name("DE"))
	}
	if Name("XX") != "XX" {
		t.Errorf("Name(XX) = %q, want fallback to code", Name("XX"))
	}
	if _, ok := Lookup("XX"); ok {
		t.Error("Lookup(XX) found, want missing")
	}
}

func TestContinentOf(t *testing.T) {
	cases := map[Country]Continent{
		"US": NorthAmerica, "BR": SouthAmerica, "JP": Asia,
		"ZA": Africa, "AU": Oceania, "CH": RestOfEurope, "GR": EU28,
		"??": ContinentUnknown,
	}
	for code, want := range cases {
		if got := ContinentOf(code); got != want {
			t.Errorf("ContinentOf(%s) = %v, want %v", code, got, want)
		}
	}
}

func TestContinentString(t *testing.T) {
	if EU28.String() != "EU 28" {
		t.Errorf("EU28.String() = %q", EU28.String())
	}
	if NorthAmerica.String() != "N. America" {
		t.Errorf("NorthAmerica.String() = %q", NorthAmerica.String())
	}
	if Continent(99).String() == "" {
		t.Error("unknown continent should still format")
	}
}

func TestAllCountriesCopy(t *testing.T) {
	a := AllCountries()
	a[0].Name = "mutated"
	b := AllCountries()
	if b[0].Name == "mutated" {
		t.Error("AllCountries must return a copy")
	}
}

func TestAllCountriesHaveValidData(t *testing.T) {
	for _, c := range AllCountries() {
		if len(c.Code) != 2 {
			t.Errorf("country %q: code must be 2 letters", c.Code)
		}
		if c.Continent == ContinentUnknown {
			t.Errorf("country %s: unknown continent", c.Code)
		}
		if c.Lat < -90 || c.Lat > 90 || c.Lon < -180 || c.Lon > 180 {
			t.Errorf("country %s: coordinates out of range (%f, %f)", c.Code, c.Lat, c.Lon)
		}
		if c.InfraDensity < 0 || c.InfraDensity > 100 {
			t.Errorf("country %s: infra density %d out of [0,100]", c.Code, c.InfraDensity)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Frankfurt (DE) to Ashburn/Washington (US) is ~6,500 km.
	d := DistanceKm("DE", "US")
	if d < 5500 || d > 7500 {
		t.Errorf("DE-US distance = %.0f km, want ~6500", d)
	}
	// Germany to Netherlands is short.
	if d := DistanceKm("DE", "NL"); d < 100 || d > 600 {
		t.Errorf("DE-NL distance = %.0f km, want a few hundred", d)
	}
	if d := DistanceKm("DE", "DE"); d != 0 {
		t.Errorf("self distance = %f, want 0", d)
	}
	if d := DistanceKm("DE", "??"); d != -1 {
		t.Errorf("unknown country distance = %f, want -1", d)
	}
}

func TestHaversineProperties(t *testing.T) {
	// Symmetry and non-negativity over random coordinates.
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		// Clamp generated values into valid coordinate ranges.
		clampLat := func(v float64) float64 { return math.Mod(math.Abs(v), 90) }
		clampLon := func(v float64) float64 { return math.Mod(math.Abs(v), 180) }
		a1, o1 := clampLat(lat1), clampLon(lon1)
		a2, o2 := clampLat(lat2), clampLon(lon2)
		d1 := HaversineKm(a1, o1, a2, o2)
		d2 := HaversineKm(a2, o2, a1, o1)
		if d1 < 0 || d2 < 0 {
			return false
		}
		// Max great-circle distance is half Earth's circumference.
		if d1 > 20100 {
			return false
		}
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinRTT(t *testing.T) {
	if got := MinRTTms(1000); got != 10 {
		t.Errorf("MinRTTms(1000) = %f, want 10", got)
	}
	if got := MinRTTms(0); got != 0 {
		t.Errorf("MinRTTms(0) = %f, want 0", got)
	}
	if got := MinRTTms(-5); got != 0 {
		t.Errorf("MinRTTms(-5) = %f, want 0", got)
	}
}

func TestCloudPoPs(t *testing.T) {
	if len(AllCloudProviders()) != 9 {
		t.Fatalf("provider count = %d, want 9", len(AllCloudProviders()))
	}
	// Cyprus hosts no PoP of any of the nine (Table 6 zero case).
	if AnyCloudPoP("CY") {
		t.Error("Cyprus must have no cloud PoP")
	}
	// Germany is covered by most providers.
	if n := len(CloudsWithPoPIn("DE")); n < 5 {
		t.Errorf("Germany covered by %d providers, want >= 5", n)
	}
	// Denmark has at least one PoP among the nine (GoogleCloud/CloudFlare)
	// so migration can confine it (Table 6).
	if !AnyCloudPoP("DK") {
		t.Error("Denmark must have at least one cloud PoP")
	}
	// Every advertised PoP country must be a valid country code.
	for _, p := range AllCloudProviders() {
		for _, c := range CloudPoPCountries(p) {
			if _, ok := Lookup(c); !ok {
				t.Errorf("%s PoP country %q not in master table", p, c)
			}
		}
	}
	if CloudHasPoP(AWS, "CY") {
		t.Error("AWS must not have a Cyprus PoP")
	}
	if !CloudHasPoP(AWS, "IE") {
		t.Error("AWS must have an Ireland PoP")
	}
}

func TestEveryEUCountryReachableByMigration(t *testing.T) {
	// The paper notes every EU28 country has at least one datacenter, but
	// among the NINE clouds only Cyprus and Malta may lack a PoP. Verify
	// our data: count EU28 countries without any of the nine.
	missing := 0
	for _, c := range EU28Countries() {
		if !AnyCloudPoP(c.Code) {
			missing++
		}
	}
	if missing > 6 {
		t.Errorf("%d EU28 countries lack any of the nine clouds; footprint too sparse", missing)
	}
}
