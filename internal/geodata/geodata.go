// Package geodata provides the static geographic facts the reproduction
// depends on: country and continent identifiers, the EU28 membership set
// (as of 2018, i.e. including the United Kingdom), capital coordinates used
// by the RTT model, the datacenter footprints of nine major public cloud
// providers, and a per-country IT-infrastructure density index.
//
// Everything in this package is deterministic reference data transcribed
// from public sources; nothing here is synthetic.
package geodata

import "fmt"

// Continent identifies one of the world regions used throughout the paper.
// The paper treats EU28 as a region distinct from the rest of Europe, so
// this type distinguishes them too.
type Continent uint8

// Continents, in the order the paper's Sankey diagrams list them.
const (
	ContinentUnknown Continent = iota
	EU28                       // European Union member states as of 2018
	RestOfEurope               // European countries outside the EU28
	NorthAmerica
	SouthAmerica
	Asia
	Africa
	Oceania
)

var continentNames = map[Continent]string{
	ContinentUnknown: "Unknown",
	EU28:             "EU 28",
	RestOfEurope:     "Rest of Europe",
	NorthAmerica:     "N. America",
	SouthAmerica:     "S. America",
	Asia:             "Asia",
	Africa:           "Africa",
	Oceania:          "Oceania",
}

// String returns the display name used in the paper's figures.
func (c Continent) String() string {
	if s, ok := continentNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Continent(%d)", uint8(c))
}

// AllContinents lists every region in display order.
func AllContinents() []Continent {
	return []Continent{EU28, RestOfEurope, NorthAmerica, SouthAmerica, Asia, Africa, Oceania}
}

// Country is an ISO 3166-1 alpha-2 country code.
type Country string

// Info carries the per-country reference data.
type Info struct {
	Code      Country
	Name      string
	Continent Continent
	// Lat and Lon locate the country's capital (or main IXP city for
	// large countries); used by the great-circle RTT model.
	Lat, Lon float64
	// InfraDensity is a 0..100 index of IT/datacenter infrastructure
	// density. The paper correlates national confinement with this.
	InfraDensity int
}

// countries is the master table. EU28 membership is 2018-era: the United
// Kingdom is included. InfraDensity is a coarse rank derived from public
// datacenter counts (Germany, Netherlands, UK, France, Ireland high; small
// EU members low).
var countries = []Info{
	// EU28 (2018 membership).
	{"AT", "Austria", EU28, 48.21, 16.37, 40},
	{"BE", "Belgium", EU28, 50.85, 4.35, 38},
	{"BG", "Bulgaria", EU28, 42.70, 23.32, 18},
	{"HR", "Croatia", EU28, 45.81, 15.98, 12},
	{"CY", "Cyprus", EU28, 35.17, 33.37, 4},
	{"CZ", "Czechia", EU28, 50.08, 14.44, 26},
	{"DK", "Denmark", EU28, 55.68, 12.57, 30},
	{"EE", "Estonia", EU28, 59.44, 24.75, 14},
	{"FI", "Finland", EU28, 60.17, 24.94, 28},
	{"FR", "France", EU28, 48.86, 2.35, 72},
	{"DE", "Germany", EU28, 50.11, 8.68, 90}, // Frankfurt
	{"GR", "Greece", EU28, 37.98, 23.73, 10},
	{"HU", "Hungary", EU28, 47.50, 19.04, 20},
	{"IE", "Ireland", EU28, 53.35, -6.26, 62},
	{"IT", "Italy", EU28, 45.46, 9.19, 44}, // Milan
	{"LV", "Latvia", EU28, 56.95, 24.11, 10},
	{"LT", "Lithuania", EU28, 54.69, 25.28, 12},
	{"LU", "Luxembourg", EU28, 49.61, 6.13, 22},
	{"MT", "Malta", EU28, 35.90, 14.51, 5},
	{"NL", "Netherlands", EU28, 52.37, 4.90, 85}, // Amsterdam
	{"PL", "Poland", EU28, 52.23, 21.01, 30},
	{"PT", "Portugal", EU28, 38.72, -9.14, 16},
	{"RO", "Romania", EU28, 44.43, 26.10, 14},
	{"SK", "Slovakia", EU28, 48.15, 17.11, 12},
	{"SI", "Slovenia", EU28, 46.05, 14.51, 10},
	{"ES", "Spain", EU28, 40.42, -3.70, 42},
	{"SE", "Sweden", EU28, 59.33, 18.07, 36},
	{"GB", "United Kingdom", EU28, 51.51, -0.13, 80},

	// Rest of Europe.
	{"CH", "Switzerland", RestOfEurope, 47.38, 8.54, 45},
	{"NO", "Norway", RestOfEurope, 59.91, 10.75, 24},
	{"RU", "Russia", RestOfEurope, 55.76, 37.62, 30},
	{"RS", "Serbia", RestOfEurope, 44.79, 20.45, 8},
	{"MD", "Moldova", RestOfEurope, 47.01, 28.86, 4},
	{"UA", "Ukraine", RestOfEurope, 50.45, 30.52, 12},
	{"TR", "Turkey", RestOfEurope, 41.01, 28.98, 18},

	// North America.
	{"US", "United States", NorthAmerica, 39.04, -77.49, 100}, // Ashburn
	{"CA", "Canada", NorthAmerica, 43.65, -79.38, 40},
	{"MX", "Mexico", NorthAmerica, 19.43, -99.13, 16},
	{"PA", "Panama", NorthAmerica, 8.98, -79.52, 5},

	// South America.
	{"BR", "Brazil", SouthAmerica, -23.55, -46.63, 24}, // São Paulo
	{"AR", "Argentina", SouthAmerica, -34.60, -58.38, 12},
	{"CL", "Chile", SouthAmerica, -33.45, -70.67, 12},
	{"CO", "Colombia", SouthAmerica, 4.71, -74.07, 10},
	{"PE", "Peru", SouthAmerica, -12.05, -77.04, 6},

	// Asia.
	{"JP", "Japan", Asia, 35.68, 139.69, 46},
	{"SG", "Singapore", Asia, 1.35, 103.82, 48},
	{"HK", "Hong Kong", Asia, 22.32, 114.17, 36},
	{"IN", "India", Asia, 19.08, 72.88, 26}, // Mumbai
	{"CN", "China", Asia, 39.90, 116.41, 40},
	{"TW", "Taiwan", Asia, 25.03, 121.57, 18},
	{"MY", "Malaysia", Asia, 3.14, 101.69, 12},
	{"TH", "Thailand", Asia, 13.76, 100.50, 10},
	{"KR", "South Korea", Asia, 37.57, 126.98, 28},
	{"IL", "Israel", Asia, 32.07, 34.79, 20},

	// Africa.
	{"ZA", "South Africa", Africa, -26.20, 28.05, 14},
	{"TN", "Tunisia", Africa, 36.81, 10.18, 5},
	{"EG", "Egypt", Africa, 30.04, 31.24, 8},
	{"NG", "Nigeria", Africa, 6.52, 3.37, 6},
	{"KE", "Kenya", Africa, -1.29, 36.82, 6},

	// Oceania.
	{"AU", "Australia", Oceania, -33.87, 151.21, 26},
	{"NZ", "New Zealand", Oceania, -36.85, 174.76, 10},
}

var byCode map[Country]Info

func init() {
	byCode = make(map[Country]Info, len(countries))
	for _, c := range countries {
		if _, dup := byCode[c.Code]; dup {
			panic("geodata: duplicate country " + string(c.Code))
		}
		byCode[c.Code] = c
	}
}

// Lookup returns the reference data for a country code.
func Lookup(code Country) (Info, bool) {
	info, ok := byCode[code]
	return info, ok
}

// Name returns the country's display name, or the code itself if unknown.
func Name(code Country) string {
	if info, ok := byCode[code]; ok {
		return info.Name
	}
	return string(code)
}

// ContinentOf returns the region a country belongs to.
func ContinentOf(code Country) Continent {
	if info, ok := byCode[code]; ok {
		return info.Continent
	}
	return ContinentUnknown
}

// IsEU28 reports whether the country was an EU member state in 2018.
func IsEU28(code Country) bool { return ContinentOf(code) == EU28 }

// AllCountries returns every country in the table, in table order.
// The returned slice is a copy and may be modified by the caller.
func AllCountries() []Info {
	out := make([]Info, len(countries))
	copy(out, countries)
	return out
}

// EU28Countries returns the 28 member states (2018 membership, incl. GB).
func EU28Countries() []Info {
	var out []Info
	for _, c := range countries {
		if c.Continent == EU28 {
			out = append(out, c)
		}
	}
	return out
}

// InfraDensity returns the IT-infrastructure density index for a country,
// or zero if unknown.
func InfraDensity(code Country) int {
	if info, ok := byCode[code]; ok {
		return info.InfraDensity
	}
	return 0
}
