// Package webgraph models the synthetic web the simulated users browse:
// first-party publishers with topics and Zipf popularity, third-party
// services (ad networks, exchanges, DSPs, trackers, CDNs, widgets), and
// the embedding relationships between them. It is the stand-in for the
// real web the paper's 350 extension users visited.
package webgraph

import "strings"

// multiPartSuffixes is the small public-suffix subset the reproduction
// needs. The paper extracts "TLD" (really eTLD+1, e.g. googlesyndication.com)
// from FQDNs; a handful of two-level suffixes is enough for the synthetic
// namespace plus realistic external names.
var multiPartSuffixes = map[string]bool{
	"co.uk": true, "org.uk": true, "ac.uk": true,
	"com.au": true, "net.au": true,
	"com.br": true, "co.jp": true, "co.kr": true,
	"com.cn": true, "com.tw": true, "com.sg": true,
	"co.za": true, "com.mx": true, "com.ar": true,
}

// ETLDPlusOne returns the registrable domain (the paper's "TLD" unit) for
// a hostname: the public suffix plus one label. It returns the input
// unchanged when it has too few labels.
func ETLDPlusOne(host string) string {
	host = strings.TrimSuffix(strings.ToLower(host), ".")
	labels := strings.Split(host, ".")
	if len(labels) <= 2 {
		return host
	}
	lastTwo := strings.Join(labels[len(labels)-2:], ".")
	if multiPartSuffixes[lastTwo] {
		if len(labels) < 3 {
			return host
		}
		return strings.Join(labels[len(labels)-3:], ".")
	}
	return lastTwo
}

// Hostname extracts the host part from a URL-ish string without requiring
// a full URL parse: scheme and path are stripped if present.
func Hostname(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/?#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.IndexByte(s, '@'); i >= 0 {
		s = s[i+1:]
	}
	if i := strings.IndexByte(s, ':'); i >= 0 {
		s = s[:i]
	}
	return strings.ToLower(s)
}
