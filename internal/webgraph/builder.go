package webgraph

import (
	"fmt"
	"math"
	"math/rand"
)

// Config controls the size and mix of the synthetic web. The defaults
// reproduce the scale of the paper's Table 1 dataset: 5,693 first-party
// domains whose third-party embeddings span ~2.7K tracking eTLD+1s /
// ~10K tracking FQDNs and ~9K non-tracking FQDNs.
type Config struct {
	NPublishers int // first-party sites (default 5693)

	NAdNetworks int // mid-tier ad networks (default 700)
	NExchanges  int // ad exchanges / SSPs (default 60)
	NDSPs       int // demand-side platforms (default 600)
	NDMPs       int // data-management / cookie-sync hubs (default 400)
	NAnalytics  int // analytics trackers (default 900)
	NCDNs       int // CDNs (default 120)
	NWidgets    int // widget providers (default 280)

	// WidgetFQDNsPerOrg controls per-customer subdomain fan-out for
	// non-tracking services (default 30), matching the observation that
	// roughly half the 19.3K third-party FQDNs are non-tracking.
	WidgetFQDNsPerOrg int

	// SensitiveSites is the number of publishers in GDPR-sensitive
	// categories (default 1067, the paper's §6.1 count).
	SensitiveSites int
	// SensitiveWeightShare is the fraction of total visit weight carried
	// by sensitive sites (default 0.029 ≈ the 2.89% of Fig 9).
	SensitiveWeightShare float64

	// ZipfExponent shapes publisher popularity (default 0.85).
	ZipfExponent float64
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.NPublishers, 5693)
	def(&c.NAdNetworks, 700)
	def(&c.NExchanges, 60)
	def(&c.NDSPs, 600)
	def(&c.NDMPs, 400)
	def(&c.NAnalytics, 900)
	def(&c.NCDNs, 120)
	def(&c.NWidgets, 280)
	def(&c.WidgetFQDNsPerOrg, 30)
	def(&c.SensitiveSites, 1067)
	if c.SensitiveWeightShare == 0 {
		c.SensitiveWeightShare = 0.029
	}
	if c.ZipfExponent == 0 {
		c.ZipfExponent = 0.85
	}
	return c
}

// Scale returns a copy of the config with all population sizes multiplied
// by f (minimum 1 each); used by tests to build small worlds quickly.
func (c Config) Scale(f float64) Config {
	c = c.withDefaults()
	s := func(v *int) {
		*v = int(math.Max(1, math.Round(float64(*v)*f)))
	}
	s(&c.NPublishers)
	s(&c.NAdNetworks)
	s(&c.NExchanges)
	s(&c.NDSPs)
	s(&c.NDMPs)
	s(&c.NAnalytics)
	s(&c.NCDNs)
	s(&c.NWidgets)
	s(&c.SensitiveSites)
	if c.SensitiveSites >= c.NPublishers {
		c.SensitiveSites = c.NPublishers / 5
	}
	return c
}

// tldPool gives the synthetic namespace some registrable-domain variety so
// the eTLD+1 logic is exercised.
var tldPool = []string{"com", "com", "com", "net", "io", "co", "org", "co.uk", "de", "fr"}

// Build constructs the synthetic web deterministically from rng.
func Build(rng *rand.Rand, cfg Config) *Graph {
	cfg = cfg.withDefaults()
	g := &Graph{}

	b := builder{rng: rng, g: g, cfg: cfg}
	b.buildMajors()
	b.buildMidTier()
	b.buildNonTracking()
	g.indexServices()
	b.buildPublishers()
	return g
}

type builder struct {
	rng *rand.Rand
	g   *Graph
	cfg Config

	majorAnalytics []*Service // embedded on large fractions of sites
	majorAdNets    []*Service
}

func (b *builder) addService(s *Service) *Service {
	b.g.Services = append(b.g.Services, s)
	return s
}

// buildMajors creates the paper's Google/Amazon/Facebook tier: a few
// organizations owning several well-known tracking domains each.
func (b *builder) buildMajors() {
	google := []*Service{
		{Org: "google", Role: RoleAdNetwork, Major: true, FQDNs: []string{
			"pagead2.googlesyndication.com", "tpc.googlesyndication.com",
			"adservice.google.com",
		}},
		{Org: "google", Role: RoleExchange, Major: true, FQDNs: []string{
			"ad.doubleclick.net", "cm.g.doubleclick.net", "stats.g.doubleclick.net",
			"securepubads.g.doubleclick.net",
		}},
		{Org: "google", Role: RoleAnalytics, Major: true, FQDNs: []string{
			"www.google-analytics.com", "ssl.google-analytics.com",
		}},
	}
	amazon := []*Service{
		{Org: "amazon", Role: RoleAdNetwork, Major: true, FQDNs: []string{
			"s.amazon-adsystem.com", "c.amazon-adsystem.com", "aax-eu.amazon-adsystem.com",
		}},
		{Org: "amazon", Role: RoleDSP, Major: true, FQDNs: []string{
			"bid.amazon-adsystem.com",
		}},
	}
	facebook := []*Service{
		{Org: "facebook", Role: RoleAnalytics, Major: true, FQDNs: []string{
			"connect.facebook.net", "pixel.facebook.com",
		}},
		{Org: "facebook", Role: RoleAdNetwork, Major: true, FQDNs: []string{
			"an.facebook.com",
		}},
	}
	for _, s := range google {
		b.addService(s)
	}
	for _, s := range amazon {
		b.addService(s)
	}
	for _, s := range facebook {
		b.addService(s)
	}
	b.majorAnalytics = []*Service{google[2], facebook[0]}
	b.majorAdNets = []*Service{google[0], google[1], amazon[0], facebook[1]}
}

// subPool names the auxiliary subdomains tracking orgs expose. They carry
// the URL vocabulary the semi-automatic classifier keys on.
var trackingSubs = []string{"ads", "sync", "rtb", "pixel", "match", "cs", "track", "bid"}

func (b *builder) genTrackingService(role Role, i int, prefix string) *Service {
	tld := tldPool[b.rng.Intn(len(tldPool))]
	base := fmt.Sprintf("%s%04d.%s", prefix, i, tld)
	n := 2 + b.rng.Intn(4) // 2..5 FQDNs
	fqdns := make([]string, 0, n)
	fqdns = append(fqdns, "www."+base)
	perm := b.rng.Perm(len(trackingSubs))
	for j := 0; j < n-1; j++ {
		fqdns = append(fqdns, trackingSubs[perm[j]]+"."+base)
	}
	return &Service{Org: fmt.Sprintf("%s%04d", prefix, i), Role: role, FQDNs: fqdns}
}

func (b *builder) buildMidTier() {
	for i := 0; i < b.cfg.NAdNetworks; i++ {
		b.addService(b.genTrackingService(RoleAdNetwork, i, "adnet"))
	}
	for i := 0; i < b.cfg.NExchanges; i++ {
		b.addService(b.genTrackingService(RoleExchange, i, "xchg"))
	}
	for i := 0; i < b.cfg.NDSPs; i++ {
		b.addService(b.genTrackingService(RoleDSP, i, "dsp"))
	}
	for i := 0; i < b.cfg.NDMPs; i++ {
		b.addService(b.genTrackingService(RoleDMP, i, "dmp"))
	}
	for i := 0; i < b.cfg.NAnalytics; i++ {
		b.addService(b.genTrackingService(RoleAnalytics, i, "metrics"))
	}
}

func (b *builder) buildNonTracking() {
	for i := 0; i < b.cfg.NCDNs; i++ {
		tld := tldPool[b.rng.Intn(len(tldPool))]
		base := fmt.Sprintf("cdn%03d.%s", i, tld)
		n := 1 + b.rng.Intn(b.cfg.WidgetFQDNsPerOrg)
		fqdns := make([]string, 0, n+1)
		fqdns = append(fqdns, "static."+base)
		for j := 0; j < n; j++ {
			fqdns = append(fqdns, fmt.Sprintf("e%d.%s", j, base))
		}
		b.addService(&Service{Org: fmt.Sprintf("cdn%03d", i), Role: RoleCDN, FQDNs: fqdns})
	}
	widgetKinds := []string{"chat", "comments", "video", "fonts", "maps", "badge"}
	for i := 0; i < b.cfg.NWidgets; i++ {
		kind := widgetKinds[i%len(widgetKinds)]
		tld := tldPool[b.rng.Intn(len(tldPool))]
		base := fmt.Sprintf("%s%03d.%s", kind, i, tld)
		n := 1 + b.rng.Intn(b.cfg.WidgetFQDNsPerOrg*2)
		fqdns := make([]string, 0, n+1)
		fqdns = append(fqdns, "app."+base)
		for j := 0; j < n; j++ {
			fqdns = append(fqdns, fmt.Sprintf("c%d.%s", j, base))
		}
		b.addService(&Service{Org: fmt.Sprintf("%s%03d", kind, i), Role: RoleWidget, FQDNs: fqdns})
	}
}

// pickZipf returns an index in [0, n) with probability proportional to
// 1/(i+1)^s, using a precomputed cumulative table for O(log n) sampling.
type zipfPicker struct {
	cum []float64
}

func newZipfPicker(n int, s float64) *zipfPicker {
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return &zipfPicker{cum: cum}
}

func (z *zipfPicker) pick(rng *rand.Rand) int {
	x := rng.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sensitiveFlowShares reproduces Fig 9's within-sensitive flow shares.
var sensitiveFlowShares = map[Topic]float64{
	SensHealth:      0.36,
	SensGambling:    0.21,
	SensSexualOrien: 0.11,
	SensPregnancy:   0.11,
	SensPolitics:    0.09,
	SensPorn:        0.07,
	SensReligion:    0.025,
	SensCancer:      0.02,
	SensEthnicity:   0.02,
	SensGuns:        0.015,
	SensAlcohol:     0.015,
	SensDeath:       0.015,
}

var publisherCountryPool = []string{
	"ES", "GB", "DE", "FR", "IT", "PL", "GR", "RO", "CY", "DK", "BE", "HU", "BG",
	"US", "US", "BR", "AR", "RU", "IN", "JP",
}

func (b *builder) buildPublishers() {
	cfg := b.cfg
	n := cfg.NPublishers
	rng := b.rng

	// Popularity: Zipf over general sites; sensitive sites share a fixed
	// small weight budget so their flow share lands near Fig 9's 2.89%.
	general := n - cfg.SensitiveSites
	if general < 1 {
		general = 1
	}
	var generalTotal float64
	for i := 0; i < general; i++ {
		generalTotal += 1 / math.Pow(float64(i+1), cfg.ZipfExponent)
	}
	// generalTotal carries (1 - share) of all weight.
	sensBudget := generalTotal * cfg.SensitiveWeightShare / (1 - cfg.SensitiveWeightShare)

	adNets := b.g.ServicesByRole(RoleAdNetwork)
	analytics := b.g.ServicesByRole(RoleAnalytics)
	widgets := b.g.ServicesByRole(RoleWidget)
	cdns := b.g.ServicesByRole(RoleCDN)
	adPick := newZipfPicker(len(adNets), 1.0)
	anPick := newZipfPicker(len(analytics), 1.0)
	wiPick := newZipfPicker(max(1, len(widgets)), 1.0)
	cdPick := newZipfPicker(max(1, len(cdns)), 1.0)

	embed := func(p *Publisher) {
		// Major analytics on most sites.
		for _, s := range b.majorAnalytics {
			if rng.Float64() < 0.70 {
				p.DirectTrackers = append(p.DirectTrackers, s)
			}
		}
		// Long-tail analytics.
		for k, kn := 0, 1+rng.Intn(4); k < kn; k++ {
			p.DirectTrackers = append(p.DirectTrackers, analytics[anPick.pick(rng)])
		}
		// Ad slots: majors likely, plus mid-tier networks.
		for _, s := range b.majorAdNets {
			if rng.Float64() < 0.50 {
				p.AdSlots = append(p.AdSlots, s)
			}
		}
		for k, kn := 0, 1+rng.Intn(3); k < kn; k++ {
			p.AdSlots = append(p.AdSlots, adNets[adPick.pick(rng)])
		}
		// Non-tracking embeds.
		if len(widgets) > 0 {
			for k, kn := 0, rng.Intn(3); k < kn; k++ {
				p.Widgets = append(p.Widgets, widgets[wiPick.pick(rng)])
			}
		}
		if len(cdns) > 0 {
			for k, kn := 0, 1+rng.Intn(2); k < kn; k++ {
				p.CDNs = append(p.CDNs, cdns[cdPick.pick(rng)])
			}
		}
	}

	// General sites.
	generalTopics := GeneralTopics()
	for i := 0; i < general; i++ {
		tld := tldPool[rng.Intn(len(tldPool))]
		p := &Publisher{
			Domain:  fmt.Sprintf("site%05d.%s", i, tld),
			Country: publisherCountryPool[rng.Intn(len(publisherCountryPool))],
			Weight:  1 / math.Pow(float64(i+1), cfg.ZipfExponent),
		}
		nt := 5 + rng.Intn(11) // 5..15 topics, per §6.1
		perm := rng.Perm(len(generalTopics))
		for k := 0; k < nt && k < len(perm); k++ {
			p.Topics = append(p.Topics, generalTopics[perm[k]])
		}
		embed(p)
		b.g.Publishers = append(b.g.Publishers, p)
	}

	// Sensitive sites: counts per category proportional to flow share,
	// each site's weight = category budget / sites in category.
	cats := SensitiveCategories()
	var shareTotal float64
	for _, c := range cats {
		shareTotal += sensitiveFlowShares[c]
	}
	idx := 0
	for ci, cat := range cats {
		count := int(math.Round(float64(cfg.SensitiveSites) * sensitiveFlowShares[cat] / shareTotal))
		if ci == len(cats)-1 {
			count = cfg.SensitiveSites - idx // absorb rounding
		}
		if count < 1 {
			count = 1
		}
		catBudget := sensBudget * sensitiveFlowShares[cat] / shareTotal
		for k := 0; k < count; k++ {
			tld := tldPool[rng.Intn(len(tldPool))]
			p := &Publisher{
				Domain:    fmt.Sprintf("sens-%s%04d.%s", sanitize(cat), k, tld),
				Country:   publisherCountryPool[rng.Intn(len(publisherCountryPool))],
				Sensitive: cat,
				Weight:    catBudget / float64(count),
			}
			// Public tags mask the sensitive category (§6.1).
			p.Topics = append(p.Topics, MaskingTopic(cat))
			nt := 4 + rng.Intn(8)
			perm := rng.Perm(len(generalTopics))
			for j := 0; j < nt && j < len(perm); j++ {
				p.Topics = append(p.Topics, generalTopics[perm[j]])
			}
			embed(p)
			b.g.Publishers = append(b.g.Publishers, p)
			idx++
		}
	}
}

func sanitize(t Topic) string {
	out := make([]byte, 0, len(t))
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c == ' ' {
			c = '-'
		}
		out = append(out, c)
	}
	return string(out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
