package webgraph

// Topic is an interest category attached to a publisher, mirroring the
// AdWords-style tags §6.1 uses (5–15 topics per domain).
type Topic string

// General (non-sensitive) topics.
const (
	TopicNews          Topic = "news"
	TopicSports        Topic = "sports"
	TopicTech          Topic = "technology"
	TopicShopping      Topic = "shopping"
	TopicTravel        Topic = "travel"
	TopicFinance       Topic = "finance"
	TopicEntertainment Topic = "entertainment"
	TopicFood          Topic = "food & drinks"
	TopicGames         Topic = "games"
	TopicAutos         Topic = "autos"
	TopicEducation     Topic = "education"
	TopicMensInterests Topic = "men's interests"
	TopicBeauty        Topic = "beauty & fitness"
	TopicRealEstate    Topic = "real estate"
	TopicScience       Topic = "science"
)

// The 12 sensitive categories of Fig 9. GDPR-sensitive data categories:
// health and its cancer/death sub-reports, sexual life, beliefs, ethnicity,
// plus nationally regulated topics (gambling, alcohol, guns, minors-adjacent).
const (
	SensHealth      Topic = "health"
	SensGambling    Topic = "gambling"
	SensSexualOrien Topic = "sexual orientation"
	SensPregnancy   Topic = "pregnancy"
	SensPolitics    Topic = "politics"
	SensPorn        Topic = "porn"
	SensReligion    Topic = "religion"
	SensEthnicity   Topic = "ethnicity"
	SensGuns        Topic = "guns"
	SensAlcohol     Topic = "alcohol"
	SensCancer      Topic = "cancer"
	SensDeath       Topic = "death"
)

// SensitiveCategories lists the 12 categories in Fig 9's order of share.
func SensitiveCategories() []Topic {
	return []Topic{
		SensHealth, SensGambling, SensSexualOrien, SensPregnancy,
		SensPolitics, SensPorn, SensReligion, SensEthnicity,
		SensGuns, SensAlcohol, SensCancer, SensDeath,
	}
}

// GeneralTopics lists the non-sensitive topic pool.
func GeneralTopics() []Topic {
	return []Topic{
		TopicNews, TopicSports, TopicTech, TopicShopping, TopicTravel,
		TopicFinance, TopicEntertainment, TopicFood, TopicGames,
		TopicAutos, TopicEducation, TopicMensInterests, TopicBeauty,
		TopicRealEstate, TopicScience,
	}
}

// IsSensitive reports whether the topic is one of the 12 GDPR-sensitive
// categories.
func IsSensitive(t Topic) bool {
	switch t {
	case SensHealth, SensGambling, SensSexualOrien, SensPregnancy,
		SensPolitics, SensPorn, SensReligion, SensEthnicity,
		SensGuns, SensAlcohol, SensCancer, SensDeath:
		return true
	}
	return false
}

// MaskingTopic returns the innocuous AdWords-style category a sensitive
// topic hides behind (§6.1: pregnancy sites tag as "Health", porn as
// "Men's Interests", alcohol as "Food & Drinks", gambling as "Games").
// This is why the paper needed manual inspection on top of automated tags.
func MaskingTopic(t Topic) Topic {
	switch t {
	case SensHealth, SensCancer, SensDeath, SensPregnancy:
		return TopicBeauty // tagged under generic health & fitness
	case SensPorn, SensSexualOrien:
		return TopicMensInterests
	case SensAlcohol:
		return TopicFood
	case SensGambling:
		return TopicGames
	case SensPolitics, SensReligion, SensEthnicity:
		return TopicNews
	case SensGuns:
		return TopicSports
	default:
		return t
	}
}
