package webgraph

import "fmt"

// Role classifies a third-party service by its function in the RTB
// ecosystem of Fig 1.
type Role uint8

const (
	RoleAdNetwork Role = iota // ad serving / ad network (googlesyndication tier)
	RoleExchange              // ad exchange / SSP running RTB auctions
	RoleDSP                   // demand-side platform bidding in auctions
	RoleDMP                   // data management platform / cookie-sync hub
	RoleAnalytics             // analytics/audience measurement tracker
	RoleCDN                   // static content delivery (non-tracking)
	RoleWidget                // chat, comments, fonts, video (non-tracking)
)

func (r Role) String() string {
	switch r {
	case RoleAdNetwork:
		return "adnetwork"
	case RoleExchange:
		return "exchange"
	case RoleDSP:
		return "dsp"
	case RoleDMP:
		return "dmp"
	case RoleAnalytics:
		return "analytics"
	case RoleCDN:
		return "cdn"
	case RoleWidget:
		return "widget"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// IsTracking reports whether requests to services of this role are ad or
// tracking related (ground truth).
func (r Role) IsTracking() bool {
	switch r {
	case RoleAdNetwork, RoleExchange, RoleDSP, RoleDMP, RoleAnalytics:
		return true
	}
	return false
}

// Service is one third-party service: a set of FQDNs operated by one
// organization for one function.
type Service struct {
	// Org is the owning organization's name; it matches a netsim.Org.
	Org string
	// Role is the service's function.
	Role Role
	// FQDNs are the hostnames the service answers on. The first entry is
	// the primary serving name; later entries are auxiliary (sync., rtb.,
	// pixel. subdomains or sibling domains).
	FQDNs []string
	// Major marks the paper's Google/Amazon/Facebook tier: embedded on a
	// large share of publishers and holding a global server footprint.
	Major bool
}

// Primary returns the service's main FQDN.
func (s *Service) Primary() string { return s.FQDNs[0] }

// Publisher is one first-party website.
type Publisher struct {
	// Domain is the site's registrable domain.
	Domain string
	// Country hosts the site (used only for flavor; tracking flows are
	// what the study measures).
	Country string
	// Topics are the site's AdWords-style interest categories. For a
	// sensitive site the true sensitive topic is included here.
	Topics []Topic
	// Sensitive is the site's sensitive category, or "" for a general
	// site. When set, Topics still contains only the masked public
	// categories plus the sensitive one (the tagger sees the masked ones).
	Sensitive Topic
	// Weight is the site's relative visit popularity (Zipf).
	Weight float64

	// Embedding plan: which third parties a full render touches.
	DirectTrackers []*Service // analytics etc. embedded in first-party context
	AdSlots        []*Service // ad networks with an ad slot on the page
	Widgets        []*Service // chat/comments/video/fonts
	CDNs           []*Service // static assets
}

// Graph is the complete synthetic web.
type Graph struct {
	Publishers []*Publisher
	Services   []*Service

	byRole map[Role][]*Service
	byFQDN map[string]*Service
}

// ServicesByRole returns all services with the given role.
func (g *Graph) ServicesByRole(r Role) []*Service { return g.byRole[r] }

// ServiceByFQDN returns the service answering on the given hostname.
func (g *Graph) ServiceByFQDN(fqdn string) (*Service, bool) {
	s, ok := g.byFQDN[fqdn]
	return s, ok
}

// TotalWeight returns the sum of publisher popularity weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for _, p := range g.Publishers {
		sum += p.Weight
	}
	return sum
}

// indexServices populates the lookup maps; the builder calls it last.
// AddFQDN attaches an extra hostname to an existing service and indexes
// it, so ServiceByFQDN resolves the new name to the same operator.
// Scenario packs use this to model CNAME cloaking and first-party
// subdomain delegation: the hostname is new (filter lists generated
// earlier never saw it) but the serving organization — and therefore
// the ground-truth tracking role — is unchanged. Panics if the FQDN
// already belongs to a different service.
func (g *Graph) AddFQDN(svc *Service, fqdn string) {
	if prev, dup := g.byFQDN[fqdn]; dup {
		if prev != svc {
			panic("webgraph: FQDN " + fqdn + " registered to two services")
		}
		return
	}
	svc.FQDNs = append(svc.FQDNs, fqdn)
	g.byFQDN[fqdn] = svc
}

func (g *Graph) indexServices() {
	g.byRole = make(map[Role][]*Service)
	g.byFQDN = make(map[string]*Service)
	for _, s := range g.Services {
		g.byRole[s.Role] = append(g.byRole[s.Role], s)
		for _, f := range s.FQDNs {
			if prev, dup := g.byFQDN[f]; dup && prev != s {
				panic("webgraph: FQDN " + f + " registered to two services")
			}
			g.byFQDN[f] = s
		}
	}
}
