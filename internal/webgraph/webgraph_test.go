package webgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestETLDPlusOne(t *testing.T) {
	cases := map[string]string{
		"pagead2.googlesyndication.com": "googlesyndication.com",
		"googlesyndication.com":         "googlesyndication.com",
		"a.b.c.example.net":             "example.net",
		"www.example.co.uk":             "example.co.uk",
		"example.co.uk":                 "example.co.uk",
		"deep.sub.example.com.au":       "example.com.au",
		"localhost":                     "localhost",
		"Example.COM.":                  "example.com",
	}
	for in, want := range cases {
		if got := ETLDPlusOne(in); got != want {
			t.Errorf("ETLDPlusOne(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHostname(t *testing.T) {
	cases := map[string]string{
		"https://www.Example.com/path?q=1": "www.example.com",
		"http://a.b.c:8080/x":              "a.b.c",
		"user@host.com/path":               "host.com",
		"plain.host":                       "plain.host",
		"https://h.io#frag":                "h.io",
	}
	for in, want := range cases {
		if got := Hostname(in); got != want {
			t.Errorf("Hostname(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestETLDPlusOneIsIdempotent(t *testing.T) {
	f := func(a, b uint8) bool {
		host := strings.ToLower(string(rune('a'+a%26))) + ".sub" + string(rune('a'+b%26)) + ".example.com"
		one := ETLDPlusOne(host)
		return ETLDPlusOne(one) == one
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopics(t *testing.T) {
	if len(SensitiveCategories()) != 12 {
		t.Fatalf("sensitive categories = %d, want 12 (Fig 9)", len(SensitiveCategories()))
	}
	for _, c := range SensitiveCategories() {
		if !IsSensitive(c) {
			t.Errorf("IsSensitive(%s) = false", c)
		}
		m := MaskingTopic(c)
		if IsSensitive(m) {
			t.Errorf("MaskingTopic(%s) = %s is itself sensitive", c, m)
		}
	}
	for _, g := range GeneralTopics() {
		if IsSensitive(g) {
			t.Errorf("general topic %s flagged sensitive", g)
		}
		if MaskingTopic(g) != g {
			t.Errorf("MaskingTopic(%s) changed a general topic", g)
		}
	}
}

func TestRoleProperties(t *testing.T) {
	tracking := []Role{RoleAdNetwork, RoleExchange, RoleDSP, RoleDMP, RoleAnalytics}
	for _, r := range tracking {
		if !r.IsTracking() {
			t.Errorf("%s must be tracking", r)
		}
	}
	for _, r := range []Role{RoleCDN, RoleWidget} {
		if r.IsTracking() {
			t.Errorf("%s must not be tracking", r)
		}
	}
	seen := map[string]bool{}
	for _, r := range []Role{RoleAdNetwork, RoleExchange, RoleDSP, RoleDMP, RoleAnalytics, RoleCDN, RoleWidget} {
		if s := r.String(); s == "" || seen[s] {
			t.Errorf("role %d string %q bad", r, s)
		} else {
			seen[s] = true
		}
	}
}

func smallGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	return Build(rand.New(rand.NewSource(seed)), Config{}.Scale(0.05))
}

func TestBuildDeterministic(t *testing.T) {
	g1 := smallGraph(t, 42)
	g2 := smallGraph(t, 42)
	if len(g1.Publishers) != len(g2.Publishers) || len(g1.Services) != len(g2.Services) {
		t.Fatal("same seed produced different sizes")
	}
	for i := range g1.Publishers {
		if g1.Publishers[i].Domain != g2.Publishers[i].Domain ||
			g1.Publishers[i].Weight != g2.Publishers[i].Weight {
			t.Fatalf("publisher %d differs between same-seed builds", i)
		}
	}
}

func TestBuildStructure(t *testing.T) {
	g := smallGraph(t, 7)
	if len(g.Publishers) == 0 || len(g.Services) == 0 {
		t.Fatal("empty graph")
	}
	// Every publisher embeds at least one tracking service and one CDN.
	for _, p := range g.Publishers {
		if len(p.AdSlots) == 0 && len(p.DirectTrackers) == 0 {
			t.Errorf("publisher %s has no tracking embeds", p.Domain)
		}
		if p.Weight <= 0 {
			t.Errorf("publisher %s weight %f", p.Domain, p.Weight)
		}
	}
	// FQDN index is consistent.
	for _, s := range g.Services {
		for _, f := range s.FQDNs {
			got, ok := g.ServiceByFQDN(f)
			if !ok || got != s {
				t.Errorf("FQDN %s index broken", f)
			}
		}
	}
	// Roles present.
	for _, r := range []Role{RoleAdNetwork, RoleExchange, RoleDSP, RoleDMP, RoleAnalytics, RoleCDN, RoleWidget} {
		if len(g.ServicesByRole(r)) == 0 {
			t.Errorf("no services with role %s", r)
		}
	}
}

func TestBuildMajors(t *testing.T) {
	g := smallGraph(t, 1)
	ga, ok := g.ServiceByFQDN("www.google-analytics.com")
	if !ok || ga.Org != "google" || !ga.Major {
		t.Error("google analytics service missing or mis-attributed")
	}
	fb, ok := g.ServiceByFQDN("connect.facebook.net")
	if !ok || fb.Org != "facebook" {
		t.Error("facebook pixel missing")
	}
	if s, _ := g.ServiceByFQDN("ad.doubleclick.net"); s == nil || s.Role != RoleExchange {
		t.Error("doubleclick must be an exchange")
	}
}

func TestSensitiveWeightShare(t *testing.T) {
	g := Build(rand.New(rand.NewSource(3)), Config{}.Scale(0.2))
	var sens, total float64
	nSens := 0
	for _, p := range g.Publishers {
		total += p.Weight
		if p.Sensitive != "" {
			sens += p.Weight
			nSens++
			if !IsSensitive(p.Sensitive) {
				t.Errorf("publisher %s sensitive topic %q not in the 12", p.Domain, p.Sensitive)
			}
		}
	}
	share := sens / total
	if share < 0.015 || share > 0.05 {
		t.Errorf("sensitive weight share = %.4f, want ~0.029", share)
	}
	if nSens == 0 {
		t.Fatal("no sensitive publishers built")
	}
	// All 12 categories represented.
	cats := map[Topic]bool{}
	for _, p := range g.Publishers {
		if p.Sensitive != "" {
			cats[p.Sensitive] = true
		}
	}
	if len(cats) != 12 {
		t.Errorf("only %d sensitive categories present, want 12", len(cats))
	}
}

func TestHealthDominatesSensitiveWeight(t *testing.T) {
	// Fig 9: health carries the largest flow share, gambling second.
	g := Build(rand.New(rand.NewSource(5)), Config{}.Scale(0.3))
	byCat := map[Topic]float64{}
	for _, p := range g.Publishers {
		if p.Sensitive != "" {
			byCat[p.Sensitive] += p.Weight
		}
	}
	if byCat[SensHealth] <= byCat[SensGambling] {
		t.Errorf("health %.5f <= gambling %.5f", byCat[SensHealth], byCat[SensGambling])
	}
	if byCat[SensGambling] <= byCat[SensPorn] {
		t.Errorf("gambling %.5f <= porn %.5f", byCat[SensGambling], byCat[SensPorn])
	}
}

func TestZipfPicker(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	z := newZipfPicker(100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[z.pick(rng)]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] <= counts[10] {
		t.Errorf("rank 0 (%d) not more popular than rank 10 (%d)", counts[0], counts[10])
	}
}

func TestTotalWeightPositive(t *testing.T) {
	g := smallGraph(t, 11)
	if g.TotalWeight() <= 0 {
		t.Error("total weight must be positive")
	}
}

func TestFullScaleCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale build")
	}
	g := Build(rand.New(rand.NewSource(1)), Config{})
	if got := len(g.Publishers); got != 5693 {
		t.Errorf("publishers = %d, want 5693 (Table 1)", got)
	}
	// FQDN population in the right order of magnitude (Table 1: 19,298
	// third-party domains; Table 2: ~9.9K tracking FQDNs).
	var trackingFQDNs, cleanFQDNs int
	for _, s := range g.Services {
		if s.Role.IsTracking() {
			trackingFQDNs += len(s.FQDNs)
		} else {
			cleanFQDNs += len(s.FQDNs)
		}
	}
	if trackingFQDNs < 6000 || trackingFQDNs > 16000 {
		t.Errorf("tracking FQDNs = %d, want ~10K", trackingFQDNs)
	}
	if cleanFQDNs < 5000 || cleanFQDNs > 16000 {
		t.Errorf("clean FQDNs = %d, want ~9K", cleanFQDNs)
	}
}
