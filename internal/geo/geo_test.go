package geo

import (
	"testing"

	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// buildWorld creates a world with majors deployed across the US and EU,
// mirroring the structure the scenario package builds at full scale.
func buildWorld(t testing.TB) (*netsim.World, []netsim.IP) {
	t.Helper()
	w := netsim.NewWorld()
	google := w.AddOrg("google", netsim.KindMajorAdTech, "US", geodata.GoogleCloud)
	fb := w.AddOrg("facebook", netsim.KindMajorAdTech, "US")
	acme := w.AddOrg("acme-dsp", netsim.KindAdTech, "DE")

	var ips []netsim.IP
	deploy := func(o *netsim.Org, c geodata.Country) {
		d := w.Deploy(o, c, "", 24)
		for i := uint32(0); i < 4; i++ {
			ips = append(ips, d.Block.Nth(i))
		}
	}
	deploy(google, "US")
	deploy(google, "IE")
	deploy(google, "NL")
	deploy(google, "DE")
	deploy(google, "GB")
	deploy(fb, "US")
	deploy(fb, "IE")
	deploy(fb, "SE")
	deploy(acme, "DE")
	deploy(acme, "US")
	w.Freeze()
	return w, ips
}

func TestTruthService(t *testing.T) {
	w, ips := buildWorld(t)
	truth := Truth{World: w}
	if truth.Name() != "truth" {
		t.Error("name")
	}
	loc, ok := truth.Locate(ips[0])
	if !ok || loc.Country != "US" || loc.Continent != geodata.NorthAmerica {
		t.Errorf("Locate(google US ip) = %+v ok=%v", loc, ok)
	}
	// Eyeball IP.
	eb := w.EyeballBlock("DE")
	loc, ok = truth.Locate(eb.Nth(3))
	if !ok || loc.Country != "DE" {
		t.Errorf("eyeball locate = %+v", loc)
	}
	if _, ok := truth.Locate(netsim.IP(0xF0000001)); ok {
		t.Error("unknown IP must miss")
	}
}

func TestCommercialHQBias(t *testing.T) {
	w, ips := buildWorld(t)
	mm := NewMaxMind(w)
	truth := Truth{World: w}
	wrong, total := 0, 0
	for _, ip := range ips {
		d, _ := w.LocateIP(ip)
		if d.Org.Name != "google" {
			continue
		}
		lm, _ := mm.Locate(ip)
		lt, _ := truth.Locate(ip)
		total++
		if lm.Country != lt.Country {
			wrong++
			if lm.Country != "US" && lm.Continent != lt.Continent {
				// wrong answers should mostly be the HQ
				t.Logf("non-HQ wrong answer: %v vs truth %v", lm, lt)
			}
		}
	}
	if total == 0 {
		t.Fatal("no google IPs")
	}
	// 4 of 5 google deployments are outside the US; with an ~0.87 HQ
	// pin rate roughly 70% of its IPs should be wrong (Table 4 ~58%).
	frac := float64(wrong) / float64(total)
	if frac < 0.3 || frac > 0.95 {
		t.Errorf("google wrong-country fraction = %.2f, want a large share", frac)
	}
	// HQ-country deployments are always right.
	usIP := ips[0]
	if lm, _ := mm.Locate(usIP); lm.Country != "US" {
		t.Errorf("US deployment located at %v", lm)
	}
}

func TestCommercialEyeballAccuracy(t *testing.T) {
	w, _ := buildWorld(t)
	mm := NewMaxMind(w)
	eb := w.EyeballBlock("GR")
	loc, ok := mm.Locate(eb.Nth(7))
	if !ok || loc.Country != "GR" {
		t.Errorf("eyeball = %+v, commercial DBs must locate end users accurately", loc)
	}
}

func TestCommercialDeterminism(t *testing.T) {
	w, ips := buildWorld(t)
	mm := NewMaxMind(w)
	for _, ip := range ips {
		a, _ := mm.Locate(ip)
		b, _ := mm.Locate(ip)
		if a != b {
			t.Fatalf("MaxMind non-deterministic for %s", ip)
		}
	}
}

func TestIPAPIAgreesWithMaxMind(t *testing.T) {
	w, ips := buildWorld(t)
	mm := NewMaxMind(w)
	api := NewIPAPI(mm)
	agr := CompareServices(mm, api, ips)
	// The toy world has only 10 blocks, so the per-block 4% deviation
	// rate has high variance; full-scale agreement is asserted by the
	// experiments package (Table 3: 96%). Here just require correlation.
	if agr.Country < 70 {
		t.Errorf("maxmind/ip-api country agreement = %.1f%%, want high (Table 3: 96%%)", agr.Country)
	}
	if agr.Continent < agr.Country {
		t.Errorf("continent agreement %.1f%% below country %.1f%%", agr.Continent, agr.Country)
	}
}

func TestIPMapAccuracy(t *testing.T) {
	w, ips := buildWorld(t)
	mesh := DefaultMesh()
	if len(mesh.Probes) < 5000 {
		t.Fatalf("mesh too small: %d probes", len(mesh.Probes))
	}
	m := NewIPMap(w, mesh)
	truth := Truth{World: w}
	correctCountry, correctCont := 0, 0
	for _, ip := range ips {
		lm, ok := m.Locate(ip)
		if !ok {
			t.Fatalf("IPMap missed %s", ip)
		}
		lt, _ := truth.Locate(ip)
		if lm.Country == lt.Country {
			correctCountry++
		}
		if sameEuroContinent(lm.Continent, lt.Continent) {
			correctCont++
		}
	}
	n := len(ips)
	if frac := float64(correctCountry) / float64(n); frac < 0.9 {
		t.Errorf("IPmap country accuracy = %.2f, want >= 0.9 (§3.4: 99.58%% on cloud ranges)", frac)
	}
	if frac := float64(correctCont) / float64(n); frac < 0.99 {
		t.Errorf("IPmap continent accuracy = %.2f, want ~1.0", frac)
	}
}

func sameEuroContinent(a, b geodata.Continent) bool {
	isEU := func(c geodata.Continent) bool {
		return c == geodata.EU28 || c == geodata.RestOfEurope
	}
	return a == b || (isEU(a) && isEU(b))
}

func TestIPMapDeterministicAndCached(t *testing.T) {
	w, ips := buildWorld(t)
	m := NewIPMap(w, DefaultMesh())
	a, _ := m.Locate(ips[3])
	b, _ := m.Locate(ips[3])
	if a != b {
		t.Error("cached answer differs")
	}
	m2 := NewIPMap(w, DefaultMesh())
	c, _ := m2.Locate(ips[3])
	if a != c {
		t.Error("fresh instance with same seed differs")
	}
}

func TestIPMapMajorityVote(t *testing.T) {
	w, ips := buildWorld(t)
	m := NewIPMap(w, DefaultMesh())
	votes, ok := m.MeasureVotes(ips[0])
	if !ok || len(votes) != m.ProbesPerQuery {
		t.Fatalf("votes = %d ok=%v", len(votes), ok)
	}
	counts := map[geodata.Country]int{}
	for _, v := range votes {
		if v.RTTms <= 0 {
			t.Fatal("non-positive RTT")
		}
		counts[v.Estimate]++
	}
	loc, _ := m.Locate(ips[0])
	best, bestN := geodata.Country(""), -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < best) {
			best, bestN = c, n
		}
	}
	if loc.Country != best {
		t.Errorf("Locate %v != majority %v", loc.Country, best)
	}
}

func TestCompareServicesMaxMindVsIPMapDisagree(t *testing.T) {
	// Table 3's key asymmetry: the commercial DBs agree with each other
	// but disagree with IPmap on a large share of infrastructure IPs.
	w, ips := buildWorld(t)
	mm := NewMaxMind(w)
	m := NewIPMap(w, DefaultMesh())
	agr := CompareServices(mm, m, ips)
	if agr.IPs != len(ips) {
		t.Fatalf("compared %d of %d", agr.IPs, len(ips))
	}
	if agr.Country > 75 {
		t.Errorf("maxmind/ipmap country agreement = %.1f%%, want substantial disagreement (Table 3: ~53%%)", agr.Country)
	}
}

func TestScoreOrg(t *testing.T) {
	w, ips := buildWorld(t)
	mm := NewMaxMind(w)
	truth := Truth{World: w}
	var googleIPs []netsim.IP
	reqs := map[netsim.IP]int64{}
	for _, ip := range ips {
		if d, _ := w.LocateIP(ip); d.Org.Name == "google" {
			googleIPs = append(googleIPs, ip)
			reqs[ip] = 10
		}
	}
	rep := ScoreOrg("google", mm, truth, googleIPs, reqs)
	if rep.IPs != len(googleIPs) {
		t.Errorf("IPs = %d", rep.IPs)
	}
	if rep.Requests != int64(10*len(googleIPs)) {
		t.Errorf("Requests = %d", rep.Requests)
	}
	if rep.WrongCountry < rep.WrongContinent {
		t.Error("wrong continent cannot exceed wrong country")
	}
	if rep.WrongCountryPct() < 0 || rep.WrongCountryPct() > 100 {
		t.Error("pct out of range")
	}
	// Unweighted variant.
	rep2 := ScoreOrg("google", mm, truth, googleIPs, nil)
	if rep2.Requests != 0 || rep2.ReqWrongCountryPct() != 0 {
		t.Error("nil requests must yield zero request stats")
	}
}

func TestStaticService(t *testing.T) {
	s := Static{ServiceName: "static", Locations: map[netsim.IP]Location{
		1: {Country: "DE", Continent: geodata.EU28},
	}}
	if s.Name() != "static" {
		t.Error("name")
	}
	if loc, ok := s.Locate(1); !ok || loc.Country != "DE" {
		t.Error("hit failed")
	}
	if _, ok := s.Locate(2); ok {
		t.Error("miss reported ok")
	}
}

func TestNeighborCountry(t *testing.T) {
	n := neighborCountry("DE", 1)
	if n == "DE" {
		t.Error("neighbor must differ")
	}
	if geodata.ContinentOf(n) != geodata.EU28 {
		t.Errorf("neighbor %s not in same region", n)
	}
	// Deterministic.
	if neighborCountry("DE", 1) != n {
		t.Error("not deterministic")
	}
	if neighborCountry("??", 1) != "??" {
		t.Error("unknown country must be returned unchanged")
	}
}
