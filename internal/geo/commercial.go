package geo

import (
	"crossborder/internal/netsim"
)

// CommercialDB emulates a MaxMind-style commercial geolocation database.
// Commercial databases optimize for locating *end users* (their paying use
// case) and fall back to the legal registrant's address for infrastructure
// ranges (§3.4, Table 4: roughly half the IPs of Google/Amazon/Facebook
// are geolocated to the wrong country, typically the US headquarters).
//
// Behaviour:
//   - eyeball IPs: accurate (the databases' purpose);
//   - server IPs in the org's HQ country: accurate (HQ fallback is right);
//   - server IPs elsewhere: geolocated to the org's HQ with probability
//     HQBias, to a nearby country with probability NeighborNoise, and
//     correctly otherwise.
type CommercialDB struct {
	ServiceName string
	World       *netsim.World
	// HQBias is the probability that a non-HQ infrastructure block is
	// pinned to the org's HQ country (default 0.87).
	HQBias float64
	// NeighborNoise is the probability of a near-miss to a neighboring
	// country instead (default 0.04).
	NeighborNoise float64
	// Salt decorrelates two databases built over the same world, so
	// MaxMind and IP-API agree highly but not perfectly (Table 3: 96%).
	Salt uint64
}

// NewMaxMind returns the MaxMind-style database emulator.
func NewMaxMind(w *netsim.World) *CommercialDB {
	return &CommercialDB{ServiceName: "maxmind", World: w, HQBias: 0.80, NeighborNoise: 0.05, Salt: 0x6d61786d696e64}
}

// DerivedDB emulates a second commercial database (IP-API) that shares
// data sources with the first: it repeats the base database's answer for
// most blocks and deviates on a small fraction, producing the
// high-but-imperfect pairwise agreement of Table 3 (96.13% on country).
type DerivedDB struct {
	ServiceName string
	Base        *CommercialDB
	// AgreeProb is the per-block probability of copying the base answer
	// (default 0.96).
	AgreeProb float64
	Salt      uint64
}

// NewIPAPI returns the IP-API-style database emulator derived from a
// MaxMind-style base.
func NewIPAPI(base *CommercialDB) *DerivedDB {
	return &DerivedDB{ServiceName: "ip-api", Base: base, AgreeProb: 0.96, Salt: 0x69702d617069}
}

// Name implements Service.
func (db *DerivedDB) Name() string { return db.ServiceName }

// Locate implements Service.
func (db *DerivedDB) Locate(ip netsim.IP) (Location, bool) {
	base, ok := db.Base.Locate(ip)
	if !ok {
		return Location{}, false
	}
	d, isServer := db.Base.World.LocateIP(ip)
	if !isServer {
		return base, true // eyeballs: both are accurate
	}
	agree := db.AgreeProb
	if agree == 0 {
		agree = 0.96
	}
	if hashCoin(d.Block.Base, db.Salt) < agree {
		return base, true
	}
	// Disagreement: this database has its own (usually also wrong)
	// entry — a neighbor of the base answer keeps the continent mostly
	// intact, matching Table 3's higher continent agreement.
	return locOf(neighborCountry(base.Country, db.Salt^uint64(d.Block.Base))), true
}

// Name implements Service.
func (db *CommercialDB) Name() string { return db.ServiceName }

// Locate implements Service.
func (db *CommercialDB) Locate(ip netsim.IP) (Location, bool) {
	if d, ok := db.World.LocateIP(ip); ok {
		return db.locateServer(ip, d), true
	}
	if c := db.World.EyeballCountry(ip); c != "" {
		return locOf(c), true
	}
	return Location{}, false
}

func (db *CommercialDB) locateServer(ip netsim.IP, d netsim.Deployment) Location {
	hq := d.Org.HQ
	if d.Country == hq {
		return locOf(hq)
	}
	// The database keys on blocks, not single addresses: decide per
	// block base so a whole deployment is wrong together, like real
	// WHOIS-derived entries.
	coin := hashCoin(d.Block.Base, db.Salt)
	hqBias := db.HQBias
	if hqBias == 0 {
		hqBias = 0.87
	}
	noise := db.NeighborNoise
	switch {
	case coin < hqBias:
		return locOf(hq)
	case coin < hqBias+noise:
		return locOf(neighborCountry(d.Country, db.Salt^uint64(d.Block.Base)))
	default:
		return locOf(d.Country)
	}
}
