// Package geo implements the three IP-geolocation services the paper
// compares (§3.4): a ground truth oracle, commercial-database emulators
// (MaxMind and IP-API) that systematically geolocate infrastructure IPs to
// the owning organization's legal-entity headquarters, and a RIPE
// IPmap-style active geolocator that multilaterates with RTT measurements
// from a global probe mesh and majority-votes per-probe estimates.
//
// The paper's headline methodological finding — that the geolocation
// method alone flips the qualitative conclusion (Fig 7a vs 7b) — falls out
// of the difference between these implementations.
package geo

import (
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// Location is a service's answer for one IP.
type Location struct {
	Country   geodata.Country
	Continent geodata.Continent
}

// Service geolocates IPs. Implementations must be safe for concurrent use
// after construction.
type Service interface {
	// Name identifies the service in reports.
	Name() string
	// Locate returns the service's location estimate for ip. ok is false
	// when the service has no answer for the address.
	Locate(ip netsim.IP) (Location, bool)
}

// locOf builds a Location from a country code.
func locOf(c geodata.Country) Location {
	return Location{Country: c, Continent: geodata.ContinentOf(c)}
}

// Truth is the ground-truth oracle backed by the netsim registry. It
// resolves server IPs to their real datacenter country and eyeball IPs to
// their subscriber country.
type Truth struct {
	World *netsim.World
}

// Name implements Service.
func (Truth) Name() string { return "truth" }

// Locate implements Service.
func (t Truth) Locate(ip netsim.IP) (Location, bool) {
	if d, ok := t.World.LocateIP(ip); ok {
		return locOf(d.Country), true
	}
	if c := t.World.EyeballCountry(ip); c != "" {
		return locOf(c), true
	}
	return Location{}, false
}

// Static is a fixed map-backed service, useful in tests and for importing
// externally computed results.
type Static struct {
	ServiceName string
	Locations   map[netsim.IP]Location
}

// Name implements Service.
func (s Static) Name() string { return s.ServiceName }

// Locate implements Service.
func (s Static) Locate(ip netsim.IP) (Location, bool) {
	l, ok := s.Locations[ip]
	return l, ok
}

// hashCoin returns a deterministic pseudo-random float64 in [0,1) for an
// IP under a salt, so database emulators answer consistently across calls
// without shared state.
func hashCoin(ip netsim.IP, salt uint64) float64 {
	x := uint64(ip) ^ salt*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// neighborCountry picks a deterministic nearby country in the same
// region, used to model near-border confusion.
func neighborCountry(c geodata.Country, salt uint64) geodata.Country {
	info, ok := geodata.Lookup(c)
	if !ok {
		return c
	}
	// Pick among the 3 nearest same-continent countries by hash.
	type cand struct {
		code geodata.Country
		dist float64
	}
	var cands []cand
	for _, other := range geodata.AllCountries() {
		if other.Code == c || other.Continent != info.Continent {
			continue
		}
		cands = append(cands, cand{other.Code, geodata.DistanceKm(c, other.Code)})
	}
	if len(cands) == 0 {
		return c
	}
	// Partial selection of the nearest three.
	for k := 0; k < 3 && k < len(cands); k++ {
		minI := k
		for i := k + 1; i < len(cands); i++ {
			if cands[i].dist < cands[minI].dist {
				minI = i
			}
		}
		cands[k], cands[minI] = cands[minI], cands[k]
	}
	n := 3
	if len(cands) < n {
		n = len(cands)
	}
	idx := int(hashCoin(netsim.IP(salt), uint64(len(c))) * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return cands[idx].code
}
