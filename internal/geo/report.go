package geo

import (
	"crossborder/internal/netsim"
)

// Agreement summarizes how often two services give the same answer over
// an IP set (a cell pair of Table 3).
type Agreement struct {
	A, B      string
	IPs       int
	Country   float64 // percent agreeing on country
	Continent float64 // percent agreeing on continent
}

// CompareServices computes the pairwise agreement of two services over
// the IPs both can locate.
func CompareServices(a, b Service, ips []netsim.IP) Agreement {
	res := Agreement{A: a.Name(), B: b.Name()}
	var country, continent int
	for _, ip := range ips {
		la, okA := a.Locate(ip)
		lb, okB := b.Locate(ip)
		if !okA || !okB {
			continue
		}
		res.IPs++
		if la.Country == lb.Country {
			country++
		}
		if la.Continent == lb.Continent {
			continent++
		}
	}
	if res.IPs > 0 {
		res.Country = 100 * float64(country) / float64(res.IPs)
		res.Continent = 100 * float64(continent) / float64(res.IPs)
	}
	return res
}

// OrgErrorReport is one row of Table 4: how badly a commercial database
// geolocates one organization's tracking IPs, by IP count and by request
// volume.
type OrgErrorReport struct {
	Org            string
	IPs            int
	WrongCountry   int
	WrongContinent int
	Requests       int64
	ReqWrongCtry   int64
	ReqWrongCont   int64
}

// WrongCountryPct returns the share of IPs placed in the wrong country.
func (r OrgErrorReport) WrongCountryPct() float64 {
	if r.IPs == 0 {
		return 0
	}
	return 100 * float64(r.WrongCountry) / float64(r.IPs)
}

// WrongContinentPct returns the share of IPs placed on the wrong continent.
func (r OrgErrorReport) WrongContinentPct() float64 {
	if r.IPs == 0 {
		return 0
	}
	return 100 * float64(r.WrongContinent) / float64(r.IPs)
}

// ReqWrongCountryPct returns the request-weighted wrong-country share.
func (r OrgErrorReport) ReqWrongCountryPct() float64 {
	if r.Requests == 0 {
		return 0
	}
	return 100 * float64(r.ReqWrongCtry) / float64(r.Requests)
}

// ReqWrongContinentPct returns the request-weighted wrong-continent share.
func (r OrgErrorReport) ReqWrongContinentPct() float64 {
	if r.Requests == 0 {
		return 0
	}
	return 100 * float64(r.ReqWrongCont) / float64(r.Requests)
}

// ScoreOrg scores a database against ground truth over one org's IPs.
// requests gives per-IP request counts (nil for unweighted).
func ScoreOrg(org string, db Service, truth Service, ips []netsim.IP, requests map[netsim.IP]int64) OrgErrorReport {
	rep := OrgErrorReport{Org: org}
	for _, ip := range ips {
		lDB, okA := db.Locate(ip)
		lT, okB := truth.Locate(ip)
		if !okA || !okB {
			continue
		}
		rep.IPs++
		n := int64(0)
		if requests != nil {
			n = requests[ip]
		}
		rep.Requests += n
		if lDB.Country != lT.Country {
			rep.WrongCountry++
			rep.ReqWrongCtry += n
		}
		if lDB.Continent != lT.Continent {
			rep.WrongContinent++
			rep.ReqWrongCont += n
		}
	}
	return rep
}
