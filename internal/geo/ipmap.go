package geo

import (
	"math/rand"
	"sync"

	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
)

// Probe is one active measurement vantage point (a RIPE Atlas probe).
type Probe struct {
	Country geodata.Country
}

// ProbeMesh is the global probe deployment. The RIPE Atlas footprint is
// dense in Europe (>5K probes), substantial in North America (>1K) and
// sparse elsewhere (§3.4); DefaultMesh reproduces those proportions.
type ProbeMesh struct {
	Probes []Probe
}

// DefaultMesh builds an ~11K-probe mesh with the Atlas-like distribution:
// probe count per country proportional to infrastructure density, with
// Europe over-represented.
func DefaultMesh() *ProbeMesh {
	var mesh ProbeMesh
	for _, c := range geodata.AllCountries() {
		weight := c.InfraDensity
		switch c.Continent {
		case geodata.EU28, geodata.RestOfEurope:
			weight *= 4 // Atlas's European density
		case geodata.NorthAmerica:
			weight *= 1
		default:
			weight = weight / 2
		}
		n := weight * 2
		if n < 2 {
			n = 2 // every country has at least a couple of probes
		}
		for i := 0; i < n; i++ {
			mesh.Probes = append(mesh.Probes, Probe{Country: c.Code})
		}
	}
	return &mesh
}

// IPMap emulates RIPE IPmap's active geolocation: for each target IP it
// tasks ~ProbesPerQuery probes, each probe measures RTT to the target and
// produces a location estimate (the candidate country whose expected RTT
// best explains the measurement, subject to the speed-of-light bound), and
// the coordinator majority-votes the estimates (§3.4).
type IPMap struct {
	World *netsim.World
	Mesh  *ProbeMesh
	RTT   netsim.RTTModel
	// ProbesPerQuery is the number of probes tasked per IP (default 100,
	// as the paper reports).
	ProbesPerQuery int
	// Seed makes the probe sampling deterministic per IP.
	Seed int64

	mu    sync.Mutex
	cache map[netsim.IP]Location

	candidates      []geodata.Country
	probesByCountry map[geodata.Country][]int
}

// NewIPMap builds the active geolocator over the world's ground truth.
func NewIPMap(w *netsim.World, mesh *ProbeMesh) *IPMap {
	var cands []geodata.Country
	for _, c := range geodata.AllCountries() {
		cands = append(cands, c.Code)
	}
	byCountry := make(map[geodata.Country][]int)
	for i, p := range mesh.Probes {
		byCountry[p.Country] = append(byCountry[p.Country], i)
	}
	return &IPMap{
		World:           w,
		Mesh:            mesh,
		ProbesPerQuery:  100,
		Seed:            42,
		cache:           make(map[netsim.IP]Location),
		candidates:      cands,
		probesByCountry: byCountry,
	}
}

// Name implements Service.
func (m *IPMap) Name() string { return "ripe-ipmap" }

// Locate implements Service. Results are cached; the measurement for a
// given IP is deterministic under the configured seed.
func (m *IPMap) Locate(ip netsim.IP) (Location, bool) {
	m.mu.Lock()
	if loc, ok := m.cache[ip]; ok {
		m.mu.Unlock()
		return loc, true
	}
	m.mu.Unlock()

	truthCountry, ok := m.truthCountry(ip)
	if !ok {
		return Location{}, false
	}
	loc := m.measure(ip, truthCountry)

	m.mu.Lock()
	m.cache[ip] = loc
	m.mu.Unlock()
	return loc, true
}

func (m *IPMap) truthCountry(ip netsim.IP) (geodata.Country, bool) {
	if d, ok := m.World.LocateIP(ip); ok {
		return d.Country, true
	}
	if c := m.World.EyeballCountry(ip); c != "" {
		return c, true
	}
	return "", false
}

// Vote is one probe's reply.
type Vote struct {
	Probe    Probe
	RTTms    float64
	Estimate geodata.Country
}

// MeasureVotes runs the per-probe estimation for an IP and returns the
// raw votes; Locate uses the majority. Exposed for the agreement analysis
// and tests.
func (m *IPMap) MeasureVotes(ip netsim.IP) ([]Vote, bool) {
	truth, ok := m.truthCountry(ip)
	if !ok {
		return nil, false
	}
	return m.votes(ip, truth), true
}

func (m *IPMap) votes(ip netsim.IP, truth geodata.Country) []Vote {
	// Per-IP deterministic RNG: same IP, same probes, same jitter.
	rng := rand.New(rand.NewSource(m.Seed ^ int64(ip)*0x9e3779b9))
	k := m.ProbesPerQuery
	if k <= 0 {
		k = 100
	}

	// Phase 1 — coarse localization: a couple dozen random probes
	// measure; the country of the minimum-RTT probe anchors the region.
	coarse := truth // fallback, only when mesh is empty
	bestRTT := -1.0
	for i := 0; i < 25 && len(m.Mesh.Probes) > 0; i++ {
		p := m.Mesh.Probes[rng.Intn(len(m.Mesh.Probes))]
		rtt := m.minRTT(rng, p.Country, truth)
		if bestRTT < 0 || rtt < bestRTT {
			coarse, bestRTT = p.Country, rtt
		}
	}

	// Phase 2 — refinement: IPmap tasks probes near the presumed
	// location. Sample k probes from countries within 2500 km of the
	// coarse country; fall back to the whole mesh if the region is sparse.
	var regional []int
	for _, c := range m.candidates { // candidate order is deterministic
		if d := geodata.DistanceKm(c, coarse); d >= 0 && d <= 2500 {
			regional = append(regional, m.probesByCountry[c]...)
		}
	}
	if len(regional) < 20 {
		regional = regional[:0]
		for i := range m.Mesh.Probes {
			regional = append(regional, i)
		}
	}
	votes := make([]Vote, 0, k)
	for i := 0; i < k; i++ {
		p := m.Mesh.Probes[regional[rng.Intn(len(regional))]]
		rtt := m.minRTT(rng, p.Country, truth)
		votes = append(votes, Vote{Probe: p, RTTms: rtt, Estimate: m.estimate(p, rtt)})
	}
	return votes
}

// minRTT is a probe's measurement: the minimum of three pings, the
// standard way active geolocation suppresses queueing jitter.
func (m *IPMap) minRTT(rng *rand.Rand, from, to geodata.Country) float64 {
	best := m.RTT.Measure(rng, from, to)
	for i := 0; i < 2; i++ {
		if r := m.RTT.Measure(rng, from, to); r < best {
			best = r
		}
	}
	return best
}

// estimate implements one probe's reasoning: among candidate countries
// whose speed-of-light minimum does not exceed the measured RTT, pick the
// one whose expected RTT best matches the measurement.
func (m *IPMap) estimate(p Probe, rttMs float64) geodata.Country {
	best := p.Country
	bestErr := -1.0
	for _, cand := range m.candidates {
		minPossible := m.RTT.MinPossible(p.Country, cand)
		if minPossible > rttMs {
			continue // physically impossible, candidate excluded
		}
		// Expected minimum-of-pings RTT: propagation with path stretch
		// plus the last-mile floor and a small residual-jitter allowance.
		expected := minPossible*1.3 + 5.5
		err := expected - rttMs
		if err < 0 {
			err = -err
		}
		if bestErr < 0 || err < bestErr {
			best, bestErr = cand, err
		}
	}
	return best
}

// measure majority-votes the probes' estimates.
func (m *IPMap) measure(ip netsim.IP, truth geodata.Country) Location {
	votes := m.votes(ip, truth)
	counts := make(map[geodata.Country]int)
	for _, v := range votes {
		counts[v.Estimate]++
	}
	var winner geodata.Country
	bestN := -1
	for c, n := range counts {
		if n > bestN || (n == bestN && c < winner) {
			winner, bestN = c, n
		}
	}
	return locOf(winner)
}
