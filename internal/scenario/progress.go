package scenario

import (
	"sync"
	"time"
)

// Phase names one stage of the build pipeline. The phases run in the
// order Phases returns; cancellation is checked between phases and at
// fine-grained checkpoints inside the expensive ones.
type Phase string

// The pipeline's stages, in execution order.
const (
	// PhaseWorld covers web-graph generation, organization footprints,
	// DNS zone construction, and filter-list generation.
	PhaseWorld Phase = "world"
	// PhaseSimulate is the browsing study: every user replays their
	// visits over the worker pool. Progress ticks once per finished user.
	PhaseSimulate Phase = "simulate"
	// PhaseClassify merges the per-worker collector shards into the
	// final classified Dataset.
	PhaseClassify Phase = "classify"
	// PhaseInventory compiles the tracker IP inventory (observed IPs
	// plus passive-DNS completion).
	PhaseInventory Phase = "inventory"
	// PhaseGeolocate constructs the geolocation services (ground truth,
	// MaxMind, IP-API, RIPE IPmap).
	PhaseGeolocate Phase = "geolocate"
	// PhaseSensitive runs the §6 sensitive-category identification.
	// Skipped when Params.SkipSensitive is set.
	PhaseSensitive Phase = "sensitive"
)

// Phases returns the canonical phase order of BuildContext.
func Phases() []Phase {
	return []Phase{
		PhaseWorld, PhaseSimulate, PhaseClassify,
		PhaseInventory, PhaseGeolocate, PhaseSensitive,
	}
}

// PhaseEvent is one progress report from the build pipeline. Within a
// phase, Done is monotone non-decreasing and never exceeds Total; every
// phase emits at least a 0/Total and a Total/Total event.
type PhaseEvent struct {
	// Phase is the stage this event reports on.
	Phase Phase
	// Done and Total count the phase's work items (users for the
	// simulation, services for world construction; coarser phases report
	// a single item).
	Done, Total int
	// Elapsed is the time spent in this phase so far.
	Elapsed time.Duration
}

// progress serializes PhaseEvent delivery. Ticks arrive from concurrent
// simulation workers, so emission is guarded by a mutex; the guard also
// enforces per-phase monotonicity of Done.
type progress struct {
	fn func(PhaseEvent)

	mu      sync.Mutex
	phase   Phase
	done    int
	total   int
	started time.Time
}

// newProgress wraps the user callback; fn may be nil, making every
// method a no-op.
func newProgress(fn func(PhaseEvent)) *progress {
	return &progress{fn: fn}
}

// startPhase opens a phase and emits its 0/total event.
func (p *progress) startPhase(ph Phase, total int) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.phase, p.done, p.total, p.started = ph, 0, total, time.Now()
	p.emit()
}

// tick advances the current phase by n items and emits.
func (p *progress) tick(n int) {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done += n
	if p.done > p.total {
		p.done = p.total
	}
	p.emit()
}

// finishPhase completes the current phase (Done = Total) and emits.
func (p *progress) finishPhase() {
	if p.fn == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done = p.total
	p.emit()
}

// emit must be called with the mutex held.
func (p *progress) emit() {
	p.fn(PhaseEvent{
		Phase:   p.phase,
		Done:    p.done,
		Total:   p.total,
		Elapsed: time.Since(p.started),
	})
}
