package scenario

import (
	"sort"
	"testing"
)

// TestBuildWorldMatchesFullBuild pins the rng contract of the
// world-only build: skipping the browsing study (which runs on private
// per-user streams) and the draw-free classify/inventory phases leaves
// the main rng sequence intact, so BuildWorld produces the identical
// graph, zones, filter lists, population and sensitive identification
// as the full Build with the same Params — everything the live
// collector classifies uploads against.
func TestBuildWorldMatchesFullBuild(t *testing.T) {
	p := Params{Seed: 5, Scale: 0.02, VisitsPerUser: 6}
	full := Build(p)
	world := BuildWorld(p)

	if world.Dataset != nil || world.Inventory != nil {
		t.Fatal("world-only build must not carry a dataset or inventory")
	}
	if got, want := len(world.Graph.Publishers), len(full.Graph.Publishers); got != want {
		t.Fatalf("publishers = %d, want %d", got, want)
	}
	for i := range full.Graph.Publishers {
		if world.Graph.Publishers[i].Domain != full.Graph.Publishers[i].Domain {
			t.Fatalf("publisher %d = %q, want %q",
				i, world.Graph.Publishers[i].Domain, full.Graph.Publishers[i].Domain)
		}
	}
	if got, want := len(world.Graph.Services), len(full.Graph.Services); got != want {
		t.Fatalf("services = %d, want %d", got, want)
	}
	if got, want := len(world.Users), len(full.Users); got != want {
		t.Fatalf("users = %d, want %d", got, want)
	}
	for i := range full.Users {
		if *world.Users[i] != *full.Users[i] {
			t.Fatalf("user %d = %+v, want %+v", i, world.Users[i], full.Users[i])
		}
	}

	wz, fz := world.DNS.Zones(), full.DNS.Zones()
	sort.Strings(wz)
	sort.Strings(fz)
	if len(wz) != len(fz) {
		t.Fatalf("zones = %d, want %d", len(wz), len(fz))
	}
	for i := range fz {
		if wz[i] != fz[i] {
			t.Fatalf("zone %d = %q, want %q", i, wz[i], fz[i])
		}
	}

	// The sensitive identification runs after the skipped phases, so it
	// is the sharpest probe of rng alignment.
	if world.Identification.Inspected != full.Identification.Inspected ||
		world.Identification.Identified() != full.Identification.Identified() {
		t.Fatalf("identification = %d/%d, want %d/%d",
			world.Identification.Identified(), world.Identification.Inspected,
			full.Identification.Identified(), full.Identification.Inspected)
	}
	wantCats := make(map[string]string)
	for p2, topic := range full.Identification.ByPublisher {
		wantCats[p2.Domain] = string(topic)
	}
	for p2, topic := range world.Identification.ByPublisher {
		if wantCats[p2.Domain] != string(topic) {
			t.Fatalf("identified %q as %q, full build says %q", p2.Domain, topic, wantCats[p2.Domain])
		}
	}
}
