package scenario

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/netsim"
	"crossborder/internal/webgraph"
)

// euDCPool weights the countries where ad-tech companies actually rented
// datacenter space circa 2018. The heavy Frankfurt/Amsterdam/London/
// Dublin concentration — and the near-absence of PL, GR, RO, CY, DK, HU —
// is what produces the paper's national-confinement spread (Fig 8,
// Fig 12). Austria's presence serves Hungarian users (Fig 12d); CH and RU
// supply the "Rest of Europe" few percent.
var euDCPool = []struct {
	c geodata.Country
	w int
}{
	{"DE", 80}, {"GB", 72}, {"NL", 52}, {"IE", 44}, {"FR", 36},
	{"ES", 50}, {"IT", 16}, {"SE", 12}, {"AT", 28}, {"BE", 10},
	{"CZ", 8}, {"FI", 8}, {"CH", 4}, {"RU", 3},
	// The long tail: enough presence for the paper's single-digit
	// national confinement in GR/RO/CY/DK/PT/HU, near-zero in PL.
	// Austria is the CEE hosting hub that absorbs Hungarian traffic
	// (Fig 12d).
	{"GR", 8}, {"DK", 4}, {"PT", 4}, {"HU", 6}, {"RO", 12}, {"PL", 2},
	{"BG", 2}, {"CY", 2},
}

// hqPool weights tracker legal-entity headquarters: the industry is
// overwhelmingly US-based, which is what MaxMind-style HQ pinning turns
// into the Fig 7(a) mirage.
var hqPool = []struct {
	c geodata.Country
	w int
}{
	{"US", 73}, {"DE", 8}, {"GB", 5}, {"FR", 4}, {"NL", 3},
	{"RU", 2}, {"CH", 1}, {"ES", 2}, {"IT", 2}, {"SE", 1},
}

// weightedPool is a weighted country sampler with the cumulative sums
// precomputed once, replacing the draw that re-summed the pool on every
// call inside the org/zone build loops. pick consumes exactly one Intn
// and returns the same country the linear subtract-scan would have, so
// world construction is unchanged draw for draw.
type weightedPool struct {
	countries []geodata.Country
	cum       []int
	total     int
}

func newWeightedPool(pool []struct {
	c geodata.Country
	w int
}) *weightedPool {
	p := &weightedPool{
		countries: make([]geodata.Country, len(pool)),
		cum:       make([]int, len(pool)),
	}
	for i, e := range pool {
		p.total += e.w
		p.countries[i] = e.c
		p.cum[i] = p.total
	}
	return p
}

func (p *weightedPool) pick(rng *rand.Rand) geodata.Country {
	return p.countries[p.upperBound(rng.Intn(p.total))]
}

// upperBound returns the first index whose cumulative weight exceeds x.
func (p *weightedPool) upperBound(x int) int {
	lo, hi := 0, len(p.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

var (
	euDCPicker = newWeightedPool(euDCPool)
	hqPicker   = newWeightedPool(hqPool)
)

// midClouds are the providers mid-tier trackers lease origin servers
// from: the hyperscalers and classic hosters. (CloudFlare and Equinix
// stay in the §5.2 migration analysis but are edge/colo providers, not
// typical tracker origin hosting.)
var midClouds = []geodata.CloudProvider{
	geodata.AWS, geodata.AWS, geodata.Azure, geodata.GoogleCloud,
	geodata.DigitalOcean, geodata.IBMCloud,
	geodata.OracleCloud, geodata.Rackspace,
}

// worldBuilder constructs orgs, deployments, DNS zones and the pDNS feed.
type worldBuilder struct {
	s    *Scenario
	rng  *rand.Rand
	ctx  context.Context
	prog *progress
	// workers sizes the zone-materialization pool (see buildZones).
	workers int

	// rotationMid splits the study period for rotating bindings.
	rotationMid time.Time

	// pools maps org name -> per-deployment IP pools.
	pools map[string][]dcPool

	// trackerIPCount tallies registered tracking server IPs so the
	// standby (pDNS-only) extras can be sized to ~3%.
	trackerIPCount int
}

type dcPool struct {
	dep  netsim.Deployment
	ips  []netsim.IP
	next int // cursor for standby allocation
}

// scaled shrinks a full-scale population parameter with Params.Scale,
// never below min.
func (b *worldBuilder) scaled(full, min int) int {
	n := int(float64(full) * b.s.Params.Scale)
	if n < min {
		n = min
	}
	return n
}

func (b *worldBuilder) build() error {
	b.rotationMid = b.s.Start.Add(b.s.End.Sub(b.s.Start) / 2)
	b.pools = make(map[string][]dcPool)

	if err := b.buildOrgs(); err != nil {
		return err
	}
	if err := b.buildZones(); err != nil {
		return err
	}
	b.buildSharedInfra()
	b.buildStandbyIPs()
	return nil
}

// checkpoint polls for cancellation; the org and zone loops call it
// every few dozen services so a cancelled context aborts world
// construction promptly.
func (b *worldBuilder) checkpoint(i int) error {
	if i%64 == 0 {
		return b.ctx.Err()
	}
	return nil
}

// orgPlan captures the footprint decision for one org.
type orgPlan struct {
	countries []geodata.Country
}

// buildOrgs walks the graph's services, creates one netsim org per
// distinct owner and deploys its datacenter footprint.
func (b *worldBuilder) buildOrgs() error {
	seen := make(map[string]bool)
	for i, svc := range b.s.Graph.Services {
		if err := b.checkpoint(i); err != nil {
			return err
		}
		b.prog.tick(1)
		if seen[svc.Org] {
			continue
		}
		seen[svc.Org] = true
		b.buildOrg(svc)
	}
	return nil
}

func (b *worldBuilder) buildOrg(svc *webgraph.Service) {
	rng := b.rng
	name := svc.Org

	var kind netsim.OrgKind
	switch {
	case svc.Major:
		kind = netsim.KindMajorAdTech
	case svc.Role == webgraph.RoleExchange:
		kind = netsim.KindExchange
	case svc.Role.IsTracking():
		kind = netsim.KindAdTech
	case svc.Role == webgraph.RoleCDN:
		kind = netsim.KindCDN
	default:
		kind = netsim.KindWidget
	}

	var plan orgPlan
	var hq geodata.Country
	var clouds []geodata.CloudProvider
	poolPerDC := 6
	prefix := 27

	switch {
	case name == "google":
		hq = "US"
		clouds = []geodata.CloudProvider{geodata.GoogleCloud}
		plan.countries = []geodata.Country{"US", "US", "IE", "NL", "DE", "GB", "FR", "ES", "IT", "BE", "SE", "FI", "AT", "BR", "SG", "JP"}
		poolPerDC, prefix = b.scaled(340, 8), 22
	case name == "amazon":
		hq = "US"
		clouds = []geodata.CloudProvider{geodata.AWS}
		plan.countries = []geodata.Country{"US", "US", "IE", "DE", "GB", "FR", "IT", "JP", "SG"}
		poolPerDC, prefix = b.scaled(360, 8), 22
	case name == "facebook":
		hq = "US"
		plan.countries = []geodata.Country{"US", "US", "IE", "SE", "DE", "NL"}
		poolPerDC, prefix = b.scaled(108, 4), 24
	default:
		hq = hqPicker.pick(rng)
		plan.countries = append(plan.countries, hq)
		rank := orgRank(name)
		switch kind {
		case netsim.KindExchange:
			// RTB exchanges are latency-bound (100ms auctions) and
			// colocate in every major European market.
			b.addBigFive(&plan)
			nEU := 3 + rng.Intn(3)
			if rank < 8 {
				nEU += 2
			}
			b.addEUDCs(&plan, nEU)
			if hq != "US" {
				plan.countries = append(plan.countries, "US")
			}
			poolPerDC, prefix = 10, 26
		case netsim.KindAdTech:
			hasEU := 0.88
			nEU := 4 + rng.Intn(3)
			if svc.Role == webgraph.RoleDSP || svc.Role == webgraph.RoleDMP {
				hasEU = 0.92
				nEU = 5 + rng.Intn(3)
			}
			if rank < 20 {
				// The head of the market has broad EU footprints, but a
				// few popular US platforms (every 10th rank) still serve
				// everything from home — the paper's ~10% transatlantic
				// leakage. Deterministic so the headline confinement
				// numbers do not swing with the seed.
				nEU += 2
				if rank%10 == 3 {
					hasEU = 0
				} else {
					hasEU = 1
					// The market's head bidders and sync hubs cover the
					// major EU markets outright.
					b.addBigFive(&plan)
				}
			}
			if rng.Float64() < hasEU {
				b.addEUDCs(&plan, nEU)
			}
			if hq != "US" && rng.Float64() < 0.75 {
				plan.countries = append(plan.countries, "US")
			}
		case netsim.KindCDN, netsim.KindWidget:
			b.addEUDCs(&plan, 1+rng.Intn(2))
			if hq != "US" {
				plan.countries = append(plan.countries, "US")
			}
		}
		if rng.Float64() < 0.4 {
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				clouds = append(clouds, midClouds[rng.Intn(len(midClouds))])
			}
		}
	}

	org := b.s.World.AddOrg(name, kind, hq, clouds...)
	b.s.orgClouds[name] = clouds

	for _, c := range plan.countries {
		provider := b.pickProvider(rng, clouds, c)
		dep := b.s.World.Deploy(org, c, provider, prefix)
		pool := make([]netsim.IP, 0, poolPerDC)
		limit := uint32(poolPerDC)
		if limit > dep.Block.Size() {
			limit = dep.Block.Size()
		}
		for i := uint32(0); i < limit; i++ {
			pool = append(pool, dep.Block.Nth(i))
		}
		b.pools[name] = append(b.pools[name], dcPool{dep: dep, ips: pool})
	}
}

// orgRank extracts the numeric rank embedded in generated org names
// ("dsp0012" -> 12); majors and unknown formats rank 0.
func orgRank(name string) int {
	i := len(name)
	for i > 0 && name[i-1] >= '0' && name[i-1] <= '9' {
		i--
	}
	if i == len(name) || i == 0 {
		return 0
	}
	n := 0
	for _, d := range name[i:] {
		n = n*10 + int(d-'0')
	}
	return n
}

// addBigFive guarantees presence in the five biggest EU markets.
func (b *worldBuilder) addBigFive(plan *orgPlan) {
	for _, c := range []geodata.Country{"DE", "GB", "FR", "ES", "IT"} {
		dup := false
		for _, prev := range plan.countries {
			if prev == c {
				dup = true
				break
			}
		}
		if !dup {
			plan.countries = append(plan.countries, c)
		}
	}
}

func (b *worldBuilder) addEUDCs(plan *orgPlan, n int) {
	for i := 0; i < n; i++ {
		c := euDCPicker.pick(b.rng)
		dup := false
		for _, prev := range plan.countries {
			if prev == c {
				dup = true
				break
			}
		}
		if !dup {
			plan.countries = append(plan.countries, c)
		}
	}
}

// pickProvider assigns a deployment to one of the org's clouds when the
// cloud actually has a PoP in that country; own facility otherwise.
func (b *worldBuilder) pickProvider(rng *rand.Rand, clouds []geodata.CloudProvider, c geodata.Country) geodata.CloudProvider {
	if len(clouds) == 0 || rng.Float64() > 0.7 {
		return ""
	}
	var avail []geodata.CloudProvider
	for _, p := range clouds {
		if geodata.CloudHasPoP(p, c) {
			avail = append(avail, p)
		}
	}
	if len(avail) == 0 {
		return ""
	}
	return avail[rng.Intn(len(avail))]
}

// policyFor decides the org's DNS server-selection policy. Majors and
// exchanges are latency-sensitive (RTB bidding deadlines) and always
// geo-route; the mid tier mixes strategies, including the HQ-only small
// trackers that cause most cross-continent leakage.
func (b *worldBuilder) policyFor(svc *webgraph.Service) dns.Policy {
	if svc.Major || svc.Role == webgraph.RoleExchange {
		return dns.PolicyNearest
	}
	x := b.rng.Float64()
	switch {
	case x < 0.62:
		return dns.PolicyNearest
	case x < 0.82:
		return dns.PolicyContinent
	case x < 0.95:
		return dns.PolicyHQ
	default:
		return dns.PolicyRandom
	}
}

// zonePlan is the fully drawn configuration of one DNS zone, ready to
// be materialized into the DNS server and the pDNS feed.
type zonePlan struct {
	fqdn    string
	org     string
	policy  dns.Policy
	ttl     time.Duration
	servers []dns.ServerIP
}

// buildZones registers one DNS zone per FQDN, picks its server IPs from
// the org's pools, assigns rotation windows, and feeds every binding to
// the pDNS replication store.
//
// The work is split into two passes. The plan pass walks the services
// sequentially and consumes the shared build rng in exactly the
// original draw order — preserving byte-for-byte world reproducibility
// against earlier releases — while recording each zone's drawn
// configuration. The execute pass then materializes the plans
// (zone registration, binding sort, pDNS window ingestion) on a worker
// pool sized by Params.Workers. Registration targets are keyed by FQDN
// and every pDNS merge is commutative, so the final world state is
// identical for any worker count, including the sequential baseline;
// TestWorkerCountInvariance holds the whole pipeline to that.
func (b *worldBuilder) buildZones() error {
	var plans []zonePlan
	for i, svc := range b.s.Graph.Services {
		if err := b.checkpoint(i); err != nil {
			return err
		}
		b.prog.tick(1)
		policy := b.policyFor(svc)
		pools := b.pools[svc.Org]
		if len(pools) == 0 {
			continue
		}
		if policy == dns.PolicyHQ {
			// A tracker serving everything from home publishes only its
			// HQ servers; the other deployments never appear in DNS.
			hq := b.s.World.Org(svc.Org).HQ
			var hqPools []dcPool
			for _, p := range pools {
				if p.dep.Country == hq {
					hqPools = append(hqPools, p)
				}
			}
			if len(hqPools) > 0 {
				pools = hqPools
			}
		}
		ttl := 300 * time.Second
		if b.rng.Float64() < 0.2 {
			ttl = 7200 * time.Second // the facebook-style long TTL
		}
		perDC := 1 + b.rng.Intn(2)
		if svc.Major {
			// Major zones rotate through large pools; the pool (and the
			// per-zone slice of it) scales with the study size so the
			// observed-vs-pDNS-only balance stays realistic.
			perDC = b.scaled(24, 2) + b.rng.Intn(b.scaled(16, 2))
		}
		for _, fqdn := range svc.FQDNs {
			zonePools := pools
			if !svc.Major && svc.Role.IsTracking() && policy != dns.PolicyHQ && len(pools) > 2 {
				// Mid-tier orgs dedicate each hostname to a subset of
				// their datacenters (sync. endpoints rarely run
				// everywhere). This is what separates the paper's
				// FQDN-level from TLD-level redirection headroom
				// (Table 5: +24.6 vs +38.5 points).
				n := (len(pools)*3 + 4) / 5 // ~60%, rounded up
				if n < 2 {
					n = 2
				}
				perm := b.rng.Perm(len(pools))
				zonePools = make([]dcPool, 0, n)
				for _, pi := range perm[:n] {
					zonePools = append(zonePools, pools[pi])
				}
			}
			servers := b.zoneServers(zonePools, perDC)
			if len(servers) == 0 {
				continue
			}
			plans = append(plans, zonePlan{fqdn: fqdn, org: svc.Org, policy: policy, ttl: ttl, servers: servers})
			if svc.Role.IsTracking() {
				b.trackerIPCount += len(servers)
			}
		}
	}
	return b.executeZonePlans(plans)
}

// executeZonePlans materializes the drawn zones in parallel: workers
// take contiguous plan ranges and perform the rng-free work — the DNS
// registration (which sorts each zone's bindings) and the pDNS window
// ingestion.
func (b *worldBuilder) executeZonePlans(plans []zonePlan) error {
	apply := func(lo, hi int) {
		for _, zp := range plans[lo:hi] {
			b.s.DNS.Register(zp.fqdn, zp.org, zp.policy, zp.ttl, zp.servers)
			for _, sv := range zp.servers {
				b.s.PDNS.ObserveWindow(zp.fqdn, sv.IP, sv.From, sv.To)
			}
		}
	}
	workers := b.workers
	if workers > len(plans) {
		workers = len(plans)
	}
	if workers <= 1 {
		apply(0, len(plans))
		return b.ctx.Err()
	}
	var wg sync.WaitGroup
	per := (len(plans) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(plans) {
			hi = len(plans)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			apply(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return b.ctx.Err()
}

// zoneServers draws perDC addresses per datacenter pool and applies
// rotation: ~12% of bindings are replaced mid-study by a sibling address,
// giving passive DNS its validity-window structure.
func (b *worldBuilder) zoneServers(pools []dcPool, perDC int) []dns.ServerIP {
	rng := b.rng
	var out []dns.ServerIP
	for _, p := range pools {
		n := perDC
		if n > len(p.ips) {
			n = len(p.ips)
		}
		for i := 0; i < n; i++ {
			ip := p.ips[rng.Intn(len(p.ips))]
			if rng.Float64() < 0.12 {
				// Rotated binding: active first half, replacement second.
				replacement := p.ips[rng.Intn(len(p.ips))]
				out = append(out,
					dns.ServerIP{IP: ip, Country: p.dep.Country, Provider: p.dep.Provider, From: b.s.Start, To: b.rotationMid},
					dns.ServerIP{IP: replacement, Country: p.dep.Country, Provider: p.dep.Provider, From: b.rotationMid, To: b.s.ISPEnd},
				)
			} else {
				out = append(out, dns.ServerIP{IP: ip, Country: p.dep.Country, Provider: p.dep.Provider, From: b.s.Start, To: b.s.ISPEnd})
			}
		}
	}
	return dedupeServers(out)
}

// dedupeServers drops duplicate (IP, window) entries that random pool
// sampling can produce.
func dedupeServers(in []dns.ServerIP) []dns.ServerIP {
	type key struct {
		ip   netsim.IP
		from int64
	}
	seen := make(map[key]bool, len(in))
	out := in[:0]
	for _, sv := range in {
		k := key{sv.IP, sv.From.Unix()}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, sv)
	}
	return out
}

// buildSharedInfra creates the Fig 5 population: a set of ad-exchange
// IPs that serve many tracking domains (cookie-sync endpoints). Roughly
// half sit in the US and the rest in EU datacenters.
func (b *worldBuilder) buildSharedInfra() {
	rng := b.rng
	// Collect exchange pools split by region.
	var usPools, euPools []dcPool
	for _, svc := range b.s.Graph.ServicesByRole(webgraph.RoleExchange) {
		for _, p := range b.pools[svc.Org] {
			switch geodata.ContinentOf(p.dep.Country) {
			case geodata.NorthAmerica:
				usPools = append(usPools, p)
			case geodata.EU28:
				euPools = append(euPools, p)
			}
		}
	}
	if len(usPools) == 0 && len(euPools) == 0 {
		return
	}
	nShared := int(114 * b.s.Params.Scale)
	if nShared < 4 {
		nShared = 4
	}
	// Candidate client zones: DMP and ad-network FQDNs.
	var hostFQDNs []string
	for _, role := range []webgraph.Role{webgraph.RoleDMP, webgraph.RoleAdNetwork} {
		for _, svc := range b.s.Graph.ServicesByRole(role) {
			if svc.Major {
				continue
			}
			hostFQDNs = append(hostFQDNs, svc.FQDNs...)
		}
	}
	if len(hostFQDNs) == 0 {
		return
	}
	for i := 0; i < nShared; i++ {
		var p dcPool
		if i%2 == 0 && len(usPools) > 0 {
			p = usPools[rng.Intn(len(usPools))]
		} else if len(euPools) > 0 {
			p = euPools[rng.Intn(len(euPools))]
		} else {
			p = usPools[rng.Intn(len(usPools))]
		}
		ip := p.ips[rng.Intn(len(p.ips))]
		sv := dns.ServerIP{IP: ip, Country: p.dep.Country, Provider: p.dep.Provider, From: b.s.Start, To: b.s.ISPEnd}
		// Attach this IP to 10–30 tracking zones.
		n := 10 + rng.Intn(21)
		for j := 0; j < n; j++ {
			fqdn := hostFQDNs[rng.Intn(len(hostFQDNs))]
			existing := b.s.DNS.Servers(fqdn)
			if existing == nil {
				continue
			}
			policy, _ := b.s.DNS.Policy(fqdn)
			b.s.DNS.Register(fqdn, "shared-infra", policy, b.s.DNS.TTL(fqdn), dedupeServers(append(existing, sv)))
			b.s.PDNS.ObserveWindow(fqdn, sv.IP, sv.From, sv.To)
		}
	}
}

// buildStandbyIPs feeds pDNS with tracking-org addresses that the DNS
// never hands out — standby capacity visible only to passive DNS, which
// is what makes the inventory's pDNS completion step matter (§3.3's
// +2.78%).
func (b *worldBuilder) buildStandbyIPs() {
	rng := b.rng
	target := int(float64(b.trackerIPCount) * 0.028)
	var cands []*webgraph.Service
	for _, svc := range b.s.Graph.Services {
		if svc.Role.IsTracking() && !svc.Major {
			cands = append(cands, svc)
		}
	}
	for i := 0; i < target && len(cands) > 0; i++ {
		svc := cands[rng.Intn(len(cands))]
		pools := b.pools[svc.Org]
		if len(pools) == 0 {
			continue
		}
		p := &pools[rng.Intn(len(pools))]
		// Take an address from the tail of the block, beyond the pool,
		// so it cannot collide with a served address.
		idx := uint32(len(p.ips)) + uint32(p.next)
		if idx >= p.dep.Block.Size() {
			continue
		}
		p.next++
		ip := p.dep.Block.Nth(idx)
		b.s.PDNS.ObserveWindow(svc.FQDNs[0], ip, b.s.Start, b.s.ISPEnd)
	}
}
