package scenario

import (
	"reflect"
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/core"
)

// TestRowStoreEquivalence is the sink-equivalence property at the
// pipeline level: the same world built into the in-memory store, the
// compressed-resident store, and the spill-to-disk store with the
// codec on and off (small chunk sizes, forcing many chunks) must
// produce identical dataset statistics and identical core.Analyze flow
// maps under every geolocation service — neither the storage backend
// nor the chunk codec may be visible to any analysis.
func TestRowStoreEquivalence(t *testing.T) {
	p := Params{Seed: 1, Scale: 0.02, VisitsPerUser: 10}
	mem := Build(p)

	dir := t.TempDir()
	variants := []struct {
		name string
		sink func() (classify.RowSink, error)
	}{
		{"spill-compressed", func() (classify.RowSink, error) { return classify.NewSpillSink(dir, 300) }},
		{"spill-raw", func() (classify.RowSink, error) { return classify.NewSpillSinkUncompressed(dir, 300) }},
		{"mem-compressed", func() (classify.RowSink, error) { return classify.NewMemStoreCompressed(300), nil }},
	}
	for _, v := range variants {
		p.RowSink = v.sink
		other := Build(p)
		defer other.Dataset.Close()

		if other.Dataset.Store.NumChunks() < 2 {
			t.Fatalf("%s store has %d chunks; the test needs several to mean anything",
				v.name, other.Dataset.Store.NumChunks())
		}

		if hm, hs := datasetHash(mem), datasetHash(other); hm != hs {
			t.Fatalf("dataset hash differs across row stores: mem %x vs %s %x", hm, v.name, hs)
		}
		if sm, ss := classify.ComputeStats(mem.Dataset), classify.ComputeStats(other.Dataset); sm != ss {
			t.Fatalf("DatasetStats differ: mem %+v vs %s %+v", sm, v.name, ss)
		}

		for _, svc := range []struct {
			name string
			a, b *core.Analysis
		}{
			{"truth", core.Analyze(mem.Dataset, mem.Truth, nil), core.Analyze(other.Dataset, other.Truth, nil)},
			{"ipmap", core.Analyze(mem.Dataset, mem.IPMap, nil), core.Analyze(other.Dataset, other.IPMap, nil)},
			{"maxmind", core.Analyze(mem.Dataset, mem.MaxMind, nil), core.Analyze(other.Dataset, other.MaxMind, nil)},
		} {
			if svc.a.Total() != svc.b.Total() || svc.a.Unknown() != svc.b.Unknown() {
				t.Errorf("%s/%s totals differ: (%d,%d) vs (%d,%d)", v.name, svc.name,
					svc.a.Total(), svc.a.Unknown(), svc.b.Total(), svc.b.Unknown())
			}
			if ea, eb := svc.a.CountryEdges(nil), svc.b.CountryEdges(nil); !reflect.DeepEqual(ea, eb) {
				t.Errorf("%s/%s country flow map differs across row stores", v.name, svc.name)
			}
			if ea, eb := svc.a.ContinentEdges(), svc.b.ContinentEdges(); !reflect.DeepEqual(ea, eb) {
				t.Errorf("%s/%s continent flow map differs across row stores", v.name, svc.name)
			}
		}
	}
}
