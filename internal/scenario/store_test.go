package scenario

import (
	"reflect"
	"testing"

	"crossborder/internal/classify"
	"crossborder/internal/core"
)

// TestRowStoreEquivalence is the sink-equivalence property at the
// pipeline level: the same world built into the in-memory store and the
// spill-to-disk store (with a small chunk size, forcing many spilled
// chunks) must produce identical dataset statistics and identical
// core.Analyze flow maps under every geolocation service — the
// storage backend must be invisible to every analysis.
func TestRowStoreEquivalence(t *testing.T) {
	p := Params{Seed: 1, Scale: 0.02, VisitsPerUser: 10}
	mem := Build(p)

	dir := t.TempDir()
	p.RowSink = func() (classify.RowSink, error) { return classify.NewSpillSink(dir, 300) }
	spill := Build(p)
	defer spill.Dataset.Close()

	if spill.Dataset.Store.NumChunks() < 2 {
		t.Fatalf("spill store has %d chunks; the test needs several to mean anything",
			spill.Dataset.Store.NumChunks())
	}

	if hm, hs := datasetHash(mem), datasetHash(spill); hm != hs {
		t.Fatalf("dataset hash differs across row stores: mem %x vs spill %x", hm, hs)
	}
	if sm, ss := classify.ComputeStats(mem.Dataset), classify.ComputeStats(spill.Dataset); sm != ss {
		t.Fatalf("DatasetStats differ: mem %+v vs spill %+v", sm, ss)
	}

	for _, svc := range []struct {
		name string
		a, b *core.Analysis
	}{
		{"truth", core.Analyze(mem.Dataset, mem.Truth, nil), core.Analyze(spill.Dataset, spill.Truth, nil)},
		{"ipmap", core.Analyze(mem.Dataset, mem.IPMap, nil), core.Analyze(spill.Dataset, spill.IPMap, nil)},
		{"maxmind", core.Analyze(mem.Dataset, mem.MaxMind, nil), core.Analyze(spill.Dataset, spill.MaxMind, nil)},
	} {
		if svc.a.Total() != svc.b.Total() || svc.a.Unknown() != svc.b.Unknown() {
			t.Errorf("%s totals differ: (%d,%d) vs (%d,%d)", svc.name,
				svc.a.Total(), svc.a.Unknown(), svc.b.Total(), svc.b.Unknown())
		}
		if ea, eb := svc.a.CountryEdges(nil), svc.b.CountryEdges(nil); !reflect.DeepEqual(ea, eb) {
			t.Errorf("%s country flow map differs across row stores", svc.name)
		}
		if ea, eb := svc.a.ContinentEdges(), svc.b.ContinentEdges(); !reflect.DeepEqual(ea, eb) {
			t.Errorf("%s continent flow map differs across row stores", svc.name)
		}
	}
}
