package scenario

import (
	"math/rand"
	"time"

	"crossborder/internal/browser"
	"crossborder/internal/dns"
	"crossborder/internal/netsim"
	"crossborder/internal/pdns"
	"crossborder/internal/webgraph"
)

// Mutators is the bundle of deterministic world-mutation hooks a
// scenario pack installs on Params. Hooks run at fixed points of the
// build pipeline and draw randomness only from the pack-private rng
// stream handed to them, so the shared build rng and the per-user
// browsing streams consume exactly the draws of an unmodified build —
// which is what keeps the default (nil-Mutators) study byte-identical
// and lets untouched subsystems stay byte-stable under any pack.
type Mutators struct {
	// Name identifies the pack; together with the study seed it derives
	// the pack-private rng stream.
	Name string
	// World, when non-nil, mutates the built world after org
	// deployment, zone construction, and filter-list generation, but
	// before the world and resolver freeze: it may deploy additional
	// datacenters, re-register DNS zones (multi-region server sets, new
	// policies), and attach new FQDNs to existing services. Hostnames
	// added here are invisible to the already-generated filter lists —
	// exactly the blind spot CNAME-cloaking packs exploit.
	World func(m *WorldMutation)
	// Profile, when non-nil, assigns per-user behaviour profiles
	// (browser.Config.ProfileFor). It must be a pure function of (seed,
	// user): derive any randomness by hashing, never by drawing from a
	// stateful source, so the assignment is identical at any worker
	// count.
	Profile func(seed int64, u *browser.User) browser.Profile
}

// WorldMutation is the view of the half-built world a pack's World hook
// mutates. Everything reachable from it is still unfrozen.
type WorldMutation struct {
	// Rng is the pack-private stream: seeded from (study seed, pack
	// name), disjoint from the shared build rng by construction.
	Rng *rand.Rand

	Graph *webgraph.Graph
	World *netsim.World
	DNS   *dns.Server
	PDNS  *pdns.DB

	// Start/End bound the extension study; ISPEnd closes the pDNS
	// binding windows (matching Scenario's fields).
	Start, End, ISPEnd time.Time

	// Scale is the study's population scale, for sizing mutations.
	Scale float64
}

// packRand derives the pack-private rng for (seed, name): a
// splitmix64-style finalizer over the seed and the pack name's bytes,
// so distinct packs — and distinct seeds — get disjoint streams without
// perturbing the shared build rng's draw order.
func packRand(seed int64, name string) *rand.Rand {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		z = (z ^ uint64(name[i])) * 0xbf58476d1ce4e5b9
	}
	z = (z ^ (z >> 30)) * 0x94d049bb133111eb
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// applyWorldHook runs the pack's World hook (if any) over the unfrozen
// world. Called from buildWorldBase between filter-list generation and
// the World/DNS freezes.
func (p Params) applyWorldHook(s *Scenario) {
	if p.Mutators == nil || p.Mutators.World == nil {
		return
	}
	p.Mutators.World(&WorldMutation{
		Rng:    packRand(p.Seed, p.Mutators.Name),
		Graph:  s.Graph,
		World:  s.World,
		DNS:    s.DNS,
		PDNS:   s.PDNS,
		Start:  s.Start,
		End:    s.End,
		ISPEnd: s.ISPEnd,
		Scale:  p.Scale,
	})
}

// profileHook adapts the pack's Profile hook to browser.Config's
// ProfileFor shape (nil when the pack declares none).
func (p Params) profileHook() func(u *browser.User) browser.Profile {
	if p.Mutators == nil || p.Mutators.Profile == nil {
		return nil
	}
	seed, hook := p.Seed, p.Mutators.Profile
	return func(u *browser.User) browser.Profile { return hook(seed, u) }
}

// ProfileFor exposes the built world's per-user profile hook for
// external simulation drivers (e.g. the ingest replay path), so a
// pack's population profiles apply wherever the users browse. nil when
// no pack or no profile hook is installed.
func (s *Scenario) ProfileFor() func(u *browser.User) browser.Profile {
	return s.Params.profileHook()
}
