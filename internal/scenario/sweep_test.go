package scenario

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestSweepWorkerCountInvariance: the same cell grid summarizes
// identically at every worker count, in cell order.
func TestSweepWorkerCountInvariance(t *testing.T) {
	cells := []Cell{
		{Seed: 1, Label: "a", Params: Params{Seed: 1, Scale: 0.02, VisitsPerUser: 8}},
		{Seed: 2, Label: "b", Params: Params{Seed: 2, Scale: 0.02, VisitsPerUser: 8}},
		{Seed: 3, Label: "c", Params: Params{Seed: 3, Scale: 0.02, VisitsPerUser: 8}},
	}
	var ref []CellResult
	for _, workers := range []int{1, 3, 8} {
		got, err := Sweep(context.Background(), cells, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = got
			for i, r := range got {
				if r.Cell.Label != cells[i].Label {
					t.Fatalf("result %d out of cell order: %q", i, r.Cell.Label)
				}
				if r.Summary.Flows == 0 {
					t.Fatalf("cell %q summarized zero flows", r.Cell.Label)
				}
			}
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: sweep results differ from sequential baseline", workers)
		}
	}
}

// TestSweepCancellation: a cancelled context aborts the sweep with an
// error instead of returning partial results.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, []Cell{{Seed: 1, Params: Params{Seed: 1, Scale: 0.02, VisitsPerUser: 4}}}, 2)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
