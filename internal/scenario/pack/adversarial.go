package pack

import (
	"fmt"
	"time"

	"crossborder/internal/dns"
	"crossborder/internal/scenario"
)

// The adversarial pack stresses the classifier with hostnames the
// filter lists never saw. The hook runs after blocklist generation but
// before the DNS freeze, so:
//
//   - cloaked names: a share of mid-tier trackers gain a neutral
//     hostname on a fresh registrable domain (CNAME-cloaking-style
//     first-party delegation: none of the generated ||etld+1^ rules nor
//     the tracker keyword vocabulary match it) serving from the same
//     infrastructure;
//   - rotating names: another share gains a pair of generation-suffixed
//     hostnames whose DNS bindings split the study window, the
//     list-evasion-by-churn pattern pDNS validity windows expose.
//
// Publishers embed services by reference, so the new names immediately
// receive their share of calls; ground truth still marks them tracking
// (role-derived), while stage 1 misses them — recall must drop.

func adversarialMutators() *scenario.Mutators {
	return &scenario.Mutators{
		Name: "adversarial",
		World: func(m *scenario.WorldMutation) {
			rng := m.Rng
			mid := m.Start.Add(m.End.Sub(m.Start) / 2)
			serial := 0
			for _, svc := range m.Graph.Services {
				if !svc.Role.IsTracking() || svc.Major {
					continue
				}
				servers := m.DNS.Servers(svc.Primary())
				if len(servers) == 0 {
					continue
				}
				policy, _ := m.DNS.Policy(svc.Primary())
				ttl := m.DNS.TTL(svc.Primary())
				cloaks := 0
				if rng.Float64() < 0.8 {
					cloaks = 1 + rng.Intn(2)
				}
				rotate := rng.Float64() < 0.35
				for c := 0; c < cloaks; c++ {
					serial++
					name := fmt.Sprintf("assets.cdn%03d-media.net", serial)
					m.Graph.AddFQDN(svc, name)
					m.DNS.Register(name, svc.Org, policy, ttl, servers)
					for _, sv := range servers {
						m.PDNS.ObserveWindow(name, sv.IP, sv.From, sv.To)
					}
				}
				if rotate {
					serial++
					for gen := 0; gen < 2; gen++ {
						name := fmt.Sprintf("g%d.edge%03d-static.net", gen+1, serial)
						m.Graph.AddFQDN(svc, name)
						windowed := windowServers(servers, gen, m, mid)
						m.DNS.Register(name, svc.Org, policy, ttl, windowed)
						for _, sv := range windowed {
							m.PDNS.ObserveWindow(name, sv.IP, sv.From, sv.To)
						}
					}
				}
			}
		},
	}
}

// windowServers clamps a generation's bindings to its half of the
// study: generation 0 serves Start..mid, generation 1 mid..ISPEnd.
// Bindings that do not overlap the window are dropped; if nothing
// overlaps, the generation falls back to full-window copies so the
// name always resolves.
func windowServers(servers []dns.ServerIP, gen int, m *scenario.WorldMutation, mid time.Time) []dns.ServerIP {
	from, to := m.Start, mid
	if gen == 1 {
		from, to = mid, m.ISPEnd
	}
	out := make([]dns.ServerIP, 0, len(servers))
	for _, sv := range servers {
		if sv.To.Before(from) || sv.From.After(to) {
			continue
		}
		if sv.From.Before(from) {
			sv.From = from
		}
		if sv.To.After(to) {
			sv.To = to
		}
		sv.Weight = 0
		out = append(out, sv)
	}
	if len(out) == 0 {
		for _, sv := range servers {
			sv.From, sv.To, sv.Weight = from, to, 0
			out = append(out, sv)
		}
	}
	return out
}

func checkAdversarial(base, got scenario.Summary) error {
	if got.Stats.ThirdPartyFQDNs <= base.Stats.ThirdPartyFQDNs {
		return fmt.Errorf("adversarial: third-party FQDN count did not grow (%d -> %d)",
			base.Stats.ThirdPartyFQDNs, got.Stats.ThirdPartyFQDNs)
	}
	// The filter-list stage must catch a smaller share of traffic: the
	// cloaked domains are invisible to every generated rule, so catch
	// shifts from stage 1 to the semi-automatic stages. (Absolute recall
	// is NOT asserted — the semi stages recover most cloaked rows, which
	// is the paper's point, and trace resampling noise can swamp the
	// remainder at small scales.)
	abpShare := func(s scenario.Summary) float64 {
		return float64(s.Table2.ABP.TotalRequests) / float64(s.Stats.ThirdPartyReqs)
	}
	if abpShare(got) >= abpShare(base) {
		return fmt.Errorf("adversarial: filter-list catch share did not drop (%.4f -> %.4f)",
			abpShare(base), abpShare(got))
	}
	if got.TrackingFQDNs <= base.TrackingFQDNs {
		return fmt.Errorf("adversarial: tracker inventory FQDNs did not grow (%d -> %d)",
			base.TrackingFQDNs, got.TrackingFQDNs)
	}
	return nil
}

func init() {
	Register(&Pack{
		Name:        "adversarial",
		Description: "CNAME-cloaking-style fresh domains and rotating generation hostnames that evade the generated filter lists",
		Mutators:    adversarialMutators,
		Check:       checkAdversarial,
	})
}
