// Package pack is the scenario-pack registry: named, deterministic
// world mutations layered on the base study plus the invariants each
// mutation is expected to produce.
//
// A pack bundles scenario.Mutators (hooks that run at fixed points of
// scenario.BuildContext, drawing only from a pack-private rng stream so
// untouched subsystems stay byte-stable) with a post-study Check that
// compares the pack's Summary against the default build at the same
// seed. The default pack installs no mutators and reproduces the base
// study byte for byte; the shipped families stress routing
// (multi-region GSLB policies), classification (CNAME-cloaking-style
// first-party names and rotating FQDNs), and population structure
// (device, VPN, and blocklist-adoption mixes).
package pack

import (
	"fmt"
	"reflect"
	"sort"

	"crossborder/internal/scenario"
)

// Pack is one named scenario variation.
type Pack struct {
	// Name is the registry key ("default", "routing", ...).
	Name string
	// Description is the one-line summary shown by -list-packs.
	Description string
	// Mutators builds the scenario hooks; nil for the default pack.
	// Called per build so packs never share mutable state across cells.
	Mutators func() *scenario.Mutators
	// Check asserts the pack's expected invariants given the default
	// pack's summary (base) and this pack's summary (got) at the same
	// seed and scale. nil means no invariant beyond building cleanly.
	Check func(base, got scenario.Summary) error
}

var registry = map[string]*Pack{}

// Register adds a pack; duplicate names are programming errors.
func Register(p *Pack) {
	if p.Name == "" {
		panic("pack: Register with empty name")
	}
	if _, dup := registry[p.Name]; dup {
		panic("pack: duplicate pack " + p.Name)
	}
	registry[p.Name] = p
}

// Get returns the named pack, or an error listing the valid names.
func Get(name string) (*Pack, error) {
	if p, ok := registry[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("pack: unknown pack %q (have: %v)", name, Names())
}

// Names returns the registered pack names in sorted order, "default"
// first.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i] == "default") != (out[j] == "default") {
			return out[i] == "default"
		}
		return out[i] < out[j]
	})
	return out
}

// All returns the packs in Names() order.
func All() []*Pack {
	names := Names()
	out := make([]*Pack, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Params returns base with the named pack's mutators installed (the
// default pack returns base unchanged apart from clearing Mutators).
func Params(base scenario.Params, name string) (scenario.Params, error) {
	p, err := Get(name)
	if err != nil {
		return base, err
	}
	if p.Mutators == nil {
		base.Mutators = nil
		return base, nil
	}
	base.Mutators = p.Mutators()
	return base, nil
}

// Cells expands a seed × pack grid into sweep cells, ordered seed-major
// then pack order as given.
func Cells(seeds []int64, names []string, base scenario.Params) ([]scenario.Cell, error) {
	cells := make([]scenario.Cell, 0, len(seeds)*len(names))
	for _, seed := range seeds {
		for _, name := range names {
			params, err := Params(base, name)
			if err != nil {
				return nil, err
			}
			params.Seed = seed
			cells = append(cells, scenario.Cell{Seed: seed, Label: name, Params: params})
		}
	}
	return cells, nil
}

func init() {
	Register(&Pack{
		Name:        "default",
		Description: "the unmodified base study (byte-identical to a pack-less build)",
		Check: func(base, got scenario.Summary) error {
			base.Pack, got.Pack = "", ""
			if !reflect.DeepEqual(base, got) {
				return fmt.Errorf("default pack diverged from the base build: %+v vs %+v", got, base)
			}
			return nil
		},
	})
}
