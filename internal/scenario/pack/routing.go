package pack

import (
	"fmt"

	"crossborder/internal/dns"
	"crossborder/internal/geodata"
	"crossborder/internal/scenario"
)

// The routing pack gives every tracker FQDN a multi-region deployment
// resolved by GSLB-style policies (weighted draws, modeled-latency
// steering, weighted failover tiers) with EU28 regions weighted up —
// the "what if trackers load-balanced into Europe" counterfactual the
// paper's §5 confinement tables invite. Orgs with no EU presence get
// one pack-deployed EU datacenter, so every tracking zone has at least
// one in-region binding.

// euRegions is the candidate pool for pack-added EU datacenters.
var euRegions = []geodata.Country{"DE", "IE", "NL", "FR", "SE"}

const euWeight = 8 // EU28 bindings outweigh others 8:1 under PolicyWeighted/Failover

func routingMutators() *scenario.Mutators {
	return &scenario.Mutators{
		Name: "routing",
		World: func(m *scenario.WorldMutation) {
			rng := m.Rng
			policies := []dns.Policy{dns.PolicyWeighted, dns.PolicyLatency, dns.PolicyFailover}
			// One pack-deployed EU pool per org, created lazily.
			euPool := map[string][]dns.ServerIP{}
			for _, svc := range m.Graph.Services {
				if !svc.Role.IsTracking() {
					continue
				}
				for _, fqdn := range svc.FQDNs {
					servers := m.DNS.Servers(fqdn)
					if len(servers) == 0 {
						continue
					}
					hasEU := false
					for i := range servers {
						if geodata.IsEU28(servers[i].Country) {
							servers[i].Weight = euWeight
							hasEU = true
						} else {
							servers[i].Weight = 1
						}
					}
					if !hasEU {
						added := euPool[svc.Org]
						if added == nil {
							added = deployEU(m, svc.Org)
							euPool[svc.Org] = added
						}
						servers = append(servers, added...)
						for _, sv := range added {
							m.PDNS.ObserveWindow(fqdn, sv.IP, sv.From, sv.To)
						}
					}
					policy := policies[rng.Intn(len(policies))]
					m.DNS.Register(fqdn, svc.Org, policy, m.DNS.TTL(fqdn), servers)
				}
			}
		},
	}
}

// deployEU creates one EU datacenter for the org and returns two
// full-window server bindings from its block.
func deployEU(m *scenario.WorldMutation, org string) []dns.ServerIP {
	country := euRegions[m.Rng.Intn(len(euRegions))]
	dep := m.World.Deploy(m.World.Org(org), country, "", 26)
	size := dep.Block.Size()
	a := dep.Block.Nth(uint32(m.Rng.Intn(int(size))))
	b := dep.Block.Nth(uint32(m.Rng.Intn(int(size))))
	out := []dns.ServerIP{{IP: a, Country: country, Weight: euWeight, From: m.Start, To: m.ISPEnd}}
	if b != a {
		out = append(out, dns.ServerIP{IP: b, Country: country, Weight: euWeight, From: m.Start, To: m.ISPEnd})
	}
	return out
}

func checkRouting(base, got scenario.Summary) error {
	if got.Flows == 0 {
		return fmt.Errorf("routing: no tracking flows")
	}
	if got.InEU28 <= base.InEU28 {
		return fmt.Errorf("routing: EU28 confinement did not rise (%.4f -> %.4f)", base.InEU28, got.InEU28)
	}
	return nil
}

func init() {
	Register(&Pack{
		Name:        "routing",
		Description: "multi-region tracker deployments under weighted/latency/failover GSLB policies, EU-biased",
		Mutators:    routingMutators,
		Check:       checkRouting,
	})
}
