package pack

import (
	"fmt"

	"crossborder/internal/browser"
	"crossborder/internal/geodata"
	"crossborder/internal/scenario"
)

// The population pack varies who is behind the extension: a mobile
// cohort browsing fewer pages per day, a VPN/roaming cohort whose
// resolver sees an exit country different from home, and a
// blocklist-adoption cohort whose blocker strips most direct tracker
// tags. Profiles are a pure hash of (seed, user ID) — no stateful rng —
// so the assignment is identical at any worker count and the untouched
// cohort replays the default pack's exact traces.

// vpnExits is the pool of modeled VPN exit countries.
var vpnExits = []geodata.Country{"US", "GB", "NL", "SE", "CH"}

const (
	mobileShare  = 35 // % of users on mobile (VisitFactor 0.6)
	vpnShare     = 10 // % of users behind a VPN exit
	blockerShare = 25 // % of users running a blocker (BlockShare 0.85)
)

// profileHash is a splitmix64-style finalizer over (seed, user, lane),
// giving each decision an independent uniform draw.
func profileHash(seed int64, user int, lane uint64) uint64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(user)*0xbf58476d1ce4e5b9 + lane
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func populationProfile(seed int64, u *browser.User) browser.Profile {
	var prof browser.Profile
	if profileHash(seed, u.ID, 1)%100 < mobileShare {
		prof.VisitFactor = 0.6
	}
	if h := profileHash(seed, u.ID, 2); h%100 < vpnShare {
		prof.ResolveCountry = vpnExits[(h>>8)%uint64(len(vpnExits))]
	}
	if profileHash(seed, u.ID, 3)%100 < blockerShare {
		prof.BlockShare = 0.85
	}
	return prof
}

func populationMutators() *scenario.Mutators {
	return &scenario.Mutators{
		Name:    "population",
		Profile: populationProfile,
	}
}

func checkPopulation(base, got scenario.Summary) error {
	if got.Stats.Users != base.Stats.Users {
		return fmt.Errorf("population: user count changed (%d -> %d)", base.Stats.Users, got.Stats.Users)
	}
	if got.Stats.ThirdPartyReqs >= base.Stats.ThirdPartyReqs {
		return fmt.Errorf("population: third-party request volume did not drop (%d -> %d)",
			base.Stats.ThirdPartyReqs, got.Stats.ThirdPartyReqs)
	}
	if got.Flows >= base.Flows {
		return fmt.Errorf("population: tracking flow count did not drop (%d -> %d)", base.Flows, got.Flows)
	}
	return nil
}

func init() {
	Register(&Pack{
		Name:        "population",
		Description: "mobile/VPN/blocker user mixes: fewer visits, shifted resolver countries, stripped tracker tags",
		Mutators:    populationMutators,
		Check:       checkPopulation,
	})
}
