package pack

import (
	"context"
	"reflect"
	"testing"

	"crossborder/internal/scenario"
)

func smallParams(seed int64) scenario.Params {
	return scenario.Params{Seed: seed, Scale: 0.02, VisitsPerUser: 10}
}

func TestRegistryNamesAndGet(t *testing.T) {
	names := Names()
	if len(names) < 4 || names[0] != "default" {
		t.Fatalf("Names() = %v, want default first and >=4 packs", names)
	}
	want := map[string]bool{"default": true, "routing": true, "adversarial": true, "population": true}
	for n := range want {
		if _, err := Get(n); err != nil {
			t.Errorf("Get(%q): %v", n, err)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) succeeded, want error listing valid names")
	}
	if got := All(); len(got) != len(names) {
		t.Errorf("All() returned %d packs, Names() %d", len(got), len(names))
	}
}

func TestCellsGridShape(t *testing.T) {
	cells, err := Cells([]int64{3, 5}, []string{"default", "population"}, smallParams(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	if cells[0].Label != "default" || cells[0].Seed != 3 || cells[3].Label != "population" || cells[3].Seed != 5 {
		t.Errorf("cell order wrong: %+v", cells)
	}
	if cells[1].Params.Mutators == nil || cells[1].Params.Mutators.Name != "population" {
		t.Errorf("population cell missing mutators")
	}
	if cells[0].Params.Mutators != nil {
		t.Errorf("default cell has mutators installed")
	}
}

// TestDefaultPackMatchesBareBuild: installing the default pack is a
// no-op — the summary equals a pack-less build's summary exactly.
func TestDefaultPackMatchesBareBuild(t *testing.T) {
	bare := scenario.Summarize(scenario.Build(smallParams(7)))
	params, err := Params(smallParams(7), "default")
	if err != nil {
		t.Fatal(err)
	}
	packed := scenario.Summarize(scenario.Build(params))
	if !reflect.DeepEqual(bare, packed) {
		t.Fatalf("default pack diverged:\nbare:   %+v\npacked: %+v", bare, packed)
	}
}

// TestPackInvariantsAcrossSeeds builds every shipped pack at three
// seeds and asserts each pack's expected invariants against the
// default build at the same seed.
func TestPackInvariantsAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed pack builds are not -short material")
	}
	seeds := []int64{1, 2, 3}
	cells, err := Cells(seeds, Names(), smallParams(0))
	if err != nil {
		t.Fatal(err)
	}
	results, err := scenario.Sweep(context.Background(), cells, 4)
	if err != nil {
		t.Fatal(err)
	}
	base := map[int64]scenario.Summary{}
	for _, r := range results {
		if r.Cell.Label == "default" {
			base[r.Cell.Seed] = r.Summary
		}
	}
	for _, r := range results {
		p, err := Get(r.Cell.Label)
		if err != nil {
			t.Fatal(err)
		}
		if p.Check == nil {
			continue
		}
		if err := p.Check(base[r.Cell.Seed], r.Summary); err != nil {
			t.Errorf("seed %d: %v", r.Cell.Seed, err)
		}
	}
}
