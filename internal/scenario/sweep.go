package scenario

import (
	"context"
	"sort"
	"sync"

	"crossborder/internal/classify"
	"crossborder/internal/core"
	"crossborder/internal/geodata"
)

// Summary condenses one built study into the cross-study comparison
// vector the sweep driver diffs across packs: the paper's Table 1/2
// aggregates, classifier accuracy, truth-joined flow counts and
// confinement, and the tracker-inventory sizes. Everything here is a
// pure function of the Scenario, so a sweep cell's Summary is as
// deterministic as its build.
type Summary struct {
	Pack string `json:"pack"`
	Seed int64  `json:"seed"`

	Stats    classify.DatasetStats `json:"table1"`
	Table2   classify.Table2       `json:"table2"`
	Accuracy classify.Accuracy     `json:"accuracy"`

	// Flows/UnknownFlows come from the ground-truth geolocation join
	// over tracking rows (core.Analyze with a nil filter).
	Flows        int64 `json:"flows"`
	UnknownFlows int64 `json:"unknown_flows"`

	// Confinement of EU28-origin tracking flows (truth join).
	InCountry float64 `json:"in_country"`
	InEU28    float64 `json:"in_eu28"`
	InEurope  float64 `json:"in_europe"`

	TrackerIPs    int `json:"tracker_ips"`
	ObservedIPs   int `json:"observed_ips"`
	TrackingFQDNs int `json:"tracking_fqdns"`

	// CountryFlows counts truth-joined tracking flows per origin
	// country, computed with the zone-map-pruned country-equality
	// pushdown (core.AnalyzeWhere) — one pruned scan per country.
	CountryFlows map[geodata.Country]int64 `json:"country_flows"`
}

// Summarize computes the comparison vector for a built scenario.
func Summarize(s *Scenario) Summary {
	pack := ""
	if s.Params.Mutators != nil {
		pack = s.Params.Mutators.Name
	}
	sum := Summary{
		Pack:          pack,
		Seed:          s.Params.Seed,
		Stats:         classify.ComputeStats(s.Dataset),
		Table2:        classify.ComputeTable2(s.Dataset),
		Accuracy:      classify.Score(s.Dataset),
		TrackerIPs:    s.Inventory.NumIPs(),
		ObservedIPs:   s.Inventory.NumObserved(),
		TrackingFQDNs: s.Inventory.NumTrackingFQDNs(),
		CountryFlows:  make(map[geodata.Country]int64),
	}
	a := core.Analyze(s.Dataset, s.Truth, nil)
	sum.Flows = a.Total()
	sum.UnknownFlows = a.Unknown()
	sum.InCountry, sum.InEU28, sum.InEurope, _ = a.RegionConfinement(core.EU28Origin)
	for _, c := range s.Dataset.Countries {
		per := core.AnalyzeWhere(s.Dataset, s.Truth, core.CountryEquals(c))
		if n := per.Total(); n > 0 {
			sum.CountryFlows[c] = n
		}
	}
	return sum
}

// Countries returns the origin countries with at least one flow, in
// lexical order, so renderers iterate the map deterministically.
func (s Summary) Countries() []geodata.Country {
	out := make([]geodata.Country, 0, len(s.CountryFlows))
	for c := range s.CountryFlows {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cell is one point of a seed × pack sweep grid: a label (normally the
// pack name) and the full build parameters.
type Cell struct {
	Seed   int64
	Label  string
	Params Params
}

// CellResult pairs a cell with its computed summary.
type CellResult struct {
	Cell    Cell
	Summary Summary
}

// Sweep builds every cell and summarizes it, running up to workers
// cells concurrently. Results come back in cell order regardless of
// worker count or completion order, and each cell's build is itself
// worker-count-invariant, so the whole grid is deterministic at any
// concurrency. The first build error cancels the remaining cells.
func Sweep(ctx context.Context, cells []Cell, workers int) ([]CellResult, error) {
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]CellResult, len(cells))
	errs := make([]error, len(cells))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range cells {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			wg.Wait()
			return nil, ctx.Err()
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			cell := cells[i]
			s, err := BuildContext(ctx, cell.Params)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = CellResult{Cell: cell, Summary: Summarize(s)}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
