// Package scenario assembles the calibrated synthetic world every
// experiment runs against: the web graph, the organizations' datacenter
// footprints and IP space, DNS zones with geo-aware selection policies,
// the passive-DNS feed, the filter lists, the browsing simulation with
// its classified dataset, the tracker IP inventory, the geolocation
// services, and the sensitive-site identification.
//
// All calibration knobs live in Params; the defaults were tuned so the
// shape of every table and figure in the paper holds (EXPERIMENTS.md
// indexes the artifacts; the experiments package's tests pin the
// paper-vs-measured bands).
package scenario

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"crossborder/internal/blocklist"
	"crossborder/internal/browser"
	"crossborder/internal/classify"
	"crossborder/internal/dns"
	"crossborder/internal/geo"
	"crossborder/internal/geodata"
	"crossborder/internal/netflow"
	"crossborder/internal/netsim"
	"crossborder/internal/pdns"
	"crossborder/internal/sensitive"
	"crossborder/internal/trackerdb"
	"crossborder/internal/webgraph"
)

// Params controls world construction.
type Params struct {
	// Seed drives every random choice; same seed, same world.
	Seed int64
	// Scale multiplies population sizes (1.0 = the paper's scale:
	// 350 users, 5,693 sites, 7.2M third-party requests). Tests use
	// small fractions.
	Scale float64
	// VisitsPerUser overrides the mean page visits per user (0 = scaled
	// default of 219).
	VisitsPerUser int
	// SkipSensitive disables the §6 identification pass (cheap to keep
	// on; exposed for ablation).
	SkipSensitive bool
	// Workers sets the simulation/classification worker-pool size
	// (0 = runtime.GOMAXPROCS). Any value produces the same Dataset
	// byte for byte: users browse on private RNG streams derived from
	// (Seed, user ID), and the per-worker collector shards merge in user
	// order. 1 forces the sequential baseline.
	Workers int
	// Progress, when non-nil, receives per-phase progress events from
	// BuildContext (phase name, items done/total, elapsed). Events for a
	// phase are monotone in Done; simulation events arrive from worker
	// goroutines but delivery is serialized, so the callback itself need
	// not be goroutine-safe. Progress never influences the built world:
	// the same Params produce the same Scenario with or without it.
	Progress func(PhaseEvent)
	// RowSink, when non-nil, supplies the row store backend the
	// classification phase streams the merged dataset into (e.g. a
	// classify.SpillSink for Scale >> 1 runs). nil selects the default
	// in-memory columnar store. The merged row stream is identical for
	// every backend; only the storage layout differs.
	RowSink func() (classify.RowSink, error)
	// Mutators, when non-nil, installs a scenario pack's deterministic
	// world mutations and per-user profiles (see Mutators). nil — the
	// default pack — builds the unmodified study, byte for byte.
	Mutators *Mutators
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Scale == 0 {
		p.Scale = 1
	}
	return p
}

// Scenario is the assembled world.
type Scenario struct {
	Params Params

	Graph *webgraph.Graph
	World *netsim.World
	DNS   *dns.Server
	PDNS  *pdns.DB

	Users   []*browser.User
	Dataset *classify.Dataset

	EasyList    *blocklist.List
	EasyPrivacy *blocklist.List

	Inventory *trackerdb.Inventory

	Truth   geo.Truth
	MaxMind *geo.CommercialDB
	IPAPI   *geo.DerivedDB
	IPMap   *geo.IPMap

	Identification *sensitive.Identification

	// Start/End bound the extension study; DNS bindings stay valid
	// through ISPEnd so the §7 ISP snapshots (through June 2018) can be
	// scanned against the inventory.
	Start, End, ISPEnd time.Time

	// orgClouds caches per-org cloud providers for the locality engine.
	orgClouds map[string][]geodata.CloudProvider
}

// Study period constants.
var (
	studyStart = time.Date(2017, 9, 1, 0, 0, 0, 0, time.UTC)
	studyEnd   = time.Date(2018, 1, 15, 0, 0, 0, 0, time.UTC)
	ispEnd     = time.Date(2018, 8, 1, 0, 0, 0, 0, time.UTC)
)

// Build assembles the world. At Scale=1 this simulates the full 7.2M
// request study and takes tens of seconds; tests should pass 0.02–0.1.
//
// Build is the non-cancellable entry point; it is BuildContext over
// context.Background().
func Build(p Params) *Scenario {
	s, err := BuildContext(context.Background(), p)
	if err != nil {
		// Unreachable: the background context never cancels and
		// cancellation is the only error source.
		panic("scenario: " + err.Error())
	}
	return s
}

// BuildContext assembles the world as a staged pipeline — world/zones,
// simulation, classification, inventory, geolocation, sensitive — with
// cancellation checkpoints between and inside phases and per-phase
// progress events through Params.Progress. On cancellation it returns
// (nil, ctx.Err()) promptly and leaves no goroutines behind: the
// simulation workers drain before the call returns.
func BuildContext(ctx context.Context, p Params) (*Scenario, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	prog := newProgress(p.Progress)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	s, err := buildWorldBase(ctx, p, rng, prog, workers)
	if err != nil {
		return nil, err
	}

	// The browsing study: users fan out over a worker pool, each on a
	// private RNG stream, each worker capturing into its own collector
	// shard; the shards merge into one Dataset in user order. The result
	// is invariant to Workers (see Params.Workers).
	s.Users = browser.MakeUsers(scalePopulation(browser.DefaultPopulation(), p.Scale))
	visits := p.VisitsPerUser
	if visits == 0 {
		visits = 219
	}
	prog.startPhase(PhaseSimulate, len(s.Users))
	collector := classify.NewShardedCollector(s.Graph, s.EasyList, s.EasyPrivacy, studyStart, workers)
	sim := browser.NewSimulator(s.Graph, s.DNS, browser.Config{
		Start: studyStart, End: studyEnd, VisitsPerUser: visits,
		ProfileFor: p.profileHook(),
	})
	err = sim.RunWorkersContext(ctx, p.Seed, s.Users, workers, func(w int) []browser.Sink {
		return []browser.Sink{collector.Shard(w)}
	}, func(int) { prog.tick(1) })
	if err != nil {
		return nil, err
	}
	prog.finishPhase()

	prog.startPhase(PhaseClassify, 1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// The merge streams rows into the configured sink; the default is
	// the in-memory columnar store, Scale >> 1 runs swap in the
	// spill-to-disk store via Params.RowSink.
	var sink classify.RowSink
	if p.RowSink != nil {
		var err error
		if sink, err = p.RowSink(); err != nil {
			return nil, err
		}
	} else {
		sink = classify.NewMemStore()
	}
	s.Dataset, err = collector.FinalizeInto(s.Users, sink)
	if err != nil {
		return nil, err
	}
	prog.finishPhase()

	// From here on the dataset owns the (possibly disk-backed) row
	// store; error returns must release it or a cancelled build would
	// leak the spill file for the process lifetime.
	fail := func(err error) (*Scenario, error) {
		s.Dataset.Close()
		return nil, err
	}

	// Tracker IP inventory.
	prog.startPhase(PhaseInventory, 1)
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	s.Inventory = trackerdb.Compile(s.Dataset, s.PDNS)
	prog.finishPhase()

	// Geolocation services: one tick per service.
	prog.startPhase(PhaseGeolocate, 4)
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	s.buildGeoServices(prog)

	if !p.SkipSensitive {
		prog.startPhase(PhaseSensitive, 1)
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		s.Identification = sensitive.Identify(rng, s.Graph, sensitive.ExaminerConfig{})
		prog.finishPhase()
	}
	return s, nil
}

// buildWorldBase runs the shared front of the pipeline: web graph,
// organization footprints, DNS zones, pDNS feed, and the generated
// filter lists. It consumes the rng draws of the world phase and leaves
// the resolver frozen.
func buildWorldBase(ctx context.Context, p Params, rng *rand.Rand, prog *progress, workers int) (*Scenario, error) {
	s := &Scenario{
		Params:    p,
		Start:     studyStart,
		End:       studyEnd,
		ISPEnd:    ispEnd,
		PDNS:      pdns.NewDB(),
		orgClouds: make(map[string][]geodata.CloudProvider),
	}

	s.Graph = webgraph.Build(rng, webgraph.Config{}.Scale(p.Scale))
	// World-phase progress counts each service twice: once through the
	// org-footprint pass, once through the zone-construction pass.
	prog.startPhase(PhaseWorld, 2*len(s.Graph.Services))
	s.World = netsim.NewWorld()
	s.DNS = dns.NewServer(nil)
	// Imperfect geo load balancing: a slice of nearest-policy answers
	// land on other same-continent PoPs. This spreads observations over
	// the orgs' full footprints (keeping the pDNS-only extras small,
	// §3.3) and contributes the intra-European border crossings of Fig 8.
	s.DNS.Spill = 0.08
	// Geo-DNS country mappings churn over ~45-day epochs: whether a
	// tracker's in-country servers actually receive that country's users
	// depends on capacity planning, and the probability scales with the
	// country's infrastructure density (Frankfurt is always on; Madrid
	// often routes to Paris). This single mechanism yields both the
	// paper's Table 5 headroom (alternatives observed in other epochs)
	// and Fig 12's high German national confinement.
	s.DNS.GeoMapping = func(fqdn string, user geodata.Country, t time.Time) bool {
		epoch := int64(t.Sub(studyStart) / (45 * 24 * time.Hour))
		q := 0.30 + float64(geodata.InfraDensity(user))/140
		if q > 0.93 {
			q = 0.93
		}
		return hashCoin(fqdn, string(user), epoch) < q
	}

	b := &worldBuilder{s: s, rng: rng, ctx: ctx, prog: prog, workers: workers}
	if err := b.build(); err != nil {
		return nil, err
	}

	// Filter lists over the finished graph. Generating them before the
	// pack hook runs is deliberate: hostnames a pack adds afterwards
	// (CNAME cloaking, first-party delegation) are exactly the ones real
	// filter lists lag behind on.
	elText, epText := blocklist.Generate(rng, s.Graph, blocklist.Coverage{})
	var errs []error
	s.EasyList, errs = blocklist.Parse("easylist", elText)
	if len(errs) != 0 {
		panic("scenario: generated easylist failed to parse")
	}
	s.EasyPrivacy, errs = blocklist.Parse("easyprivacy", epText)
	if len(errs) != 0 {
		panic("scenario: generated easyprivacy failed to parse")
	}

	// Scenario-pack world mutations: the one point where the world is
	// fully built but still unfrozen. The hook draws only from its
	// pack-private rng, so the shared rng's draw sequence above is
	// byte-identical with or without a pack.
	p.applyWorldHook(s)

	s.World.Freeze()
	// Zone construction is done; freezing makes the resolver provably
	// read-only for concurrent browsing or upload-classification workers.
	s.DNS.Freeze()
	prog.finishPhase()
	return s, nil
}

// buildGeoServices constructs the four geolocation services. The caller
// starts the 4-tick geolocate phase.
func (s *Scenario) buildGeoServices(prog *progress) {
	s.Truth = geo.Truth{World: s.World}
	prog.tick(1)
	s.MaxMind = geo.NewMaxMind(s.World)
	prog.tick(1)
	s.IPAPI = geo.NewIPAPI(s.MaxMind)
	prog.tick(1)
	s.IPMap = geo.NewIPMap(s.World, geo.DefaultMesh())
	prog.tick(1)
}

// BuildWorld is BuildWorldContext over context.Background().
func BuildWorld(p Params) *Scenario {
	s, err := BuildWorldContext(context.Background(), p)
	if err != nil {
		// Unreachable: the background context never cancels and
		// cancellation is the only error source.
		panic("scenario: " + err.Error())
	}
	return s
}

// BuildWorldContext assembles everything except the browsing study: the
// web graph, DNS zones and pDNS feed, filter lists, user population,
// geolocation services, and the sensitive-site identification — but no
// simulated events, so Dataset and Inventory are nil. The returned
// world consumes exactly the rng draws the full build would (the
// simulation runs on private per-user streams, and the classify and
// inventory phases draw nothing), so a live collector built on this
// world classifies uploaded events against byte-for-byte the same
// graph, zones, lists, and identification as the batch study with the
// same Params.
func BuildWorldContext(ctx context.Context, p Params) (*Scenario, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p = p.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	prog := newProgress(p.Progress)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s, err := buildWorldBase(ctx, p, rng, prog, workers)
	if err != nil {
		return nil, err
	}
	s.Users = browser.MakeUsers(scalePopulation(browser.DefaultPopulation(), p.Scale))
	prog.startPhase(PhaseGeolocate, 4)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.buildGeoServices(prog)
	if !p.SkipSensitive {
		prog.startPhase(PhaseSensitive, 1)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.Identification = sensitive.Identify(rng, s.Graph, sensitive.ExaminerConfig{})
		prog.finishPhase()
	}
	return s, nil
}

// hashCoin returns a deterministic pseudo-uniform float64 in [0,1) from
// the mapping key, so geo-DNS activation is stable within an epoch.
func hashCoin(fqdn, country string, epoch int64) float64 {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(fqdn)
	mix(country)
	h ^= uint64(epoch) * 0x9e3779b97f4a7c15
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// scalePopulation shrinks the 350-user population proportionally,
// keeping at least one user in every country that had any.
func scalePopulation(pop []browser.CountryCount, scale float64) []browser.CountryCount {
	if scale >= 1 {
		return pop
	}
	out := make([]browser.CountryCount, 0, len(pop))
	for _, cc := range pop {
		n := int(math.Round(float64(cc.Users) * scale))
		if n < 1 {
			n = 1
		}
		out = append(out, browser.CountryCount{Country: cc.Country, Users: n})
	}
	return out
}

// OrgClouds implements locality.OrgClouds over the world: it reports the
// cloud providers hosting the organization that owns an FQDN.
func (s *Scenario) OrgClouds(fqdn string) []geodata.CloudProvider {
	svc, ok := s.Graph.ServiceByFQDN(fqdn)
	if !ok {
		return nil
	}
	return s.orgClouds[svc.Org]
}

// FQDNWeights derives tracking-FQDN popularity from the extension
// dataset's request counts, the profile the ISP synthesizer replays.
// The slice is sorted by FQDN name: the synthesizer samples weights
// positionally from a seeded rng, so the order must be canonical — a
// map-order (or even interner-id, i.e. row-arrival-order) slice would
// make the §7 ISP tables drift between a batch build and a
// cluster-merged dataset holding the very same rows.
func (s *Scenario) FQDNWeights() []netflow.FQDNWeight {
	counts := make([]int64, s.Dataset.FQDNs.Len())
	s.Dataset.Scan(func(_ int, c *classify.Chunk) {
		for i, cls := range c.Class {
			if cls.IsTracking() {
				counts[c.FQDN[i]]++
			}
		}
	})
	var out []netflow.FQDNWeight
	for id, n := range counts {
		if n > 0 {
			out = append(out, netflow.FQDNWeight{FQDN: s.Dataset.FQDNs.Str(uint32(id)), Weight: float64(n)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FQDN < out[j].FQDN })
	return out
}

// TrackingShareOfRows returns the fraction of third-party requests
// classified as tracking (Fig 2's takeaway).
func (s *Scenario) TrackingShareOfRows() float64 {
	var tracking int64
	if s.Dataset == nil || s.Dataset.Store == nil {
		return 0
	}
	st := s.Dataset.Store
	// Class-only scan: the resident class column answers this without
	// touching the (possibly spilled) wide columns.
	for ci := 0; ci < st.NumChunks(); ci++ {
		for _, cls := range st.Classes(ci) {
			if cls.IsTracking() {
				tracking++
			}
		}
	}
	if st.Len() == 0 {
		return 0
	}
	return float64(tracking) / float64(st.Len())
}
