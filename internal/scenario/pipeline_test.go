package scenario

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestBuildContextCancelMidSimulation cancels the pipeline from inside
// the simulation phase and requires a prompt ctx.Err() return with
// every worker goroutine drained.
func TestBuildContextCancelMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var cancelledAt time.Time
	p := Params{
		Seed: 3, Scale: 0.05, VisitsPerUser: 120,
		Progress: func(ev PhaseEvent) {
			if ev.Phase == PhaseSimulate && ev.Done > 0 {
				once.Do(func() {
					cancelledAt = time.Now()
					cancel()
				})
			}
		},
	}
	before := runtime.NumGoroutine()
	s, err := BuildContext(ctx, p)
	returned := time.Now()
	if err != context.Canceled {
		t.Fatalf("BuildContext = %v, want context.Canceled", err)
	}
	if s != nil {
		t.Fatal("cancelled build must not return a scenario")
	}
	if cancelledAt.IsZero() {
		t.Fatal("cancel never fired: simulation emitted no progress")
	}
	if d := returned.Sub(cancelledAt); d > 10*time.Second {
		t.Errorf("cancellation took %v to propagate", d)
	}
	// The workers join before BuildContext returns; give the runtime a
	// moment to retire them, then require the goroutine count back at
	// the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutines leaked: %d running, baseline %d", n, before)
	}
}

// TestBuildContextPreCancelled must fail before doing any work.
func TestBuildContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := BuildContext(ctx, Params{Seed: 1, Scale: 0.02}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-cancelled build still ran for %v", d)
	}
}

// TestProgressEventsMonotone records a full build's progress stream and
// checks the event contract: every phase fires, in pipeline order, with
// Done monotone from 0 to Total and Elapsed non-negative.
func TestProgressEventsMonotone(t *testing.T) {
	var events []PhaseEvent
	_, err := BuildContext(context.Background(), Params{
		Seed: 2, Scale: 0.02, VisitsPerUser: 8,
		// Delivery is serialized by the pipeline, so plain append is safe.
		Progress: func(ev PhaseEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}

	var phaseSeq []Phase
	last := make(map[Phase]PhaseEvent)
	first := make(map[Phase]PhaseEvent)
	for i, ev := range events {
		if ev.Done < 0 || ev.Done > ev.Total {
			t.Fatalf("event %d: Done %d outside [0,%d]", i, ev.Done, ev.Total)
		}
		if ev.Elapsed < 0 {
			t.Fatalf("event %d: negative elapsed %v", i, ev.Elapsed)
		}
		if prev, seen := last[ev.Phase]; seen {
			if len(phaseSeq) > 0 && phaseSeq[len(phaseSeq)-1] != ev.Phase {
				t.Fatalf("event %d: phase %s resumed after %s started",
					i, ev.Phase, phaseSeq[len(phaseSeq)-1])
			}
			if ev.Done < prev.Done {
				t.Fatalf("event %d: phase %s Done regressed %d -> %d",
					i, ev.Phase, prev.Done, ev.Done)
			}
		} else {
			phaseSeq = append(phaseSeq, ev.Phase)
			first[ev.Phase] = ev
		}
		last[ev.Phase] = ev
	}

	want := Phases()
	if len(phaseSeq) != len(want) {
		t.Fatalf("saw phases %v, want %v", phaseSeq, want)
	}
	for i, ph := range want {
		if phaseSeq[i] != ph {
			t.Fatalf("phase order %v, want %v", phaseSeq, want)
		}
		if first[ph].Done != 0 {
			t.Errorf("phase %s first event Done = %d, want 0", ph, first[ph].Done)
		}
		if ev := last[ph]; ev.Done != ev.Total {
			t.Errorf("phase %s ended at %d/%d, want complete", ph, ev.Done, ev.Total)
		}
	}
	// The simulation phase must tick per user, not just start/end.
	if last[PhaseSimulate].Total < 2 {
		t.Fatalf("simulate total = %d, want the user count", last[PhaseSimulate].Total)
	}
}

// TestBuildContextDeterminism: the context-aware pipeline must produce
// the exact world the legacy Build produces (it is the same code path,
// but the progress plumbing must never leak into the RNG).
func TestBuildContextDeterminism(t *testing.T) {
	p := Params{Seed: 11, Scale: 0.02, VisitsPerUser: 8}
	a := Build(p)
	withProgress := p
	withProgress.Progress = func(PhaseEvent) {}
	b, err := BuildContext(context.Background(), withProgress)
	if err != nil {
		t.Fatal(err)
	}
	ar, br := a.Dataset.Rows(), b.Dataset.Rows()
	if len(ar) != len(br) {
		t.Fatalf("row counts differ: %d vs %d", len(ar), len(br))
	}
	for i := range ar {
		if ar[i] != br[i] {
			t.Fatalf("row %d differs with progress enabled", i)
		}
	}
}
